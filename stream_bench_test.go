package repro

// Benchmarks for the streaming ingest subsystem (internal/stream): the
// journal→fold→publish write path in isolation, and read throughput under
// concurrent ingest — the number BENCH_serve.json tracks for "how much
// read QPS does a live write stream cost".

import (
	"context"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/scenario"
	"repro/internal/serve"
	"repro/internal/stream"
)

// streamBenchSetup stands up a serving-scale model, engine, journal and
// updater (publish window 256, in-memory promotion).
func streamBenchSetup(b *testing.B, windowEvents int) (*serve.Engine, *stream.Updater) {
	return streamBenchSetupMode(b, windowEvents, false)
}

// streamBenchSetupMode is streamBenchSetup with the publish path pinned:
// fullRebuild forces every publish to rebuild model, indexes and encoding
// from scratch (the pre-incremental behavior).
func streamBenchSetupMode(b *testing.B, windowEvents int, fullRebuild bool) (*serve.Engine, *stream.Updater) {
	b.Helper()
	m := serve.SyntheticModel(2000, 100, 50, 50000, 2018)
	e := serve.New(m, nil, serve.Options{})
	b.Cleanup(e.Close)
	j, err := stream.OpenJournal(filepath.Join(b.TempDir(), "bench.wal"), stream.JournalOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { j.Close() })
	u, err := stream.NewUpdater(j, stream.Options{
		Engine:       e,
		Base:         m,
		WindowEvents: windowEvents,
		FoldSweeps:   10,
		FoldSeed:     7,
		FullRebuild:  fullRebuild,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(u.Close)
	return e, u
}

// benchEvents builds n deterministic ingest events: a rolling population
// of new users, each arriving with a document, plus documents and edges
// on the existing population.
func benchEvents(n, baseUsers, vocab int) [][]stream.Event {
	batches := make([][]stream.Event, 0, n)
	nextUser := int32(baseUsers)
	doc := func(k int) []int32 {
		words := make([]int32, 12)
		for i := range words {
			words[i] = int32((k*131 + i*7919) % vocab)
		}
		return words
	}
	for k := 0; k < n; k++ {
		switch k % 4 {
		case 0:
			batches = append(batches, []stream.Event{
				{Type: stream.EvAddUser},
				{Type: stream.EvAddDoc, User: nextUser, Time: int64(k), Words: doc(k)},
			})
			nextUser++
		case 1:
			batches = append(batches, []stream.Event{
				{Type: stream.EvAddEdge, User: int32(k % baseUsers), Target: int32((k + 1) % baseUsers)},
			})
		default:
			batches = append(batches, []stream.Event{
				{Type: stream.EvAddDoc, User: int32(k % baseUsers), Time: int64(k), Words: doc(k)},
			})
		}
	}
	return batches
}

// BenchmarkIngestApply measures the write path end to end: journal
// append (CRC framing + batched fsync), in-memory apply, and the
// window-triggered fold+publish cycles, reporting events/sec.
func BenchmarkIngestApply(b *testing.B) {
	_, u := streamBenchSetup(b, 256)
	batches := benchEvents(b.N, 2000, 50000)
	events := 0
	b.ResetTimer()
	for _, batch := range batches {
		if _, err := u.Ingest(batch); err != nil {
			b.Fatal(err)
		}
		events += len(batch)
		if _, _, err := u.MaybePublish(); err != nil {
			b.Fatal(err)
		}
	}
	if u.Pending() > 0 {
		if _, err := u.Publish(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
	b.ReportMetric(float64(u.Status().Publishes), "publishes")
}

// BenchmarkIncrementalPublish isolates one publish cycle at the serving
// scale (2000 users, |C|=100, |W|=50k): ingest one 64-event window of
// documents, publish, repeat. The incremental sub-benchmark takes the
// O(changed) path (patched Π, patched per-shard user index, shared rank
// index); full-rebuild pins Options.FullRebuild and reassembles
// everything — the pre-incremental publish cost. The two serve
// bit-identical results (TestIncrementalPublishMatchesFullRebuild); the
// ratio here is what the O(changed) claim buys.
func BenchmarkIncrementalPublish(b *testing.B) {
	const window = 64
	mkBatch := func(k int) []stream.Event {
		evs := make([]stream.Event, 0, window)
		for j := 0; j < window; j++ {
			id := k*window + j
			words := make([]int32, 12)
			for w := range words {
				words[w] = int32((id*131 + w*7919) % 50000)
			}
			evs = append(evs, stream.Event{
				Type: stream.EvAddDoc, User: int32(id % 2000),
				Time: int64(id), Words: words,
			})
		}
		return evs
	}
	for _, mode := range []struct {
		name string
		full bool
	}{
		{"incremental", false},
		{"full-rebuild", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			_, u := streamBenchSetupMode(b, window, mode.full)
			// Prime generation 1 outside the clock: the first publish is
			// always a full rebuild, so the incremental mode measures
			// steady-state patching only.
			if _, err := u.Ingest(mkBatch(0)); err != nil {
				b.Fatal(err)
			}
			if _, err := u.Publish(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := u.Ingest(mkBatch(i + 1)); err != nil {
					b.Fatal(err)
				}
				if _, err := u.Publish(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(window*b.N)/b.Elapsed().Seconds(), "events/sec")
		})
	}
}

// BenchmarkServeUnderIngest measures read throughput while a background
// goroutine continuously ingests and republishes — the read-QPS-under-
// write-load number. Compare against BenchmarkServeRank's idle numbers
// to see the cost of a live write stream.
func BenchmarkServeUnderIngest(b *testing.B) {
	e, u := streamBenchSetup(b, 128)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	writerDone := make(chan struct{})
	batches := benchEvents(1<<14, 2000, 50000)
	go func() {
		defer close(writerDone)
		for _, batch := range batches {
			select {
			case <-ctx.Done():
				return
			default:
			}
			if _, err := u.Ingest(batch); err != nil {
				return
			}
			if _, _, err := u.MaybePublish(); err != nil {
				return
			}
		}
	}()
	// Let the writer reach a steady publish cadence before measuring.
	time.Sleep(10 * time.Millisecond)
	queries := make([][]int32, 64)
	for i := range queries {
		queries[i] = []int32{int32(i * 701 % 50000), int32(i * 337 % 50000)}
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			switch i % 3 {
			case 0, 1:
				if _, err := e.Rank(queries[i%len(queries)], 10); err != nil {
					b.Fatal(err)
				}
			default:
				if _, err := e.Membership(i%2000, 5); err != nil {
					b.Fatal(err)
				}
			}
			i++
		}
	})
	b.StopTimer()
	cancel()
	<-writerDone
	st := u.Status()
	b.ReportMetric(float64(st.Publishes), "publishes")
	b.ReportMetric(float64(st.AppliedEvents), "ingested-events")
}

// BenchmarkStreamScenarioDrip runs the steady-drip streaming preset end
// to end (train → journal → incremental publishes → invariant checks) —
// the streaming counterpart of BenchmarkLoadGenMixed.
func BenchmarkStreamScenarioDrip(b *testing.B) {
	p, err := scenario.LookupStream("steady-drip")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := scenario.RunStream(p, scenario.RunOptions{Dir: b.TempDir()}); err != nil {
			b.Fatal(err)
		}
	}
}
