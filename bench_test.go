package repro

// One benchmark per table and figure of the paper's evaluation section
// (Sect. 6), each driving the same harness code cmd/cpd-experiments runs at
// full scale — plus micro-benchmarks for the performance-critical pieces
// the figures depend on (the Gibbs sweep, the Pólya-Gamma sampler, the
// sparse bilinear forms, prediction). Benchmark scale is deliberately small
// (Tiny preset, 2 folds) so `go test -bench=. -benchmem` finishes in
// minutes; run cmd/cpd-experiments at -scale medium for full-scale runs.

import (
	"fmt"
	"io"
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/synth"
)

func benchOptions() exp.Options {
	return exp.Options{
		Scale:          exp.Tiny,
		Folds:          2,
		EMIters:        8,
		Workers:        1,
		CommunitySweep: []int{8, 12},
		Topics:         12,
		Seed:           2017,
	}
}

func drainTables(b *testing.B, tabs []*exp.Table) {
	b.Helper()
	if len(tabs) == 0 {
		b.Fatal("experiment produced no tables")
	}
	for _, t := range tabs {
		t.Fprint(io.Discard)
	}
}

// BenchmarkTable3DatasetStats regenerates Table 3 (dataset statistics).
func BenchmarkTable3DatasetStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		drainTables(b, []*exp.Table{exp.RunTable3(benchOptions())})
	}
}

// BenchmarkFigure3ModelDesign regenerates Fig. 3(a)-(f): the joint-modeling
// and heterogeneity ablation study.
func BenchmarkFigure3ModelDesign(b *testing.B) {
	for i := 0; i < b.N; i++ {
		drainTables(b, exp.RunFigure3(benchOptions()))
	}
}

// BenchmarkFigure3Nonconformity regenerates Fig. 3(g)-(h): the diffusion
// factor ablations.
func BenchmarkFigure3Nonconformity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		drainTables(b, exp.RunFigure3Nonconformity(benchOptions()))
	}
}

// BenchmarkFigure4Diffusion regenerates Fig. 4: community-aware diffusion
// AUC against all baselines.
func BenchmarkFigure4Diffusion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		drainTables(b, exp.RunFigure4(benchOptions()))
	}
}

// BenchmarkFigure5CaseStudy regenerates Fig. 5: the three diffusion-factor
// case studies on the DBLP-like data.
func BenchmarkFigure5CaseStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		drainTables(b, exp.RunFigure5(benchOptions()))
	}
}

// BenchmarkTable5TopicWords regenerates Table 5: top words per topic.
func BenchmarkTable5TopicWords(b *testing.B) {
	for i := 0; i < b.N; i++ {
		drainTables(b, []*exp.Table{exp.RunTable5(benchOptions())})
	}
}

// BenchmarkFigure6Ranking regenerates Fig. 6: profile-driven community
// ranking MAF@K against the community baselines.
func BenchmarkFigure6Ranking(b *testing.B) {
	for i := 0; i < b.N; i++ {
		drainTables(b, exp.RunFigure6(benchOptions()))
	}
}

// BenchmarkTable6QueryRanking regenerates Table 6: top communities for one
// query.
func BenchmarkTable6QueryRanking(b *testing.B) {
	for i := 0; i < b.N; i++ {
		drainTables(b, []*exp.Table{exp.RunTable6(benchOptions())})
	}
}

// BenchmarkFigure7Visualization regenerates Fig. 7: the community diffusion
// visualizations.
func BenchmarkFigure7Visualization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		drainTables(b, exp.RunFigure7(benchOptions(), "", nil))
	}
}

// BenchmarkFigure8Perplexity regenerates Fig. 8: content profile perplexity
// against the aggregation baselines.
func BenchmarkFigure8Perplexity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		drainTables(b, exp.RunFigure8(benchOptions()))
	}
}

// BenchmarkFigure9Detection regenerates Fig. 9: community detection quality
// against the baselines.
func BenchmarkFigure9Detection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		drainTables(b, exp.RunFigure9(benchOptions()))
	}
}

// BenchmarkFigure10Scalability regenerates Fig. 10: training time vs data
// size and parallel speedup vs cores.
func BenchmarkFigure10Scalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		drainTables(b, exp.RunFigure10(benchOptions()))
	}
}

// BenchmarkFigure11WorkloadBalance regenerates Fig. 11: estimated vs actual
// per-worker workload under the knapsack allocation.
func BenchmarkFigure11WorkloadBalance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables, err := exp.RunFigure11(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		drainTables(b, tables)
	}
}

// --- micro-benchmarks ----------------------------------------------------

// BenchmarkEngineSweep measures one E-step sweep of the persistent
// worker-pool engine (the unit Fig. 10 times) on the full synthetic
// Twitter graph, across logical worker counts. Results are bit-identical
// across the sub-benchmarks; only the schedule differs.
func BenchmarkEngineSweep(b *testing.B) {
	cfg := synth.TwitterLike(300, 99)
	g, _ := synth.Generate(cfg)
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			eng, err := core.NewEngine(g, core.Config{
				NumCommunities: 15, NumTopics: 15, Workers: w,
				Rho: 1.0 / 15, Seed: 42,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer eng.Close()
			eng.Sweep() // warm-up
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.Sweep()
			}
		})
	}
}

// BenchmarkEStep compares the E-step samplers at large K (the regime the
// alias + Metropolis–Hastings sampler targets — sub-linear in |Z| and |C|
// per draw, where the exact sampler scans every candidate). One op is one
// full sweep over the same graph, so the exact/alias ns/op ratio IS the
// per-token speedup; tokens/s makes the throughput comparison explicit.
func BenchmarkEStep(b *testing.B) {
	g, _ := synth.Generate(synth.TwitterLike(300, 99))
	var tokens int
	for i := range g.Docs {
		tokens += len(g.Docs[i].Words)
	}
	const k = 128 // large-K regime: |C| = |Z| = 128
	for _, sampler := range []string{core.SamplerExact, core.SamplerAlias} {
		b.Run(sampler, func(b *testing.B) {
			eng, err := core.NewEngine(g, core.Config{
				NumCommunities: k, NumTopics: k, Workers: 2,
				Rho: 1.0 / k, Seed: 42, Sampler: sampler,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer eng.Close()
			eng.Sweep() // warm-up
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.Sweep()
			}
			b.ReportMetric(float64(tokens)*float64(b.N)/b.Elapsed().Seconds(), "tokens/s")
		})
	}
}

// BenchmarkCPDTrainSerial measures one full serial training run (the unit
// of every grid cell in Figs. 3/4/8/9).
func BenchmarkCPDTrainSerial(b *testing.B) {
	cfg := synth.TwitterLike(300, 99)
	g, _ := synth.Generate(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, err := core.Train(g, core.Config{
			NumCommunities: 15, NumTopics: 15, EMIters: 8, Workers: 1,
			Rho: 1.0 / 15, Seed: uint64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCPDTrainParallel is the same run on all cores (Fig. 10's
// speedup numerator/denominator pair with BenchmarkCPDTrainSerial).
func BenchmarkCPDTrainParallel(b *testing.B) {
	cfg := synth.TwitterLike(300, 99)
	g, _ := synth.Generate(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, err := core.Train(g, core.Config{
			NumCommunities: 15, NumTopics: 15, EMIters: 8, Workers: 0,
			Rho: 1.0 / 15, Seed: uint64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDiffusionPrediction measures Eq. 18 per document pair.
func BenchmarkDiffusionPrediction(b *testing.B) {
	cfg := synth.TwitterLike(300, 99)
	g, _ := synth.Generate(cfg)
	m, _, err := core.Train(g, core.Config{
		NumCommunities: 15, NumTopics: 15, EMIters: 8, Workers: 1,
		Rho: 1.0 / 15, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.DiffusionProb(g, i%g.NumUsers, i%len(g.Docs), m.DocBucket[i%len(g.Docs)])
	}
}

// BenchmarkRankCommunities measures Eq. 19 per query.
func BenchmarkRankCommunities(b *testing.B) {
	cfg := synth.TwitterLike(300, 99)
	g, _ := synth.Generate(cfg)
	m, _, err := core.Train(g, core.Config{
		NumCommunities: 15, NumTopics: 15, EMIters: 8, Workers: 1,
		Rho: 1.0 / 15, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	query := []int32{0, 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.RankCommunities(query)
	}
}

// BenchmarkBuildDiffusionGraph measures the Fig. 7 export.
func BenchmarkBuildDiffusionGraph(b *testing.B) {
	cfg := synth.TwitterLike(300, 99)
	g, _ := synth.Generate(cfg)
	m, _, err := core.Train(g, core.Config{
		NumCommunities: 15, NumTopics: 15, EMIters: 8, Workers: 1,
		Rho: 1.0 / 15, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		apps.BuildDiffusionGraph(m, nil, -1)
	}
}
