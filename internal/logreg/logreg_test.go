package logreg

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// separable builds a linearly separable 2-D dataset.
func separable(n int, seed uint64) (x [][]float64, y []int) {
	r := rng.New(seed)
	for i := 0; i < n; i++ {
		a := r.Norm()
		b := r.Norm()
		label := 0
		if a+b > 0 {
			label = 1
		}
		x = append(x, []float64{a, b, 1})
		y = append(y, label)
	}
	return
}

func TestTrainSeparable(t *testing.T) {
	x, y := separable(400, 1)
	m, err := Train(x, nil, y, Config{Iters: 400, LearningRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := range x {
		pred := 0
		if m.Predict(x[i], 0) > 0.5 {
			pred = 1
		}
		if pred == y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(x)); acc < 0.95 {
		t.Fatalf("accuracy = %v, want >= 0.95", acc)
	}
}

func TestOffsetsAreUsed(t *testing.T) {
	// Labels determined entirely by the offset; features are noise. The
	// trained weights must stay near zero and predictions must track the
	// offset.
	r := rng.New(2)
	var x [][]float64
	var offsets []float64
	var y []int
	for i := 0; i < 300; i++ {
		x = append(x, []float64{r.Norm()})
		off := -3.0
		label := 0
		if i%2 == 0 {
			off = 3.0
			label = 1
		}
		offsets = append(offsets, off)
		y = append(y, label)
	}
	m, err := Train(x, offsets, y, Config{Iters: 200})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.W[0]) > 0.3 {
		t.Fatalf("weight on noise feature = %v", m.W[0])
	}
	if p := m.Predict([]float64{0}, 3); p < 0.9 {
		t.Fatalf("Predict with +3 offset = %v", p)
	}
	if p := m.Predict([]float64{0}, -3); p > 0.1 {
		t.Fatalf("Predict with -3 offset = %v", p)
	}
}

func TestLogLossDecreases(t *testing.T) {
	x, y := separable(300, 3)
	zero := &Model{W: make([]float64, 3)}
	m, err := Train(x, nil, y, Config{Iters: 200})
	if err != nil {
		t.Fatal(err)
	}
	if m.LogLoss(x, nil, y) >= zero.LogLoss(x, nil, y) {
		t.Fatal("training did not reduce log loss")
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, nil, nil, Config{}); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := Train([][]float64{{1}}, nil, []int{1, 0}, Config{}); err == nil {
		t.Fatal("label mismatch accepted")
	}
	if _, err := Train([][]float64{{1}, {1, 2}}, nil, []int{1, 0}, Config{}); err == nil {
		t.Fatal("ragged features accepted")
	}
	if _, err := Train([][]float64{{1}}, []float64{1, 2}, []int{1}, Config{}); err == nil {
		t.Fatal("offset mismatch accepted")
	}
}

func TestScoreIsLinear(t *testing.T) {
	m := &Model{W: []float64{2, -1}}
	if got := m.Score([]float64{3, 4}, 0.5); got != 2*3-4+0.5 {
		t.Fatalf("Score = %v", got)
	}
}
