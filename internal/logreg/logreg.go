// Package logreg implements L2-regularised logistic regression trained by
// full-batch gradient descent with optional per-example fixed offsets.
// The CPD M-step fits the individual-preference weights ν this way
// (Sect. 4.2): positives are the observed diffusion links, negatives are
// sampled non-links, and the community/topic factors enter as fixed
// offsets so only ν is optimised. The WTM baseline reuses the package for
// its feature-based diffusion model.
package logreg

import (
	"fmt"

	"repro/internal/mathx"
)

// Config controls training.
type Config struct {
	Iters        int     // gradient steps; 0 means 100
	LearningRate float64 // 0 means 0.5
	L2           float64 // 0 means 1e-4
}

func (c Config) withDefaults() Config {
	if c.Iters == 0 {
		c.Iters = 100
	}
	if c.LearningRate == 0 {
		c.LearningRate = 0.5
	}
	if c.L2 == 0 {
		c.L2 = 1e-4
	}
	return c
}

// Model holds the learned weights. Callers append their own bias feature
// if they want an intercept.
type Model struct {
	W []float64
}

// Train fits weights on examples X with labels y in {0,1} and fixed
// per-example offsets (pass nil for all-zero offsets). It returns an error
// on shape mismatches or empty input.
func Train(x [][]float64, offsets []float64, y []int, cfg Config) (*Model, error) {
	cfg = cfg.withDefaults()
	if len(x) == 0 {
		return nil, fmt.Errorf("logreg: no training examples")
	}
	if len(x) != len(y) {
		return nil, fmt.Errorf("logreg: %d examples but %d labels", len(x), len(y))
	}
	if offsets != nil && len(offsets) != len(x) {
		return nil, fmt.Errorf("logreg: %d examples but %d offsets", len(x), len(offsets))
	}
	dim := len(x[0])
	for i, xi := range x {
		if len(xi) != dim {
			return nil, fmt.Errorf("logreg: example %d has dim %d, want %d", i, len(xi), dim)
		}
	}
	m := &Model{W: make([]float64, dim)}
	grad := make([]float64, dim)
	n := float64(len(x))
	lr := cfg.LearningRate
	for it := 0; it < cfg.Iters; it++ {
		for j := range grad {
			grad[j] = cfg.L2 * m.W[j]
		}
		for i, xi := range x {
			z := mathx.Dot(m.W, xi)
			if offsets != nil {
				z += offsets[i]
			}
			err := mathx.Sigmoid(z) - float64(y[i])
			for j, xj := range xi {
				grad[j] += err * xj / n
			}
		}
		for j := range m.W {
			m.W[j] -= lr * grad[j]
		}
	}
	return m, nil
}

// Score returns the linear predictor w·x + offset.
func (m *Model) Score(x []float64, offset float64) float64 {
	return mathx.Dot(m.W, x) + offset
}

// Predict returns sigmoid(w·x + offset).
func (m *Model) Predict(x []float64, offset float64) float64 {
	return mathx.Sigmoid(m.Score(x, offset))
}

// LogLoss returns the mean negative log-likelihood of the examples under
// the model (diagnostic; tests use it to confirm optimisation progress).
func (m *Model) LogLoss(x [][]float64, offsets []float64, y []int) float64 {
	if len(x) == 0 {
		return 0
	}
	var s float64
	for i, xi := range x {
		z := mathx.Dot(m.W, xi)
		if offsets != nil {
			z += offsets[i]
		}
		if y[i] == 1 {
			s -= mathx.LogSigmoid(z)
		} else {
			s -= mathx.LogSigmoid(-z)
		}
	}
	return s / float64(len(x))
}
