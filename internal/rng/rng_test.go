package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
	c := New(43)
	same := 0
	a = New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("nearby seeds produced %d/100 identical draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(1)
	s1 := r.Split(0)
	s2 := r.Split(1)
	same := 0
	for i := 0; i < 100; i++ {
		if s1.Uint64() == s2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split streams overlap: %d/100", same)
	}
}

func TestFloat64Bounds(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		u := r.Float64()
		if u < 0 || u >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", u)
		}
	}
	for i := 0; i < 1000; i++ {
		if u := r.Float64Open(); u <= 0 || u >= 1 {
			t.Fatalf("Float64Open out of (0,1): %v", u)
		}
	}
}

func TestIntnUniform(t *testing.T) {
	r := New(3)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		v := r.Intn(n)
		if v < 0 || v >= n {
			t.Fatalf("Intn out of range: %d", v)
		}
		counts[v]++
	}
	exp := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-exp) > 5*math.Sqrt(exp) {
			t.Fatalf("bucket %d count %d deviates from %v", i, c, exp)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		r := New(seed)
		p := r.Perm(20)
		seen := make([]bool, 20)
		for _, v := range p {
			if v < 0 || v >= 20 || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNormMoments(t *testing.T) {
	r := New(11)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := r.Norm()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("Norm mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("Norm variance = %v", variance)
	}
}

func TestExpMoments(t *testing.T) {
	r := New(12)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		x := r.Exp()
		if x < 0 {
			t.Fatalf("Exp negative: %v", x)
		}
		sum += x
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("Exp mean = %v", mean)
	}
}

func TestGammaMoments(t *testing.T) {
	r := New(13)
	const n = 100000
	for _, shape := range []float64{0.3, 1, 2.5, 8} {
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			x := r.Gamma(shape)
			if x <= 0 {
				t.Fatalf("Gamma(%v) non-positive: %v", shape, x)
			}
			sum += x
			sumSq += x * x
		}
		mean := sum / n
		variance := sumSq/n - mean*mean
		if math.Abs(mean-shape) > 0.06*shape+0.02 {
			t.Errorf("Gamma(%v) mean = %v", shape, mean)
		}
		if math.Abs(variance-shape) > 0.12*shape+0.05 {
			t.Errorf("Gamma(%v) variance = %v", shape, variance)
		}
	}
}

func TestGammaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Gamma(0) did not panic")
		}
	}()
	New(1).Gamma(0)
}

func TestBetaMoments(t *testing.T) {
	r := New(14)
	const n = 100000
	a, b := 2.0, 5.0
	var sum float64
	for i := 0; i < n; i++ {
		x := r.Beta(a, b)
		if x < 0 || x > 1 {
			t.Fatalf("Beta out of range: %v", x)
		}
		sum += x
	}
	want := a / (a + b)
	if mean := sum / n; math.Abs(mean-want) > 0.01 {
		t.Fatalf("Beta mean = %v, want %v", mean, want)
	}
}

func TestDirichlet(t *testing.T) {
	r := New(15)
	alpha := []float64{1, 2, 3}
	dst := make([]float64, 3)
	sums := make([]float64, 3)
	const n = 50000
	for i := 0; i < n; i++ {
		r.Dirichlet(dst, alpha)
		var s float64
		for _, v := range dst {
			if v < 0 {
				t.Fatalf("Dirichlet negative component: %v", dst)
			}
			s += v
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("Dirichlet sums to %v", s)
		}
		for k, v := range dst {
			sums[k] += v
		}
	}
	for k, want := range []float64{1.0 / 6, 2.0 / 6, 3.0 / 6} {
		if got := sums[k] / n; math.Abs(got-want) > 0.01 {
			t.Errorf("Dirichlet mean[%d] = %v, want %v", k, got, want)
		}
	}
	// Symmetric variant sums to 1 too.
	r.DirichletSym(dst, 0.5)
	var s float64
	for _, v := range dst {
		s += v
	}
	if math.Abs(s-1) > 1e-9 {
		t.Fatalf("DirichletSym sums to %v", s)
	}
}

func TestCategoricalDistribution(t *testing.T) {
	r := New(16)
	w := []float64{1, 0, 3}
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[r.Categorical(w)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight category drawn %d times", counts[1])
	}
	if got := float64(counts[2]) / n; math.Abs(got-0.75) > 0.01 {
		t.Fatalf("category 2 frequency = %v, want 0.75", got)
	}
}

func TestCategoricalPanics(t *testing.T) {
	r := New(1)
	for _, w := range [][]float64{{0, 0}, {-1, 2}, {math.NaN()}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Categorical(%v) did not panic", w)
				}
			}()
			r.Categorical(w)
		}()
	}
}

func TestCategoricalLogMatchesCategorical(t *testing.T) {
	r := New(17)
	w := []float64{0.2, 0.5, 0.3}
	logits := make([]float64, 3)
	for i, v := range w {
		logits[i] = math.Log(v) - 10 // shift invariance
	}
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[r.CategoricalLog(logits)]++
	}
	for i, want := range w {
		if got := float64(counts[i]) / n; math.Abs(got-want) > 0.01 {
			t.Errorf("CategoricalLog freq[%d] = %v, want %v", i, got, want)
		}
	}
	// Very negative logits are fine.
	deep := []float64{-1e6, -1e6 + math.Log(3)}
	c := 0
	for i := 0; i < 10000; i++ {
		if r.CategoricalLog(deep) == 1 {
			c++
		}
	}
	if got := float64(c) / 10000; math.Abs(got-0.75) > 0.03 {
		t.Fatalf("deep logit freq = %v, want 0.75", got)
	}
}

func TestPoissonMoments(t *testing.T) {
	r := New(18)
	for _, lambda := range []float64{0.5, 4, 80} {
		var sum float64
		const n = 50000
		for i := 0; i < n; i++ {
			k := r.Poisson(lambda)
			if k < 0 {
				t.Fatalf("Poisson negative: %d", k)
			}
			sum += float64(k)
		}
		if mean := sum / n; math.Abs(mean-lambda) > 0.05*lambda+0.05 {
			t.Errorf("Poisson(%v) mean = %v", lambda, mean)
		}
	}
	if New(1).Poisson(0) != 0 {
		t.Fatal("Poisson(0) != 0")
	}
}

func TestBernoulli(t *testing.T) {
	r := New(19)
	c := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			c++
		}
	}
	if got := float64(c) / n; math.Abs(got-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) freq = %v", got)
	}
}

func TestZipfSkew(t *testing.T) {
	r := New(20)
	counts := make([]int, 5)
	for i := 0; i < 50000; i++ {
		k := r.Zipf(5, 1.2)
		if k < 0 || k >= 5 {
			t.Fatalf("Zipf out of range: %d", k)
		}
		counts[k]++
	}
	for i := 1; i < 5; i++ {
		if counts[i] > counts[i-1] {
			t.Fatalf("Zipf not decreasing: %v", counts)
		}
	}
}

func TestShuffleCoverage(t *testing.T) {
	r := New(21)
	x := []string{"a", "b", "c"}
	seen := map[string]bool{}
	for i := 0; i < 200; i++ {
		r.Shuffle(len(x), func(i, j int) { x[i], x[j] = x[j], x[i] })
		seen[x[0]+x[1]+x[2]] = true
	}
	if len(seen) != 6 {
		t.Fatalf("shuffle produced %d/6 permutations", len(seen))
	}
}
