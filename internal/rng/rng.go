// Package rng implements the deterministic random number generation
// substrate for the samplers: a xoshiro256** generator seeded through
// splitmix64, plus the non-uniform samplers (Gamma, Dirichlet, Beta,
// categorical, Poisson, truncated draws) the CPD Gibbs sampler and the
// synthetic data generator need and the standard library does not provide.
//
// Every experiment in this repository is reproducible because all
// randomness flows through explicitly seeded *rng.RNG values.
package rng

import "math"

// RNG is a xoshiro256** pseudo random generator. It is NOT safe for
// concurrent use; the parallel E-step gives each worker its own RNG derived
// with Split.
type RNG struct {
	s [4]uint64
}

// New returns an RNG seeded from seed via splitmix64 (so nearby seeds give
// uncorrelated streams).
func New(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		sm += 0x9E3779B97F4A7C15
		z := sm
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		r.s[i] = z ^ (z >> 31)
	}
	// Avoid the all-zero state (cannot occur from splitmix64, but be safe).
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return r
}

// Split returns a new RNG whose stream is independent of r's, derived from
// r's state and the stream index. Used to hand one generator per worker.
func (r *RNG) Split(stream uint64) *RNG {
	return New(r.Uint64() ^ (0x9E3779B97F4A7C15 * (stream + 1)))
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Float64Open returns a uniform value in (0, 1): never exactly zero, so it
// is safe as a log() or division argument.
func (r *RNG) Float64Open() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return u
		}
	}
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation is overkill here;
	// modulo bias with 64-bit inputs and n < 2^32 is negligible, but reject
	// to keep the distribution exact.
	bound := uint64(n)
	threshold := -bound % bound
	for {
		v := r.Uint64()
		if v >= threshold {
			return int(v % bound)
		}
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
	return p
}

// ShuffleInts shuffles p in place (Fisher–Yates).
func (r *RNG) ShuffleInts(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Shuffle shuffles n elements using the provided swap function.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Norm returns a standard normal draw (polar Marsaglia method).
func (r *RNG) Norm() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Exp returns an Exponential(1) draw.
func (r *RNG) Exp() float64 {
	return -math.Log(r.Float64Open())
}

// Gamma returns a Gamma(shape, 1) draw using Marsaglia–Tsang for shape >= 1
// and the boost transform Gamma(a) = Gamma(a+1) * U^{1/a} for shape < 1.
// It panics if shape <= 0.
func (r *RNG) Gamma(shape float64) float64 {
	if shape <= 0 {
		panic("rng: Gamma with non-positive shape")
	}
	if shape < 1 {
		return r.Gamma(shape+1) * math.Pow(r.Float64Open(), 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := r.Norm()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64Open()
		x2 := x * x
		if u < 1-0.0331*x2*x2 {
			return d * v
		}
		if math.Log(u) < 0.5*x2+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Beta returns a Beta(a, b) draw.
func (r *RNG) Beta(a, b float64) float64 {
	x := r.Gamma(a)
	y := r.Gamma(b)
	return x / (x + y)
}

// Dirichlet fills dst with a Dirichlet draw with concentration alpha (one
// entry per dimension). dst and alpha must have the same length.
func (r *RNG) Dirichlet(dst, alpha []float64) {
	if len(dst) != len(alpha) {
		panic("rng: Dirichlet length mismatch")
	}
	var s float64
	for i, a := range alpha {
		g := r.Gamma(a)
		dst[i] = g
		s += g
	}
	if s <= 0 {
		u := 1 / float64(len(dst))
		for i := range dst {
			dst[i] = u
		}
		return
	}
	for i := range dst {
		dst[i] /= s
	}
}

// DirichletSym fills dst with a symmetric Dirichlet(alpha) draw.
func (r *RNG) DirichletSym(dst []float64, alpha float64) {
	var s float64
	for i := range dst {
		g := r.Gamma(alpha)
		dst[i] = g
		s += g
	}
	if s <= 0 {
		u := 1 / float64(len(dst))
		for i := range dst {
			dst[i] = u
		}
		return
	}
	for i := range dst {
		dst[i] /= s
	}
}

// Categorical draws an index proportional to the non-negative weights. The
// weights need not be normalized. It panics if all weights are zero or any
// is negative/NaN.
func (r *RNG) Categorical(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic("rng: Categorical with negative or NaN weight")
		}
		total += w
	}
	if total <= 0 {
		panic("rng: Categorical with all-zero weights")
	}
	u := r.Float64() * total
	var acc float64
	for i, w := range weights {
		acc += w
		if u < acc {
			return i
		}
	}
	return len(weights) - 1
}

// CategoricalLog draws an index proportional to exp(logits[i]) using the
// Gumbel-max trick, which avoids normalizing and is stable for very
// negative logits.
func (r *RNG) CategoricalLog(logits []float64) int {
	best, bestV := -1, math.Inf(-1)
	for i, l := range logits {
		if math.IsNaN(l) {
			panic("rng: CategoricalLog with NaN logit")
		}
		v := l - math.Log(r.Exp()) // l + Gumbel noise
		if v > bestV {
			best, bestV = i, v
		}
	}
	if best < 0 {
		panic("rng: CategoricalLog with empty logits")
	}
	return best
}

// Poisson returns a Poisson(lambda) draw. Knuth's method for small lambda,
// normal approximation with continuity correction for large lambda — the
// synthetic generator only needs modest rates so accuracy at huge lambda is
// not critical.
func (r *RNG) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 50 {
		k := int(math.Floor(lambda + math.Sqrt(lambda)*r.Norm() + 0.5))
		if k < 0 {
			k = 0
		}
		return k
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	return r.Float64() < p
}

// Zipf returns a draw from {0, ..., n-1} with P(k) proportional to
// 1/(k+1)^s, via inverse CDF on a precomputable weight table. For repeated
// draws with the same (n, s), prefer building weights once and using
// Categorical; this helper is for one-off draws.
func (r *RNG) Zipf(n int, s float64) int {
	if n <= 0 {
		panic("rng: Zipf with non-positive n")
	}
	var total float64
	for k := 1; k <= n; k++ {
		total += math.Pow(float64(k), -s)
	}
	u := r.Float64() * total
	var acc float64
	for k := 1; k <= n; k++ {
		acc += math.Pow(float64(k), -s)
		if u < acc {
			return k - 1
		}
	}
	return n - 1
}
