package serve

import (
	"repro/internal/core"
	"repro/internal/mathx"
	"repro/internal/sparse"
)

// RankIndex is the inverted index behind Engine.Rank. It decomposes the
// Eq. 19 community score into per-word contributions:
//
//	score(c, q) = Σ_z rankTable[c][z] · p(z|q)
//
// with the per-word topic posterior mixture p(z|q) = 1/|q| Σ_{w∈q} p(z|w),
// p(z|w) ∝ φ_z,w. Under that (standard inverted-index) decomposition the
// score is a plain sum of word-community weights
//
//	S[c][w] = Σ_z rankTable[c][z] · p(z|w),
//
// so a query costs a walk over |q| posting lists instead of the full
// per-query K×|Z| scan (plus |q|×|Z| log-likelihood evaluations) of
// core.Model.RankCommunities. For single-word queries the decomposition is
// exact: softmax over log φ_z,w IS p(z|w). For multi-word queries it
// replaces the paper's product-of-words posterior with the word mixture —
// the usual bag-of-words relaxation that makes the score distributive.
//
// Posting lists keep only each word's perWord highest-scoring communities
// (perWord >= |C| keeps them all and makes single-word ranking exact);
// entries are stored descending by score. Lists are immutable once built
// and held per word, so a derived index can share unchanged words' lists
// with its predecessor (copy-on-write): patchRankIndex recomputes only
// the listed words and aliases everything else, making a publish that
// touches d words cost O(d·|C|·|Z|) plus one O(|W|) header copy instead
// of a full O(|W|·|C|·|Z|) rebuild.
type RankIndex struct {
	numWords int
	lists    []postingList // len numWords
}

// postingList is one word's posting list: communities descending by
// score. A list is never mutated after construction — patched indexes
// alias their predecessor's lists.
type postingList struct {
	comms  []int32
	scores []float64
}

// rankBlockLen is the word-block width of the index builder: transient
// buffers stay O(block·(|Z|+|C|)) even for 50k-word vocabularies, and φ
// rows are walked contiguously.
const rankBlockLen = 256

// rankScratch holds the block scorer's transient buffers so patching many
// words reuses one allocation.
type rankScratch struct {
	pz     []float64 // pz[z*block+j] = p(z | w0+j)
	colSum []float64 // Σ_z φ_z,w per block column
	wordSc []float64 // wordSc[c*block+j] = S[c][w0+j]
	sel    []float64 // one word's dense score vector, len |C|
}

func newRankScratch(C, Z int) *rankScratch {
	return &rankScratch{
		pz:     make([]float64, Z*rankBlockLen),
		colSum: make([]float64, rankBlockLen),
		wordSc: make([]float64, C*rankBlockLen),
		sel:    make([]float64, C),
	}
}

// scoreWordBlock computes S[·][w] for words [w0, w0+n) and hands each
// word's dense score vector to emit (empty=true for words that never
// occur under any topic). Both the full builder and the single-word patch
// path run THIS function, so per-word float operation sequences — and
// therefore result bits — are identical regardless of which path produced
// a list.
func scoreWordBlock(m *core.Model, rt *sparse.Dense, w0, n int, sc *rankScratch, emit func(j int, sel []float64, empty bool)) {
	Z, C := len(sc.pz)/rankBlockLen, len(sc.sel)
	for j := 0; j < n; j++ {
		sc.colSum[j] = 0
	}
	for z := 0; z < Z; z++ {
		phi := m.Phi.Row(z)[w0 : w0+n]
		dst := sc.pz[z*rankBlockLen : z*rankBlockLen+n]
		for j, v := range phi {
			dst[j] = v
			sc.colSum[j] += v
		}
	}
	for z := 0; z < Z; z++ {
		dst := sc.pz[z*rankBlockLen : z*rankBlockLen+n]
		for j := range dst {
			if sc.colSum[j] > 0 {
				dst[j] /= sc.colSum[j]
			}
		}
	}
	for c := 0; c < C; c++ {
		dst := sc.wordSc[c*rankBlockLen : c*rankBlockLen+n]
		for j := range dst {
			dst[j] = 0
		}
		row := rt.Row(c)
		for z := 0; z < Z; z++ {
			rv := row[z]
			if rv == 0 {
				continue
			}
			src := sc.pz[z*rankBlockLen : z*rankBlockLen+n]
			for j, v := range src {
				dst[j] += rv * v
			}
		}
	}
	for j := 0; j < n; j++ {
		if sc.colSum[j] <= 0 {
			emit(j, nil, true)
			continue
		}
		for c := 0; c < C; c++ {
			sc.sel[c] = sc.wordSc[c*rankBlockLen+j]
		}
		emit(j, sc.sel, false)
	}
}

// buildRankIndex precomputes every word's posting list from the model's
// rank table and topic-word distributions. Lists are carved out of two
// shared arenas (one allocation each for the whole vocabulary).
func buildRankIndex(m *core.Model, perWord int) *RankIndex {
	C, Z, V := m.Cfg.NumCommunities, m.Cfg.NumTopics, m.NumWords
	if perWord <= 0 || perWord > C {
		perWord = C
	}
	rt := m.RankTable()
	sc := newRankScratch(C, Z)
	offsets := make([]int32, V+1)
	comms := make([]int32, 0, V*perWord)
	scores := make([]float64, 0, V*perWord)
	for w0 := 0; w0 < V; w0 += rankBlockLen {
		n := V - w0
		if n > rankBlockLen {
			n = rankBlockLen
		}
		scoreWordBlock(m, rt, w0, n, sc, func(j int, sel []float64, empty bool) {
			if !empty {
				for _, c := range mathx.TopKIndices(sel, perWord) {
					comms = append(comms, int32(c))
					scores = append(scores, sel[c])
				}
			}
			offsets[w0+j+1] = int32(len(comms))
		})
	}
	ix := &RankIndex{numWords: V, lists: make([]postingList, V)}
	for w := 0; w < V; w++ {
		lo, hi := offsets[w], offsets[w+1]
		ix.lists[w] = postingList{comms: comms[lo:hi:hi], scores: scores[lo:hi:hi]}
	}
	return ix
}

// patchRankIndex derives model m's rank index from prev by recomputing
// only the listed words' posting lists and sharing every other list.
// Correctness contract: every word whose score column S[·][w] changed
// between prev's model and m must be listed (Delta.Words); wholesale
// rank-table changes must rebuild instead. Out-of-range ids are ignored.
// The recompute runs the shared block scorer one word at a time, so a
// patched index is bit-identical to a from-scratch build of m.
func patchRankIndex(prev *RankIndex, m *core.Model, perWord int, words []int32) *RankIndex {
	C, Z := m.Cfg.NumCommunities, m.Cfg.NumTopics
	if perWord <= 0 || perWord > C {
		perWord = C
	}
	ix := &RankIndex{numWords: prev.numWords, lists: append([]postingList(nil), prev.lists...)}
	if len(words) == 0 {
		return ix
	}
	rt := m.RankTable()
	sc := newRankScratch(C, Z)
	for _, w := range words {
		if w < 0 || int(w) >= ix.numWords {
			continue
		}
		var pl postingList
		scoreWordBlock(m, rt, int(w), 1, sc, func(_ int, sel []float64, empty bool) {
			if empty {
				return
			}
			idx := mathx.TopKIndices(sel, perWord)
			pl = postingList{comms: make([]int32, len(idx)), scores: make([]float64, len(idx))}
			for i, c := range idx {
				pl.comms[i] = int32(c)
				pl.scores[i] = sel[c]
			}
		})
		ix.lists[w] = pl
	}
	return ix
}

// Postings returns word w's posting list views (communities and scores,
// descending by score). The slices are owned by the index.
func (ix *RankIndex) Postings(w int32) ([]int32, []float64) {
	pl := ix.lists[w]
	return pl.comms, pl.scores
}

// Accumulate adds each query word's posting list into the dense score
// accumulator (len |C|). The caller zeroes scores beforehand; ranking is
// invariant to the 1/|q| normalization, which is therefore skipped.
func (ix *RankIndex) Accumulate(scores []float64, query []int32) {
	for _, w := range query {
		pl := ix.lists[w]
		for i, c := range pl.comms {
			scores[c] += pl.scores[i]
		}
	}
}

// Bytes estimates the index's heap footprint. Lists shared with other
// snapshots are counted here too — it is a per-snapshot working-set
// estimate, not exclusive ownership.
func (ix *RankIndex) Bytes() int64 {
	n := int64(len(ix.lists)) * 48 // two slice headers per word
	for i := range ix.lists {
		n += 4*int64(len(ix.lists[i].comms)) + 8*int64(len(ix.lists[i].scores))
	}
	return n
}

// PostingsPerWord reports the index's effective posting-list bound (the
// longest stored list).
func (ix *RankIndex) PostingsPerWord() int {
	maxLen := 0
	for i := range ix.lists {
		if n := len(ix.lists[i].comms); n > maxLen {
			maxLen = n
		}
	}
	return maxLen
}
