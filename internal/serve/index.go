package serve

import (
	"repro/internal/core"
	"repro/internal/mathx"
)

// RankIndex is the inverted index behind Engine.Rank. It decomposes the
// Eq. 19 community score into per-word contributions:
//
//	score(c, q) = Σ_z rankTable[c][z] · p(z|q)
//
// with the per-word topic posterior mixture p(z|q) = 1/|q| Σ_{w∈q} p(z|w),
// p(z|w) ∝ φ_z,w. Under that (standard inverted-index) decomposition the
// score is a plain sum of word-community weights
//
//	S[c][w] = Σ_z rankTable[c][z] · p(z|w),
//
// so a query costs a walk over |q| posting lists instead of the full
// per-query K×|Z| scan (plus |q|×|Z| log-likelihood evaluations) of
// core.Model.RankCommunities. For single-word queries the decomposition is
// exact: softmax over log φ_z,w IS p(z|w). For multi-word queries it
// replaces the paper's product-of-words posterior with the word mixture —
// the usual bag-of-words relaxation that makes the score distributive.
//
// Posting lists keep only each word's perWord highest-scoring communities
// (perWord >= |C| keeps them all and makes single-word ranking exact);
// entries are stored descending by score, flat in memory.
type RankIndex struct {
	numWords int
	offsets  []int32 // len numWords+1; postings of word w are [offsets[w], offsets[w+1])
	comms    []int32
	scores   []float64
}

// buildRankIndex precomputes the posting lists from the model's rank table
// and topic-word distributions, processing words in blocks so the
// transient buffers stay small (O(block·(|Z|+|C|))) even for 50k-word
// vocabularies.
func buildRankIndex(m *core.Model, perWord int) *RankIndex {
	C, Z, V := m.Cfg.NumCommunities, m.Cfg.NumTopics, m.NumWords
	if perWord <= 0 || perWord > C {
		perWord = C
	}
	rt := m.RankTable()
	ix := &RankIndex{
		numWords: V,
		offsets:  make([]int32, V+1),
		comms:    make([]int32, 0, V*perWord),
		scores:   make([]float64, 0, V*perWord),
	}
	const block = 256
	pz := make([]float64, Z*block)     // pz[z*block+j] = p(z | w0+j)
	colSum := make([]float64, block)   // Σ_z φ_z,w
	wordSc := make([]float64, C*block) // wordSc[c*block+j] = S[c][w0+j]
	sel := make([]float64, C)
	for w0 := 0; w0 < V; w0 += block {
		n := V - w0
		if n > block {
			n = block
		}
		for j := 0; j < n; j++ {
			colSum[j] = 0
		}
		for z := 0; z < Z; z++ {
			phi := m.Phi.Row(z)[w0 : w0+n]
			dst := pz[z*block : z*block+n]
			for j, v := range phi {
				dst[j] = v
				colSum[j] += v
			}
		}
		for z := 0; z < Z; z++ {
			dst := pz[z*block : z*block+n]
			for j := range dst {
				if colSum[j] > 0 {
					dst[j] /= colSum[j]
				}
			}
		}
		for c := 0; c < C; c++ {
			dst := wordSc[c*block : c*block+n]
			for j := range dst {
				dst[j] = 0
			}
			row := rt.Row(c)
			for z := 0; z < Z; z++ {
				rv := row[z]
				if rv == 0 {
					continue
				}
				src := pz[z*block : z*block+n]
				for j, v := range src {
					dst[j] += rv * v
				}
			}
		}
		for j := 0; j < n; j++ {
			w := w0 + j
			if colSum[j] <= 0 {
				// The word never occurs under any topic: empty posting list.
				ix.offsets[w+1] = int32(len(ix.comms))
				continue
			}
			for c := 0; c < C; c++ {
				sel[c] = wordSc[c*block+j]
			}
			ix.appendTop(sel, perWord)
			ix.offsets[w+1] = int32(len(ix.comms))
		}
	}
	return ix
}

// appendTop appends the k highest entries of sel as one posting list,
// descending by score.
func (ix *RankIndex) appendTop(sel []float64, k int) {
	for _, c := range mathx.TopKIndices(sel, k) {
		ix.comms = append(ix.comms, int32(c))
		ix.scores = append(ix.scores, sel[c])
	}
}

// Postings returns word w's posting list views (communities and scores,
// descending by score). The slices are owned by the index.
func (ix *RankIndex) Postings(w int32) ([]int32, []float64) {
	lo, hi := ix.offsets[w], ix.offsets[w+1]
	return ix.comms[lo:hi], ix.scores[lo:hi]
}

// Accumulate adds each query word's posting list into the dense score
// accumulator (len |C|). The caller zeroes scores beforehand; ranking is
// invariant to the 1/|q| normalization, which is therefore skipped.
func (ix *RankIndex) Accumulate(scores []float64, query []int32) {
	for _, w := range query {
		lo, hi := ix.offsets[w], ix.offsets[w+1]
		comms := ix.comms[lo:hi]
		vals := ix.scores[lo:hi]
		for i, c := range comms {
			scores[c] += vals[i]
		}
	}
}

// Bytes estimates the index's heap footprint.
func (ix *RankIndex) Bytes() int64 {
	return 4*int64(len(ix.offsets)) + 4*int64(len(ix.comms)) + 8*int64(len(ix.scores))
}

// PostingsPerWord reports the index's effective posting-list bound (the
// longest stored list).
func (ix *RankIndex) PostingsPerWord() int {
	maxLen := 0
	for w := 0; w < ix.numWords; w++ {
		if n := int(ix.offsets[w+1] - ix.offsets[w]); n > maxLen {
			maxLen = n
		}
	}
	return maxLen
}
