//go:build linux

package serve

import (
	"os"
	"strconv"
	"strings"
)

// ProcessRSS returns the process's resident set size in bytes, read from
// /proc/self/statm (field 2 is resident pages). Returns 0 on any parse
// trouble — stats must never fail a serving request.
func ProcessRSS() int64 {
	buf, err := os.ReadFile("/proc/self/statm")
	if err != nil {
		return 0
	}
	fields := strings.Fields(string(buf))
	if len(fields) < 2 {
		return 0
	}
	pages, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return 0
	}
	return pages * int64(os.Getpagesize())
}
