package serve

import (
	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/socialgraph"
	"repro/internal/sparse"
)

// SyntheticModel assembles a well-formed random model of the given shape
// without a training run — the substrate for serving benchmarks and load
// tests (BenchmarkServeRank runs it at |C|=100, |W|=50k), where training a
// model that large would dominate the measurement. All distribution blocks
// are row-normalized and the prediction caches are rebuilt, so every
// query path works exactly as on a trained model.
func SyntheticModel(users, C, Z, V int, seed uint64) *core.Model {
	r := rng.New(seed)
	const buckets = 24
	m := &core.Model{
		Cfg: core.Config{
			NumCommunities: C, NumTopics: Z, Seed: seed,
		}.WithDefaults(),
		NumUsers:   users,
		NumWords:   V,
		NumBuckets: buckets,
		Pi:         sparse.NewDense(users, C),
		Theta:      sparse.NewDense(C, Z),
		Phi:        sparse.NewDense(Z, V),
		Eta:        sparse.NewTensor3(C, C, Z),
		Nu:         make([]float64, socialgraph.FeatureDim),
		PopFreq:    sparse.NewDense(buckets, Z),
	}
	// Sparse-ish memberships: a handful of communities per user, like a
	// trained π (the smoothed-vector fast paths depend on that shape).
	for u := 0; u < users; u++ {
		row := m.Pi.Row(u)
		for i := range row {
			row[i] = 1e-4
		}
		for k := 0; k < 3; k++ {
			row[r.Intn(C)] += r.Float64()
		}
	}
	fill := func(xs []float64) {
		for i := range xs {
			xs[i] = r.Float64()
		}
	}
	fill(m.Theta.Data)
	fill(m.Phi.Data)
	fill(m.PopFreq.Data)
	fill(m.Nu)
	// Eta is a per-community distribution over (c', z) cells; random mass,
	// normalized per leading community.
	fill(m.Eta.Data)
	cells := C * Z
	for c := 0; c < C; c++ {
		seg := m.Eta.Data[c*cells : (c+1)*cells]
		var s float64
		for _, v := range seg {
			s += v
		}
		for i := range seg {
			seg[i] /= s
		}
	}
	m.Pi.NormalizeRows()
	m.Theta.NormalizeRows()
	m.Phi.NormalizeRows()
	m.PopFreq.NormalizeRows()
	m.Rehydrate()
	return m
}
