// Package serve is the online profile-serving subsystem: the read path
// between a trained CPD model and the HTTP edge. The paper ships its
// results as an interactive service (SocialLens, footnote 1); this package
// is the engine such a service needs to hold up under load:
//
//   - one Engine hosts any number of named snapshots (e.g. per-region
//     models); each lives behind an atomic pointer, so Swap/Reload
//     hot-swaps a model with zero downtime — in-flight queries keep the
//     snapshot they started on, and no query ever observes a torn mix of
//     two models;
//   - snapshots hold matrix *views*, not owned copies: a model opened
//     from a v2 snapshot (store.Open) aliases a read-only file mapping,
//     and the mapping's lifetime is tied to the snapshot's reference
//     count — the file is unmapped only when the last in-flight query
//     releases it, never under one;
//   - user-scoped state (memberships, community member lists) lives in a
//     sharded user index (N shards by user id), built shard-parallel per
//     snapshot;
//   - Eq. 19 community ranking runs over a precomputed inverted index
//     (word → community posting lists, see RankIndex) instead of scoring
//     every community against every topic per query;
//   - fold-in inference (FoldIn) gives users the model was never trained
//     on a community membership and profile, by a short seeded Gibbs pass
//     against the frozen Φ/Θ/Π — batched through a persistent worker pool
//     in the spirit of core.Engine's segment workers;
//   - every endpoint keeps a log-bucketed latency histogram (Stats,
//     p50/p95/p99 included), StatsReport adds process RSS plus
//     per-snapshot mapped/heap byte accounting, the engine stores a
//     bounded per-snapshot history of structural quality reports
//     (internal/quality) served on /api/quality, and WriteMetrics
//     exports the whole surface in Prometheus text format (/metrics).
//
// internal/lens builds its browser UI on this engine; cmd/cpd-serve
// exposes it as a headless JSON API.
package serve

import (
	"fmt"
	"io"
	"slices"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/hist"
	"repro/internal/mathx"
	"repro/internal/quality"
	"repro/internal/shard"
	"repro/internal/sparse"
	"repro/internal/store"
)

// DefaultSnapshot is the snapshot name the unqualified query API (and the
// HTTP surface without a ?snapshot= parameter) resolves against.
const DefaultSnapshot = "default"

// Options tunes an Engine. The zero value is ready for use.
type Options struct {
	// PostingsPerWord bounds each word's posting list in the inverted rank
	// index. Longer lists rank more exactly but cost more memory and query
	// time; PostingsPerWord >= |C| makes single-word ranking exact.
	// 0 selects the default (32).
	PostingsPerWord int
	// FoldInWorkers sizes the persistent fold-in worker pool FoldInBatch
	// fans out over. Results are bit-identical for every value (each
	// request is a pure function of the snapshot and its own seed);
	// 0 selects the default (4).
	FoldInWorkers int
	// UserShards is the shard count of the per-snapshot user index (users
	// partition by id modulo UserShards; shards build in parallel).
	// 0 selects the default (8).
	UserShards int
	// Mmap makes Reload open v2 snapshot files through store.Open — the
	// zero-copy mapped path — instead of the copying loader. v1 and JSON
	// files still load by copy. The mapped file stays mapped for as long
	// as any query uses the snapshot (refcounted; see Snapshot).
	Mmap bool
	// Pipeline tokenizes free-text rank queries. A zero pipeline (with
	// MinDocTokens forced to 1) passes tokens through unstemmed.
	Pipeline corpus.Pipeline

	// MemberTopK is the "top communities per user" convention used for
	// member lists (default 5, the paper's choice).
	MemberTopK int

	// QualityHistory bounds the per-snapshot ring of structural quality
	// reports kept for /api/quality (default 32 generations).
	QualityHistory int
}

func (o Options) withDefaults() Options {
	if o.PostingsPerWord == 0 {
		o.PostingsPerWord = 32
	}
	if o.FoldInWorkers == 0 {
		o.FoldInWorkers = 4
	}
	if o.UserShards == 0 {
		o.UserShards = 8
	}
	if o.Pipeline.MinDocTokens == 0 {
		o.Pipeline.MinDocTokens = 1
	}
	if o.MemberTopK == 0 {
		o.MemberTopK = 5
	}
	if o.QualityHistory == 0 {
		o.QualityHistory = 32
	}
	return o
}

// Snapshot is one immutable serving state: a model, its optional
// vocabulary, and everything precomputed from them. Queries resolve
// against exactly one snapshot, so a Swap during a request can never mix
// parameters from two models.
//
// A snapshot's matrices are views — for a mapped model they alias a
// read-only file mapping owned by the snapshot. The snapshot therefore
// carries a reference count: it is born with one reference (slot
// ownership), every query pins it for the duration (Engine.Acquire /
// Release), the owning slot drops its reference on swap, and the backing
// mapping is closed exactly when the count reaches zero. An in-flight
// query can never see an unmapped page.
type Snapshot struct {
	Model *core.Model
	Vocab *corpus.Vocabulary
	// Name is the engine slot the snapshot serves under.
	Name string
	// Version increments on every swap (globally across the engine's
	// snapshots); results carry it so callers can attribute answers to a
	// model generation.
	Version uint64
	// Generation is the publisher's generation number the snapshot was
	// built from (0 = not generation-tracked). Unlike Version — which is
	// process-local — generations are assigned by the publisher and so
	// compare across replicas; the distribution tier (serve.Fetcher,
	// internal/router) keys freshness on it. Set it before Promote.
	Generation uint64
	// Shard identifies the user range this snapshot owns when its model is
	// a shard of a sharded generation (nil for full snapshots). User-scoped
	// queries accept GLOBAL user ids: owned ids are translated to local Π
	// rows, non-owned ids answer ErrNotOwned so a shard-aware router can
	// re-route. Rank and diffusion stay exact — they read only the global
	// sections (plus rows the caller supplies).
	Shard *shard.Info

	opts     Options
	openness []int
	labels   []string
	index    *RankIndex
	users    *userIndex

	refs        atomic.Int64
	closer      io.Closer // mapped backing; nil for heap snapshots
	mapped      bool
	mappedBytes int64
	heapBytes   int64
}

func newSnapshot(m *core.Model, vocab *corpus.Vocabulary, name string, version uint64, opts Options) *Snapshot {
	s := &Snapshot{
		Model:    m,
		Vocab:    vocab,
		Name:     name,
		Version:  version,
		opts:     opts,
		openness: apps.Openness(m),
		labels:   communityLabels(m, vocab),
		index:    buildRankIndex(m, opts.PostingsPerWord),
		users:    buildUserIndex(m, opts.UserShards, opts.MemberTopK),
	}
	s.refs.Store(1)
	// Derived state is always heap; the matrices count as heap until a
	// mapped backing is attached (attachMapped subtracts them).
	s.heapBytes = m.CacheBytes() + s.index.Bytes() + s.users.bytes() + m.MatrixBytes()
	return s
}

// Delta describes how a model differs from the one behind an existing
// snapshot, letting snapshot construction reuse unchanged derived state
// (PatchFrom). The zero Delta means "nothing changed beyond appended
// users".
type Delta struct {
	// Users lists the users whose membership row (π_u) changed, in any
	// order (PatchFrom normalizes). Users with ids at or past the
	// previous snapshot's user count are implicitly new and need not be
	// listed.
	Users []int32
	// Words lists vocabulary ids whose topic-word column (φ_·,w) changed
	// while the global rank table (Θ, η) stayed fixed.
	Words []int32
	// Globals marks the shared profile blocks (Θ, Φ, η, ν wholesale) as
	// changed — forces a full rebuild of every derived structure.
	Globals bool
}

// PatchFrom builds a snapshot of m by patching prev's derived state:
// rank-index posting lists are recomputed only for delta.Words, user
// shards and member lists only where delta.Users (plus appended users)
// moved, and everything else — openness, labels, unchanged posting
// lists, untouched shards — is shared with prev. Sharing is safe because
// derived state is immutable and heap-allocated (never a view into
// prev's possibly-mapped matrices), so it outlives prev's retirement.
//
// A patched snapshot is bit-identical to a from-scratch newSnapshot of m
// provided the delta covers every change between prev.Model and m: the
// per-word rank scorer and per-slot top-K selection run the exact float
// operation sequences of the full builders. When patching does not apply
// — delta.Globals, a changed community/topic/word count, or a shrunken
// user set — PatchFrom falls back to a full build.
//
// The returned snapshot is not yet published and carries one reference
// (for the slot that will own it); callers that abandon it must Release
// it.
func PatchFrom(prev *Snapshot, m *core.Model, vocab *corpus.Vocabulary, delta Delta) *Snapshot {
	pm := prev.Model
	if delta.Globals ||
		m.Cfg.NumCommunities != pm.Cfg.NumCommunities ||
		m.Cfg.NumTopics != pm.Cfg.NumTopics ||
		m.NumWords != pm.NumWords ||
		m.NumUsers < pm.NumUsers {
		return newSnapshot(m, vocab, prev.Name, 0, prev.opts)
	}
	opts := prev.opts
	s := &Snapshot{
		Model:    m,
		Vocab:    vocab,
		Name:     prev.Name,
		opts:     opts,
		openness: prev.openness, // depends on η only, unchanged by definition here
		labels:   prev.labels,
		users:    patchUserIndex(prev.users, m, normalizeDirty(delta.Users, pm.NumUsers)),
	}
	if len(delta.Words) == 0 {
		s.index = prev.index
	} else {
		s.index = patchRankIndex(prev.index, m, opts.PostingsPerWord, delta.Words)
		// Labels read Φ's top words; a vocabulary-touching delta may move
		// them.
		s.labels = communityLabels(m, vocab)
	}
	if vocab != prev.Vocab && len(delta.Words) == 0 {
		s.labels = communityLabels(m, vocab)
	}
	s.refs.Store(1)
	s.heapBytes = m.CacheBytes() + s.index.Bytes() + s.users.bytes() + m.MatrixBytes()
	return s
}

func communityLabels(m *core.Model, vocab *corpus.Vocabulary) []string {
	labels := make([]string, m.Cfg.NumCommunities)
	for c := range labels {
		labels[c] = apps.CommunityLabel(m, vocab, c, 3)
	}
	return labels
}

// normalizeDirty sorts, dedups, and clips the explicit dirty-user set to
// ids below the previous snapshot's user count (larger ids are the
// implicit appended range).
func normalizeDirty(users []int32, prevUsers int) []int32 {
	out := make([]int32, 0, len(users))
	for _, u := range users {
		if u >= 0 && int(u) < prevUsers {
			out = append(out, u)
		}
	}
	slices.Sort(out)
	return slices.Compact(out)
}

// AttachMapped records the mapped backing of the snapshot's model and
// hands the snapshot ownership of mm (unmapped when the last reference
// goes). Must run before the snapshot is published. On the aligned-copy
// fallback (no real kernel mapping) the matrices stay accounted as heap
// — which they are.
func (s *Snapshot) AttachMapped(mm *store.MappedModel) {
	s.AttachFiles(mm, mm.Mapped(), mm.MappedBytes())
}

// AttachFiles is AttachMapped generalized to any closer-backed matrix
// storage — e.g. a shard group spanning two file mappings. closer is
// closed when the last reference goes; mapped/mappedBytes describe
// whether (and how much of) the backing is a real kernel mapping.
func (s *Snapshot) AttachFiles(closer io.Closer, mapped bool, mappedBytes int64) {
	s.closer = closer
	s.mapped = mapped
	if mapped {
		s.mappedBytes = mappedBytes
		s.heapBytes -= s.Model.MatrixBytes()
	}
}

// tryAcquire pins the snapshot unless it is already fully released.
func (s *Snapshot) tryAcquire() bool {
	for {
		n := s.refs.Load()
		if n <= 0 {
			return false
		}
		if s.refs.CompareAndSwap(n, n+1) {
			return true
		}
	}
}

// Release drops one reference. When the last reference goes, the mapped
// backing (if any) is closed — after which the snapshot's matrices must
// not be touched. Engine.Acquire hands out the matching acquire.
func (s *Snapshot) Release() {
	if s.refs.Add(-1) == 0 && s.closer != nil {
		s.closer.Close()
	}
}

// Label returns community c's display label ("data database search"
// style, or "cNN" without a vocabulary), precomputed per snapshot.
func (s *Snapshot) Label(c int) string { return s.labels[c] }

// Members returns the users having community c among their top-k
// memberships (k = Options.MemberTopK), as global ids. On a shard
// snapshot the list covers only the owned user range.
func (s *Snapshot) Members(c int) []int {
	ms := s.users.members(c)
	if s.Shard == nil {
		return ms
	}
	out := make([]int, len(ms))
	for i, u := range ms {
		out[i] = u + s.Shard.UserLo
	}
	return out
}

// Openness returns community c's openness count (above-average diffusion
// edges shared with other communities).
func (s *Snapshot) Openness(c int) int { return s.openness[c] }

// Mapped reports whether the snapshot's matrices alias a file mapping.
func (s *Snapshot) Mapped() bool { return s.mapped }

// Endpoint identifiers for the latency histograms.
const (
	epCommunities = iota
	epCommunity
	epMembership
	epRank
	epDiffusion
	epFoldIn
	epReload
	epStats
	epQuality
	epMetrics
	epPiRow
	epCount
)

var endpointNames = [epCount]string{
	"communities", "community", "membership", "rank", "diffusion", "foldin", "reload",
	"stats", "quality", "metrics", "pirow",
}

// EndpointStats is one endpoint's latency digest: the cumulative counters
// plus p50/p95/p99 from the shared log-bucketed histogram (internal/hist)
// — the same geometry the load generator and /metrics report, so the
// numbers line up across all three surfaces.
type EndpointStats struct {
	Count       uint64 `json:"count"`
	Errors      uint64 `json:"errors"`
	TotalMicros uint64 `json:"totalMicros"`
	MaxMicros   uint64 `json:"maxMicros"`
	P50Micros   uint64 `json:"p50Micros"`
	P95Micros   uint64 `json:"p95Micros"`
	P99Micros   uint64 `json:"p99Micros"`
}

// slot is one named snapshot holder.
type slot struct {
	snap atomic.Pointer[Snapshot]
}

// Engine is the concurrent query engine: a set of named snapshot slots
// plus the shared fold-in worker pool and latency counters. All methods
// are safe for concurrent use, including concurrently with Swap/Reload/
// DropSnapshot on any slot.
type Engine struct {
	opts Options

	// mu guards the slots map's shape; the snapshots themselves swap
	// through per-slot atomic pointers, so readers hold mu only for the
	// map lookup.
	mu    sync.RWMutex
	slots map[string]*slot

	version atomic.Uint64
	// swapMu serializes writers (Reload/Swap/Drop); readers never take it.
	swapMu sync.Mutex

	// draining is the one-way drain latch (Drain/Draining): advertised on
	// /healthz and /api/generation so routers deprioritize this replica.
	draining atomic.Bool

	lat [epCount]hist.Atomic

	// ingestStats, when set (SetIngestStats), contributes the streaming
	// freshness/lag section of StatsReport; replicaStats
	// (SetReplicaStats) the snapshot fetcher's.
	ingestStats  atomic.Value // of func() any
	replicaStats atomic.Value // of func() any

	// qualityMu guards the bounded per-snapshot quality report history
	// and the per-snapshot baseline comparison row.
	qualityMu       sync.Mutex
	qualityHist     map[string][]*quality.Report
	qualityBaseline map[string]*quality.Report

	// collectorsMu guards extra /metrics contributors (AddMetricsCollector).
	collectorsMu sync.Mutex
	collectors   []func(io.Writer)

	foldJobs  chan foldJob
	closeOnce sync.Once
}

// NewMulti builds an engine with no snapshots; load them with Swap,
// SwapMapped or Reload under chosen names.
func NewMulti(opts Options) *Engine {
	e := &Engine{
		opts:            opts.withDefaults(),
		slots:           make(map[string]*slot),
		qualityHist:     make(map[string][]*quality.Report),
		qualityBaseline: make(map[string]*quality.Report),
	}
	e.foldJobs = make(chan foldJob)
	for i := 0; i < e.opts.FoldInWorkers; i++ {
		go e.foldWorker()
	}
	return e
}

// New builds an engine serving m as the default snapshot (vocab may be
// nil: numeric labels only, free-text queries disabled) and starts its
// fold-in worker pool.
func New(m *core.Model, vocab *corpus.Vocabulary, opts Options) *Engine {
	e := NewMulti(opts)
	e.Swap(m, vocab)
	return e
}

// Close stops the fold-in worker pool and drops every snapshot slot
// (releasing the engine's references; mapped backings unmap once their
// last in-flight query finishes). The engine must not be used after
// Close.
func (e *Engine) Close() {
	e.closeOnce.Do(func() {
		close(e.foldJobs)
		e.swapMu.Lock()
		defer e.swapMu.Unlock()
		e.mu.Lock()
		slots := e.slots
		e.slots = make(map[string]*slot)
		e.mu.Unlock()
		for _, sl := range slots {
			if s := sl.snap.Swap(nil); s != nil {
				s.Release()
			}
		}
	})
}

// ErrNoSnapshot reports a query against a snapshot name the engine does
// not hold.
type ErrNoSnapshot struct{ Name string }

func (e *ErrNoSnapshot) Error() string {
	return fmt.Sprintf("serve: no snapshot named %q", e.Name)
}

// ErrNotOwned reports a user-scoped query against a shard snapshot that
// does not own the user — a misroute, not a bad request. The HTTP layer
// answers 421 (Misdirected Request) so a shard-aware router can retry
// against the owning replica; Shard tells the caller what range this
// replica does own.
type ErrNotOwned struct {
	User  int
	Shard shard.Info
}

func (e *ErrNotOwned) Error() string {
	return fmt.Sprintf("serve: user %d not owned by shard %d/%d (users [%d, %d))",
		e.User, e.Shard.Index, e.Shard.Count, e.Shard.UserLo, e.Shard.UserHi)
}

// localUser maps a global user id to the snapshot's Π row index: the
// identity for full snapshots, a range-checked offset for shard
// snapshots (non-owned ids answer ErrNotOwned).
func (s *Snapshot) localUser(u int) (int, error) {
	if s.Shard == nil {
		if u < 0 || u >= s.Model.NumUsers {
			return 0, fmt.Errorf("serve: user %d out of range [0, %d)", u, s.Model.NumUsers)
		}
		return u, nil
	}
	if u < 0 || u >= s.Shard.TotalUsers {
		return 0, fmt.Errorf("serve: user %d out of range [0, %d)", u, s.Shard.TotalUsers)
	}
	if !s.Shard.Owns(u) {
		return 0, &ErrNotOwned{User: u, Shard: *s.Shard}
	}
	return u - s.Shard.UserLo, nil
}

// globalUser maps a local Π row index back to the global id space.
func (s *Snapshot) globalUser(local int) int {
	if s.Shard == nil {
		return local
	}
	return local + s.Shard.UserLo
}

// Acquire pins the default snapshot for a sequence of reads and returns
// it with its release func. Every read through the snapshot is consistent
// regardless of concurrent swaps, and for mapped snapshots the pin is
// what keeps the file mapped. Always call release (defer it).
func (e *Engine) Acquire() (*Snapshot, func(), error) {
	return e.AcquireNamed(DefaultSnapshot)
}

// AcquireNamed pins the named snapshot; see Acquire.
func (e *Engine) AcquireNamed(name string) (*Snapshot, func(), error) {
	for {
		e.mu.RLock()
		sl := e.slots[name]
		e.mu.RUnlock()
		if sl == nil {
			return nil, nil, &ErrNoSnapshot{Name: name}
		}
		s := sl.snap.Load()
		if s == nil {
			return nil, nil, &ErrNoSnapshot{Name: name}
		}
		if s.tryAcquire() {
			return s, s.Release, nil
		}
		// Raced with a swap that released the slot's reference between our
		// load and pin; the slot already points at a newer snapshot.
	}
}

// View returns the current default snapshot WITHOUT pinning it: one
// atomic load, after which reads through it are consistent. This is safe
// for heap-backed snapshots (the GC keeps a retired snapshot alive while
// anyone holds it); code that may serve mapped snapshots must use Acquire
// instead, because an unpinned mapped snapshot can be unmapped by a
// concurrent swap.
func (e *Engine) View() *Snapshot {
	e.mu.RLock()
	sl := e.slots[DefaultSnapshot]
	e.mu.RUnlock()
	if sl == nil {
		return nil
	}
	return sl.snap.Load()
}

// Names returns the engine's snapshot names, sorted.
func (e *Engine) Names() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	names := make([]string, 0, len(e.slots))
	for name := range e.slots {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// publish installs s as the new snapshot of its named slot, creating the
// slot if needed, and releases the slot's reference on the one it
// replaces.
func (e *Engine) publish(s *Snapshot) uint64 {
	e.swapMu.Lock()
	defer e.swapMu.Unlock()
	s.Version = e.version.Add(1)
	e.mu.Lock()
	sl := e.slots[s.Name]
	if sl == nil {
		sl = &slot{}
		e.slots[s.Name] = sl
	}
	e.mu.Unlock()
	if old := sl.snap.Swap(s); old != nil {
		old.Release()
	}
	return s.Version
}

// Swap atomically replaces the default serving model in-process and
// returns the new version. In-flight queries finish on the snapshot they
// started with.
func (e *Engine) Swap(m *core.Model, vocab *corpus.Vocabulary) uint64 {
	return e.SwapNamed(DefaultSnapshot, m, vocab)
}

// SwapNamed atomically replaces (or creates) the named snapshot.
func (e *Engine) SwapNamed(name string, m *core.Model, vocab *corpus.Vocabulary) uint64 {
	return e.publish(newSnapshot(m, vocab, name, 0, e.opts))
}

// SwapMapped atomically replaces (or creates) the named snapshot with a
// model opened from a mapped v2 snapshot file. The engine takes ownership
// of mm: its mapping is closed when the snapshot is retired and the last
// in-flight query releases it.
func (e *Engine) SwapMapped(name string, mm *store.MappedModel, vocab *corpus.Vocabulary) uint64 {
	s := newSnapshot(mm.Model, vocab, name, 0, e.opts)
	s.AttachMapped(mm)
	return e.publish(s)
}

// BuildSnapshot constructs — without publishing — a snapshot of m for
// the named slot: patched from the slot's current snapshot when delta is
// non-nil and a predecessor exists (PatchFrom), fully built otherwise.
// The caller publishes it with Promote or must Release it if abandoned.
// Splitting construction from promotion lets callers time the two phases
// separately and attach a mapped backing (Snapshot.AttachMapped) before
// the snapshot goes live.
func (e *Engine) BuildSnapshot(name string, m *core.Model, vocab *corpus.Vocabulary, delta *Delta) *Snapshot {
	if delta != nil {
		if prev, release, err := e.AcquireNamed(name); err == nil {
			s := PatchFrom(prev, m, vocab, *delta)
			release()
			return s
		}
	}
	return newSnapshot(m, vocab, name, 0, e.opts)
}

// Promote atomically installs a snapshot from BuildSnapshot into its
// named slot and returns the new version. In-flight queries finish on
// the snapshot they started with.
func (e *Engine) Promote(s *Snapshot) uint64 { return e.publish(s) }

// PromoteShardGroup publishes an opened shard group (internal/shard) as
// the named snapshot: local Π rows and doc windows, full global sections,
// with the shard identity attached so user-scoped queries translate
// global ids and answer ErrNotOwned outside the owned range. The engine
// takes ownership of g — its mappings close when the snapshot retires
// and the last in-flight query drains.
func (e *Engine) PromoteShardGroup(name string, g *shard.Group, vocab *corpus.Vocabulary, gen uint64) uint64 {
	s := newSnapshot(g.Model, vocab, name, 0, e.opts)
	s.Generation = gen
	info := g.Info
	s.Shard = &info
	s.AttachFiles(g, g.Mapped, g.MappedBytes)
	return e.publish(s)
}

// Drain flips the engine into draining mode: /healthz advertises it so
// routers stop sending new owned-user work here, while in-flight and
// straggler queries keep being answered. Draining is one-way — restart
// the process to rejoin a fleet.
func (e *Engine) Drain() { e.draining.Store(true) }

// Draining reports whether Drain was called.
func (e *Engine) Draining() bool { return e.draining.Load() }

// SwapPatched is BuildSnapshot+Promote in one step — the delta-aware
// counterpart of SwapNamed.
func (e *Engine) SwapPatched(name string, m *core.Model, vocab *corpus.Vocabulary, delta Delta) uint64 {
	return e.publish(e.BuildSnapshot(name, m, vocab, &delta))
}

// DropSnapshot removes the named slot, releasing the engine's reference.
// In-flight queries finish unharmed; new queries for the name fail with
// ErrNoSnapshot.
func (e *Engine) DropSnapshot(name string) bool {
	e.swapMu.Lock()
	defer e.swapMu.Unlock()
	e.mu.Lock()
	sl := e.slots[name]
	delete(e.slots, name)
	e.mu.Unlock()
	if sl == nil {
		return false
	}
	if s := sl.snap.Swap(nil); s != nil {
		s.Release()
	}
	return true
}

// Reload loads a model snapshot from modelPath into the default slot —
// binary v1/v2 or JSON, sniffed; with Options.Mmap, v2 files load through
// the zero-copy mapped path — and hot-swaps it in. vocabPath may be empty
// to keep the slot's current vocabulary. On error the serving state is
// left untouched.
func (e *Engine) Reload(modelPath, vocabPath string) (version uint64, err error) {
	return e.ReloadNamed(DefaultSnapshot, modelPath, vocabPath)
}

// ReloadNamed is Reload into a named slot (created if absent).
func (e *Engine) ReloadNamed(name, modelPath, vocabPath string) (version uint64, err error) {
	start := time.Now()
	defer func() { e.lat[epReload].Observe(time.Since(start), err) }()
	var vocab *corpus.Vocabulary
	if s, release, err := e.AcquireNamed(name); err == nil {
		vocab = s.Vocab
		release()
	}
	if vocabPath != "" {
		vocab, err = corpus.ReadVocabularyFile(vocabPath)
		if err != nil {
			return 0, err
		}
	}
	return e.loadSnapshot(name, modelPath, vocab)
}

// LoadSnapshot loads modelPath into the named slot with an
// already-parsed vocabulary (nil disables free-text queries) — the path
// callers hosting many snapshots over one shared vocabulary use, so the
// vocabulary file is not re-read per slot.
func (e *Engine) LoadSnapshot(name, modelPath string, vocab *corpus.Vocabulary) (version uint64, err error) {
	start := time.Now()
	defer func() { e.lat[epReload].Observe(time.Since(start), err) }()
	return e.loadSnapshot(name, modelPath, vocab)
}

// loadSnapshot loads a model file (mapped when Options.Mmap and the file
// is v2; copied otherwise) and publishes it under name.
func (e *Engine) loadSnapshot(name, modelPath string, vocab *corpus.Vocabulary) (uint64, error) {
	return e.loadGeneration(name, modelPath, vocab, 0)
}

// LoadGeneration is LoadSnapshot for a generation-numbered snapshot
// file: the promoted snapshot (and every result it answers) carries gen,
// so freshness compares across replicas serving the same publisher. The
// replica fetcher promotes through this after verifying the file.
func (e *Engine) LoadGeneration(name, modelPath string, vocab *corpus.Vocabulary, gen uint64) (version uint64, err error) {
	start := time.Now()
	defer func() { e.lat[epReload].Observe(time.Since(start), err) }()
	return e.loadGeneration(name, modelPath, vocab, gen)
}

func (e *Engine) loadGeneration(name, modelPath string, vocab *corpus.Vocabulary, gen uint64) (uint64, error) {
	if e.opts.Mmap {
		if mm, err := store.Open(modelPath); err == nil {
			s := newSnapshot(mm.Model, vocab, name, 0, e.opts)
			s.Generation = gen
			s.AttachMapped(mm)
			return e.publish(s), nil
		}
		// Not a v2 snapshot (or not mappable): fall through to the
		// copying loader, which sniffs every format.
	}
	m, err := store.LoadFile(modelPath)
	if err != nil {
		return 0, err
	}
	s := newSnapshot(m, vocab, name, 0, e.opts)
	s.Generation = gen
	return e.publish(s), nil
}

// Stats returns the per-endpoint latency digests, keyed by endpoint name.
func (e *Engine) Stats() map[string]EndpointStats {
	out := make(map[string]EndpointStats, epCount)
	for i := 0; i < epCount; i++ {
		h := e.lat[i].Snapshot()
		out[endpointNames[i]] = EndpointStats{
			Count:       h.Count,
			Errors:      h.Errs,
			TotalMicros: h.TotalNS / 1e3,
			MaxMicros:   h.MaxNS / 1e3,
			P50Micros:   uint64(h.Quantile(0.50).Microseconds()),
			P95Micros:   uint64(h.Quantile(0.95).Microseconds()),
			P99Micros:   uint64(h.Quantile(0.99).Microseconds()),
		}
	}
	return out
}

// SnapshotStats is one snapshot's resource accounting.
type SnapshotStats struct {
	Name string `json:"name"`
	// Version is the engine's process-local swap counter; Generation the
	// publisher-assigned generation (0 when not generation-tracked),
	// comparable across replicas.
	Version    uint64 `json:"version"`
	Generation uint64 `json:"generation,omitempty"`
	Users      int    `json:"users"`
	Words      int    `json:"words"`
	// Mapped reports a real file mapping; MappedBytes is its size (0 for
	// heap snapshots), HeapBytes the estimated heap footprint (matrices
	// if owned, plus caches and indexes).
	Mapped      bool  `json:"mapped"`
	MappedBytes int64 `json:"mappedBytes"`
	HeapBytes   int64 `json:"heapBytes"`
	// Refs is the number of in-flight query pins (0 = idle; the slot's
	// own reference and the stats reader's pin are excluded).
	Refs int64 `json:"refs"`
	// Shard is the owned user range for shard snapshots (nil for full
	// snapshots) — the topology routers read off /api/snapshots.
	Shard *shard.Info `json:"shard,omitempty"`
}

// SnapshotsInfo reports every live snapshot's accounting, sorted by name.
func (e *Engine) SnapshotsInfo() []SnapshotStats {
	var out []SnapshotStats
	for _, name := range e.Names() {
		s, release, err := e.AcquireNamed(name)
		if err != nil {
			continue
		}
		out = append(out, SnapshotStats{
			Name:        s.Name,
			Version:     s.Version,
			Generation:  s.Generation,
			Users:       s.Model.NumUsers,
			Words:       s.Model.NumWords,
			Mapped:      s.mapped,
			MappedBytes: s.mappedBytes,
			HeapBytes:   s.heapBytes,
			Refs:        s.refs.Load() - 2, // exclude the slot's ref and our own pin
			Shard:       s.Shard,
		})
		release()
	}
	return out
}

// StatsReport is the full /api/stats payload: endpoint latency counters,
// per-snapshot memory accounting, process RSS, and — when a streaming
// updater is attached — its freshness/lag gauge.
type StatsReport struct {
	Endpoints map[string]EndpointStats `json:"endpoints"`
	Snapshots []SnapshotStats          `json:"snapshots"`
	// ProcessRSSBytes is the process's resident set size (0 where the
	// platform offers no cheap reading).
	ProcessRSSBytes int64 `json:"processRSSBytes"`
	// Quality is the latest structural quality report per snapshot slot
	// (the /api/quality history's head), present once any were recorded.
	Quality map[string]*quality.Report `json:"quality,omitempty"`
	// Ingest is the streaming updater's status (generation, pending-event
	// lag, last publish), present only on servers running live ingest.
	Ingest any `json:"ingest,omitempty"`
	// Replica is the snapshot fetcher's status (source, promoted
	// generation, fetch/verify counters), present only on replicas that
	// pull generations from a publisher (serve.Fetcher).
	Replica any `json:"replica,omitempty"`
}

// SetIngestStats attaches a provider whose value is embedded as the
// "ingest" section of every StatsReport — how cmd/cpd-serve surfaces the
// stream updater's freshness gauge on /api/stats without this package
// depending on internal/stream. nil detaches.
func (e *Engine) SetIngestStats(fn func() any) {
	e.ingestStats.Store(fn)
}

// SetReplicaStats attaches a provider whose value is embedded as the
// "replica" section of every StatsReport — the fetcher counterpart of
// SetIngestStats. nil detaches.
func (e *Engine) SetReplicaStats(fn func() any) {
	e.replicaStats.Store(fn)
}

// StatsReport assembles the full stats payload.
func (e *Engine) StatsReport() *StatsReport {
	r := &StatsReport{
		Endpoints:       e.Stats(),
		Snapshots:       e.SnapshotsInfo(),
		ProcessRSSBytes: ProcessRSS(),
		Quality:         e.latestQuality(),
	}
	if fn, ok := e.ingestStats.Load().(func() any); ok && fn != nil {
		r.Ingest = fn()
	}
	if fn, ok := e.replicaStats.Load().(func() any); ok && fn != nil {
		r.Replica = fn()
	}
	return r
}

// --- typed query API ----------------------------------------------------

// CommunityWeight is one (community, weight) membership entry.
type CommunityWeight struct {
	Community int     `json:"community"`
	Weight    float64 `json:"weight"`
}

// CommunitySummary is the list-view payload of one community.
type CommunitySummary struct {
	ID       int     `json:"id"`
	Label    string  `json:"label"`
	Members  int     `json:"members"`
	Openness int     `json:"openness"`
	SelfDiff float64 `json:"selfDiffusion"`
}

// TopicShare is one entry of a community's content profile.
type TopicShare struct {
	Topic int      `json:"topic"`
	Share float64  `json:"share"`
	Words []string `json:"words,omitempty"`
}

// FlowSummary is one topic-specific community-to-community diffusion flow.
type FlowSummary struct {
	Community int     `json:"community"`
	Topic     int     `json:"topic"`
	Strength  float64 `json:"strength"`
}

// CommunityDetail is the full profile triple of one community.
type CommunityDetail struct {
	CommunitySummary
	TopTopics     []TopicShare  `json:"topTopics"`
	TopAttributes []int         `json:"topAttributes,omitempty"`
	OutFlows      []FlowSummary `json:"outFlows"`
	InFlows       []FlowSummary `json:"inFlows"`
	MemberSample  []int         `json:"memberSample"`
}

// MembershipResult is a user's community membership answer.
type MembershipResult struct {
	User        int               `json:"user"`
	Version     uint64            `json:"version"`
	Generation  uint64            `json:"generation,omitempty"`
	Communities []CommunityWeight `json:"communities"`
}

// RankEntry is one Eq. 19 ranking entry.
type RankEntry struct {
	Community int     `json:"community"`
	Label     string  `json:"label"`
	Score     float64 `json:"score"`
	Members   int     `json:"members"`
}

// RankResult is the answer to a profile-driven ranking query.
type RankResult struct {
	Version    uint64      `json:"version"`
	Generation uint64      `json:"generation,omitempty"`
	Entries    []RankEntry `json:"entries"`
}

// DiffusionResult is a per-topic diffusion probability answer (Eq. 5's
// sigmoid without the individual-preference features, which need pairwise
// graph context the serving layer does not hold).
type DiffusionResult struct {
	Version    uint64  `json:"version"`
	Generation uint64  `json:"generation,omitempty"`
	Logit      float64 `json:"logit"`
	Prob       float64 `json:"prob"`
}

func (s *Snapshot) summary(c int) CommunitySummary {
	m := s.Model
	var selfD float64
	for z := 0; z < m.Cfg.NumTopics; z++ {
		selfD += m.Eta.At(c, c, z)
	}
	return CommunitySummary{
		ID:       c,
		Label:    s.labels[c],
		Members:  s.users.memberCount(c),
		Openness: s.openness[c],
		SelfDiff: selfD,
	}
}

// Communities returns every community's summary, in community-id order.
func (s *Snapshot) Communities() []CommunitySummary {
	out := make([]CommunitySummary, s.Model.Cfg.NumCommunities)
	for c := range out {
		out[c] = s.summary(c)
	}
	return out
}

// Community returns the full profile of one community.
func (s *Snapshot) Community(c int) (*CommunityDetail, error) {
	m := s.Model
	if c < 0 || c >= m.Cfg.NumCommunities {
		return nil, fmt.Errorf("serve: community %d out of range [0, %d)", c, m.Cfg.NumCommunities)
	}
	d := &CommunityDetail{CommunitySummary: s.summary(c)}
	theta := m.Theta.Row(c)
	for _, z := range mathx.TopKIndices(theta, 3) {
		ts := TopicShare{Topic: z, Share: theta[z]}
		if s.Vocab != nil {
			for _, wid := range m.TopWords(z, 4) {
				ts.Words = append(ts.Words, s.Vocab.Word(wid))
			}
		}
		d.TopTopics = append(d.TopTopics, ts)
	}
	d.TopAttributes = m.TopAttributes(c, 5)
	d.OutFlows, d.InFlows = topFlows(m, c, 5)
	sample := s.Members(c)
	if len(sample) > 10 {
		sample = sample[:10]
	}
	d.MemberSample = append(d.MemberSample, sample...)
	return d, nil
}

// topFlows lists the k strongest topic-specific flows out of and into c.
func topFlows(m *core.Model, c, k int) (outs, ins []FlowSummary) {
	var outAll, inAll []FlowSummary
	for c2 := 0; c2 < m.Cfg.NumCommunities; c2++ {
		for z := 0; z < m.Cfg.NumTopics; z++ {
			if v := m.Eta.At(c, c2, z); v > 0 {
				outAll = append(outAll, FlowSummary{c2, z, v})
			}
			if v := m.Eta.At(c2, c, z); v > 0 {
				inAll = append(inAll, FlowSummary{c2, z, v})
			}
		}
	}
	top := func(fs []FlowSummary) []FlowSummary {
		sort.Slice(fs, func(i, j int) bool { return fs[i].Strength > fs[j].Strength })
		if len(fs) > k {
			fs = fs[:k]
		}
		return fs
	}
	return top(outAll), top(inAll)
}

// Membership returns user u's top-k community memberships, served from
// the sharded user index when k is within the precomputed depth.
func (s *Snapshot) Membership(u, k int) (*MembershipResult, error) {
	m := s.Model
	local, err := s.localUser(u)
	if err != nil {
		return nil, err
	}
	if k <= 0 {
		k = s.opts.MemberTopK
	}
	row := m.Pi.Row(local)
	res := &MembershipResult{User: u, Version: s.Version, Generation: s.Generation}
	if comms, ok := s.users.top(local, k); ok {
		for _, c := range comms {
			res.Communities = append(res.Communities, CommunityWeight{Community: int(c), Weight: row[c]})
		}
		return res, nil
	}
	for _, c := range m.TopCommunities(local, k) {
		res.Communities = append(res.Communities, CommunityWeight{Community: c, Weight: row[c]})
	}
	return res, nil
}

// PiRow returns an owned user's membership row — the hydration endpoint
// shard-aware routers read to carry a row to another shard's replica for
// cross-shard diffusion and fold-in. The returned slice aliases the
// snapshot and must not outlive the caller's pin.
func (s *Snapshot) PiRow(u int) ([]float64, error) {
	local, err := s.localUser(u)
	if err != nil {
		return nil, err
	}
	return s.Model.Pi.Row(local), nil
}

// smoothedFor fills out with user u's smoothed membership vector: from
// the explicit row when one is supplied, from the snapshot's own (owned)
// row otherwise. Both paths produce the exact decomposition the model's
// diffusion cache holds, so scores stay bit-identical to a full node.
func (s *Snapshot) smoothedFor(u int, row []float64, out *sparse.SmoothedVec) error {
	m := s.Model
	if row != nil {
		if len(row) != m.Cfg.NumCommunities {
			return fmt.Errorf("serve: supplied membership row has %d entries, model has %d communities", len(row), m.Cfg.NumCommunities)
		}
		core.SmoothedVecFromRow(row, out)
		return nil
	}
	local, err := s.localUser(u)
	if err != nil {
		return err
	}
	m.PiSmoothed(local, out)
	return nil
}

// DiffusionRows is Diffusion with explicit membership rows standing in
// for the model's own where supplied (nil urow/vrow fall back to the
// local row; a nil row for a non-owned user answers ErrNotOwned). This
// is how a shard-aware router scores cross-shard pairs: it fetches v's
// row from v's owner (PiRow) and posts it here with u's owner.
func (s *Snapshot) DiffusionRows(u, v, z, b int, urow, vrow []float64) (*DiffusionResult, error) {
	m := s.Model
	if z < 0 || z >= m.Cfg.NumTopics {
		return nil, fmt.Errorf("serve: topic %d out of range [0, %d)", z, m.Cfg.NumTopics)
	}
	var a, bb sparse.SmoothedVec
	if err := s.smoothedFor(u, urow, &a); err != nil {
		return nil, err
	}
	if err := s.smoothedFor(v, vrow, &bb); err != nil {
		return nil, err
	}
	logit := m.DiffusionLogitTopicVec(&a, &bb, z, b, nil)
	return &DiffusionResult{Version: s.Version, Generation: s.Generation, Logit: logit, Prob: mathx.Sigmoid(logit)}, nil
}

// Diffusion returns the probability that user u diffuses user v's content
// on topic z in time bucket b (pass b = -1 to skip the popularity factor).
func (s *Snapshot) Diffusion(u, v, z, b int) (*DiffusionResult, error) {
	m := s.Model
	lu, err := s.localUser(u)
	if err != nil {
		return nil, err
	}
	lv, err := s.localUser(v)
	if err != nil {
		return nil, err
	}
	if z < 0 || z >= m.Cfg.NumTopics {
		return nil, fmt.Errorf("serve: topic %d out of range [0, %d)", z, m.Cfg.NumTopics)
	}
	logit := m.DiffusionLogitTopic(lu, lv, z, b, nil)
	return &DiffusionResult{Version: s.Version, Generation: s.Generation, Logit: logit, Prob: mathx.Sigmoid(logit)}, nil
}

// Rank answers an Eq. 19 profile-driven ranking query (a bag of word ids)
// from the inverted index, returning the top-k communities.
func (s *Snapshot) Rank(query []int32, k int) (*RankResult, error) {
	m := s.Model
	if len(query) == 0 {
		return nil, fmt.Errorf("serve: empty rank query")
	}
	for _, w := range query {
		if w < 0 || int(w) >= m.NumWords {
			return nil, fmt.Errorf("serve: query word %d out of range [0, %d)", w, m.NumWords)
		}
	}
	C := m.Cfg.NumCommunities
	if k <= 0 || k > C {
		k = C
	}
	scores := make([]float64, C)
	s.index.Accumulate(scores, query)
	res := &RankResult{Version: s.Version, Generation: s.Generation}
	for _, c := range mathx.TopKIndices(scores, k) {
		res.Entries = append(res.Entries, RankEntry{
			Community: c,
			Label:     s.labels[c],
			Score:     scores[c],
			Members:   s.users.memberCount(c),
		})
	}
	return res, nil
}

// ErrNoVocabulary reports a free-text query against a snapshot without a
// vocabulary.
var ErrNoVocabulary = fmt.Errorf("serve: snapshot has no vocabulary; free-text queries disabled")

// RankText tokenizes a free-text query through the engine's pipeline and
// the snapshot's vocabulary (unknown words dropped) and ranks communities.
func (s *Snapshot) RankText(query string, k int) (*RankResult, error) {
	if s.Vocab == nil {
		return nil, ErrNoVocabulary
	}
	var ids []int32
	for _, tok := range s.opts.Pipeline.Process(query) {
		if id, ok := s.Vocab.ID(tok); ok {
			ids = append(ids, int32(id))
		}
	}
	if len(ids) == 0 {
		return nil, fmt.Errorf("serve: no query token of %q is in the vocabulary", query)
	}
	return s.Rank(ids, k)
}

// --- engine-level instrumented wrappers ---------------------------------

// onSnapshot runs fn against a pinned named snapshot with latency
// accounting on the given endpoint counter.
func (e *Engine) onSnapshot(ep int, name string, fn func(*Snapshot) error) error {
	start := time.Now()
	var err error
	defer func() { e.lat[ep].Observe(time.Since(start), err) }()
	s, release, aerr := e.AcquireNamed(name)
	if aerr != nil {
		err = aerr
		return err
	}
	defer release()
	err = fn(s)
	return err
}

// Communities returns every community's summary from the default snapshot.
func (e *Engine) Communities() []CommunitySummary {
	out, _ := e.CommunitiesIn(DefaultSnapshot)
	return out
}

// CommunitiesIn is Communities against a named snapshot.
func (e *Engine) CommunitiesIn(name string) (out []CommunitySummary, err error) {
	err = e.onSnapshot(epCommunities, name, func(s *Snapshot) error {
		out = s.Communities()
		return nil
	})
	return out, err
}

// Community returns the full profile of one community (default snapshot).
func (e *Engine) Community(c int) (*CommunityDetail, error) {
	return e.CommunityIn(DefaultSnapshot, c)
}

// CommunityIn is Community against a named snapshot.
func (e *Engine) CommunityIn(name string, c int) (detail *CommunityDetail, err error) {
	err = e.onSnapshot(epCommunity, name, func(s *Snapshot) error {
		detail, err = s.Community(c)
		return err
	})
	return detail, err
}

// Membership returns user u's top-k community memberships (default
// snapshot).
func (e *Engine) Membership(u, k int) (*MembershipResult, error) {
	return e.MembershipIn(DefaultSnapshot, u, k)
}

// MembershipIn is Membership against a named snapshot.
func (e *Engine) MembershipIn(name string, u, k int) (res *MembershipResult, err error) {
	err = e.onSnapshot(epMembership, name, func(s *Snapshot) error {
		res, err = s.Membership(u, k)
		return err
	})
	return res, err
}

// Diffusion returns the probability that user u diffuses user v's content
// on topic z in time bucket b (default snapshot; b = -1 skips the
// popularity factor).
func (e *Engine) Diffusion(u, v, z, b int) (*DiffusionResult, error) {
	return e.DiffusionIn(DefaultSnapshot, u, v, z, b)
}

// DiffusionIn is Diffusion against a named snapshot.
func (e *Engine) DiffusionIn(name string, u, v, z, b int) (res *DiffusionResult, err error) {
	err = e.onSnapshot(epDiffusion, name, func(s *Snapshot) error {
		res, err = s.Diffusion(u, v, z, b)
		return err
	})
	return res, err
}

// Rank answers an Eq. 19 ranking query from the default snapshot's
// inverted index.
func (e *Engine) Rank(query []int32, k int) (*RankResult, error) {
	return e.RankIn(DefaultSnapshot, query, k)
}

// RankIn is Rank against a named snapshot.
func (e *Engine) RankIn(name string, query []int32, k int) (res *RankResult, err error) {
	err = e.onSnapshot(epRank, name, func(s *Snapshot) error {
		res, err = s.Rank(query, k)
		return err
	})
	return res, err
}

// RankText tokenizes a free-text query and ranks communities (default
// snapshot).
func (e *Engine) RankText(query string, k int) (*RankResult, error) {
	return e.RankTextIn(DefaultSnapshot, query, k)
}

// RankTextIn is RankText against a named snapshot.
func (e *Engine) RankTextIn(name, query string, k int) (res *RankResult, err error) {
	err = e.onSnapshot(epRank, name, func(s *Snapshot) error {
		res, err = s.RankText(query, k)
		return err
	})
	return res, err
}

// PiRowResult is the /api/pirow payload: one owned user's membership row
// plus the generation it came from, so the consumer can detect a
// mid-rollout generation mismatch.
type PiRowResult struct {
	User       int       `json:"user"`
	Version    uint64    `json:"version"`
	Generation uint64    `json:"generation,omitempty"`
	Row        []float64 `json:"row"`
}

// PiRowIn returns an owned user's membership row from a named snapshot
// (copied — safe after release).
func (e *Engine) PiRowIn(name string, u int) (res *PiRowResult, err error) {
	err = e.onSnapshot(epPiRow, name, func(s *Snapshot) error {
		row, rerr := s.PiRow(u)
		if rerr != nil {
			return rerr
		}
		res = &PiRowResult{User: u, Version: s.Version, Generation: s.Generation, Row: slices.Clone(row)}
		return nil
	})
	return res, err
}

// DiffusionRowsIn is DiffusionRows against a named snapshot.
func (e *Engine) DiffusionRowsIn(name string, u, v, z, b int, urow, vrow []float64) (res *DiffusionResult, err error) {
	err = e.onSnapshot(epDiffusion, name, func(s *Snapshot) error {
		res, err = s.DiffusionRows(u, v, z, b, urow, vrow)
		return err
	})
	return res, err
}
