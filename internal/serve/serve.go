// Package serve is the online profile-serving subsystem: the read path
// between a trained CPD model and the HTTP edge. The paper ships its
// results as an interactive service (SocialLens, footnote 1); this package
// is the engine such a service needs to hold up under load:
//
//   - the live model sits behind an atomic pointer, so Reload hot-swaps a
//     new snapshot with zero downtime — in-flight queries keep the
//     snapshot they started on, and no query ever observes a torn mix of
//     two models;
//   - Eq. 19 community ranking runs over a precomputed inverted index
//     (word → community posting lists, see RankIndex) instead of scoring
//     every community against every topic per query;
//   - fold-in inference (FoldIn) gives users the model was never trained
//     on a community membership and profile, by a short seeded Gibbs pass
//     against the frozen Φ/Θ/Π — batched through a persistent worker pool
//     in the spirit of core.Engine's segment workers;
//   - every endpoint keeps latency counters (Stats).
//
// internal/lens builds its browser UI on this engine; cmd/cpd-serve
// exposes it as a headless JSON API.
package serve

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/mathx"
	"repro/internal/store"
)

// Options tunes an Engine. The zero value is ready for use.
type Options struct {
	// PostingsPerWord bounds each word's posting list in the inverted rank
	// index. Longer lists rank more exactly but cost more memory and query
	// time; PostingsPerWord >= |C| makes single-word ranking exact.
	// 0 selects the default (32).
	PostingsPerWord int
	// FoldInWorkers sizes the persistent fold-in worker pool FoldInBatch
	// fans out over. Results are bit-identical for every value (each
	// request is a pure function of the snapshot and its own seed);
	// 0 selects the default (4).
	FoldInWorkers int
	// Pipeline tokenizes free-text rank queries. A zero pipeline (with
	// MinDocTokens forced to 1) passes tokens through unstemmed.
	Pipeline corpus.Pipeline

	// MemberTopK is the "top communities per user" convention used for
	// member lists (default 5, the paper's choice).
	MemberTopK int
}

func (o Options) withDefaults() Options {
	if o.PostingsPerWord == 0 {
		o.PostingsPerWord = 32
	}
	if o.FoldInWorkers == 0 {
		o.FoldInWorkers = 4
	}
	if o.Pipeline.MinDocTokens == 0 {
		o.Pipeline.MinDocTokens = 1
	}
	if o.MemberTopK == 0 {
		o.MemberTopK = 5
	}
	return o
}

// Snapshot is one immutable serving state: a model, its optional
// vocabulary, and everything precomputed from them. Queries resolve
// against exactly one snapshot, so a Reload during a request can never mix
// parameters from two models.
type Snapshot struct {
	Model *core.Model
	Vocab *corpus.Vocabulary
	// Version increments on every swap; results carry it so callers can
	// attribute answers to a model generation.
	Version uint64

	members  [][]int
	openness []int
	labels   []string
	index    *RankIndex
}

func newSnapshot(m *core.Model, vocab *corpus.Vocabulary, version uint64, opts Options) *Snapshot {
	s := &Snapshot{
		Model:    m,
		Vocab:    vocab,
		Version:  version,
		members:  m.CommunityMembers(opts.MemberTopK),
		openness: apps.Openness(m),
		labels:   make([]string, m.Cfg.NumCommunities),
		index:    buildRankIndex(m, opts.PostingsPerWord),
	}
	for c := range s.labels {
		s.labels[c] = apps.CommunityLabel(m, vocab, c, 3)
	}
	return s
}

// Label returns community c's display label ("data database search"
// style, or "cNN" without a vocabulary), precomputed per snapshot.
func (s *Snapshot) Label(c int) string { return s.labels[c] }

// Members returns the users having community c among their top-k
// memberships (k = Options.MemberTopK).
func (s *Snapshot) Members(c int) []int { return s.members[c] }

// Openness returns community c's openness count (above-average diffusion
// edges shared with other communities).
func (s *Snapshot) Openness(c int) int { return s.openness[c] }

// Endpoint identifiers for the latency counters.
const (
	epCommunities = iota
	epCommunity
	epMembership
	epRank
	epDiffusion
	epFoldIn
	epReload
	epCount
)

var endpointNames = [epCount]string{
	"communities", "community", "membership", "rank", "diffusion", "foldin", "reload",
}

// EndpointStats is one endpoint's cumulative latency accounting.
type EndpointStats struct {
	Count       uint64 `json:"count"`
	Errors      uint64 `json:"errors"`
	TotalMicros uint64 `json:"totalMicros"`
	MaxMicros   uint64 `json:"maxMicros"`
}

type latencyCounter struct {
	count, errs, totalNS, maxNS atomic.Uint64
}

func (l *latencyCounter) observe(d time.Duration, err error) {
	ns := uint64(d.Nanoseconds())
	l.count.Add(1)
	l.totalNS.Add(ns)
	if err != nil {
		l.errs.Add(1)
	}
	for {
		cur := l.maxNS.Load()
		if ns <= cur || l.maxNS.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// Engine is the concurrent query engine. All methods are safe for
// concurrent use, including concurrently with Reload/Swap.
type Engine struct {
	opts Options

	snap    atomic.Pointer[Snapshot]
	version atomic.Uint64
	// swapMu serializes writers (Reload/Swap); readers never take it.
	swapMu sync.Mutex

	lat [epCount]latencyCounter

	foldJobs  chan foldJob
	closeOnce sync.Once
}

// New builds an engine serving m (vocab may be nil: numeric labels only,
// free-text queries disabled) and starts its fold-in worker pool.
func New(m *core.Model, vocab *corpus.Vocabulary, opts Options) *Engine {
	e := &Engine{opts: opts.withDefaults()}
	e.version.Store(1)
	e.snap.Store(newSnapshot(m, vocab, 1, e.opts))
	e.foldJobs = make(chan foldJob)
	for i := 0; i < e.opts.FoldInWorkers; i++ {
		go e.foldWorker()
	}
	return e
}

// Close stops the fold-in worker pool. The engine must not be used after
// Close.
func (e *Engine) Close() {
	e.closeOnce.Do(func() { close(e.foldJobs) })
}

// View returns the current snapshot: one atomic load, after which every
// read through it is consistent regardless of concurrent swaps. Handlers
// that issue several reads per request should call View once and stick to
// it.
func (e *Engine) View() *Snapshot { return e.snap.Load() }

// Swap atomically replaces the serving model in-process and returns the
// new version. In-flight queries finish on the snapshot they started with.
func (e *Engine) Swap(m *core.Model, vocab *corpus.Vocabulary) uint64 {
	e.swapMu.Lock()
	defer e.swapMu.Unlock()
	v := e.version.Add(1)
	e.snap.Store(newSnapshot(m, vocab, v, e.opts))
	return v
}

// Reload loads a model snapshot from modelPath (binary or JSON, sniffed)
// and hot-swaps it in. vocabPath may be empty to keep the current
// vocabulary. On error the serving state is left untouched.
func (e *Engine) Reload(modelPath, vocabPath string) (version uint64, err error) {
	start := time.Now()
	defer func() { e.lat[epReload].observe(time.Since(start), err) }()
	m, err := store.LoadFile(modelPath)
	if err != nil {
		return 0, err
	}
	vocab := e.View().Vocab
	if vocabPath != "" {
		vocab, err = corpus.ReadVocabularyFile(vocabPath)
		if err != nil {
			return 0, err
		}
	}
	return e.Swap(m, vocab), nil
}

// Stats returns a copy of the per-endpoint latency counters, keyed by
// endpoint name.
func (e *Engine) Stats() map[string]EndpointStats {
	out := make(map[string]EndpointStats, epCount)
	for i := 0; i < epCount; i++ {
		l := &e.lat[i]
		out[endpointNames[i]] = EndpointStats{
			Count:       l.count.Load(),
			Errors:      l.errs.Load(),
			TotalMicros: l.totalNS.Load() / 1e3,
			MaxMicros:   l.maxNS.Load() / 1e3,
		}
	}
	return out
}

// --- typed query API ----------------------------------------------------

// CommunityWeight is one (community, weight) membership entry.
type CommunityWeight struct {
	Community int     `json:"community"`
	Weight    float64 `json:"weight"`
}

// CommunitySummary is the list-view payload of one community.
type CommunitySummary struct {
	ID       int     `json:"id"`
	Label    string  `json:"label"`
	Members  int     `json:"members"`
	Openness int     `json:"openness"`
	SelfDiff float64 `json:"selfDiffusion"`
}

// TopicShare is one entry of a community's content profile.
type TopicShare struct {
	Topic int      `json:"topic"`
	Share float64  `json:"share"`
	Words []string `json:"words,omitempty"`
}

// FlowSummary is one topic-specific community-to-community diffusion flow.
type FlowSummary struct {
	Community int     `json:"community"`
	Topic     int     `json:"topic"`
	Strength  float64 `json:"strength"`
}

// CommunityDetail is the full profile triple of one community.
type CommunityDetail struct {
	CommunitySummary
	TopTopics     []TopicShare  `json:"topTopics"`
	TopAttributes []int         `json:"topAttributes,omitempty"`
	OutFlows      []FlowSummary `json:"outFlows"`
	InFlows       []FlowSummary `json:"inFlows"`
	MemberSample  []int         `json:"memberSample"`
}

// MembershipResult is a user's community membership answer.
type MembershipResult struct {
	User        int               `json:"user"`
	Version     uint64            `json:"version"`
	Communities []CommunityWeight `json:"communities"`
}

// RankEntry is one Eq. 19 ranking entry.
type RankEntry struct {
	Community int     `json:"community"`
	Label     string  `json:"label"`
	Score     float64 `json:"score"`
	Members   int     `json:"members"`
}

// RankResult is the answer to a profile-driven ranking query.
type RankResult struct {
	Version uint64      `json:"version"`
	Entries []RankEntry `json:"entries"`
}

// DiffusionResult is a per-topic diffusion probability answer (Eq. 5's
// sigmoid without the individual-preference features, which need pairwise
// graph context the serving layer does not hold).
type DiffusionResult struct {
	Version uint64  `json:"version"`
	Logit   float64 `json:"logit"`
	Prob    float64 `json:"prob"`
}

func (s *Snapshot) summary(c int) CommunitySummary {
	m := s.Model
	var selfD float64
	for z := 0; z < m.Cfg.NumTopics; z++ {
		selfD += m.Eta.At(c, c, z)
	}
	return CommunitySummary{
		ID:       c,
		Label:    s.labels[c],
		Members:  len(s.members[c]),
		Openness: s.openness[c],
		SelfDiff: selfD,
	}
}

// Communities returns every community's summary, in community-id order.
func (e *Engine) Communities() []CommunitySummary {
	start := time.Now()
	defer func() { e.lat[epCommunities].observe(time.Since(start), nil) }()
	s := e.View()
	out := make([]CommunitySummary, s.Model.Cfg.NumCommunities)
	for c := range out {
		out[c] = s.summary(c)
	}
	return out
}

// Community returns the full profile of one community.
func (e *Engine) Community(c int) (detail *CommunityDetail, err error) {
	start := time.Now()
	defer func() { e.lat[epCommunity].observe(time.Since(start), err) }()
	s := e.View()
	m := s.Model
	if c < 0 || c >= m.Cfg.NumCommunities {
		return nil, fmt.Errorf("serve: community %d out of range [0, %d)", c, m.Cfg.NumCommunities)
	}
	d := &CommunityDetail{CommunitySummary: s.summary(c)}
	theta := m.Theta.Row(c)
	for _, z := range mathx.TopKIndices(theta, 3) {
		ts := TopicShare{Topic: z, Share: theta[z]}
		if s.Vocab != nil {
			for _, wid := range m.TopWords(z, 4) {
				ts.Words = append(ts.Words, s.Vocab.Word(wid))
			}
		}
		d.TopTopics = append(d.TopTopics, ts)
	}
	d.TopAttributes = m.TopAttributes(c, 5)
	d.OutFlows, d.InFlows = topFlows(m, c, 5)
	sample := s.members[c]
	if len(sample) > 10 {
		sample = sample[:10]
	}
	d.MemberSample = append(d.MemberSample, sample...)
	return d, nil
}

// topFlows lists the k strongest topic-specific flows out of and into c.
func topFlows(m *core.Model, c, k int) (outs, ins []FlowSummary) {
	var outAll, inAll []FlowSummary
	for c2 := 0; c2 < m.Cfg.NumCommunities; c2++ {
		for z := 0; z < m.Cfg.NumTopics; z++ {
			if v := m.Eta.At(c, c2, z); v > 0 {
				outAll = append(outAll, FlowSummary{c2, z, v})
			}
			if v := m.Eta.At(c2, c, z); v > 0 {
				inAll = append(inAll, FlowSummary{c2, z, v})
			}
		}
	}
	top := func(fs []FlowSummary) []FlowSummary {
		sort.Slice(fs, func(i, j int) bool { return fs[i].Strength > fs[j].Strength })
		if len(fs) > k {
			fs = fs[:k]
		}
		return fs
	}
	return top(outAll), top(inAll)
}

// Membership returns user u's top-k community memberships.
func (e *Engine) Membership(u, k int) (res *MembershipResult, err error) {
	start := time.Now()
	defer func() { e.lat[epMembership].observe(time.Since(start), err) }()
	s := e.View()
	m := s.Model
	if u < 0 || u >= m.NumUsers {
		return nil, fmt.Errorf("serve: user %d out of range [0, %d)", u, m.NumUsers)
	}
	if k <= 0 {
		k = e.opts.MemberTopK
	}
	row := m.Pi.Row(u)
	res = &MembershipResult{User: u, Version: s.Version}
	for _, c := range m.TopCommunities(u, k) {
		res.Communities = append(res.Communities, CommunityWeight{Community: c, Weight: row[c]})
	}
	return res, nil
}

// Diffusion returns the probability that user u diffuses user v's content
// on topic z in time bucket b (pass b = -1 to skip the popularity factor).
func (e *Engine) Diffusion(u, v, z, b int) (res *DiffusionResult, err error) {
	start := time.Now()
	defer func() { e.lat[epDiffusion].observe(time.Since(start), err) }()
	s := e.View()
	m := s.Model
	if u < 0 || u >= m.NumUsers || v < 0 || v >= m.NumUsers {
		return nil, fmt.Errorf("serve: user pair (%d, %d) out of range [0, %d)", u, v, m.NumUsers)
	}
	if z < 0 || z >= m.Cfg.NumTopics {
		return nil, fmt.Errorf("serve: topic %d out of range [0, %d)", z, m.Cfg.NumTopics)
	}
	logit := m.DiffusionLogitTopic(u, v, z, b, nil)
	return &DiffusionResult{Version: s.Version, Logit: logit, Prob: mathx.Sigmoid(logit)}, nil
}

// Rank answers an Eq. 19 profile-driven ranking query (a bag of word ids)
// from the inverted index, returning the top-k communities.
func (e *Engine) Rank(query []int32, k int) (res *RankResult, err error) {
	start := time.Now()
	defer func() { e.lat[epRank].observe(time.Since(start), err) }()
	s := e.View()
	return s.rank(query, k)
}

func (s *Snapshot) rank(query []int32, k int) (*RankResult, error) {
	m := s.Model
	if len(query) == 0 {
		return nil, fmt.Errorf("serve: empty rank query")
	}
	for _, w := range query {
		if w < 0 || int(w) >= m.NumWords {
			return nil, fmt.Errorf("serve: query word %d out of range [0, %d)", w, m.NumWords)
		}
	}
	C := m.Cfg.NumCommunities
	if k <= 0 || k > C {
		k = C
	}
	scores := make([]float64, C)
	s.index.Accumulate(scores, query)
	res := &RankResult{Version: s.Version}
	for _, c := range mathx.TopKIndices(scores, k) {
		res.Entries = append(res.Entries, RankEntry{
			Community: c,
			Label:     s.labels[c],
			Score:     scores[c],
			Members:   len(s.members[c]),
		})
	}
	return res, nil
}

// ErrNoVocabulary reports a free-text query against an engine whose
// snapshot has no vocabulary.
var ErrNoVocabulary = fmt.Errorf("serve: snapshot has no vocabulary; free-text queries disabled")

// RankText tokenizes a free-text query through the engine's pipeline and
// vocabulary (unknown words dropped) and ranks communities.
func (e *Engine) RankText(query string, k int) (res *RankResult, err error) {
	start := time.Now()
	defer func() { e.lat[epRank].observe(time.Since(start), err) }()
	s := e.View()
	if s.Vocab == nil {
		return nil, ErrNoVocabulary
	}
	var ids []int32
	for _, tok := range e.opts.Pipeline.Process(query) {
		if id, ok := s.Vocab.ID(tok); ok {
			ids = append(ids, int32(id))
		}
	}
	if len(ids) == 0 {
		return nil, fmt.Errorf("serve: no query token of %q is in the vocabulary", query)
	}
	return s.rank(ids, k)
}
