package serve

// Replica-side snapshot distribution: a Fetcher pulls generation-numbered
// v2 snapshots from a publisher — either its snapshot directory (shared
// filesystem) or its HTTP snapshot endpoint (internal/stream's
// SnapshotServer) — and promotes them into an Engine slot. Distribution
// is pull-by-generation: each poll discovers the newest generation, and
// only a strictly newer one triggers a fetch. Before a fetched file goes
// live it is (1) fully CRC-verified — the section table AND every payload,
// the O(model) pass the mapped opener skips by design — and (2) warmed
// with a sequential read, so the page cache is hot before the first query
// touches the mapping. Promotion is the engine's usual atomic swap;
// in-flight queries finish on the snapshot they started with, exactly as
// for a local reload.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/internal/corpus"
	"repro/internal/shard"
	"repro/internal/store"
)

// FetchOptions configures a Fetcher.
type FetchOptions struct {
	// Source is where generations come from: a snapshot directory path,
	// or an http(s) base URL of a server mounting stream.SnapshotServer.
	Source string
	// Dir is the local cache directory for downloaded files. Required
	// for an HTTP source; ignored for a directory source (files are
	// verified and mapped in place).
	Dir string
	// Snapshot is the engine slot promoted into (default "default").
	Snapshot string
	// Vocab, when non-nil, enables free-text queries on the promoted
	// snapshots (the vocabulary does not travel with generation files).
	Vocab *corpus.Vocabulary
	// Interval is the poll period for Run (default 2s).
	Interval time.Duration
	// Client is the HTTP client for URL sources (default: 30s timeout).
	Client *http.Client
	// Keep bounds the local cache for HTTP sources: after a promote,
	// downloaded files older than the newest Keep generations are
	// removed (default 2; the file backing the live mapping stays valid
	// even once unlinked).
	Keep int
	// Sharded switches the fetcher to shard-group generations
	// (internal/shard): each poll discovers the newest shard manifest,
	// fetches the manifest plus the global file and this replica's own
	// shard, verifies every file against the manifest's per-section CRCs,
	// warms both, and promotes the group as a unit
	// (Engine.PromoteShardGroup). The replica then maps ~(1/N of the user
	// state + the global sections) instead of the whole model.
	Sharded bool
	// Shard is the shard index this replica owns (Sharded mode only).
	Shard int
}

// FetchStatus is a Fetcher's observable state (the "replica" section of
// /api/stats on a fetching server).
type FetchStatus struct {
	Source     string `json:"source"`
	Snapshot   string `json:"snapshot"`
	Generation uint64 `json:"generation"`
	// Fetches counts promoted generations; Failures failed poll or
	// fetch attempts (the generation is re-attempted next poll).
	Fetches   uint64 `json:"fetches"`
	Failures  uint64 `json:"failures"`
	LastPoll  string `json:"lastPoll,omitempty"`
	LastError string `json:"lastError,omitempty"`
}

// Fetcher keeps one engine slot tracking a publisher's newest generation.
type Fetcher struct {
	e    *Engine
	opts FetchOptions
	http bool

	mu       sync.Mutex
	gen      uint64
	fetches  uint64
	failures uint64
	lastPoll time.Time
	lastErr  string
}

// NewFetcher validates the options and returns a Fetcher. No fetch
// happens yet; call Poll (or Run) to start tracking.
func NewFetcher(e *Engine, opts FetchOptions) (*Fetcher, error) {
	if opts.Source == "" {
		return nil, fmt.Errorf("serve: fetcher needs a source")
	}
	isHTTP := strings.HasPrefix(opts.Source, "http://") || strings.HasPrefix(opts.Source, "https://")
	if isHTTP {
		opts.Source = strings.TrimRight(opts.Source, "/")
		if opts.Dir == "" {
			return nil, fmt.Errorf("serve: an HTTP snapshot source needs a local cache dir")
		}
		if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
			return nil, err
		}
	}
	if opts.Snapshot == "" {
		opts.Snapshot = DefaultSnapshot
	}
	if opts.Interval <= 0 {
		opts.Interval = 2 * time.Second
	}
	if opts.Client == nil {
		opts.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if opts.Keep <= 0 {
		opts.Keep = 2
	}
	return &Fetcher{e: e, opts: opts, http: isHTTP}, nil
}

// Generation returns the newest generation this fetcher has promoted.
func (f *Fetcher) Generation() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.gen
}

// Status snapshots the fetcher's counters.
func (f *Fetcher) Status() FetchStatus {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := FetchStatus{
		Source:     f.opts.Source,
		Snapshot:   f.opts.Snapshot,
		Generation: f.gen,
		Fetches:    f.fetches,
		Failures:   f.failures,
		LastError:  f.lastErr,
	}
	if !f.lastPoll.IsZero() {
		st.LastPoll = f.lastPoll.UTC().Format(time.RFC3339)
	}
	return st
}

// WriteMetrics emits the fetcher's gauges in Prometheus text exposition
// format — registered on the engine via AddMetricsCollector.
func (f *Fetcher) WriteMetrics(w io.Writer) {
	st := f.Status()
	gauge(w, "cpd_replica_generation", "Publisher generation this replica serves.", "", float64(st.Generation))
	gauge(w, "cpd_replica_fetches_total", "Generations fetched, verified and promoted.", "", float64(st.Fetches))
	gauge(w, "cpd_replica_fetch_failures_total", "Failed fetch or verify attempts.", "", float64(st.Failures))
}

// Poll runs one discover→fetch→verify→warm→promote cycle. It returns
// the promoted generation (0 if the replica is already current) and
// records failures for Status; a failed attempt leaves the serving state
// untouched and is retried on the next poll.
func (f *Fetcher) Poll() (uint64, error) {
	gen, err := f.poll()
	f.mu.Lock()
	f.lastPoll = time.Now()
	if err != nil {
		f.failures++
		f.lastErr = err.Error()
	} else {
		f.lastErr = ""
		if gen > 0 {
			f.gen = gen
			f.fetches++
		}
	}
	f.mu.Unlock()
	return gen, err
}

// Run polls until the context is cancelled.
func (f *Fetcher) Run(ctx context.Context) {
	t := time.NewTicker(f.opts.Interval)
	defer t.Stop()
	for {
		f.Poll() // errors are surfaced via Status/metrics; keep polling
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
	}
}

func (f *Fetcher) poll() (uint64, error) {
	if f.opts.Sharded {
		return f.pollSharded()
	}
	latest, err := f.discover()
	if err != nil {
		return 0, err
	}
	f.mu.Lock()
	have := f.gen
	f.mu.Unlock()
	if latest == 0 || latest <= have {
		return 0, nil // nothing published yet, or already current
	}
	path, err := f.materialize(latest)
	if err != nil {
		return 0, err
	}
	// Cached verification: a generation this replica already walked (the
	// .verified sidecar matches size+mtime) skips the O(model) CRC pass —
	// the restart-fast path for big cached generations.
	if err := store.VerifyV2FileCached(path); err != nil {
		return 0, fmt.Errorf("verifying generation %d: %w", latest, err)
	}
	if err := warmFile(path); err != nil {
		return 0, fmt.Errorf("warming generation %d: %w", latest, err)
	}
	if _, err := f.e.LoadGeneration(f.opts.Snapshot, path, f.opts.Vocab, latest); err != nil {
		return 0, fmt.Errorf("promoting generation %d: %w", latest, err)
	}
	if f.http {
		f.pruneCache(latest)
	}
	return latest, nil
}

// pollSharded is one sharded discover→fetch→verify→warm→promote cycle:
// the manifest names every file and its per-section CRCs, so the group
// either verifies and promotes as a unit or is retried whole next poll.
func (f *Fetcher) pollSharded() (uint64, error) {
	latest, err := f.discoverSharded()
	if err != nil {
		return 0, err
	}
	f.mu.Lock()
	have := f.gen
	f.mu.Unlock()
	if latest == 0 || latest <= have {
		return 0, nil
	}
	dir, man, err := f.materializeSharded(latest)
	if err != nil {
		return 0, err
	}
	if f.opts.Shard < 0 || f.opts.Shard >= man.Shards {
		return 0, fmt.Errorf("replica owns shard %d but generation %d has %d shards", f.opts.Shard, latest, man.Shards)
	}
	globalPath := shard.GlobalPath(dir, latest)
	shardPath := shard.ShardPath(dir, latest, f.opts.Shard)
	if err := shard.VerifyAgainstManifest(globalPath, man.Global); err != nil {
		return 0, fmt.Errorf("verifying generation %d global file: %w", latest, err)
	}
	if err := shard.VerifyAgainstManifest(shardPath, man.Ranges[f.opts.Shard].File); err != nil {
		return 0, fmt.Errorf("verifying generation %d shard %d: %w", latest, f.opts.Shard, err)
	}
	for _, p := range []string{globalPath, shardPath} {
		if err := warmFile(p); err != nil {
			return 0, fmt.Errorf("warming generation %d: %w", latest, err)
		}
	}
	g, err := shard.OpenGroup(dir, man, f.opts.Shard)
	if err != nil {
		return 0, fmt.Errorf("opening generation %d shard %d: %w", latest, f.opts.Shard, err)
	}
	f.e.PromoteShardGroup(f.opts.Snapshot, g, f.opts.Vocab, latest)
	if f.http {
		f.pruneShardCache(latest)
	}
	return latest, nil
}

// discoverSharded finds the newest sharded generation the source offers.
func (f *Fetcher) discoverSharded() (uint64, error) {
	if !f.http {
		gens, err := shard.ScanManifests(f.opts.Source)
		if err != nil || len(gens) == 0 {
			return 0, err
		}
		return gens[len(gens)-1], nil
	}
	resp, err := f.opts.Client.Get(f.opts.Source + "/api/shards")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return 0, fmt.Errorf("%s/api/shards answered status %d", f.opts.Source, resp.StatusCode)
	}
	var man struct {
		Generation uint64 `json:"generation"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&man); err != nil {
		return 0, err
	}
	return man.Generation, nil
}

// materializeSharded returns a directory holding generation gen's
// manifest, global file and this replica's shard, plus the parsed
// manifest: the publisher's directory itself for a directory source,
// downloaded copies for an HTTP source. Already-downloaded files are
// reused; the caller re-verifies every CRC either way.
func (f *Fetcher) materializeSharded(gen uint64) (string, *shard.Manifest, error) {
	if !f.http {
		man, err := shard.ReadManifest(shard.ManifestPath(f.opts.Source, gen))
		return f.opts.Source, man, err
	}
	manPath := shard.ManifestPath(f.opts.Dir, gen)
	if _, err := os.Stat(manPath); err != nil {
		if err := f.download(fmt.Sprintf("%s/api/shards/manifest?gen=%d", f.opts.Source, gen), manPath); err != nil {
			return "", nil, err
		}
	}
	man, err := shard.ReadManifest(manPath)
	if err != nil {
		return "", nil, err
	}
	fetches := []struct{ url, path string }{
		{fmt.Sprintf("%s/api/shards/file?gen=%d&global=1", f.opts.Source, gen), shard.GlobalPath(f.opts.Dir, gen)},
		{fmt.Sprintf("%s/api/shards/file?gen=%d&shard=%d", f.opts.Source, gen, f.opts.Shard), shard.ShardPath(f.opts.Dir, gen, f.opts.Shard)},
	}
	for _, fe := range fetches {
		if _, err := os.Stat(fe.path); err == nil {
			continue
		}
		if err := f.download(fe.url, fe.path); err != nil {
			return "", nil, err
		}
	}
	return f.opts.Dir, man, nil
}

// download fetches url into path via a temp file and atomic rename.
func (f *Fetcher) download(url, path string) error {
	resp, err := f.opts.Client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return fmt.Errorf("fetching %s: status %d", url, resp.StatusCode)
	}
	tmp, err := os.CreateTemp(f.opts.Dir, ".fetch-*")
	if err != nil {
		return err
	}
	_, err = io.Copy(tmp, resp.Body)
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// pruneShardCache drops downloaded shard-group files (and .verified
// sidecars) older than the newest Keep generations.
func (f *Fetcher) pruneShardCache(latest uint64) {
	if latest <= uint64(f.opts.Keep) {
		return
	}
	cut := latest - uint64(f.opts.Keep)
	gens, err := shard.ScanManifests(f.opts.Dir)
	if err != nil {
		return
	}
	for _, gen := range gens {
		if gen > cut {
			continue
		}
		os.Remove(shard.ManifestPath(f.opts.Dir, gen))
		for _, p := range []string{shard.GlobalPath(f.opts.Dir, gen), shard.ShardPath(f.opts.Dir, gen, f.opts.Shard)} {
			os.Remove(p)
			os.Remove(p + store.VerifiedSidecarSuffix)
		}
	}
}

// discover finds the newest generation the source offers.
func (f *Fetcher) discover() (uint64, error) {
	if !f.http {
		files, err := store.ScanGenerations(f.opts.Source)
		if err != nil || len(files) == 0 {
			return 0, err
		}
		return files[len(files)-1].Generation, nil
	}
	resp, err := f.opts.Client.Get(f.opts.Source + "/api/generations")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return 0, fmt.Errorf("%s/api/generations answered status %d", f.opts.Source, resp.StatusCode)
	}
	var man struct {
		Generation uint64 `json:"generation"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&man); err != nil {
		return 0, err
	}
	return man.Generation, nil
}

// materialize returns a local path holding generation gen: the publisher
// file itself for a directory source, a downloaded copy (atomic rename)
// for an HTTP source. An already-downloaded copy is reused — its CRCs
// are re-verified by the caller either way.
func (f *Fetcher) materialize(gen uint64) (string, error) {
	if !f.http {
		return store.GenPath(f.opts.Source, gen), nil
	}
	path := store.GenPath(f.opts.Dir, gen)
	if _, err := os.Stat(path); err == nil {
		return path, nil
	}
	resp, err := f.opts.Client.Get(fmt.Sprintf("%s/api/generations/file?gen=%d", f.opts.Source, gen))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return "", fmt.Errorf("fetching generation %d: status %d", gen, resp.StatusCode)
	}
	tmp, err := os.CreateTemp(f.opts.Dir, ".fetch-*")
	if err != nil {
		return "", err
	}
	_, err = io.Copy(tmp, resp.Body)
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp.Name())
		return "", err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return "", err
	}
	return path, nil
}

// pruneCache drops downloaded generations older than the newest Keep.
// Gaps don't matter: retention lists the directory (the same discipline
// as the publisher's own pruning).
func (f *Fetcher) pruneCache(latest uint64) {
	if latest <= uint64(f.opts.Keep) {
		return
	}
	cut := latest - uint64(f.opts.Keep)
	files, err := store.ScanGenerations(f.opts.Dir)
	if err != nil {
		return
	}
	for _, gf := range files {
		if gf.Generation <= cut {
			os.Remove(filepath.Join(f.opts.Dir, gf.Name))
		}
	}
}

// warmFile reads the file once, sequentially, populating the page cache
// so the first queries against the freshly mapped snapshot don't pay
// cold-read latency mid-request.
func warmFile(path string) error {
	fh, err := os.Open(path)
	if err != nil {
		return err
	}
	defer fh.Close()
	buf := make([]byte, 1<<20)
	_, err = io.CopyBuffer(io.Discard, fh, buf)
	return err
}
