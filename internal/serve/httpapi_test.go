package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func apiGet(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec
}

func TestAPIHandler(t *testing.T) {
	m := SyntheticModel(20, 6, 4, 80, 11)
	e := testEngine(t, m, nil, Options{})
	reloaded := 0
	h := APIHandler(e, func() error { reloaded++; return nil })

	rec := apiGet(t, h, "/api/communities")
	if rec.Code != http.StatusOK {
		t.Fatalf("communities: %d", rec.Code)
	}
	var comms []CommunitySummary
	if err := json.Unmarshal(rec.Body.Bytes(), &comms); err != nil {
		t.Fatal(err)
	}
	if len(comms) != 6 {
		t.Fatalf("got %d communities", len(comms))
	}

	if rec := apiGet(t, h, "/api/community?id=2"); rec.Code != http.StatusOK {
		t.Fatalf("community: %d", rec.Code)
	}
	if rec := apiGet(t, h, "/api/community?id=77"); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad community id: %d", rec.Code)
	}
	if rec := apiGet(t, h, "/api/user?id=3&k=2"); rec.Code != http.StatusOK {
		t.Fatalf("user: %d", rec.Code)
	}
	if rec := apiGet(t, h, "/api/rank?w=1,5&k=3"); rec.Code != http.StatusOK {
		t.Fatalf("rank by word ids: %d", rec.Code)
	}
	// No vocabulary: free-text ranking answers 501.
	if rec := apiGet(t, h, "/api/rank?q=anything"); rec.Code != http.StatusNotImplemented {
		t.Fatalf("vocab-less text rank: %d", rec.Code)
	}
	if rec := apiGet(t, h, "/api/rank"); rec.Code != http.StatusBadRequest {
		t.Fatalf("empty rank: %d", rec.Code)
	}
	if rec := apiGet(t, h, "/api/diffusion?u=0&v=1&topic=2"); rec.Code != http.StatusOK {
		t.Fatalf("diffusion: %d", rec.Code)
	}

	body := `{"docs":[[1,2,3],[4]],"friends":[0],"seed":9}`
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/api/foldin", strings.NewReader(body)))
	if rec.Code != http.StatusOK {
		t.Fatalf("foldin: %d: %s", rec.Code, rec.Body.String())
	}
	var fr FoldInResult
	if err := json.Unmarshal(rec.Body.Bytes(), &fr); err != nil {
		t.Fatal(err)
	}
	if len(fr.Pi) != 6 || len(fr.DocCommunity) != 2 {
		t.Fatalf("foldin result %+v", fr)
	}
	// GET on a POST endpoint is rejected.
	if rec := apiGet(t, h, "/api/foldin"); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("foldin GET: %d", rec.Code)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/api/reload", nil))
	if rec.Code != http.StatusOK || reloaded != 1 {
		t.Fatalf("reload: %d (called %d times)", rec.Code, reloaded)
	}

	if rec := apiGet(t, h, "/api/stats"); rec.Code != http.StatusOK {
		t.Fatalf("stats: %d", rec.Code)
	}
	rec = apiGet(t, h, "/healthz")
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"version": 1`) {
		t.Fatalf("healthz: %d %s", rec.Code, rec.Body.String())
	}

	// A handler built with nil reload disables the endpoint.
	h2 := APIHandler(e, nil)
	rec = httptest.NewRecorder()
	h2.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/api/reload", nil))
	if rec.Code != http.StatusNotImplemented {
		t.Fatalf("nil reload: %d", rec.Code)
	}
}
