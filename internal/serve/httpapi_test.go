package serve

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func apiGet(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec
}

func TestAPIHandler(t *testing.T) {
	m := SyntheticModel(20, 6, 4, 80, 11)
	e := testEngine(t, m, nil, Options{})
	reloaded := 0
	h := APIHandler(e, func() error { reloaded++; return nil })

	rec := apiGet(t, h, "/api/communities")
	if rec.Code != http.StatusOK {
		t.Fatalf("communities: %d", rec.Code)
	}
	var comms []CommunitySummary
	if err := json.Unmarshal(rec.Body.Bytes(), &comms); err != nil {
		t.Fatal(err)
	}
	if len(comms) != 6 {
		t.Fatalf("got %d communities", len(comms))
	}

	if rec := apiGet(t, h, "/api/community?id=2"); rec.Code != http.StatusOK {
		t.Fatalf("community: %d", rec.Code)
	}
	if rec := apiGet(t, h, "/api/community?id=77"); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad community id: %d", rec.Code)
	}
	if rec := apiGet(t, h, "/api/user?id=3&k=2"); rec.Code != http.StatusOK {
		t.Fatalf("user: %d", rec.Code)
	}
	if rec := apiGet(t, h, "/api/rank?w=1,5&k=3"); rec.Code != http.StatusOK {
		t.Fatalf("rank by word ids: %d", rec.Code)
	}
	// No vocabulary: free-text ranking answers 501.
	if rec := apiGet(t, h, "/api/rank?q=anything"); rec.Code != http.StatusNotImplemented {
		t.Fatalf("vocab-less text rank: %d", rec.Code)
	}
	if rec := apiGet(t, h, "/api/rank"); rec.Code != http.StatusBadRequest {
		t.Fatalf("empty rank: %d", rec.Code)
	}
	if rec := apiGet(t, h, "/api/diffusion?u=0&v=1&topic=2"); rec.Code != http.StatusOK {
		t.Fatalf("diffusion: %d", rec.Code)
	}

	body := `{"docs":[[1,2,3],[4]],"friends":[0],"seed":9}`
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/api/foldin", strings.NewReader(body)))
	if rec.Code != http.StatusOK {
		t.Fatalf("foldin: %d: %s", rec.Code, rec.Body.String())
	}
	var fr FoldInResult
	if err := json.Unmarshal(rec.Body.Bytes(), &fr); err != nil {
		t.Fatal(err)
	}
	if len(fr.Pi) != 6 || len(fr.DocCommunity) != 2 {
		t.Fatalf("foldin result %+v", fr)
	}
	// GET on a POST endpoint is rejected.
	if rec := apiGet(t, h, "/api/foldin"); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("foldin GET: %d", rec.Code)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/api/reload", nil))
	if rec.Code != http.StatusOK || reloaded != 1 {
		t.Fatalf("reload: %d (called %d times)", rec.Code, reloaded)
	}

	if rec := apiGet(t, h, "/api/stats"); rec.Code != http.StatusOK {
		t.Fatalf("stats: %d", rec.Code)
	}
	rec = apiGet(t, h, "/healthz")
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"version": 1`) {
		t.Fatalf("healthz: %d %s", rec.Code, rec.Body.String())
	}

	// A handler built with nil reload disables the endpoint.
	h2 := APIHandler(e, nil)
	rec = httptest.NewRecorder()
	h2.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/api/reload", nil))
	if rec.Code != http.StatusNotImplemented {
		t.Fatalf("nil reload: %d", rec.Code)
	}
}

// TestAPIHandlerErrorPaths closes the error-path gaps the happy-path test
// above leaves open: malformed and oversize bodies, out-of-range ids,
// unparsable parameters, fold-in limit violations and failing reloads.
func TestAPIHandlerErrorPaths(t *testing.T) {
	m := SyntheticModel(20, 6, 4, 80, 11)
	e := testEngine(t, m, nil, Options{})
	reloadErr := error(nil)
	h := APIHandler(e, func() error { return reloadErr })

	// Oversize fold-in body: MaxBytesReader must cut the request off at
	// 16 MiB before the JSON for an over-limit request can materialize.
	oversize := `{"docs":[[` + strings.Repeat("0,", 9<<20) + `0]]}`
	if len(oversize) <= 16<<20 {
		t.Fatalf("oversize body is only %d bytes", len(oversize))
	}
	// Friend list above MaxFoldInFriends (ids all valid individually).
	manyFriends := `{"docs":[[1]],"friends":[` + strings.TrimSuffix(strings.Repeat("0,", MaxFoldInFriends+1), ",") + `]}`

	cases := []struct {
		name   string
		method string
		path   string
		body   string
		want   int
	}{
		{"community id missing", "GET", "/api/community", "", http.StatusBadRequest},
		{"community id not a number", "GET", "/api/community?id=abc", "", http.StatusBadRequest},
		{"community id negative", "GET", "/api/community?id=-1", "", http.StatusBadRequest},
		{"community id out of range", "GET", "/api/community?id=77", "", http.StatusBadRequest},
		{"user id missing", "GET", "/api/user", "", http.StatusBadRequest},
		{"user id out of range", "GET", "/api/user?id=999", "", http.StatusBadRequest},
		{"rank no query", "GET", "/api/rank", "", http.StatusBadRequest},
		{"rank bad word id", "GET", "/api/rank?w=1,x", "", http.StatusBadRequest},
		{"rank word out of range", "GET", "/api/rank?w=80", "", http.StatusBadRequest},
		{"rank negative word", "GET", "/api/rank?w=-3", "", http.StatusBadRequest},
		{"diffusion params missing", "GET", "/api/diffusion?u=1", "", http.StatusBadRequest},
		{"diffusion user out of range", "GET", "/api/diffusion?u=99&v=1&topic=0", "", http.StatusBadRequest},
		{"diffusion topic out of range", "GET", "/api/diffusion?u=0&v=1&topic=44", "", http.StatusBadRequest},
		{"foldin malformed JSON", "POST", "/api/foldin", `{"docs":[[1,2`, http.StatusBadRequest},
		{"foldin not JSON at all", "POST", "/api/foldin", `not json`, http.StatusBadRequest},
		{"foldin no docs", "POST", "/api/foldin", `{"docs":[]}`, http.StatusBadRequest},
		{"foldin empty doc", "POST", "/api/foldin", `{"docs":[[]]}`, http.StatusBadRequest},
		{"foldin word out of range", "POST", "/api/foldin", `{"docs":[[80]]}`, http.StatusBadRequest},
		{"foldin sweeps over limit", "POST", "/api/foldin", `{"docs":[[1]],"sweeps":501}`, http.StatusBadRequest},
		{"foldin friend out of range", "POST", "/api/foldin", `{"docs":[[1]],"friends":[20]}`, http.StatusBadRequest},
		{"foldin too many friends", "POST", "/api/foldin", manyFriends, http.StatusBadRequest},
		{"foldin oversize body", "POST", "/api/foldin", oversize, http.StatusBadRequest},
		{"foldin wrong method", "GET", "/api/foldin", "", http.StatusMethodNotAllowed},
		{"reload wrong method", "GET", "/api/reload", "", http.StatusMethodNotAllowed},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var body io.Reader
			if tc.body != "" {
				body = strings.NewReader(tc.body)
			}
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest(tc.method, tc.path, body))
			if rec.Code != tc.want {
				t.Fatalf("%s %s: status %d, want %d (%s)",
					tc.method, tc.path, rec.Code, tc.want, strings.TrimSpace(rec.Body.String()))
			}
		})
	}

	// Reload of a missing path: the wired reload callback fails, the
	// handler must answer 500 and leave the serving snapshot untouched.
	t.Run("reload failure", func(t *testing.T) {
		reloadErr = errors.New("stat /no/such/model.snap: no such file")
		defer func() { reloadErr = nil }()
		before := e.View().Version
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/api/reload", nil))
		if rec.Code != http.StatusInternalServerError {
			t.Fatalf("failing reload: status %d", rec.Code)
		}
		if e.View().Version != before {
			t.Fatal("failing reload still swapped the snapshot")
		}
	})

	// The real reload path against a missing file behaves the same way.
	t.Run("engine reload missing file", func(t *testing.T) {
		if _, err := e.Reload("/no/such/model.snap", ""); err == nil {
			t.Fatal("Reload accepted a missing model path")
		}
	})
}
