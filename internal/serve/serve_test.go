package serve

import (
	"math"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/sparse"
	"repro/internal/store"
)

func testEngine(t *testing.T, m *core.Model, vocab *corpus.Vocabulary, opts Options) *Engine {
	t.Helper()
	e := New(m, vocab, opts)
	t.Cleanup(e.Close)
	return e
}

// TestRankIndexExactSingleWord: with full posting lists, a single-word
// query through the inverted index must reproduce Eq. 19's scores — for
// one word the softmax topic posterior IS the per-word posterior the index
// decomposes over.
func TestRankIndexExactSingleWord(t *testing.T) {
	m := SyntheticModel(50, 12, 8, 300, 1)
	e := testEngine(t, m, nil, Options{PostingsPerWord: m.Cfg.NumCommunities})
	for _, w := range []int32{0, 7, 123, 299} {
		want := m.RankCommunities([]int32{w})
		res, err := e.Rank([]int32{w}, m.Cfg.NumCommunities)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]float64, len(want))
		for _, entry := range res.Entries {
			got[entry.Community] = entry.Score
		}
		for c := range want {
			if math.Abs(want[c]-got[c]) > 1e-9*(math.Abs(want[c])+1e-12) {
				t.Fatalf("word %d community %d: index %g vs full scan %g", w, c, got[c], want[c])
			}
		}
	}
}

// TestRankTruncatedPostings: a truncated index must (a) bound posting
// lists and (b) agree with the full index on single-word top-k whenever
// k <= PostingsPerWord (truncation keeps exactly the per-word top scores).
func TestRankTruncatedPostings(t *testing.T) {
	m := SyntheticModel(50, 16, 8, 200, 2)
	full := testEngine(t, m, nil, Options{PostingsPerWord: 16})
	trunc := testEngine(t, m, nil, Options{PostingsPerWord: 4})
	if got := trunc.View().index.PostingsPerWord(); got > 4 {
		t.Fatalf("posting list length %d exceeds bound 4", got)
	}
	for _, w := range []int32{3, 77, 150} {
		a, err := full.Rank([]int32{w}, 4)
		if err != nil {
			t.Fatal(err)
		}
		b, err := trunc.Rank([]int32{w}, 4)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a.Entries {
			if a.Entries[i].Community != b.Entries[i].Community {
				t.Fatalf("word %d rank %d: full %d vs truncated %d",
					w, i, a.Entries[i].Community, b.Entries[i].Community)
			}
		}
	}
	// Out-of-range and empty queries are rejected.
	if _, err := trunc.Rank([]int32{9999}, 3); err == nil {
		t.Fatal("out-of-range word accepted")
	}
	if _, err := trunc.Rank(nil, 3); err == nil {
		t.Fatal("empty query accepted")
	}
}

// plantedModel builds a tiny model with hard community→topic→word
// structure: community c emits topic c, topic z emits words {3z, 3z+1,
// 3z+2}.
func plantedModel(users int) *core.Model {
	const C, Z, V = 3, 3, 9
	m := &core.Model{
		Cfg:        core.Config{NumCommunities: C, NumTopics: Z, Rho: 0.1}.WithDefaults(),
		NumUsers:   users,
		NumWords:   V,
		NumBuckets: 2,
		Pi:         sparse.NewDense(users, C),
		Theta:      sparse.NewDense(C, Z),
		Phi:        sparse.NewDense(Z, V),
		Eta:        sparse.NewTensor3(C, C, Z),
		PopFreq:    sparse.NewDense(2, Z),
	}
	for u := 0; u < users; u++ {
		row := m.Pi.Row(u)
		for c := range row {
			row[c] = 0.05
		}
		row[u%C] = 0.9
	}
	for c := 0; c < C; c++ {
		row := m.Theta.Row(c)
		for z := range row {
			row[z] = 0.05
		}
		row[c] = 0.9
	}
	for z := 0; z < Z; z++ {
		row := m.Phi.Row(z)
		for w := range row {
			row[w] = 0.01
		}
		for k := 0; k < 3; k++ {
			row[3*z+k] = 0.3
		}
	}
	m.Eta.Fill(1.0 / (C * C * Z))
	m.Pi.NormalizeRows()
	m.Theta.NormalizeRows()
	m.Phi.NormalizeRows()
	m.PopFreq.Fill(0.5)
	m.Rehydrate()
	return m
}

func TestFoldInRecoversPlantedCommunity(t *testing.T) {
	m := plantedModel(9)
	e := testEngine(t, m, nil, Options{})
	// Documents entirely about topic 1's words → community 1 must dominate.
	req := &FoldInRequest{
		Docs: [][]int32{{3, 4, 5}, {4, 5, 3}, {5, 3, 4}, {3, 3, 4}},
		Seed: 7,
	}
	res, err := e.FoldIn(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pi) != 3 {
		t.Fatalf("pi has %d entries", len(res.Pi))
	}
	if res.Top[0].Community != 1 {
		t.Fatalf("folded-in user's top community is %d (pi=%v), want 1", res.Top[0].Community, res.Pi)
	}
	if res.Pi[1] < 0.5 {
		t.Fatalf("community 1 weight %v too small", res.Pi[1])
	}
	best := 0
	for z, v := range res.TopicMixture {
		if v > res.TopicMixture[best] {
			best = z
		}
	}
	if best != 1 {
		t.Fatalf("topic mixture peaks at %d, want 1", best)
	}
	// Bad or abusive requests are rejected: no documents (friendship alone
	// cannot move the membership off the prior, so a doc-less request has
	// nothing to infer), empty documents, out-of-range ids, and
	// over-limit sweep counts.
	for _, bad := range []*FoldInRequest{
		{},
		{Friends: []int32{0}},
		{Docs: [][]int32{{}}},
		{Docs: [][]int32{{99}}},
		{Docs: [][]int32{{1}}, Friends: []int32{99}},
		{Docs: [][]int32{{1}}, Sweeps: MaxFoldInSweeps + 1},
	} {
		if _, err := e.FoldIn(bad); err == nil {
			t.Fatalf("bad request %+v accepted", bad)
		}
	}
}

// TestFoldInDeterministic pins the acceptance criterion: fold-in is a pure
// function of (snapshot, request) — bit-identical across repeats, across
// batch vs single, and across every worker-pool size.
func TestFoldInDeterministic(t *testing.T) {
	m := SyntheticModel(40, 10, 6, 150, 3)
	reqs := make([]*FoldInRequest, 12)
	for i := range reqs {
		reqs[i] = &FoldInRequest{
			Docs:    [][]int32{{int32(i), int32(2 * i), 7}, {int32(3 * i)}},
			Friends: []int32{int32(i % 40)},
			Seed:    uint64(1000 + i),
		}
	}
	var ref []*FoldInResult
	for _, workers := range []int{1, 3, 8} {
		e := testEngine(t, m, nil, Options{FoldInWorkers: workers})
		out, errs := e.FoldInBatch(reqs)
		for i, err := range errs {
			if err != nil {
				t.Fatalf("request %d: %v", i, err)
			}
		}
		// Single-request path must agree with the batch path.
		single, err := e.FoldIn(reqs[0])
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(single, out[0]) {
			t.Fatalf("workers=%d: single fold-in differs from batch", workers)
		}
		if ref == nil {
			ref = out
			continue
		}
		if !reflect.DeepEqual(ref, out) {
			t.Fatalf("workers=%d: batch results differ from workers=1", workers)
		}
	}
	// Distinct seeds must explore distinct trajectories.
	e := testEngine(t, m, nil, Options{})
	a, _ := e.FoldIn(&FoldInRequest{Docs: [][]int32{{1, 2, 3}}, Seed: 1})
	b, _ := e.FoldIn(&FoldInRequest{Docs: [][]int32{{1, 2, 3}}, Seed: 2})
	if reflect.DeepEqual(a.DocCommunity, b.DocCommunity) && reflect.DeepEqual(a.DocTopic, b.DocTopic) {
		t.Log("warning: two seeds produced identical assignments (possible but unlikely)")
	}
}

func TestQueryEndpoints(t *testing.T) {
	m := SyntheticModel(30, 8, 5, 100, 4)
	e := testEngine(t, m, nil, Options{})
	if got := len(e.Communities()); got != 8 {
		t.Fatalf("got %d communities", got)
	}
	d, err := e.Community(3)
	if err != nil {
		t.Fatal(err)
	}
	if d.ID != 3 || len(d.TopTopics) == 0 || len(d.OutFlows) == 0 {
		t.Fatalf("incomplete detail: %+v", d)
	}
	if _, err := e.Community(99); err == nil {
		t.Fatal("bad community accepted")
	}
	mem, err := e.Membership(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(mem.Communities) != 3 {
		t.Fatalf("got %d memberships", len(mem.Communities))
	}
	for i := 1; i < len(mem.Communities); i++ {
		if mem.Communities[i].Weight > mem.Communities[i-1].Weight {
			t.Fatal("memberships not sorted")
		}
	}
	if _, err := e.Membership(-1, 3); err == nil {
		t.Fatal("bad user accepted")
	}
	diff, err := e.Diffusion(0, 1, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if diff.Prob <= 0 || diff.Prob >= 1 {
		t.Fatalf("diffusion prob %v out of (0,1)", diff.Prob)
	}
	if _, err := e.Diffusion(0, 1, 99, 0); err == nil {
		t.Fatal("bad topic accepted")
	}
	if _, err := e.RankText("anything", 3); err != ErrNoVocabulary {
		t.Fatalf("want ErrNoVocabulary, got %v", err)
	}

	stats := e.Stats()
	if stats["community"].Count != 2 || stats["community"].Errors != 1 {
		t.Fatalf("community stats %+v", stats["community"])
	}
	if stats["rank"].Count != 1 || stats["rank"].Errors != 1 {
		t.Fatalf("rank stats %+v", stats["rank"])
	}
	if stats["membership"].Count != 2 {
		t.Fatalf("membership stats %+v", stats["membership"])
	}
}

func TestReloadSwapsAndFailsClosed(t *testing.T) {
	dir := t.TempDir()
	a := SyntheticModel(20, 6, 4, 80, 5)
	b := SyntheticModel(25, 9, 4, 90, 6)
	pa, pb := filepath.Join(dir, "a.snap"), filepath.Join(dir, "b.snap")
	if err := store.Save(pa, a); err != nil {
		t.Fatal(err)
	}
	if err := store.Save(pb, b); err != nil {
		t.Fatal(err)
	}
	e := testEngine(t, a, nil, Options{})
	if v := e.View().Version; v != 1 {
		t.Fatalf("initial version %d", v)
	}
	v, err := e.Reload(pb, "")
	if err != nil {
		t.Fatal(err)
	}
	if v != 2 || e.View().Version != 2 {
		t.Fatalf("version after reload: %d / %d", v, e.View().Version)
	}
	if got := e.View().Model.Cfg.NumCommunities; got != 9 {
		t.Fatalf("reloaded model has |C|=%d, want 9", got)
	}
	// A failed reload must leave the serving state untouched.
	if _, err := e.Reload(filepath.Join(dir, "missing.snap"), ""); err == nil {
		t.Fatal("missing snapshot accepted")
	}
	if e.View().Version != 2 || e.View().Model.Cfg.NumCommunities != 9 {
		t.Fatal("failed reload disturbed the serving state")
	}
	if e.Stats()["reload"].Errors != 1 {
		t.Fatalf("reload stats %+v", e.Stats()["reload"])
	}
}

// TestHotSwapUnderLoad is the acceptance-criterion race test: goroutines
// hammer every query endpoint while the main goroutine hot-swaps between
// two models with different shapes. Every result must be internally
// consistent with exactly one model generation — a torn read (new model,
// old index/members) would surface as a shape mismatch, an out-of-range
// panic, or the race detector firing (CI runs this under -race).
func TestHotSwapUnderLoad(t *testing.T) {
	dir := t.TempDir()
	a := SyntheticModel(30, 8, 5, 120, 7)
	b := SyntheticModel(45, 14, 6, 200, 8)
	pa, pb := filepath.Join(dir, "a.snap"), filepath.Join(dir, "b.snap")
	if err := store.Save(pa, a); err != nil {
		t.Fatal(err)
	}
	if err := store.Save(pb, b); err != nil {
		t.Fatal(err)
	}
	// Model shape by generation parity: odd versions serve a, even b.
	shape := func(version uint64) (C, users, words int) {
		if version%2 == 1 {
			return 8, 30, 120
		}
		return 14, 45, 200
	}

	e := testEngine(t, a, nil, Options{FoldInWorkers: 2})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	fail := make(chan string, 64)
	report := func(msg string) {
		select {
		case fail <- msg:
		default:
		}
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// One coherent snapshot view per iteration.
				s := e.View()
				C, users, _ := shape(s.Version)
				if s.Model.Cfg.NumCommunities != C || len(s.users.memberLists) != C {
					report("snapshot shape mismatch")
					return
				}
				res, err := e.Rank([]int32{int32(i % 100)}, 3)
				if err != nil {
					report("rank: " + err.Error())
					return
				}
				rC, _, _ := shape(res.Version)
				for _, entry := range res.Entries {
					if entry.Community >= rC {
						report("rank entry out of range for its version")
						return
					}
				}
				mem, err := e.Membership(i%users, 3)
				if err != nil {
					// A swap may have shrunk the user range between shape()
					// and the call; only accept that exact situation.
					if i%users < 30 {
						report("membership: " + err.Error())
						return
					}
					continue
				}
				mC, _, _ := shape(mem.Version)
				for _, cw := range mem.Communities {
					if cw.Community >= mC {
						report("membership community out of range for its version")
						return
					}
				}
				fr, err := e.FoldIn(&FoldInRequest{
					Docs: [][]int32{{int32(i % 100), int32(g)}}, Seed: uint64(i), Sweeps: 2,
				})
				if err != nil {
					report("foldin: " + err.Error())
					return
				}
				fC, _, _ := shape(fr.Version)
				if len(fr.Pi) != fC {
					report("foldin pi length mismatches its version")
					return
				}
			}
		}(g)
	}
	for swap := 0; swap < 12; swap++ {
		path := pb
		if swap%2 == 1 {
			path = pa
		}
		if _, err := e.Reload(path, ""); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case msg := <-fail:
		t.Fatal(msg)
	default:
	}
	if got := e.View().Version; got != 13 {
		t.Fatalf("final version %d, want 13", got)
	}
}
