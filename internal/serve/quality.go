package serve

import (
	"time"

	"repro/internal/quality"
	"repro/internal/socialgraph"
)

// RecordQuality appends a structural quality report to the named slot's
// bounded history (Options.QualityHistory generations; oldest dropped).
// The streaming publisher calls this after each promote it scores.
func (e *Engine) RecordQuality(name string, r *quality.Report) {
	if r == nil {
		return
	}
	e.qualityMu.Lock()
	defer e.qualityMu.Unlock()
	h := append(e.qualityHist[name], r)
	if over := len(h) - e.opts.QualityHistory; over > 0 {
		h = append(h[:0], h[over:]...)
	}
	e.qualityHist[name] = h
}

// RecordQualityBaseline stores the comparison row — the same metrics
// computed over a cheap structural baseline's partition (PLP) — shown
// alongside the model's history on /api/quality.
func (e *Engine) RecordQualityBaseline(name string, r *quality.Report) {
	e.qualityMu.Lock()
	defer e.qualityMu.Unlock()
	if r == nil {
		delete(e.qualityBaseline, name)
		return
	}
	e.qualityBaseline[name] = r
}

// QualityHistory returns a copy of the named slot's recorded history
// (oldest first) and its baseline row (nil if none).
func (e *Engine) QualityHistory(name string) ([]*quality.Report, *quality.Report) {
	e.qualityMu.Lock()
	defer e.qualityMu.Unlock()
	h := e.qualityHist[name]
	out := make([]*quality.Report, len(h))
	copy(out, h)
	return out, e.qualityBaseline[name]
}

// latestQuality is the /api/stats summary: the newest report per slot.
func (e *Engine) latestQuality() map[string]*quality.Report {
	e.qualityMu.Lock()
	defer e.qualityMu.Unlock()
	if len(e.qualityHist) == 0 {
		return nil
	}
	out := make(map[string]*quality.Report, len(e.qualityHist))
	for name, h := range e.qualityHist {
		if len(h) > 0 {
			out[name] = h[len(h)-1]
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// QualityPayload is the /api/quality response: the per-generation report
// history for one snapshot slot plus the structural-baseline comparison
// row, ready for quality.Table rendering client-side.
type QualityPayload struct {
	Snapshot string            `json:"snapshot"`
	History  []*quality.Report `json:"history"`
	Baseline *quality.Report   `json:"baseline,omitempty"`
}

// QualityIn answers /api/quality for the named slot, latency-counted like
// every other endpoint. A slot with no recorded history (a static load
// with no streaming publisher, or quality computation disabled) gets a
// one-off membership-shape report computed from the live snapshot, so the
// endpoint always describes the model actually being served.
func (e *Engine) QualityIn(name string) (p *QualityPayload, err error) {
	start := time.Now()
	defer func() { e.lat[epQuality].Observe(time.Since(start), err) }()
	history, baseline := e.QualityHistory(name)
	if len(history) == 0 {
		s, release, aerr := e.AcquireNamed(name)
		if aerr != nil {
			return nil, aerr
		}
		r := quality.FromModel(s.Model, nil, nil)
		r.Version = s.Version
		r.UnixMilli = time.Now().UnixMilli()
		release()
		history = []*quality.Report{r}
	}
	return &QualityPayload{Snapshot: name, History: history, Baseline: baseline}, nil
}

// SnapshotQuality scores a served snapshot's hard partition directly —
// the "given a served serve.Snapshot" entry point. friends and prev are
// passed through to quality.Compute and may be nil.
func SnapshotQuality(s *Snapshot, friends []socialgraph.FriendLink, prev []int32) *quality.Report {
	r := quality.FromModel(s.Model, friends, prev)
	r.Version = s.Version
	r.UnixMilli = time.Now().UnixMilli()
	return r
}
