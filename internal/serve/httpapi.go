package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/shard"
)

// APIHandler exposes the engine's typed query API as a JSON HTTP surface —
// the headless counterpart of the lens browser UI, served by
// cmd/cpd-serve:
//
//	GET  /api/communities                       community summaries
//	GET  /api/community?id=3                    full community profile
//	GET  /api/user?id=42&k=5                    user membership
//	GET  /api/rank?q=deep+learning&k=10         free-text Eq. 19 ranking
//	GET  /api/rank?w=17,204&k=10                word-id Eq. 19 ranking
//	GET  /api/diffusion?u=1&v=2&topic=0&bucket=3 per-topic diffusion prob
//	POST /api/diffusion                         diffusion with explicit rows (sharded routing)
//	GET  /api/pirow?id=42                       owned user's membership row (sharded routing)
//	POST /api/foldin                            fold-in one FoldInRequest
//	POST /api/drain                             flip the replica to draining
//	POST /api/reload                            hot-swap via reload (if non-nil)
//	GET  /api/snapshots                         per-snapshot accounting
//	GET  /api/generation                        publisher generation served (replica freshness)
//	GET  /api/stats                             latency histograms + RSS + quality summary
//	GET  /api/quality                           per-generation quality history + PLP baseline
//	GET  /metrics                               Prometheus text exposition
//	GET  /healthz                               liveness + model version
//
// Every query endpoint accepts an optional ?snapshot=NAME parameter
// selecting one of the engine's named snapshots (default "default");
// unknown names answer 404.
//
// reload is invoked by POST /api/reload; pass nil to disable the endpoint
// (it returns 501). cmd/cpd-serve wires it to re-read the paths the server
// was started with, so HTTP clients cannot point the server at arbitrary
// files.
func APIHandler(e *Engine, reload func() error) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/api/communities", func(w http.ResponseWriter, r *http.Request) {
		out, err := e.CommunitiesIn(snapParam(r))
		if err != nil {
			writeQueryErr(w, err)
			return
		}
		writeJSON(w, out)
	})
	mux.HandleFunc("/api/community", func(w http.ResponseWriter, r *http.Request) {
		id, err := strconv.Atoi(r.URL.Query().Get("id"))
		if err != nil {
			http.Error(w, "bad or missing community id", http.StatusBadRequest)
			return
		}
		d, err := e.CommunityIn(snapParam(r), id)
		if err != nil {
			writeQueryErr(w, err)
			return
		}
		writeJSON(w, d)
	})
	mux.HandleFunc("/api/user", func(w http.ResponseWriter, r *http.Request) {
		id, err := strconv.Atoi(r.URL.Query().Get("id"))
		if err != nil {
			http.Error(w, "bad or missing user id", http.StatusBadRequest)
			return
		}
		res, err := e.MembershipIn(snapParam(r), id, intParam(r, "k", 0))
		if err != nil {
			writeQueryErr(w, err)
			return
		}
		writeJSON(w, res)
	})
	mux.HandleFunc("/api/rank", func(w http.ResponseWriter, r *http.Request) {
		k := intParam(r, "k", 10)
		name := snapParam(r)
		var res *RankResult
		var err error
		switch {
		case r.URL.Query().Get("w") != "":
			var ids []int32
			for _, s := range strings.Split(r.URL.Query().Get("w"), ",") {
				v, convErr := strconv.ParseInt(strings.TrimSpace(s), 10, 32)
				if convErr != nil {
					http.Error(w, fmt.Sprintf("bad word id %q", s), http.StatusBadRequest)
					return
				}
				ids = append(ids, int32(v))
			}
			res, err = e.RankIn(name, ids, k)
		case strings.TrimSpace(r.URL.Query().Get("q")) != "":
			res, err = e.RankTextIn(name, r.URL.Query().Get("q"), k)
		default:
			http.Error(w, "missing q or w parameter", http.StatusBadRequest)
			return
		}
		if err != nil {
			writeQueryErr(w, err)
			return
		}
		writeJSON(w, res)
	})
	mux.HandleFunc("/api/diffusion", func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost {
			// Row-carrying variant for sharded fleets: a router scoring a
			// cross-shard pair fetches the remote row (/api/pirow) and posts
			// it here with the owner of the other side.
			r.Body = http.MaxBytesReader(w, r.Body, 1<<20)
			var req DiffusionRowsRequest
			if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			res, err := e.DiffusionRowsIn(snapParam(r), req.U, req.V, req.Topic, req.Bucket, req.URow, req.VRow)
			if err != nil {
				writeQueryErr(w, err)
				return
			}
			writeJSON(w, res)
			return
		}
		u, err1 := strconv.Atoi(r.URL.Query().Get("u"))
		v, err2 := strconv.Atoi(r.URL.Query().Get("v"))
		z, err3 := strconv.Atoi(r.URL.Query().Get("topic"))
		if err1 != nil || err2 != nil || err3 != nil {
			http.Error(w, "u, v and topic are required integers", http.StatusBadRequest)
			return
		}
		res, err := e.DiffusionIn(snapParam(r), u, v, z, intParam(r, "bucket", -1))
		if err != nil {
			writeQueryErr(w, err)
			return
		}
		writeJSON(w, res)
	})
	mux.HandleFunc("/api/pirow", func(w http.ResponseWriter, r *http.Request) {
		id, err := strconv.Atoi(r.URL.Query().Get("id"))
		if err != nil {
			http.Error(w, "bad or missing user id", http.StatusBadRequest)
			return
		}
		res, err := e.PiRowIn(snapParam(r), id)
		if err != nil {
			writeQueryErr(w, err)
			return
		}
		writeJSON(w, res)
	})
	mux.HandleFunc("/api/drain", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST to drain", http.StatusMethodNotAllowed)
			return
		}
		e.Drain()
		writeJSON(w, map[string]bool{"draining": true})
	})
	mux.HandleFunc("/api/foldin", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST a FoldInRequest", http.StatusMethodNotAllowed)
			return
		}
		// Cap the body before decoding: the fold-in limits cannot protect
		// the server if the JSON for an over-limit request is allowed to
		// materialize first. 16 MiB comfortably fits MaxFoldInTokens.
		r.Body = http.MaxBytesReader(w, r.Body, 16<<20)
		var req FoldInRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		res, err := e.FoldInNamed(snapParam(r), &req)
		if err != nil {
			writeQueryErr(w, err)
			return
		}
		writeJSON(w, res)
	})
	mux.HandleFunc("/api/reload", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST to reload", http.StatusMethodNotAllowed)
			return
		}
		if reload == nil {
			http.Error(w, "reload disabled", http.StatusNotImplemented)
			return
		}
		if err := reload(); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, map[string]uint64{"version": e.version.Load()})
	})
	mux.HandleFunc("/api/snapshots", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, e.SnapshotsInfo())
	})
	mux.HandleFunc("/api/generation", func(w http.ResponseWriter, r *http.Request) {
		// Generation reporting for the distribution tier: the router polls
		// this to track per-replica freshness and lag. Like /healthz, an
		// empty replica (no snapshot promoted yet) is a valid state — it
		// answers generation 0 rather than erroring, so a cold replica can
		// join a fleet before its first fetch completes.
		name := r.URL.Query().Get("snapshot")
		explicit := name != ""
		if !explicit {
			name = DefaultSnapshot
		}
		s, release, err := e.AcquireNamed(name)
		if err != nil && !explicit {
			if names := e.Names(); len(names) > 0 {
				s, release, err = e.AcquireNamed(names[0])
			}
		}
		if err != nil {
			if explicit {
				writeQueryErr(w, err)
				return
			}
			writeJSON(w, GenerationReport{Draining: e.Draining()})
			return
		}
		defer release()
		writeJSON(w, GenerationReport{
			Snapshot:   s.Name,
			Generation: s.Generation,
			Version:    s.Version,
			Shard:      s.Shard,
			Draining:   e.Draining(),
		})
	})
	mux.HandleFunc("/api/stats", func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		writeJSON(w, e.StatsReport())
		e.lat[epStats].Observe(time.Since(start), nil)
	})
	mux.HandleFunc("/api/quality", func(w http.ResponseWriter, r *http.Request) {
		p, err := e.QualityIn(snapParam(r))
		if err != nil {
			writeQueryErr(w, err)
			return
		}
		writeJSON(w, p)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		e.WriteMetrics(w)
		e.lat[epMetrics].Observe(time.Since(start), nil)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		// Process liveness must not depend on any particular snapshot
		// name existing: without ?snapshot= a healthy engine answers 200
		// whatever its slots are called (a multi-snapshot server has no
		// "default"). An explicit ?snapshot= asks about that snapshot and
		// 404s if unknown.
		name := r.URL.Query().Get("snapshot")
		explicit := name != ""
		if !explicit {
			name = DefaultSnapshot
		}
		s, release, err := e.AcquireNamed(name)
		if err != nil && !explicit {
			// No "default" slot; report against the first named one.
			if names := e.Names(); len(names) > 0 {
				s, release, err = e.AcquireNamed(names[0])
			}
		}
		status := "ok"
		if e.Draining() {
			status = "draining"
		}
		if err != nil {
			if explicit {
				writeQueryErr(w, err)
				return
			}
			writeJSON(w, map[string]any{"status": status, "draining": e.Draining(), "snapshots": e.Names()})
			return
		}
		defer release()
		payload := map[string]any{
			"status":     status,
			"draining":   e.Draining(),
			"snapshot":   s.Name,
			"version":    s.Version,
			"generation": s.Generation,
			"users":      s.Model.NumUsers,
			"words":      s.Model.NumWords,
			"mapped":     s.Mapped(),
		}
		if s.Shard != nil {
			payload["shard"] = s.Shard
		}
		writeJSON(w, payload)
	})
	return mux
}

// GenerationReport is the /api/generation payload: which publisher
// generation the replica currently serves. A replica with no snapshot
// yet reports the zero value. Shard advertises the owned user range on
// shard-owning replicas; Draining that the replica is leaving the fleet
// — both drive the router's placement.
type GenerationReport struct {
	Snapshot   string      `json:"snapshot,omitempty"`
	Generation uint64      `json:"generation"`
	Version    uint64      `json:"version,omitempty"`
	Shard      *shard.Info `json:"shard,omitempty"`
	Draining   bool        `json:"draining,omitempty"`
}

// DiffusionRowsRequest is the POST /api/diffusion body: a diffusion
// query with explicit membership rows for whichever of u, v the serving
// replica does not own (nil rows fall back to the local model).
type DiffusionRowsRequest struct {
	U      int       `json:"u"`
	V      int       `json:"v"`
	Topic  int       `json:"topic"`
	Bucket int       `json:"bucket"`
	URow   []float64 `json:"urow,omitempty"`
	VRow   []float64 `json:"vrow,omitempty"`
}

// snapParam resolves the optional ?snapshot= parameter.
func snapParam(r *http.Request) string {
	if name := r.URL.Query().Get("snapshot"); name != "" {
		return name
	}
	return DefaultSnapshot
}

// writeQueryErr maps engine errors to HTTP statuses: unknown snapshot
// names are 404, missing vocabularies 501, misrouted shard queries 421
// (Misdirected Request — retry against the owning replica), anything
// else a 400.
func writeQueryErr(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	var noSnap *ErrNoSnapshot
	var notOwned *ErrNotOwned
	switch {
	case errors.As(err, &noSnap):
		status = http.StatusNotFound
	case errors.As(err, &notOwned):
		status = http.StatusMisdirectedRequest
	case errors.Is(err, ErrNoVocabulary):
		status = http.StatusNotImplemented
	}
	http.Error(w, err.Error(), status)
}

// RunHTTP serves h on addr until the process receives SIGINT or SIGTERM,
// then shuts down gracefully: the listener closes immediately, in-flight
// requests get up to ten seconds to drain. It returns nil on a clean
// signal-triggered shutdown. Both cmd/cpd-serve and cmd/cpd-lens run
// through it instead of bare http.ListenAndServe.
func RunHTTP(addr string, h http.Handler) error {
	return RunHTTPWithShutdown(addr, h, nil)
}

// RunHTTPWithShutdown is RunHTTP with a drain hook: onSignal runs after
// the shutdown signal arrives but BEFORE the HTTP server stops serving,
// so a streaming server can stop accepting ingest, flush its journal and
// publish a final snapshot while reads keep flowing — the graceful-drain
// sequence of cmd/cpd-serve.
func RunHTTPWithShutdown(addr string, h http.Handler, onSignal func()) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	srv := &http.Server{Addr: addr, Handler: h}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	if onSignal != nil {
		onSignal()
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	return srv.Shutdown(shutdownCtx)
}

func intParam(r *http.Request, name string, def int) int {
	if s := r.URL.Query().Get(name); s != "" {
		if v, err := strconv.Atoi(s); err == nil {
			return v
		}
	}
	return def
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
