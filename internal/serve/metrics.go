package serve

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/hist"
	"repro/internal/quality"
)

// AddMetricsCollector registers an extra contributor to WriteMetrics —
// how cmd/cpd-serve surfaces the stream updater's ingest counters and
// publish-latency/lag histograms on /metrics without this package
// depending on internal/stream (the SetIngestStats pattern). Collectors
// run after the engine's own families and must emit complete, valid
// Prometheus text exposition themselves.
func (e *Engine) AddMetricsCollector(fn func(io.Writer)) {
	e.collectorsMu.Lock()
	e.collectors = append(e.collectors, fn)
	e.collectorsMu.Unlock()
}

// WriteMetrics emits the engine's state in Prometheus text exposition
// format (version 0.0.4, hand-rolled on the stdlib): per-endpoint request
// and error counters plus latency histograms, process RSS, per-snapshot
// mapped/heap byte gauges, and the latest structural quality report per
// slot as gauges — then any registered collectors.
func (e *Engine) WriteMetrics(w io.Writer) {
	fmt.Fprint(w, "# HELP cpd_endpoint_requests_total Requests served per endpoint.\n# TYPE cpd_endpoint_requests_total counter\n")
	stats := make([]*hist.Hist, epCount)
	for i := 0; i < epCount; i++ {
		stats[i] = e.lat[i].Snapshot()
		fmt.Fprintf(w, "cpd_endpoint_requests_total{endpoint=%q} %d\n", endpointNames[i], stats[i].Count)
	}
	fmt.Fprint(w, "# HELP cpd_endpoint_errors_total Failed requests per endpoint.\n# TYPE cpd_endpoint_errors_total counter\n")
	for i := 0; i < epCount; i++ {
		fmt.Fprintf(w, "cpd_endpoint_errors_total{endpoint=%q} %d\n", endpointNames[i], stats[i].Errs)
	}
	fmt.Fprint(w, "# HELP cpd_endpoint_latency_seconds Request latency per endpoint.\n# TYPE cpd_endpoint_latency_seconds histogram\n")
	for i := 0; i < epCount; i++ {
		stats[i].WriteProm(w, "cpd_endpoint_latency_seconds", `endpoint=`+strconv.Quote(endpointNames[i]))
	}

	gauge(w, "cpd_process_rss_bytes", "Process resident set size.", "", float64(ProcessRSS()))

	infos := e.SnapshotsInfo()
	snapGauge := func(name, help string, get func(SnapshotStats) float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
		for _, info := range infos {
			fmt.Fprintf(w, "%s{snapshot=%q} %s\n", name, info.Name, promFloat(get(info)))
		}
	}
	snapGauge("cpd_snapshot_version", "Engine version of the live snapshot.",
		func(s SnapshotStats) float64 { return float64(s.Version) })
	snapGauge("cpd_snapshot_users", "Users served by the snapshot.",
		func(s SnapshotStats) float64 { return float64(s.Users) })
	snapGauge("cpd_snapshot_mapped_bytes", "Bytes served from a file mapping (0 for heap snapshots).",
		func(s SnapshotStats) float64 { return float64(s.MappedBytes) })
	snapGauge("cpd_snapshot_heap_bytes", "Estimated heap footprint of the snapshot (caches and indexes).",
		func(s SnapshotStats) float64 { return float64(s.HeapBytes) })
	snapGauge("cpd_snapshot_refs", "In-flight query pins on the snapshot.",
		func(s SnapshotStats) float64 { return float64(s.Refs) })

	e.writeQualityMetrics(w)

	e.collectorsMu.Lock()
	collectors := append([]func(io.Writer){}, e.collectors...)
	e.collectorsMu.Unlock()
	for _, fn := range collectors {
		fn(w)
	}
}

// qualityGauges maps every scalar of a quality.Report onto one gauge
// family each, labeled {snapshot, algo}.
var qualityGauges = []struct {
	name, help string
	get        func(*quality.Report) float64
}{
	{"cpd_quality_generation", "Publisher generation the report scores.", func(r *quality.Report) float64 { return float64(r.Generation) }},
	{"cpd_quality_communities", "Non-empty communities in the partition.", func(r *quality.Report) float64 { return float64(r.Communities) }},
	{"cpd_quality_modularity", "Girvan-Newman modularity of the served partition.", func(r *quality.Report) float64 { return r.Modularity }},
	{"cpd_quality_coverage", "Fraction of friendship edges inside communities.", func(r *quality.Report) float64 { return r.Coverage }},
	{"cpd_quality_avg_conductance", "Mean per-community conductance (lower is better separated).", func(r *quality.Report) float64 { return r.AvgConductance }},
	{"cpd_quality_size_min", "Smallest non-empty community.", func(r *quality.Report) float64 { return float64(r.SizeMin) }},
	{"cpd_quality_size_p50", "Median community size.", func(r *quality.Report) float64 { return float64(r.SizeP50) }},
	{"cpd_quality_size_max", "Largest community.", func(r *quality.Report) float64 { return float64(r.SizeMax) }},
	{"cpd_quality_imbalance", "Largest community over mean community size.", func(r *quality.Report) float64 { return r.Imbalance }},
	{"cpd_quality_entropy", "Normalized community-size entropy (1 = even).", func(r *quality.Report) float64 { return r.Entropy }},
	{"cpd_quality_tail_exponent", "Hill power-law exponent of the community-size tail.", func(r *quality.Report) float64 { return r.TailExponent }},
	{"cpd_quality_churn", "Fraction of users whose community changed vs the previous generation.", func(r *quality.Report) float64 { return r.Churn }},
	{"cpd_quality_nmi_prev", "NMI between this generation's partition and the previous one.", func(r *quality.Report) float64 { return r.PrevNMI }},
	{"cpd_quality_cost_seconds", "What computing the report cost the publish path.", func(r *quality.Report) float64 { return float64(r.CostMicros) / 1e6 }},
}

func (e *Engine) writeQualityMetrics(w io.Writer) {
	type row struct {
		slot string
		r    *quality.Report
	}
	var rows []row
	e.qualityMu.Lock()
	for name, h := range e.qualityHist {
		if len(h) > 0 {
			rows = append(rows, row{name, h[len(h)-1]})
		}
	}
	for name, b := range e.qualityBaseline {
		rows = append(rows, row{name, b})
	}
	e.qualityMu.Unlock()
	if len(rows) == 0 {
		return
	}
	for _, g := range qualityGauges {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", g.name, g.help, g.name)
		for _, row := range rows {
			fmt.Fprintf(w, "%s{snapshot=%q,algo=%q} %s\n", g.name, row.slot, row.r.Algo, promFloat(g.get(row.r)))
		}
	}
}

func gauge(w io.Writer, name, help, labels string, v float64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
	if labels != "" {
		labels = "{" + labels + "}"
	}
	fmt.Fprintf(w, "%s%s %s\n", name, labels, promFloat(v))
}

func promFloat(v float64) string {
	s := strconv.FormatFloat(v, 'g', -1, 64)
	// Prometheus text format spells exponents without '+' padding quirks;
	// Go's 'g' output is accepted as-is, so only NaN needs normalizing.
	if strings.Contains(s, "NaN") {
		return "0"
	}
	return s
}
