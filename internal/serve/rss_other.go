//go:build !linux

package serve

// ProcessRSS returns 0 on platforms without a cheap RSS reading; the
// stats payload reports it as unavailable.
func ProcessRSS() int64 { return 0 }
