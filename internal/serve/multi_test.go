package serve

import (
	"errors"

	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/store"
)

// saveV2Model writes a synthetic model as a v2 snapshot and returns the
// path.
func saveV2Model(t *testing.T, dir, name string, users, C, Z, V int, seed uint64) string {
	t.Helper()
	m := SyntheticModel(users, C, Z, V, seed)
	path := filepath.Join(dir, name)
	if err := store.SaveV2(path, m); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestMultiSnapshotEngine(t *testing.T) {
	mA := SyntheticModel(40, 6, 5, 300, 1)
	mB := SyntheticModel(25, 4, 3, 200, 2)
	e := NewMulti(Options{})
	defer e.Close()
	if _, _, err := e.Acquire(); err == nil {
		t.Fatal("empty engine handed out a snapshot")
	}
	e.SwapNamed("eu", mA, nil)
	e.SwapNamed("us", mB, nil)
	if got := e.Names(); !reflect.DeepEqual(got, []string{"eu", "us"}) {
		t.Fatalf("Names() = %v", got)
	}

	// Queries route by name and answer from the right model.
	resEU, err := e.MembershipIn("eu", 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if resEU.Communities[0].Community != mA.TopCommunity(0) {
		t.Fatal("eu membership does not come from model A")
	}
	resUS, err := e.MembershipIn("us", 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if resUS.Communities[0].Community != mB.TopCommunity(0) {
		t.Fatal("us membership does not come from model B")
	}

	// Unknown names fail with the typed error; the default slot was never
	// created.
	var noSnap *ErrNoSnapshot
	if _, err := e.MembershipIn("asia", 0, 3); !errors.As(err, &noSnap) {
		t.Fatalf("unknown snapshot error = %v", err)
	}
	if _, err := e.Membership(0, 3); !errors.As(err, &noSnap) {
		t.Fatalf("default snapshot error = %v", err)
	}

	// Per-snapshot accounting.
	infos := e.SnapshotsInfo()
	if len(infos) != 2 || infos[0].Name != "eu" || infos[1].Name != "us" {
		t.Fatalf("SnapshotsInfo = %+v", infos)
	}
	if infos[0].Users != 40 || infos[1].Users != 25 {
		t.Fatalf("snapshot stats users wrong: %+v", infos)
	}
	if infos[0].HeapBytes <= 0 || infos[0].Mapped {
		t.Fatalf("heap snapshot accounting wrong: %+v", infos[0])
	}

	// Dropping a slot makes its queries fail, leaves the other alive.
	if !e.DropSnapshot("us") {
		t.Fatal("DropSnapshot(us) found nothing")
	}
	if e.DropSnapshot("us") {
		t.Fatal("DropSnapshot(us) dropped twice")
	}
	if _, err := e.MembershipIn("us", 0, 3); !errors.As(err, &noSnap) {
		t.Fatalf("dropped snapshot still answers: %v", err)
	}
	if _, err := e.MembershipIn("eu", 0, 3); err != nil {
		t.Fatalf("surviving snapshot broken: %v", err)
	}
}

func TestHTTPSnapshotRouting(t *testing.T) {
	e := NewMulti(Options{})
	defer e.Close()
	e.SwapNamed(DefaultSnapshot, SyntheticModel(30, 5, 4, 200, 3), nil)
	e.SwapNamed("eu", SyntheticModel(20, 3, 3, 100, 4), nil)
	h := APIHandler(e, nil)

	get := func(path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		return rec
	}
	if rec := get("/api/user?id=0"); rec.Code != http.StatusOK {
		t.Fatalf("default query: %d %s", rec.Code, rec.Body)
	}
	if rec := get("/api/user?id=0&snapshot=eu"); rec.Code != http.StatusOK {
		t.Fatalf("named query: %d %s", rec.Code, rec.Body)
	}
	// User 25 exists only in the default model.
	if rec := get("/api/user?id=25"); rec.Code != http.StatusOK {
		t.Fatalf("default-only user: %d", rec.Code)
	}
	if rec := get("/api/user?id=25&snapshot=eu"); rec.Code != http.StatusBadRequest {
		t.Fatalf("out-of-range user on eu: %d", rec.Code)
	}
	if rec := get("/api/user?id=0&snapshot=nope"); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown snapshot: %d", rec.Code)
	}
	if rec := get("/api/snapshots"); rec.Code != http.StatusOK {
		t.Fatalf("/api/snapshots: %d", rec.Code)
	}
	if rec := get("/api/stats"); rec.Code != http.StatusOK {
		t.Fatalf("/api/stats: %d", rec.Code)
	}
	if rec := get("/healthz?snapshot=eu"); rec.Code != http.StatusOK {
		t.Fatalf("/healthz?snapshot=eu: %d", rec.Code)
	}
	if rec := get("/healthz?snapshot=nope"); rec.Code != http.StatusNotFound {
		t.Fatalf("/healthz?snapshot=nope: %d", rec.Code)
	}

	// Liveness must not depend on a slot named "default": a server
	// hosting only named snapshots is healthy.
	named := NewMulti(Options{})
	defer named.Close()
	named.SwapNamed("eu", SyntheticModel(10, 3, 3, 50, 5), nil)
	nh := APIHandler(named, nil)
	rec := httptest.NewRecorder()
	nh.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/healthz on a named-only engine: %d %s", rec.Code, rec.Body)
	}
}

// TestMappedSnapshotRefcount pins the mapping lifetime contract: a mapped
// snapshot's file stays mapped while any query holds it, and is closed
// exactly when the last reference goes.
func TestMappedSnapshotRefcount(t *testing.T) {
	dir := t.TempDir()
	path := saveV2Model(t, dir, "m.v2.snap", 30, 5, 4, 200, 7)

	mmA, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	e := NewMulti(Options{})
	defer e.Close()
	e.SwapMapped(DefaultSnapshot, mmA, nil)

	s, release, err := e.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	if !s.Mapped() && mmA.Mapped() {
		t.Fatal("snapshot lost the mapped flag")
	}

	// Swap in a second mapped model; the first must stay open while the
	// query pin exists.
	mmB, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	e.SwapMapped(DefaultSnapshot, mmB, nil)
	if mmA.Closed() {
		t.Fatal("retired snapshot unmapped while a query held it")
	}
	// The pinned snapshot must still answer from valid memory.
	if _, err := s.Membership(0, 3); err != nil {
		t.Fatal(err)
	}
	release()
	if !mmA.Closed() {
		t.Fatal("retired snapshot not unmapped after the last release")
	}
	if mmB.Closed() {
		t.Fatal("live snapshot closed")
	}

	// Dropping the slot releases the engine's reference too.
	e.DropSnapshot(DefaultSnapshot)
	if !mmB.Closed() {
		t.Fatal("dropped snapshot not unmapped")
	}
}

// TestMappedEngineConcurrentSwap is the race-suite proof for the
// refcounted unmap: query hammers run against two named mapped snapshots
// while writers Reload (mmap path) and Swap them continuously, and a
// chaos goroutine drops and recreates one slot. Run with -race this
// demonstrates no query ever touches an unmapped page and no counter
// races.
func TestMappedEngineConcurrentSwap(t *testing.T) {
	dir := t.TempDir()
	paths := map[string]string{
		"eu": saveV2Model(t, dir, "eu.v2.snap", 40, 6, 5, 400, 11),
		"us": saveV2Model(t, dir, "us.v2.snap", 30, 5, 4, 300, 12),
	}
	e := NewMulti(Options{Mmap: true, FoldInWorkers: 2})
	defer e.Close()
	for name, p := range paths {
		if _, err := e.ReloadNamed(name, p, ""); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	report := func(msg string) {
		select {
		case errs <- msg:
		default:
		}
	}

	// Query hammers: rank + membership + fold-in against both names.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			names := []string{"eu", "us"}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				name := names[(g+i)%2]
				if _, err := e.RankIn(name, []int32{int32(i % 100)}, 3); err != nil {
					var noSnap *ErrNoSnapshot
					if !errors.As(err, &noSnap) {
						report("rank: " + err.Error())
						return
					}
				}
				if _, err := e.MembershipIn(name, i%20, 3); err != nil {
					var noSnap *ErrNoSnapshot
					if !errors.As(err, &noSnap) {
						report("membership: " + err.Error())
						return
					}
				}
				if i%7 == 0 {
					_, err := e.FoldInNamed(name, &FoldInRequest{
						Docs: [][]int32{{1, 2, 3}}, Seed: uint64(i), Sweeps: 2,
					})
					if err != nil {
						var noSnap *ErrNoSnapshot
						if !errors.As(err, &noSnap) {
							report("foldin: " + err.Error())
							return
						}
					}
				}
			}
		}(g)
	}

	// Writers: continuous mapped Reloads of both slots.
	for _, name := range []string{"eu", "us"} {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := e.ReloadNamed(name, paths[name], ""); err != nil {
					report("reload: " + err.Error())
					return
				}
			}
		}(name)
	}

	// Chaos: drop and recreate one slot.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			e.DropSnapshot("us")
			if _, err := e.ReloadNamed("us", paths["us"], ""); err != nil {
				report("recreate: " + err.Error())
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	time.Sleep(400 * time.Millisecond)
	close(stop)
	wg.Wait()
	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}

	// Quiesced engine: exactly two live snapshots, each at refcount 0
	// beyond the slot's own.
	for _, info := range e.SnapshotsInfo() {
		if info.Refs != 0 {
			t.Fatalf("snapshot %s still holds %d query refs after quiesce", info.Name, info.Refs)
		}
	}
}
