package serve

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/store"
)

// publishGen writes a synthetic model as generation gen in dir.
func publishGen(t *testing.T, dir string, gen, seed uint64) string {
	t.Helper()
	m := SyntheticModel(20+int(seed), 5, 4, 120, seed)
	path := store.GenPath(dir, gen)
	if err := store.SaveV2(path, m); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestFetcherDirSource(t *testing.T) {
	pub := t.TempDir()
	e := NewMulti(Options{Mmap: true})
	defer e.Close()
	f, err := NewFetcher(e, FetchOptions{Source: pub, Interval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}

	// Empty publisher: a poll is a no-op, not an error.
	if gen, err := f.Poll(); gen != 0 || err != nil {
		t.Fatalf("poll of empty dir = %d, %v", gen, err)
	}

	publishGen(t, pub, 1, 1)
	if gen, err := f.Poll(); gen != 1 || err != nil {
		t.Fatalf("first poll = %d, %v; want 1", gen, err)
	}
	s, release, err := e.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	if s.Generation != 1 || s.Model.NumUsers != 21 {
		t.Fatalf("serving generation %d with %d users, want 1 with 21", s.Generation, s.Model.NumUsers)
	}
	release()
	// Results carry the publisher generation.
	if res, err := e.Membership(0, 3); err != nil || res.Generation != 1 {
		t.Fatalf("membership generation = %+v, %v", res, err)
	}

	// Already current: nothing to do.
	if gen, err := f.Poll(); gen != 0 || err != nil {
		t.Fatalf("repeat poll = %d, %v; want 0 (current)", gen, err)
	}

	// A newer generation is picked up; the user count proves the swap.
	publishGen(t, pub, 2, 2)
	if gen, err := f.Poll(); gen != 2 || err != nil {
		t.Fatalf("poll after publish = %d, %v; want 2", gen, err)
	}
	if res, err := e.Membership(0, 3); err != nil || res.Generation != 2 {
		t.Fatalf("membership after rollover = %+v, %v", res, err)
	}

	// A corrupt generation is rejected by the CRC walk and the replica
	// keeps serving what it has — the failure is visible in Status.
	path := publishGen(t, pub, 3, 3)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-8] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if gen, err := f.Poll(); err == nil {
		t.Fatalf("corrupt generation promoted (gen=%d)", gen)
	}
	if res, err := e.Membership(0, 3); err != nil || res.Generation != 2 {
		t.Fatalf("replica left generation 2 after failed fetch: %+v, %v", res, err)
	}
	st := f.Status()
	if st.Generation != 2 || st.Fetches != 2 || st.Failures != 1 || st.LastError == "" {
		t.Fatalf("fetcher status = %+v", st)
	}
}

// TestFetcherHTTPSource drives the fetcher against the HTTP snapshot
// contract (a hand-rolled stand-in for stream.SnapshotServer, which this
// package cannot import without a cycle): manifest discovery, file
// download into the local cache, verification, promotion, and cache
// retention.
func TestFetcherHTTPSource(t *testing.T) {
	pub := t.TempDir()
	for gen := uint64(1); gen <= 4; gen++ {
		publishGen(t, pub, gen, gen)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/api/generations", func(w http.ResponseWriter, r *http.Request) {
		files, _ := store.ScanGenerations(pub)
		fmt.Fprintf(w, `{"generation": %d}`, files[len(files)-1].Generation)
	})
	mux.HandleFunc("/api/generations/file", func(w http.ResponseWriter, r *http.Request) {
		http.ServeFile(w, r, filepath.Join(pub, "gen-0000000"+r.URL.Query().Get("gen")+".v2.snap"))
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	cache := t.TempDir()
	e := NewMulti(Options{Mmap: true})
	defer e.Close()
	f, err := NewFetcher(e, FetchOptions{Source: srv.URL, Dir: cache, Keep: 1})
	if err != nil {
		t.Fatal(err)
	}
	if gen, err := f.Poll(); gen != 4 || err != nil {
		t.Fatalf("http poll = %d, %v; want 4", gen, err)
	}
	if res, err := e.Membership(0, 3); err != nil || res.Generation != 4 {
		t.Fatalf("membership after http fetch = %+v, %v", res, err)
	}
	// Only the newest Keep generations stay in the local cache.
	files, err := store.ScanGenerations(cache)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 || files[0].Generation != 4 {
		t.Fatalf("local cache after retention: %+v, want only generation 4", files)
	}

	// A fetcher with an HTTP source but no cache dir is a config error.
	if _, err := NewFetcher(e, FetchOptions{Source: srv.URL}); err == nil {
		t.Fatal("HTTP source without a cache dir accepted")
	}
}
