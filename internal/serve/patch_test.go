package serve

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/sparse"
)

// clonePatchModel deep-copies the blocks snapshot construction reads, so
// a mutated successor never aliases its predecessor (the adversarial
// case for copy-on-write: sharing must come from the patch logic, not
// from accidental aliasing).
func clonePatchModel(m *core.Model) *core.Model {
	cloneDense := func(d *sparse.Dense) *sparse.Dense {
		cp := sparse.NewDense(d.Rows, d.Cols)
		copy(cp.Data, d.Data)
		return cp
	}
	cp := &core.Model{
		Cfg:        m.Cfg,
		NumUsers:   m.NumUsers,
		NumWords:   m.NumWords,
		NumBuckets: m.NumBuckets,
		Pi:         cloneDense(m.Pi),
		Theta:      cloneDense(m.Theta),
		Phi:        cloneDense(m.Phi),
		Eta:        sparse.NewTensor3(m.Eta.D1, m.Eta.D2, m.Eta.D3),
		Nu:         append([]float64(nil), m.Nu...),
		PopFreq:    cloneDense(m.PopFreq),
	}
	copy(cp.Eta.Data, m.Eta.Data)
	cp.Rehydrate()
	return cp
}

// growPatchModel returns a clone of m with extra appended users carrying
// fresh random membership rows.
func growPatchModel(m *core.Model, extra int, r *rand.Rand) *core.Model {
	cp := clonePatchModel(m)
	C := m.Cfg.NumCommunities
	pi := sparse.NewDense(m.NumUsers+extra, C)
	copy(pi.Data, cp.Pi.Data)
	for u := m.NumUsers; u < m.NumUsers+extra; u++ {
		randomizePiRow(pi.Row(u), r)
	}
	cp.Pi = pi
	cp.NumUsers += extra
	cp.Rehydrate()
	return cp
}

func randomizePiRow(row []float64, r *rand.Rand) {
	var sum float64
	for i := range row {
		row[i] = 1e-4
		sum += row[i]
	}
	for k := 0; k < 3; k++ {
		c := r.Intn(len(row))
		v := r.Float64()
		row[c] += v
		sum += v
	}
	for i := range row {
		row[i] /= sum
	}
}

func requireSameRankIndex(t *testing.T, got, want *RankIndex) {
	t.Helper()
	if got.numWords != want.numWords {
		t.Fatalf("numWords %d != %d", got.numWords, want.numWords)
	}
	for w := 0; w < want.numWords; w++ {
		gc, gs := got.Postings(int32(w))
		wc, ws := want.Postings(int32(w))
		if len(gc) != len(wc) {
			t.Fatalf("word %d: %d postings, want %d", w, len(gc), len(wc))
		}
		for i := range wc {
			if gc[i] != wc[i] {
				t.Fatalf("word %d entry %d: community %d, want %d", w, i, gc[i], wc[i])
			}
			if math.Float64bits(gs[i]) != math.Float64bits(ws[i]) {
				t.Fatalf("word %d entry %d: score bits %x, want %x", w, i,
					math.Float64bits(gs[i]), math.Float64bits(ws[i]))
			}
		}
	}
}

func requireSameUserIndex(t *testing.T, got, want *userIndex) {
	t.Helper()
	if got.shardCount != want.shardCount || got.topK != want.topK || got.users != want.users {
		t.Fatalf("shape (%d,%d,%d) != (%d,%d,%d)",
			got.shardCount, got.topK, got.users, want.shardCount, want.topK, want.users)
	}
	for sh := range want.shards {
		if got.shards[sh].users != want.shards[sh].users {
			t.Fatalf("shard %d users %d != %d", sh, got.shards[sh].users, want.shards[sh].users)
		}
		if !reflect.DeepEqual(got.shards[sh].comms, want.shards[sh].comms) {
			t.Fatalf("shard %d comms differ", sh)
		}
	}
	if len(got.memberLists) != len(want.memberLists) {
		t.Fatalf("memberLists len %d != %d", len(got.memberLists), len(want.memberLists))
	}
	for c := range want.memberLists {
		g, w := got.memberLists[c], want.memberLists[c]
		if len(g) != len(w) {
			t.Fatalf("community %d member count %d != %d: got %v want %v", c, len(g), len(w), g, w)
		}
		for i := range w {
			if g[i] != w[i] {
				t.Fatalf("community %d member %d: %d != %d", c, i, g[i], w[i])
			}
		}
	}
}

// TestPatchFromDifferential drives a chain of randomized deltas — user
// churn, user growth, vocabulary-touching φ-column changes, and mixes —
// through PatchFrom, asserting after every step that the patched
// snapshot's rank index and user index are bit-identical to from-scratch
// builds of the same model. The patched chain never rebuilds, so sharing
// bugs accumulate and surface.
func TestPatchFromDifferential(t *testing.T) {
	const (
		users, C, Z, V = 120, 12, 6, 400
		rounds         = 24
	)
	r := rand.New(rand.NewSource(42))
	m := SyntheticModel(users, C, Z, V, 99)
	opts := Options{UserShards: 4, PostingsPerWord: 8}.withDefaults()
	snap := newSnapshot(m, nil, DefaultSnapshot, 0, opts)
	for round := 0; round < rounds; round++ {
		var next *core.Model
		var delta Delta
		switch round % 4 {
		case 0: // membership churn on existing users
			next = clonePatchModel(m)
			for i := 0; i < 1+r.Intn(8); i++ {
				u := r.Intn(next.NumUsers)
				randomizePiRow(next.Pi.Row(u), r)
				delta.Users = append(delta.Users, int32(u))
			}
			next.Rehydrate()
		case 1: // user growth only (implicit delta)
			next = growPatchModel(m, 1+r.Intn(10), r)
		case 2: // vocabulary-touching delta: rescale φ columns
			next = clonePatchModel(m)
			for i := 0; i < 1+r.Intn(6); i++ {
				w := r.Intn(V)
				for z := 0; z < Z; z++ {
					next.Phi.Row(z)[w] *= 0.25 + r.Float64()
				}
				delta.Words = append(delta.Words, int32(w))
			}
			next.Rehydrate()
		default: // churn + growth + words at once, with duplicate ids
			next = growPatchModel(m, 1+r.Intn(5), r)
			for i := 0; i < 1+r.Intn(5); i++ {
				u := r.Intn(m.NumUsers)
				randomizePiRow(next.Pi.Row(u), r)
				delta.Users = append(delta.Users, int32(u), int32(u))
			}
			for i := 0; i < 1+r.Intn(3); i++ {
				w := r.Intn(V)
				for z := 0; z < Z; z++ {
					next.Phi.Row(z)[w] *= 0.25 + r.Float64()
				}
				delta.Words = append(delta.Words, int32(w))
			}
			next.Rehydrate()
		}
		patched := PatchFrom(snap, next, nil, delta)
		scratch := newSnapshot(next, nil, DefaultSnapshot, 0, opts)
		requireSameRankIndex(t, patched.index, scratch.index)
		requireSameUserIndex(t, patched.users, scratch.users)
		if !reflect.DeepEqual(patched.labels, scratch.labels) && len(delta.Words) > 0 {
			t.Fatalf("round %d: labels diverged after vocabulary delta", round)
		}
		snap.Release()
		scratch.Release()
		snap, m = patched, next
	}
	snap.Release()
}

// TestPatchFromSharing asserts the whole point of the patch path: with
// an empty delta every posting list, every shard buffer, and every
// member list is shared (aliased) with the predecessor, and a small
// delta shares all untouched words/shards.
func TestPatchFromSharing(t *testing.T) {
	m := SyntheticModel(64, 8, 4, 200, 7)
	opts := Options{UserShards: 4}.withDefaults()
	snap := newSnapshot(m, nil, DefaultSnapshot, 0, opts)
	defer snap.Release()

	same := func(a, b []int32) bool {
		return len(a) == len(b) && (len(a) == 0 || &a[0] == &b[0])
	}

	empty := PatchFrom(snap, m, nil, Delta{})
	defer empty.Release()
	for w := range snap.index.lists {
		if !same(empty.index.lists[w].comms, snap.index.lists[w].comms) {
			t.Fatalf("word %d list not shared under empty delta", w)
		}
	}
	for sh := range snap.users.shards {
		if !same(empty.users.shards[sh].comms, snap.users.shards[sh].comms) {
			t.Fatalf("shard %d not shared under empty delta", sh)
		}
	}

	// One dirty user (id 5, shard 1) and one dirty word (id 9).
	next := clonePatchModel(m)
	r := rand.New(rand.NewSource(3))
	randomizePiRow(next.Pi.Row(5), r)
	for z := 0; z < m.Cfg.NumTopics; z++ {
		next.Phi.Row(z)[9] *= 2
	}
	next.Rehydrate()
	patched := PatchFrom(snap, next, nil, Delta{Users: []int32{5}, Words: []int32{9}})
	defer patched.Release()
	for w := range snap.index.lists {
		shared := same(patched.index.lists[w].comms, snap.index.lists[w].comms)
		if w == 9 && shared && len(snap.index.lists[w].comms) > 0 {
			t.Fatalf("dirty word 9 still shares its predecessor's list")
		}
		if w != 9 && !shared {
			t.Fatalf("clean word %d was copied", w)
		}
	}
	for sh := range snap.users.shards {
		shared := same(patched.users.shards[sh].comms, snap.users.shards[sh].comms)
		if sh == 5%4 && shared {
			t.Fatalf("dirty shard %d still shares its buffer", sh)
		}
		if sh != 5%4 && !shared {
			t.Fatalf("clean shard %d was copied", sh)
		}
	}
}

// TestPatchFromFallbacks: deltas the patch path must refuse — Globals,
// user shrink, shape changes — still produce correct (fully rebuilt)
// snapshots.
func TestPatchFromFallbacks(t *testing.T) {
	m := SyntheticModel(50, 6, 4, 120, 11)
	opts := Options{UserShards: 2}.withDefaults()
	snap := newSnapshot(m, nil, DefaultSnapshot, 0, opts)
	defer snap.Release()

	r := rand.New(rand.NewSource(5))
	next := clonePatchModel(m)
	randomizePiRow(next.Pi.Row(3), r)
	next.Rehydrate()

	// Globals forces a full rebuild even with no listed users/words.
	full := PatchFrom(snap, next, nil, Delta{Globals: true})
	scratch := newSnapshot(next, nil, DefaultSnapshot, 0, opts)
	requireSameRankIndex(t, full.index, scratch.index)
	requireSameUserIndex(t, full.users, scratch.users)
	full.Release()
	scratch.Release()

	// Out-of-range ids in the delta are ignored, not fatal.
	ok := PatchFrom(snap, next, nil, Delta{Users: []int32{-1, 3, 9999}, Words: []int32{-2, 100000}})
	scratch = newSnapshot(next, nil, DefaultSnapshot, 0, opts)
	requireSameRankIndex(t, ok.index, scratch.index)
	requireSameUserIndex(t, ok.users, scratch.users)
	ok.Release()
	scratch.Release()
}

// TestSwapPatchedMatchesSwapNamed drives the engine-level API: a chain
// of SwapPatched publishes must serve results deep-equal to an engine
// fully rebuilt at each step (modulo the version counter).
func TestSwapPatchedMatchesSwapNamed(t *testing.T) {
	const users, C, Z, V = 80, 10, 5, 300
	m := SyntheticModel(users, C, Z, V, 21)
	inc := New(m, nil, Options{UserShards: 4})
	defer inc.Close()
	ref := New(m, nil, Options{UserShards: 4})
	defer ref.Close()

	r := rand.New(rand.NewSource(77))
	for round := 0; round < 6; round++ {
		next := growPatchModel(m, 1+r.Intn(4), r)
		var dirty []int32
		for i := 0; i < 3; i++ {
			u := r.Intn(m.NumUsers)
			randomizePiRow(next.Pi.Row(u), r)
			dirty = append(dirty, int32(u))
		}
		next.Rehydrate()
		inc.SwapPatched(DefaultSnapshot, next, nil, Delta{Users: dirty})
		ref.SwapNamed(DefaultSnapshot, next, nil)
		m = next

		for u := 0; u < next.NumUsers; u += 7 {
			a, err := inc.Membership(u, 5)
			if err != nil {
				t.Fatal(err)
			}
			b, err := ref.Membership(u, 5)
			if err != nil {
				t.Fatal(err)
			}
			a.Version, b.Version = 0, 0
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("round %d: membership(%d) diverged:\n%+v\n%+v", round, u, a, b)
			}
		}
		for q := 0; q < V; q += 17 {
			a, err := inc.Rank([]int32{int32(q), int32((q * 3) % V)}, 5)
			if err != nil {
				t.Fatal(err)
			}
			b, err := ref.Rank([]int32{int32(q), int32((q * 3) % V)}, 5)
			if err != nil {
				t.Fatal(err)
			}
			a.Version, b.Version = 0, 0
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("round %d: rank(%d) diverged:\n%+v\n%+v", round, q, a, b)
			}
		}
		ac := inc.Communities()
		bc := ref.Communities()
		if !reflect.DeepEqual(ac, bc) {
			t.Fatalf("round %d: communities diverged", round)
		}
	}
}
