package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/quality"
)

// TestQualityEndpoint covers both /api/quality paths: the fallback one-off
// report for a slot with no recorded history, and the recorded
// history + PLP baseline a streaming publisher would have left behind.
func TestQualityEndpoint(t *testing.T) {
	m := SyntheticModel(20, 6, 4, 80, 11)
	e := testEngine(t, m, nil, Options{})
	h := APIHandler(e, nil)

	// No history recorded: the endpoint must still describe the live
	// snapshot via a one-off membership-shape report.
	rec := apiGet(t, h, "/api/quality")
	if rec.Code != http.StatusOK {
		t.Fatalf("quality fallback: %d: %s", rec.Code, rec.Body.String())
	}
	var p QualityPayload
	if err := json.Unmarshal(rec.Body.Bytes(), &p); err != nil {
		t.Fatal(err)
	}
	if p.Snapshot != DefaultSnapshot || len(p.History) != 1 || p.Baseline != nil {
		t.Fatalf("fallback payload: %+v", p)
	}
	if p.History[0].Users != 20 || p.History[0].Algo != "cpd" {
		t.Fatalf("fallback report does not describe the served model: %+v", p.History[0])
	}

	// Recorded history and baseline serve as-is, oldest first.
	for gen := 1; gen <= 3; gen++ {
		r := quality.FromModel(m, nil, nil)
		r.Generation = uint64(gen)
		e.RecordQuality(DefaultSnapshot, r)
	}
	base := quality.FromModel(m, nil, nil)
	base.Algo = "plp"
	e.RecordQualityBaseline(DefaultSnapshot, base)

	rec = apiGet(t, h, "/api/quality")
	if rec.Code != http.StatusOK {
		t.Fatalf("quality history: %d", rec.Code)
	}
	p = QualityPayload{}
	if err := json.Unmarshal(rec.Body.Bytes(), &p); err != nil {
		t.Fatal(err)
	}
	if len(p.History) != 3 || p.History[0].Generation != 1 || p.History[2].Generation != 3 {
		t.Fatalf("history not served oldest-first: %+v", p.History)
	}
	if p.Baseline == nil || p.Baseline.Algo != "plp" {
		t.Fatalf("baseline row missing: %+v", p.Baseline)
	}

	// The ?snapshot= route addresses slots by name; unknown slots error.
	if rec := apiGet(t, h, "/api/quality?snapshot="+DefaultSnapshot); rec.Code != http.StatusOK {
		t.Fatalf("named quality: %d", rec.Code)
	}
	if rec := apiGet(t, h, "/api/quality?snapshot=nope"); rec.Code == http.StatusOK {
		t.Fatal("unknown snapshot served a quality payload")
	}

	// /api/stats folds the newest report in as the quality summary, and
	// the quality endpoint's own latency shows up under its counter.
	rec = apiGet(t, h, "/api/stats")
	if rec.Code != http.StatusOK {
		t.Fatalf("stats: %d", rec.Code)
	}
	var sr StatsReport
	if err := json.Unmarshal(rec.Body.Bytes(), &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Quality == nil || sr.Quality[DefaultSnapshot] == nil || sr.Quality[DefaultSnapshot].Generation != 3 {
		t.Fatalf("stats quality summary is not the newest report: %+v", sr.Quality)
	}
	q := sr.Endpoints["quality"]
	if q.Count < 3 || q.Errors == 0 {
		t.Fatalf("quality endpoint counter did not accumulate: %+v", q)
	}
	if q.P50Micros > q.P95Micros || q.P95Micros > q.P99Micros {
		t.Fatalf("quality latency percentiles not monotone: %+v", q)
	}
}

// sampleLine matches one Prometheus text-exposition sample:
// name{labels} value.
var sampleLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (-?[0-9]*\.?[0-9]+([eE][+-]?[0-9]+)?|[+-]?Inf|NaN)$`)

// checkPromText validates Prometheus text-exposition output: every sample
// parses, belongs to a family declared with # TYPE, histogram buckets are
// cumulative with the +Inf bucket equal to the series count.
func checkPromText(t *testing.T, body string) {
	t.Helper()
	types := map[string]string{} // family -> type
	type histSeries struct {
		last    float64 // running cumulative check
		inf     float64
		sawInf  bool
		count   float64
		hasCnt  bool
		samples int
	}
	hists := map[string]*histSeries{} // family+labels (le stripped) -> state

	family := func(name string) string {
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suffix)
			if base != name && types[base] == "histogram" {
				return base
			}
		}
		return name
	}
	stripLE := func(labels string) (rest string, le string) {
		if labels == "" {
			return "", ""
		}
		inner := strings.TrimSuffix(strings.TrimPrefix(labels, "{"), "}")
		var kept []string
		for _, part := range strings.Split(inner, ",") {
			if v, ok := strings.CutPrefix(part, `le="`); ok {
				le = strings.TrimSuffix(v, `"`)
				continue
			}
			kept = append(kept, part)
		}
		return strings.Join(kept, ","), le
	}

	for i, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if line == "" {
			t.Fatalf("line %d: empty line inside the exposition", i+1)
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("line %d: malformed TYPE: %q", i+1, line)
			}
			if _, dup := types[parts[2]]; dup {
				t.Fatalf("line %d: family %s declared twice", i+1, parts[2])
			}
			types[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		mm := sampleLine.FindStringSubmatch(line)
		if mm == nil {
			t.Fatalf("line %d: not a valid sample: %q", i+1, line)
		}
		name, labels, valStr := mm[1], mm[2], mm[3]
		fam := family(name)
		if _, ok := types[fam]; !ok {
			t.Fatalf("line %d: sample %s has no # TYPE declaration", i+1, name)
		}
		if types[fam] != "histogram" {
			continue
		}
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("line %d: %v", i+1, err)
		}
		rest, le := stripLE(labels)
		key := fam + "|" + rest
		hs := hists[key]
		if hs == nil {
			hs = &histSeries{}
			hists[key] = hs
		}
		switch {
		case strings.HasSuffix(name, "_bucket"):
			hs.samples++
			if val < hs.last {
				t.Fatalf("line %d: histogram %s buckets not cumulative (%g after %g)", i+1, key, val, hs.last)
			}
			hs.last = val
			if le == "+Inf" {
				hs.inf, hs.sawInf = val, true
			}
		case strings.HasSuffix(name, "_count"):
			hs.count, hs.hasCnt = val, true
		}
	}
	if len(types) == 0 {
		t.Fatal("exposition declared no metric families")
	}
	for key, hs := range hists {
		if hs.samples == 0 {
			continue
		}
		if !hs.sawInf || !hs.hasCnt {
			t.Fatalf("histogram %s lacks a +Inf bucket or _count", key)
		}
		if hs.inf != hs.count {
			t.Fatalf("histogram %s: +Inf bucket %g != count %g", key, hs.inf, hs.count)
		}
	}
}

// TestMetricsEndpoint drives traffic through the API, then validates the
// /metrics exposition — format, families, histogram invariants — and spot
// checks the families the dashboard alerts on.
func TestMetricsEndpoint(t *testing.T) {
	m := SyntheticModel(20, 6, 4, 80, 11)
	e := testEngine(t, m, nil, Options{})
	h := APIHandler(e, nil)

	for _, path := range []string{"/api/communities", "/api/user?id=3&k=2", "/api/rank?w=1&k=3", "/api/quality", "/api/stats"} {
		if rec := apiGet(t, h, path); rec.Code != http.StatusOK {
			t.Fatalf("%s: %d", path, rec.Code)
		}
	}
	r := quality.FromModel(m, nil, nil)
	r.Generation = 7
	e.RecordQuality(DefaultSnapshot, r)

	rec := apiGet(t, h, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics: %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("metrics content type %q", ct)
	}
	body := rec.Body.String()
	checkPromText(t, body)

	for _, want := range []string{
		`cpd_endpoint_requests_total{endpoint="rank"} 1`,
		`cpd_endpoint_requests_total{endpoint="membership"} 1`,
		"cpd_endpoint_latency_seconds_bucket",
		"cpd_process_rss_bytes",
		`cpd_snapshot_users{snapshot="default"} 20`,
		`cpd_quality_generation{snapshot="default",algo="cpd"} 7`,
		"cpd_quality_modularity",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics output lacks %q", want)
		}
	}

	// A registered collector's families ride along (the cpd-serve pattern
	// for the stream updater's ingest counters) and the exposition stays
	// valid with them appended.
	e.AddMetricsCollector(func(w io.Writer) {
		fmt.Fprint(w, "# HELP cpd_test_collector_gauge A collector-contributed family.\n# TYPE cpd_test_collector_gauge gauge\ncpd_test_collector_gauge 1\n")
	})
	rec = apiGet(t, h, "/metrics")
	body = rec.Body.String()
	if !strings.Contains(body, "cpd_test_collector_gauge 1") {
		t.Error("registered collector's family missing from /metrics")
	}
	checkPromText(t, body)
}
