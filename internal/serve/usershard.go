package serve

import (
	"sync"

	"repro/internal/core"
)

// userIndex is the per-snapshot sharded user index: users partition by id
// modulo the shard count, and each shard stores its users' top-K
// community memberships in one flat buffer. Sharding buys two things:
// the index builds shard-parallel (snapshot construction is on the
// hot-swap path), and user-scoped state stays partitioned — a layout the
// fold-in registry and per-shard eviction can grow into without a global
// lock or a resize of one giant array.
//
// Membership queries for k <= topK read the precomputed entries; the
// prefix of a top-K list is exactly the top-k list (mathx.TopKIndices is
// a deterministic partial selection sort), so served results are
// bit-identical to the model scan. Community member lists are derived
// from the same entries in ascending user order, preserving the ordering
// contract of core.Model.CommunityMembers.
type userIndex struct {
	shardCount int
	topK       int // entries actually stored per user: min(MemberTopK, |C|)
	shards     []userShard

	memberLists [][]int // community -> member users, ascending
}

type userShard struct {
	users int     // users in this shard
	comms []int32 // [slot*topK + j] = j-th top community of the slot's user
}

// buildUserIndex precomputes every user's top memberships, one goroutine
// per shard.
func buildUserIndex(m *core.Model, shardCount, topK int) *userIndex {
	if shardCount < 1 {
		shardCount = 1
	}
	C := m.Cfg.NumCommunities
	if topK > C {
		topK = C
	}
	ix := &userIndex{
		shardCount: shardCount,
		topK:       topK,
		shards:     make([]userShard, shardCount),
	}
	var wg sync.WaitGroup
	for sh := 0; sh < shardCount; sh++ {
		wg.Add(1)
		go func(sh int) {
			defer wg.Done()
			n := (m.NumUsers - sh + shardCount - 1) / shardCount
			shard := &ix.shards[sh]
			shard.users = n
			shard.comms = make([]int32, n*topK)
			for slot := 0; slot < n; slot++ {
				u := sh + slot*shardCount
				for j, c := range m.TopCommunities(u, topK) {
					shard.comms[slot*topK+j] = int32(c)
				}
			}
		}(sh)
	}
	wg.Wait()

	ix.memberLists = make([][]int, C)
	for u := 0; u < m.NumUsers; u++ {
		for _, c := range ix.userTop(u) {
			ix.memberLists[c] = append(ix.memberLists[c], u)
		}
	}
	return ix
}

// userTop returns user u's stored top communities (a view into the
// shard's flat buffer).
func (ix *userIndex) userTop(u int) []int32 {
	shard := &ix.shards[u%ix.shardCount]
	slot := u / ix.shardCount
	return shard.comms[slot*ix.topK : (slot+1)*ix.topK]
}

// top returns user u's top-k communities when k is within the precomputed
// depth (ok=false sends the caller to the model scan).
func (ix *userIndex) top(u, k int) ([]int32, bool) {
	if k > ix.topK {
		return nil, false
	}
	return ix.userTop(u)[:k], true
}

// members returns community c's member list (users having c among their
// top-K memberships, ascending user id).
func (ix *userIndex) members(c int) []int { return ix.memberLists[c] }

// memberCount returns community c's member-list length.
func (ix *userIndex) memberCount(c int) int { return len(ix.memberLists[c]) }

// bytes estimates the index's heap footprint.
func (ix *userIndex) bytes() int64 {
	var n int64
	for i := range ix.shards {
		n += 4 * int64(len(ix.shards[i].comms))
	}
	for _, l := range ix.memberLists {
		n += 8 * int64(len(l))
	}
	return n
}
