package serve

import (
	"sync"

	"repro/internal/core"
)

// userIndex is the per-snapshot sharded user index: users partition by id
// modulo the shard count, and each shard stores its users' top-K
// community memberships in one flat buffer. Sharding buys two things:
// the index builds shard-parallel (snapshot construction is on the
// hot-swap path), and user-scoped state stays partitioned — a layout the
// fold-in registry and per-shard eviction can grow into without a global
// lock or a resize of one giant array.
//
// Membership queries for k <= topK read the precomputed entries; the
// prefix of a top-K list is exactly the top-k list (mathx.TopKIndices is
// a deterministic partial selection sort), so served results are
// bit-identical to the model scan. Community member lists are derived
// from the same entries in ascending user order, preserving the ordering
// contract of core.Model.CommunityMembers.
//
// Shard buffers and member lists are immutable once built, so a derived
// index can share them with its predecessor: patchUserIndex copies only
// shards holding changed or appended users and only the member lists
// those users actually moved in or out of.
type userIndex struct {
	shardCount int
	topK       int // entries actually stored per user: min(MemberTopK, |C|)
	users      int // total users indexed
	shards     []userShard

	memberLists [][]int // community -> member users, ascending
}

type userShard struct {
	users int     // users in this shard
	comms []int32 // [slot*topK + j] = j-th top community of the slot's user
}

// buildUserIndex precomputes every user's top memberships, one goroutine
// per shard.
func buildUserIndex(m *core.Model, shardCount, topK int) *userIndex {
	if shardCount < 1 {
		shardCount = 1
	}
	C := m.Cfg.NumCommunities
	if topK > C {
		topK = C
	}
	ix := &userIndex{
		shardCount: shardCount,
		topK:       topK,
		users:      m.NumUsers,
		shards:     make([]userShard, shardCount),
	}
	var wg sync.WaitGroup
	for sh := 0; sh < shardCount; sh++ {
		wg.Add(1)
		go func(sh int) {
			defer wg.Done()
			n := (m.NumUsers - sh + shardCount - 1) / shardCount
			shard := &ix.shards[sh]
			shard.users = n
			shard.comms = make([]int32, n*topK)
			for slot := 0; slot < n; slot++ {
				u := sh + slot*shardCount
				for j, c := range m.TopCommunities(u, topK) {
					shard.comms[slot*topK+j] = int32(c)
				}
			}
		}(sh)
	}
	wg.Wait()

	ix.memberLists = make([][]int, C)
	for u := 0; u < m.NumUsers; u++ {
		for _, c := range ix.userTop(u) {
			ix.memberLists[c] = append(ix.memberLists[c], u)
		}
	}
	return ix
}

// patchUserIndex derives model m's user index from prev. Shards holding
// no changed or appended users share their predecessor's flat buffer;
// the rest copy it and recompute only the changed slots (plus appended
// slots). Member lists are copy-on-write per community: each changed
// user's old and new top-K are diffed into remove/add edit sets, and
// only communities with a non-empty edit set rebuild their list.
//
// dirty must be ascending, duplicate-free, and < prev.users (PatchFrom
// normalizes it); users with ids in [prev.users, m.NumUsers) are
// implicitly new. prev must have the same shard count, topK, and
// community count and at most m.NumUsers users — callers fall back to
// buildUserIndex otherwise. The result is bit-identical to
// buildUserIndex(m, ...) provided dirty covers every user whose Pi row
// changed.
func patchUserIndex(prev *userIndex, m *core.Model, dirty []int32) *userIndex {
	shardCount, topK := prev.shardCount, prev.topK
	newN := m.NumUsers
	ix := &userIndex{
		shardCount: shardCount,
		topK:       topK,
		users:      newN,
		shards:     make([]userShard, shardCount),
	}
	perShard := make([][]int32, shardCount)
	for _, u := range dirty {
		sh := int(u) % shardCount
		perShard[sh] = append(perShard[sh], u)
	}
	var wg sync.WaitGroup
	for sh := 0; sh < shardCount; sh++ {
		oldCount := prev.shards[sh].users
		newCount := (newN - sh + shardCount - 1) / shardCount
		if newCount == oldCount && len(perShard[sh]) == 0 {
			ix.shards[sh] = prev.shards[sh] // immutable: safe to share
			continue
		}
		wg.Add(1)
		go func(sh, oldCount, newCount int) {
			defer wg.Done()
			shard := &ix.shards[sh]
			shard.users = newCount
			shard.comms = make([]int32, newCount*topK)
			copy(shard.comms, prev.shards[sh].comms)
			for _, u := range perShard[sh] {
				slot := int(u) / shardCount
				for j, c := range m.TopCommunities(int(u), topK) {
					shard.comms[slot*topK+j] = int32(c)
				}
			}
			for slot := oldCount; slot < newCount; slot++ {
				u := sh + slot*shardCount
				for j, c := range m.TopCommunities(u, topK) {
					shard.comms[slot*topK+j] = int32(c)
				}
			}
		}(sh, oldCount, newCount)
	}
	wg.Wait()

	// Member-list edit sets stay ascending per community because explicit
	// dirty users (ascending, < prev.users) precede appended users
	// (ascending, >= prev.users).
	C := len(prev.memberLists)
	removes := make([][]int, C)
	adds := make([][]int, C)
	for _, u32 := range dirty {
		u := int(u32)
		oldTop, newTop := prev.userTop(u), ix.userTop(u)
		for _, c := range oldTop {
			if !topContains(newTop, c) {
				removes[c] = append(removes[c], u)
			}
		}
		for _, c := range newTop {
			if !topContains(oldTop, c) {
				adds[c] = append(adds[c], u)
			}
		}
	}
	for u := prev.users; u < newN; u++ {
		for _, c := range ix.userTop(u) {
			adds[c] = append(adds[c], u)
		}
	}
	ix.memberLists = make([][]int, C)
	copy(ix.memberLists, prev.memberLists)
	for c := 0; c < C; c++ {
		if len(removes[c]) == 0 && len(adds[c]) == 0 {
			continue
		}
		ix.memberLists[c] = applyMemberEdits(prev.memberLists[c], removes[c], adds[c])
	}
	return ix
}

func topContains(top []int32, c int32) bool {
	for _, x := range top {
		if x == c {
			return true
		}
	}
	return false
}

// applyMemberEdits rebuilds one community's member list from its
// predecessor plus ascending remove/add user sets. The sets are disjoint
// from each other, removes ⊆ list, and adds ∩ list = ∅ (a user whose
// membership persists appears in neither).
func applyMemberEdits(list, removes, adds []int) []int {
	out := make([]int, 0, len(list)-len(removes)+len(adds))
	ri, ai := 0, 0
	for _, u := range list {
		for ai < len(adds) && adds[ai] < u {
			out = append(out, adds[ai])
			ai++
		}
		if ri < len(removes) && removes[ri] == u {
			ri++
			continue
		}
		out = append(out, u)
	}
	out = append(out, adds[ai:]...)
	return out
}

// userTop returns user u's stored top communities (a view into the
// shard's flat buffer).
func (ix *userIndex) userTop(u int) []int32 {
	shard := &ix.shards[u%ix.shardCount]
	slot := u / ix.shardCount
	return shard.comms[slot*ix.topK : (slot+1)*ix.topK]
}

// top returns user u's top-k communities when k is within the precomputed
// depth (ok=false sends the caller to the model scan).
func (ix *userIndex) top(u, k int) ([]int32, bool) {
	if k > ix.topK {
		return nil, false
	}
	return ix.userTop(u)[:k], true
}

// members returns community c's member list (users having c among their
// top-K memberships, ascending user id).
func (ix *userIndex) members(c int) []int { return ix.memberLists[c] }

// memberCount returns community c's member-list length.
func (ix *userIndex) memberCount(c int) int { return len(ix.memberLists[c]) }

// bytes estimates the index's heap footprint. Buffers shared with other
// snapshots are counted in each — a working-set estimate, not exclusive
// ownership.
func (ix *userIndex) bytes() int64 {
	var n int64
	for i := range ix.shards {
		n += 4 * int64(len(ix.shards[i].comms))
	}
	for _, l := range ix.memberLists {
		n += 8 * int64(len(l))
	}
	return n
}
