package serve

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/mathx"
	"repro/internal/rng"
)

// FoldInRequest describes a user the model was never trained on: their
// documents (bags of vocabulary word ids) and, optionally, the trained
// users they hold friendship links to. Fold-in runs a short seeded Gibbs
// pass over ONLY this user's latent assignments against the frozen model
// parameters — the standard way to serve unseen users without retraining.
type FoldInRequest struct {
	// Docs must be non-empty: document assignments are the only latent
	// tokens a CPD membership is built from, so a doc-less request has
	// nothing to infer and is rejected (friendship links alone cannot
	// move the membership off the prior).
	Docs    [][]int32 `json:"docs"`
	Friends []int32   `json:"friends,omitempty"`
	// FriendRows carries membership rows for friends the serving snapshot
	// does not own (shard snapshots): a shard-aware router hydrates them
	// from the owning replicas before forwarding. A friend with no local
	// row and no supplied row fails with ErrNotOwned. Rows for owned
	// friends are ignored in favor of the local (identical) row, so the
	// result is bit-identical to a full node for the same request.
	FriendRows []FriendRow `json:"friendRows,omitempty"`
	// Seed drives the request's private RNG; the result is a pure function
	// of (snapshot, request), so a fixed seed reproduces bit-identically
	// regardless of pool size or concurrent load.
	Seed uint64 `json:"seed"`
	// Sweeps is the number of Gibbs sweeps (default 20, at most
	// MaxFoldInSweeps).
	Sweeps int `json:"sweeps,omitempty"`
	// TopK bounds the returned membership list (default 5).
	TopK int `json:"topK,omitempty"`
}

// Request size limits. Fold-in is exposed on the serving API, so a single
// request must not be able to pin a worker for an unbounded time; requests
// beyond these bounds are rejected with an error.
const (
	MaxFoldInSweeps  = 500
	MaxFoldInTokens  = 1 << 20 // total words across a request's documents
	MaxFoldInFriends = 1 << 16
)

// FriendRow is one hydrated friend membership row (see
// FoldInRequest.FriendRows).
type FriendRow struct {
	User int32     `json:"user"`
	Row  []float64 `json:"row"`
}

// FoldInResult is the inferred profile of a folded-in user.
type FoldInResult struct {
	Version uint64 `json:"version"`
	// Pi is the full |C| community membership (Definition 3) of the new
	// user.
	Pi []float64 `json:"pi"`
	// Top lists the TopK highest memberships, descending.
	Top []CommunityWeight `json:"top"`
	// TopicMixture is Σ_c π_c θ_c — the user's content profile mixture.
	TopicMixture []float64 `json:"topicMixture"`
	// DocCommunity / DocTopic are the final hard assignments per document.
	DocCommunity []int32 `json:"docCommunity"`
	DocTopic     []int32 `json:"docTopic"`
}

// FoldIn infers the profile of one unseen user against the current
// default snapshot. It is deterministic for a fixed request seed.
func (e *Engine) FoldIn(req *FoldInRequest) (*FoldInResult, error) {
	return e.FoldInNamed(DefaultSnapshot, req)
}

// FoldInNamed is FoldIn against a named snapshot.
func (e *Engine) FoldInNamed(name string, req *FoldInRequest) (res *FoldInResult, err error) {
	start := time.Now()
	defer func() { e.lat[epFoldIn].Observe(time.Since(start), err) }()
	s, release, err := e.AcquireNamed(name)
	if err != nil {
		return nil, err
	}
	defer release()
	return foldIn(s, req)
}

// foldJob carries one batch entry to the persistent worker pool.
type foldJob struct {
	snap *Snapshot
	req  *FoldInRequest
	idx  int
	out  []*FoldInResult
	errs []error
	wg   *sync.WaitGroup
}

func (e *Engine) foldWorker() {
	for job := range e.foldJobs {
		start := time.Now()
		res, err := foldIn(job.snap, job.req)
		// Per-request accounting, so the foldin stats (count, errors,
		// latency) mean the same thing for batch and single requests.
		e.lat[epFoldIn].Observe(time.Since(start), err)
		job.out[job.idx], job.errs[job.idx] = res, err
		job.wg.Done()
	}
}

// FoldInBatch folds in many users concurrently through the engine's
// persistent worker pool, against the default snapshot.
func (e *Engine) FoldInBatch(reqs []*FoldInRequest) ([]*FoldInResult, []error) {
	return e.FoldInBatchNamed(DefaultSnapshot, reqs)
}

// FoldInBatchNamed folds in many users concurrently through the engine's
// persistent worker pool. All requests in a batch resolve against the same
// snapshot (pinned once for the whole batch, so a concurrent swap cannot
// unmap it mid-run), and results are in request order. Each entry carries
// its own error and is counted individually in the foldin latency stats;
// results are bit-identical for every FoldInWorkers value.
func (e *Engine) FoldInBatchNamed(name string, reqs []*FoldInRequest) ([]*FoldInResult, []error) {
	out := make([]*FoldInResult, len(reqs))
	errs := make([]error, len(reqs))
	snap, release, err := e.AcquireNamed(name)
	if err != nil {
		for i := range errs {
			errs[i] = err
		}
		return out, errs
	}
	defer release()
	var wg sync.WaitGroup
	wg.Add(len(reqs))
	for i, req := range reqs {
		e.foldJobs <- foldJob{snap: snap, req: req, idx: i, out: out, errs: errs, wg: &wg}
	}
	wg.Wait()
	return out, errs
}

// foldIn is the pure inference kernel: Gibbs over the new user's document
// assignments (c_i, z_i) with every global (Φ, Θ, π of trained users, ρ)
// frozen.
//
// Per sweep and document it resamples
//
//	z_i | c_i        ∝ θ_{c_i,z} · Π_w φ_{z,w}            (Eq. 13's frozen form)
//	c_i | z_i, c_¬i  ∝ (n^c_¬i + ρ) · θ_{c,z_i} · Π_{v∈friends} σ(s·π̂_u^T π_v)
//
// where π̂_u is the candidate-dependent smoothed membership — the same
// structure as core's sampleDocCommunity, with the Pólya-Gamma kernels
// replaced by the exact sigmoid likelihood (fold-in conditions on observed
// links only and needs no augmentation variables, since the globals are
// fixed).
func foldIn(s *Snapshot, req *FoldInRequest) (*FoldInResult, error) {
	m := s.Model
	C, Z := m.Cfg.NumCommunities, m.Cfg.NumTopics
	if len(req.Docs) == 0 {
		return nil, fmt.Errorf("serve: fold-in requires at least one document")
	}
	if len(req.Friends) > MaxFoldInFriends {
		return nil, fmt.Errorf("serve: fold-in request has %d friends (limit %d)", len(req.Friends), MaxFoldInFriends)
	}
	tokens := 0
	for i, doc := range req.Docs {
		if len(doc) == 0 {
			return nil, fmt.Errorf("serve: fold-in document %d is empty", i)
		}
		tokens += len(doc)
		for _, w := range doc {
			if w < 0 || int(w) >= m.NumWords {
				return nil, fmt.Errorf("serve: fold-in document %d has out-of-range word %d", i, w)
			}
		}
	}
	if tokens > MaxFoldInTokens {
		return nil, fmt.Errorf("serve: fold-in request has %d words (limit %d)", tokens, MaxFoldInTokens)
	}
	// Friend rows resolve locally for owned users and from the hydrated
	// FriendRows otherwise; the build happens in Friends order, so the
	// Gibbs pass visits rows exactly as a full node would.
	hydrated := make(map[int32][]float64, len(req.FriendRows))
	for _, fr := range req.FriendRows {
		if len(fr.Row) != C {
			return nil, fmt.Errorf("serve: hydrated row for friend %d has %d entries, model has %d communities", fr.User, len(fr.Row), C)
		}
		hydrated[fr.User] = fr.Row
	}
	friendPi := make([][]float64, len(req.Friends))
	for k, v := range req.Friends {
		local, err := s.localUser(int(v))
		switch {
		case err == nil:
			friendPi[k] = m.Pi.Row(local)
		case hydrated[v] != nil:
			var notOwned *ErrNotOwned
			if !errors.As(err, &notOwned) {
				return nil, err // out of range: a hydrated row cannot fix a bad id
			}
			friendPi[k] = hydrated[v]
		default:
			return nil, err
		}
	}
	sweeps := req.Sweeps
	if sweeps <= 0 {
		sweeps = 20
	}
	if sweeps > MaxFoldInSweeps {
		return nil, fmt.Errorf("serve: fold-in requests %d sweeps (limit %d)", sweeps, MaxFoldInSweeps)
	}
	topK := req.TopK
	if topK <= 0 {
		topK = 5
	}

	rho := m.Cfg.Rho
	n := len(req.Docs)
	den := float64(n) + float64(C)*rho
	cnt := make([]float64, C)
	docC := make([]int32, n)
	docZ := make([]int32, n)

	r := rng.New(req.Seed)

	// Per-document word log-likelihood table wordLL[i][z] = Σ_w log φ_z,w,
	// computed once: the only per-sweep z-dependence left is θ_{c,z}.
	wordLL := make([][]float64, n)
	for i, doc := range req.Docs {
		ll := make([]float64, Z)
		for z := 0; z < Z; z++ {
			phi := m.Phi.Row(z)
			var lw float64
			for _, w := range doc {
				lw += math.Log(phi[w] + 1e-300)
			}
			ll[z] = lw
		}
		wordLL[i] = ll
	}

	// Seeded random init, counted.
	for i := range docC {
		docC[i] = int32(r.Intn(C))
		docZ[i] = int32(r.Intn(Z))
		cnt[docC[i]]++
	}

	dim := Z
	if C > dim {
		dim = C
	}
	logw := make([]float64, dim)
	fs := m.Cfg.FriendScale
	for sweep := 0; sweep < sweeps; sweep++ {
		for i := 0; i < n; i++ {
			// z_i | c_i.
			c := int(docC[i])
			lw := logw[:Z]
			theta := m.Theta.Row(c)
			for z := 0; z < Z; z++ {
				lw[z] = math.Log(theta[z]+1e-300) + wordLL[i][z]
			}
			z := r.CategoricalLog(lw)
			docZ[i] = int32(z)

			// c_i | z_i, c_¬i.
			cnt[c]--
			lw = logw[:C]
			for cc := 0; cc < C; cc++ {
				lw[cc] = math.Log(cnt[cc]+rho) + math.Log(m.Theta.At(cc, z)+1e-300)
			}
			for _, piV := range friendPi {
				// π̂_u(c') = (cnt_¬i[c'] + ρ + [c'==c]) / den; the
				// candidate-independent part of π̂_u^T π_v is shared.
				var s0 float64
				for cc := 0; cc < C; cc++ {
					s0 += (cnt[cc] + rho) * piV[cc]
				}
				s0 /= den
				for cc := 0; cc < C; cc++ {
					lw[cc] += mathx.LogSigmoid(fs * (s0 + piV[cc]/den))
				}
			}
			cNew := r.CategoricalLog(lw)
			docC[i] = int32(cNew)
			cnt[cNew]++
		}
	}

	res := &FoldInResult{
		Version:      s.Version,
		Pi:           make([]float64, C),
		TopicMixture: make([]float64, Z),
		DocCommunity: docC,
		DocTopic:     docZ,
	}
	for c := 0; c < C; c++ {
		res.Pi[c] = (cnt[c] + rho) / den
	}
	for c := 0; c < C; c++ {
		pc := res.Pi[c]
		if pc == 0 {
			continue
		}
		theta := m.Theta.Row(c)
		for z := 0; z < Z; z++ {
			res.TopicMixture[z] += pc * theta[z]
		}
	}
	for _, c := range mathx.TopKIndices(res.Pi, topK) {
		res.Top = append(res.Top, CommunityWeight{Community: c, Weight: res.Pi[c]})
	}
	return res, nil
}
