package synth

import (
	"fmt"

	"repro/internal/corpus"
)

// themes name the vocabulary's topic blocks so that qualitative artifacts
// (Table 5's topic-word lists, Table 6's community labels, Fig. 7's node
// labels) read like the paper's CS-flavoured examples instead of raw word
// ids.
var themes = []string{
	"network", "wireless", "databas", "learn", "secur", "mobil", "social",
	"circuit", "code", "graph", "queri", "cloud", "video", "robot",
	"energi", "vision", "speech", "crypto", "sensor", "logic", "kernel",
	"market", "health", "agent", "stream", "parallel", "compil", "storag",
	"search", "neural",
}

// BuildVocabulary names cfg.VocabSize words to match the planted topic
// blocks of plantTopics: word w in block b gets the b-th theme as a prefix,
// so topic z's top words share the theme of block z and qualitative tables
// are human-readable. Names are unique by construction.
func BuildVocabulary(cfg Config) *corpus.Vocabulary {
	v := corpus.NewVocabulary()
	block := cfg.VocabSize / cfg.Topics
	if block < 1 {
		block = 1
	}
	for w := 0; w < cfg.VocabSize; w++ {
		b := w / block
		base := themes[b%len(themes)]
		if rep := b / len(themes); rep > 0 {
			base = fmt.Sprintf("%s%d", base, rep)
		}
		v.Add(fmt.Sprintf("%s_%02d", base, w%block))
	}
	return v
}
