// Package synth generates synthetic social graphs from a planted CPD
// generative process. It is the substitution (README.md design notes) for the paper’s
// proprietary Twitter and DBLP crawls: every statistical coupling the
// evaluation section measures — community-assortative friendship,
// community-specific content, topic-aware community-to-community diffusion,
// topic-popularity bursts and individual-preference effects — is planted
// explicitly, with the ground-truth parameters returned for
// parameter-recovery tests.
package synth

import (
	"math"

	"repro/internal/rng"
	"repro/internal/socialgraph"
	"repro/internal/sparse"
)

// Config controls the planted generative process.
type Config struct {
	Name string
	Seed uint64

	Users       int
	Communities int // ground-truth |C*|
	Topics      int // ground-truth |Z*|
	VocabSize   int

	DocsPerUserMean float64
	WordsPerDocMean float64 // >= 2 enforced

	// Expected per-user friendship out-degree, split into links inside the
	// user's home community vs anywhere.
	FriendIntraDeg float64
	FriendInterDeg float64
	// Symmetric stores each friendship link in both directions (DBLP
	// co-authorship).
	Symmetric bool

	// DiffLinks is the number of diffusion events to generate; each one
	// creates the diffusing document (a retweet or a citing paper) and
	// CitesPerDoc diffusion links from it.
	DiffLinks int
	// CitesPerDoc is the number of source documents each diffusing
	// document links to: 1 for a retweet, several for a citing paper's
	// reference list (this is what makes DBLP's |E| exceed |F| in Table 3).
	CitesPerDoc int
	// CopyWords makes the diffusing document copy the source document's
	// words (a retweet is near-identical content); otherwise the diffusing
	// document draws fresh words from the same topic (a citing paper).
	CopyWords bool
	// NoiseDiff is the fraction of diffusion links generated uniformly at
	// random — the nonconformity the paper insists a profiling model must
	// tolerate.
	NoiseDiff float64

	TimeBuckets int
	// PopularityBurst gives each topic a peak time bucket and biases both
	// document timestamps and diffusion-source selection toward it,
	// planting the n_tz factor of Eq. 5.
	PopularityBurst bool

	// SelfDiffBias is the planted weight of intra-community diffusion; the
	// generator also plants strong *inter*-community pairs ("weak ties"
	// are not weak, Sect. 1) so the heterogeneity ablation has signal.
	SelfDiffBias float64

	// AttrVocab > 0 plants per-community categorical attribute profiles
	// (the paper's future-work "other types of X"): each user draws
	// AttrsPerUserMean attribute tokens from her home community's
	// attribute distribution.
	AttrVocab        int
	AttrsPerUserMean float64

	// --- regime knobs (internal/scenario) -------------------------------
	//
	// Every field below defaults to the generator's historical behaviour
	// at its zero value — and when off, consumes no RNG draws — so
	// existing presets and their seeded outputs are unchanged.

	// DegreeExponent > 0 gives each user a Pareto(1, DegreeExponent)
	// multiplier on both friendship out-degree means, producing the
	// heavy-tailed (power-law) degree distributions of real follower
	// graphs instead of the default Poisson degrees. Smaller exponents
	// mean heavier tails; 1.2 gives a recognizably Twitter-ish tail.
	DegreeExponent float64
	// HomeWeight is the membership mass concentrated on a user's home
	// community (0 selects the default 0.75). The secondary community
	// receives 0.98 - HomeWeight, so low values (~0.5) plant heavily
	// overlapping memberships and high values (~0.95) near-disjoint ones.
	HomeWeight float64
	// SizeExponent is the Zipf exponent of the planted community sizes
	// (0 selects the default 0.6). Large values (~3) collapse almost all
	// users into one giant community.
	SizeExponent float64
	// VocabZipf > 0 skews the vocabulary: every topic's Dirichlet
	// concentration for word w is scaled by (w+1)^-VocabZipf, so low-id
	// words dominate the corpus the way natural-language frequencies do.
	VocabZipf float64
	// SpamWords > 0 reserves that many word ids as "spam": after the
	// per-topic word distributions are drawn, SpamMass of every topic's
	// probability is moved onto a shared spam block, planting dominant
	// tokens that carry no community signal (SpamMass defaults to 0.3
	// when SpamWords > 0).
	SpamWords int
	SpamMass  float64
	// IsolatedFraction is the fraction of users excluded from the
	// friendship graph entirely — they still publish documents and can
	// diffuse, but detection gets no link evidence for them.
	IsolatedFraction float64
	// MinWordsPerDoc lowers the per-document word floor (0 selects the
	// default 2, the paper's preprocessing minimum). Set 1 to generate
	// degenerate single-word documents.
	MinWordsPerDoc int
}

// TwitterLike returns a Twitter-flavoured preset scaled to roughly `users`
// users: directed followership, many short documents per user, retweets
// copying source content, fewer diffusion than friendship links (Table 3's
// Twitter row has |E| ≈ 0.28 |F|).
func TwitterLike(users int, seed uint64) Config {
	return Config{
		Name: "twitter-like", Seed: seed,
		Users: users, Communities: 20, Topics: 25,
		VocabSize:       1500,
		DocsPerUserMean: 6, WordsPerDocMean: 6,
		FriendIntraDeg: 10, FriendInterDeg: 3, Symmetric: false,
		DiffLinks: users * 4, CitesPerDoc: 1, CopyWords: true, NoiseDiff: 0.15,
		TimeBuckets: 24, PopularityBurst: true,
		SelfDiffBias: 3,
	}
}

// DBLPLike returns a DBLP-flavoured preset: symmetric co-authorship, few
// documents per user, citing documents with fresh same-topic words, and
// more diffusion than friendship links (Table 3's DBLP row has
// |E| ≈ 3.3 |F|).
func DBLPLike(users int, seed uint64) Config {
	return Config{
		Name: "dblp-like", Seed: seed,
		Users: users, Communities: 20, Topics: 25,
		VocabSize:       1200,
		DocsPerUserMean: 3.5, WordsPerDocMean: 7,
		FriendIntraDeg: 4, FriendInterDeg: 1, Symmetric: true,
		DiffLinks: users * 3, CitesPerDoc: 4, CopyWords: false, NoiseDiff: 0.1,
		TimeBuckets: 24, PopularityBurst: true,
		SelfDiffBias: 2,
	}
}

// GroundTruth carries the planted parameters for recovery tests and the
// harness's oracle plots (Fig. 5).
type GroundTruth struct {
	// HomeCommunity[u] is user u's dominant community.
	HomeCommunity []int32
	// Pi[u] is the planted community membership of user u (|C*| dims).
	Pi *sparse.Dense
	// Theta[c] is the planted topic profile of community c (|Z*| dims).
	Theta *sparse.Dense
	// Phi[z] is the planted word distribution of topic z (|W| dims).
	Phi *sparse.Dense
	// Eta is the planted diffusion profile (|C*| x |C*| x |Z*|).
	Eta *sparse.Tensor3
	// DocCommunity / DocTopic are the planted per-document assignments.
	DocCommunity, DocTopic []int32
	// TopicPeak[z] is the peak time bucket of topic z (nil without bursts).
	TopicPeak []int
	// UserProminence[u] is the latent popularity score shaping both
	// friendship in-degree and diffusion targeting.
	UserProminence []float64
	// Xi is the planted community attribute profile (|C*| x |A|), nil
	// unless AttrVocab > 0.
	Xi *sparse.Dense
}

// Generate runs the planted process and returns the graph plus ground
// truth. The graph always passes Validate.
func Generate(cfg Config) (*socialgraph.Graph, *GroundTruth) {
	if cfg.Users <= 0 || cfg.Communities <= 0 || cfg.Topics <= 0 || cfg.VocabSize <= 0 {
		panic("synth: Config with non-positive dimensions")
	}
	r := rng.New(cfg.Seed)
	gt := &GroundTruth{}

	plantTopics(cfg, r, gt)
	plantCommunities(cfg, r, gt)
	plantUsers(cfg, r, gt)
	g := &socialgraph.Graph{NumUsers: cfg.Users, NumWords: cfg.VocabSize}
	generateDocs(cfg, r, gt, g)
	generateAttributes(cfg, r, gt, g)
	generateFriendships(cfg, r, gt, g)
	plantEta(cfg, r, gt)
	generateDiffusion(cfg, r, gt, g)
	g.DropUsersWithoutDocs() // mirrors the paper's preprocessing; remaps ids
	// Ground-truth per-user slices may now be misaligned if users were
	// dropped; regenerate alignment by construction: every user gets at
	// least one doc below, so drops are rare — but handle them anyway.
	return g, gt
}

// plantTopics draws phi_z concentrated on a per-topic block of anchor words
// plus a smoothed background, which keeps topics identifiable at small
// corpus sizes.
func plantTopics(cfg Config, r *rng.RNG, gt *GroundTruth) {
	gt.Phi = sparse.NewDense(cfg.Topics, cfg.VocabSize)
	block := cfg.VocabSize / cfg.Topics
	if block < 1 {
		block = 1
	}
	alpha := make([]float64, cfg.VocabSize)
	for z := 0; z < cfg.Topics; z++ {
		for w := range alpha {
			alpha[w] = 0.01
		}
		lo := (z * block) % cfg.VocabSize
		for k := 0; k < block; k++ {
			alpha[(lo+k)%cfg.VocabSize] = 2.0
		}
		if cfg.VocabZipf > 0 {
			for w := range alpha {
				alpha[w] *= math.Pow(float64(w+1), -cfg.VocabZipf)
			}
		}
		r.Dirichlet(gt.Phi.Row(z), alpha)
	}
	plantSpam(cfg, gt)
	if cfg.PopularityBurst {
		gt.TopicPeak = make([]int, cfg.Topics)
		for z := range gt.TopicPeak {
			gt.TopicPeak[z] = r.Intn(max(cfg.TimeBuckets, 1))
		}
	}
}

// plantSpam moves SpamMass of every topic's word probability onto a shared
// block of cfg.SpamWords low-id words, uniformly. The spam block is
// identical across topics, so the planted tokens dominate the corpus while
// carrying zero topic (and hence community) signal.
func plantSpam(cfg Config, gt *GroundTruth) {
	if cfg.SpamWords <= 0 {
		return
	}
	ns := cfg.SpamWords
	if ns > cfg.VocabSize {
		ns = cfg.VocabSize
	}
	mass := cfg.SpamMass
	if mass <= 0 {
		mass = 0.3
	}
	if mass > 0.95 {
		mass = 0.95
	}
	per := mass / float64(ns)
	for z := 0; z < cfg.Topics; z++ {
		row := gt.Phi.Row(z)
		for w := range row {
			row[w] *= 1 - mass
		}
		for w := 0; w < ns; w++ {
			row[w] += per
		}
	}
}

// plantCommunities draws theta_c concentrated on two preferred topics per
// community.
func plantCommunities(cfg Config, r *rng.RNG, gt *GroundTruth) {
	gt.Theta = sparse.NewDense(cfg.Communities, cfg.Topics)
	alpha := make([]float64, cfg.Topics)
	for c := 0; c < cfg.Communities; c++ {
		for z := range alpha {
			alpha[z] = 0.05
		}
		primary := c % cfg.Topics
		secondary := (c + 7) % cfg.Topics
		alpha[primary] = 6.0
		alpha[secondary] = 2.0
		r.Dirichlet(gt.Theta.Row(c), alpha)
	}
}

// plantUsers assigns each user a home community (Zipf-skewed sizes), a
// membership vector concentrated on the home plus one secondary community,
// and a latent prominence score.
func plantUsers(cfg Config, r *rng.RNG, gt *GroundTruth) {
	gt.HomeCommunity = make([]int32, cfg.Users)
	gt.Pi = sparse.NewDense(cfg.Users, cfg.Communities)
	gt.UserProminence = make([]float64, cfg.Users)
	sizeExp := cfg.SizeExponent
	if sizeExp == 0 {
		sizeExp = 0.6
	}
	sizes := make([]float64, cfg.Communities)
	for c := range sizes {
		sizes[c] = math.Pow(float64(c+1), -sizeExp)
	}
	homeW := cfg.HomeWeight
	if homeW == 0 {
		homeW = 0.75
	}
	secondW := 0.98 - homeW
	if secondW < 0 {
		secondW = 0
	}
	for u := 0; u < cfg.Users; u++ {
		home := r.Categorical(sizes)
		gt.HomeCommunity[u] = int32(home)
		second := r.Intn(cfg.Communities)
		row := gt.Pi.Row(u)
		for c := range row {
			row[c] = 0.02 / float64(cfg.Communities)
		}
		row[home] += homeW
		row[second] += secondW
		norm := 0.0
		for _, v := range row {
			norm += v
		}
		for c := range row {
			row[c] /= norm
		}
		// Log-normal prominence: a few celebrities, many ordinary users.
		gt.UserProminence[u] = math.Exp(0.8 * r.Norm())
	}
}

// generateDocs draws each user's documents from the planted CPD process:
// c ~ pi_u, z ~ theta_c, words ~ phi_z, time biased to the topic's peak
// bucket when bursts are on. Every user gets at least one document so the
// graph keeps its planned size.
func generateDocs(cfg Config, r *rng.RNG, gt *GroundTruth, g *socialgraph.Graph) {
	for u := 0; u < cfg.Users; u++ {
		nd := r.Poisson(cfg.DocsPerUserMean)
		if nd < 1 {
			nd = 1
		}
		for d := 0; d < nd; d++ {
			c := r.Categorical(gt.Pi.Row(u))
			z := r.Categorical(gt.Theta.Row(c))
			doc := socialgraph.Doc{
				User:  int32(u),
				Time:  int64(drawTime(cfg, r, gt, z)),
				Words: drawWords(cfg, r, gt, z),
			}
			g.Docs = append(g.Docs, doc)
			gt.DocCommunity = append(gt.DocCommunity, int32(c))
			gt.DocTopic = append(gt.DocTopic, int32(z))
		}
	}
}

func drawWords(cfg Config, r *rng.RNG, gt *GroundTruth, z int) []int32 {
	floor := cfg.MinWordsPerDoc
	if floor <= 0 {
		floor = 2
	}
	n := floor + r.Poisson(math.Max(cfg.WordsPerDocMean-float64(floor), 0))
	words := make([]int32, n)
	row := gt.Phi.Row(z)
	for k := range words {
		words[k] = int32(r.Categorical(row))
	}
	return words
}

// drawTime returns a bucket id; with bursts on, 60% of a topic's documents
// land within ±1 bucket of its peak.
func drawTime(cfg Config, r *rng.RNG, gt *GroundTruth, z int) int {
	nb := max(cfg.TimeBuckets, 1)
	if !cfg.PopularityBurst || gt.TopicPeak == nil {
		return r.Intn(nb)
	}
	if r.Float64() < 0.6 {
		t := gt.TopicPeak[z] + r.Intn(3) - 1
		if t < 0 {
			t = 0
		}
		if t >= nb {
			t = nb - 1
		}
		return t
	}
	return r.Intn(nb)
}

// generateAttributes plants per-community attribute distributions (block-
// anchored like the topics) and draws each user's attribute tokens from
// her home community's distribution. No-op unless cfg.AttrVocab > 0.
func generateAttributes(cfg Config, r *rng.RNG, gt *GroundTruth, g *socialgraph.Graph) {
	if cfg.AttrVocab <= 0 {
		return
	}
	gt.Xi = sparse.NewDense(cfg.Communities, cfg.AttrVocab)
	block := cfg.AttrVocab / cfg.Communities
	if block < 1 {
		block = 1
	}
	alpha := make([]float64, cfg.AttrVocab)
	for c := 0; c < cfg.Communities; c++ {
		for a := range alpha {
			alpha[a] = 0.02
		}
		lo := (c * block) % cfg.AttrVocab
		for k := 0; k < block; k++ {
			alpha[(lo+k)%cfg.AttrVocab] = 2.0
		}
		r.Dirichlet(gt.Xi.Row(c), alpha)
	}
	g.NumAttrs = cfg.AttrVocab
	g.Attrs = make([][]int32, cfg.Users)
	mean := cfg.AttrsPerUserMean
	if mean <= 0 {
		mean = 2
	}
	for u := 0; u < cfg.Users; u++ {
		n := 1 + r.Poisson(mean-1)
		row := gt.Xi.Row(int(gt.HomeCommunity[u]))
		for k := 0; k < n; k++ {
			g.Attrs[u] = append(g.Attrs[u], int32(r.Categorical(row)))
		}
	}
}

// generateFriendships wires intra-community links (preferentially toward
// prominent users, so prominence manifests as follower count) plus uniform
// inter-community links.
func generateFriendships(cfg Config, r *rng.RNG, gt *GroundTruth, g *socialgraph.Graph) {
	members := make([][]int, cfg.Communities)
	for u := 0; u < cfg.Users; u++ {
		members[gt.HomeCommunity[u]] = append(members[gt.HomeCommunity[u]], u)
	}
	memberWeights := make([][]float64, cfg.Communities)
	for c, ms := range members {
		w := make([]float64, len(ms))
		for i, u := range ms {
			w[i] = gt.UserProminence[u]
		}
		memberWeights[c] = w
	}
	// Regime knobs: per-user power-law degree multipliers and users cut
	// off from the friendship graph entirely. Both draw RNG only when
	// enabled, preserving the seeded output of every existing preset.
	var degMult []float64
	if cfg.DegreeExponent > 0 {
		degMult = make([]float64, cfg.Users)
		for u := range degMult {
			// Pareto(1, alpha) via inverse CDF on an open-interval uniform.
			degMult[u] = math.Pow(r.Float64Open(), -1/cfg.DegreeExponent)
		}
	}
	var isolated []bool
	if cfg.IsolatedFraction > 0 {
		isolated = make([]bool, cfg.Users)
		for u := range isolated {
			isolated[u] = r.Float64() < cfg.IsolatedFraction
		}
	}
	seen := make(map[int64]bool, cfg.Users*8)
	addLink := func(u, v int) {
		if u == v {
			return
		}
		if isolated != nil && (isolated[u] || isolated[v]) {
			return
		}
		key := int64(u)*int64(cfg.Users) + int64(v)
		if seen[key] {
			return
		}
		seen[key] = true
		g.Friends = append(g.Friends, socialgraph.FriendLink{U: int32(u), V: int32(v)})
		if cfg.Symmetric {
			rkey := int64(v)*int64(cfg.Users) + int64(u)
			if !seen[rkey] {
				seen[rkey] = true
				g.Friends = append(g.Friends, socialgraph.FriendLink{U: int32(v), V: int32(u)})
			}
		}
	}
	for u := 0; u < cfg.Users; u++ {
		home := int(gt.HomeCommunity[u])
		mult := 1.0
		if degMult != nil {
			mult = degMult[u]
		}
		nIntra := r.Poisson(cfg.FriendIntraDeg * mult)
		if len(members[home]) > 1 {
			for k := 0; k < nIntra; k++ {
				v := members[home][r.Categorical(memberWeights[home])]
				addLink(u, v)
			}
		}
		nInter := r.Poisson(cfg.FriendInterDeg * mult)
		for k := 0; k < nInter; k++ {
			addLink(u, r.Intn(cfg.Users))
		}
	}
}

// plantEta builds the ground-truth diffusion profile: strong self-diffusion
// on each community's preferred topics, plus planted inter-community
// corridors — pairs (c, c+1) diffusing strongly on their shared secondary
// topic, deliberately stronger than some self-links so that "weak ties"
// carry real diffusion (Sect. 1's heterogeneity challenge).
func plantEta(cfg Config, r *rng.RNG, gt *GroundTruth) {
	gt.Eta = sparse.NewTensor3(cfg.Communities, cfg.Communities, cfg.Topics)
	for c := 0; c < cfg.Communities; c++ {
		theta := gt.Theta.Row(c)
		for z := 0; z < cfg.Topics; z++ {
			gt.Eta.Set(c, c, z, cfg.SelfDiffBias*theta[z])
		}
		// Inter-community corridor: c diffuses c+1 on c+1's primary topic,
		// with strength comparable to (often exceeding) self-diffusion.
		cn := (c + 1) % cfg.Communities
		zShared := cn % cfg.Topics
		gt.Eta.Set(c, cn, zShared, cfg.SelfDiffBias*1.5)
		// Low-level background diffusion everywhere.
		for c2 := 0; c2 < cfg.Communities; c2++ {
			for z := 0; z < cfg.Topics; z++ {
				gt.Eta.Add(c, c2, z, 0.01*r.Float64())
			}
		}
	}
	// Normalize each source community's profile to a distribution over
	// (c', z), matching Definition 5.
	for c := 0; c < cfg.Communities; c++ {
		var s float64
		for c2 := 0; c2 < cfg.Communities; c2++ {
			for z := 0; z < cfg.Topics; z++ {
				s += gt.Eta.At(c, c2, z)
			}
		}
		for c2 := 0; c2 < cfg.Communities; c2++ {
			for z := 0; z < cfg.Topics; z++ {
				gt.Eta.Set(c, c2, z, gt.Eta.At(c, c2, z)/s)
			}
		}
	}
}

// generateDiffusion creates cfg.DiffLinks diffusion events. Each event
// picks a source document (biased by author prominence and, with bursts,
// topic-time popularity), picks the diffusing community from the planted
// eta column for the source's (community, topic), picks a diffusing user
// from that community (biased by activeness-in-waiting: prominence again),
// creates the diffusing document and records the link.
func generateDiffusion(cfg Config, r *rng.RNG, gt *GroundTruth, g *socialgraph.Graph) {
	if len(g.Docs) == 0 || cfg.DiffLinks <= 0 {
		return
	}
	members := make([][]int, cfg.Communities)
	for u := 0; u < cfg.Users; u++ {
		members[gt.HomeCommunity[u]] = append(members[gt.HomeCommunity[u]], u)
	}
	nOriginal := len(g.Docs)
	// Source-document weights: prominence of author × burst factor.
	srcW := make([]float64, nOriginal)
	for i := 0; i < nOriginal; i++ {
		w := gt.UserProminence[originalUser(gt, g, i)]
		if cfg.PopularityBurst && gt.TopicPeak != nil {
			z := int(gt.DocTopic[i])
			dist := absInt(int(g.Docs[i].Time) - gt.TopicPeak[z])
			w *= 1 + 2*math.Exp(-float64(dist))
		}
		srcW[i] = w
	}
	colWeights := make([]float64, cfg.Communities)
	for made := 0; made < cfg.DiffLinks; made++ {
		j := r.Categorical(srcW)
		cj := int(gt.DocCommunity[j])
		zj := int(gt.DocTopic[j])
		var u int
		if r.Float64() < cfg.NoiseDiff {
			// Nonconformity: a random user diffuses for reasons outside the
			// community model.
			u = r.Intn(cfg.Users)
		} else {
			for c := 0; c < cfg.Communities; c++ {
				colWeights[c] = gt.Eta.At(c, cj, zj) + 1e-9
			}
			c := r.Categorical(colWeights)
			if len(members[c]) == 0 {
				u = r.Intn(cfg.Users)
			} else {
				u = members[c][r.Intn(len(members[c]))]
			}
		}
		if int32(u) == g.Docs[j].User {
			// No self-diffusion of one's own document; retry counts as one
			// attempt to keep generation O(DiffLinks).
			continue
		}
		t := g.Docs[j].Time + int64(r.Intn(2))
		if t >= int64(max(cfg.TimeBuckets, 1)) {
			t = int64(max(cfg.TimeBuckets, 1)) - 1
		}
		var words []int32
		if cfg.CopyWords {
			words = append([]int32(nil), g.Docs[j].Words...)
			if len(words) > 2 && r.Float64() < 0.5 {
				words = words[:len(words)-1] // truncation noise
			}
		} else {
			words = drawWords(cfg, r, gt, zj)
		}
		i := len(g.Docs)
		g.Docs = append(g.Docs, socialgraph.Doc{User: int32(u), Time: t, Words: words})
		gt.DocCommunity = append(gt.DocCommunity, gt.HomeCommunity[u])
		gt.DocTopic = append(gt.DocTopic, int32(zj))
		g.Diffs = append(g.Diffs, socialgraph.DiffLink{I: int32(i), J: int32(j), T: t})
		// A citing paper links several earlier sources (its reference
		// list); the extras are drawn from the same prominence/burst-
		// weighted source pool, restricted to documents by other users no
		// later than the citing document.
		cited := map[int]bool{j: true}
		for extra := 1; extra < cfg.CitesPerDoc; extra++ {
			j2 := r.Categorical(srcW)
			if g.Docs[j2].User == int32(u) || cited[j2] || g.Docs[j2].Time > t {
				continue
			}
			cited[j2] = true
			g.Diffs = append(g.Diffs, socialgraph.DiffLink{I: int32(i), J: int32(j2), T: t})
		}
	}
}

func originalUser(gt *GroundTruth, g *socialgraph.Graph, doc int) int {
	return int(g.Docs[doc].User)
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
