package synth

import (
	"testing"

	"repro/internal/socialgraph"
)

func TestGenerateValid(t *testing.T) {
	for _, cfg := range []Config{TwitterLike(150, 1), DBLPLike(150, 2)} {
		g, gt := Generate(cfg)
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		if g.NumUsers != cfg.Users {
			t.Fatalf("%s: %d users, want %d (every user gets >=1 doc)", cfg.Name, g.NumUsers, cfg.Users)
		}
		if len(gt.DocCommunity) != len(g.Docs) || len(gt.DocTopic) != len(g.Docs) {
			t.Fatalf("%s: ground truth misaligned", cfg.Name)
		}
		if len(g.Diffs) == 0 || len(g.Friends) == 0 {
			t.Fatalf("%s: no links generated", cfg.Name)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	g1, _ := Generate(TwitterLike(100, 9))
	g2, _ := Generate(TwitterLike(100, 9))
	if len(g1.Docs) != len(g2.Docs) || len(g1.Friends) != len(g2.Friends) || len(g1.Diffs) != len(g2.Diffs) {
		t.Fatal("same seed produced different graphs")
	}
	for i := range g1.Docs {
		if g1.Docs[i].User != g2.Docs[i].User || len(g1.Docs[i].Words) != len(g2.Docs[i].Words) {
			t.Fatal("same seed produced different docs")
		}
	}
	g3, _ := Generate(TwitterLike(100, 10))
	if len(g3.Diffs) == len(g1.Diffs) && len(g3.Friends) == len(g1.Friends) && len(g3.Docs) == len(g1.Docs) {
		t.Log("different seeds produced same shape (possible but suspicious)")
	}
}

func TestDatasetShapeContrast(t *testing.T) {
	// The Table 3 contrast: Twitter |E| < |F|, DBLP |E| > |F|.
	tw, _ := Generate(TwitterLike(300, 3))
	db, _ := Generate(DBLPLike(300, 4))
	twRatio := float64(len(tw.Diffs)) / float64(len(tw.Friends))
	dbRatio := float64(len(db.Diffs)) / float64(len(db.Friends))
	if twRatio >= 1 {
		t.Fatalf("twitter |E|/|F| = %v, want < 1", twRatio)
	}
	if dbRatio <= 1 {
		t.Fatalf("dblp |E|/|F| = %v, want > 1", dbRatio)
	}
	// Twitter has more docs per user.
	twDocs := float64(len(tw.Docs)) / float64(tw.NumUsers)
	dbDocs := float64(len(db.Docs)) / float64(db.NumUsers)
	if twDocs <= dbDocs {
		t.Fatalf("docs/user: twitter %v <= dblp %v", twDocs, dbDocs)
	}
}

func TestDiffusionSemantics(t *testing.T) {
	g, _ := Generate(TwitterLike(200, 5))
	for _, e := range g.Diffs {
		if g.Docs[e.I].User == g.Docs[e.J].User {
			t.Fatal("self-user diffusion generated")
		}
		if g.Docs[e.I].Time < g.Docs[e.J].Time {
			t.Fatal("diffusing doc precedes source doc")
		}
	}
}

func TestFriendshipAssortativity(t *testing.T) {
	g, gt := Generate(TwitterLike(300, 6))
	intra, inter := 0, 0
	for _, f := range g.Friends {
		if gt.HomeCommunity[f.U] == gt.HomeCommunity[f.V] {
			intra++
		} else {
			inter++
		}
	}
	if intra <= inter {
		t.Fatalf("friendship not assortative: intra=%d inter=%d", intra, inter)
	}
}

func TestPlantedEtaRowsNormalized(t *testing.T) {
	_, gt := Generate(TwitterLike(100, 7))
	C := gt.Eta.D1
	Z := gt.Eta.D3
	for c := 0; c < C; c++ {
		var s float64
		for c2 := 0; c2 < C; c2++ {
			for z := 0; z < Z; z++ {
				v := gt.Eta.At(c, c2, z)
				if v < 0 {
					t.Fatalf("negative eta at (%d,%d,%d)", c, c2, z)
				}
				s += v
			}
		}
		if s < 0.999 || s > 1.001 {
			t.Fatalf("eta row %d sums to %v", c, s)
		}
	}
}

func TestDiffusionFollowsPlantedEta(t *testing.T) {
	// Diffusing users should come from communities eta favours for the
	// source (community, topic) — check self+corridor mass dominates.
	cfg := TwitterLike(400, 8)
	cfg.NoiseDiff = 0 // isolate the community factor
	g, gt := Generate(cfg)
	onEta, offEta := 0, 0
	for _, e := range g.Diffs {
		cSrc := int(gt.DocCommunity[e.J])
		cDif := int(gt.HomeCommunity[g.Docs[e.I].User])
		if cDif == cSrc || cDif == (cSrc-1+cfg.Communities)%cfg.Communities {
			onEta++ // self-diffusion or the planted corridor (c-1 -> c)
		} else {
			offEta++
		}
	}
	if onEta <= offEta {
		t.Fatalf("diffusion ignores planted eta: on=%d off=%d", onEta, offEta)
	}
}

func TestBuildVocabulary(t *testing.T) {
	cfg := TwitterLike(10, 1)
	v := BuildVocabulary(cfg)
	if v.Len() != cfg.VocabSize {
		t.Fatalf("vocab size %d, want %d", v.Len(), cfg.VocabSize)
	}
	seen := map[string]bool{}
	for i := 0; i < v.Len(); i++ {
		w := v.Word(i)
		if seen[w] {
			t.Fatalf("duplicate word %q", w)
		}
		seen[w] = true
	}
	// Words in the same block share the theme prefix.
	block := cfg.VocabSize / cfg.Topics
	w0, w1 := v.Word(0), v.Word(1)
	if w0[:4] != w1[:4] {
		t.Fatalf("block words %q and %q do not share a prefix", w0, w1)
	}
	across := v.Word(block)
	if w0[:4] == across[:4] && block >= 2 {
		t.Logf("adjacent blocks share prefix (%q, %q) — only possible with theme wrap", w0, across)
	}
}

func TestTimestampsWithinBuckets(t *testing.T) {
	cfg := DBLPLike(100, 11)
	g, _ := Generate(cfg)
	for _, d := range g.Docs {
		if d.Time < 0 || d.Time >= int64(cfg.TimeBuckets) {
			t.Fatalf("doc time %d outside [0, %d)", d.Time, cfg.TimeBuckets)
		}
	}
}

func TestGeneratePanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad config did not panic")
		}
	}()
	Generate(Config{Users: 0, Communities: 5, Topics: 5, VocabSize: 10})
}

var sinkGraph *socialgraph.Graph

func BenchmarkGenerateTwitter(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g, _ := Generate(TwitterLike(500, uint64(i)))
		sinkGraph = g
	}
}
