package stream

import (
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/socialgraph"
	"repro/internal/synth"
)

// testBase trains a small base model and returns it with its graph.
func testBase(t *testing.T) (*socialgraph.Graph, *core.Model) {
	t.Helper()
	g, _ := synth.Generate(synth.TwitterLike(60, 17))
	m, _, err := core.Train(g, core.Config{
		NumCommunities: 4, NumTopics: 6, EMIters: 4, Workers: 2,
		Seed: 3, Rho: 0.25, WarmStartSweeps: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g, m
}

// newTestUpdater stands up engine + journal + updater over a fresh base.
func newTestUpdater(t *testing.T, g *socialgraph.Graph, m *core.Model, mod func(*Options)) (*serve.Engine, *Journal, *Updater) {
	t.Helper()
	engine := serve.New(m, nil, serve.Options{})
	t.Cleanup(engine.Close)
	j, err := OpenJournal(filepath.Join(t.TempDir(), "events.wal"), JournalOptions{SyncEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	opts := Options{
		Engine:       engine,
		Base:         m,
		WindowEvents: 4,
		FoldSweeps:   8,
		FoldSeed:     99,
	}
	if mod != nil {
		mod(&opts)
	}
	u, err := NewUpdater(j, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(u.Close)
	return engine, j, u
}

// streamFixture is a small deterministic event stream: two new users with
// documents and edges, one changed base user, one diffusion.
func streamFixture(g *socialgraph.Graph, m *core.Model) []Event {
	n := int32(m.NumUsers)
	return []Event{
		{Type: EvAddUser},
		{Type: EvAddDoc, User: n, Time: 100, Words: g.Docs[0].Words},
		{Type: EvAddEdge, User: n, Target: 0},
		{Type: EvAddUser},
		{Type: EvAddDoc, User: n + 1, Time: 110, Words: g.Docs[1].Words},
		{Type: EvAddDoc, User: n + 1, Time: 120, Words: g.Docs[2].Words},
		{Type: EvAddEdge, User: n + 1, Target: 3},
		{Type: EvAddEdge, User: n, Target: n + 1},
		{Type: EvDiffusion, User: n, Target: 0, Time: 130, Words: g.Docs[0].Words[:2]},
		{Type: EvAddDoc, User: 2, Time: 140, Words: g.Docs[3].Words},
	}
}

func TestUpdaterIngestPublishFreshness(t *testing.T) {
	g, m := testBase(t)
	engine, _, u := newTestUpdater(t, g, m, nil)
	evs := streamFixture(g, m)
	resolved, err := u.Ingest(evs)
	if err != nil {
		t.Fatal(err)
	}
	if resolved[0].User != int32(m.NumUsers) || resolved[3].User != int32(m.NumUsers)+1 {
		t.Fatalf("add-user ids not assigned densely: %d, %d", resolved[0].User, resolved[3].User)
	}
	// Before the publish the new user is invisible.
	if _, err := engine.Membership(m.NumUsers, 3); err == nil {
		t.Fatal("new user visible before any publish")
	}
	info, err := u.Publish()
	if err != nil {
		t.Fatal(err)
	}
	if info == nil || info.Generation != 1 || info.Users != m.NumUsers+2 {
		t.Fatalf("unexpected publish info %+v", info)
	}
	// One publish cycle later, every ingested event is query-visible.
	for _, id := range []int{m.NumUsers, m.NumUsers + 1} {
		res, err := engine.Membership(id, 3)
		if err != nil {
			t.Fatalf("membership of streamed user %d: %v", id, err)
		}
		if len(res.Communities) == 0 {
			t.Fatalf("streamed user %d has no membership", id)
		}
	}
	st := u.Status()
	if st.PendingEvents != 0 || st.Generation != 1 || st.StreamDocs != 5 {
		t.Fatalf("status after publish: %+v", st)
	}
	if st.Watermark != st.JournalTail {
		t.Fatalf("watermark %d did not reach the tail %d", st.Watermark, st.JournalTail)
	}
	// A published no-change publish is a no-op.
	info2, err := u.Publish()
	if err != nil {
		t.Fatal(err)
	}
	if info2 != nil {
		t.Fatalf("empty publish produced generation %d", info2.Generation)
	}
}

// TestReplayEqualsBatch is the core determinism contract: event-by-event
// ingestion with a publish per window yields bit-identical memberships to
// batch-folding the same final corpus in one publish.
func TestReplayEqualsBatch(t *testing.T) {
	g, m := testBase(t)
	evs := streamFixture(g, m)

	_, _, incr := newTestUpdater(t, g, m, nil)
	for i := range evs {
		if _, err := incr.Ingest(evs[i : i+1]); err != nil {
			t.Fatal(err)
		}
		if _, err := incr.Publish(); err != nil { // publish every event: worst case
			t.Fatal(err)
		}
	}
	_, _, batch := newTestUpdater(t, g, m, nil)
	if _, err := batch.Ingest(evs); err != nil {
		t.Fatal(err)
	}
	if _, err := batch.Publish(); err != nil {
		t.Fatal(err)
	}

	a := incr.Model()
	b := batch.Model()
	if !reflect.DeepEqual(a.Pi.Data, b.Pi.Data) {
		t.Fatal("incremental replay and batch fold-in disagree on memberships")
	}
	if !reflect.DeepEqual(a.DocCommunity, b.DocCommunity) || !reflect.DeepEqual(a.DocTopic, b.DocTopic) {
		t.Fatal("incremental replay and batch fold-in disagree on document assignments")
	}
}

func TestUpdaterRestartAndCheckpoint(t *testing.T) {
	g, m := testBase(t)
	evs := streamFixture(g, m)
	dir := t.TempDir()
	path := filepath.Join(dir, "events.wal")

	engine := serve.New(m, nil, serve.Options{})
	defer engine.Close()
	opts := Options{Engine: engine, Base: m, WindowEvents: 4, FoldSweeps: 8, FoldSeed: 99}

	j, err := OpenJournal(path, JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	u, err := NewUpdater(j, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := u.Ingest(evs[:6]); err != nil {
		t.Fatal(err)
	}
	if _, err := u.Publish(); err != nil {
		t.Fatal(err)
	}
	want := u.Model()
	if err := u.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if j.Base() != j.Watermark() || j.Events() != 0 {
		t.Fatalf("checkpoint did not compact: base=%d mark=%d events=%d", j.Base(), j.Watermark(), j.Events())
	}
	u.Close()
	j.Close()

	// Restart from checkpoint: state identical, ingest continues.
	j2, err := OpenJournal(path, JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	u2, err := NewUpdater(j2, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer u2.Close()
	if got := u2.Model(); !reflect.DeepEqual(got.Pi.Data, want.Pi.Data) {
		t.Fatal("checkpoint restore lost membership state")
	}
	if u2.Generation() != 1 || u2.Pending() != 0 {
		t.Fatalf("restored generation=%d pending=%d", u2.Generation(), u2.Pending())
	}
	if _, err := u2.Ingest(evs[6:]); err != nil {
		t.Fatal(err)
	}
	if _, err := u2.Publish(); err != nil {
		t.Fatal(err)
	}

	// A second restart WITHOUT the checkpoint (fresh journal replay) must
	// converge to the same memberships: replay re-folds everything.
	full := u2.Model()
	u3, err := NewUpdater(j2, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer u3.Close()
	if u3.Pending() == 0 {
		t.Fatal("post-checkpoint suffix should be pending after restart")
	}
	if _, err := u3.Publish(); err != nil {
		t.Fatal(err)
	}
	if got := u3.Model(); !reflect.DeepEqual(got.Pi.Data, full.Pi.Data) {
		t.Fatal("replay after restart disagrees with the pre-restart state")
	}
}

// TestRestartRepublishesRestoredState: after a restart with a fully
// checkpointed (nothing-pending) journal, the first Publish must still
// rebuild and promote — the engine slot of a fresh process holds the
// on-disk base model, not the restored stream state.
func TestRestartRepublishesRestoredState(t *testing.T) {
	g, m := testBase(t)
	path := filepath.Join(t.TempDir(), "events.wal")
	opts := Options{Engine: nil, Base: m, FoldSweeps: 8, FoldSeed: 99}

	e1 := serve.New(m, nil, serve.Options{})
	defer e1.Close()
	j1, err := OpenJournal(path, JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	o := opts
	o.Engine = e1
	u1, err := NewUpdater(j1, o)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := u1.Ingest(streamFixture(g, m)[:5]); err != nil {
		t.Fatal(err)
	}
	if _, err := u1.Publish(); err != nil {
		t.Fatal(err)
	}
	if err := u1.Checkpoint(); err != nil { // watermark == tail, nothing pending
		t.Fatal(err)
	}
	u1.Close()
	j1.Close()

	// Fresh process: a NEW engine still serving the bare base model.
	e2 := serve.New(m, nil, serve.Options{})
	defer e2.Close()
	j2, err := OpenJournal(path, JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	o = opts
	o.Engine = e2
	u2, err := NewUpdater(j2, o)
	if err != nil {
		t.Fatal(err)
	}
	defer u2.Close()
	if u2.Pending() != 0 {
		t.Fatalf("checkpointed restart has %d pending events", u2.Pending())
	}
	if _, err := e2.Membership(m.NumUsers, 3); err == nil {
		t.Fatal("stream user visible before the restored state was published")
	}
	info, err := u2.Publish()
	if err != nil {
		t.Fatal(err)
	}
	if info == nil {
		t.Fatal("first publish after restart was a no-op; restored stream state never reaches the engine")
	}
	if _, err := e2.Membership(m.NumUsers, 3); err != nil {
		t.Fatalf("restored stream user still invisible after the publish: %v", err)
	}
	// Subsequent empty publishes are no-ops again.
	if info2, err := u2.Publish(); err != nil || info2 != nil {
		t.Fatalf("second publish: info=%v err=%v", info2, err)
	}
}

func TestUpdaterGibbsPass(t *testing.T) {
	g, m := testBase(t)
	run := func() *core.Model {
		_, _, u := newTestUpdater(t, g, m, func(o *Options) {
			o.GibbsEvery = 2
			o.GibbsSweeps = 2
			o.BaseGraph = g
			o.Workers = 2
		})
		evs := streamFixture(g, m)
		if _, err := u.Ingest(evs); err != nil {
			t.Fatal(err)
		}
		if _, err := u.Publish(); err != nil { // publish 1: fold only
			t.Fatal(err)
		}
		if _, err := u.Ingest([]Event{{Type: EvAddDoc, User: int32(m.NumUsers), Time: 200, Words: g.Docs[4].Words}}); err != nil {
			t.Fatal(err)
		}
		info, err := u.Publish() // publish 2: delta-Gibbs
		if err != nil {
			t.Fatal(err)
		}
		if !info.Gibbs {
			t.Fatal("second publish did not run the delta-Gibbs pass")
		}
		if st := u.Status(); st.GibbsPasses != 1 {
			t.Fatalf("GibbsPasses = %d, want 1", st.GibbsPasses)
		}
		out := u.Model()
		if err := out.CheckShapes(); err != nil {
			t.Fatalf("delta-Gibbs output fails shape checks: %v", err)
		}
		return out
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a.Pi.Data, b.Pi.Data) || !reflect.DeepEqual(a.Theta.Data, b.Theta.Data) {
		t.Fatal("delta-Gibbs publishes are not deterministic")
	}
	if reflect.DeepEqual(a.Theta.Data, m.Theta.Data) {
		t.Fatal("delta-Gibbs pass left the content profiles untouched — it did not re-estimate")
	}
}

func TestUpdaterValidation(t *testing.T) {
	g, m := testBase(t)
	_, j, u := newTestUpdater(t, g, m, nil)
	n := int32(m.NumUsers)
	bad := [][]Event{
		{{Type: EvAddDoc, User: n + 5, Words: []int32{1}}},                 // unknown user
		{{Type: EvAddDoc, User: 0}},                                        // empty doc
		{{Type: EvAddDoc, User: 0, Words: []int32{int32(m.NumWords)}}},     // OOV word
		{{Type: EvAddEdge, User: 0, Target: 0}},                            // self edge
		{{Type: EvAddEdge, User: 0, Target: n + 9}},                        // unknown target
		{{Type: EvDiffusion, User: 0, Target: 1 << 20, Words: []int32{1}}}, // unknown doc
		{{Type: EvAddUser, User: n + 3}},                                   // non-dense id
		{{Type: EventType(77), User: 0}},                                   // unknown type
	}
	for i, evs := range bad {
		if _, err := u.Ingest(evs); err == nil {
			t.Fatalf("bad batch %d accepted", i)
		}
	}
	if j.Events() != 0 {
		t.Fatalf("rejected batches reached the journal (%d events)", j.Events())
	}
	// A batch failing mid-validation journals nothing.
	mixed := []Event{{Type: EvAddUser}, {Type: EvAddDoc, User: n, Words: []int32{0}}, {Type: EvAddDoc, User: 0}}
	if _, err := u.Ingest(mixed); err == nil {
		t.Fatal("mixed bad batch accepted")
	}
	if j.Events() != 0 || u.Pending() != 0 {
		t.Fatal("failed batch left partial state behind")
	}
}

func TestIngestHTTPAndDrain(t *testing.T) {
	g, m := testBase(t)
	engine, _, u := newTestUpdater(t, g, m, nil)
	h := u.Handler()

	post := func(body string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/api/ingest", strings.NewReader(body)))
		return rec
	}
	rec := post(`{"events":[{"type":"add-user"},{"type":"add-doc","user":` +
		strconv.Itoa(m.NumUsers) + `,"words":[1,2,3]}]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("ingest answered %d: %s", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), `"accepted": 2`) {
		t.Fatalf("unexpected ingest response: %s", rec.Body.String())
	}
	rec = post(`[{"type":"add-doc","user":0,"words":[4]}]`) // bare-array form
	if rec.Code != http.StatusOK {
		t.Fatalf("bare-array ingest answered %d", rec.Code)
	}
	if rec := post(`{"events":[{"type":"add-doc","user":99999,"words":[1]}]}`); rec.Code != http.StatusBadRequest {
		t.Fatalf("invalid event answered %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/ingest/status", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"pendingEvents"`) {
		t.Fatalf("status answered %d: %s", rec.Code, rec.Body.String())
	}

	// Drain: ingest closes with 503, pending events are published.
	if err := u.Drain(); err != nil {
		t.Fatal(err)
	}
	if rec := post(`[{"type":"add-user"}]`); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("ingest while draining answered %d", rec.Code)
	}
	if u.Pending() != 0 {
		t.Fatalf("%d events still pending after drain", u.Pending())
	}
	if _, err := engine.Membership(m.NumUsers, 3); err != nil {
		t.Fatalf("drained events not visible: %v", err)
	}
	if err := u.Drain(); err != nil { // idempotent
		t.Fatal(err)
	}
}
