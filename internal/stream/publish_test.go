package stream

import (
	"fmt"
	"math/rand/v2"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/socialgraph"
	"repro/internal/store"
)

// randomEvents builds a deterministic randomized event stream with user
// churn: user additions, documents on base and streamed users (including
// repeat touches, which exercise row overwrites), edges and diffusions.
func randomEvents(g *socialgraph.Graph, m *core.Model, n int, seed uint64) []Event {
	r := rand.New(rand.NewPCG(seed, seed^0xABCD))
	users := m.NumUsers
	docs := len(g.Docs)
	words := func() []int32 { return g.Docs[r.IntN(len(g.Docs))].Words }
	evs := make([]Event, 0, n)
	for i := 0; i < n; i++ {
		switch p := r.IntN(10); {
		case p == 0:
			evs = append(evs, Event{Type: EvAddUser})
			users++
		case p <= 5:
			evs = append(evs, Event{
				Type: EvAddDoc, User: int32(r.IntN(users)),
				Time: int64(1000 + i), Words: words(),
			})
			docs++
		case p <= 7:
			a, b := int32(r.IntN(users)), int32(r.IntN(users))
			if a == b {
				b = (b + 1) % int32(users)
			}
			evs = append(evs, Event{Type: EvAddEdge, User: a, Target: b})
		default:
			evs = append(evs, Event{
				Type: EvDiffusion, User: int32(r.IntN(users)),
				Target: int32(r.IntN(docs)), Time: int64(1000 + i), Words: words()[:1],
			})
			docs++
		}
	}
	return evs
}

// requireSameServed compares everything the two engines serve for the
// default slot, Version normalized away (the counters are process-local).
func requireSameServed(t *testing.T, inc, full *serve.Engine, users int, queries [][]int32) {
	t.Helper()
	for id := 0; id < users; id++ {
		a, aerr := inc.Membership(id, 4)
		b, berr := full.Membership(id, 4)
		if (aerr != nil) != (berr != nil) {
			t.Fatalf("membership(%d) errors diverge: %v vs %v", id, aerr, berr)
		}
		if aerr != nil {
			continue
		}
		a.Version, b.Version = 0, 0
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("membership(%d) diverges:\nincremental %+v\nfull        %+v", id, a, b)
		}
	}
	for qi, q := range queries {
		a, aerr := inc.Rank(q, 5)
		b, berr := full.Rank(q, 5)
		if (aerr != nil) != (berr != nil) {
			t.Fatalf("rank(query %d) errors diverge: %v vs %v", qi, aerr, berr)
		}
		if aerr != nil {
			continue
		}
		a.Version, b.Version = 0, 0
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("rank(query %d) diverges:\nincremental %+v\nfull        %+v", qi, a, b)
		}
	}
	if a, b := inc.Communities(), full.Communities(); !reflect.DeepEqual(a, b) {
		t.Fatalf("community summaries diverge:\nincremental %+v\nfull        %+v", a, b)
	}
}

// TestIncrementalPublishMatchesFullRebuild is the end-to-end differential
// contract of the O(changed) publish path: an updater publishing
// incrementally (patched model, patched indexes, section-reusing saves)
// must serve bit-identical results AND write byte-identical snapshot
// files to an updater forced to rebuild everything from scratch, across
// a randomized churny event sequence published window by window.
func TestIncrementalPublishMatchesFullRebuild(t *testing.T) {
	g, m := testBase(t)
	incDir, fullDir := t.TempDir(), t.TempDir()
	_, _, inc := newTestUpdater(t, g, m, func(o *Options) { o.Dir = incDir })
	_, _, full := newTestUpdater(t, g, m, func(o *Options) {
		o.Dir = fullDir
		o.FullRebuild = true
	})

	evs := randomEvents(g, m, 120, 42)
	queries := [][]int32{
		g.Docs[0].Words[:2],
		g.Docs[1].Words[:3],
		{g.Docs[2].Words[0]},
	}
	const window = 8
	gens := 0
	for lo := 0; lo < len(evs); lo += window {
		hi := min(lo+window, len(evs))
		if _, err := inc.Ingest(evs[lo:hi]); err != nil {
			t.Fatal(err)
		}
		if _, err := full.Ingest(evs[lo:hi]); err != nil {
			t.Fatal(err)
		}
		ii, err := inc.Publish()
		if err != nil {
			t.Fatal(err)
		}
		fi, err := full.Publish()
		if err != nil {
			t.Fatal(err)
		}
		if fi.Incremental {
			t.Fatal("FullRebuild updater reported an incremental publish")
		}
		gens++
		if gens > 1 && !ii.Incremental {
			t.Fatalf("publish %d did not take the incremental path", gens)
		}
		requireSameServed(t, inc.opts.Engine, full.opts.Engine, ii.Users, queries)

		af := filepath.Join(incDir, fmt.Sprintf("gen-%08d.v2.snap", ii.Generation))
		bf := filepath.Join(fullDir, fmt.Sprintf("gen-%08d.v2.snap", fi.Generation))
		ab, err := os.ReadFile(af)
		if err != nil {
			t.Fatal(err)
		}
		bb, err := os.ReadFile(bf)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ab, bb) {
			t.Fatalf("generation %d snapshot files differ (%d vs %d bytes)", ii.Generation, len(ab), len(bb))
		}
	}

	st := inc.Status()
	if st.IncrementalPublishes == 0 {
		t.Fatal("no publish took the incremental path")
	}
	if st.LastPublishPhases == nil || st.LastPublishPhases.Full {
		t.Fatalf("last publish phases missing or full: %+v", st.LastPublishPhases)
	}
	if st.LastPublishPhases.SectionsReused == 0 {
		t.Fatal("incremental publishes never reused a snapshot section")
	}
	if st.PublishLatency == nil || st.PublishLatency.Count == 0 {
		t.Fatal("publish latency histogram empty")
	}
	if st.PublishLag == nil || st.PublishLag.Count == 0 {
		t.Fatal("publish lag histogram empty")
	}
}

// TestIncrementalPublishWithGibbsMatches runs the same differential with
// periodic delta-Gibbs passes: a Gibbs publish forces the full path (the
// refined reference changed) and the incremental path must resume cleanly
// on the publish after it.
func TestIncrementalPublishWithGibbsMatches(t *testing.T) {
	g, m := testBase(t)
	mod := func(o *Options) {
		o.BaseGraph = g
		o.GibbsEvery = 3
		o.GibbsSweeps = 1
		o.Workers = 2
	}
	_, _, inc := newTestUpdater(t, g, m, mod)
	_, _, full := newTestUpdater(t, g, m, func(o *Options) {
		mod(o)
		o.FullRebuild = true
	})

	evs := randomEvents(g, m, 60, 7)
	const window = 10
	for lo := 0; lo < len(evs); lo += window {
		hi := min(lo+window, len(evs))
		if _, err := inc.Ingest(evs[lo:hi]); err != nil {
			t.Fatal(err)
		}
		if _, err := full.Ingest(evs[lo:hi]); err != nil {
			t.Fatal(err)
		}
		ii, err := inc.Publish()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := full.Publish(); err != nil {
			t.Fatal(err)
		}
		if ii.Gibbs && ii.Incremental {
			t.Fatal("a Gibbs publish must take the full path")
		}
		requireSameServed(t, inc.opts.Engine, full.opts.Engine, ii.Users, nil)
	}
	if inc.Status().IncrementalPublishes == 0 {
		t.Fatal("no publish took the incremental path between Gibbs passes")
	}
}

// TestIncrementalPublishMmapMatches covers the mapped promote path: the
// incremental updater serves from mmapped snapshot files whose indexes
// are patched from the previous mapped generation.
func TestIncrementalPublishMmapMatches(t *testing.T) {
	g, m := testBase(t)
	incDir := t.TempDir()
	mkEngine := func() *serve.Engine {
		e := serve.New(m, nil, serve.Options{Mmap: true})
		t.Cleanup(e.Close)
		return e
	}
	incEngine, fullEngine := mkEngine(), mkEngine()
	mkUpdater := func(e *serve.Engine, dir string, fullRebuild bool) *Updater {
		j, err := OpenJournal(filepath.Join(t.TempDir(), "events.wal"), JournalOptions{SyncEvery: 8})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { j.Close() })
		u, err := NewUpdater(j, Options{
			Engine: e, Base: m, WindowEvents: 4, FoldSweeps: 8, FoldSeed: 99,
			Dir: dir, Mmap: true, FullRebuild: fullRebuild,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(u.Close)
		return u
	}
	inc := mkUpdater(incEngine, incDir, false)
	full := mkUpdater(fullEngine, t.TempDir(), true)

	evs := randomEvents(g, m, 80, 11)
	const window = 8
	var lastInfo *PublishInfo
	for lo := 0; lo < len(evs); lo += window {
		hi := min(lo+window, len(evs))
		if _, err := inc.Ingest(evs[lo:hi]); err != nil {
			t.Fatal(err)
		}
		if _, err := full.Ingest(evs[lo:hi]); err != nil {
			t.Fatal(err)
		}
		ii, err := inc.Publish()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := full.Publish(); err != nil {
			t.Fatal(err)
		}
		lastInfo = ii
		requireSameServed(t, incEngine, fullEngine, ii.Users, [][]int32{g.Docs[0].Words[:2]})
	}
	if lastInfo == nil || !lastInfo.Incremental {
		t.Fatalf("mapped publishes never went incremental: %+v", lastInfo)
	}
}

// TestPruneSurvivesGenerationGap is the retention regression test: a gap
// in the gen-%08d sequence (here: one file removed externally, as a
// failed publish rolling the generation back also leaves) must not
// shield older snapshots from pruning. The pre-fix implementation
// counted down from the cut and stopped at the first missing file,
// leaking everything older than the gap forever.
func TestPruneSurvivesGenerationGap(t *testing.T) {
	dir := t.TempDir()
	for gen := uint64(1); gen <= 10; gen++ {
		if gen == 5 {
			continue // the planted gap
		}
		if err := os.WriteFile(store.GenPath(dir, gen), []byte("snap"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	u := &Updater{opts: Options{Dir: dir, KeepSnapshots: 3}}
	u.generation = 10
	u.pruneSnapshotsLocked()

	files, err := store.ScanGenerations(dir)
	if err != nil {
		t.Fatal(err)
	}
	var got []uint64
	for _, f := range files {
		got = append(got, f.Generation)
	}
	if want := []uint64{8, 9, 10}; !reflect.DeepEqual(got, want) {
		t.Fatalf("after pruning with a gap at 5: generations on disk = %v, want %v", got, want)
	}

	// Below the keep threshold nothing is pruned (and nothing panics on
	// the generation-underflow edge).
	low := &Updater{opts: Options{Dir: dir, KeepSnapshots: 3}}
	low.generation = 2
	low.pruneSnapshotsLocked()
	if files, _ := store.ScanGenerations(dir); len(files) != 3 {
		t.Fatalf("pruning below the keep threshold removed files: %v", files)
	}
}

// TestFriendsOnlyPublishReusesDocSections pins the doc-array publish
// headroom: a delta window containing only edge events among users with
// no stream documents must splice DOCC/DOCZ/DOCB from the previous
// snapshot (the extended model aliases the last published model's doc
// arrays), while staying byte-identical to a from-scratch rebuild.
func TestFriendsOnlyPublishReusesDocSections(t *testing.T) {
	g, m := testBase(t)
	incDir, fullDir := t.TempDir(), t.TempDir()
	_, _, inc := newTestUpdater(t, g, m, func(o *Options) { o.Dir = incDir })
	_, _, full := newTestUpdater(t, g, m, func(o *Options) {
		o.Dir = fullDir
		o.FullRebuild = true
	})

	publishBoth := func(evs []Event) *PublishInfo {
		t.Helper()
		if _, err := inc.Ingest(evs); err != nil {
			t.Fatal(err)
		}
		if _, err := full.Ingest(evs); err != nil {
			t.Fatal(err)
		}
		ii, err := inc.Publish()
		if err != nil {
			t.Fatal(err)
		}
		fi, err := full.Publish()
		if err != nil {
			t.Fatal(err)
		}
		af := filepath.Join(incDir, fmt.Sprintf("gen-%08d.v2.snap", ii.Generation))
		bf := filepath.Join(fullDir, fmt.Sprintf("gen-%08d.v2.snap", fi.Generation))
		ab, err := os.ReadFile(af)
		if err != nil {
			t.Fatal(err)
		}
		bb, err := os.ReadFile(bf)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ab, bb) {
			t.Fatalf("generation %d snapshot files differ (%d vs %d bytes)", ii.Generation, len(ab), len(bb))
		}
		return ii
	}

	// Two doc-bearing windows: the first publish is always full; the
	// second is incremental but must re-encode the grown doc arrays.
	publishBoth([]Event{
		{Type: EvAddDoc, User: 0, Time: 100, Words: g.Docs[0].Words},
		{Type: EvAddDoc, User: 1, Time: 110, Words: g.Docs[1].Words},
		{Type: EvAddEdge, User: 0, Target: 1},
	})
	publishBoth([]Event{
		{Type: EvAddDoc, User: 2, Time: 200, Words: g.Docs[2].Words},
	})
	withDocs := inc.Status().LastPublishPhases.SectionsReused
	if withDocs == 0 {
		t.Fatal("doc-bearing incremental publish reused no sections")
	}
	inc.mu.Lock()
	prev := inc.lastModel
	if inc.docsChanged {
		t.Fatal("docsChanged still set after publish")
	}
	inc.mu.Unlock()

	// Friends-only window: edges among base users that own no stream
	// documents. The fold refolds their membership rows but every doc
	// assignment stays put, so the doc sections ride along unchanged.
	publishBoth([]Event{
		{Type: EvAddEdge, User: 5, Target: 6},
		{Type: EvAddEdge, User: 7, Target: 8},
	})
	friendsOnly := inc.Status().LastPublishPhases.SectionsReused
	if friendsOnly < withDocs+3 {
		t.Fatalf("friends-only publish reused %d sections, want >= %d (doc windows reused %d; DOCC/DOCZ/DOCB should splice)",
			friendsOnly, withDocs+3, withDocs)
	}
	inc.mu.Lock()
	cur := inc.lastModel
	inc.mu.Unlock()
	if &cur.DocCommunity[0] != &prev.DocCommunity[0] ||
		&cur.DocTopic[0] != &prev.DocTopic[0] ||
		&cur.DocBucket[0] != &prev.DocBucket[0] {
		t.Fatal("friends-only publish rebuilt doc arrays instead of aliasing the last model's")
	}
}
