package stream

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// fuzzRecord frames one payload as a journal record.
func fuzzRecord(payload []byte) []byte {
	out := make([]byte, 0, len(payload)+8)
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	out = append(out, hdr[:]...)
	out = append(out, payload...)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
	return append(out, crc[:]...)
}

// FuzzJournal throws arbitrary bytes at the journal recovery and replay
// paths — the same pattern store's FuzzLoad uses for snapshots. The
// invariants: OpenJournal never panics and never reports more state than
// the file can back; whatever it recovers replays cleanly; and a
// subsequent append followed by a reopen preserves the recovered prefix
// plus the new record.
func FuzzJournal(f *testing.F) {
	// Seed corpus: empty file, bare header, valid records, and the classic
	// corruption shapes (truncation, bit flips, oversize length claims).
	f.Add([]byte{})
	f.Add([]byte(journalMagic))
	hdr := make([]byte, journalHdrLen)
	copy(hdr, journalMagic)
	f.Add(hdr)
	valid := append([]byte{}, hdr...)
	valid = append(valid, fuzzRecord(encodeEvent(nil, &Event{Type: EvAddUser, User: 5}))...)
	valid = append(valid, fuzzRecord(encodeEvent(nil, &Event{Type: EvAddDoc, User: 5, Time: 3, Words: []int32{1, 2, 3}}))...)
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	flipped := append([]byte{}, valid...)
	flipped[len(flipped)-6] ^= 0x10
	f.Add(flipped)
	oversize := append([]byte{}, hdr...)
	var big [4]byte
	binary.LittleEndian.PutUint32(big[:], maxRecordBytes+1)
	f.Add(append(oversize, big[:]...))
	badType := append([]byte{}, hdr...)
	f.Add(append(badType, fuzzRecord(encodeEvent(nil, &Event{Type: EventType(200), User: 1}))...))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "fuzz.wal")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		j, err := OpenJournal(path, JournalOptions{SyncEvery: -1})
		if err != nil {
			return // rejected outright: fine, as long as it did not panic
		}
		var recovered int
		if err := j.Replay(j.Base(), func(off uint64, ev Event) error {
			recovered++
			if off > j.Tail() {
				t.Fatalf("replay offset %d past tail %d", off, j.Tail())
			}
			return nil
		}); err != nil {
			t.Fatalf("recovered journal does not replay cleanly: %v", err)
		}
		if uint64(recovered) != j.Events() {
			t.Fatalf("replayed %d events, journal claims %d", recovered, j.Events())
		}
		ev := Event{Type: EvAddEdge, User: 1, Target: 2}
		if _, err := j.Append(&ev); err != nil {
			t.Fatalf("append after recovery failed: %v", err)
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
		j2, err := OpenJournal(path, JournalOptions{})
		if err != nil {
			t.Fatalf("reopen after recovery+append failed: %v", err)
		}
		defer j2.Close()
		if got := j2.Events(); got != uint64(recovered+1) {
			t.Fatalf("reopen sees %d events, want %d", got, recovered+1)
		}
	})
}
