package stream

import (
	"fmt"
	"io"
)

// WriteMetrics emits the updater's ingest/publish state in Prometheus
// text exposition format — the collector cmd/cpd-serve registers on the
// engine via AddMetricsCollector so /metrics covers the write path too.
// It reads only the statusMu-guarded caches (refreshed after every
// mutation), so a scrape never waits on a long-running publish or
// delta-Gibbs pass.
func (u *Updater) WriteMetrics(w io.Writer) {
	u.statusMu.Lock()
	st := u.statusCache
	pub := u.pubHistCache
	lag := u.lagHistCache
	u.statusMu.Unlock()

	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	igauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}

	igauge("cpd_ingest_generation", "Last published snapshot generation.", int64(st.Generation))
	igauge("cpd_ingest_users", "Users in the extended model (base + streamed).", int64(st.Users))
	igauge("cpd_ingest_pending_events", "Events applied in memory but not yet servable.", int64(st.PendingEvents))
	igauge("cpd_ingest_dirty_users", "Users awaiting a re-fold at the next publish.", int64(st.DirtyUsers))
	igauge("cpd_ingest_journal_bytes", "On-disk size of the event journal.", st.JournalBytes)
	counter("cpd_ingest_applied_events_total", "Events applied since the process started.", st.AppliedEvents)
	counter("cpd_publishes_total", "Snapshots published.", st.Publishes)
	counter("cpd_publish_full_rebuilds_total", "Publishes that rebuilt from scratch.", st.FullRebuilds)
	counter("cpd_publish_incremental_total", "Publishes that took the O(changed) path.", st.IncrementalPublishes)
	counter("cpd_gibbs_passes_total", "Delta-Gibbs refinement passes run.", st.GibbsPasses)
	counter("cpd_quality_runs_total", "Publishes scored by the quality layer.", st.QualityRuns)

	fmt.Fprint(w, "# HELP cpd_publish_latency_seconds Publish wall latency (journal sync through promote).\n# TYPE cpd_publish_latency_seconds histogram\n")
	pub.WriteProm(w, "cpd_publish_latency_seconds", "")
	fmt.Fprint(w, "# HELP cpd_publish_lag_seconds Event append to servable generation.\n# TYPE cpd_publish_lag_seconds histogram\n")
	lag.WriteProm(w, "cpd_publish_lag_seconds", "")
}
