package stream

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/hist"
	"repro/internal/quality"
	"repro/internal/serve"
	"repro/internal/shard"
	"repro/internal/socialgraph"
	"repro/internal/sparse"
	"repro/internal/store"
)

// Options configures an Updater. Engine is required; Base defaults to the
// target slot's current snapshot (pinned for the updater's lifetime).
type Options struct {
	// Engine is the serving engine whose named slot the updater publishes
	// into and whose fold-in worker pool it borrows.
	Engine *serve.Engine
	// Snapshot is the target slot name (default serve.DefaultSnapshot).
	Snapshot string
	// Base is the frozen generation-0 model every fold-in runs against.
	// nil acquires the target slot's current snapshot instead; the
	// updater then keeps that snapshot pinned until Close, so a mapped
	// base can never be unmapped under it.
	Base *core.Model
	// Vocab labels published snapshots (nil keeps free-text queries off).
	Vocab *corpus.Vocabulary
	// Dir, when non-empty, is where published v2 snapshot files land
	// (gen-%08d.v2.snap); empty publishes in-memory only.
	Dir string
	// KeepSnapshots bounds how many published snapshot files are retained
	// in Dir (default 3; older generations are pruned).
	KeepSnapshots int
	// Shards, when > 1 (and Dir is set), additionally publishes each
	// generation as a sharded group (internal/shard): a CRC'd manifest, a
	// global file and Shards per-user-range shard files, which
	// shard-owning replicas fetch instead of the full snapshot. Shard
	// files whose users did not change between generations are hard-linked
	// rather than re-encoded, keeping the extra publish work O(changed).
	Shards int

	// WindowEvents is the delta window: MaybePublish (and Run) publish
	// once at least this many events are pending (default 256).
	WindowEvents int
	// Interval is Run's publish deadline: pending events are published at
	// latest this long after the previous publish even if the window is
	// not full (default 2s).
	Interval time.Duration
	// FoldSweeps is the Gibbs sweep count per fold-in (default 20).
	FoldSweeps int
	// FoldSeed is the base of the per-user fold-in seeds. Each user's seed
	// is a pure function of (FoldSeed, user id), which is what makes
	// incremental replay bit-identical to batch fold-in.
	FoldSeed uint64

	// GibbsEvery, when > 0 (and BaseGraph is set), runs a resumable
	// delta-Gibbs pass on every GibbsEvery-th publish: the merged
	// base+stream graph is re-sampled with only the users touched since
	// the last pass marked dirty, re-estimating their rows and the global
	// profiles. 0 disables (pure fold-in mode — the replay-equals-batch
	// regime).
	GibbsEvery int
	// GibbsSweeps is the EM iteration count per delta pass (default 2).
	GibbsSweeps int
	// BaseGraph is the training graph of Base, required for delta-Gibbs:
	// it must match the base model exactly (same users, documents, words).
	BaseGraph *socialgraph.Graph
	// Workers sizes the delta-Gibbs engine pool (0 = NumCPU).
	Workers int

	// Mmap promotes published snapshot files through the engine's mapped
	// loader (requires Dir and an engine built with Options.Mmap).
	Mmap bool
	// FullRebuild disables incremental publish maintenance: every publish
	// reassembles the extended model from scratch, rebuilds the serving
	// indexes over every user and word, and re-encodes every snapshot
	// section. The incremental path is bit-identical to this one — the
	// flag is the differential-test baseline and an operational escape
	// hatch, not a correctness knob.
	FullRebuild bool
	// CompactBytes triggers checkpoint+compaction from Run once the
	// journal file exceeds this size (default 4 MiB; negative disables).
	CompactBytes int64

	// Quality, when > 0, scores every Quality-th publish with the
	// structural metrics of internal/quality (modularity, coverage,
	// conductance, size distribution, drift vs the previous scored
	// generation) and records the report into the engine's bounded
	// history (/api/quality, /metrics). 0 disables — the knob exists
	// because scoring is O(users + edges) on the publish path.
	Quality int
	// QualityPLP additionally runs the parallel label-propagation
	// baseline on the merged base+stream friendship edges each time
	// quality is scored, recording it as the comparison row. Needs edges
	// (BaseGraph and/or streamed add-edge events) to say anything.
	QualityPLP bool
}

func (o Options) withDefaults() Options {
	if o.Snapshot == "" {
		o.Snapshot = serve.DefaultSnapshot
	}
	if o.WindowEvents <= 0 {
		o.WindowEvents = 256
	}
	if o.Interval <= 0 {
		o.Interval = 2 * time.Second
	}
	if o.FoldSweeps <= 0 {
		o.FoldSweeps = 20
	}
	if o.GibbsSweeps <= 0 {
		o.GibbsSweeps = 2
	}
	if o.KeepSnapshots <= 0 {
		o.KeepSnapshots = 3
	}
	if o.CompactBytes == 0 {
		o.CompactBytes = 4 << 20
	}
	return o
}

// userState is one stream-touched user's accumulated corpus.
type userState struct {
	docs    []int32 // indices into Updater.docs
	friends []int32 // friend user ids, arrival order, deduplicated
	dirty   bool    // needs re-folding at the next publish
}

// Status is the freshness/lag gauge surfaced on /api/ingest/status and
// inside /api/stats.
type Status struct {
	Snapshot   string `json:"snapshot"`
	Generation uint64 `json:"generation"`
	BaseUsers  int    `json:"baseUsers"`
	Users      int    `json:"users"`

	StreamDocs  int `json:"streamDocs"`
	StreamEdges int `json:"streamEdges"`
	StreamDiffs int `json:"streamDiffs"`

	// PendingEvents is the publish lag: events applied in memory but not
	// yet visible to queries. JournalTail/Watermark are the corresponding
	// journal offsets.
	PendingEvents int    `json:"pendingEvents"`
	DirtyUsers    int    `json:"dirtyUsers"`
	JournalTail   uint64 `json:"journalTail"`
	Watermark     uint64 `json:"watermark"`
	JournalBytes  int64  `json:"journalBytes"`

	AppliedEvents   uint64 `json:"appliedEvents"`
	Publishes       uint64 `json:"publishes"`
	GibbsPasses     uint64 `json:"gibbsPasses"`
	LastPublishUnix int64  `json:"lastPublishUnix,omitempty"`
	LastPublishMs   int64  `json:"lastPublishMs,omitempty"`

	// Publish cost introspection: how many publishes took the
	// O(changed) incremental path vs a full rebuild, the per-phase
	// timing of the most recent publish, and histogram summaries of
	// publish wall latency and publish lag (event append → servable
	// generation).
	FullRebuilds         uint64          `json:"fullRebuilds"`
	IncrementalPublishes uint64          `json:"incrementalPublishes"`
	LastPublishPhases    *PublishPhases  `json:"lastPublishPhases,omitempty"`
	PublishLatency       *LatencySummary `json:"publishLatency,omitempty"`
	PublishLag           *LatencySummary `json:"publishLag,omitempty"`
	// QualityRuns counts publishes scored by the quality layer
	// (Options.Quality); LastQuality is the most recent report.
	QualityRuns uint64          `json:"qualityRuns,omitempty"`
	LastQuality *quality.Report `json:"lastQuality,omitempty"`
	// LastError is the most recent publish/checkpoint failure the Run
	// loop retried past ("" when healthy).
	LastError string `json:"lastError,omitempty"`
	Draining  bool   `json:"draining"`
}

// PublishInfo describes one completed publish.
type PublishInfo struct {
	Generation uint64 `json:"generation"`
	Version    uint64 `json:"version"`
	Users      int    `json:"users"`
	Folded     int    `json:"folded"`
	Gibbs      bool   `json:"gibbs"`
	Path       string `json:"path,omitempty"`
	// Incremental marks a publish that took the O(changed) path: patched
	// extended model, patched serving indexes, section-reusing save.
	Incremental bool `json:"incremental,omitempty"`
	// SectionsReused counts v2 sections spliced byte-for-byte from the
	// previous snapshot file instead of re-encoded (0 without Dir).
	SectionsReused int `json:"sectionsReused,omitempty"`
}

// ErrDraining reports an ingest attempted after StopIngest.
var ErrDraining = fmt.Errorf("stream: updater is draining; ingest is closed")

// ErrJournal marks a server-side journal write failure during Ingest —
// distinct from a validation error: the batch may be PARTIALLY journaled
// and applied (everything before the failing event), so a retry of the
// whole batch would duplicate that prefix. The HTTP surface maps it to
// 500, not 400.
var ErrJournal = fmt.Errorf("stream: journal write failed")

// Updater drains journaled events into refreshed snapshots. All methods
// are safe for concurrent use; Publish is internally serialized with
// Ingest.
type Updater struct {
	opts Options
	j    *Journal

	releaseBase func() // pin on the acquired base snapshot (may be nil)

	mu        sync.Mutex
	base      *core.Model          // generation-0 reference (frozen)
	refined   *core.Model          // latest delta-Gibbs output (== base until a pass runs)
	baseUsers int                  // base.NumUsers
	baseDocs  int                  // len(base.DocCommunity)
	users     map[int32]*userState // stream-touched users (new and changed)
	newUsers  int                  // users added above baseUsers
	docs      []socialgraph.Doc    // stream documents, global user ids
	docC      []int32              // latest assignment per stream doc
	docZ      []int32
	edges     []socialgraph.FriendLink
	diffs     []socialgraph.DiffLink // global doc ids
	foldPi    map[int32][]float64    // latest folded membership row per user

	pending   int    // events applied since the last publish
	pendingTo uint64 // journal offset covering the applied events

	generation    uint64
	applied       uint64
	publishes     uint64
	gibbsPasses   uint64
	lastPublish   time.Time
	lastPublishMs int64
	lastError     string
	draining      bool
	// published marks that THIS process has promoted a snapshot into the
	// engine. A restored checkpoint carries generation > 0, but the engine
	// slot still holds whatever the server loaded from disk — the first
	// Publish after a restart must rebuild even with nothing pending.
	published bool

	// Incremental-publish state (publish.go): the extended model behind
	// the last successful promote, the refined reference it was built
	// from, the engine version it produced, the section manifest of its
	// snapshot file, and the user rows re-folded since that promote
	// (carried across failed attempts so a retried publish cannot lose a
	// row that was folded before the failure).
	lastModel   *core.Model
	lastRef     *core.Model
	lastVersion uint64
	manifest    *store.SectionManifest
	pendingRows []int32
	// sharder, when Options.Shards > 1, re-publishes each generation as a
	// sharded group next to the full snapshot file (hard-linking clean
	// shard files across generations).
	sharder *shard.Publisher
	// docsChanged marks that the stream documents' assignment arrays
	// (docC/docZ) or their length changed since lastModel was built. While
	// false, extendedDocArraysLocked hands out lastModel's own doc arrays
	// instead of fresh copies, so SaveV2Reusing's slice-identity check can
	// splice the DOCC/DOCZ/DOCB sections byte-for-byte — the publish
	// headroom for friends-only delta windows, whose folds move membership
	// rows but leave every document assignment where it was.
	docsChanged bool

	fullRebuilds         uint64
	incrementalPublishes uint64
	lastPhases           PublishPhases
	pubHist              hist.Hist   // publish wall latency
	lagHist              hist.Hist   // event append -> servable generation
	lagPending           []lagSample // applied batches awaiting a publish

	// Quality scoring state (Options.Quality): the previous scored
	// generation's hard assignments (drift baseline), the latest report,
	// and how many publishes were scored.
	prevQualityAssign []int32
	lastQuality       *quality.Report
	qualityRuns       uint64

	// statusMu guards statusCache (and the histogram copies WriteMetrics
	// reads), refreshed after every mutation so Status() and the /metrics
	// collector never have to wait on a long-running publish.
	statusMu     sync.Mutex
	statusCache  Status
	pubHistCache hist.Hist
	lagHistCache hist.Hist

	notify chan struct{} // pending >= window, consumed by Run
}

// NewUpdater builds an updater over an opened journal and restores its
// state: from the checkpoint sidecar when one matches the journal's
// watermark, else by replaying the journal from its base (marking every
// replayed doc-owning user dirty, so the first publish rebuilds their
// rows). Events past the watermark are applied and left pending.
func NewUpdater(j *Journal, opts Options) (*Updater, error) {
	opts = opts.withDefaults()
	if opts.Engine == nil {
		return nil, fmt.Errorf("stream: Options.Engine is required")
	}
	if opts.GibbsEvery > 0 && opts.BaseGraph == nil {
		return nil, fmt.Errorf("stream: GibbsEvery needs Options.BaseGraph")
	}
	u := &Updater{
		opts:   opts,
		j:      j,
		users:  make(map[int32]*userState),
		foldPi: make(map[int32][]float64),
		notify: make(chan struct{}, 1),
	}
	if opts.Shards > 1 {
		if opts.Dir == "" {
			return nil, fmt.Errorf("stream: Options.Shards needs Options.Dir")
		}
		sharder, err := shard.NewPublisher(opts.Dir, opts.Shards)
		if err != nil {
			return nil, err
		}
		u.sharder = sharder
	}
	u.base = opts.Base
	if u.base == nil {
		s, release, err := opts.Engine.AcquireNamed(opts.Snapshot)
		if err != nil {
			return nil, fmt.Errorf("stream: acquiring base snapshot: %w", err)
		}
		u.base = s.Model
		u.releaseBase = release
	}
	u.refined = u.base
	u.baseUsers = u.base.NumUsers
	u.baseDocs = len(u.base.DocCommunity)
	if g := opts.BaseGraph; g != nil {
		if g.NumUsers != u.baseUsers || len(g.Docs) != u.baseDocs || g.NumWords != u.base.NumWords {
			u.close()
			return nil, fmt.Errorf("stream: BaseGraph (%d users, %d docs, %d words) does not match the base model (%d users, %d docs, %d words)",
				g.NumUsers, len(g.Docs), g.NumWords, u.baseUsers, u.baseDocs, u.base.NumWords)
		}
	}
	from, err := u.restoreCheckpoint()
	if err != nil {
		u.close()
		return nil, err
	}
	u.pendingTo = from
	if err := j.Replay(from, func(off uint64, ev Event) error {
		if aerr := u.applyLocked(&ev); aerr != nil {
			return fmt.Errorf("stream: journal replay at offset %d: %w", off, aerr)
		}
		u.pendingTo = off
		u.pending++
		u.applied++
		return nil
	}); err != nil {
		u.close()
		return nil, err
	}
	if from == j.Base() {
		// No checkpoint: everything replayed is unpublished as far as this
		// process knows — every doc-owning stream user re-folds on the
		// first publish, rebuilding the rows a previous process had.
		for _, us := range u.users {
			us.dirty = true
		}
	}
	u.refreshStatusLocked()
	return u, nil
}

// close releases held resources (not the journal, which the caller owns).
func (u *Updater) close() {
	if u.releaseBase != nil {
		u.releaseBase()
		u.releaseBase = nil
	}
}

// Close releases the base-snapshot pin. The journal is the caller's to
// close.
func (u *Updater) Close() { u.close() }

// StopIngest makes every further Ingest fail with ErrDraining — the first
// step of a graceful drain.
func (u *Updater) StopIngest() {
	u.mu.Lock()
	u.draining = true
	u.refreshStatusLocked()
	u.mu.Unlock()
}

// Ingest validates evs against the current corpus, resolves AddUser ids,
// appends everything to the journal and applies it in memory. It returns
// the resolved events (AddUser events carry their assigned ids). The batch
// is atomic: on a validation error nothing is journaled or applied.
func (u *Updater) Ingest(evs []Event) ([]Event, error) {
	u.mu.Lock()
	defer u.mu.Unlock()
	if u.draining {
		return nil, ErrDraining
	}
	// Validate the whole batch against a speculative view before touching
	// the journal.
	resolved := make([]Event, len(evs))
	specUsers := u.baseUsers + u.newUsers
	specDocs := u.baseDocs + len(u.docs)
	for i := range evs {
		ev := evs[i]
		switch ev.Type {
		case EvAddUser:
			next := int32(specUsers)
			if ev.User > 0 && ev.User != next {
				return nil, fmt.Errorf("stream: event %d adds user %d, expected the next id %d", i, ev.User, next)
			}
			ev.User = next
			specUsers++
		case EvAddEdge:
			if err := u.checkUser(int(ev.User), specUsers); err != nil {
				return nil, fmt.Errorf("stream: event %d: %w", i, err)
			}
			if err := u.checkUser(int(ev.Target), specUsers); err != nil {
				return nil, fmt.Errorf("stream: event %d: %w", i, err)
			}
			if ev.User == ev.Target {
				return nil, fmt.Errorf("stream: event %d is a self-edge on user %d", i, ev.User)
			}
		case EvAddDoc, EvDiffusion:
			if err := u.checkUser(int(ev.User), specUsers); err != nil {
				return nil, fmt.Errorf("stream: event %d: %w", i, err)
			}
			if len(ev.Words) == 0 {
				return nil, fmt.Errorf("stream: event %d carries an empty document", i)
			}
			if len(ev.Words) > MaxEventWords {
				return nil, fmt.Errorf("stream: event %d has %d words (limit %d)", i, len(ev.Words), MaxEventWords)
			}
			for _, w := range ev.Words {
				if w < 0 || int(w) >= u.base.NumWords {
					return nil, fmt.Errorf("stream: event %d has out-of-vocabulary word %d (|W|=%d)", i, w, u.base.NumWords)
				}
			}
			if ev.Type == EvDiffusion {
				if ev.Target < 0 || int(ev.Target) >= specDocs {
					return nil, fmt.Errorf("stream: event %d diffuses unknown document %d (have %d)", i, ev.Target, specDocs)
				}
			}
			specDocs++
		default:
			return nil, fmt.Errorf("stream: event %d has unknown type %d", i, ev.Type)
		}
		resolved[i] = ev
	}
	for i := range resolved {
		off, err := u.j.Append(&resolved[i])
		if err != nil {
			u.refreshStatusLocked()
			return nil, fmt.Errorf("%w: event %d of %d: %v", ErrJournal, i, len(resolved), err)
		}
		if aerr := u.applyLocked(&resolved[i]); aerr != nil {
			// Cannot happen after validation; surface loudly if it does.
			u.refreshStatusLocked()
			return nil, fmt.Errorf("stream: internal error applying validated event: %w", aerr)
		}
		u.pendingTo = off
		u.pending++
		u.applied++
	}
	u.recordLagLocked()
	u.refreshStatusLocked()
	if u.pending >= u.opts.WindowEvents {
		select {
		case u.notify <- struct{}{}:
		default:
		}
	}
	return resolved, nil
}

func (u *Updater) checkUser(id, specUsers int) error {
	if id < 0 || id >= specUsers {
		return fmt.Errorf("unknown user %d (have %d)", id, specUsers)
	}
	return nil
}

// user returns (creating if needed) the stream state of a user.
func (u *Updater) user(id int32) *userState {
	us := u.users[id]
	if us == nil {
		us = &userState{}
		u.users[id] = us
	}
	return us
}

// applyLocked folds one validated event into the corpus state.
func (u *Updater) applyLocked(ev *Event) error {
	switch ev.Type {
	case EvAddUser:
		next := int32(u.baseUsers + u.newUsers)
		if ev.User != next {
			return fmt.Errorf("add-user id %d, expected %d", ev.User, next)
		}
		u.newUsers++
		u.user(ev.User)
	case EvAddEdge:
		total := u.baseUsers + u.newUsers
		if int(ev.User) >= total || int(ev.Target) >= total || ev.User < 0 || ev.Target < 0 || ev.User == ev.Target {
			return fmt.Errorf("bad edge %d->%d", ev.User, ev.Target)
		}
		u.edges = append(u.edges, socialgraph.FriendLink{U: ev.User, V: ev.Target})
		for _, id := range [2]int32{ev.User, ev.Target} {
			us := u.user(id)
			if !containsInt32(us.friends, other(id, ev.User, ev.Target)) {
				us.friends = append(us.friends, other(id, ev.User, ev.Target))
			}
			us.dirty = true
		}
	case EvAddDoc, EvDiffusion:
		total := u.baseUsers + u.newUsers
		if int(ev.User) >= total || ev.User < 0 || len(ev.Words) == 0 {
			return fmt.Errorf("bad document event for user %d", ev.User)
		}
		docID := int32(u.baseDocs + len(u.docs))
		if ev.Type == EvDiffusion {
			if ev.Target < 0 || ev.Target >= docID {
				return fmt.Errorf("diffusion of unknown document %d", ev.Target)
			}
			u.diffs = append(u.diffs, socialgraph.DiffLink{I: docID, J: ev.Target, T: ev.Time})
		}
		u.docs = append(u.docs, socialgraph.Doc{User: ev.User, Time: ev.Time, Words: ev.Words})
		u.docC = append(u.docC, 0)
		u.docZ = append(u.docZ, 0)
		u.docsChanged = true
		us := u.user(ev.User)
		us.docs = append(us.docs, docID)
		us.dirty = true
	default:
		return fmt.Errorf("unknown event type %d", ev.Type)
	}
	return nil
}

func other(self, a, b int32) int32 {
	if self == a {
		return b
	}
	return a
}

func containsInt32(xs []int32, v int32) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// Model assembles and returns the current extended model — the state the
// next publish would promote. The returned model is freshly built and
// owned by the caller (its global blocks alias the frozen reference).
func (u *Updater) Model() *core.Model {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.buildExtendedLocked()
}

// Pending returns the number of applied-but-unpublished events.
func (u *Updater) Pending() int {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.pending
}

// Generation returns the last published generation number.
func (u *Updater) Generation() uint64 {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.generation
}

// Status returns the freshness/lag gauge. It reads a cache refreshed
// after every mutation instead of taking the updater lock, so monitoring
// (/api/ingest/status, /api/stats) stays responsive during a long
// publish or delta-Gibbs pass — at the cost of reporting the state as of
// the last completed mutation.
func (u *Updater) Status() Status {
	u.statusMu.Lock()
	defer u.statusMu.Unlock()
	return u.statusCache
}

// refreshStatusLocked recomputes the status cache; callers hold u.mu. The
// raw publish/lag histograms are copied alongside so WriteMetrics (the
// /metrics collector) never has to wait on a long-running publish either.
func (u *Updater) refreshStatusLocked() {
	st := u.statusLocked()
	u.statusMu.Lock()
	u.statusCache = st
	u.pubHistCache = u.pubHist
	u.lagHistCache = u.lagHist
	u.statusMu.Unlock()
}

func (u *Updater) statusLocked() Status {
	dirty := 0
	for _, us := range u.users {
		if us.dirty {
			dirty++
		}
	}
	st := Status{
		Snapshot:      u.opts.Snapshot,
		Generation:    u.generation,
		BaseUsers:     u.baseUsers,
		Users:         u.baseUsers + u.newUsers,
		StreamDocs:    len(u.docs),
		StreamEdges:   len(u.edges),
		StreamDiffs:   len(u.diffs),
		PendingEvents: u.pending,
		DirtyUsers:    dirty,
		JournalTail:   u.j.Tail(),
		Watermark:     u.j.Watermark(),
		JournalBytes:  u.j.SizeBytes(),
		AppliedEvents: u.applied,
		Publishes:     u.publishes,
		GibbsPasses:   u.gibbsPasses,
		Draining:      u.draining,
	}
	if !u.lastPublish.IsZero() {
		st.LastPublishUnix = u.lastPublish.Unix()
		st.LastPublishMs = u.lastPublishMs
	}
	st.FullRebuilds = u.fullRebuilds
	st.IncrementalPublishes = u.incrementalPublishes
	if u.lastPhases.TotalMicros > 0 {
		ph := u.lastPhases
		st.LastPublishPhases = &ph
	}
	st.PublishLatency = histSummary(&u.pubHist)
	st.PublishLag = histSummary(&u.lagHist)
	st.QualityRuns = u.qualityRuns
	st.LastQuality = u.lastQuality
	st.LastError = u.lastError
	return st
}

// dirtyUsersLocked lists dirty users in ascending id order — the fixed
// fold order determinism depends on.
func (u *Updater) dirtyUsersLocked() []int32 {
	var ids []int32
	for id, us := range u.users {
		if us.dirty {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// foldDirtyLocked re-infers every dirty user with at least one stream
// document through the serving engine's fold-in pool, against the current
// slot snapshot — whose Φ/Θ and base-user rows are bit-identical to the
// frozen base until a delta-Gibbs pass re-estimates them. A changed
// TRAINED user folds over their full history when the base graph is
// available (trained documents + streamed documents); without it, only
// the streamed documents carry evidence — a documented degradation, not
// a silent one. Users without documents stay on their previous row
// (edges alone cannot move a membership off the prior). Dirty flags
// clear on success.
func (u *Updater) foldDirtyLocked(ids []int32) (int, error) {
	var reqs []*serve.FoldInRequest
	var reqUsers []int32
	var reqSkip []int // base-graph documents prepended per request
	for _, id := range ids {
		us := u.users[id]
		if len(us.docs) == 0 {
			us.dirty = false
			continue
		}
		req := &serve.FoldInRequest{
			Docs:   make([][]int32, 0, len(us.docs)),
			Seed:   u.opts.FoldSeed ^ (uint64(uint32(id))*0x9E3779B97F4A7C15 + 0x1CE),
			Sweeps: u.opts.FoldSweeps,
		}
		// A trained user's re-fold keeps their training-corpus evidence
		// when we have it, so one streamed document cannot collapse a
		// 20-document posterior.
		if int(id) < u.baseUsers && u.opts.BaseGraph != nil {
			for _, d := range u.opts.BaseGraph.UserDocs(int(id)) {
				req.Docs = append(req.Docs, u.opts.BaseGraph.Docs[d].Words)
			}
		}
		skip := len(req.Docs)
		for _, d := range us.docs {
			req.Docs = append(req.Docs, u.docs[d-int32(u.baseDocs)].Words)
		}
		// Fold-in conditions on trained neighbours only: links to other
		// stream users wait for the delta-Gibbs pass.
		for _, f := range us.friends {
			if int(f) < u.baseUsers {
				req.Friends = append(req.Friends, f)
			}
		}
		reqs = append(reqs, req)
		reqUsers = append(reqUsers, id)
		reqSkip = append(reqSkip, skip)
	}
	if len(reqs) == 0 {
		return 0, nil
	}
	results, errs := u.opts.Engine.FoldInBatchNamed(u.opts.Snapshot, reqs)
	for i, err := range errs {
		if err != nil {
			return 0, fmt.Errorf("stream: folding user %d in: %w", reqUsers[i], err)
		}
	}
	for i, res := range results {
		id := reqUsers[i]
		us := u.users[id]
		u.foldPi[id] = res.Pi
		for k, d := range us.docs {
			c, z := res.DocCommunity[reqSkip[i]+k], res.DocTopic[reqSkip[i]+k]
			// Write-if-different keeps docsChanged honest: a re-fold that
			// lands every document where it already was (the common case for
			// an edge-only dirty window) must not spoil doc-array reuse.
			if j := d - int32(u.baseDocs); u.docC[j] != c || u.docZ[j] != z {
				u.docC[j] = c
				u.docZ[j] = z
				u.docsChanged = true
			}
		}
		us.dirty = false
	}
	return len(reqs), nil
}

// gibbsPassLocked runs the resumable delta-Gibbs refinement: resume a
// sampler from the current extended model on the merged base+stream
// graph, sweep only the users touched since the last pass, and adopt the
// re-estimated model as the new reference for base rows and global
// profiles. Deterministic per (options, generation).
func (u *Updater) gibbsPassLocked() error {
	g, err := u.mergedGraphLocked()
	if err != nil {
		return err
	}
	m0 := u.buildExtendedLocked()
	eng, err := core.NewEngineFromModel(g, m0, core.ResumeOptions{
		Workers: u.opts.Workers,
		Seed:    u.opts.FoldSeed + 0xD1B5 + u.generation,
	})
	if err != nil {
		return err
	}
	defer eng.Close()
	dirty := make([]bool, g.NumUsers)
	for id := range u.users {
		dirty[id] = true
	}
	if len(u.users) > 0 {
		if err := eng.SetDirty(dirty); err != nil {
			return err
		}
	}
	model, _, err := eng.RunEM(u.opts.GibbsSweeps)
	if err != nil {
		return err
	}
	u.refined = model
	u.gibbsPasses++
	// The refined model is now authoritative for every user: fold rows
	// are superseded, and stream-doc assignments continue from the
	// re-sampled chain.
	u.foldPi = make(map[int32][]float64)
	for i := range u.docs {
		u.docC[i] = model.DocCommunity[u.baseDocs+i]
		u.docZ[i] = model.DocTopic[u.baseDocs+i]
	}
	u.docsChanged = true
	return nil
}

// mergedGraphLocked assembles base graph + stream corpus.
func (u *Updater) mergedGraphLocked() (*socialgraph.Graph, error) {
	bg := u.opts.BaseGraph
	if bg == nil {
		return nil, fmt.Errorf("stream: no base graph")
	}
	g := &socialgraph.Graph{
		NumUsers: u.baseUsers + u.newUsers,
		NumWords: bg.NumWords,
		NumAttrs: bg.NumAttrs,
		Docs:     append(append(make([]socialgraph.Doc, 0, len(bg.Docs)+len(u.docs)), bg.Docs...), u.docs...),
		Friends:  append(append(make([]socialgraph.FriendLink, 0, len(bg.Friends)+len(u.edges)), bg.Friends...), u.edges...),
		Diffs:    append(append(make([]socialgraph.DiffLink, 0, len(bg.Diffs)+len(u.diffs)), bg.Diffs...), u.diffs...),
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("stream: merged graph invalid: %w", err)
	}
	return g, nil
}

// buildExtendedLocked assembles the next published model: the refined
// reference's rows and global blocks, overridden by the latest fold
// results, extended over the full stream population.
func (u *Updater) buildExtendedLocked() *core.Model {
	ref := u.refined
	C := ref.Cfg.NumCommunities
	total := u.baseUsers + u.newUsers
	m := &core.Model{
		Cfg:        ref.Cfg,
		NumUsers:   total,
		NumWords:   ref.NumWords,
		NumBuckets: ref.NumBuckets,
		NumAttrs:   ref.NumAttrs,
		Pi:         sparse.NewDense(total, C),
		Theta:      ref.Theta,
		Phi:        ref.Phi,
		Eta:        ref.Eta,
		Nu:         ref.Nu,
		PopFreq:    ref.PopFreq,
		Xi:         ref.Xi,
	}
	uniform := 1 / float64(C)
	for id := 0; id < total; id++ {
		dst := m.Pi.Row(id)
		if row, ok := u.foldPi[int32(id)]; ok {
			copy(dst, row)
		} else if id < ref.NumUsers {
			copy(dst, ref.Pi.Row(id))
		} else {
			// A declared user with no documents yet: the smoothed prior.
			for c := range dst {
				dst[c] = uniform
			}
		}
	}
	u.extendedDocArraysLocked(m, ref)
	m.Rehydrate()
	return m
}

// extendedDocArraysLocked fills m's per-document assignment arrays: the
// refined reference's base-corpus assignments followed by the stream
// documents' latest fold/Gibbs assignments. Stream documents' buckets
// default to 0: the popularity factor is re-estimated only by delta-Gibbs
// passes, which recompute buckets from the merged graph's real time
// range. Shared by the full and patched extended-model builders — the doc
// arrays are O(stream) memcpys either way.
func (u *Updater) extendedDocArraysLocked(m, ref *core.Model) {
	// Friends-only fast path: when no stream document was added or
	// reassigned since the last published model was built against this
	// same refined reference, hand out that model's arrays verbatim.
	// SaveV2Reusing recognizes them by identity and splices the
	// DOCC/DOCZ/DOCB sections from the previous file — and nothing ever
	// mutates a published model's arrays in place (publishes that would
	// change them build fresh slices here), so the bytes are still good.
	if !u.docsChanged && u.lastModel != nil && ref == u.lastRef &&
		len(u.lastModel.DocCommunity) == u.baseDocs+len(u.docs) {
		m.DocCommunity = u.lastModel.DocCommunity
		m.DocTopic = u.lastModel.DocTopic
		m.DocBucket = u.lastModel.DocBucket
		return
	}
	m.DocCommunity = make([]int32, u.baseDocs+len(u.docs))
	m.DocTopic = make([]int32, u.baseDocs+len(u.docs))
	m.DocBucket = make([]int, u.baseDocs+len(u.docs))
	copy(m.DocCommunity, ref.DocCommunity[:min(len(ref.DocCommunity), u.baseDocs)])
	copy(m.DocTopic, ref.DocTopic[:min(len(ref.DocTopic), u.baseDocs)])
	copy(m.DocBucket, ref.DocBucket[:min(len(ref.DocBucket), u.baseDocs)])
	copy(m.DocCommunity[u.baseDocs:], u.docC)
	copy(m.DocTopic[u.baseDocs:], u.docZ)
}

// Run is the background publish loop: it publishes whenever a delta
// window fills (promptly, via Ingest's notification), at latest every
// Interval while events are pending, and checkpoints+compacts the journal
// when it outgrows CompactBytes. A failed publish or checkpoint is
// recorded in Status().LastError and retried on the next tick — the loop
// only returns when ctx is cancelled. The caller typically follows with
// Drain.
func (u *Updater) Run(ctx context.Context) error {
	t := time.NewTicker(u.opts.Interval)
	defer t.Stop()
	setErr := func(err error) {
		u.mu.Lock()
		if err != nil {
			u.lastError = err.Error()
		} else {
			u.lastError = ""
		}
		u.refreshStatusLocked()
		u.mu.Unlock()
	}
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-u.notify:
		case <-t.C:
		}
		if u.Pending() > 0 {
			_, err := u.Publish()
			setErr(err)
			if err != nil {
				continue
			}
		}
		if u.opts.CompactBytes > 0 && u.j.SizeBytes() > u.opts.CompactBytes {
			setErr(u.Checkpoint())
		}
	}
}

// --- checkpoint ----------------------------------------------------------

// checkpointState is the serialized corpus state at a watermark.
type checkpointState struct {
	Offset     uint64                   `json:"offset"`
	Generation uint64                   `json:"generation"`
	Applied    uint64                   `json:"applied"`
	Publishes  uint64                   `json:"publishes"`
	NewUsers   int                      `json:"newUsers"`
	Users      map[int32]*ckptUser      `json:"users"`
	Docs       []socialgraph.Doc        `json:"docs"`
	DocC       []int32                  `json:"docC"`
	DocZ       []int32                  `json:"docZ"`
	Edges      []socialgraph.FriendLink `json:"edges"`
	Diffs      []socialgraph.DiffLink   `json:"diffs"`
	FoldPi     map[int32][]float64      `json:"foldPi"`
}

type ckptUser struct {
	Docs    []int32 `json:"docs"`
	Friends []int32 `json:"friends"`
	Dirty   bool    `json:"dirty"`
}

const checkpointMagic = "CPDSTAT1"

func (u *Updater) statePath() string { return u.j.path + ".state" }

// Checkpoint publishes anything pending, snapshots the accumulated corpus
// to the sidecar state file, and compacts the journal down to the
// watermark — the bound on journal growth for long-running ingest.
func (u *Updater) Checkpoint() error {
	u.mu.Lock()
	defer u.mu.Unlock()
	if u.pending > 0 {
		if _, err := u.publishLocked(); err != nil {
			return err
		}
	}
	st := checkpointState{
		Offset:     u.j.Watermark(),
		Generation: u.generation,
		Applied:    u.applied,
		Publishes:  u.publishes,
		NewUsers:   u.newUsers,
		Users:      make(map[int32]*ckptUser, len(u.users)),
		Docs:       u.docs,
		DocC:       u.docC,
		DocZ:       u.docZ,
		Edges:      u.edges,
		Diffs:      u.diffs,
		FoldPi:     u.foldPi,
	}
	for id, us := range u.users {
		st.Users[id] = &ckptUser{Docs: us.docs, Friends: us.friends, Dirty: us.dirty}
	}
	payload, err := json.Marshal(&st)
	if err != nil {
		return fmt.Errorf("stream: encoding checkpoint: %w", err)
	}
	buf := make([]byte, 0, len(checkpointMagic)+12+len(payload))
	buf = append(buf, checkpointMagic...)
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(len(payload)))
	buf = append(buf, n[:]...)
	buf = append(buf, payload...)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
	buf = append(buf, crc[:]...)
	// The checkpoint must be durable BEFORE compaction drops the records
	// it summarizes — otherwise a crash between the two loses the
	// pre-watermark corpus from both the journal and the checkpoint.
	if err := writeFileDurable(u.statePath(), buf); err != nil {
		return err
	}
	return u.j.Compact()
}

// restoreCheckpoint loads the sidecar state if it matches the journal's
// watermark, returning the offset to replay from. A missing, corrupt or
// stale checkpoint falls back to the journal base with zero state.
func (u *Updater) restoreCheckpoint() (uint64, error) {
	buf, err := os.ReadFile(u.statePath())
	if err != nil {
		return u.j.Base(), nil
	}
	hdr := len(checkpointMagic)
	if len(buf) < hdr+12 || string(buf[:hdr]) != checkpointMagic {
		return u.j.Base(), nil
	}
	n := binary.LittleEndian.Uint64(buf[hdr:])
	if uint64(len(buf)) != uint64(hdr)+8+n+4 {
		return u.j.Base(), nil
	}
	payload := buf[hdr+8 : hdr+8+int(n)]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(buf[hdr+8+int(n):]) {
		return u.j.Base(), nil
	}
	var st checkpointState
	if err := json.Unmarshal(payload, &st); err != nil {
		return u.j.Base(), nil
	}
	if st.Offset < u.j.Base() || st.Offset > u.j.Tail() {
		return u.j.Base(), nil
	}
	// Defensive shape check before adopting the state.
	if len(st.DocC) != len(st.Docs) || len(st.DocZ) != len(st.Docs) {
		return u.j.Base(), nil
	}
	u.newUsers = st.NewUsers
	u.docs = st.Docs
	u.docC = st.DocC
	u.docZ = st.DocZ
	u.docsChanged = true
	u.edges = st.Edges
	u.diffs = st.Diffs
	if st.FoldPi != nil {
		u.foldPi = st.FoldPi
	}
	u.generation = st.Generation
	u.applied = st.Applied
	u.publishes = st.Publishes
	for id, cu := range st.Users {
		u.users[id] = &userState{docs: cu.Docs, friends: cu.Friends, dirty: cu.Dirty}
	}
	return st.Offset, nil
}
