package stream

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func testEvents(n int) []Event {
	evs := make([]Event, 0, n)
	for i := 0; i < n; i++ {
		switch i % 4 {
		case 0:
			evs = append(evs, Event{Type: EvAddUser, User: int32(100 + i)})
		case 1:
			evs = append(evs, Event{Type: EvAddEdge, User: int32(i), Target: int32(i + 1)})
		case 2:
			evs = append(evs, Event{Type: EvAddDoc, User: int32(i), Time: int64(i * 10), Words: []int32{1, 2, int32(i)}})
		default:
			evs = append(evs, Event{Type: EvDiffusion, User: int32(i), Target: 7, Time: int64(i), Words: []int32{9}})
		}
	}
	return evs
}

func openTestJournal(t *testing.T, dir string) *Journal {
	t.Helper()
	j, err := OpenJournal(filepath.Join(dir, "events.wal"), JournalOptions{SyncEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func replayAll(t *testing.T, j *Journal, from uint64) []Event {
	t.Helper()
	var out []Event
	if err := j.Replay(from, func(off uint64, ev Event) error {
		out = append(out, ev)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j := openTestJournal(t, dir)
	want := testEvents(25)
	var offsets []uint64
	for i := range want {
		off, err := j.Append(&want[i])
		if err != nil {
			t.Fatal(err)
		}
		offsets = append(offsets, off)
	}
	if got := replayAll(t, j, 0); !reflect.DeepEqual(got, want) {
		t.Fatalf("replay disagrees with the appended events:\n got %+v\nwant %+v", got, want)
	}
	// Replay from a mid-stream offset yields exactly the suffix.
	if got := replayAll(t, j, offsets[9]); !reflect.DeepEqual(got, want[10:]) {
		t.Fatalf("suffix replay from offset %d returned %d events, want %d", offsets[9], len(got), len(want)-10)
	}
	if j.Events() != uint64(len(want)) {
		t.Fatalf("Events() = %d, want %d", j.Events(), len(want))
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: everything survives.
	j2 := openTestJournal(t, dir)
	defer j2.Close()
	if got := replayAll(t, j2, 0); !reflect.DeepEqual(got, want) {
		t.Fatal("reopened journal lost events")
	}
}

// TestJournalCrashRecovery is the satellite contract: a truncated or
// bit-flipped tail is detected on open, replay stops at the last valid
// record, and appends continue cleanly after recovery.
func TestJournalCrashRecovery(t *testing.T) {
	for _, tc := range []struct {
		name   string
		mangle func(p []byte) []byte
		keep   int // events expected to survive out of 10
	}{
		{"truncated-mid-record", func(p []byte) []byte { return p[:len(p)-5] }, 9},
		{"truncated-mid-header", func(p []byte) []byte { return p[:len(p)-1] }, 9},
		{"flipped-payload-bit", func(p []byte) []byte { p[len(p)-10] ^= 0x40; return p }, 9},
		{"garbage-appended", func(p []byte) []byte { return append(p, 0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3) }, 10},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "events.wal")
			j, err := OpenJournal(path, JournalOptions{SyncEvery: 1})
			if err != nil {
				t.Fatal(err)
			}
			want := testEvents(10)
			for i := range want {
				if _, err := j.Append(&want[i]); err != nil {
					t.Fatal(err)
				}
			}
			if err := j.Close(); err != nil {
				t.Fatal(err)
			}
			p, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.mangle(p), 0o644); err != nil {
				t.Fatal(err)
			}

			j2, err := OpenJournal(path, JournalOptions{})
			if err != nil {
				t.Fatalf("recovery open failed: %v", err)
			}
			defer j2.Close()
			got := replayAll(t, j2, 0)
			if !reflect.DeepEqual(got, want[:tc.keep]) {
				t.Fatalf("recovered %d events, want the %d-event valid prefix", len(got), tc.keep)
			}
			// The journal keeps working after recovery.
			extra := Event{Type: EvAddDoc, User: 1, Words: []int32{5}}
			if _, err := j2.Append(&extra); err != nil {
				t.Fatal(err)
			}
			all := replayAll(t, j2, 0)
			if len(all) != tc.keep+1 || !reflect.DeepEqual(all[tc.keep], extra) {
				t.Fatal("append after recovery did not land cleanly")
			}
		})
	}
}

func TestJournalWatermarkAndCompaction(t *testing.T) {
	dir := t.TempDir()
	j := openTestJournal(t, dir)
	defer j.Close()
	want := testEvents(20)
	var offsets []uint64
	for i := range want {
		off, err := j.Append(&want[i])
		if err != nil {
			t.Fatal(err)
		}
		offsets = append(offsets, off)
	}
	if err := j.SetWatermark(offsets[11]); err != nil {
		t.Fatal(err)
	}
	if err := j.SetWatermark(offsets[len(offsets)-1] + 999); err == nil {
		t.Fatal("SetWatermark accepted an offset past the tail")
	}
	preTail := j.Tail()
	if err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	if j.Base() != offsets[11] {
		t.Fatalf("compaction base = %d, want the watermark %d", j.Base(), offsets[11])
	}
	if j.Tail() != preTail {
		t.Fatalf("compaction moved the tail: %d -> %d", preTail, j.Tail())
	}
	if j.Events() != 8 {
		t.Fatalf("compacted journal holds %d events, want 8", j.Events())
	}
	// Logical offsets survive compaction: replay from the watermark sees
	// exactly the retained suffix.
	if got := replayAll(t, j, j.Watermark()); !reflect.DeepEqual(got, want[12:]) {
		t.Fatal("post-compaction replay from the watermark disagrees with the retained suffix")
	}
	// Replays below the base are rejected, not silently empty.
	if err := j.Replay(0, func(uint64, Event) error { return nil }); err == nil {
		t.Fatal("replay from a compacted-away offset succeeded")
	}
	// Appends continue after compaction, and a reopen sees the same state.
	extra := Event{Type: EvAddUser, User: -1}
	if _, err := j.Append(&extra); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2 := openTestJournal(t, dir)
	defer j2.Close()
	if j2.Base() != offsets[11] || j2.Watermark() != offsets[11] {
		t.Fatalf("reopened journal lost base/watermark: base=%d mark=%d", j2.Base(), j2.Watermark())
	}
	got := replayAll(t, j2, j2.Base())
	if len(got) != 9 || !reflect.DeepEqual(got[8], extra) {
		t.Fatalf("reopened compacted journal replays %d events, want 9", len(got))
	}
}

func TestJournalRejectsOversizeEvent(t *testing.T) {
	j := openTestJournal(t, t.TempDir())
	defer j.Close()
	if _, err := j.Append(&Event{Type: EvAddDoc, User: 0, Words: make([]int32, MaxEventWords+1)}); err == nil {
		t.Fatal("Append accepted an event beyond MaxEventWords")
	}
	if _, err := j.Append(&Event{Type: EventType(99), User: 0}); err == nil {
		t.Fatal("Append accepted an unknown event type")
	}
}

func TestEventTypeJSON(t *testing.T) {
	p, err := json.Marshal(Event{Type: EvAddDoc, User: 3, Words: []int32{1}})
	if err != nil {
		t.Fatal(err)
	}
	var ev Event
	if err := json.Unmarshal(p, &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Type != EvAddDoc {
		t.Fatalf("round-tripped type = %v", ev.Type)
	}
	if err := json.Unmarshal([]byte(`{"type":"diffusion","user":1,"target":2}`), &ev); err != nil || ev.Type != EvDiffusion {
		t.Fatalf("named type decode failed: %v (type %v)", err, ev.Type)
	}
	if err := json.Unmarshal([]byte(`{"type":"no-such"}`), &ev); err == nil {
		t.Fatal("unknown type name accepted")
	}
}
