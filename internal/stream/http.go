package stream

import (
	"encoding/json"
	"errors"
	"net/http"
)

// IngestResponse is the POST /api/ingest answer.
type IngestResponse struct {
	// Accepted is the number of events journaled and applied.
	Accepted int `json:"accepted"`
	// Users lists the ids assigned to the batch's add-user events, in
	// event order.
	Users []int32 `json:"users,omitempty"`
	// Pending is the current publish lag in events; Generation the last
	// published generation (the batch becomes query-visible at
	// Generation+1).
	Pending    int    `json:"pending"`
	Generation uint64 `json:"generation"`
}

// Handler exposes the updater over HTTP:
//
//	POST /api/ingest         body: [{"type":"add-user"}, {"type":"add-doc","user":120,"words":[1,2]}, ...]
//	                         (or {"events":[...]}) — validate, journal, apply; 503 while draining
//	GET  /api/ingest/status  the freshness/lag gauge (Status)
//
// cmd/cpd-serve mounts it next to serve.APIHandler.
func (u *Updater) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/api/ingest", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST an event batch", http.StatusMethodNotAllowed)
			return
		}
		// Cap the body before decoding; MaxEventWords bounds each event,
		// this bounds the batch.
		r.Body = http.MaxBytesReader(w, r.Body, 16<<20)
		evs, err := decodeEventBatch(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if len(evs) == 0 {
			http.Error(w, "empty event batch", http.StatusBadRequest)
			return
		}
		resolved, err := u.Ingest(evs)
		if err != nil {
			status := http.StatusBadRequest
			switch {
			case errors.Is(err, ErrDraining):
				status = http.StatusServiceUnavailable
			case errors.Is(err, ErrJournal):
				// Server-side write failure, possibly after a partial
				// apply — not the client's fault, and not safely
				// retryable as-is.
				status = http.StatusInternalServerError
			}
			http.Error(w, err.Error(), status)
			return
		}
		resp := IngestResponse{Accepted: len(resolved)}
		for i := range resolved {
			if resolved[i].Type == EvAddUser {
				resp.Users = append(resp.Users, resolved[i].User)
			}
		}
		st := u.Status()
		resp.Pending, resp.Generation = st.PendingEvents, st.Generation
		writeJSON(w, resp)
	})
	mux.HandleFunc("/api/ingest/status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, u.Status())
	})
	return mux
}

// decodeEventBatch accepts either a bare JSON array of events or an
// {"events": [...]} wrapper.
func decodeEventBatch(r *http.Request) ([]Event, error) {
	dec := json.NewDecoder(r.Body)
	tok, err := dec.Token()
	if err != nil {
		return nil, err
	}
	var evs []Event
	if d, ok := tok.(json.Delim); ok && d == '[' {
		for dec.More() {
			var ev Event
			if err := dec.Decode(&ev); err != nil {
				return nil, err
			}
			evs = append(evs, ev)
		}
		return evs, nil
	}
	if d, ok := tok.(json.Delim); ok && d == '{' {
		for dec.More() {
			key, err := dec.Token()
			if err != nil {
				return nil, err
			}
			if name, ok := key.(string); ok && name == "events" {
				if err := dec.Decode(&evs); err != nil {
					return nil, err
				}
			} else {
				var skip json.RawMessage
				if err := dec.Decode(&skip); err != nil {
					return nil, err
				}
			}
		}
		return evs, nil
	}
	return nil, errors.New("stream: ingest body must be an event array or {\"events\": [...]}")
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
