package stream

// Quality scoring on the publish path (Options.Quality): every scored
// publish computes the structural metrics of internal/quality over the
// just-promoted model's hard partition and the merged base+stream
// friendship edges, records the report into the serving engine's bounded
// per-slot history (/api/quality, /metrics), and keeps the scored
// assignments around as the drift baseline for the next scored
// generation. Optionally (Options.QualityPLP) the parallel
// label-propagation baseline runs on the same edges, giving the
// comparison row the profiling model is judged against.

import (
	"time"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/quality"
	"repro/internal/socialgraph"
)

// qualityLocked scores the model just promoted as generation
// info.Generation. Called with u.mu held, after the promote — a slow
// scoring pass delays the next publish, never this generation's
// visibility.
func (u *Updater) qualityLocked(model *core.Model, info *PublishInfo) {
	assign := quality.Assignments(model)
	edges := u.qualityEdgesLocked()
	r := quality.Compute(assign, model.Cfg.NumCommunities, edges, u.prevQualityAssign)
	r.Algo = "cpd"
	r.Generation = info.Generation
	r.Version = info.Version
	r.UnixMilli = time.Now().UnixMilli()
	u.opts.Engine.RecordQuality(u.opts.Snapshot, r)
	u.prevQualityAssign = assign
	u.lastQuality = r
	u.qualityRuns++
	u.lastPhases.QualityMicros = r.CostMicros

	if u.opts.QualityPLP && len(edges) > 0 {
		start := time.Now()
		res := baselines.PLP(model.NumUsers, edges, baselines.PLPOptions{Seed: u.opts.FoldSeed})
		b := quality.Compute(res.Labels, res.Communities, edges, nil)
		b.Algo = "plp"
		b.Generation = info.Generation
		b.Version = info.Version
		b.UnixMilli = time.Now().UnixMilli()
		// The baseline's cost is dominated by running PLP itself, not by
		// scoring its labels; report the whole detour.
		b.CostMicros = time.Since(start).Microseconds()
		u.opts.Engine.RecordQualityBaseline(u.opts.Snapshot, b)
	}
}

// qualityEdgesLocked is the friendship edge set quality is scored on: the
// base training graph's edges (when the updater has them) plus every
// streamed add-edge event. Without a base graph the streamed edges alone
// are scored; with neither, reports are membership-shape only.
func (u *Updater) qualityEdgesLocked() []socialgraph.FriendLink {
	var base []socialgraph.FriendLink
	if u.opts.BaseGraph != nil {
		base = u.opts.BaseGraph.Friends
	}
	if len(u.edges) == 0 {
		return base
	}
	out := make([]socialgraph.FriendLink, 0, len(base)+len(u.edges))
	out = append(out, base...)
	return append(out, u.edges...)
}
