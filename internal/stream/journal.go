package stream

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"syscall"
)

// EventType enumerates the journal's typed events.
type EventType uint8

const (
	// EvAddUser declares a new user. Ids are assigned densely above the
	// base model's population; Event.User <= 0 asks the updater to assign
	// the next id, a positive value must equal it (replayed journals carry
	// resolved ids).
	EvAddUser EventType = iota + 1
	// EvAddEdge adds a friendship edge Event.User -> Event.Target.
	EvAddEdge
	// EvAddDoc adds a document (Event.Words, timestamp Event.Time)
	// published by Event.User.
	EvAddDoc
	// EvDiffusion records that Event.User re-published (retweeted / cited)
	// document Event.Target with content Event.Words at Event.Time: it
	// creates the diffusing document and the diffusion link in one event.
	EvDiffusion
)

var eventNames = map[EventType]string{
	EvAddUser:   "add-user",
	EvAddEdge:   "add-edge",
	EvAddDoc:    "add-doc",
	EvDiffusion: "diffusion",
}

// String returns the wire name of the event type.
func (t EventType) String() string {
	if n, ok := eventNames[t]; ok {
		return n
	}
	return fmt.Sprintf("event(%d)", uint8(t))
}

// MarshalJSON encodes the type by name ("add-doc"), the form the HTTP
// ingest surface speaks.
func (t EventType) MarshalJSON() ([]byte, error) {
	n, ok := eventNames[t]
	if !ok {
		return nil, fmt.Errorf("stream: unknown event type %d", uint8(t))
	}
	return json.Marshal(n)
}

// UnmarshalJSON accepts either the name or the numeric code.
func (t *EventType) UnmarshalJSON(p []byte) error {
	var s string
	if err := json.Unmarshal(p, &s); err == nil {
		for k, n := range eventNames {
			if n == s {
				*t = k
				return nil
			}
		}
		return fmt.Errorf("stream: unknown event type %q", s)
	}
	var n uint8
	if err := json.Unmarshal(p, &n); err != nil {
		return fmt.Errorf("stream: event type must be a name or a code")
	}
	*t = EventType(n)
	return nil
}

// Event is one journal record. Field meaning depends on Type; see the
// EventType constants.
type Event struct {
	Type   EventType `json:"type"`
	User   int32     `json:"user"`
	Target int32     `json:"target,omitempty"`
	Time   int64     `json:"time,omitempty"`
	Words  []int32   `json:"words,omitempty"`
}

// MaxEventWords bounds a single event's document length; the journal
// refuses longer records at append AND replay time, so a corrupt length
// field can never trigger an absurd allocation.
const MaxEventWords = 1 << 16

const (
	journalMagic   = "CPDJNL1\n"
	journalHdrLen  = 16 // magic + baseOffset
	recordFixedLen = 1 + 4 + 4 + 8 + 4
	maxRecordBytes = recordFixedLen + 4*MaxEventWords
)

// encodeEvent appends ev's payload bytes to buf.
func encodeEvent(buf []byte, ev *Event) []byte {
	var fixed [recordFixedLen]byte
	fixed[0] = byte(ev.Type)
	binary.LittleEndian.PutUint32(fixed[1:], uint32(ev.User))
	binary.LittleEndian.PutUint32(fixed[5:], uint32(ev.Target))
	binary.LittleEndian.PutUint64(fixed[9:], uint64(ev.Time))
	binary.LittleEndian.PutUint32(fixed[17:], uint32(len(ev.Words)))
	buf = append(buf, fixed[:]...)
	var w [4]byte
	for _, x := range ev.Words {
		binary.LittleEndian.PutUint32(w[:], uint32(x))
		buf = append(buf, w[:]...)
	}
	return buf
}

// decodeEvent parses one record payload.
func decodeEvent(p []byte) (Event, error) {
	var ev Event
	if len(p) < recordFixedLen {
		return ev, fmt.Errorf("stream: record payload of %d bytes is shorter than the fixed header", len(p))
	}
	ev.Type = EventType(p[0])
	if _, ok := eventNames[ev.Type]; !ok {
		return ev, fmt.Errorf("stream: record has unknown event type %d", p[0])
	}
	ev.User = int32(binary.LittleEndian.Uint32(p[1:]))
	ev.Target = int32(binary.LittleEndian.Uint32(p[5:]))
	ev.Time = int64(binary.LittleEndian.Uint64(p[9:]))
	n := binary.LittleEndian.Uint32(p[17:])
	if n > MaxEventWords {
		return ev, fmt.Errorf("stream: record claims %d words (limit %d)", n, MaxEventWords)
	}
	if uint32(len(p)-recordFixedLen) != 4*n {
		return ev, fmt.Errorf("stream: record claims %d words but carries %d payload bytes", n, len(p)-recordFixedLen)
	}
	if n > 0 {
		ev.Words = make([]int32, n)
		for i := range ev.Words {
			ev.Words[i] = int32(binary.LittleEndian.Uint32(p[recordFixedLen+4*i:]))
		}
	}
	return ev, nil
}

// JournalOptions tunes a journal. The zero value is ready for use.
type JournalOptions struct {
	// SyncEvery batches fsync: the file is synced after every SyncEvery-th
	// appended record (and always on Sync/Close). 0 selects the default
	// (64); 1 syncs every record; negative disables automatic sync
	// entirely (callers own durability via Sync).
	SyncEvery int
}

// Journal is the append-only event log. All methods are safe for
// concurrent use; appends are serialized internally.
type Journal struct {
	mu   sync.Mutex
	path string
	f    *os.File
	w    *bufio.Writer

	base   uint64 // logical offset of the file's first record
	tail   uint64 // logical offset past the last valid record
	events uint64 // records currently in the file
	mark   uint64 // watermark (logical offset; <= tail)

	syncEvery int
	unsynced  int
	scratch   []byte
	closed    bool
}

// OpenJournal opens (creating if absent) the journal at path, replays it
// to find the valid tail, and truncates any torn or corrupt suffix — the
// crash-recovery contract: every record before the corruption survives,
// nothing after it is visible. The watermark is loaded from the sidecar
// and clamped into [base, tail].
func OpenJournal(path string, opts JournalOptions) (*Journal, error) {
	if opts.SyncEvery == 0 {
		opts.SyncEvery = 64
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("stream: %w", err)
	}
	j := &Journal{path: path, f: f, syncEvery: opts.SyncEvery, scratch: make([]byte, 0, 1<<12)}
	if err := j.recover(); err != nil {
		f.Close()
		return nil, err
	}
	j.w = bufio.NewWriterSize(f, 1<<16)
	j.mark = j.loadMark()
	return j, nil
}

// recover scans the file, validating every record, and truncates the
// first invalid byte onward. A fresh (empty) file gets its header written.
func (j *Journal) recover() error {
	fi, err := j.f.Stat()
	if err != nil {
		return fmt.Errorf("stream: %w", err)
	}
	if fi.Size() == 0 {
		var hdr [journalHdrLen]byte
		copy(hdr[:], journalMagic)
		if _, err := j.f.Write(hdr[:]); err != nil {
			return fmt.Errorf("stream: initializing journal: %w", err)
		}
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("stream: %w", err)
		}
		return nil
	}
	if fi.Size() < journalHdrLen {
		return fmt.Errorf("stream: %s is not a journal (only %d bytes)", j.path, fi.Size())
	}
	var hdr [journalHdrLen]byte
	if _, err := j.f.ReadAt(hdr[:], 0); err != nil {
		return fmt.Errorf("stream: reading journal header: %w", err)
	}
	if string(hdr[:len(journalMagic)]) != journalMagic {
		return fmt.Errorf("stream: %s is not a CPD event journal", j.path)
	}
	j.base = binary.LittleEndian.Uint64(hdr[8:])
	j.tail = j.base
	br := bufio.NewReaderSize(io.NewSectionReader(j.f, journalHdrLen, fi.Size()-journalHdrLen), 1<<16)
	pos := int64(journalHdrLen) // physical offset of the next record
	for {
		n, payload, err := readRecord(br, &j.scratch)
		if err != nil {
			break // torn, corrupt or clean EOF: valid prefix ends at pos
		}
		if _, err := decodeEvent(payload); err != nil {
			break // framed correctly but not a valid event: treat as corrupt
		}
		pos += int64(n)
		j.tail += uint64(n)
		j.events++
	}
	if pos < fi.Size() {
		if err := j.f.Truncate(pos); err != nil {
			return fmt.Errorf("stream: truncating corrupt journal tail: %w", err)
		}
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("stream: %w", err)
		}
	}
	if _, err := j.f.Seek(0, io.SeekEnd); err != nil {
		return fmt.Errorf("stream: %w", err)
	}
	return nil
}

// readRecord reads and validates one record, returning its total framed
// size and payload. io.EOF (clean end), truncation and CRC mismatches all
// come back as errors.
func readRecord(br *bufio.Reader, scratch *[]byte) (int, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n < recordFixedLen || n > maxRecordBytes {
		return 0, nil, fmt.Errorf("stream: record claims %d payload bytes", n)
	}
	if cap(*scratch) < int(n) {
		*scratch = make([]byte, 0, int(n))
	}
	payload := (*scratch)[:n]
	if _, err := io.ReadFull(br, payload); err != nil {
		return 0, nil, err
	}
	var tail [4]byte
	if _, err := io.ReadFull(br, tail[:]); err != nil {
		return 0, nil, err
	}
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(tail[:]) {
		return 0, nil, fmt.Errorf("stream: record checksum mismatch")
	}
	return int(n) + 8, payload, nil
}

// Append writes one event and returns the logical offset just past its
// record — the offset a Replay resumes from to see everything after it.
// Durability follows the SyncEvery batching; call Sync for a hard point.
func (j *Journal) Append(ev *Event) (uint64, error) {
	if len(ev.Words) > MaxEventWords {
		return 0, fmt.Errorf("stream: event has %d words (limit %d)", len(ev.Words), MaxEventWords)
	}
	if _, ok := eventNames[ev.Type]; !ok {
		return 0, fmt.Errorf("stream: unknown event type %d", ev.Type)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return 0, fmt.Errorf("stream: journal is closed")
	}
	payload := encodeEvent(j.scratch[:0], ev)
	j.scratch = payload[:0]
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
	if _, err := j.w.Write(hdr[:]); err != nil {
		return 0, fmt.Errorf("stream: appending record: %w", err)
	}
	if _, err := j.w.Write(payload); err != nil {
		return 0, fmt.Errorf("stream: appending record: %w", err)
	}
	if _, err := j.w.Write(crc[:]); err != nil {
		return 0, fmt.Errorf("stream: appending record: %w", err)
	}
	j.tail += uint64(len(payload) + 8)
	j.events++
	j.unsynced++
	if j.syncEvery > 0 && j.unsynced >= j.syncEvery {
		if err := j.syncLocked(); err != nil {
			return 0, err
		}
	}
	return j.tail, nil
}

// Sync flushes buffered records and fsyncs the file: every previously
// appended event is durable when it returns.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("stream: journal is closed")
	}
	return j.syncLocked()
}

func (j *Journal) syncLocked() error {
	if err := j.w.Flush(); err != nil {
		return fmt.Errorf("stream: flushing journal: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("stream: syncing journal: %w", err)
	}
	j.unsynced = 0
	return nil
}

// Replay streams every record at logical offset >= from, in order, to fn;
// fn receives the offset just past each record (pass it back as the next
// from). Replay flushes buffered appends first and reads through an
// independent handle, so it is safe concurrently with Append.
func (j *Journal) Replay(from uint64, fn func(off uint64, ev Event) error) error {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return fmt.Errorf("stream: journal is closed")
	}
	if err := j.w.Flush(); err != nil {
		j.mu.Unlock()
		return fmt.Errorf("stream: flushing journal: %w", err)
	}
	base, tail := j.base, j.tail
	j.mu.Unlock()
	if from < base {
		return fmt.Errorf("stream: replay offset %d predates the journal's compaction base %d", from, base)
	}
	if from > tail {
		return fmt.Errorf("stream: replay offset %d is past the journal tail %d", from, tail)
	}
	f, err := os.Open(j.path)
	if err != nil {
		return fmt.Errorf("stream: %w", err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return fmt.Errorf("stream: %w", err)
	}
	phys := int64(journalHdrLen) + int64(from-base)
	br := bufio.NewReaderSize(io.NewSectionReader(f, phys, fi.Size()-phys), 1<<16)
	off := from
	scratch := make([]byte, 0, 1<<12)
	for off < tail {
		n, payload, err := readRecord(br, &scratch)
		if err != nil {
			return fmt.Errorf("stream: journal corrupt at offset %d: %w", off, err)
		}
		ev, err := decodeEvent(payload)
		if err != nil {
			return fmt.Errorf("stream: journal corrupt at offset %d: %w", off, err)
		}
		off += uint64(n)
		if err := fn(off, ev); err != nil {
			return err
		}
	}
	return nil
}

// Tail returns the logical offset past the last record.
func (j *Journal) Tail() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.tail
}

// Base returns the logical offset of the first retained record (advanced
// by compaction).
func (j *Journal) Base() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.base
}

// Events returns the number of records currently in the file.
func (j *Journal) Events() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.events
}

// SizeBytes returns the journal file's current size.
func (j *Journal) SizeBytes() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return int64(journalHdrLen) + int64(j.tail-j.base)
}

// Watermark returns the published-offset watermark.
func (j *Journal) Watermark() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.mark
}

// SetWatermark records that every record below off has been applied and
// published. The mark is persisted to the sidecar file atomically (temp
// file, fsync, rename, directory fsync — the store.Save discipline);
// compaction may later drop records below it.
func (j *Journal) SetWatermark(off uint64) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if off < j.base || off > j.tail {
		return fmt.Errorf("stream: watermark %d outside the journal range [%d, %d]", off, j.base, j.tail)
	}
	j.mark = off
	return j.storeMarkLocked()
}

func (j *Journal) markPath() string { return j.path + ".mark" }

func (j *Journal) loadMark() uint64 {
	p, err := os.ReadFile(j.markPath())
	if err != nil || len(p) != 12 {
		return j.base
	}
	off := binary.LittleEndian.Uint64(p[:8])
	if crc32.ChecksumIEEE(p[:8]) != binary.LittleEndian.Uint32(p[8:]) {
		return j.base
	}
	if off < j.base {
		off = j.base
	}
	if off > j.tail {
		off = j.tail
	}
	return off
}

func (j *Journal) storeMarkLocked() error {
	var p [12]byte
	binary.LittleEndian.PutUint64(p[:8], j.mark)
	binary.LittleEndian.PutUint32(p[8:], crc32.ChecksumIEEE(p[:8]))
	return writeFileDurable(j.markPath(), p[:])
}

// writeFileDurable writes data to path with the crash-safe discipline the
// snapshot store uses: temp file in the same directory, fsync, atomic
// rename, directory fsync. Without the syncs a crash can persist a later
// journal compaction but not the sidecar that justified it.
func writeFileDurable(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("stream: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("stream: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("stream: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("stream: %w", err)
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		return fmt.Errorf("stream: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("stream: %w", err)
	}
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("stream: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, syscall.EINVAL) && !errors.Is(err, syscall.ENOTSUP) {
		return fmt.Errorf("stream: syncing %s: %w", dir, err)
	}
	return nil
}

// Compact rewrites the journal keeping only records at offsets >= the
// watermark, making the watermark the new base. Logical offsets are
// preserved (the header records the base), so previously returned offsets
// and the watermark remain valid. The rewrite goes through a temp file and
// an atomic rename.
func (j *Journal) Compact() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("stream: journal is closed")
	}
	if j.mark <= j.base {
		return nil // nothing to drop
	}
	if err := j.syncLocked(); err != nil {
		return err
	}
	dir := filepath.Dir(j.path)
	tmp, err := os.CreateTemp(dir, filepath.Base(j.path)+".compact*")
	if err != nil {
		return fmt.Errorf("stream: %w", err)
	}
	defer os.Remove(tmp.Name())
	var hdr [journalHdrLen]byte
	copy(hdr[:], journalMagic)
	binary.LittleEndian.PutUint64(hdr[8:], j.mark)
	if _, err := tmp.Write(hdr[:]); err != nil {
		tmp.Close()
		return fmt.Errorf("stream: %w", err)
	}
	// Copy the retained suffix byte-for-byte (records are contiguous and
	// the watermark is always a record boundary).
	src := io.NewSectionReader(j.f, int64(journalHdrLen)+int64(j.mark-j.base), int64(j.tail-j.mark))
	if _, err := io.Copy(tmp, src); err != nil {
		tmp.Close()
		return fmt.Errorf("stream: compacting journal: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("stream: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("stream: %w", err)
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		return fmt.Errorf("stream: %w", err)
	}
	if err := os.Rename(tmp.Name(), j.path); err != nil {
		return fmt.Errorf("stream: %w", err)
	}
	// Re-open the renamed file for further appends and recount events.
	nf, err := os.OpenFile(j.path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("stream: reopening compacted journal: %w", err)
	}
	if _, err := nf.Seek(0, io.SeekEnd); err != nil {
		nf.Close()
		return fmt.Errorf("stream: %w", err)
	}
	j.f.Close()
	j.f = nf
	j.w = bufio.NewWriterSize(nf, 1<<16)
	j.base = j.mark
	// Recount retained events by scanning the new file.
	j.events = 0
	fi, err := nf.Stat()
	if err == nil {
		br := bufio.NewReaderSize(io.NewSectionReader(nf, journalHdrLen, fi.Size()-journalHdrLen), 1<<16)
		for {
			if _, _, err := readRecord(br, &j.scratch); err != nil {
				break
			}
			j.events++
		}
	}
	return nil
}

// Close flushes, fsyncs and closes the journal.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	err := j.syncLocked()
	j.closed = true
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	return err
}
