package stream

import (
	"strings"
	"testing"

	"repro/internal/serve"
)

// TestQualityScoringOnPublish wires Options.Quality through a real
// ingest→publish→ingest→publish cycle and checks the reports land in the
// engine's history with drift fields, the PLP comparison row is recorded,
// and the /metrics collector exposes the run.
func TestQualityScoringOnPublish(t *testing.T) {
	g, m := testBase(t)
	engine, _, u := newTestUpdater(t, g, m, func(o *Options) {
		o.Quality = 1
		o.QualityPLP = true
		o.BaseGraph = g
	})
	if _, err := u.Ingest(streamFixture(g, m)); err != nil {
		t.Fatal(err)
	}
	if _, err := u.Publish(); err != nil {
		t.Fatal(err)
	}
	if _, err := u.Ingest([]Event{
		{Type: EvAddDoc, User: 1, Time: 200, Words: g.Docs[4].Words},
		{Type: EvAddEdge, User: 1, Target: 5},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := u.Publish(); err != nil {
		t.Fatal(err)
	}

	history, baseline := engine.QualityHistory(serve.DefaultSnapshot)
	if len(history) != 2 {
		t.Fatalf("expected 2 quality reports, got %d", len(history))
	}
	first, second := history[0], history[1]
	if first.Algo != "cpd" || first.Generation != 1 || second.Generation != 2 {
		t.Fatalf("report identity wrong: %+v / %+v", first, second)
	}
	if first.HasPrev {
		t.Fatal("first scored generation cannot have a drift baseline")
	}
	if !second.HasPrev {
		t.Fatal("second scored generation lost its drift baseline")
	}
	if second.Churn < 0 || second.Churn > 1 || second.PrevNMI < 0 || second.PrevNMI > 1.000001 {
		t.Fatalf("drift out of range: churn=%v nmi=%v", second.Churn, second.PrevNMI)
	}
	// The base graph has edges, so the reports must be graph-scored.
	if first.GraphEdges == 0 || first.Modularity == 0 && first.Coverage == 0 {
		t.Fatalf("graph metrics missing: %+v", first)
	}
	if baseline == nil || baseline.Algo != "plp" {
		t.Fatalf("PLP baseline row missing: %+v", baseline)
	}
	if baseline.GraphEdges != second.GraphEdges {
		t.Fatalf("baseline scored %d edges, model %d — must be the same graph",
			baseline.GraphEdges, second.GraphEdges)
	}

	st := u.Status()
	if st.QualityRuns != 2 || st.LastQuality == nil || st.LastQuality.Generation != 2 {
		t.Fatalf("status quality fields wrong: runs=%d last=%+v", st.QualityRuns, st.LastQuality)
	}
	if st.LastPublishPhases == nil || st.LastPublishPhases.QualityMicros <= 0 {
		t.Fatalf("publish phases missing quality cost: %+v", st.LastPublishPhases)
	}

	var sb strings.Builder
	u.WriteMetrics(&sb)
	out := sb.String()
	for _, want := range []string{
		"cpd_quality_runs_total 2",
		"cpd_publishes_total 2",
		"cpd_publish_latency_seconds_bucket",
		`cpd_publish_lag_seconds_bucket{le="+Inf"}`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("updater metrics missing %q in:\n%s", want, out)
		}
	}
}

// TestQualityDisabledByDefault: without the knob no publish is scored and
// /api/quality falls back to the one-off membership report.
func TestQualityDisabledByDefault(t *testing.T) {
	g, m := testBase(t)
	engine, _, u := newTestUpdater(t, g, m, nil)
	if _, err := u.Ingest(streamFixture(g, m)); err != nil {
		t.Fatal(err)
	}
	if _, err := u.Publish(); err != nil {
		t.Fatal(err)
	}
	history, baseline := engine.QualityHistory(serve.DefaultSnapshot)
	if len(history) != 0 || baseline != nil {
		t.Fatalf("quality recorded with the knob off: %d reports", len(history))
	}
	p, err := engine.QualityIn(serve.DefaultSnapshot)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.History) != 1 || p.History[0].Users != m.NumUsers+2 {
		t.Fatalf("fallback report wrong: %+v", p.History)
	}
}
