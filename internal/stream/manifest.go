package stream

// The publisher half of snapshot distribution: a generation manifest
// (what generations exist, newest first-class) plus an HTTP handler that
// serves the manifest and the generation files themselves. Replicas
// (serve.Fetcher) poll either the snapshot directory directly — shared
// filesystem deployments — or these endpoints when the only path to the
// publisher is the network. The files are immutable once written
// (publishes create, pruning unlinks; nothing rewrites), so serving them
// over HTTP needs no coordination with the publish loop.

import (
	"net/http"
	"strconv"

	"repro/internal/shard"
	"repro/internal/store"
)

// Manifest lists the generation snapshots a publisher currently offers.
type Manifest struct {
	// Generation is the newest complete generation on disk (0 when none
	// has been published yet).
	Generation uint64 `json:"generation"`
	// Files are the retained generation snapshots, ascending.
	Files []store.GenFile `json:"files"`
}

// DirManifest builds the manifest for a snapshot directory.
func DirManifest(dir string) (Manifest, error) {
	files, err := store.ScanGenerations(dir)
	if err != nil {
		return Manifest{}, err
	}
	m := Manifest{Files: files}
	if n := len(files); n > 0 {
		m.Generation = files[n-1].Generation
	}
	return m, nil
}

// Manifest reports the updater's published generations (the programmatic
// face of the snapshot endpoints; empty when the updater has no Dir).
func (u *Updater) Manifest() (Manifest, error) {
	if u.opts.Dir == "" {
		return Manifest{}, nil
	}
	return DirManifest(u.opts.Dir)
}

// SnapshotServer serves a publisher's snapshot directory to replicas:
//
//	GET /api/generations                 the Manifest (JSON)
//	GET /api/generations/file?gen=N      one generation file's bytes
//	GET /api/shards                      the sharded-generation manifest list (JSON)
//	GET /api/shards/manifest?gen=N       one shard manifest's bytes
//	GET /api/shards/file?gen=N&shard=K   one shard file's bytes
//	GET /api/shards/file?gen=N&global=1  one global file's bytes
//
// Every file path is reconstructed from parsed numbers, never from
// client-supplied names, so the handler cannot be walked out of dir.
// cmd/cpd-serve mounts this next to the query API whenever it publishes
// snapshots, making any publisher a snapshot origin for its replicas.
func SnapshotServer(dir string) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/api/generations", func(w http.ResponseWriter, r *http.Request) {
		m, err := DirManifest(dir)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, m)
	})
	mux.HandleFunc("/api/generations/file", func(w http.ResponseWriter, r *http.Request) {
		gen, err := strconv.ParseUint(r.URL.Query().Get("gen"), 10, 64)
		if err != nil || gen == 0 {
			http.Error(w, "bad or missing gen parameter", http.StatusBadRequest)
			return
		}
		// ServeFile handles ranges, content-length and 404 for pruned
		// generations; the octet-stream type stops any sniffing.
		w.Header().Set("Content-Type", "application/octet-stream")
		http.ServeFile(w, r, store.GenPath(dir, gen))
	})
	mux.HandleFunc("/api/shards", func(w http.ResponseWriter, r *http.Request) {
		gens, err := shard.ScanManifests(dir)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		var newest uint64
		if n := len(gens); n > 0 {
			newest = gens[n-1]
		}
		writeJSON(w, ShardManifestList{Generation: newest, Generations: gens})
	})
	mux.HandleFunc("/api/shards/manifest", func(w http.ResponseWriter, r *http.Request) {
		gen, err := strconv.ParseUint(r.URL.Query().Get("gen"), 10, 64)
		if err != nil || gen == 0 {
			http.Error(w, "bad or missing gen parameter", http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		http.ServeFile(w, r, shard.ManifestPath(dir, gen))
	})
	mux.HandleFunc("/api/shards/file", func(w http.ResponseWriter, r *http.Request) {
		gen, err := strconv.ParseUint(r.URL.Query().Get("gen"), 10, 64)
		if err != nil || gen == 0 {
			http.Error(w, "bad or missing gen parameter", http.StatusBadRequest)
			return
		}
		var path string
		switch {
		case r.URL.Query().Get("global") != "":
			path = shard.GlobalPath(dir, gen)
		case r.URL.Query().Get("shard") != "":
			idx, err := strconv.Atoi(r.URL.Query().Get("shard"))
			if err != nil || idx < 0 || idx > 999 {
				http.Error(w, "bad shard index", http.StatusBadRequest)
				return
			}
			path = shard.ShardPath(dir, gen, idx)
		default:
			http.Error(w, "need shard=K or global=1", http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		http.ServeFile(w, r, path)
	})
	return mux
}

// ShardManifestList is the /api/shards payload: which sharded
// generations the publisher currently offers (Generation = newest, 0
// when none).
type ShardManifestList struct {
	Generation  uint64   `json:"generation"`
	Generations []uint64 `json:"generations,omitempty"`
}
