package stream

// The publish path. Every publish promotes a complete, immutable snapshot
// into the serving engine, but it does not have to *build* one from
// scratch: between two fold-in publishes only the re-folded users' rows
// and the streamed documents change, while the base-model blocks (Θ, Φ,
// η, ν, POPF, XI) are the very same arrays. The publisher exploits that
// at every layer:
//
//   - model: buildExtendedPatchedLocked copies the previously published
//     Π wholesale (one memcpy) and overwrites only the changed rows,
//     instead of reassembling every row (buildExtendedLocked);
//   - save: store.SaveV2Reusing splices unchanged sections byte-for-byte
//     from the previous snapshot file instead of re-encoding them;
//   - serve: serve.PatchFrom clones only the touched posting lists and
//     user-index shards of the previous snapshot and shares the rest.
//
// Each layer is bit-identical to its from-scratch counterpart — the
// incremental path changes the cost of a publish, never its bytes or its
// query results. A publish falls back to the full path whenever the
// incremental preconditions do not hold: the first publish of a process,
// a publish right after a delta-Gibbs pass (the refined reference — and
// with it every global block — changed), or Options.FullRebuild.

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"slices"
	"time"

	"repro/internal/core"
	"repro/internal/hist"
	"repro/internal/serve"
	"repro/internal/shard"
	"repro/internal/sparse"
	"repro/internal/store"
)

// PublishPhases is the per-phase wall-clock breakdown of one publish,
// surfaced on /api/ingest/status and /api/stats as
// status.lastPublishPhases.
type PublishPhases struct {
	SyncMicros    int64 `json:"syncMicros"`              // journal fsync
	FoldMicros    int64 `json:"foldMicros"`              // dirty-user fold-in
	GibbsMicros   int64 `json:"gibbsMicros"`             // delta-Gibbs pass (0 when none ran)
	ModelMicros   int64 `json:"modelMicros"`             // extended-model assembly
	SaveMicros    int64 `json:"saveMicros"`              // v2 snapshot write (0 without Dir)
	IndexMicros   int64 `json:"indexMicros"`             // serving-snapshot (index) build
	PromoteMicros int64 `json:"promoteMicros"`           // engine swap
	QualityMicros int64 `json:"qualityMicros,omitempty"` // structural quality scoring (0 when skipped)
	TotalMicros   int64 `json:"totalMicros"`
	// Full marks a from-scratch publish; incremental otherwise.
	Full bool `json:"full"`
	// SectionsReused counts v2 sections spliced from the previous file.
	SectionsReused int `json:"sectionsReused"`
}

// lagSample timestamps an applied ingest batch; the publish that covers
// its journal offset turns it into a publish-lag observation.
type lagSample struct {
	off uint64
	at  time.Time
}

// --- latency histogram ---------------------------------------------------

// Publish latency and lag accumulate in the shared log-bucketed histogram
// (internal/hist) — the same geometry the serving endpoints and the load
// generator digest, so p50/p95/p99 line up across every surface.

// LatencySummary is a histogram digest in milliseconds, JSON-shaped for
// the status endpoints.
type LatencySummary struct {
	Count uint64  `json:"count"`
	AvgMs float64 `json:"avgMs"`
	P50Ms float64 `json:"p50Ms"`
	P95Ms float64 `json:"p95Ms"`
	P99Ms float64 `json:"p99Ms"`
	MaxMs float64 `json:"maxMs"`
}

func histSummary(h *hist.Hist) *LatencySummary {
	if h.Count == 0 {
		return nil
	}
	ms := func(d time.Duration) float64 {
		return math.Round(float64(d)/float64(time.Millisecond)*1000) / 1000
	}
	return &LatencySummary{
		Count: h.Count,
		AvgMs: ms(h.Mean()),
		P50Ms: ms(h.Quantile(0.50)),
		P95Ms: ms(h.Quantile(0.95)),
		P99Ms: ms(h.Quantile(0.99)),
		MaxMs: ms(time.Duration(h.MaxNS)),
	}
}

// recordLagLocked timestamps the ingest batch just applied for the
// publish-lag histogram (event append → servable generation). One sample
// per batch, bounded so a stalled publisher cannot accumulate samples
// without limit (the bound only coarsens the histogram, never blocks
// ingest).
func (u *Updater) recordLagLocked() {
	const maxLagSamples = 4096
	if len(u.lagPending) >= maxLagSamples {
		return
	}
	u.lagPending = append(u.lagPending, lagSample{off: u.pendingTo, at: time.Now()})
}

// drainLagLocked converts every sample the new generation covers into a
// publish-lag observation.
func (u *Updater) drainLagLocked(now time.Time, covered uint64) {
	kept := u.lagPending[:0]
	for _, s := range u.lagPending {
		if s.off <= covered {
			u.lagHist.Observe(now.Sub(s.at), nil)
		} else {
			kept = append(kept, s)
		}
	}
	u.lagPending = kept
}

// --- publish -------------------------------------------------------------

// MaybePublish publishes when at least one delta window of events is
// pending; returns (nil, false, nil) otherwise.
func (u *Updater) MaybePublish() (*PublishInfo, bool, error) {
	u.mu.Lock()
	due := u.pending >= u.opts.WindowEvents
	u.mu.Unlock()
	if !due {
		return nil, false, nil
	}
	info, err := u.Publish()
	return info, err == nil, err
}

// Publish folds every dirty user in against the frozen reference, runs
// the delta-Gibbs pass when one is due, builds the extended model, writes
// it as a v2 snapshot (when Dir is set) and atomically promotes it into
// the engine slot. In-flight queries finish on the snapshot they started
// with; the journal watermark advances past everything the new generation
// covers. A publish with nothing pending and nothing dirty is a no-op.
//
// When the incremental preconditions hold (see the package comment above)
// the model assembly, snapshot save and index build all run in
// O(changed) instead of O(model) — with output bit-identical to a full
// rebuild.
func (u *Updater) Publish() (*PublishInfo, error) {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.publishLocked()
}

func (u *Updater) publishLocked() (*PublishInfo, error) {
	defer u.refreshStatusLocked()
	dirty := u.dirtyUsersLocked()
	// The no-op guard is process-local (u.published, not u.generation):
	// after a restart the restored generation may be > 0 while the engine
	// slot still serves whatever the process loaded from disk, so the
	// first publish must rebuild even with nothing pending.
	if u.pending == 0 && len(dirty) == 0 && u.published {
		return nil, nil
	}
	start := time.Now()
	t := start
	lap := func() int64 {
		now := time.Now()
		d := now.Sub(t)
		t = now
		return d.Microseconds()
	}
	var ph PublishPhases
	// Make everything the new generation will cover durable first: a
	// published snapshot must never be ahead of the journal on disk.
	if err := u.j.Sync(); err != nil {
		return nil, err
	}
	ph.SyncMicros = lap()
	folded, err := u.foldDirtyLocked(dirty)
	if err != nil {
		return nil, err
	}
	ph.FoldMicros = lap()
	// Everything folded now is a changed row relative to the last
	// successful publish — including rows folded by earlier attempts that
	// failed after their fold (pendingRows carries those across retries).
	u.pendingRows = mergeIDs(u.pendingRows, dirty)
	gibbsDue := u.opts.GibbsEvery > 0 && u.opts.BaseGraph != nil &&
		(u.publishes+1)%uint64(u.opts.GibbsEvery) == 0
	if gibbsDue {
		if err := u.gibbsPassLocked(); err != nil {
			return nil, fmt.Errorf("stream: delta-Gibbs pass: %w", err)
		}
		ph.GibbsMicros = lap()
	}
	// The incremental path patches the last published state, so it needs
	// one to exist (this process promoted it) and the refined reference to
	// be the one that state was built from — a delta-Gibbs pass replaces
	// the reference and with it every global block.
	full := u.opts.FullRebuild || !u.published || gibbsDue ||
		u.lastModel == nil || u.lastRef != u.refined
	var model *core.Model
	if full {
		model = u.buildExtendedLocked()
	} else {
		model = u.buildExtendedPatchedLocked(u.pendingRows)
	}
	ph.ModelMicros = lap()
	ph.Full = full
	u.generation++
	info := &PublishInfo{
		Generation:  u.generation,
		Users:       model.NumUsers,
		Folded:      folded,
		Gibbs:       gibbsDue,
		Incremental: !full,
	}
	if u.opts.Dir != "" {
		path := store.GenPath(u.opts.Dir, u.generation)
		if u.opts.FullRebuild {
			err = store.SaveV2(path, model)
			u.manifest = nil
		} else {
			// Section reuse self-limits: after a Gibbs pass (or on the
			// first save) no section matches the manifest and every one is
			// re-encoded — same bytes either way.
			var man *store.SectionManifest
			man, err = store.SaveV2Reusing(path, model, u.manifest)
			if err == nil {
				u.manifest = man
				ph.SectionsReused = man.ReusedSections()
				info.SectionsReused = man.ReusedSections()
			}
		}
		if err != nil {
			u.generation--
			return nil, err
		}
		info.Path = path
		ph.SaveMicros = lap()
		if u.sharder != nil {
			// The sharded group is published next to the full file from the
			// same model, so joining it reproduces the full file's sections
			// byte-for-byte. pendingRows still holds every user touched since
			// the last publish here (it is cleared only after the promote),
			// which is exactly the sharder's O(changed) delta.
			if _, serr := u.sharder.Publish(u.generation, model, shard.Delta{Full: full, ChangedUsers: u.pendingRows}); serr != nil {
				u.generation--
				return nil, fmt.Errorf("stream: sharded publish: %w", serr)
			}
		}
	}
	if u.opts.Mmap && info.Path != "" {
		mm, merr := store.Open(info.Path)
		if merr != nil {
			// Unmappable output: the engine's loader still knows how to
			// copy-load the file (full index build, no patching).
			info.Version, err = u.opts.Engine.LoadSnapshot(u.opts.Snapshot, info.Path, u.opts.Vocab)
			if err != nil {
				// Keep the generation counter aligned with what the engine
				// actually serves; the retry rewrites the same file.
				u.generation--
				return nil, fmt.Errorf("stream: promoting snapshot: %w", err)
			}
			ph.IndexMicros = lap()
		} else {
			// The mapped model's numeric blocks are byte-identical to the
			// heap model just saved (section reuse splices, never
			// re-derives), so patching the previous generation's indexes
			// against it preserves bit-identity.
			snap := u.buildServeSnapshotLocked(mm.Model, full)
			ph.IndexMicros = lap()
			snap.AttachMapped(mm)
			snap.Generation = u.generation
			info.Version = u.opts.Engine.Promote(snap)
			ph.PromoteMicros = lap()
		}
	} else {
		snap := u.buildServeSnapshotLocked(model, full)
		ph.IndexMicros = lap()
		snap.Generation = u.generation
		info.Version = u.opts.Engine.Promote(snap)
		ph.PromoteMicros = lap()
	}
	now := time.Now()
	ph.TotalMicros = now.Sub(start).Microseconds()
	u.lastPhases = ph
	u.pubHist.Observe(now.Sub(start), nil)
	u.drainLagLocked(now, u.pendingTo)
	u.published = true
	u.lastModel = model
	u.lastRef = u.refined
	u.lastVersion = info.Version
	u.pendingRows = nil
	u.docsChanged = false
	if full {
		u.fullRebuilds++
	} else {
		u.incrementalPublishes++
	}
	if err := u.j.SetWatermark(u.pendingTo); err == nil {
		u.pending = 0
	} else {
		return info, err
	}
	u.pruneSnapshotsLocked()
	u.publishes++
	u.lastPublish = now
	u.lastPublishMs = now.Sub(start).Milliseconds()
	// Quality scoring runs after the promote on purpose: the new
	// generation is already servable, so a slow metric pass delays the
	// NEXT publish, never this one's visibility. TotalMicros above
	// excludes it for the same reason; the cost shows up separately as
	// QualityMicros and cpd_quality_cost_seconds.
	if u.opts.Quality > 0 && u.publishes%uint64(u.opts.Quality) == 0 {
		u.qualityLocked(model, info)
	}
	return info, nil
}

// buildServeSnapshotLocked builds the serving snapshot for m: patched
// from the engine's current snapshot when this publish is incremental and
// the slot still holds OUR last promote (an external swap — operator
// reload, another writer — invalidates the delta, which is relative to
// u.lastModel), from scratch otherwise.
func (u *Updater) buildServeSnapshotLocked(m *core.Model, full bool) *serve.Snapshot {
	e, name := u.opts.Engine, u.opts.Snapshot
	if !full {
		if prev, release, err := e.AcquireNamed(name); err == nil {
			ours := prev.Version == u.lastVersion
			if ours {
				// Vocabulary is fixed for the updater's lifetime and the
				// global blocks are unchanged (no Gibbs pass), so only
				// user rows differ: Words stays empty.
				s := serve.PatchFrom(prev, m, u.opts.Vocab, serve.Delta{Users: u.pendingRows})
				release()
				return s
			}
			release()
		}
	}
	return e.BuildSnapshot(name, m, u.opts.Vocab, nil)
}

// buildExtendedPatchedLocked is buildExtendedLocked's O(changed) twin for
// the fold-in regime. Instead of reassembling every membership row it
// copies the last published Π wholesale (one memcpy), overwrites the rows
// in rows (re-folded since that publish) from their fold results, and
// appends rows for users added since. Callers guarantee u.lastModel is
// the promoted predecessor and u.refined == u.lastRef; under that
// contract every row lands with exactly the bytes buildExtendedLocked
// would assign it — unchanged rows were built from the same foldPi/ref
// sources when lastModel was built, changed rows copy the same foldPi
// entries — so the result is bit-identical, without the O(users) walk.
func (u *Updater) buildExtendedPatchedLocked(rows []int32) *core.Model {
	ref := u.refined
	last := u.lastModel
	C := ref.Cfg.NumCommunities
	total := u.baseUsers + u.newUsers
	m := &core.Model{
		Cfg:        ref.Cfg,
		NumUsers:   total,
		NumWords:   ref.NumWords,
		NumBuckets: ref.NumBuckets,
		NumAttrs:   ref.NumAttrs,
		Pi:         sparse.NewDense(total, C),
		Theta:      ref.Theta,
		Phi:        ref.Phi,
		Eta:        ref.Eta,
		Nu:         ref.Nu,
		PopFreq:    ref.PopFreq,
		Xi:         ref.Xi,
	}
	copy(m.Pi.Data, last.Pi.Data)
	uniform := 1 / float64(C)
	for id := last.NumUsers; id < total; id++ {
		dst := m.Pi.Row(id)
		if row, ok := u.foldPi[int32(id)]; ok {
			copy(dst, row)
		} else if id < ref.NumUsers {
			copy(dst, ref.Pi.Row(id))
		} else {
			// A declared user with no documents yet: the smoothed prior.
			for c := range dst {
				dst[c] = uniform
			}
		}
	}
	for _, id := range rows {
		if int(id) >= last.NumUsers {
			continue // appended above
		}
		if row, ok := u.foldPi[id]; ok {
			copy(m.Pi.Row(int(id)), row)
		}
		// A dirty user without documents has no fold row and keeps their
		// previous row — which last.Pi already holds.
	}
	u.extendedDocArraysLocked(m, ref)
	m.Rehydrate()
	return m
}

// mergeIDs merges two ascending id lists into one ascending deduplicated
// list (reusing a's backing array when possible).
func mergeIDs(a, b []int32) []int32 {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return append(a, b...)
	}
	a = append(a, b...)
	slices.Sort(a)
	return slices.Compact(a)
}

// pruneSnapshotsLocked deletes published snapshot files older than the
// last KeepSnapshots generations. Retention works off a directory
// listing rather than counting generations down from the cut: a gap in
// the gen-%08d sequence (a failed publish rolled the generation back, or
// a file was removed externally) must not shadow everything older than
// it — counting down and stopping at the first missing file did exactly
// that, leaving stale snapshots on disk forever.
func (u *Updater) pruneSnapshotsLocked() {
	if u.opts.Dir == "" || u.generation <= uint64(u.opts.KeepSnapshots) {
		return
	}
	cut := u.generation - uint64(u.opts.KeepSnapshots)
	files, err := store.ScanGenerations(u.opts.Dir)
	if err != nil {
		return // transient listing failure; retried next publish
	}
	for _, f := range files {
		if f.Generation <= cut {
			os.Remove(filepath.Join(u.opts.Dir, f.Name))
		}
	}
	if u.sharder != nil {
		u.sharder.Prune(cut)
	}
}

// Drain performs the graceful-shutdown sequence: stop accepting ingest,
// fsync the journal, and publish a final snapshot covering everything
// pending. Safe to call more than once.
func (u *Updater) Drain() error {
	u.StopIngest()
	if err := u.j.Sync(); err != nil {
		return err
	}
	u.mu.Lock()
	defer u.mu.Unlock()
	if u.pending == 0 && len(u.dirtyUsersLocked()) == 0 {
		return nil
	}
	_, err := u.publishLocked()
	return err
}
