package stream

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"testing"

	"repro/internal/store"
)

func TestSnapshotServer(t *testing.T) {
	dir := t.TempDir()
	want := map[uint64][]byte{
		2: []byte("generation two"),
		5: []byte("generation five (post-gap)"),
	}
	for gen, body := range want {
		if err := os.WriteFile(store.GenPath(dir, gen), body, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	srv := httptest.NewServer(SnapshotServer(dir))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/api/generations")
	if err != nil {
		t.Fatal(err)
	}
	var man Manifest
	if err := json.NewDecoder(resp.Body).Decode(&man); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if man.Generation != 5 || len(man.Files) != 2 || man.Files[0].Generation != 2 {
		t.Fatalf("manifest = %+v, want newest generation 5 over files [2 5]", man)
	}
	if man.Files[1].Size != int64(len(want[5])) {
		t.Fatalf("manifest size %d, want %d", man.Files[1].Size, len(want[5]))
	}

	for gen, body := range want {
		resp, err := http.Get(srv.URL + "/api/generations/file?gen=" + strconv.FormatUint(gen, 10))
		if err != nil {
			t.Fatal(err)
		}
		got, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || string(got) != string(body) {
			t.Fatalf("file gen=%d: status %d body %q", gen, resp.StatusCode, got)
		}
	}

	// Pruned / never-published generations are 404, malformed and
	// traversal-shaped requests 400 — never a path walk.
	for query, wantStatus := range map[string]int{
		"gen=3":             http.StatusNotFound,
		"gen=0":             http.StatusBadRequest,
		"gen=":              http.StatusBadRequest,
		"gen=../events.wal": http.StatusBadRequest,
	} {
		resp, err := http.Get(srv.URL + "/api/generations/file?" + query)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != wantStatus {
			t.Errorf("file?%s: status %d, want %d", query, resp.StatusCode, wantStatus)
		}
	}
}
