// Package stream is the write path of the serving system: it turns live
// events — new users, friendship edges, documents, diffusions — into
// refreshed model snapshots, so the profiles cpd-serve answers from track
// a moving social graph without full retrains. Three pieces compose it:
//
//   - Journal (journal.go): an append-only, CRC-framed event log with
//     batched fsync, crash-safe replay (a torn or corrupt tail is detected
//     and truncated at the last valid record), a published-offset
//     watermark, and watermark-based compaction. Record framing reuses the
//     length+CRC32 section discipline of the internal/store snapshot
//     formats.
//
//   - Updater (updater.go): validates and applies events into an
//     accumulated stream corpus, and every delta window re-infers the
//     affected users by folding their cumulative documents and friendships
//     in against the frozen model parameters through serve.Engine's
//     fold-in worker pool. Every GibbsEvery-th publish may additionally run
//     a resumable delta-Gibbs pass (core.NewEngineFromModel +
//     Engine.SetDirty) over the merged base+stream graph, re-estimating
//     the affected rows — and the global Θ/Φ/η — by actual sampling.
//
//   - Publisher (publish.go): builds the extended model (base rows +
//     folded/re-estimated rows), writes it as a v2 snapshot with a
//     monotonic generation number, atomically promotes it into the target
//     serve.Engine slot (hot-swap; in-flight queries finish on their old
//     snapshot), advances the journal watermark, and prunes old snapshot
//     files. Status() is the freshness/lag gauge /api/stats exposes, now
//     including per-phase publish timings and publish-latency /
//     append→servable-lag histograms.
//
// # O(changed) publishes
//
// Steady-state publishes cost proportional to the set of users that
// changed since the last publish, not the model size. Three layers
// compose the incremental path (see publish.go's header for the flow):
// the extended model is patched from the previous publish's (only
// re-folded Π rows overwritten, new-user rows appended); the serving
// snapshot is patched copy-on-write from the live one via serve.PatchFrom
// (the shared rank index is reused — Φ unchanged means word scores
// unchanged — and only user-index shards containing dirty rows rebuild);
// and the on-disk generation is written with store.SaveV2Reusing, which
// splices byte-identical base-model sections out of the previous
// generation's file instead of re-encoding them. Every layer is
// bit-for-bit identical to a from-scratch rebuild (TestIncrementalPublish*
// pins this differentially, down to byte-equal snapshot files). A publish
// falls back to the full path exactly when the base model itself moved: a
// delta-Gibbs pass ran, the process restarted, the served snapshot was
// swapped externally, or Options.FullRebuild pins the baseline.
//
// # Freshness and determinism guarantees
//
// An event accepted by Ingest is applied to the in-memory corpus
// immediately and becomes query-visible at the next publish — "visible
// within one publish cycle". Fold-in windows are deterministic: each
// user's profile is a pure function of (base model, their cumulative
// documents and base-user friendships, their derived seed), so ingesting a
// corpus event-by-event and publishing per window yields bit-identical
// query results to batch-folding the same final corpus in one window
// (the replay-equals-batch invariant the streaming scenario presets pin).
// Delta-Gibbs publishes trade that replay identity for genuine
// re-estimation; they remain deterministic per (journal, options).
//
// # Journal format
//
//	header (16 bytes): magic "CPDJNL1\n" + baseOffset uint64 LE
//	records:           length uint32 LE | payload | crc32 uint32 LE (IEEE, over payload)
//	payload:           type u8 | user i32 | target i32 | time i64 | nWords u32 | words []i32 (all LE)
//
// Offsets are logical: baseOffset is the logical offset of the first
// record in the file, so compaction (rewriting the file without records
// below the watermark) preserves every previously returned offset. The
// watermark lives in a sidecar file (path + ".mark", offset + CRC,
// written atomically); an optional updater checkpoint (path + ".state")
// snapshots the accumulated corpus at the watermark so a restart replays
// only the unpublished suffix.
package stream
