// Package hist is the one log-bucketed latency histogram shared by the
// serving engine's per-endpoint counters, the streaming publisher's
// publish-latency/lag tracking, and the load generator — so p50/p95/p99
// mean the same thing wherever they are reported, and every surface
// (JSON stats, the load-test table, the Prometheus exposition on
// /metrics) digests the same bucket geometry.
//
// Bucket i covers [Base·Growth^i, Base·Growth^(i+1)): 240 buckets at 9%
// growth span 250ns to beyond four minutes with no per-observation
// allocation. Quantiles report the geometric midpoint of the bucket
// holding the target observation, capped by the tracked exact maximum.
package hist

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"sync/atomic"
	"time"
)

const (
	Base       = 250 * time.Nanosecond
	Growth     = 1.09
	NumBuckets = 240
)

// invLogGrowth caches 1/ln(Growth) for Index.
var invLogGrowth = 1 / math.Log(Growth)

// Index maps a duration to its bucket.
func Index(d time.Duration) int {
	if d <= Base {
		return 0
	}
	i := int(math.Log(float64(d)/float64(Base)) * invLogGrowth)
	if i >= NumBuckets {
		i = NumBuckets - 1
	}
	return i
}

// upperBound is bucket i's exclusive upper edge in nanoseconds.
func upperBound(i int) float64 {
	return float64(Base) * math.Pow(Growth, float64(i+1))
}

// Hist is the single-writer (or externally synchronized) histogram.
type Hist struct {
	Count   uint64
	Errs    uint64
	TotalNS uint64
	MaxNS   uint64
	Buckets [NumBuckets]uint64
}

// Observe records one latency sample; err marks it as a failed operation
// (still latency-counted — errors have response times too).
func (h *Hist) Observe(d time.Duration, err error) {
	if d < 0 {
		d = 0
	}
	h.Count++
	h.TotalNS += uint64(d)
	if err != nil {
		h.Errs++
	}
	if uint64(d) > h.MaxNS {
		h.MaxNS = uint64(d)
	}
	h.Buckets[Index(d)]++
}

// Merge folds o into h.
func (h *Hist) Merge(o *Hist) {
	h.Count += o.Count
	h.Errs += o.Errs
	h.TotalNS += o.TotalNS
	if o.MaxNS > h.MaxNS {
		h.MaxNS = o.MaxNS
	}
	for i := range h.Buckets {
		h.Buckets[i] += o.Buckets[i]
	}
}

// Quantile returns the q-quantile as the geometric midpoint of the bucket
// holding the q·count-th observation; the tracked exact maximum caps it.
func (h *Hist) Quantile(q float64) time.Duration {
	if h.Count == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(h.Count)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range h.Buckets {
		cum += c
		if cum >= target {
			mid := float64(Base) * math.Pow(Growth, float64(i)) * math.Sqrt(Growth)
			if mid > float64(h.MaxNS) {
				mid = float64(h.MaxNS)
			}
			return time.Duration(mid)
		}
	}
	return time.Duration(h.MaxNS)
}

// Mean returns the exact average (total/count), not a bucket estimate.
func (h *Hist) Mean() time.Duration {
	if h.Count == 0 {
		return 0
	}
	return time.Duration(h.TotalNS / h.Count)
}

// Atomic is the concurrent variant: lock-free observation from any number
// of goroutines, read via Snapshot.
type Atomic struct {
	count, errs, totalNS, maxNS atomic.Uint64
	buckets                     [NumBuckets]atomic.Uint64
}

// Observe records one latency sample concurrently.
func (a *Atomic) Observe(d time.Duration, err error) {
	if d < 0 {
		d = 0
	}
	ns := uint64(d)
	a.count.Add(1)
	a.totalNS.Add(ns)
	if err != nil {
		a.errs.Add(1)
	}
	for {
		cur := a.maxNS.Load()
		if ns <= cur || a.maxNS.CompareAndSwap(cur, ns) {
			break
		}
	}
	a.buckets[Index(d)].Add(1)
}

// Snapshot copies the counters into a plain Hist. Concurrent observers may
// land between field loads; each counter is individually consistent, which
// is all quantile reporting needs.
func (a *Atomic) Snapshot() *Hist {
	h := &Hist{
		Count:   a.count.Load(),
		Errs:    a.errs.Load(),
		TotalNS: a.totalNS.Load(),
		MaxNS:   a.maxNS.Load(),
	}
	for i := range h.Buckets {
		h.Buckets[i] = a.buckets[i].Load()
	}
	return h
}

// PromBounds are the coarse `le` bounds (seconds) the Prometheus
// exposition rolls the fine buckets into — the fine geometry is great for
// quantiles but 240 series per histogram is hostile to a scrape.
var PromBounds = []float64{
	0.000005, 0.00001, 0.000025, 0.00005, 0.0001, 0.00025, 0.0005,
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
	1, 2.5, 5, 10, 30, 60,
}

// WriteProm emits the histogram in Prometheus text exposition format:
// cumulative `name_bucket{...,le="b"}` series over PromBounds ending with
// le="+Inf", then name_sum (seconds) and name_count. labels is the
// caller's label set without braces ("" for none); the caller writes the
// # HELP / # TYPE header lines.
func (h *Hist) WriteProm(w io.Writer, name, labels string) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum uint64
	fine := 0
	for _, b := range PromBounds {
		bNS := b * 1e9
		for fine < NumBuckets && upperBound(fine) <= bNS {
			cum += h.Buckets[fine]
			fine++
		}
		fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d\n", name, labels, sep, formatFloat(b), cum)
	}
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, h.Count)
	lb := ""
	if labels != "" {
		lb = "{" + labels + "}"
	}
	fmt.Fprintf(w, "%s_sum%s %s\n", name, lb, formatFloat(float64(h.TotalNS)/1e9))
	fmt.Fprintf(w, "%s_count%s %d\n", name, lb, h.Count)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
