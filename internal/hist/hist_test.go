package hist

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestObserveAndQuantile(t *testing.T) {
	var h Hist
	for i := 0; i < 1000; i++ {
		h.Observe(time.Duration(i+1)*time.Microsecond, nil)
	}
	if h.Count != 1000 || h.Errs != 0 {
		t.Fatalf("count=%d errs=%d", h.Count, h.Errs)
	}
	if got := h.Mean(); got != 500500*time.Nanosecond {
		t.Fatalf("mean = %v", got)
	}
	p50, p95, p99 := h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99)
	if !(p50 <= p95 && p95 <= p99) {
		t.Fatalf("quantiles not monotone: %v %v %v", p50, p95, p99)
	}
	// ~9% bucket resolution: p50 of uniform 1..1000µs is ~500µs.
	if p50 < 400*time.Microsecond || p50 > 620*time.Microsecond {
		t.Fatalf("p50 = %v, want ~500µs", p50)
	}
	if p99 > time.Duration(h.MaxNS) {
		t.Fatalf("p99 %v beyond tracked max %d", p99, h.MaxNS)
	}
	h.Observe(time.Millisecond, errors.New("boom"))
	if h.Errs != 1 {
		t.Fatalf("errs = %d", h.Errs)
	}
}

func TestMergeMatchesCombined(t *testing.T) {
	var a, b, c Hist
	for i := 0; i < 200; i++ {
		d := time.Duration(i*i) * time.Microsecond
		a.Observe(d, nil)
		c.Observe(d, nil)
	}
	for i := 0; i < 100; i++ {
		d := time.Duration(i) * time.Millisecond
		b.Observe(d, nil)
		c.Observe(d, nil)
	}
	a.Merge(&b)
	if a != c {
		t.Fatal("merged histogram differs from combined observations")
	}
}

func TestAtomicMatchesPlain(t *testing.T) {
	var a Atomic
	var h Hist
	for i := 0; i < 500; i++ {
		d := time.Duration(i*7) * time.Microsecond
		var err error
		if i%50 == 0 {
			err = errors.New("x")
		}
		a.Observe(d, err)
		h.Observe(d, err)
	}
	if *a.Snapshot() != h {
		t.Fatal("atomic snapshot differs from plain histogram")
	}
}

func TestWriteProm(t *testing.T) {
	var h Hist
	h.Observe(100*time.Microsecond, nil)
	h.Observe(2*time.Millisecond, nil)
	h.Observe(3*time.Second, nil)
	var b strings.Builder
	h.WriteProm(&b, "x_seconds", `endpoint="rank"`)
	out := b.String()
	if !strings.Contains(out, `x_seconds_bucket{endpoint="rank",le="+Inf"} 3`) {
		t.Fatalf("missing +Inf bucket:\n%s", out)
	}
	if !strings.Contains(out, "x_seconds_count{endpoint=\"rank\"} 3") {
		t.Fatalf("missing count:\n%s", out)
	}
	// The 100µs observation lands in a fine bucket whose upper edge is
	// under 250µs, so the le="0.00025" cumulative bucket must hold it.
	if !strings.Contains(out, `le="0.00025"} 1`) {
		t.Fatalf("100µs sample not cumulated under 250µs:\n%s", out)
	}
	// Cumulative counts never decrease across the bound list.
	last := -1
	for _, line := range strings.Split(out, "\n") {
		if !strings.Contains(line, "_bucket{") {
			continue
		}
		var v int
		if _, err := fmtSscanLast(line, &v); err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		if v < last {
			t.Fatalf("cumulative bucket decreased at %q", line)
		}
		last = v
	}
}

func fmtSscanLast(line string, v *int) (int, error) {
	i := strings.LastIndexByte(line, ' ')
	n := 0
	for _, ch := range line[i+1:] {
		if ch < '0' || ch > '9' {
			break
		}
		n = n*10 + int(ch-'0')
	}
	*v = n
	return 1, nil
}
