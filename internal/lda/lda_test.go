package lda

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// plantedCorpus builds documents from k disjoint word blocks: doc i uses
// only words from block i%k, so topics are perfectly identifiable.
func plantedCorpus(k, docsPerTopic, wordsPerDoc, vocabPerTopic int, seed uint64) ([][]int32, int) {
	r := rng.New(seed)
	var docs [][]int32
	for z := 0; z < k; z++ {
		for d := 0; d < docsPerTopic; d++ {
			words := make([]int32, wordsPerDoc)
			for i := range words {
				words[i] = int32(z*vocabPerTopic + r.Intn(vocabPerTopic))
			}
			docs = append(docs, words)
		}
	}
	return docs, k * vocabPerTopic
}

func TestTrainRecoversPlantedTopics(t *testing.T) {
	const k = 4
	docs, numWords := plantedCorpus(k, 60, 8, 12, 1)
	m := Train(docs, numWords, Config{NumTopics: k, Iters: 60, Seed: 2})
	// Every doc's dominant topic must match within its planted block:
	// measure purity of the dominant-topic clustering.
	counts := map[[2]int]int{}
	for d := range docs {
		counts[[2]int{m.DominantTopic(d), d / 60}]++
	}
	bestPerTopic := map[int]int{}
	total := 0
	for key, n := range counts {
		if n > bestPerTopic[key[0]] {
			bestPerTopic[key[0]] = n
		}
		total += n
	}
	pure := 0
	for _, n := range bestPerTopic {
		pure += n
	}
	if purity := float64(pure) / float64(total); purity < 0.9 {
		t.Fatalf("planted-topic purity = %v, want >= 0.9", purity)
	}
}

func TestDistributionsNormalized(t *testing.T) {
	docs, numWords := plantedCorpus(3, 20, 6, 10, 3)
	m := Train(docs, numWords, Config{NumTopics: 3, Iters: 20, Seed: 4})
	for z := 0; z < 3; z++ {
		var s float64
		for w := 0; w < numWords; w++ {
			p := m.PhiAt(z, w)
			if p <= 0 {
				t.Fatalf("PhiAt(%d,%d) = %v", z, w, p)
			}
			s += p
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("phi_%d sums to %v", z, s)
		}
		row := m.Phi(z)
		if len(row) != numWords {
			t.Fatalf("Phi row length %d", len(row))
		}
	}
	for d := range docs {
		s := 0.0
		for _, p := range m.DocTopics(d) {
			if p <= 0 {
				t.Fatalf("doc %d has non-positive topic prob", d)
			}
			s += p
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("doc %d topics sum to %v", d, s)
		}
	}
}

func TestInferDoc(t *testing.T) {
	docs, numWords := plantedCorpus(3, 40, 8, 10, 5)
	m := Train(docs, numWords, Config{NumTopics: 3, Iters: 40, Seed: 6})
	// A fresh doc made of block-0 words must infer the same topic that
	// dominates the trained block-0 docs.
	trainTopic := m.DominantTopic(0)
	theta := m.InferDoc([]int32{0, 1, 2, 3, 4, 5}, 30, 7)
	var s float64
	best := 0
	for z, p := range theta {
		s += p
		if p > theta[best] {
			best = z
		}
	}
	if math.Abs(s-1) > 1e-9 {
		t.Fatalf("inferred theta sums to %v", s)
	}
	if best != trainTopic {
		t.Fatalf("inferred topic %d, want %d (theta=%v)", best, trainTopic, theta)
	}
}

func TestPerplexityOrdering(t *testing.T) {
	docs, numWords := plantedCorpus(3, 40, 8, 10, 8)
	m := Train(docs, numWords, Config{NumTopics: 3, Iters: 40, Seed: 9})
	learned := make([][]float64, len(docs))
	uniform := make([][]float64, len(docs))
	for d := range docs {
		learned[d] = m.DocTopics(d)
		uniform[d] = []float64{1.0 / 3, 1.0 / 3, 1.0 / 3}
	}
	pl := m.Perplexity(docs, learned)
	pu := m.Perplexity(docs, uniform)
	if !(pl < pu) {
		t.Fatalf("learned perplexity %v not below uniform %v", pl, pu)
	}
	if pl >= float64(numWords) {
		t.Fatalf("learned perplexity %v not below vocab size %d", pl, numWords)
	}
}

func TestTrainPanicsWithoutTopics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NumTopics=0 did not panic")
		}
	}()
	Train([][]int32{{0}}, 1, Config{})
}

func TestEmptyCorpus(t *testing.T) {
	m := Train(nil, 10, Config{NumTopics: 2, Iters: 5})
	if m.NumTopics != 2 {
		t.Fatal("empty corpus model malformed")
	}
	// Phi must still be a valid (smoothed-uniform) distribution.
	var s float64
	for w := 0; w < 10; w++ {
		s += m.PhiAt(0, w)
	}
	if math.Abs(s-1) > 1e-9 {
		t.Fatalf("empty-corpus phi sums to %v", s)
	}
}

func BenchmarkTrain(b *testing.B) {
	docs, numWords := plantedCorpus(10, 50, 8, 20, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Train(docs, numWords, Config{NumTopics: 10, Iters: 10, Seed: uint64(i)})
	}
}
