// Package lda implements Latent Dirichlet Allocation with collapsed Gibbs
// sampling (Blei, Ng & Jordan [3]; Griffiths & Steyvers [13] sampler).
// CPD uses it three ways: the parallel E-step segments users by their
// dominant LDA topic (Sect. 4.3), the CRM+Agg/COLD+Agg baselines aggregate
// per-document LDA topic distributions (Eqs. 20–21), and the WTM baseline
// uses LDA topic vectors as content-similarity features.
package lda

import (
	"math"

	"repro/internal/rng"
	"repro/internal/sparse"
)

// Config holds LDA hyperparameters.
type Config struct {
	NumTopics int
	Alpha     float64 // document-topic Dirichlet prior; 0 means 50/K
	Beta      float64 // topic-word Dirichlet prior; 0 means 0.1
	Iters     int     // Gibbs sweeps; 0 means 50
	Seed      uint64
}

func (c Config) withDefaults() Config {
	if c.Alpha == 0 {
		c.Alpha = 50 / float64(c.NumTopics)
	}
	if c.Beta == 0 {
		c.Beta = 0.1
	}
	if c.Iters == 0 {
		c.Iters = 50
	}
	return c
}

// Model is a trained LDA model.
type Model struct {
	NumTopics, NumWords int
	Alpha, Beta         float64

	// topicWord[z][w] counts, topicTotal[z] marginals.
	topicWord  *sparse.Dense
	topicTotal []float64
	// docTopic[d][z] counts, docLen[d] totals, assign[d][k] per-word topics.
	docTopic *sparse.Dense
	docLen   []int
	assign   [][]int32
}

// Train runs collapsed Gibbs LDA on docs (each a slice of word ids drawn
// from [0, numWords)).
func Train(docs [][]int32, numWords int, cfg Config) *Model {
	cfg = cfg.withDefaults()
	if cfg.NumTopics <= 0 {
		panic("lda: NumTopics must be positive")
	}
	m := &Model{
		NumTopics:  cfg.NumTopics,
		NumWords:   numWords,
		Alpha:      cfg.Alpha,
		Beta:       cfg.Beta,
		topicWord:  sparse.NewDense(cfg.NumTopics, numWords),
		topicTotal: make([]float64, cfg.NumTopics),
		docTopic:   sparse.NewDense(len(docs), cfg.NumTopics),
		docLen:     make([]int, len(docs)),
		assign:     make([][]int32, len(docs)),
	}
	r := rng.New(cfg.Seed)
	// Random initialization.
	for d, words := range docs {
		m.assign[d] = make([]int32, len(words))
		m.docLen[d] = len(words)
		for k, w := range words {
			z := r.Intn(cfg.NumTopics)
			m.assign[d][k] = int32(z)
			m.topicWord.Add(z, int(w), 1)
			m.topicTotal[z]++
			m.docTopic.Add(d, z, 1)
		}
	}
	weights := make([]float64, cfg.NumTopics)
	wBeta := float64(numWords) * cfg.Beta
	for iter := 0; iter < cfg.Iters; iter++ {
		for d, words := range docs {
			dt := m.docTopic.Row(d)
			for k, w := range words {
				old := int(m.assign[d][k])
				m.topicWord.Add(old, int(w), -1)
				m.topicTotal[old]--
				dt[old]--
				for z := 0; z < cfg.NumTopics; z++ {
					weights[z] = (dt[z] + cfg.Alpha) *
						(m.topicWord.At(z, int(w)) + cfg.Beta) /
						(m.topicTotal[z] + wBeta)
				}
				z := r.Categorical(weights)
				m.assign[d][k] = int32(z)
				m.topicWord.Add(z, int(w), 1)
				m.topicTotal[z]++
				dt[z]++
			}
		}
	}
	return m
}

// Phi returns the smoothed topic-word distribution for topic z (a fresh
// slice).
func (m *Model) Phi(z int) []float64 {
	row := make([]float64, m.NumWords)
	denom := m.topicTotal[z] + float64(m.NumWords)*m.Beta
	for w := 0; w < m.NumWords; w++ {
		row[w] = (m.topicWord.At(z, w) + m.Beta) / denom
	}
	return row
}

// PhiAt returns the smoothed probability of word w under topic z without
// materialising the row.
func (m *Model) PhiAt(z, w int) float64 {
	return (m.topicWord.At(z, w) + m.Beta) / (m.topicTotal[z] + float64(m.NumWords)*m.Beta)
}

// DocTopics returns the smoothed topic distribution of training document d.
func (m *Model) DocTopics(d int) []float64 {
	row := make([]float64, m.NumTopics)
	denom := float64(m.docLen[d]) + float64(m.NumTopics)*m.Alpha
	dt := m.docTopic.Row(d)
	for z := range row {
		row[z] = (dt[z] + m.Alpha) / denom
	}
	return row
}

// DominantTopic returns the most frequently assigned topic of training
// document d (ties broken by lowest id); the parallel E-step's user
// segmentation keys on this.
func (m *Model) DominantTopic(d int) int {
	dt := m.docTopic.Row(d)
	best := 0
	for z := 1; z < m.NumTopics; z++ {
		if dt[z] > dt[best] {
			best = z
		}
	}
	return best
}

// InferDoc folds in an unseen document with `iters` Gibbs sweeps over a
// fixed topic-word table and returns its topic distribution.
func (m *Model) InferDoc(words []int32, iters int, seed uint64) []float64 {
	if iters <= 0 {
		iters = 20
	}
	r := rng.New(seed)
	counts := make([]float64, m.NumTopics)
	assign := make([]int32, len(words))
	for k := range words {
		z := r.Intn(m.NumTopics)
		assign[k] = int32(z)
		counts[z]++
	}
	weights := make([]float64, m.NumTopics)
	for it := 0; it < iters; it++ {
		for k, w := range words {
			old := int(assign[k])
			counts[old]--
			for z := 0; z < m.NumTopics; z++ {
				weights[z] = (counts[z] + m.Alpha) * m.PhiAt(z, int(w))
			}
			z := r.Categorical(weights)
			assign[k] = int32(z)
			counts[z]++
		}
	}
	out := make([]float64, m.NumTopics)
	denom := float64(len(words)) + float64(m.NumTopics)*m.Alpha
	for z := range out {
		out[z] = (counts[z] + m.Alpha) / denom
	}
	return out
}

// Perplexity computes exp(-sum log p(w|d) / N) over the given documents
// using their inferred (or training) topic mixtures.
func (m *Model) Perplexity(docs [][]int32, docTopics [][]float64) float64 {
	var logLik float64
	var n int
	for d, words := range docs {
		theta := docTopics[d]
		for _, w := range words {
			var p float64
			for z := 0; z < m.NumTopics; z++ {
				p += theta[z] * m.PhiAt(z, int(w))
			}
			if p <= 0 {
				p = 1e-300
			}
			logLik += math.Log(p)
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return math.Exp(-logLik / float64(n))
}
