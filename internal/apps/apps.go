// Package apps implements the paper's three community-level applications
// (Sect. 5) on top of a trained CPD model: community-aware diffusion
// prediction (Eq. 18), profile-driven community ranking (Eq. 19) and
// profile-driven community visualization (the Fig. 7 diffusion graphs,
// exported as DOT and JSON).
package apps

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/socialgraph"
)

// RankedCommunity is one entry of a community ranking.
type RankedCommunity struct {
	Community int
	Score     float64
}

// RankCommunities scores all communities for a query (word ids) with
// Eq. 19 and returns them in descending score order.
func RankCommunities(m *core.Model, query []int32) []RankedCommunity {
	scores := m.RankCommunities(query)
	out := make([]RankedCommunity, len(scores))
	for c, s := range scores {
		out[c] = RankedCommunity{Community: c, Score: s}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Score > out[j].Score })
	return out
}

// RankCommunitiesText tokenizes a free-text query through the given
// pipeline and vocabulary (unknown words are dropped) and ranks
// communities. It returns an error if no query word is in the vocabulary.
func RankCommunitiesText(m *core.Model, vocab *corpus.Vocabulary, p corpus.Pipeline, query string) ([]RankedCommunity, error) {
	var ids []int32
	for _, tok := range p.Process(query) {
		if id, ok := vocab.ID(tok); ok {
			ids = append(ids, int32(id))
		}
	}
	if len(ids) == 0 {
		return nil, fmt.Errorf("apps: no query token of %q is in the vocabulary", query)
	}
	return RankCommunities(m, ids), nil
}

// DiffusionProb predicts whether user u will diffuse document j in time
// bucket b (Eq. 18) — the community-aware diffusion application.
func DiffusionProb(m *core.Model, g *socialgraph.Graph, u, j, b int) float64 {
	return m.DiffusionProb(g, u, j, b)
}

// DiffusionEdge is one community-to-community edge of a visualization.
type DiffusionEdge struct {
	From, To int
	Strength float64
}

// DiffusionGraph is the Fig. 7 visualization payload: one node per
// community (labeled with its top content words when a vocabulary is
// supplied) and the above-average diffusion edges.
type DiffusionGraph struct {
	Topic  int // -1 for topic aggregation
	Labels []string
	Edges  []DiffusionEdge
}

// BuildDiffusionGraph extracts the community diffusion graph for topic z
// (z = -1 aggregates over topics, Fig. 7(a)); edges below the mean
// strength are skipped, exactly as the paper does "for simpler
// visualization". vocab may be nil, in which case nodes are labeled c01,
// c02, ...
func BuildDiffusionGraph(m *core.Model, vocab *corpus.Vocabulary, z int) *DiffusionGraph {
	C := m.Cfg.NumCommunities
	strength := func(a, b int) float64 {
		if z < 0 {
			var s float64
			for zz := 0; zz < m.Cfg.NumTopics; zz++ {
				s += m.Eta.At(a, b, zz)
			}
			return s
		}
		return m.Eta.At(a, b, z)
	}
	var total float64
	for a := 0; a < C; a++ {
		for b := 0; b < C; b++ {
			total += strength(a, b)
		}
	}
	mean := total / float64(C*C)
	dg := &DiffusionGraph{Topic: z, Labels: make([]string, C)}
	for c := 0; c < C; c++ {
		dg.Labels[c] = CommunityLabel(m, vocab, c, 3)
	}
	for a := 0; a < C; a++ {
		for b := 0; b < C; b++ {
			if s := strength(a, b); s > mean {
				dg.Edges = append(dg.Edges, DiffusionEdge{From: a, To: b, Strength: s})
			}
		}
	}
	sort.Slice(dg.Edges, func(i, j int) bool { return dg.Edges[i].Strength > dg.Edges[j].Strength })
	return dg
}

// CommunityLabel names a community by the top words of its dominant topic
// ("data database search" style, as in Sect. 6.3.3), or "cNN" without a
// vocabulary.
func CommunityLabel(m *core.Model, vocab *corpus.Vocabulary, c, words int) string {
	if vocab == nil {
		return fmt.Sprintf("c%02d", c)
	}
	theta := m.Theta.Row(c)
	best := 0
	for z := 1; z < m.Cfg.NumTopics; z++ {
		if theta[z] > theta[best] {
			best = z
		}
	}
	var parts []string
	for _, w := range m.TopWords(best, words) {
		parts = append(parts, vocab.Word(w))
	}
	return strings.Join(parts, " ")
}

// WriteDOT renders the diffusion graph in Graphviz DOT format, with edge
// pen widths proportional to diffusion strength.
func (dg *DiffusionGraph) WriteDOT(w io.Writer) error {
	var maxS float64
	for _, e := range dg.Edges {
		if e.Strength > maxS {
			maxS = e.Strength
		}
	}
	if maxS == 0 {
		maxS = 1
	}
	if _, err := fmt.Fprintln(w, "digraph diffusion {"); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "  node [shape=ellipse fontsize=10];"); err != nil {
		return err
	}
	seen := map[int]bool{}
	for _, e := range dg.Edges {
		seen[e.From] = true
		seen[e.To] = true
	}
	for c, label := range dg.Labels {
		if !seen[c] {
			continue
		}
		if _, err := fmt.Fprintf(w, "  c%02d [label=%q];\n", c, fmt.Sprintf("c%02d: %s", c, label)); err != nil {
			return err
		}
	}
	for _, e := range dg.Edges {
		width := 0.5 + 4*e.Strength/maxS
		if _, err := fmt.Fprintf(w, "  c%02d -> c%02d [penwidth=%.2f label=\"%.4f\" fontsize=8];\n",
			e.From, e.To, width, e.Strength); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

// WriteJSON renders the diffusion graph as JSON.
func (dg *DiffusionGraph) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(dg)
}

// Openness returns, per community, the count of above-average edges it
// shares with *other* communities in the aggregated diffusion graph — the
// paper's Sect. 6.3.3 observation that some research communities are more
// "open" than others.
func Openness(m *core.Model) []int {
	dg := BuildDiffusionGraph(m, nil, -1)
	open := make([]int, m.Cfg.NumCommunities)
	for _, e := range dg.Edges {
		if e.From != e.To {
			open[e.From]++
			open[e.To]++
		}
	}
	return open
}

// TopDiffusionTopics lists the topics community a most strongly diffuses
// community b on, descending — Fig. 5(c)'s case-study table.
func TopDiffusionTopics(m *core.Model, a, b, k int) []RankedCommunity {
	type ts struct {
		z int
		s float64
	}
	var all []ts
	for z := 0; z < m.Cfg.NumTopics; z++ {
		all = append(all, ts{z, m.Eta.At(a, b, z)})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].s > all[j].s })
	if k > len(all) {
		k = len(all)
	}
	out := make([]RankedCommunity, k)
	for i := 0; i < k; i++ {
		out[i] = RankedCommunity{Community: all[i].z, Score: all[i].s}
	}
	return out
}
