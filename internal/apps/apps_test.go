package apps

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/socialgraph"
	"repro/internal/synth"
)

var (
	testOnce  sync.Once
	testModel *core.Model
	testGraph *socialgraph.Graph
	testVocab *corpus.Vocabulary
)

// sharedModel trains one small model for all app tests.
func sharedModel(t *testing.T) (*core.Model, *socialgraph.Graph, *corpus.Vocabulary) {
	t.Helper()
	testOnce.Do(func() {
		cfg := synth.TwitterLike(150, 31)
		g, _ := synth.Generate(cfg)
		m, _, err := core.Train(g, core.Config{
			NumCommunities: 8, NumTopics: 10, EMIters: 8, Workers: 1,
			Seed: 4, Rho: 0.125,
		})
		if err != nil {
			panic(err)
		}
		testModel, testGraph, testVocab = m, g, synth.BuildVocabulary(cfg)
	})
	return testModel, testGraph, testVocab
}

func TestRankCommunitiesOrdering(t *testing.T) {
	m, _, _ := sharedModel(t)
	ranked := RankCommunities(m, []int32{0, 1})
	if len(ranked) != m.Cfg.NumCommunities {
		t.Fatalf("ranked %d communities", len(ranked))
	}
	for i := 1; i < len(ranked); i++ {
		if ranked[i-1].Score < ranked[i].Score {
			t.Fatalf("ranking not descending at %d", i)
		}
	}
}

func TestRankCommunitiesText(t *testing.T) {
	m, _, v := sharedModel(t)
	p := corpus.Pipeline{MinDocTokens: 1}
	ranked, err := RankCommunitiesText(m, v, p, v.Word(0)+" "+v.Word(1))
	if err != nil || len(ranked) == 0 {
		t.Fatalf("RankCommunitiesText: %v", err)
	}
	if _, err := RankCommunitiesText(m, v, p, "zzz-not-a-word"); err == nil {
		t.Fatal("unknown-word query accepted")
	}
}

func TestDiffusionProbDelegates(t *testing.T) {
	m, g, _ := sharedModel(t)
	p := DiffusionProb(m, g, 1, 0, m.DocBucket[0])
	if p < 0 || p > 1 {
		t.Fatalf("DiffusionProb = %v", p)
	}
	if p != m.DiffusionProb(g, 1, 0, m.DocBucket[0]) {
		t.Fatal("wrapper differs from model method")
	}
}

func TestBuildDiffusionGraphFilter(t *testing.T) {
	m, _, v := sharedModel(t)
	for _, z := range []int{-1, 0} {
		dg := BuildDiffusionGraph(m, v, z)
		if len(dg.Edges) == 0 {
			t.Fatalf("topic %d: no edges", z)
		}
		// All kept edges exceed the mean strength.
		var total float64
		C := m.Cfg.NumCommunities
		for a := 0; a < C; a++ {
			for b := 0; b < C; b++ {
				if z < 0 {
					for zz := 0; zz < m.Cfg.NumTopics; zz++ {
						total += m.Eta.At(a, b, zz)
					}
				} else {
					total += m.Eta.At(a, b, z)
				}
			}
		}
		mean := total / float64(C*C)
		for _, e := range dg.Edges {
			if e.Strength <= mean {
				t.Fatalf("edge below mean kept: %v <= %v", e.Strength, mean)
			}
		}
		// Sorted descending.
		for i := 1; i < len(dg.Edges); i++ {
			if dg.Edges[i-1].Strength < dg.Edges[i].Strength {
				t.Fatal("edges not sorted")
			}
		}
	}
}

func TestWriteDOT(t *testing.T) {
	m, _, v := sharedModel(t)
	dg := BuildDiffusionGraph(m, v, -1)
	var buf bytes.Buffer
	if err := dg.WriteDOT(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.HasPrefix(s, "digraph diffusion {") || !strings.HasSuffix(strings.TrimSpace(s), "}") {
		t.Fatalf("malformed DOT:\n%s", s)
	}
	if !strings.Contains(s, "->") {
		t.Fatal("DOT has no edges")
	}
}

func TestWriteJSON(t *testing.T) {
	m, _, _ := sharedModel(t)
	dg := BuildDiffusionGraph(m, nil, -1)
	var buf bytes.Buffer
	if err := dg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back DiffusionGraph
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Edges) != len(dg.Edges) {
		t.Fatal("JSON round trip lost edges")
	}
}

func TestCommunityLabel(t *testing.T) {
	m, _, v := sharedModel(t)
	if got := CommunityLabel(m, nil, 3, 2); got != "c03" {
		t.Fatalf("nil-vocab label = %q", got)
	}
	got := CommunityLabel(m, v, 0, 3)
	if len(strings.Fields(got)) != 3 {
		t.Fatalf("label = %q, want 3 words", got)
	}
}

func TestOpenness(t *testing.T) {
	m, _, _ := sharedModel(t)
	open := Openness(m)
	if len(open) != m.Cfg.NumCommunities {
		t.Fatalf("openness length %d", len(open))
	}
	var total int
	for _, o := range open {
		if o < 0 {
			t.Fatal("negative openness")
		}
		total += o
	}
	if total == 0 {
		t.Fatal("no inter-community flows at all")
	}
}

func TestTopDiffusionTopics(t *testing.T) {
	m, _, _ := sharedModel(t)
	tops := TopDiffusionTopics(m, 0, 1, 5)
	if len(tops) != 5 {
		t.Fatalf("got %d topics", len(tops))
	}
	for i := 1; i < len(tops); i++ {
		if tops[i-1].Score < tops[i].Score {
			t.Fatal("topics not sorted")
		}
	}
	if got := TopDiffusionTopics(m, 0, 1, 99); len(got) != m.Cfg.NumTopics {
		t.Fatalf("clamp failed: %d", len(got))
	}
}
