package core

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"repro/internal/synth"
)

// stateDiff compares the complete sampler state of two runs and returns a
// description of the first divergence, or "" when they are bit-identical.
func stateDiff(a, b *state) string {
	cmpI32 := func(name string, x, y []int32) string {
		if len(x) != len(y) {
			return fmt.Sprintf("%s: length %d vs %d", name, len(x), len(y))
		}
		for i := range x {
			if x[i] != y[i] {
				return fmt.Sprintf("%s[%d]: %d vs %d", name, i, x[i], y[i])
			}
		}
		return ""
	}
	cmpI64 := func(name string, x, y []int64) string {
		if len(x) != len(y) {
			return fmt.Sprintf("%s: length %d vs %d", name, len(x), len(y))
		}
		for i := range x {
			if x[i] != y[i] {
				return fmt.Sprintf("%s[%d]: %d vs %d", name, i, x[i], y[i])
			}
		}
		return ""
	}
	cmpU64 := func(name string, x, y []uint64) string {
		if len(x) != len(y) {
			return fmt.Sprintf("%s: length %d vs %d", name, len(x), len(y))
		}
		for i := range x {
			if x[i] != y[i] {
				return fmt.Sprintf("%s[%d]: %x vs %x", name, i, x[i], y[i])
			}
		}
		return ""
	}
	checks := []string{
		cmpI32("docC", a.docC, b.docC),
		cmpI32("docZ", a.docZ, b.docZ),
		cmpI64("nCZ", a.nCZ.data, b.nCZ.data),
		cmpI64("nCT", a.nCT.data, b.nCT.data),
		cmpI64("nZW", a.nZW.data, b.nZW.data),
		cmpI64("nZT", a.nZT.data, b.nZT.data),
		cmpI64("nTZ", a.nTZ.data, b.nTZ.data),
		cmpI64("nTT", a.nTT.data, b.nTT.data),
		cmpU64("lambda", a.lambda.bits, b.lambda.bits),
		cmpU64("lambdaNeg", a.lambdaNeg.bits, b.lambdaNeg.bits),
		cmpU64("delta", a.delta.bits, b.delta.bits),
	}
	if a.attrOn && b.attrOn {
		checks = append(checks,
			cmpI64("nCA", a.nCA.data, b.nCA.data),
			cmpI64("nCATot", a.nCATot.data, b.nCATot.data))
		for u := range a.attrC {
			if d := cmpI32(fmt.Sprintf("attrC[%d]", u), a.attrC[u], b.attrC[u]); d != "" {
				checks = append(checks, d)
				break
			}
		}
	}
	for _, d := range checks {
		if d != "" {
			return d
		}
	}
	return ""
}

// workerSweepVariants is the determinism matrix of the issue: a single
// worker, a small pool, and more goroutines than physical cores.
func workerSweepVariants() []int {
	return []int{1, 2, runtime.NumCPU() + 2}
}

// TestEngineSweepBitIdenticalAcrossWorkers asserts the engine's core
// guarantee: after any number of sweeps from the same seed, the complete
// sampler state is bit-identical for every Workers value.
func TestEngineSweepBitIdenticalAcrossWorkers(t *testing.T) {
	var ref *state
	var refWorkers int
	for _, workers := range workerSweepVariants() {
		g := testGraph(80, 21)
		cfg := testConfig()
		cfg.Workers = workers
		e, err := NewEngine(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			e.Sweep()
		}
		if ref == nil {
			ref, refWorkers = e.st, workers
		} else if d := stateDiff(ref, e.st); d != "" {
			t.Fatalf("Workers=%d diverges from Workers=%d: %s", workers, refWorkers, d)
		}
		e.Close()
	}
}

// TestEngineRepackDoesNotChangeResults pins the property that makes lazy
// knapsack re-segmentation safe: packing decides only which goroutine runs
// a segment, never the sweep's outcome.
func TestEngineRepackDoesNotChangeResults(t *testing.T) {
	build := func() *Engine {
		cfg := testConfig()
		cfg.Workers = 2
		e, err := NewEngine(testGraph(80, 22), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	e1 := build()
	defer e1.Close()
	e2 := build()
	defer e2.Close()
	e1.Sweep()
	// Degenerate packing on e2: every segment on the second worker.
	var all []int
	for s := range e2.segs {
		all = append(all, s)
	}
	e2.assign = [][]int{nil, all}
	e2.Sweep()
	if d := stateDiff(e1.st, e2.st); d != "" {
		t.Fatalf("repacking changed the sweep result: %s", d)
	}
}

// TestTrainBitIdenticalAcrossWorkers runs full training — warm start,
// E-steps, both M-steps — and asserts the models match exactly, which
// implies identical log-likelihood trajectories.
func TestTrainBitIdenticalAcrossWorkers(t *testing.T) {
	var ref *Model
	var refWorkers int
	for _, workers := range workerSweepVariants() {
		g := testGraph(100, 23)
		cfg := Config{
			NumCommunities: 8, NumTopics: 10, EMIters: 4, WarmStartSweeps: 2,
			Workers: workers, Seed: 9, Rho: 0.125,
		}
		m, diag, err := Train(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if diag.Segments == 0 || len(diag.WorkerActual) != workers {
			t.Fatalf("Workers=%d: bad diagnostics %+v", workers, diag)
		}
		if ref == nil {
			ref, refWorkers = m, workers
			continue
		}
		for i := range m.DocCommunity {
			if m.DocCommunity[i] != ref.DocCommunity[i] || m.DocTopic[i] != ref.DocTopic[i] {
				t.Fatalf("Workers=%d vs %d: assignment differs at doc %d", workers, refWorkers, i)
			}
		}
		for i := range m.Nu {
			if m.Nu[i] != ref.Nu[i] {
				t.Fatalf("Workers=%d vs %d: Nu[%d] %v != %v", workers, refWorkers, i, m.Nu[i], ref.Nu[i])
			}
		}
		for u := 0; u < m.NumUsers; u += 13 {
			pr, rr := m.Pi.Row(u), ref.Pi.Row(u)
			for c := range pr {
				if pr[c] != rr[c] {
					t.Fatalf("Workers=%d vs %d: Pi[%d][%d] differs", workers, refWorkers, u, c)
				}
			}
		}
	}
}

// TestTrainDeterministicWithAttributesAndAblations covers the remaining
// sweep kinds: the attribute-extension sampler and the no-joint two-phase
// schedule must also be Workers-independent.
func TestTrainDeterministicWithAttributesAndAblations(t *testing.T) {
	attrGraph := func() *synth.Config {
		cfg := synth.TwitterLike(60, 31)
		cfg.AttrVocab = 30
		cfg.AttrsPerUserMean = 2
		return &cfg
	}
	cases := []struct {
		name string
		mod  func(*Config)
	}{
		{"attributes", func(c *Config) { c.ModelAttributes = true }},
		{"nojoint", func(c *Config) { c.NoJointModeling = true; c.EMIters = 2 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var ref *Model
			for _, workers := range []int{1, 3} {
				var g = testGraph(60, 31)
				if tc.name == "attributes" {
					g, _ = synth.Generate(*attrGraph())
				}
				cfg := Config{
					NumCommunities: 6, NumTopics: 8, EMIters: 3, WarmStartSweeps: 2,
					Workers: workers, Seed: 11, Rho: 0.2,
				}
				tc.mod(&cfg)
				m, _, err := Train(g, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if ref == nil {
					ref = m
					continue
				}
				for i := range m.DocCommunity {
					if m.DocCommunity[i] != ref.DocCommunity[i] || m.DocTopic[i] != ref.DocTopic[i] {
						t.Fatalf("workers=%d: assignment differs at doc %d", workers, i)
					}
				}
			}
		})
	}
}

// TestEngineCountersConsistentAfterParallelSweeps verifies the overlay
// flush path preserves the Gibbs counter invariant (counts == recount from
// assignments) under a multi-worker pool.
func TestEngineCountersConsistentAfterParallelSweeps(t *testing.T) {
	cfg := testConfig()
	cfg.Workers = 3
	e, err := NewEngine(testGraph(80, 24), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for i := 0; i < 3; i++ {
		e.Sweep()
	}
	checkCounters(t, e.st)
	d := e.Diagnostics()
	if len(d.SweepSeconds) != 3 || d.Segments != cfg.NumTopics {
		t.Fatalf("bad diagnostics: %+v", d)
	}
}

// TestEngineSweepUnderGOMAXPROCS1 pins the single-core regression class:
// a multi-worker pool must keep working (and stay deterministic) when the
// runtime is limited to one OS thread.
func TestEngineSweepUnderGOMAXPROCS1(t *testing.T) {
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	g := testGraph(80, 21)
	cfg := testConfig()
	cfg.Workers = 4
	e, err := NewEngine(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for i := 0; i < 3; i++ {
		e.Sweep()
	}
	// Same seed as TestEngineSweepBitIdenticalAcrossWorkers' runs: a
	// single-thread schedule is just another schedule.
	cfg1 := testConfig()
	cfg1.Workers = 1
	e1, err := NewEngine(testGraph(80, 21), cfg1)
	if err != nil {
		t.Fatal(err)
	}
	defer e1.Close()
	for i := 0; i < 3; i++ {
		e1.Sweep()
	}
	if d := stateDiff(e1.st, e.st); d != "" {
		t.Fatalf("GOMAXPROCS=1 pool diverges: %s", d)
	}
}

// --- persistent pool vs per-sweep spawning ------------------------------

// sweepSpawnPerSweep reproduces the seed implementation's cost model for
// benchmarking: fresh goroutines AND fresh per-worker scratch/overlay
// allocations on every sweep.
func (e *Engine) sweepSpawnPerSweep() {
	st := e.st
	st.refreshCaches()
	e.snap.capture(st)
	var wg sync.WaitGroup
	for w := range e.assign {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ov := newOverlay(st, &e.snap)
			sc := newScratch(e.cfg, nil)
			sc.ov = ov
			for _, s := range e.assign[w] {
				sc.r = e.segs[s].r
				e.runSegment(e.segs[s], sc)
				ov.flush()
			}
		}(w)
	}
	wg.Wait()
}

func benchEngine(b *testing.B, workers int, spawn bool) {
	b.Helper()
	g, _ := synth.Generate(synth.TwitterLike(300, 99))
	e, err := NewEngine(g, Config{
		NumCommunities: 15, NumTopics: 15, Workers: workers,
		Rho: 1.0 / 15, Seed: 7,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	e.Sweep() // warm-up: caches, overlay buffers
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if spawn {
			e.sweepSpawnPerSweep()
		} else {
			e.Sweep()
		}
	}
}

// BenchmarkEStepPooled measures one E-step sweep on the persistent pool.
func BenchmarkEStepPooled(b *testing.B) {
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) { benchEngine(b, w, false) })
	}
}

// BenchmarkEStepSpawnPerSweep is the seed's cost model (per-sweep goroutine
// spawning and worker-buffer allocation) on identical work, for comparison
// against BenchmarkEStepPooled.
func BenchmarkEStepSpawnPerSweep(b *testing.B) {
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) { benchEngine(b, w, true) })
	}
}
