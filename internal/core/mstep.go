package core

import (
	"repro/internal/logreg"
)

// etaSmoothing is the additive smoothing applied when normalizing the
// aggregated diffusion counts into the per-community distribution of
// Definition 5 (avoids zero cells that would make unseen community/topic
// combinations impossible forever).
const etaSmoothing = 0.05

// mStepEta re-estimates the diffusion profile by aggregating the current
// community and topic assignments over all diffusion links (Sect. 4.2 /
// Alg. 1 steps 11–12): eta_{c,c',z} counts links whose diffusing document
// sits in community c with topic z and whose source document sits in
// community c', normalized per source community c into a distribution over
// (c', z).
func (st *state) mStepEta() {
	C, Z := st.cfg.NumCommunities, st.cfg.NumTopics
	st.eta.Fill(0)
	for _, l := range st.g.Diffs {
		cI := int(st.cload(l.I))
		cJ := int(st.cload(l.J))
		z := int(st.zload(l.I))
		st.eta.Add(cI, cJ, z, 1)
	}
	st.etaDirty = true
	cells := float64(C * Z)
	for c := 0; c < C; c++ {
		var total float64
		for c2 := 0; c2 < C; c2++ {
			for z := 0; z < Z; z++ {
				total += st.eta.At(c, c2, z)
			}
		}
		den := total + etaSmoothing*cells
		for c2 := 0; c2 < C; c2++ {
			for z := 0; z < Z; z++ {
				st.eta.Set(c, c2, z, (st.eta.At(c, c2, z)+etaSmoothing)/den)
			}
		}
	}
}

// mStepNu fits the individual-preference weights by logistic regression
// (Sect. 4.2): positives are the observed diffusion links, negatives are
// NegPerPos sampled non-links per positive, and the community and
// popularity factors enter as fixed offsets so the gradient only moves nu.
func (st *state) mStepNu(sc *scratch) {
	nPos := len(st.g.Diffs)
	if nPos == 0 {
		return
	}
	nNeg := nPos * st.cfg.NegPerPos
	x := make([][]float64, 0, nPos+nNeg)
	offsets := make([]float64, 0, nPos+nNeg)
	y := make([]int, 0, nPos+nNeg)

	for e := range st.g.Diffs {
		x = append(x, st.linkFeat[e])
		offsets = append(offsets, st.diffusionArg(e, sc)-st.indivTerm(e))
		y = append(y, 1)
	}
	nd := len(st.g.Docs)
	for k := 0; k < nNeg; k++ {
		i, j, ok := st.sampleNegativePair(sc, nd)
		if !ok {
			break
		}
		uI := st.g.Docs[i].User
		uJ := st.g.Docs[j].User
		x = append(x, st.g.PairFeatures(nil, int(uI), int(uJ)))
		offsets = append(offsets, st.pairOffset(int32(i), int32(j), sc))
		y = append(y, 0)
	}
	m, err := logreg.Train(x, offsets, y, logreg.Config{
		Iters:        st.cfg.NuIters,
		LearningRate: st.cfg.NuLearningRate,
	})
	if err != nil {
		return // degenerate input; keep the previous nu
	}
	copy(st.nu, m.W)
	st.refreshNuOffsets()
}

// sampleNegativePair draws a random (diffusing, source) document pair with
// distinct users that is not an observed diffusion link. It gives up after
// a bounded number of rejections (possible only on pathological graphs).
func (st *state) sampleNegativePair(sc *scratch, nd int) (int, int, bool) {
	for tries := 0; tries < 64; tries++ {
		i := sc.r.Intn(nd)
		j := sc.r.Intn(nd)
		if i == j || st.g.Docs[i].User == st.g.Docs[j].User {
			continue
		}
		if _, seen := st.diffPairSet[int64(i)*int64(nd)+int64(j)]; seen {
			continue
		}
		return i, j, true
	}
	return 0, 0, false
}

// pairOffset evaluates the community + popularity part of Eq. 5 for an
// arbitrary (not necessarily linked) document pair, used as the fixed
// offset of negative examples in the nu regression.
func (st *state) pairOffset(i, j int32, sc *scratch) float64 {
	st.piSnap(st.g.Docs[i].User, &sc.piU)
	st.piSnap(st.g.Docs[j].User, &sc.piV)
	if st.cfg.NoHeterogeneity {
		return st.cfg.FriendScale * sc.piU.Dot(&sc.piV)
	}
	z := int(st.zload(i))
	s := st.aggs[z].Eval(st.etaSlice[z], st.thetaColM.Row(z), &sc.piU, &sc.piV)
	return s + st.popTerm(sc, st.docBucket[i], z)
}
