package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/sparse"
)

// TestCheckShapesRejectsInconsistentModels: deserialized models that lie
// about their shapes must fail loading, never panic serving. The
// missing-popularity case is the review regression: NumBuckets > 0 with
// no PopFreq block used to pass validation and nil-panic the diffusion
// path on the first bucketed query.
func TestCheckShapesRejectsInconsistentModels(t *testing.T) {
	valid := func() *Model {
		return &Model{
			Cfg:      Config{NumCommunities: 3, NumTopics: 2}.WithDefaults(),
			NumUsers: 4, NumWords: 5, NumBuckets: 2,
			Pi:      sparse.NewDense(4, 3),
			Theta:   sparse.NewDense(3, 2),
			Phi:     sparse.NewDense(2, 5),
			Eta:     sparse.NewTensor3(3, 3, 2),
			PopFreq: sparse.NewDense(2, 2),
		}
	}
	if err := valid().CheckShapes(); err != nil {
		t.Fatalf("valid model rejected: %v", err)
	}
	cases := []struct {
		name   string
		break_ func(*Model)
	}{
		{"buckets without popularity block", func(m *Model) { m.PopFreq = nil }},
		{"pi rows disagree", func(m *Model) { m.NumUsers = 9 }},
		{"data shorter than claimed", func(m *Model) { m.Phi.Data = m.Phi.Data[:3] }},
		{"negative dimension", func(m *Model) { m.NumWords = -1 }},
		{"zero communities", func(m *Model) { m.Cfg.NumCommunities = 0 }},
		{"eta dims disagree", func(m *Model) { m.Eta = sparse.NewTensor3(3, 2, 2) }},
		{"assignment lengths disagree", func(m *Model) { m.DocCommunity = []int32{0} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := valid()
			tc.break_(m)
			if err := m.CheckShapes(); err == nil {
				t.Fatal("inconsistent model accepted")
			}
		})
	}

	// The JSON loader must apply the same rules end to end.
	m := valid()
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	mangled := strings.Replace(buf.String(), `"NumUsers":4`, `"NumUsers":40`, 1)
	if _, err := Load(strings.NewReader(mangled)); err == nil {
		t.Fatal("Load accepted a model whose dimensions disagree with its blocks")
	}
	popless := valid()
	popless.PopFreq = nil
	buf.Reset()
	if err := popless.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&buf); err == nil {
		t.Fatal("Load accepted NumBuckets > 0 without a popularity block")
	}
}
