package core

import (
	"reflect"
	"testing"
)

// aliasConfig is testConfig with the alias sampler selected.
func aliasConfig() Config {
	cfg := testConfig()
	cfg.Sampler = SamplerAlias
	return cfg
}

// TestExactSamplerUnchangedByAliasPlumbing is the differential test of the
// issue: with the sampler plumbing in place, Sampler "" and "exact" must
// both take the untouched exact code path and produce bit-identical
// models — which is what keeps every pre-Sampler golden fixture valid.
func TestExactSamplerUnchangedByAliasPlumbing(t *testing.T) {
	g1 := testGraph(60, 17)
	cfgDefault := testConfig()
	m1, _, err := Train(g1, cfgDefault)
	if err != nil {
		t.Fatal(err)
	}
	g2 := testGraph(60, 17)
	cfgExact := testConfig()
	cfgExact.Sampler = SamplerExact
	m2, _, err := Train(g2, cfgExact)
	if err != nil {
		t.Fatal(err)
	}
	// The Cfg block records the requested sampler string; everything the
	// sampler produced must match exactly.
	m2.Cfg.Sampler = ""
	if !reflect.DeepEqual(m1, m2) {
		t.Fatal("Sampler=\"exact\" diverges from the default exact path")
	}
}

// TestAliasTrainingDeterministicPerSeed pins MH acceptance determinism:
// the alias sampler's proposal draws and accept tests consume only the
// per-segment RNG streams, so identical seeds give identical models.
func TestAliasTrainingDeterministicPerSeed(t *testing.T) {
	m1, _, err := Train(testGraph(60, 17), aliasConfig())
	if err != nil {
		t.Fatal(err)
	}
	m2, _, err := Train(testGraph(60, 17), aliasConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m1, m2) {
		t.Fatal("alias training is not deterministic per seed")
	}
	cfg3 := aliasConfig()
	cfg3.Seed = 99
	m3, _, err := Train(testGraph(60, 17), cfg3)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(m1.DocTopic, m3.DocTopic) && reflect.DeepEqual(m1.DocCommunity, m3.DocCommunity) {
		t.Fatal("alias training ignored the seed")
	}
}

// TestAliasSweepBitIdenticalAcrossWorkers extends the engine's worker-
// count invariance to the alias sampler: proposal tables are built from
// the sweep-start snapshot and draws from per-segment streams, so packing
// must not change anything.
func TestAliasSweepBitIdenticalAcrossWorkers(t *testing.T) {
	var ref *state
	var refWorkers int
	for _, workers := range workerSweepVariants() {
		g := testGraph(80, 21)
		cfg := aliasConfig()
		cfg.Workers = workers
		e, err := NewEngine(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			e.Sweep()
		}
		if ref == nil {
			ref, refWorkers = e.st, workers
		} else if d := stateDiff(ref, e.st); d != "" {
			t.Fatalf("alias Workers=%d diverges from Workers=%d: %s", workers, refWorkers, d)
		}
		e.Close()
	}
}

// TestAliasSamplerCountersConsistent verifies the Gibbs counter invariant
// after parallel alias sweeps: every counter table must equal a recount
// from the raw assignments (the MH moves add/remove documents through the
// same overlay accessors as the exact sampler).
func TestAliasSamplerCountersConsistent(t *testing.T) {
	cfg := aliasConfig()
	cfg.Workers = 3
	e, err := NewEngine(testGraph(80, 23), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for i := 0; i < 4; i++ {
		e.Sweep()
	}
	checkCounters(t, e.st)
}

// TestAliasInvalidSamplerRejected pins Config validation.
func TestAliasInvalidSamplerRejected(t *testing.T) {
	cfg := testConfig()
	cfg.Sampler = "turbo"
	if _, err := NewEngine(testGraph(20, 3), cfg); err == nil {
		t.Fatal("unknown Sampler value accepted")
	}
}

// TestAliasResumeContinuesChain checks the resume path builds the alias
// structures: a model trained with the alias sampler resumes and keeps
// training without falling back to exact (the Cfg carries the sampler).
func TestAliasResumeContinuesChain(t *testing.T) {
	cfg := aliasConfig()
	cfg.EMIters = 3
	g := testGraph(40, 5)
	m, _, err := Train(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngineFromModel(testGraph(40, 5), m, ResumeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if e.st.als == nil {
		t.Fatal("resumed alias model lost its alias sampler")
	}
	if _, _, err := e.RunEM(2); err != nil {
		t.Fatal(err)
	}
	checkCounters(t, e.st)
}
