package core

import (
	"sync"
	"time"

	"repro/internal/knapsack"
	"repro/internal/lda"
)

// parallelPlan is the Sect. 4.3 work assignment: users are segmented by
// their dominant LDA topic (so same-topic documents land on the same
// thread, reducing conflicting counter updates), segment workloads are
// estimated from an operation-count model, and segments are packed onto
// workers by repeated 0-1 knapsack solves targeting O/M per worker
// (Eq. 17). Each friendship link is owned by its source user's worker and
// each diffusion link by its diffusing document's worker, so every
// Pólya-Gamma variable has a single writer.
type parallelPlan struct {
	workers     int
	usersOf     [][]int32
	friendsOf   [][]int32
	negsOf      [][]int32
	diffsOf     [][]int32
	estLoad     []float64
	numSegments int
	scs         []*scratch
}

// buildParallelPlan runs the segmentation LDA and the knapsack packing.
func buildParallelPlan(st *state) *parallelPlan {
	cfg := st.cfg
	pp := &parallelPlan{workers: cfg.Workers}

	// Segment users by dominant LDA topic over their documents.
	docWords := make([][]int32, len(st.g.Docs))
	for i := range st.g.Docs {
		docWords[i] = st.g.Docs[i].Words
	}
	seg := make([]int, st.g.NumUsers)
	numSeg := cfg.NumTopics
	ldaModel := lda.Train(docWords, st.g.NumWords, lda.Config{
		NumTopics: cfg.NumTopics,
		Iters:     cfg.SegmentLDAIters,
		Seed:      cfg.Seed ^ 0xD1F,
	})
	for u := 0; u < st.g.NumUsers; u++ {
		votes := make(map[int]int)
		for _, d := range st.g.UserDocs(u) {
			votes[ldaModel.DominantTopic(int(d))]++
		}
		best, bestN := 0, -1
		for t, n := range votes {
			if n > bestN || (n == bestN && t < best) {
				best, bestN = t, n
			}
		}
		seg[u] = best
	}
	pp.numSegments = numSeg

	// Workload estimate per user: an operation-count proxy for the per-doc
	// sampling cost (|Z| topic candidates + |C| community candidates +
	// word terms) and the per-link Pólya-Gamma cost. The proxy plays the
	// role of the paper's measured per-document/per-link averages.
	const pgCost = 24
	userLoad := make([]float64, st.g.NumUsers)
	diffCount := make([]int, st.g.NumUsers)
	for _, l := range st.g.Diffs {
		diffCount[st.g.Docs[l.I].User]++
	}
	for u := 0; u < st.g.NumUsers; u++ {
		var words int
		for _, d := range st.g.UserDocs(u) {
			words += len(st.g.Docs[d].Words)
		}
		nd := float64(len(st.g.UserDocs(u)))
		userLoad[u] = nd*float64(cfg.NumTopics+cfg.NumCommunities) +
			float64(words)*float64(cfg.NumTopics)/4 +
			float64(len(st.userFriendLinks[u]))*(pgCost+nd) +
			float64(diffCount[u])*float64(cfg.NumCommunities+pgCost)
	}
	segLoad := make([]float64, numSeg)
	segUsers := make([][]int32, numSeg)
	for u, s := range seg {
		segLoad[s] += userLoad[u]
		segUsers[s] = append(segUsers[s], int32(u))
	}

	bins := knapsack.Pack(segLoad, cfg.Workers)
	pp.usersOf = make([][]int32, cfg.Workers)
	pp.estLoad = make([]float64, cfg.Workers)
	workerOf := make([]int, st.g.NumUsers)
	for w, segs := range bins {
		for _, s := range segs {
			pp.usersOf[w] = append(pp.usersOf[w], segUsers[s]...)
			pp.estLoad[w] += segLoad[s]
			for _, u := range segUsers[s] {
				workerOf[u] = w
			}
		}
	}
	pp.friendsOf = make([][]int32, cfg.Workers)
	for l, f := range st.g.Friends {
		w := workerOf[f.U]
		pp.friendsOf[w] = append(pp.friendsOf[w], int32(l))
	}
	pp.negsOf = make([][]int32, cfg.Workers)
	for l, f := range st.negFriends {
		w := workerOf[f.U]
		pp.negsOf[w] = append(pp.negsOf[w], int32(l))
	}
	pp.diffsOf = make([][]int32, cfg.Workers)
	for e, l := range st.g.Diffs {
		w := workerOf[st.g.Docs[l.I].User]
		pp.diffsOf[w] = append(pp.diffsOf[w], int32(e))
	}
	pp.scs = make([]*scratch, cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		pp.scs[w] = newScratch(cfg, st.root.Split(uint64(w)+101))
	}
	return pp
}

// sweep runs one parallel E-step and returns the measured per-worker wall
// time. Counter updates go through atomics (Hogwild-style); assignments
// are read/written atomically, so concurrent sweeps are race-free while
// tolerating the same cross-thread staleness the paper's design accepts.
func (pp *parallelPlan) sweep(st *state) []float64 {
	actual := make([]float64, pp.workers)
	var wg sync.WaitGroup
	for w := 0; w < pp.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sc := pp.scs[w]
			t0 := time.Now()
			for _, u := range pp.usersOf[w] {
				if !st.contentOn {
					st.sampleUserCommunityBlock(u, sc)
					continue
				}
				for _, d := range st.g.UserDocs(int(u)) {
					st.sampleDocTopic(d, sc)
					if !st.cFrozen {
						st.sampleDocCommunity(d, sc)
					}
				}
				if st.attrOn {
					for k := range st.g.Attrs[u] {
						st.sampleUserAttr(u, k, sc)
					}
				}
			}
			if !st.cfg.NoFriendship {
				for _, li := range pp.friendsOf[w] {
					st.sampleLambda(int(li), sc)
				}
				for _, li := range pp.negsOf[w] {
					st.sampleLambdaNeg(int(li), sc)
				}
			}
			if st.contentOn {
				for _, e := range pp.diffsOf[w] {
					st.sampleDelta(int(e), sc)
				}
			}
			actual[w] = time.Since(t0).Seconds()
		}(w)
	}
	wg.Wait()
	return actual
}
