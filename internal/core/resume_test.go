package core

import (
	"reflect"
	"testing"

	"repro/internal/socialgraph"
)

// resumeBase trains a small model to resume from.
func resumeBase(t *testing.T) (*socialgraph.Graph, *Model) {
	t.Helper()
	g := testGraph(120, 31)
	m, _, err := Train(g, Config{
		NumCommunities: 6, NumTopics: 8, EMIters: 6, Workers: 2,
		Seed: 9, Rho: 0.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g, m
}

// sameModel asserts bit-identity of every block two resumed runs must
// agree on.
func sameModel(t *testing.T, name string, a, b *Model) {
	t.Helper()
	checks := []struct {
		what     string
		got, exp any
	}{
		{"pi", a.Pi.Data, b.Pi.Data},
		{"theta", a.Theta.Data, b.Theta.Data},
		{"phi", a.Phi.Data, b.Phi.Data},
		{"eta", a.Eta.Data, b.Eta.Data},
		{"nu", a.Nu, b.Nu},
		{"docC", a.DocCommunity, b.DocCommunity},
		{"docZ", a.DocTopic, b.DocTopic},
	}
	for _, c := range checks {
		if !reflect.DeepEqual(c.got, c.exp) {
			t.Fatalf("%s: %s differs between the two runs", name, c.what)
		}
	}
}

func TestResumeDeterministic(t *testing.T) {
	g, m := resumeBase(t)
	run := func(workers int) *Model {
		out, _, err := TrainResumed(g, m, 3, ResumeOptions{Workers: workers, Seed: 41})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(1), run(1)
	sameModel(t, "repeat", a, b)
	// Worker count must not change the resumed chain either — the same
	// guarantee fresh training gives.
	sameModel(t, "workers", a, run(3))
}

// TestResumeDirtyAllEqualsFull is the delta-Gibbs contract: restricting
// the sweep to a dirty set that covers every user is bit-identical to an
// unrestricted resumed run.
func TestResumeDirtyAllEqualsFull(t *testing.T) {
	g, m := resumeBase(t)
	run := func(dirty []bool) *Model {
		e, err := NewEngineFromModel(g, m, ResumeOptions{Workers: 2, Seed: 17})
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		if err := e.SetDirty(dirty); err != nil {
			t.Fatal(err)
		}
		out, _, err := e.RunEM(3)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	all := make([]bool, g.NumUsers)
	for i := range all {
		all[i] = true
	}
	sameModel(t, "dirty=all vs full", run(nil), run(all))
}

// TestResumeDirtySubsetFreezesCleanUsers: a restricted sweep must leave
// clean users' document assignments untouched while still moving dirty
// users'.
func TestResumeDirtySubsetFreezesCleanUsers(t *testing.T) {
	g, m := resumeBase(t)
	e, err := NewEngineFromModel(g, m, ResumeOptions{Workers: 2, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	dirty := make([]bool, g.NumUsers)
	for u := 0; u < g.NumUsers/4; u++ {
		dirty[u] = true
	}
	if err := e.SetDirty(dirty); err != nil {
		t.Fatal(err)
	}
	out, _, err := e.RunEM(2)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for i, d := range g.Docs {
		if !dirty[d.User] {
			if out.DocCommunity[i] != m.DocCommunity[i] || out.DocTopic[i] != m.DocTopic[i] {
				t.Fatalf("clean user %d's doc %d was resampled under a dirty-set sweep", d.User, i)
			}
		} else if out.DocCommunity[i] != m.DocCommunity[i] || out.DocTopic[i] != m.DocTopic[i] {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("no dirty user's assignment moved in 2 sweeps — the dirty sweep did nothing")
	}
	if err := e.SetDirty(make([]bool, 3)); err == nil {
		t.Fatal("SetDirty accepted a mask of the wrong length")
	}
}

// TestResumeExtendedGraph resumes onto a graph grown with new users and
// documents: the stored assignments seed the old documents, the new ones
// initialize from the resume seed, and the resulting model covers the
// extended population.
func TestResumeExtendedGraph(t *testing.T) {
	g, m := resumeBase(t)
	ext := &socialgraph.Graph{
		NumUsers: g.NumUsers + 2,
		NumWords: g.NumWords,
		Docs:     append(append([]socialgraph.Doc{}, g.Docs...), socialgraph.Doc{User: int32(g.NumUsers), Time: 5, Words: []int32{1, 2, 3}}, socialgraph.Doc{User: int32(g.NumUsers + 1), Time: 9, Words: []int32{4, 5}}),
		Friends:  append(append([]socialgraph.FriendLink{}, g.Friends...), socialgraph.FriendLink{U: int32(g.NumUsers), V: 0}),
		Diffs:    append([]socialgraph.DiffLink{}, g.Diffs...),
	}
	out, _, err := TrainResumed(ext, m, 2, ResumeOptions{Workers: 2, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	if out.NumUsers != ext.NumUsers {
		t.Fatalf("resumed model covers %d users, want %d", out.NumUsers, ext.NumUsers)
	}
	if len(out.DocCommunity) != len(ext.Docs) {
		t.Fatalf("resumed model assigns %d docs, want %d", len(out.DocCommunity), len(ext.Docs))
	}
	// Repeatability on the extended graph too.
	out2, _, err := TrainResumed(ext, m, 2, ResumeOptions{Workers: 1, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	sameModel(t, "extended", out, out2)
}

func TestResumeRejectsBadInputs(t *testing.T) {
	g, m := resumeBase(t)
	tooSmall := &socialgraph.Graph{NumUsers: 1, NumWords: g.NumWords,
		Docs: []socialgraph.Doc{{User: 0, Words: []int32{0}}}}
	if _, err := NewEngineFromModel(tooSmall, m, ResumeOptions{}); err == nil {
		t.Fatal("resume accepted a graph smaller than the model's corpus")
	}
	bad := *m
	bad.Cfg.ModelAttributes = true
	if _, err := NewEngineFromModel(g, &bad, ResumeOptions{}); err == nil {
		t.Fatal("resume accepted a ModelAttributes model")
	}
	bad2 := *m
	bad2.Cfg.NoJointModeling = true
	if _, err := NewEngineFromModel(g, &bad2, ResumeOptions{}); err == nil {
		t.Fatal("resume accepted a NoJointModeling model")
	}
}
