package core

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"repro/internal/mathx"
	"repro/internal/socialgraph"
	"repro/internal/sparse"
)

// Model is a trained CPD model: the five outputs Sect. 5 builds every
// application on — community memberships π, content profiles θ, diffusion
// profiles η, topic-word distributions φ and the individual-preference
// weights ν — plus the popularity table for the n_tz factor.
type Model struct {
	Cfg Config

	NumUsers, NumWords, NumBuckets int

	// Pi is |U| x |C|: user community memberships (Definition 3).
	Pi *sparse.Dense
	// Theta is |C| x |Z|: community content profiles (Definition 4).
	Theta *sparse.Dense
	// Phi is |Z| x |W|: topic-word distributions (Definition 2).
	Phi *sparse.Dense
	// Eta is |C| x |C| x |Z|: community diffusion profiles (Definition 5).
	Eta *sparse.Tensor3
	// Nu are the individual-preference weights of Eq. 5.
	Nu []float64

	// PopFreq is buckets x |Z|: normalized topic popularity per time
	// bucket (the n_tz factor).
	PopFreq *sparse.Dense

	// Xi is |C| x |NumAttrs|: the community attribute profiles of the
	// attribute extension (nil unless trained with ModelAttributes on an
	// attributed graph).
	Xi       *sparse.Dense
	NumAttrs int

	// DocCommunity / DocTopic / DocBucket are the final hard assignments
	// for the training documents.
	DocCommunity, DocTopic []int32
	DocBucket              []int

	// Caches rebuilt by initCaches (not serialized). All matrix-shaped
	// caches live in flat, row-major contiguous buffers — the same layout
	// the parameter blocks themselves use — so training, fold-in and
	// queries walk one cache-friendly representation.
	piBase  []float64        // per-user smoothing base of pi
	piResid []*sparse.Vector // per-user sparse residual of pi
	aggs    []*sparse.BilinearAgg
	// etaFlat packs the per-topic diffusion matrices M_z = EtaScale ·
	// eta[:, :, z] contiguously ([z][c][c'], |Z|·|C|² floats); etaSlice[z]
	// is a view into it.
	etaFlat  []float64
	etaSlice []*sparse.Dense
	// thetaColM is theta transposed (|Z| x |C|): row z is the theta-hat
	// column the bilinear aggregates weight by.
	thetaColM *sparse.Dense
	// rankTable[c][z] = sum_c' eta_{c,c',z} theta_{c',z} (Eq. 19's inner
	// sum).
	rankTable *sparse.Dense
}

// buildModel snapshots the sampler state into a Model.
func (st *state) buildModel() *Model {
	cfg := st.cfg
	C, Z := cfg.NumCommunities, cfg.NumTopics
	m := &Model{
		Cfg:        cfg,
		NumUsers:   st.g.NumUsers,
		NumWords:   st.g.NumWords,
		NumBuckets: st.nTZ.rows,
		Pi:         sparse.NewDense(st.g.NumUsers, C),
		Theta:      sparse.NewDense(C, Z),
		Phi:        sparse.NewDense(Z, st.g.NumWords),
		Eta:        st.eta.Clone(),
		Nu:         append([]float64(nil), st.nu...),
		PopFreq:    sparse.NewDense(st.nTZ.rows, Z),
	}
	m.DocCommunity = append([]int32(nil), st.docC...)
	m.DocTopic = append([]int32(nil), st.docZ...)
	m.DocBucket = append([]int(nil), st.docBucket...)

	for u := 0; u < st.g.NumUsers; u++ {
		den := st.piHatDen(int32(u))
		row := m.Pi.Row(u)
		for c := range row {
			row[c] = cfg.Rho / den
		}
		for _, d := range st.g.UserDocs(u) {
			row[st.docC[d]] += 1 / den
		}
	}
	zAlpha := float64(Z) * cfg.Alpha
	for c := 0; c < C; c++ {
		den := float64(st.nCT.at(c)) + zAlpha
		row := m.Theta.Row(c)
		for z := range row {
			row[z] = (float64(st.nCZ.at(c, z)) + cfg.Alpha) / den
		}
	}
	wBeta := float64(st.g.NumWords) * cfg.Beta
	for z := 0; z < Z; z++ {
		den := float64(st.nZT.at(z)) + wBeta
		row := m.Phi.Row(z)
		for w := range row {
			row[w] = (float64(st.nZW.at(z, w)) + cfg.Beta) / den
		}
	}
	for b := 0; b < st.nTZ.rows; b++ {
		tot := float64(st.nTT.at(b))
		row := m.PopFreq.Row(b)
		if tot > 0 {
			for z := range row {
				row[z] = float64(st.nTZ.at(b, z)) / tot
			}
		}
	}
	if st.attrOn {
		m.NumAttrs = st.g.NumAttrs
		m.Xi = sparse.NewDense(C, st.g.NumAttrs)
		aMu := float64(st.g.NumAttrs) * cfg.Mu
		for c := 0; c < C; c++ {
			den := float64(st.nCATot.at(c)) + aMu
			row := m.Xi.Row(c)
			for a := range row {
				row[a] = (float64(st.nCA.at(c, a)) + cfg.Mu) / den
			}
		}
	}
	m.initCaches()
	return m
}

// AttributeProfile returns community c's attribute distribution ξ_c, or
// nil when the model was trained without the attribute extension.
func (m *Model) AttributeProfile(c int) []float64 {
	if m.Xi == nil {
		return nil
	}
	return m.Xi.Row(c)
}

// TopAttributes returns the k highest-probability attribute ids of
// community c (nil without the attribute extension).
func (m *Model) TopAttributes(c, k int) []int {
	if m.Xi == nil {
		return nil
	}
	return mathx.TopKIndices(m.Xi.Row(c), k)
}

// Rehydrate rebuilds the unexported prediction caches (the sparse-pi
// decomposition, per-topic bilinear aggregates and the Eq. 19 rank table)
// from the exported parameter blocks. Load calls it automatically; any
// other deserializer that fills a Model field-by-field — e.g. the binary
// snapshot reader in internal/store — must call it before the model serves
// queries.
func (m *Model) Rehydrate() { m.initCaches() }

// RankTable exposes the cached Eq. 19 inner sums
// rankTable[c][z] = Σ_c' η_{c,c',z} θ_{c',z}; the serving layer's inverted
// rank index is built from it. The returned matrix is owned by the model
// and must not be mutated.
func (m *Model) RankTable() *sparse.Dense { return m.rankTable }

// initCaches builds the sparse-pi decomposition and the per-topic bilinear
// aggregates used by the prediction paths. Must be called after Load.
func (m *Model) initCaches() {
	C, Z := m.Cfg.NumCommunities, m.Cfg.NumTopics
	m.piBase = make([]float64, m.NumUsers)
	m.piResid = make([]*sparse.Vector, m.NumUsers)
	for u := 0; u < m.NumUsers; u++ {
		row := m.Pi.Row(u)
		// The base is the row minimum (the smoothing floor); residuals are
		// the above-floor mass — exactly inverse to how buildModel filled
		// the row.
		base := row[0]
		for _, v := range row {
			if v < base {
				base = v
			}
		}
		m.piBase[u] = base
		resid := &sparse.Vector{Dim: C}
		for c, v := range row {
			if v-base > 1e-12 {
				resid.Indices = append(resid.Indices, int32(c))
				resid.Values = append(resid.Values, v-base)
			}
		}
		m.piResid[u] = resid
	}
	m.etaFlat = make([]float64, Z*C*C)
	m.etaSlice = make([]*sparse.Dense, Z)
	m.aggs = make([]*sparse.BilinearAgg, Z)
	m.thetaColM = sparse.NewDense(Z, C)
	m.rankTable = sparse.NewDense(C, Z)
	for z := 0; z < Z; z++ {
		col := m.thetaColM.Row(z)
		for c := 0; c < C; c++ {
			col[c] = m.Theta.At(c, z)
		}
		slice := sparse.NewDenseView(C, C, m.etaFlat[z*C*C:(z+1)*C*C])
		m.Eta.SliceKInto(z, slice)
		slice.Scale(m.Cfg.EtaScale)
		m.etaSlice[z] = slice
		for c := 0; c < C; c++ {
			var s float64
			for c2 := 0; c2 < C; c2++ {
				s += m.Eta.At(c, c2, z) * col[c2]
			}
			m.rankTable.Set(c, z, s)
		}
		m.aggs[z] = sparse.NewBilinearAgg(slice, col)
	}
}

// MatrixBytes returns the byte footprint of the exported parameter blocks
// (the data a v2 snapshot can serve via mmap instead of heap copies).
func (m *Model) MatrixBytes() int64 {
	n := int64(len(m.Pi.Data) + len(m.Theta.Data) + len(m.Phi.Data) + len(m.Eta.Data) + len(m.Nu))
	if m.PopFreq != nil {
		n += int64(len(m.PopFreq.Data))
	}
	if m.Xi != nil {
		n += int64(len(m.Xi.Data))
	}
	return 8*n + 4*int64(len(m.DocCommunity)+len(m.DocTopic)) + 8*int64(len(m.DocBucket))
}

// CacheBytes returns the approximate heap footprint of the rebuilt
// prediction caches — what a mapped model still allocates on Rehydrate.
func (m *Model) CacheBytes() int64 {
	n := 8 * int64(len(m.piBase)+len(m.etaFlat))
	if m.thetaColM != nil {
		n += 8 * int64(len(m.thetaColM.Data))
	}
	if m.rankTable != nil {
		n += 8 * int64(len(m.rankTable.Data))
	}
	for _, r := range m.piResid {
		n += 12 * int64(r.NNZ())
	}
	for _, a := range m.aggs {
		n += 8 * int64(len(a.G)+len(a.H)+1)
	}
	return n
}

// piVec materialises user u's membership as a SmoothedVec view.
func (m *Model) piVec(u int, out *sparse.SmoothedVec) {
	out.Dim = m.Cfg.NumCommunities
	out.Base = m.piBase[u]
	out.Idx = m.piResid[u].Indices
	out.Val = m.piResid[u].Values
}

// FriendshipProb returns σ(π_u^T π_v), Eq. 3's link probability — the
// friendship link prediction score of Sect. 6.1.
func (m *Model) FriendshipProb(u, v int) float64 {
	var a, b sparse.SmoothedVec
	m.piVec(u, &a)
	m.piVec(v, &b)
	return mathx.Sigmoid(m.Cfg.FriendScale * a.Dot(&b))
}

// DocTopicDist returns p(z | words, user): the user's community-mixed
// topic prior times the word likelihood, normalized over topics. This is
// the p(z|d_vj) term of Eq. 18.
func (m *Model) DocTopicDist(words []int32, user int) []float64 {
	Z := m.Cfg.NumTopics
	C := m.Cfg.NumCommunities
	logw := make([]float64, Z)
	piRow := m.Pi.Row(user)
	for z := 0; z < Z; z++ {
		var prior float64
		for c := 0; c < C; c++ {
			prior += piRow[c] * m.Theta.At(c, z)
		}
		lw := math.Log(prior + 1e-300)
		for _, w := range words {
			lw += math.Log(m.Phi.At(z, int(w)) + 1e-300)
		}
		logw[z] = lw
	}
	mathx.Softmax(logw, logw)
	return logw
}

// DiffusionLogitTopic returns the Eq. 5 sigmoid argument for user u
// diffusing user v's content on topic z in time bucket b:
// EtaScale · Σ_cc' π_u,c θ_c,z η_{c,c',z} θ_c',z π_v,c' + popularity +
// ν^T f_uv (feats may be nil to skip the individual factor).
func (m *Model) DiffusionLogitTopic(u, v, z, b int, feats []float64) float64 {
	var a, bb sparse.SmoothedVec
	m.piVec(u, &a)
	m.piVec(v, &bb)
	x := m.aggs[z].Eval(m.etaSlice[z], m.thetaColM.Row(z), &a, &bb)
	if !m.Cfg.NoTopicPopularity && b >= 0 && b < m.NumBuckets {
		x += m.Cfg.PopScale * m.PopFreq.At(b, z)
	}
	if !m.Cfg.NoIndividual && feats != nil {
		x += mathx.Dot(m.Nu, feats)
	}
	return x
}

// PiSmoothed materialises user u's membership row as a SmoothedVec view
// over the prediction caches — the exported twin of piVec, for serving
// layers that need the decomposed row itself (cross-shard diffusion ships
// it to the peer that owns the other endpoint).
func (m *Model) PiSmoothed(u int, out *sparse.SmoothedVec) { m.piVec(u, out) }

// SmoothedVecFromRow decomposes a raw membership row into the same
// base+residual form initCaches builds: base is the row minimum, residual
// entries are the components more than 1e-12 above it. Given the exact
// bytes of a model's Π row it produces exactly the vector piVec would —
// the bit-identity contract cross-shard queries rely on when one replica
// hydrates a row fetched from another.
func SmoothedVecFromRow(row []float64, out *sparse.SmoothedVec) {
	out.Dim = len(row)
	out.Idx = out.Idx[:0]
	out.Val = out.Val[:0]
	if len(row) == 0 {
		out.Base = 0
		return
	}
	base := row[0]
	for _, v := range row {
		if v < base {
			base = v
		}
	}
	out.Base = base
	for c, v := range row {
		if v-base > 1e-12 {
			out.Idx = append(out.Idx, int32(c))
			out.Val = append(out.Val, v-base)
		}
	}
}

// DiffusionLogitTopicVec is DiffusionLogitTopic with explicit membership
// vectors: the Eq. 5 sigmoid argument for a diffuser with membership a
// and an author with membership b on topic z in bucket bkt. It evaluates
// the identical bilinear aggregate, popularity and individual terms, so
// DiffusionLogitTopic(u, v, …) == DiffusionLogitTopicVec(piVec(u),
// piVec(v), …) bit for bit.
func (m *Model) DiffusionLogitTopicVec(a, b *sparse.SmoothedVec, z, bkt int, feats []float64) float64 {
	x := m.aggs[z].Eval(m.etaSlice[z], m.thetaColM.Row(z), a, b)
	if !m.Cfg.NoTopicPopularity && bkt >= 0 && bkt < m.NumBuckets {
		x += m.Cfg.PopScale * m.PopFreq.At(bkt, z)
	}
	if !m.Cfg.NoIndividual && feats != nil {
		x += mathx.Dot(m.Nu, feats)
	}
	return x
}

// DiffusionProb implements Eq. 18: the probability that user u publishes a
// document diffusing document j (published by its author) in time bucket
// b, marginalised over j's topic distribution. g supplies the pairwise
// features.
func (m *Model) DiffusionProb(g *socialgraph.Graph, u int, j int, b int) float64 {
	v := int(g.Docs[j].User)
	if m.Cfg.NoHeterogeneity {
		// The heterogeneity ablation scores diffusion like friendship.
		return m.FriendshipProb(u, v)
	}
	var feats []float64
	if !m.Cfg.NoIndividual {
		feats = g.PairFeatures(nil, u, v)
	}
	pz := m.DocTopicDist(g.Docs[j].Words, v)
	var p float64
	for z, w := range pz {
		if w < 1e-6 {
			continue
		}
		p += w * mathx.Sigmoid(m.DiffusionLogitTopic(u, v, z, b, feats))
	}
	return p
}

// RankCommunities implements Eq. 19: it scores every community by its
// probability of diffusing content about the query (a bag of word ids) and
// returns the scores (unnormalised; higher is better).
func (m *Model) RankCommunities(query []int32) []float64 {
	Z := m.Cfg.NumTopics
	C := m.Cfg.NumCommunities
	// p(z|q) ∝ Π_w φ_z,w (uniform community prior absorbed, per the
	// paper's step-2 simplification).
	logq := make([]float64, Z)
	for z := 0; z < Z; z++ {
		var lw float64
		for _, w := range query {
			lw += math.Log(m.Phi.At(z, int(w)) + 1e-300)
		}
		logq[z] = lw
	}
	mathx.Softmax(logq, logq)
	scores := make([]float64, C)
	for c := 0; c < C; c++ {
		var s float64
		for z := 0; z < Z; z++ {
			s += m.rankTable.At(c, z) * logq[z]
		}
		scores[c] = s
	}
	return scores
}

// TopCommunities returns user u's k highest-membership communities
// (descending), the paper's "top five communities" convention for
// conductance and ranking evaluation.
func (m *Model) TopCommunities(u, k int) []int {
	return mathx.TopKIndices(m.Pi.Row(u), k)
}

// CommunityMembers returns, for each community, the users having it among
// their top-k memberships.
func (m *Model) CommunityMembers(k int) [][]int {
	members := make([][]int, m.Cfg.NumCommunities)
	for u := 0; u < m.NumUsers; u++ {
		for _, c := range m.TopCommunities(u, k) {
			members[c] = append(members[c], u)
		}
	}
	return members
}

// WordProb returns p(w | u) = Σ_c π_u,c Σ_z θ_c,z φ_z,w, the mixture the
// content-profile perplexity of Fig. 8 evaluates.
func (m *Model) WordProb(u int, w int) float64 {
	Z := m.Cfg.NumTopics
	C := m.Cfg.NumCommunities
	piRow := m.Pi.Row(u)
	var p float64
	for z := 0; z < Z; z++ {
		var mix float64
		for c := 0; c < C; c++ {
			mix += piRow[c] * m.Theta.At(c, z)
		}
		p += mix * m.Phi.At(z, int(w))
	}
	return p
}

// ProfileWordProbs returns the |C| x |W| matrix P[c][w] = Σ_z θ_c,z φ_z,w:
// each community content profile's word distribution. The Fig. 8
// perplexity evaluates these profiles directly — how well a user's top
// community's profile generates her content.
func (m *Model) ProfileWordProbs() *sparse.Dense {
	C, Z := m.Cfg.NumCommunities, m.Cfg.NumTopics
	out := sparse.NewDense(C, m.NumWords)
	for c := 0; c < C; c++ {
		theta := m.Theta.Row(c)
		dst := out.Row(c)
		for z := 0; z < Z; z++ {
			tz := theta[z]
			if tz == 0 {
				continue
			}
			phi := m.Phi.Row(z)
			for w := range dst {
				dst[w] += tz * phi[w]
			}
		}
	}
	return out
}

// TopCommunity returns user u's highest-membership community.
func (m *Model) TopCommunity(u int) int {
	return mathx.MaxIndex(m.Pi.Row(u))
}

// UserTopicMixture returns Σ_c π_u,c θ_c,· once so per-word scoring is
// O(|Z|).
func (m *Model) UserTopicMixture(u int) []float64 {
	Z := m.Cfg.NumTopics
	C := m.Cfg.NumCommunities
	piRow := m.Pi.Row(u)
	mix := make([]float64, Z)
	for c := 0; c < C; c++ {
		pc := piRow[c]
		if pc == 0 {
			continue
		}
		row := m.Theta.Row(c)
		for z := 0; z < Z; z++ {
			mix[z] += pc * row[z]
		}
	}
	return mix
}

// TopWords returns the k highest-probability word ids of topic z.
func (m *Model) TopWords(z, k int) []int {
	return mathx.TopKIndices(m.Phi.Row(z), k)
}

// Save serializes the model as JSON.
func (m *Model) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(m)
}

// Load deserializes a model saved by Save and rebuilds its caches.
func Load(r io.Reader) (*Model, error) {
	var m Model
	dec := json.NewDecoder(r)
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("core: decoding model: %w", err)
	}
	if m.Pi == nil || m.Theta == nil || m.Phi == nil || m.Eta == nil {
		return nil, fmt.Errorf("core: model file missing parameter blocks")
	}
	if err := m.CheckShapes(); err != nil {
		return nil, err
	}
	m.initCaches()
	return &m, nil
}

// maxModelDim bounds every model dimension a deserializer accepts, so a
// corrupt or hostile file cannot request absurd allocations or overflow
// the element-count products below (2^28 squared still fits in int64).
const maxModelDim = 1 << 28

// CheckShapes cross-checks every parameter block against the config and
// the dimension fields: shared dimensions must agree AND each block's
// backing storage must hold exactly Rows×Cols elements. Deserializers
// (core.Load, internal/store) run it before initCaches, whose indexing
// assumes all of this — a file that lies about its shapes must fail
// loading, not panic serving.
func (m *Model) CheckShapes() error {
	C, Z := m.Cfg.NumCommunities, m.Cfg.NumTopics
	if C <= 0 || Z <= 0 || C > maxModelDim || Z > maxModelDim {
		return fmt.Errorf("core: model config has |C|=%d |Z|=%d", C, Z)
	}
	if m.NumUsers < 0 || m.NumWords < 0 || m.NumBuckets < 0 || m.NumAttrs < 0 ||
		m.NumUsers > maxModelDim || m.NumWords > maxModelDim ||
		m.NumBuckets > maxModelDim || m.NumAttrs > maxModelDim {
		return fmt.Errorf("core: model dimensions out of range (users=%d words=%d buckets=%d attrs=%d)",
			m.NumUsers, m.NumWords, m.NumBuckets, m.NumAttrs)
	}
	dense := func(name string, d *sparse.Dense, rows, cols int) error {
		if d == nil {
			return fmt.Errorf("core: model is missing the %s block", name)
		}
		if d.Rows != rows || d.Cols != cols {
			return fmt.Errorf("core: %s is %dx%d, want %dx%d", name, d.Rows, d.Cols, rows, cols)
		}
		if len(d.Data) != rows*cols {
			return fmt.Errorf("core: %s claims %dx%d but stores %d values", name, rows, cols, len(d.Data))
		}
		return nil
	}
	if err := dense("pi", m.Pi, m.NumUsers, C); err != nil {
		return err
	}
	if err := dense("theta", m.Theta, C, Z); err != nil {
		return err
	}
	if err := dense("phi", m.Phi, Z, m.NumWords); err != nil {
		return err
	}
	if m.Eta == nil {
		return fmt.Errorf("core: model is missing the eta block")
	}
	if m.Eta.D1 != C || m.Eta.D2 != C || m.Eta.D3 != Z {
		return fmt.Errorf("core: eta is %dx%dx%d, want %dx%dx%d", m.Eta.D1, m.Eta.D2, m.Eta.D3, C, C, Z)
	}
	if len(m.Eta.Data) != C*C*Z {
		return fmt.Errorf("core: eta claims %dx%dx%d but stores %d values", C, C, Z, len(m.Eta.Data))
	}
	if m.Xi != nil {
		if err := dense("xi", m.Xi, C, m.NumAttrs); err != nil {
			return err
		}
	}
	// A positive bucket count promises the popularity table: the
	// diffusion path indexes PopFreq whenever 0 <= b < NumBuckets, so a
	// model claiming buckets without the block would panic serving.
	if m.PopFreq == nil && m.NumBuckets > 0 {
		return fmt.Errorf("core: model claims %d time buckets but has no popularity block", m.NumBuckets)
	}
	if m.PopFreq != nil {
		if err := dense("popularity", m.PopFreq, m.NumBuckets, Z); err != nil {
			return err
		}
	}
	if len(m.DocCommunity) != len(m.DocTopic) || len(m.DocCommunity) != len(m.DocBucket) {
		return fmt.Errorf("core: document assignment blocks disagree on length (%d/%d/%d)",
			len(m.DocCommunity), len(m.DocTopic), len(m.DocBucket))
	}
	return nil
}
