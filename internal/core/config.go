package core

import (
	"fmt"
	"runtime"
)

// Sampler names for Config.Sampler.
const (
	// SamplerExact draws every document topic and community from the full
	// collapsed conditional (Eqs. 13–14) — O(|Z|) / O(|C|) per draw. The
	// default, and the only sampler with the bit-identical-for-any-Workers
	// guarantee extended to golden fixtures.
	SamplerExact = "exact"
	// SamplerAlias draws through alias-table proposals with
	// Metropolis–Hastings correction against the exact conditional
	// (LightLDA/WarpLDA lineage) — O(1) amortized per candidate instead of
	// O(K). Still deterministic per (seed, graph, config) and still
	// bit-identical for any Workers value, but its chains differ from the
	// exact sampler's, so quality is gated by the scenario suite's NMI
	// floors rather than golden equality. See internal/core/sampler_alias.go.
	SamplerAlias = "alias"
)

// Config holds CPD hyperparameters, the paper's priors as defaults, and the
// ablation switches used by the Sect. 6.2 model-design study.
type Config struct {
	NumCommunities int // |C|
	NumTopics      int // |Z|

	// Sampler selects the E-step sampling algorithm: "" or "exact" for the
	// full-conditional Gibbs sampler, "alias" for the alias-table + MH
	// sampler (see the Sampler* constants). The zero value is deliberately
	// NOT rewritten by withDefaults, so snapshots of exact-sampler models
	// serialize byte-identically to pre-Sampler releases.
	Sampler string `json:"sampler,omitempty"`

	// Dirichlet priors; zero values select the paper's defaults
	// (Sect. 4.2): alpha = 50/|Z|, rho = 50/|C|, beta = 0.1.
	Alpha, Beta, Rho float64
	// Mu is the community-attribute Dirichlet prior used when
	// ModelAttributes is set (default 0.1).
	Mu float64

	// ModelAttributes enables the attribute-profile extension (the paper's
	// future work: profiles over "other types of X" such as user
	// attributes). Each user attribute token gets a latent community
	// assignment — informing detection through π̂ exactly like a document —
	// and every community gains an attribute profile ξ_c (Model.Xi).
	// Requires the graph to carry attributes; incompatible with
	// NoJointModeling (whose two-phase semantics do not define where
	// attribute evidence belongs).
	ModelAttributes bool

	EMIters int // T1 outer EM iterations (default 30)
	NuIters int // T2 gradient steps for nu per M-step (default 40)
	// NuLearningRate for the nu logistic regression (default 0.5).
	NuLearningRate float64
	// NegPerPos is the number of sampled negative (non-)links per observed
	// diffusion link in the nu M-step; the paper uses "the same amount",
	// i.e. 1 (the default).
	NegPerPos int
	// NegFriendPerPos conditions detection on that many sampled negative
	// friendship pairs per observed link (with their own Pólya-Gamma
	// variables). The paper models observed links only (following RTM
	// [5]), but at reproduction scale that likelihood is degenerate — one
	// giant community maximizes every observed-link term — so we sample
	// negatives exactly as the paper already does for ν's logistic
	// regression. Default 1; set -1 to disable (the paper's literal
	// observed-only setting).
	NegFriendPerPos int

	// TimeBuckets discretizes timestamps for the topic-popularity factor
	// n_tz (default 24).
	TimeBuckets int
	// PopScale multiplies the normalized per-bucket topic frequency before
	// it enters Eq. 5. The paper adds the raw count n_tz; at our data
	// scale a raw count saturates the sigmoid, so we add
	// PopScale * n_tz / n_t (README.md design notes). Default 5.
	PopScale float64
	// EtaScale multiplies the diffusion profile inside the bilinear form
	// c̄^T η̄ of Eq. 5. η is a per-community probability distribution over
	// (c', z) cells (Definition 5), so its raw entries are O(1/(|C||Z|));
	// the fixed scale restores a useful logit range without changing the
	// profile itself. Default 10.
	EtaScale float64
	// FriendScale multiplies the membership similarity inside Eq. 3:
	// P(F_uv) = σ(FriendScale · π̂_u^T π̂_v). At the paper's ~290 docs/user
	// the dot product spans most of (0, 1) on its own; at reproduction
	// scale the Dirichlet smoothing compresses it, so the likelihood-ratio
	// coupling that drives detection needs a fixed gain. Monotone, so
	// ranking metrics (AUC) are unaffected; only the training coupling
	// changes. Default 4.
	FriendScale float64

	// WarmStartSweeps runs this many detection-only block-Gibbs sweeps
	// (friendship likelihood + membership prior, whole-user moves) before
	// the joint EM loop, so the per-document sampler starts from an
	// assortative configuration instead of noise. Mixing aid only — the
	// joint model then moves assignments freely. Default 10; ignored under
	// NoJointModeling (which has its own detection phase) and
	// NoFriendship.
	WarmStartSweeps int

	// Workers is the E-step worker-pool size (Sect. 4.3). 0 selects
	// runtime.NumCPU(). Workers is a logical goroutine count, decoupled
	// from the physical core count: training is bit-identical for every
	// value (including Workers = 1 and Workers > NumCPU), because the unit
	// of work is the data segment — fixed segmentation, per-segment RNG
	// streams, snapshot reads across segments — and Workers only controls
	// how segments are packed onto pool goroutines. See Engine.
	Workers int
	// SegmentLDAIters bounds the segmentation LDA's Gibbs sweeps
	// (default 15).
	SegmentLDAIters int

	Seed uint64

	// Ablations (Sect. 6.2 / Fig. 3):

	// NoJointModeling reproduces the "no joint modeling" baseline: detect
	// communities from friendship links alone in a first phase, then
	// freeze the community assignments and learn profiles.
	NoJointModeling bool
	// NoHeterogeneity reproduces "no heterogeneity": diffusion links are
	// modeled with the same community-similarity sigmoid as friendship
	// links (Eq. 3 applied to E) instead of Eq. 5.
	NoHeterogeneity bool
	// NoIndividual drops the individual-preference term nu^T f_uv from
	// Eq. 5 ("no individual & topic" combines it with NoTopicPopularity).
	NoIndividual bool
	// NoTopicPopularity drops the topic-popularity term n_tz from Eq. 5.
	NoTopicPopularity bool
	// NoFriendship removes the friendship likelihood (Eq. 3) from
	// detection entirely. Not an ablation from the paper — it is how the
	// baselines package instantiates COLD [17], which "models neither
	// friendship links in community detection, nor individual factor and
	// topic factor in diffusion prediction".
	NoFriendship bool
}

// WithDefaults returns the configuration with every zero field filled with
// the paper's default. Train applies it automatically; it is exported for
// callers that assemble a Model directly from parameter blocks (the serving
// layer's synthetic benchmark models) and need the prediction gains
// (EtaScale, PopScale, FriendScale) populated.
func (c Config) WithDefaults() Config { return c.withDefaults() }

// withDefaults fills zero values with the paper's settings.
func (c Config) withDefaults() Config {
	if c.Alpha == 0 {
		c.Alpha = 50 / float64(c.NumTopics)
	}
	if c.Beta == 0 {
		c.Beta = 0.1
	}
	if c.Mu == 0 {
		c.Mu = 0.1
	}
	if c.Rho == 0 {
		c.Rho = 50 / float64(c.NumCommunities)
	}
	if c.EMIters == 0 {
		c.EMIters = 30
	}
	if c.NuIters == 0 {
		c.NuIters = 40
	}
	if c.NuLearningRate == 0 {
		c.NuLearningRate = 0.5
	}
	if c.NegPerPos == 0 {
		c.NegPerPos = 1
	}
	if c.NegFriendPerPos == 0 {
		c.NegFriendPerPos = 1
	}
	if c.NegFriendPerPos < 0 {
		c.NegFriendPerPos = 0
	}
	if c.TimeBuckets == 0 {
		c.TimeBuckets = 24
	}
	if c.PopScale == 0 {
		c.PopScale = 5
	}
	if c.EtaScale == 0 {
		c.EtaScale = 10
	}
	if c.FriendScale == 0 {
		c.FriendScale = 4
	}
	if c.WarmStartSweeps == 0 {
		c.WarmStartSweeps = 10
	}
	if c.WarmStartSweeps < 0 {
		c.WarmStartSweeps = 0
	}
	if c.Workers == 0 {
		c.Workers = runtime.NumCPU()
	}
	if c.SegmentLDAIters == 0 {
		c.SegmentLDAIters = 15
	}
	return c
}

// validate rejects impossible configurations.
func (c Config) validate() error {
	if c.NumCommunities <= 0 {
		return fmt.Errorf("core: NumCommunities must be positive, got %d", c.NumCommunities)
	}
	if c.NumTopics <= 0 {
		return fmt.Errorf("core: NumTopics must be positive, got %d", c.NumTopics)
	}
	if c.Workers < 0 {
		return fmt.Errorf("core: Workers must be non-negative, got %d", c.Workers)
	}
	if c.NegPerPos < 0 {
		return fmt.Errorf("core: NegPerPos must be non-negative, got %d", c.NegPerPos)
	}
	if c.ModelAttributes && c.NoJointModeling {
		return fmt.Errorf("core: ModelAttributes is incompatible with NoJointModeling")
	}
	switch c.Sampler {
	case "", SamplerExact, SamplerAlias:
	default:
		return fmt.Errorf("core: unknown Sampler %q (want %q or %q)", c.Sampler, SamplerExact, SamplerAlias)
	}
	return nil
}

// aliasSampling reports whether the configuration selects the alias + MH
// E-step samplers.
func (c Config) aliasSampling() bool { return c.Sampler == SamplerAlias }

// Diagnostics reports timing and balancing information the scalability
// experiments (Figs. 10–11) consume.
type Diagnostics struct {
	// EStepSeconds / MStepSeconds are cumulative over all EM iterations.
	EStepSeconds, MStepSeconds float64
	// SweepSeconds is the per-iteration E-step wall time.
	SweepSeconds []float64
	// WorkerEstimated / WorkerActual are per-worker workload predictions
	// (the loads the last knapsack packing balanced — operation counts
	// initially, measured seconds after a re-pack) and measured E-step
	// seconds for the last recorded sweep.
	WorkerEstimated, WorkerActual []float64
	// Segments is the number of LDA data segments built.
	Segments int
	// Repacks counts how many times the engine re-ran the knapsack packing
	// because the measured worker imbalance drifted past its threshold.
	Repacks int
}
