package core

import (
	"math"
	"testing"

	"repro/internal/mathx"
	"repro/internal/rng"
)

func TestSampleNegativePairRejections(t *testing.T) {
	g := testGraph(60, 71)
	cfg := testConfig().withDefaults()
	st := newState(g, cfg)
	sc := newScratch(cfg, rng.New(1))
	nd := len(g.Docs)
	for trial := 0; trial < 200; trial++ {
		i, j, ok := st.sampleNegativePair(sc, nd)
		if !ok {
			t.Fatal("sampler gave up on a healthy graph")
		}
		if i == j {
			t.Fatal("self pair")
		}
		if g.Docs[i].User == g.Docs[j].User {
			t.Fatal("same-user pair")
		}
		if _, seen := st.diffPairSet[int64(i)*int64(nd)+int64(j)]; seen {
			t.Fatal("observed link sampled as negative")
		}
	}
}

func TestMStepNuSeparatesLinksFromNonLinks(t *testing.T) {
	// After training, the full Eq. 5 argument should be higher on observed
	// diffusion links than on random non-links — i.e. the learned factors
	// (community + popularity + nu) actually discriminate.
	g := testGraph(150, 72)
	cfg := Config{
		NumCommunities: 10, NumTopics: 12, EMIters: 10, Workers: 1,
		Seed: 4, Rho: 0.1,
	}.withDefaults()
	st := newState(g, cfg)
	sc := newScratch(cfg, rng.New(2))
	for it := 0; it < cfg.EMIters; it++ {
		st.refreshCaches()
		st.sweepSerial(sc)
		st.mStepEta()
		st.mStepNu(sc)
	}
	st.refreshCaches()
	var posMean, negMean float64
	for e := range g.Diffs {
		posMean += st.diffusionArg(e, sc)
	}
	posMean /= float64(len(g.Diffs))
	nd := len(g.Docs)
	const nNeg = 400
	for k := 0; k < nNeg; k++ {
		i, j, ok := st.sampleNegativePair(sc, nd)
		if !ok {
			t.Fatal("negative sampling failed")
		}
		negMean += st.pairOffset(int32(i), int32(j), sc) + st.indivTermForPair(i, j)
	}
	negMean /= nNeg
	if posMean <= negMean {
		t.Fatalf("trained Eq.5 argument does not separate: pos %v <= neg %v", posMean, negMean)
	}
}

// indivTermForPair computes nu^T f for an arbitrary pair (test helper).
func (st *state) indivTermForPair(i, j int) float64 {
	f := st.g.PairFeatures(nil, int(st.g.Docs[i].User), int(st.g.Docs[j].User))
	return mathx.Dot(st.nu, f)
}

func TestDiffusionLogitTopicConsistency(t *testing.T) {
	// DiffusionProb must equal the pz-weighted sigmoid of
	// DiffusionLogitTopic — the decomposition the dblp_citation example
	// relies on.
	g, m := trainSmall(t, nil)
	u, j := 3, 5
	v := int(g.Docs[j].User)
	b := m.DocBucket[j]
	feats := g.PairFeatures(nil, u, v)
	pz := m.DocTopicDist(g.Docs[j].Words, v)
	var want float64
	for z, w := range pz {
		if w < 1e-6 {
			continue
		}
		want += w * mathx.Sigmoid(m.DiffusionLogitTopic(u, v, z, b, feats))
	}
	got := m.DiffusionProb(g, u, j, b)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("DiffusionProb %v != decomposed %v", got, want)
	}
}

func TestEtaScaleMonotoneInvariance(t *testing.T) {
	// AUC-style orderings must be invariant to EtaScale at prediction time
	// given identical assignments: scaling eta inside the sigmoid is
	// monotone per (u, v, z). Verify pairwise ordering of logits is
	// preserved across two models differing only in cached scale.
	g, m := trainSmall(t, nil)
	m2 := *m
	m2.Cfg.EtaScale = m.Cfg.EtaScale * 3
	m2.initCaches()
	u := 1
	type pair struct{ a, b float64 }
	var pairs []pair
	for j := 2; j < 12; j++ {
		v := int(g.Docs[j].User)
		z := 0
		pairs = append(pairs, pair{
			m.DiffusionLogitTopic(u, v, z, 0, nil),
			m2.DiffusionLogitTopic(u, v, z, 0, nil),
		})
	}
	for i := 1; i < len(pairs); i++ {
		d1 := pairs[i].a - pairs[i-1].a
		d2 := pairs[i].b - pairs[i-1].b
		if d1*d2 < 0 && math.Abs(d1) > 1e-9 && math.Abs(d2) > 1e-9 {
			t.Fatalf("EtaScale changed pairwise ordering: %v vs %v", d1, d2)
		}
	}
}

func TestProfileWordProbsRowsNormalized(t *testing.T) {
	_, m := trainSmall(t, nil)
	p := m.ProfileWordProbs()
	for c := 0; c < m.Cfg.NumCommunities; c++ {
		var s float64
		for w := 0; w < m.NumWords; w++ {
			s += p.At(c, w)
		}
		if math.Abs(s-1) > 1e-6 {
			t.Fatalf("profile %d word probs sum to %v", c, s)
		}
	}
	// TopCommunity agrees with Pi argmax.
	for u := 0; u < 20; u++ {
		if got, want := m.TopCommunity(u), mathx.MaxIndex(m.Pi.Row(u)); got != want {
			t.Fatalf("TopCommunity(%d) = %d, want %d", u, got, want)
		}
	}
}
