// Package core implements the paper's primary contribution: the joint
// Community Profiling and Detection (CPD) model of Sect. 3 and its scalable
// inference algorithm of Sect. 4 — collapsed Gibbs sampling over topic and
// community assignments with Pólya-Gamma data augmentation for the two
// sigmoid link likelihoods (friendship, Eq. 3; diffusion, Eq. 5),
// interleaved with a variational-EM M-step that re-estimates the diffusion
// profile η by assignment aggregation and the individual-preference weights
// ν by logistic regression. A multi-threaded E-step reproduces Sect. 4.3's
// parallelization: LDA-based user segmentation packed onto workers with 0-1
// knapsack workload balancing.
//
// # E-step samplers
//
// Config.Sampler selects how the E-step draws each document's topic and
// community assignment; both samplers target the same collapsed
// conditionals and share the engine's determinism contract (bit-identical
// training for any Workers value, from the same seed).
//
//   - SamplerExact (the default, gibbs.go) evaluates the full conditional
//     at every candidate: O(|Z|·(|doc| + links)) per topic draw,
//     O(|C|·links) per community draw. It is the reference path — its
//     training trajectories are pinned bit-for-bit by golden tests, and
//     the zero value of Config.Sampler means exact so that configs
//     serialize identically to pre-Sampler releases.
//
//   - SamplerAlias (sampler_alias.go) replaces the full scan with a few
//     Metropolis–Hastings steps per draw: candidates come from O(1)
//     alias-table draws (Vose tables over sweep-start counts, package
//     internal/alias) or sparse-bucket draws over the user's own
//     assignments, and each candidate is accepted or rejected against the
//     exact conditional evaluated at just two points — link kernels
//     included, so the stationary distribution is the exact conditional.
//     Cost per draw is O(MH steps · (log support + |doc| terms)) instead
//     of a |Z|- or |C|-linear scan, which is what makes large label
//     spaces affordable (BenchmarkEStep: ~5x E-step throughput at
//     |C| = |Z| = 128). Its chains consume randomness differently from
//     the exact sampler's, so alias quality is gated by scenario NMI
//     floors (internal/scenario) rather than golden equality.
package core
