package core

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/socialgraph"
	"repro/internal/sparse"
	"repro/internal/synth"
)

func testGraph(users int, seed uint64) *socialgraph.Graph {
	g, _ := synth.Generate(synth.TwitterLike(users, seed))
	return g
}

func testConfig() Config {
	return Config{
		NumCommunities: 8, NumTopics: 10, EMIters: 5, Workers: 1,
		Seed: 3, Rho: 0.125, WarmStartSweeps: 3,
	}
}

// checkCounters verifies every counter table against a recount from the
// raw assignments — the core Gibbs invariant.
func checkCounters(t *testing.T, st *state) {
	t.Helper()
	cfg := st.cfg
	nCZ := sparse.NewDense(cfg.NumCommunities, cfg.NumTopics)
	nZW := sparse.NewDense(cfg.NumTopics, st.g.NumWords)
	nTZ := sparse.NewDense(st.nTZ.rows, cfg.NumTopics)
	for i, d := range st.g.Docs {
		c, z := int(st.docC[i]), int(st.docZ[i])
		nCZ.Add(c, z, 1)
		for _, w := range d.Words {
			nZW.Add(z, int(w), 1)
		}
		nTZ.Add(st.docBucket[i], z, 1)
	}
	for c := 0; c < cfg.NumCommunities; c++ {
		var rowSum float64
		for z := 0; z < cfg.NumTopics; z++ {
			if got := float64(st.nCZ.at(c, z)); got != nCZ.At(c, z) {
				t.Fatalf("nCZ[%d][%d] = %v, recount %v", c, z, got, nCZ.At(c, z))
			}
			rowSum += nCZ.At(c, z)
		}
		if got := float64(st.nCT.at(c)); got != rowSum {
			t.Fatalf("nCT[%d] = %v, recount %v", c, got, rowSum)
		}
	}
	for z := 0; z < cfg.NumTopics; z++ {
		var rowSum float64
		for w := 0; w < st.g.NumWords; w++ {
			if got := float64(st.nZW.at(z, w)); got != nZW.At(z, w) {
				t.Fatalf("nZW[%d][%d] = %v, recount %v", z, w, got, nZW.At(z, w))
			}
			rowSum += nZW.At(z, w)
		}
		if got := float64(st.nZT.at(z)); got != rowSum {
			t.Fatalf("nZT[%d] = %v, recount %v", z, got, rowSum)
		}
	}
	for b := 0; b < st.nTZ.rows; b++ {
		for z := 0; z < cfg.NumTopics; z++ {
			if got := float64(st.nTZ.at(b, z)); got != nTZ.At(b, z) {
				t.Fatalf("nTZ[%d][%d] = %v, recount %v", b, z, got, nTZ.At(b, z))
			}
		}
	}
}

func TestCountersConsistentAfterSweeps(t *testing.T) {
	g := testGraph(80, 1)
	cfg := testConfig().withDefaults()
	st := newState(g, cfg)
	checkCounters(t, st)
	sc := newScratch(cfg, rng.New(9))
	for i := 0; i < 3; i++ {
		st.refreshCaches()
		st.sweepSerial(sc)
	}
	checkCounters(t, st)
	// Block moves preserve the invariant too.
	st.contentOn = false
	st.sweepSerial(sc)
	checkCounters(t, st)
}

func TestPiHatMatchesBruteForce(t *testing.T) {
	g := testGraph(50, 2)
	cfg := testConfig().withDefaults()
	st := newState(g, cfg)
	sc := newScratch(cfg, rng.New(1))
	var sv sparse.SmoothedVec
	var idx []int32
	var val []float64
	for u := 0; u < g.NumUsers; u += 7 {
		st.piHat(int32(u), -1, &sv, &idx, &val, sc)
		dense := sv.Dense()
		var sum float64
		for c := 0; c < cfg.NumCommunities; c++ {
			want := st.piHatAt(int32(u), int32(c))
			if math.Abs(dense[c]-want) > 1e-12 {
				t.Fatalf("piHat[%d][%d] = %v, want %v", u, c, dense[c], want)
			}
			sum += dense[c]
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("piHat[%d] sums to %v", u, sum)
		}
	}
	// Exclusion removes exactly one count.
	u := int(g.Docs[0].User)
	d := int32(0)
	st.piHat(int32(u), d, &sv, &idx, &val, sc)
	exclSum := sv.Base*float64(cfg.NumCommunities) + sv.ResidualSum()
	den := st.piHatDen(int32(u))
	if math.Abs(exclSum-(1-1/den)) > 1e-9 {
		t.Fatalf("excluded piHat sums to %v, want %v", exclSum, 1-1/den)
	}
}

func TestBlockMoveAlignsUserDocs(t *testing.T) {
	g := testGraph(60, 3)
	cfg := testConfig().withDefaults()
	st := newState(g, cfg)
	sc := newScratch(cfg, rng.New(5))
	for u := 0; u < g.NumUsers; u++ {
		st.sampleUserCommunityBlock(int32(u), sc)
		docs := g.UserDocs(u)
		for _, d := range docs[1:] {
			if st.docC[d] != st.docC[docs[0]] {
				t.Fatalf("user %d docs not aligned after block move", u)
			}
		}
	}
	checkCounters(t, st)
}

func TestEtaNormalizedAfterMStep(t *testing.T) {
	g := testGraph(60, 4)
	cfg := testConfig().withDefaults()
	st := newState(g, cfg)
	st.mStepEta()
	C, Z := cfg.NumCommunities, cfg.NumTopics
	for c := 0; c < C; c++ {
		var s float64
		for c2 := 0; c2 < C; c2++ {
			for z := 0; z < Z; z++ {
				v := st.eta.At(c, c2, z)
				if v <= 0 {
					t.Fatalf("eta[%d][%d][%d] = %v, want > 0 (smoothed)", c, c2, z, v)
				}
				s += v
			}
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("eta row %d sums to %v", c, s)
		}
	}
}

func TestNuStaysZeroWhenDisabled(t *testing.T) {
	g := testGraph(60, 5)
	cfg := testConfig()
	cfg.NoIndividual = true
	m, _, err := Train(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range m.Nu {
		if w != 0 {
			t.Fatalf("Nu trained despite NoIndividual: %v", m.Nu)
		}
	}
}

func TestDiffusionArgFinite(t *testing.T) {
	g := testGraph(60, 6)
	cfg := testConfig().withDefaults()
	st := newState(g, cfg)
	sc := newScratch(cfg, rng.New(2))
	for e := range g.Diffs {
		x := st.diffusionArg(e, sc)
		if math.IsNaN(x) || math.IsInf(x, 0) {
			t.Fatalf("diffusionArg(%d) = %v", e, x)
		}
	}
}

func TestNegFriendSampling(t *testing.T) {
	g := testGraph(60, 7)
	cfg := testConfig().withDefaults()
	st := newState(g, cfg)
	if len(st.negFriends) == 0 {
		t.Fatal("no negative friendship pairs sampled")
	}
	existing := map[int64]bool{}
	for _, f := range g.Friends {
		existing[int64(f.U)*int64(g.NumUsers)+int64(f.V)] = true
	}
	for _, f := range st.negFriends {
		if f.U == f.V {
			t.Fatal("negative pair is a self-loop")
		}
		if existing[int64(f.U)*int64(g.NumUsers)+int64(f.V)] {
			t.Fatal("negative pair is an observed link")
		}
	}
	// Disabled by -1.
	cfg2 := testConfig()
	cfg2.NegFriendPerPos = -1
	st2 := newState(g, cfg2.withDefaults())
	if len(st2.negFriends) != 0 {
		t.Fatal("NegFriendPerPos=-1 still sampled negatives")
	}
}

func TestConfigValidation(t *testing.T) {
	g := testGraph(30, 8)
	if _, _, err := Train(g, Config{NumCommunities: 0, NumTopics: 5}); err == nil {
		t.Fatal("accepted zero communities")
	}
	if _, _, err := Train(g, Config{NumCommunities: 5, NumTopics: 0}); err == nil {
		t.Fatal("accepted zero topics")
	}
	if _, _, err := Train(g, Config{NumCommunities: 5, NumTopics: 5, Workers: -1}); err == nil {
		t.Fatal("accepted negative workers")
	}
	empty := &socialgraph.Graph{NumUsers: 2, NumWords: 3}
	if _, _, err := Train(empty, testConfig()); err == nil {
		t.Fatal("accepted empty graph")
	}
	bad := testGraph(30, 9)
	bad.Friends = append(bad.Friends, socialgraph.FriendLink{U: 0, V: 9999})
	if _, _, err := Train(bad, testConfig()); err == nil {
		t.Fatal("accepted invalid graph")
	}
}
