package core

import (
	"fmt"
	"math"
	"time"

	"repro/internal/rng"
	"repro/internal/socialgraph"
)

// ResumeOptions tunes an engine resumed from a saved model. The zero value
// keeps the model's trained worker count and derives a fresh seed from the
// original one.
type ResumeOptions struct {
	// Workers overrides the worker-pool size (0 keeps the model's value,
	// with the usual 0-means-NumCPU default).
	Workers int
	// Seed drives the resumed run's private RNG root. 0 derives a seed from
	// the model's training seed, so back-to-back resumes of the same
	// snapshot are deterministic but decorrelated from the original run.
	Seed uint64
}

// NewEngineFromModel reconstructs a sampler engine from a trained model —
// the Resume-from-snapshot path. The hard assignments the model carries
// (DocCommunity/DocTopic) seed the sampler state for the documents they
// cover; documents of g beyond them (a graph extended with streamed
// content) are initialized randomly from the resume seed. The counter
// tables, η and ν are rebuilt from those assignments and the model's
// parameter blocks, so a resumed sweep continues the chain instead of
// restarting it.
//
// Not a bitwise continuation: the Pólya-Gamma augmentation variables and
// the negative-friendship sample are not serialized, so they are re-drawn
// (from their priors and the resume seed respectively). Resumed training
// is deterministic per (model, graph, ResumeOptions), and — like fresh
// training — bit-identical for every Workers value.
//
// The graph may extend the training graph with new users, documents, words
// and links, but must contain at least the documents the model was trained
// on, in the same order. Models trained with ModelAttributes or
// NoJointModeling cannot be resumed (attribute assignments are not
// serialized; the two-phase ablation has no single chain to continue).
func NewEngineFromModel(g *socialgraph.Graph, m *Model, opts ResumeOptions) (*Engine, error) {
	cfg := m.Cfg
	if opts.Workers > 0 {
		cfg.Workers = opts.Workers
	}
	if opts.Seed != 0 {
		cfg.Seed = opts.Seed
	} else {
		cfg.Seed = m.Cfg.Seed ^ 0x5E5ED
	}
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.ModelAttributes {
		return nil, fmt.Errorf("core: cannot resume a model trained with ModelAttributes (attribute assignments are not serialized)")
	}
	if cfg.NoJointModeling {
		return nil, fmt.Errorf("core: cannot resume a NoJointModeling model (no single chain to continue)")
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid graph: %w", err)
	}
	if len(g.Docs) == 0 {
		return nil, fmt.Errorf("core: graph has no documents")
	}
	nKeep := len(m.DocCommunity)
	if len(m.DocTopic) != nKeep {
		return nil, fmt.Errorf("core: model assignment blocks disagree (%d communities, %d topics)", nKeep, len(m.DocTopic))
	}
	if len(g.Docs) < nKeep {
		return nil, fmt.Errorf("core: graph has %d documents but the model carries %d assignments", len(g.Docs), nKeep)
	}
	if g.NumUsers < m.NumUsers {
		return nil, fmt.Errorf("core: graph has %d users but the model was trained on %d", g.NumUsers, m.NumUsers)
	}
	C, Z := cfg.NumCommunities, cfg.NumTopics
	for i := 0; i < nKeep; i++ {
		if c := m.DocCommunity[i]; c < 0 || int(c) >= C {
			return nil, fmt.Errorf("core: model assigns doc %d community %d (|C|=%d)", i, c, C)
		}
		if z := m.DocTopic[i]; z < 0 || int(z) >= Z {
			return nil, fmt.Errorf("core: model assigns doc %d topic %d (|Z|=%d)", i, z, Z)
		}
	}
	if m.Eta == nil || m.Eta.D1 != C || m.Eta.D2 != C || m.Eta.D3 != Z {
		return nil, fmt.Errorf("core: model eta block missing or mis-shaped")
	}
	g.BuildIndexes()
	return newEngine(newStateFromModel(g, m, cfg)), nil
}

// newStateFromModel is newState with assignments seeded from the model
// instead of drawn at random. It mirrors newState's structure exactly so
// the two construction paths stay comparable.
func newStateFromModel(g *socialgraph.Graph, m *Model, cfg Config) *state {
	st := &state{
		cfg:       cfg,
		g:         g,
		numDocs:   len(g.Docs),
		docC:      make([]int32, len(g.Docs)),
		docZ:      make([]int32, len(g.Docs)),
		nCZ:       newTable(cfg.NumCommunities, cfg.NumTopics),
		nCT:       newVec(cfg.NumCommunities),
		nZW:       newTable(cfg.NumTopics, g.NumWords),
		nZT:       newVec(cfg.NumTopics),
		nDoc:      make([]int, g.NumUsers),
		eta:       m.Eta.Clone(),
		nu:        make([]float64, socialgraph.FeatureDim),
		contentOn: true,
		root:      rng.New(cfg.Seed),
	}
	copy(st.nu, m.Nu)
	buckets, nb := g.TimeBuckets(cfg.TimeBuckets)
	st.docBucket = buckets
	st.nTZ = newTable(nb, cfg.NumTopics)
	st.nTT = newVec(nb)

	nKeep := len(m.DocCommunity)
	for i, d := range g.Docs {
		st.nDoc[d.User]++
		var c, z int32
		if i < nKeep {
			c, z = m.DocCommunity[i], m.DocTopic[i]
		} else {
			// New documents (a graph extended since the snapshot) start at
			// random, exactly as in a fresh run, consuming the root RNG in
			// document order so the resumed state is deterministic.
			c = int32(st.root.Intn(cfg.NumCommunities))
			z = int32(st.root.Intn(cfg.NumTopics))
		}
		st.docC[i] = c
		st.docZ[i] = z
		st.nCZ.add(int(c), int(z), 1)
		st.nCT.add(int(c), 1)
		for _, w := range d.Words {
			st.nZW.add(int(z), int(w), 1)
			st.nZT.add(int(z), 1)
		}
		st.nTZ.add(st.docBucket[i], int(z), 1)
		st.nTT.add(st.docBucket[i], 1)
	}
	st.nAttr = make([]int, g.NumUsers)
	// Pólya-Gamma variables restart at the PG(1, 0) mean — they are not
	// serialized, and one sweep re-equilibrates them against the resumed
	// assignments.
	pgInit := math.Float64bits(0.25)
	st.lambda = newFloats(uint64(len(g.Friends)), pgInit)
	st.delta = newFloats(uint64(len(g.Diffs)), pgInit)
	st.linkFeat = make([][]float64, len(g.Diffs))
	st.linkOffset = make([]float64, len(g.Diffs))
	st.diffPairSet = make(map[int64]struct{}, len(g.Diffs))
	for e, l := range g.Diffs {
		u := int(g.Docs[l.I].User)
		v := int(g.Docs[l.J].User)
		st.linkFeat[e] = g.PairFeatures(nil, u, v)
		st.diffPairSet[int64(l.I)*int64(len(g.Docs))+int64(l.J)] = struct{}{}
	}
	st.userFriendLinks = make([][]int32, g.NumUsers)
	for l, f := range g.Friends {
		st.userFriendLinks[f.U] = append(st.userFriendLinks[f.U], int32(l))
		if f.V != f.U {
			st.userFriendLinks[f.V] = append(st.userFriendLinks[f.V], int32(l))
		}
	}
	st.sampleNegFriends()
	st.refreshNuOffsets()
	st.refreshCaches()
	if cfg.aliasSampling() {
		st.als = newAliasSampler(st)
	}
	return st
}

// SetDirty restricts subsequent sweeps to the dirty users: only their
// documents' assignments are resampled, and a link's augmentation variable
// is refreshed only when at least one endpoint is dirty. nil clears the
// restriction (every user sweeps). A sweep with every user dirty is
// bit-identical to an unrestricted sweep — the filter never fires, so the
// sampling and RNG consumption are exactly the same.
//
// The dirty slice is read by the worker pool during sweeps; callers must
// not mutate it until the engine is closed or SetDirty is called again
// between sweeps.
func (e *Engine) SetDirty(dirty []bool) error {
	if dirty != nil && len(dirty) != e.st.g.NumUsers {
		return fmt.Errorf("core: dirty mask covers %d users, graph has %d", len(dirty), e.st.g.NumUsers)
	}
	e.dirty = dirty
	return nil
}

// RunEM runs iters plain EM iterations on the engine — one E-step sweep
// (restricted to the dirty set, when one is installed) followed by the η
// and ν M-steps — and returns the resulting model. Unlike Train it runs no
// warm start and no ablation phasing: it continues whatever chain the
// engine's state holds, which is what the resume path and the streaming
// delta trainer need. It may be called repeatedly; diagnostics accumulate.
func (e *Engine) RunEM(iters int) (*Model, *Diagnostics, error) {
	if e.closed {
		return nil, nil, fmt.Errorf("core: RunEM on closed Engine")
	}
	if iters < 0 {
		return nil, nil, fmt.Errorf("core: RunEM needs a non-negative iteration count, got %d", iters)
	}
	st, cfg := e.st, e.cfg
	sc := newScratch(cfg, st.root.Split(0xE11))
	var mstepSecs float64
	for iter := 0; iter < iters; iter++ {
		e.sweep(true)
		t1 := time.Now()
		st.mStepEta()
		if !cfg.NoIndividual && !cfg.NoHeterogeneity {
			st.mStepNu(sc)
		}
		mstepSecs += time.Since(t1).Seconds()
	}
	st.refreshCaches()
	diag := e.Diagnostics()
	diag.MStepSeconds = mstepSecs
	return st.buildModel(), diag, nil
}

// TrainResumed continues training from a saved model for iters EM
// iterations on g (the training graph, possibly extended) and returns the
// re-estimated model: the one-call form of NewEngineFromModel + RunEM that
// cpd-train -resume uses.
func TrainResumed(g *socialgraph.Graph, m *Model, iters int, opts ResumeOptions) (*Model, *Diagnostics, error) {
	e, err := NewEngineFromModel(g, m, opts)
	if err != nil {
		return nil, nil, err
	}
	defer e.Close()
	return e.RunEM(iters)
}
