package core

import (
	"math"
	"sync/atomic"

	"repro/internal/alias"
	"repro/internal/sparse"
)

// This file implements Config.Sampler = "alias": alias-table proposal
// distributions with Metropolis–Hastings correction against the exact
// collapsed conditionals (the LightLDA/WarpLDA sub-linear sampling recipe,
// adapted to CPD's doc-level assignments and link kernels).
//
// The exact samplers in gibbs.go evaluate the full conditional at every
// candidate — O(|Z|·(|doc| + links·support)) per topic draw and
// O(|C|·links) per community draw. The alias sampler replaces the full
// scan with a handful of MH steps: each step draws a candidate from a
// cheap proposal (an O(1) alias-table draw from sweep-start counts, or a
// sparse-bucket draw from the user's own token assignments) and accepts
// or rejects it against the exact conditional evaluated at just the two
// candidates — diffusion and friendship kernels included, so the
// stationary distribution is the exact conditional, not an approximation
// of it. Proposal tables are rebuilt once per sweep from the sweep-start
// snapshot; their within-sweep staleness is exactly what the MH
// acceptance ratio corrects (q is known in closed form from the table
// weights).
//
// Determinism: the tables are built from sweep-start state (identical for
// every segment-to-worker packing), draws consume only the per-segment
// RNG stream, and every exact-conditional evaluation goes through the
// same snapshot/overlay accessors the exact sampler uses — so alias
// training, like exact training, is bit-identical for any Workers value.
// Its chains differ from the exact sampler's (different RNG consumption),
// which is why the alias path is gated by scenario NMI floors instead of
// golden equality.

// topicMHSteps / communityMHSteps are the MH proposal counts per draw.
// Even steps use the "prior" proposal (community-topic table for topics,
// membership sparse-bucket for communities), odd steps the "evidence"
// proposal (word-topic tables for topics, topic-community table for
// communities) — the LightLDA cycling that keeps both factors mixing.
const (
	topicMHSteps     = 4
	communityMHSteps = 4
)

// aliasSampler holds the per-sweep proposal structures. One per state;
// refreshed at every sweep start, read concurrently (and append-only via
// atomics) by the workers during the sweep.
type aliasSampler struct {
	// cz[c] is an alias table over topics with weights n_cz + alpha: the
	// doc-topic "prior" proposal given the document's current community.
	cz []*alias.Table
	// zc[z] is an alias table over communities with weights n_cz + alpha:
	// the community "content" proposal given the document's current topic.
	zc []*alias.Table
	// word[w] is an alias table over topics with weights n_zw + beta,
	// built lazily on first use (most sweeps touch a fraction of the
	// vocabulary's tail). Entries are published via atomic pointers; every
	// builder constructs an identical table from the same sweep-start
	// counts, so racing builders are benign and the result is
	// schedule-independent.
	word []atomic.Pointer[alias.Table]
	// zwSnap is the sweep-start topic-word counter array backing the lazy
	// word tables (the engine's sweepSnapshot.zw). nil in direct/serial
	// mode, where the live counters are read instead.
	zwSnap []int64
}

func newAliasSampler(st *state) *aliasSampler {
	return &aliasSampler{
		cz:   make([]*alias.Table, st.cfg.NumCommunities),
		zc:   make([]*alias.Table, st.cfg.NumTopics),
		word: make([]atomic.Pointer[alias.Table], st.g.NumWords),
	}
}

// refresh rebuilds the proposal tables from the current counters. Called
// between sweeps (no worker running), when the live counters equal the
// sweep-start snapshot; zwSnap carries the snapshot the lazy word tables
// read during the sweep (nil selects live reads for the serial path).
func (as *aliasSampler) refresh(st *state, zwSnap []int64) {
	C, Z := st.cfg.NumCommunities, st.cfg.NumTopics
	alpha := st.cfg.Alpha
	wts := make([]float64, Z)
	for c := 0; c < C; c++ {
		for z := 0; z < Z; z++ {
			wts[z] = float64(st.nCZ.at(c, z)) + alpha
		}
		if t := as.cz[c]; t != nil {
			t.Rebuild(wts) // between sweeps no worker holds the table
		} else {
			as.cz[c] = alias.New(wts)
		}
	}
	cwts := make([]float64, C)
	for z := 0; z < Z; z++ {
		for c := 0; c < C; c++ {
			cwts[c] = float64(st.nCZ.at(c, z)) + alpha
		}
		if t := as.zc[z]; t != nil {
			t.Rebuild(cwts)
		} else {
			as.zc[z] = alias.New(cwts)
		}
	}
	for w := range as.word {
		as.word[w].Store(nil)
	}
	as.zwSnap = zwSnap
}

// wordTable returns the sweep-start word-topic proposal table for word w,
// building it on first use.
func (as *aliasSampler) wordTable(st *state, w int) *alias.Table {
	if t := as.word[w].Load(); t != nil {
		return t
	}
	Z := st.cfg.NumTopics
	beta := st.cfg.Beta
	wts := make([]float64, Z)
	if as.zwSnap != nil {
		cols := st.nZW.cols
		for z := 0; z < Z; z++ {
			wts[z] = float64(as.zwSnap[z*cols+w]) + beta
		}
	} else {
		for z := 0; z < Z; z++ {
			wts[z] = float64(st.nZW.at(z, w)) + beta
		}
	}
	t := alias.New(wts)
	as.word[w].CompareAndSwap(nil, t)
	return as.word[w].Load()
}

// wordMixRatio returns log q(zA) − log q(zB) under the word proposal for
// the document whose grouped words are in sc: a uniform token is drawn,
// then a topic from that word's table, so q(z) is the count-weighted
// mixture of the tables' densities. Both densities come from one pass
// over the distinct words, and the uniform 1/|doc| token factor cancels
// in the ratio.
func (as *aliasSampler) wordMixRatio(st *state, sc *scratch, zA, zB int) float64 {
	var qa, qb float64
	for k, w := range sc.wordIDs {
		t := as.wordTable(st, int(w))
		cnt := float64(sc.wordCnt[k])
		qa += cnt * t.Prob(zA)
		qb += cnt * t.Prob(zB)
	}
	return math.Log(qa) - math.Log(qb)
}

// mhAccept runs one Metropolis–Hastings accept test in log space:
// accept log-ratio a = logp(prop) − logp(cur) + logq(cur) − logq(prop).
func mhAccept(sc *scratch, a float64) bool {
	return a >= 0 || math.Log(sc.r.Float64Open()) < a
}

// sampleDocTopicAlias is sampleDocTopic with the dense O(|Z|) candidate
// scan replaced by topicMHSteps MH proposals. The exact conditional —
// community-topic prior, word likelihood, and the diffusion kernels of
// the links d diffuses — is evaluated at only the current and proposed
// topics, through the same snapshot/overlay counter accessors as the
// exact sampler.
func (st *state) sampleDocTopicAlias(d int32, sc *scratch) {
	doc := &st.g.Docs[d]
	zOld := int(st.zload(d))
	c := int(st.cload(d))
	b := st.docBucket[d]

	st.addCZ(sc, c, zOld, -1)
	st.addCT(sc, c, -1)
	for _, w := range doc.Words {
		st.addZW(sc, zOld, int(w), -1)
	}
	st.addZT(sc, zOld, -int64(len(doc.Words)))
	st.addTZ(sc, b, zOld, -1)
	st.addTT(sc, b, -1)

	beta := st.cfg.Beta
	wBeta := float64(st.g.NumWords) * beta
	alpha := st.cfg.Alpha
	sc.groupWords(doc.Words)

	// Build the sampled user's exact pi-hat once if any diffusion kernel
	// will need it (same exclusion-aware vector the exact sampler builds).
	diffuses := false
	if !st.cfg.NoHeterogeneity {
		for _, e := range st.g.DocDiffLinks(int(d)) {
			if st.g.Diffs[e].I == d {
				diffuses = true
				break
			}
		}
		if diffuses {
			st.piHat(doc.User, d, &sc.piU, &sc.idxBufU, &sc.valBufU, sc)
		}
	}

	// logPost evaluates Eq. 13's log conditional at a single candidate
	// topic: O(|doc| + difflinks·support) instead of O(|Z|·...).
	logPost := func(z int) float64 {
		lw := math.Log(float64(st.cntCZ(sc, c, z)) + alpha)
		for k, w := range sc.wordIDs {
			base := float64(st.cntZW(sc, z, int(w))) + beta
			for m := 0; m < sc.wordCnt[k]; m++ {
				lw += math.Log(base + float64(m))
			}
		}
		den := float64(st.cntZT(sc, z)) + wBeta
		for j := 0; j < len(doc.Words); j++ {
			lw -= math.Log(den + float64(j))
		}
		if diffuses {
			for _, e := range st.g.DocDiffLinks(int(d)) {
				l := st.g.Diffs[e]
				if l.I != d {
					continue
				}
				st.neighborPi(st.g.Docs[l.J].User, doc.User, d, &sc.piV, &sc.idxBufV, &sc.valBufV, sc)
				x := st.aggs[z].Eval(st.etaSlice[z], st.thetaColM.Row(z), &sc.piU, &sc.piV) +
					st.popTerm(sc, st.docBucket[l.I], z) + st.indivTerm(int(e))
				lw += logPsi(x, st.delAt(sc, int(e)))
			}
		}
		return lw
	}

	as := st.als
	cur := zOld
	curLP := math.Inf(1) // computed lazily on the first real proposal
	for step := 0; step < topicMHSteps; step++ {
		var prop int
		var lqRatio float64 // log q(cur) − log q(prop)
		if step&1 == 0 || len(doc.Words) == 0 {
			t := as.cz[c]
			prop = t.Draw(sc.r)
			if prop == cur {
				continue
			}
			lqRatio = math.Log(t.Prob(cur)) - math.Log(t.Prob(prop))
		} else {
			w := doc.Words[sc.r.Intn(len(doc.Words))]
			prop = as.wordTable(st, int(w)).Draw(sc.r)
			if prop == cur {
				continue
			}
			lqRatio = as.wordMixRatio(st, sc, cur, prop)
		}
		if math.IsInf(curLP, 1) {
			curLP = logPost(cur)
		}
		propLP := logPost(prop)
		if mhAccept(sc, propLP-curLP+lqRatio) {
			cur, curLP = prop, propLP
		}
	}

	zNew := cur
	st.zstore(d, int32(zNew))
	st.addCZ(sc, c, zNew, 1)
	st.addCT(sc, c, 1)
	for _, w := range doc.Words {
		st.addZW(sc, zNew, int(w), 1)
	}
	st.addZT(sc, zNew, int64(len(doc.Words)))
	st.addTZ(sc, b, zNew, 1)
	st.addTT(sc, b, 1)
}

// residualAt returns the sparse residual of a SmoothedVec-shaped support
// (sorted idx, parallel val) at coordinate c, 0 when absent.
func residualAt(idx []int32, val []float64, c int) float64 {
	lo, hi := 0, len(idx)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if int(idx[mid]) < c {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(idx) && int(idx[lo]) == c {
		return val[lo]
	}
	return 0
}

// sampleDocCommunityAlias is sampleDocCommunity with the dense O(|C|)
// candidate scan replaced by communityMHSteps MH proposals. The "prior"
// proposal is the sparse-bucket draw from the user's own remaining token
// assignments (q(c) ∝ n_u^{c,¬} + rho, sampled in O(1) without
// materialising anything dense); the "content" proposal is the
// sweep-start topic-community alias table. The exact conditional —
// membership prior, community-topic term, friendship and diffusion
// kernels — is evaluated at only the two candidates, each link costing
// O(support) instead of O(|C|).
func (st *state) sampleDocCommunityAlias(d int32, sc *scratch) {
	doc := &st.g.Docs[d]
	u := doc.User
	cOld := int(st.cload(d))
	z := int(st.zload(d))

	st.addCZ(sc, cOld, z, -1)
	st.addCT(sc, cOld, -1)

	C := st.cfg.NumCommunities
	rho := st.cfg.Rho
	alpha := st.cfg.Alpha
	zAlpha := float64(st.cfg.NumTopics) * alpha

	st.piHat(u, d, &sc.piU, &sc.idxBufU, &sc.valBufU, sc)
	denU := st.piHatDen(u)
	invDenU := 1 / denU

	// priorAt returns rho + n_u^{c,¬d} from the exclusion-aware pi-hat.
	priorAt := func(cc int) float64 {
		return rho + residualAt(sc.piU.Idx, sc.piU.Val, cc)*denU
	}

	// Predigest every link kernel once: the pi materialisation, dot
	// product, bilinear aggregate, and augmentation lookups are all
	// candidate-independent, so hoisting them out of the MH loop leaves
	// each evaluation a residual lookup (or one support scan for
	// heterogeneous diffusion) per link. See evalLinkAt.
	fs := st.cfg.FriendScale
	sc.links = sc.links[:0]
	addFlat := func(other int32, aug float64, kind uint8) {
		var pv *sparse.SmoothedVec
		oth := other
		if other == u {
			pv, oth = &sc.piU, -1
		} else {
			st.piSnap(other, &sc.piV)
			pv = &sc.piV
		}
		x0 := fs * (sc.piU.Dot(pv) + pv.Base*invDenU)
		sc.links = append(sc.links, linkEval{x0: x0, aug: aug, other: oth, kind: kind})
	}
	if !st.cfg.NoFriendship {
		for _, li := range st.userFriendLinks[u] {
			f := st.g.Friends[li]
			other := f.U
			if other == u {
				other = f.V
			}
			addFlat(other, st.lamAt(sc, int(li)), linkFriendPos)
		}
		for _, li := range st.userNegFriendLinks[u] {
			f := st.negFriends[li]
			other := f.U
			if other == u {
				other = f.V
			}
			addFlat(other, st.lamNegAt(sc, int(li)), linkFriendNeg)
		}
	}
	if st.contentOn {
		for _, e := range st.g.DocDiffLinks(int(d)) {
			l := st.g.Diffs[e]
			delta := st.delAt(sc, int(e))
			otherU := st.g.Docs[l.J].User
			if l.I != d {
				otherU = st.g.Docs[l.I].User
			}
			if st.cfg.NoHeterogeneity {
				addFlat(otherU, delta, linkDiffFlat)
				continue
			}
			lz := st.zAt(sc, l.I, d) // link topic = diffusing document's topic
			w := st.thetaColM.Row(int(lz))
			m := st.etaSlice[lz]
			agg := st.aggs[lz]
			base := st.popTerm(sc, st.docBucket[l.I], int(lz)) + st.indivTerm(int(e))
			var pv *sparse.SmoothedVec
			oth := otherU
			if otherU == u {
				pv, oth = &sc.piU, -1
			} else {
				st.piSnap(otherU, &sc.piV)
				pv = &sc.piV
			}
			kind := linkDiffRow
			if l.I == d {
				// d is the diffusing side: the candidate perturbs the row.
				base += agg.Eval(m, w, &sc.piU, pv)
			} else {
				kind = linkDiffCol
				base += agg.Eval(m, w, pv, &sc.piU)
			}
			sc.links = append(sc.links, linkEval{x0: base, aug: delta, other: oth, z: lz, kind: kind})
		}
	}

	// logPost evaluates Eq. 14's log conditional at a single candidate.
	logPost := func(cc int) float64 {
		lp := math.Log(priorAt(cc))
		if st.contentOn {
			lp += math.Log(float64(st.cntCZ(sc, cc, z))+alpha) -
				math.Log(float64(st.cntCT(sc, cc))+zAlpha)
		}
		for i := range sc.links {
			lp += st.evalLinkAt(&sc.links[i], cc, invDenU, sc)
		}
		return lp
	}

	// Sparse-bucket prior proposal: the prior mass splits into C·rho of
	// smoothing (uniform over communities) and one unit per remaining
	// token of the user (uniform over tokens, taking the token's current
	// assignment) — an O(1) draw from q(c) ∝ rho + n_u^{c,¬d} with no
	// dense scan and no table build.
	docs := st.g.UserDocs(int(u))
	nTok := st.nDoc[u] + st.nAttr[u] - 1 // tokens excluding d
	priorTotal := float64(C)*rho + float64(nTok)
	drawPrior := func() int {
		if nTok == 0 || sc.r.Float64()*priorTotal < float64(C)*rho {
			return sc.r.Intn(C)
		}
		for {
			j := sc.r.Intn(len(docs) + st.nAttr[u])
			if j < len(docs) {
				if docs[j] == d {
					continue // excluded token: redraw
				}
				return int(st.cload(docs[j]))
			}
			return int(atomic.LoadInt32(&st.attrC[u][j-len(docs)]))
		}
	}

	as := st.als
	cur := cOld
	curLP := math.Inf(1)
	for step := 0; step < communityMHSteps; step++ {
		var prop int
		var lqRatio float64
		if step&1 == 0 {
			prop = drawPrior()
			if prop == cur {
				continue
			}
			lqRatio = math.Log(priorAt(cur)) - math.Log(priorAt(prop))
		} else {
			t := as.zc[z]
			prop = t.Draw(sc.r)
			if prop == cur {
				continue
			}
			lqRatio = math.Log(t.Prob(cur)) - math.Log(t.Prob(prop))
		}
		if math.IsInf(curLP, 1) {
			curLP = logPost(cur)
		}
		propLP := logPost(prop)
		if mhAccept(sc, propLP-curLP+lqRatio) {
			cur, curLP = prop, propLP
		}
	}

	cNew := cur
	st.cstore(d, int32(cNew))
	st.addCZ(sc, cNew, z, 1)
	st.addCT(sc, cNew, 1)
}

// linkEval is one predigested link kernel for the alias community
// sampler. sampleDocCommunityAlias computes the candidate-independent
// part of each kernel argument once per document draw (pi views, the dot
// product or bilinear aggregate, the augmentation variable), so each MH
// candidate evaluation is O(log support) for the friendship-shaped
// kernels and O(support) for the heterogeneous diffusion perturbation.
type linkEval struct {
	x0    float64 // candidate-independent part of the kernel argument
	aug   float64 // PG augmentation variable (lambda or delta)
	other int32   // counterparty user; -1 when the view is piU itself
	z     int32   // link topic (heterogeneous diffusion kinds only)
	kind  uint8
}

const (
	linkFriendPos uint8 = iota // positive friendship: logPsi
	linkFriendNeg              // sampled non-friend: logPsiNeg
	linkDiffFlat               // NoHeterogeneity diffusion: friendship-shaped
	linkDiffRow                // heterogeneous, d diffusing: candidate on the row
	linkDiffCol                // heterogeneous, d source: candidate on the column
)

// evalLinkAt evaluates one predigested link kernel at candidate
// community cc. The counterparty's pi view is resolved from stable
// storage (the sampled user's own exclusion-aware pi-hat in sc.piU, or
// the sweep-start snapshot slices) — nothing is copied per evaluation.
func (st *state) evalLinkAt(le *linkEval, cc int, invDenU float64, sc *scratch) float64 {
	var base float64
	var idx []int32
	var val []float64
	if le.other < 0 {
		base, idx, val = sc.piU.Base, sc.piU.Idx, sc.piU.Val
	} else {
		base = st.cfg.Rho / st.piHatDen(le.other)
		idx, val = st.piSnapIdx[le.other], st.piSnapVal[le.other]
	}
	switch le.kind {
	case linkFriendPos, linkFriendNeg, linkDiffFlat:
		// x(c) = x0 + fs·resid_v[c]/den_u, with x0 = fs·(π̂_u^T π̂_v + base_v/den_u).
		x := le.x0 + st.cfg.FriendScale*invDenU*residualAt(idx, val, cc)
		if le.kind == linkFriendNeg {
			return logPsiNeg(x, le.aug)
		}
		return logPsi(x, le.aug)
	case linkDiffRow:
		// The candidate perturbs the row argument of the bilinear form:
		// y[c] accumulated over the neighbour's support only.
		z := int(le.z)
		w := st.thetaColM.Row(z)
		m := st.etaSlice[z]
		y := base * st.aggs[z].G[cc]
		for k, cp := range idx {
			y += m.At(cc, int(cp)) * val[k] * w[cp]
		}
		return logPsi(le.x0+w[cc]*y*invDenU, le.aug)
	default: // linkDiffCol: the candidate perturbs the column argument.
		z := int(le.z)
		w := st.thetaColM.Row(z)
		m := st.etaSlice[z]
		y := base * st.aggs[z].H[cc]
		for k, cr := range idx {
			y += m.Row(int(cr))[cc] * val[k] * w[cr]
		}
		return logPsi(le.x0+w[cc]*y*invDenU, le.aug)
	}
}
