package core

import (
	"math"
	"sort"
	"sync/atomic"

	"repro/internal/rng"
	"repro/internal/socialgraph"
	"repro/internal/sparse"
)

// table is a 2-D integer counter accessed through atomics so the parallel
// E-step can update shared counts Hogwild-style without data races (the
// staleness this admits is the same staleness the paper's multi-thread
// design accepts; see Sect. 4.3).
type table struct {
	rows, cols int
	data       []int64
}

func newTable(rows, cols int) *table {
	return &table{rows: rows, cols: cols, data: make([]int64, rows*cols)}
}

func (t *table) at(i, j int) int64 {
	return atomic.LoadInt64(&t.data[i*t.cols+j])
}

func (t *table) add(i, j int, d int64) {
	atomic.AddInt64(&t.data[i*t.cols+j], d)
}

// vec is a 1-D atomic counter.
type vec struct{ data []int64 }

func newVec(n int) *vec { return &vec{data: make([]int64, n)} }

func (v *vec) at(i int) int64     { return atomic.LoadInt64(&v.data[i]) }
func (v *vec) add(i int, d int64) { atomic.AddInt64(&v.data[i], d) }

// floats is a slice of float64 values with atomic access (bit-cast through
// uint64): each Pólya-Gamma variable has a single writer (its owning
// worker) but is read by the workers of both link endpoints.
type floats struct{ bits []uint64 }

func newFloats(n, fillBits uint64) *floats {
	f := &floats{bits: make([]uint64, n)}
	for i := range f.bits {
		f.bits[i] = fillBits
	}
	return f
}

func (f *floats) get(i int) float64 {
	return math.Float64frombits(atomic.LoadUint64(&f.bits[i]))
}

func (f *floats) set(i int, v float64) {
	atomic.StoreUint64(&f.bits[i], math.Float64bits(v))
}

// state is the full sampler state for one training run.
type state struct {
	cfg Config
	g   *socialgraph.Graph

	numDocs int

	// Assignments, accessed atomically (other workers read them when
	// materialising a neighbour's pi-hat or a linked document's topic).
	docC []int32 // community assignment c_ui per document
	docZ []int32 // topic assignment z_ui per document

	// Counters of Sect. 4.1. The user-community counts n_u^c are *derived*
	// from docC on demand (a user's support is exactly the multiset of her
	// documents' assignments), which keeps pi-hat construction lock-free.
	nCZ  *table // community-topic counts n_c^z
	nCT  *vec   // community totals n_c
	nZW  *table // topic-word counts n_z^w
	nZT  *vec   // topic totals n_z
	nTZ  *table // timebucket-topic counts (popularity factor n_tz)
	nTT  *vec   // timebucket totals
	nDoc []int  // |D_u| per user (fixed)

	// Attribute-profile extension (Config.ModelAttributes): one latent
	// community per user attribute token, contributing to π̂ like a
	// document, plus the community-attribute counters behind ξ.
	attrOn bool
	attrC  [][]int32 // per user, parallel to g.Attrs[u]
	nCA    *table    // community-attribute counts
	nCATot *vec      // per-community attribute totals
	nAttr  []int     // attribute tokens per user (fixed)

	// Pólya-Gamma augmentation variables, one per link; each is owned by a
	// single worker but read across workers, hence atomic floats.
	lambda *floats // per friendship link
	delta  *floats // per diffusion link

	// Model parameters updated in the M-step.
	eta *sparse.Tensor3 // |C| x |C| x |Z|
	nu  []float64       // socialgraph.FeatureDim

	// Per-document metadata.
	docBucket []int // time bucket of each document

	// Per-diffusion-link metadata (fixed during training).
	linkFeat   [][]float64 // f_uv per link
	linkOffset []float64   // nu^T f_uv, refreshed after each nu update

	// userFriendLinks[u] lists the friendship link ids with u as either
	// endpoint (the Λ_u products of Eqs. 13–14 run over links, so a pair
	// connected in both directions contributes two ψ factors, matching
	// p(F) = ∏_{(u,v) ∈ F}).
	userFriendLinks [][]int32
	// negFriends are sampled non-links conditioned on as zeros (see
	// Config.NegFriendPerPos), with their own PG variables and a per-user
	// incidence index.
	negFriends         []socialgraph.FriendLink
	lambdaNeg          *floats
	userNegFriendLinks [][]int32
	// diffPairSet holds observed (I, J) document pairs for negative
	// sampling rejection in the nu M-step.
	diffPairSet map[int64]struct{}

	// Per-sweep caches (Sect. 4.3's stale-cache trade-off): eta slices per
	// topic, bilinear aggregates per topic, the theta-hat snapshot columns
	// used as the bilinear weight vectors, and per-user pi-hat snapshots.
	// The snapshots serve all *neighbour* reads during a sweep — rebuilding
	// pi-hat_v per incident link would make the sweep quadratic in the
	// per-user document density; reading a sweep-start snapshot keeps it
	// linear, at the cost of the same within-sweep staleness the parallel
	// E-step already accepts. The sampled user's own pi-hat is always
	// exact.
	// etaFlat/etaSlice and thetaColM use the same flat row-major layout as
	// the model caches (model.go initCaches): one contiguous [z][c][c']
	// buffer with per-topic Dense views, and theta transposed as a |Z| x
	// |C| matrix, so the sampler and the serving paths share a layout.
	etaFlat   []float64
	etaDirty  bool                  // eta changed since etaFlat was last rebuilt
	etaSlice  []*sparse.Dense       // [z] -> |C| x |C| view into etaFlat
	aggs      []*sparse.BilinearAgg // [z]
	thetaColM *sparse.Dense         // row z = theta-hat column z
	piSnapIdx [][]int32             // per-user snapshot support
	piSnapVal [][]float64           // per-user snapshot residuals
	cFrozen   bool                  // phase-2 of NoJointModeling: freeze C
	contentOn bool                  // phase-1 of NoJointModeling disables content+diffusion

	// als holds the alias + MH proposal tables when Config.Sampler selects
	// the "alias" E-step (see sampler_alias.go); nil selects the exact
	// samplers, leaving their code path — and RNG consumption — untouched.
	als *aliasSampler

	root *rng.RNG
}

// newState initializes assignments uniformly at random and builds every
// counter.
func newState(g *socialgraph.Graph, cfg Config) *state {
	st := &state{
		cfg:       cfg,
		g:         g,
		numDocs:   len(g.Docs),
		docC:      make([]int32, len(g.Docs)),
		docZ:      make([]int32, len(g.Docs)),
		nCZ:       newTable(cfg.NumCommunities, cfg.NumTopics),
		nCT:       newVec(cfg.NumCommunities),
		nZW:       newTable(cfg.NumTopics, g.NumWords),
		nZT:       newVec(cfg.NumTopics),
		nDoc:      make([]int, g.NumUsers),
		eta:       sparse.NewTensor3(cfg.NumCommunities, cfg.NumCommunities, cfg.NumTopics),
		nu:        make([]float64, socialgraph.FeatureDim),
		contentOn: true,
		root:      rng.New(cfg.Seed),
	}
	buckets, nb := g.TimeBuckets(cfg.TimeBuckets)
	st.docBucket = buckets
	st.nTZ = newTable(nb, cfg.NumTopics)
	st.nTT = newVec(nb)

	for i, d := range g.Docs {
		st.nDoc[d.User]++
		c := int32(st.root.Intn(cfg.NumCommunities))
		z := int32(st.root.Intn(cfg.NumTopics))
		st.docC[i] = c
		st.docZ[i] = z
		st.nCZ.add(int(c), int(z), 1)
		st.nCT.add(int(c), 1)
		for _, w := range d.Words {
			st.nZW.add(int(z), int(w), 1)
			st.nZT.add(int(z), 1)
		}
		st.nTZ.add(st.docBucket[i], int(z), 1)
		st.nTT.add(st.docBucket[i], 1)
	}
	// Attribute extension: random initial assignments, counted like docs.
	st.nAttr = make([]int, g.NumUsers)
	if cfg.ModelAttributes && g.Attrs != nil {
		st.attrOn = true
		st.attrC = make([][]int32, g.NumUsers)
		st.nCA = newTable(cfg.NumCommunities, g.NumAttrs)
		st.nCATot = newVec(cfg.NumCommunities)
		for u := 0; u < g.NumUsers; u++ {
			as := g.Attrs[u]
			st.nAttr[u] = len(as)
			st.attrC[u] = make([]int32, len(as))
			for k, a := range as {
				c := int32(st.root.Intn(cfg.NumCommunities))
				st.attrC[u][k] = c
				st.nCA.add(int(c), int(a), 1)
				st.nCATot.add(int(c), 1)
			}
		}
	}
	// Pólya-Gamma variables start at the PG(1, 0) mean.
	pgInit := math.Float64bits(0.25)
	st.lambda = newFloats(uint64(len(g.Friends)), pgInit)
	st.delta = newFloats(uint64(len(g.Diffs)), pgInit)
	// Uniform eta start so the diffusion bilinear form is informative from
	// sweep one.
	st.eta.Fill(1 / float64(cfg.NumCommunities*cfg.NumCommunities*cfg.NumTopics))
	// Per-link features (fixed) and nu offsets (nu starts at zero).
	st.linkFeat = make([][]float64, len(g.Diffs))
	st.linkOffset = make([]float64, len(g.Diffs))
	st.diffPairSet = make(map[int64]struct{}, len(g.Diffs))
	for e, l := range g.Diffs {
		u := int(g.Docs[l.I].User)
		v := int(g.Docs[l.J].User)
		st.linkFeat[e] = g.PairFeatures(nil, u, v)
		st.diffPairSet[int64(l.I)*int64(len(g.Docs))+int64(l.J)] = struct{}{}
	}
	st.userFriendLinks = make([][]int32, g.NumUsers)
	for l, f := range g.Friends {
		st.userFriendLinks[f.U] = append(st.userFriendLinks[f.U], int32(l))
		if f.V != f.U {
			st.userFriendLinks[f.V] = append(st.userFriendLinks[f.V], int32(l))
		}
	}
	st.sampleNegFriends()
	st.refreshCaches()
	if cfg.aliasSampling() {
		st.als = newAliasSampler(st)
	}
	return st
}

// sampleNegFriends draws the fixed negative friendship pair sample and its
// incidence index (see Config.NegFriendPerPos).
func (st *state) sampleNegFriends() {
	g := st.g
	want := len(g.Friends) * st.cfg.NegFriendPerPos
	if want == 0 || g.NumUsers < 3 {
		st.lambdaNeg = newFloats(0, 0)
		st.userNegFriendLinks = make([][]int32, g.NumUsers)
		return
	}
	existing := make(map[int64]bool, len(g.Friends))
	for _, f := range g.Friends {
		existing[int64(f.U)*int64(g.NumUsers)+int64(f.V)] = true
	}
	st.negFriends = make([]socialgraph.FriendLink, 0, want)
	for tries := 0; len(st.negFriends) < want && tries < 20*want+100; tries++ {
		u := int32(st.root.Intn(g.NumUsers))
		v := int32(st.root.Intn(g.NumUsers))
		if u == v || existing[int64(u)*int64(g.NumUsers)+int64(v)] {
			continue
		}
		st.negFriends = append(st.negFriends, socialgraph.FriendLink{U: u, V: v})
	}
	st.lambdaNeg = newFloats(uint64(len(st.negFriends)), math.Float64bits(0.25))
	st.userNegFriendLinks = make([][]int32, g.NumUsers)
	for l, f := range st.negFriends {
		st.userNegFriendLinks[f.U] = append(st.userNegFriendLinks[f.U], int32(l))
		st.userNegFriendLinks[f.V] = append(st.userNegFriendLinks[f.V], int32(l))
	}
}

// cload / czload are the atomic assignment readers.
func (st *state) cload(doc int32) int32 { return atomic.LoadInt32(&st.docC[doc]) }
func (st *state) zload(doc int32) int32 { return atomic.LoadInt32(&st.docZ[doc]) }

func (st *state) cstore(doc int32, c int32) { atomic.StoreInt32(&st.docC[doc], c) }
func (st *state) zstore(doc int32, z int32) { atomic.StoreInt32(&st.docZ[doc], z) }

// refreshCaches rebuilds the per-topic eta slices, theta-hat snapshot
// columns and bilinear aggregates. Called once per sweep and after each
// M-step; costs O(|Z| |C|^2).
func (st *state) refreshCaches() {
	C, Z := st.cfg.NumCommunities, st.cfg.NumTopics
	if st.etaSlice == nil {
		st.etaFlat = make([]float64, Z*C*C)
		st.etaSlice = make([]*sparse.Dense, Z)
		for z := 0; z < Z; z++ {
			st.etaSlice[z] = sparse.NewDenseView(C, C, st.etaFlat[z*C*C:(z+1)*C*C])
		}
		st.aggs = make([]*sparse.BilinearAgg, Z)
		st.thetaColM = sparse.NewDense(Z, C)
		st.etaDirty = true
	}
	alpha := st.cfg.Alpha
	zAlpha := float64(Z) * alpha
	// The eta slices change only when the M-step re-estimates eta; between
	// consecutive E-step sweeps (RunEM bursts, pure-sweep benchmarks) the
	// O(|Z| |C|^2) strided re-copy is skipped. The theta columns and the
	// bilinear aggregates always rebuild — the counters move every sweep.
	for z := 0; z < Z; z++ {
		col := st.thetaColM.Row(z)
		for c := 0; c < C; c++ {
			col[c] = (float64(st.nCZ.at(c, z)) + alpha) / (float64(st.nCT.at(c)) + zAlpha)
		}
		slice := st.etaSlice[z]
		if st.etaDirty {
			st.eta.SliceKInto(z, slice)
			slice.Scale(st.cfg.EtaScale)
		}
		st.aggs[z] = sparse.NewBilinearAgg(slice, col)
	}
	st.etaDirty = false
	st.refreshPiSnapshots()
}

// refreshPiSnapshots rebuilds the per-user pi-hat snapshots (O(total
// tokens) per sweep).
func (st *state) refreshPiSnapshots() {
	if st.piSnapIdx == nil {
		st.piSnapIdx = make([][]int32, st.g.NumUsers)
		st.piSnapVal = make([][]float64, st.g.NumUsers)
	}
	cnt := make([]float64, st.cfg.NumCommunities)
	var touched []int32
	for u := 0; u < st.g.NumUsers; u++ {
		touched = touched[:0]
		bump := func(c int32) {
			if cnt[c] == 0 {
				touched = append(touched, c)
			}
			cnt[c]++
		}
		for _, d := range st.g.UserDocs(u) {
			bump(st.cload(d))
		}
		if st.attrOn {
			for k := range st.attrC[u] {
				bump(atomic.LoadInt32(&st.attrC[u][k]))
			}
		}
		sort.Slice(touched, func(i, j int) bool { return touched[i] < touched[j] })
		den := st.piHatDen(int32(u))
		idx := st.piSnapIdx[u][:0]
		val := st.piSnapVal[u][:0]
		for _, c := range touched {
			idx = append(idx, c)
			val = append(val, cnt[c]/den)
			cnt[c] = 0
		}
		st.piSnapIdx[u] = idx
		st.piSnapVal[u] = val
	}
}

// piSnap materialises the sweep-start snapshot of pi-hat_u into out (a
// view; do not mutate).
func (st *state) piSnap(u int32, out *sparse.SmoothedVec) {
	out.Dim = st.cfg.NumCommunities
	out.Base = st.cfg.Rho / st.piHatDen(u)
	out.Idx = st.piSnapIdx[u]
	out.Val = st.piSnapVal[u]
}

// refreshNuOffsets recomputes the cached nu^T f_uv per diffusion link.
func (st *state) refreshNuOffsets() {
	for e := range st.linkOffset {
		var s float64
		for k, f := range st.linkFeat[e] {
			s += st.nu[k] * f
		}
		st.linkOffset[e] = s
	}
}

// scratch is per-worker reusable storage; nothing here is shared.
type scratch struct {
	r *rng.RNG
	// ov selects the engine's snapshot/overlay counter access for the
	// parallel E-step; nil selects direct in-place access (serial reference
	// sweep, M-step, unit tests). See engine.go.
	ov *overlay
	// pi-hat materialisation buffers.
	cnt     []float64 // |C| dense accumulation buffer
	touched []int32   // indexes of cnt currently non-zero
	piU     sparse.SmoothedVec
	piV     sparse.SmoothedVec
	idxBufU []int32
	valBufU []float64
	idxBufV []int32
	valBufV []float64
	// sampling weights (log domain), size max(|C|, |Z|).
	logw []float64
	// per-candidate diffusion contributions.
	yBuf []float64 // |C|
	// per-doc word count pairs.
	wordIDs []int32
	wordCnt []int
	// predigested link kernels for the alias community sampler (see
	// sampler_alias.go).
	links []linkEval
}

func newScratch(cfg Config, r *rng.RNG) *scratch {
	n := cfg.NumCommunities
	if cfg.NumTopics > n {
		n = cfg.NumTopics
	}
	return &scratch{
		r:       r,
		cnt:     make([]float64, cfg.NumCommunities),
		logw:    make([]float64, n),
		yBuf:    make([]float64, cfg.NumCommunities),
		idxBufU: make([]int32, 0, 64),
		valBufU: make([]float64, 0, 64),
		idxBufV: make([]int32, 0, 64),
		valBufV: make([]float64, 0, 64),
	}
}

// piHat materialises pi-hat_u into out, excluding document excl (pass -1
// for no exclusion): base rho/(n_u + |C| rho) plus the sparse residual
// count_c/(n_u + |C| rho) derived from u's documents' — and, with the
// attribute extension, attribute tokens' — current (atomic) community
// assignments. idxBuf/valBuf back the SmoothedVec storage.
func (st *state) piHat(u int32, excl int32, out *sparse.SmoothedVec, idxBuf *[]int32, valBuf *[]float64, sc *scratch) {
	st.piHatExcl(u, excl, -1, out, idxBuf, valBuf, sc)
}

// piHatExcl is piHat with an additional attribute-token exclusion
// (exclAttr indexes u's attribute list; -1 for none). Only the attribute
// sampler passes exclAttr >= 0.
func (st *state) piHatExcl(u int32, exclDoc int32, exclAttr int, out *sparse.SmoothedVec, idxBuf *[]int32, valBuf *[]float64, sc *scratch) {
	C := st.cfg.NumCommunities
	den := st.piHatDen(u)
	out.Dim = C
	out.Base = st.cfg.Rho / den
	// Accumulate counts into the dense scratch, tracking touched entries.
	sc.touched = sc.touched[:0]
	bump := func(c int32) {
		if sc.cnt[c] == 0 {
			sc.touched = append(sc.touched, c)
		}
		sc.cnt[c]++
	}
	for _, d := range st.g.UserDocs(int(u)) {
		if d == exclDoc {
			continue
		}
		bump(st.cload(d))
	}
	if st.attrOn {
		for k := range st.attrC[u] {
			if k == exclAttr {
				continue
			}
			bump(atomic.LoadInt32(&st.attrC[u][k]))
		}
	}
	sort.Slice(sc.touched, func(i, j int) bool { return sc.touched[i] < sc.touched[j] })
	*idxBuf = (*idxBuf)[:0]
	*valBuf = (*valBuf)[:0]
	for _, c := range sc.touched {
		*idxBuf = append(*idxBuf, c)
		*valBuf = append(*valBuf, sc.cnt[c]/den)
		sc.cnt[c] = 0
	}
	out.Idx = *idxBuf
	out.Val = *valBuf
}

// piHatDen returns the pi-hat denominator for user u: every community-
// assigned token (documents, plus attribute tokens under the extension)
// counts toward the Dirichlet posterior.
func (st *state) piHatDen(u int32) float64 {
	return float64(st.nDoc[u]+st.nAttr[u]) + float64(st.cfg.NumCommunities)*st.cfg.Rho
}

// piHatAt returns a single coordinate pi-hat_{u,c} (O(|D_u| + |A_u|)).
func (st *state) piHatAt(u int32, c int32) float64 {
	den := st.piHatDen(u)
	var cnt float64
	for _, d := range st.g.UserDocs(int(u)) {
		if st.cload(d) == c {
			cnt++
		}
	}
	if st.attrOn {
		for k := range st.attrC[u] {
			if atomic.LoadInt32(&st.attrC[u][k]) == c {
				cnt++
			}
		}
	}
	return (cnt + st.cfg.Rho) / den
}

// popTerm returns the topic-popularity contribution PopScale * n_tz / n_t
// for bucket b and topic z, or 0 when disabled or the bucket is empty.
func (st *state) popTerm(sc *scratch, b int, z int) float64 {
	if st.cfg.NoTopicPopularity {
		return 0
	}
	tot := st.cntTT(sc, b)
	if tot <= 0 {
		return 0
	}
	return st.cfg.PopScale * float64(st.cntTZ(sc, b, z)) / float64(tot)
}

// indivTerm returns the cached individual-preference contribution for link
// e, or 0 when disabled.
func (st *state) indivTerm(e int) float64 {
	if st.cfg.NoIndividual {
		return 0
	}
	return st.linkOffset[e]
}
