package core

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/knapsack"
	"repro/internal/lda"
	"repro/internal/rng"
	"repro/internal/socialgraph"
)

// Engine is the persistent parallel E-step of Sect. 4.3, rebuilt as a
// long-lived worker pool. It is created once per training run and reused for
// every sweep, replacing the seed implementation's per-sweep goroutine
// spawning (and its per-sweep allocation of worker scratch) with Workers
// resident goroutines fed over channels.
//
// Worker count is a purely *logical* parameter: the unit of work is the
// data segment (users grouped by dominant LDA topic, as in the paper), each
// segment owns a private RNG stream, and every cross-segment read during a
// sweep goes through a sweep-start snapshot while writes are buffered in
// per-worker overlays merged at the sweep barrier. Segment composition,
// per-segment sampling order and per-segment randomness are therefore all
// independent of how segments are packed onto workers, which makes training
// bit-identical for ANY Workers value — 1, NumCPU, or more goroutines than
// physical cores. That is what lets the Fig. 10(b) speedup experiment sweep
// {2, 4, 6, 8} workers even on a single-core machine.
//
// Segments are packed onto workers by the paper's repeated 0-1 knapsack
// (Eq. 17) against an operation-count estimate; after each sweep the engine
// compares measured per-worker wall times and re-packs with measured
// per-segment costs only when the imbalance drifts past a threshold,
// instead of re-planning every sweep.
type Engine struct {
	st      *state
	cfg     Config
	workers int

	segs    []*segment
	userSeg []int32 // dominant-topic segment per user

	// assign[w] lists the segment ids worker w runs this sweep; workerEst
	// is the per-worker load prediction at the current packing, and
	// lastWorkerEst the prediction that was live during the last recorded
	// sweep (so Diagnostics pairs estimates with the matching measured
	// times even when that sweep triggered a re-pack).
	assign        [][]int
	workerEst     []float64
	lastWorkerEst []float64

	jobs    []chan []int
	results chan workerResult

	snap     sweepSnapshot
	overlays []*overlay
	detSC    *scratch // direct-mode scratch for sequential detection sweeps

	// dirty, when non-nil, restricts sweeps to the marked users (see
	// SetDirty): the streaming delta trainer's "sweep only affected rows"
	// mode. nil means every user sweeps.
	dirty []bool

	// Measured timings. segSecs has one writer per segment per sweep (the
	// owning worker); workerSecs is filled at the barrier.
	segSecs        []float64
	workerSecs     []float64
	lastWorkerSecs []float64
	sweepSecs      []float64
	sinceRepack    int
	repacks        int
	closed         bool
}

// segment is one unit of E-step work: the users of one LDA data segment
// plus the friendship, negative-friendship and diffusion links they own
// (source-user ownership, so every Pólya-Gamma variable has one writer).
type segment struct {
	users   []int32
	friends []int32
	negs    []int32
	diffs   []int32
	r       *rng.RNG
	est     float64 // operation-count workload estimate
	meas    float64 // EWMA of measured seconds (0 until first sweep)
}

type workerResult struct {
	w    int
	secs float64
}

const (
	// repackImbalance is the measured max/mean worker-load ratio above
	// which the engine re-runs the knapsack packing.
	repackImbalance = 1.25
	// repackCooldown is the minimum number of sweeps between re-packs.
	repackCooldown = 2
	// measEWMA weighs the latest per-segment measurement against history.
	measEWMA = 0.5
)

// NewEngine validates the graph and configuration, builds the sampler
// state, segments the data, and starts the worker pool. Callers must Close
// the engine when done. Train wraps this; the scalability experiments use
// it directly so Fig. 10/11 time exactly the code path production training
// runs.
func NewEngine(g *socialgraph.Graph, cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid graph: %w", err)
	}
	if len(g.Docs) == 0 {
		return nil, fmt.Errorf("core: graph has no documents")
	}
	g.BuildIndexes()
	return newEngine(newState(g, cfg)), nil
}

func newEngine(st *state) *Engine {
	e := &Engine{st: st, cfg: st.cfg, workers: st.cfg.Workers}
	e.buildSegments()
	e.snap.init(st)
	loads := make([]float64, len(e.segs))
	for i, s := range e.segs {
		loads[i] = s.est
	}
	e.pack(loads)
	e.segSecs = make([]float64, len(e.segs))
	e.workerSecs = make([]float64, e.workers)
	e.detSC = newScratch(st.cfg, nil)
	e.jobs = make([]chan []int, e.workers)
	e.results = make(chan workerResult, e.workers)
	e.overlays = make([]*overlay, e.workers)
	for w := 0; w < e.workers; w++ {
		e.jobs[w] = make(chan []int)
		e.overlays[w] = newOverlay(st, &e.snap)
		go e.workerLoop(w, e.overlays[w])
	}
	return e
}

// buildSegments runs the segmentation LDA (Sect. 4.3: same-topic documents
// land in the same segment, reducing conflicting counter updates), builds
// the per-segment user and link lists, the operation-count workload
// estimates, and one RNG stream per segment. Everything here depends only
// on the graph and the seed — never on the worker count — which is the root
// of the engine's determinism guarantee.
func (e *Engine) buildSegments() {
	st, cfg := e.st, e.cfg
	numSeg := cfg.NumTopics

	docWords := make([][]int32, len(st.g.Docs))
	for i := range st.g.Docs {
		docWords[i] = st.g.Docs[i].Words
	}
	ldaModel := lda.Train(docWords, st.g.NumWords, lda.Config{
		NumTopics: numSeg,
		Iters:     cfg.SegmentLDAIters,
		Seed:      cfg.Seed ^ 0xD1F,
	})
	e.userSeg = make([]int32, st.g.NumUsers)
	votes := make([]int, numSeg)
	for u := 0; u < st.g.NumUsers; u++ {
		for i := range votes {
			votes[i] = 0
		}
		for _, d := range st.g.UserDocs(u) {
			votes[ldaModel.DominantTopic(int(d))]++
		}
		best := 0
		for t, n := range votes {
			if n > votes[best] {
				best = t
			}
		}
		e.userSeg[u] = int32(best)
	}

	// Workload estimate per user: an operation-count proxy for the per-doc
	// sampling cost (|Z| topic candidates + |C| community candidates + word
	// terms) and the per-link Pólya-Gamma cost, playing the role of the
	// paper's measured per-document/per-link averages.
	const pgCost = 24
	diffCount := make([]int, st.g.NumUsers)
	for _, l := range st.g.Diffs {
		diffCount[st.g.Docs[l.I].User]++
	}
	e.segs = make([]*segment, numSeg)
	for s := range e.segs {
		e.segs[s] = &segment{}
	}
	for u := 0; u < st.g.NumUsers; u++ {
		var words int
		for _, d := range st.g.UserDocs(u) {
			words += len(st.g.Docs[d].Words)
		}
		nd := float64(len(st.g.UserDocs(u)))
		load := nd*float64(cfg.NumTopics+cfg.NumCommunities) +
			float64(words)*float64(cfg.NumTopics)/4 +
			float64(len(st.userFriendLinks[u]))*(pgCost+nd) +
			float64(diffCount[u])*float64(cfg.NumCommunities+pgCost)
		seg := e.segs[e.userSeg[u]]
		seg.users = append(seg.users, int32(u))
		seg.est += load
	}
	for l, f := range st.g.Friends {
		seg := e.segs[e.userSeg[f.U]]
		seg.friends = append(seg.friends, int32(l))
	}
	for l, f := range st.negFriends {
		seg := e.segs[e.userSeg[f.U]]
		seg.negs = append(seg.negs, int32(l))
	}
	for l, d := range st.g.Diffs {
		seg := e.segs[e.userSeg[st.g.Docs[d.I].User]]
		seg.diffs = append(seg.diffs, int32(l))
	}
	// One RNG stream per segment, split from the root in fixed order so the
	// streams are identical for every Workers value.
	for s := range e.segs {
		e.segs[s].r = st.root.Split(uint64(s) + 101)
	}
}

// pack assigns segments to workers by repeated 0-1 knapsack solves against
// the ideal per-worker load (Eq. 17). Packing affects only which goroutine
// runs a segment — never the sweep's result.
func (e *Engine) pack(loads []float64) {
	e.assign = knapsack.Pack(loads, e.workers)
	e.workerEst = make([]float64, e.workers)
	for w, segIDs := range e.assign {
		for _, s := range segIDs {
			e.workerEst[w] += loads[s]
		}
	}
}

// Sweep runs one full parallel E-step: refresh the sweep-start caches and
// snapshots, dispatch the segment assignment to the pool, wait for the
// barrier, and fold the measured timings into the balancing state.
func (e *Engine) Sweep() { e.sweep(true) }

func (e *Engine) sweep(record bool) {
	if e.closed {
		panic("core: Sweep on closed Engine")
	}
	st := e.st
	if !st.contentOn {
		e.sweepDetect(record)
		return
	}
	st.refreshCaches()
	e.snap.capture(st)
	if st.als != nil {
		st.als.refresh(st, e.snap.zw)
	}

	t0 := time.Now()
	for w := range e.jobs {
		e.jobs[w] <- e.assign[w]
	}
	for range e.jobs {
		r := <-e.results
		e.workerSecs[r.w] = r.secs
	}
	dt := time.Since(t0).Seconds()

	if record {
		e.sweepSecs = append(e.sweepSecs, dt)
		e.lastWorkerSecs = append(e.lastWorkerSecs[:0], e.workerSecs...)
		e.lastWorkerEst = append(e.lastWorkerEst[:0], e.workerEst...)
	}
	for s, sec := range e.segSecs {
		seg := e.segs[s]
		if seg.meas == 0 {
			seg.meas = sec
		} else {
			seg.meas = measEWMA*sec + (1-measEWMA)*seg.meas
		}
	}
	e.maybeRepack()
}

// sweepDetect runs a detection-only sweep (warm start / the no-joint
// ablation's phase 1) sequentially in direct access mode: segments in
// fixed id order, each with its own RNG stream, with live neighbour reads.
// Detection-only block Gibbs is label propagation over the friendship
// graph — synchronous snapshot reads stall it (measurably: snapshot-read
// detection leaves the no-joint ablation near-random) — and a fixed
// sequential order keeps the fresh reads deterministic for every Workers
// value. This deliberately trades detection-phase parallelism for
// determinism and mixing: these sweeps sample one block move per user and
// no documents or diffusion variables, so they are an order of magnitude
// cheaper than joint sweeps, and the joint E-step — the phase Figs. 10–11
// measure — keeps the full pool.
func (e *Engine) sweepDetect(record bool) {
	st := e.st
	st.refreshPiSnapshots()
	t0 := time.Now()
	for _, seg := range e.segs {
		e.detSC.r = seg.r
		e.runSegment(seg, e.detSC)
	}
	dt := time.Since(t0).Seconds()
	if record {
		e.sweepSecs = append(e.sweepSecs, dt)
		e.lastWorkerSecs = append(e.lastWorkerSecs[:0], e.workerSecs...)
		for i := range e.lastWorkerSecs {
			e.lastWorkerSecs[i] = 0
		}
		if len(e.lastWorkerSecs) > 0 {
			e.lastWorkerSecs[0] = dt
		}
		e.lastWorkerEst = append(e.lastWorkerEst[:0], e.workerEst...)
	}
}

// maybeRepack re-runs the knapsack packing with measured per-segment costs,
// but only when the measured per-worker imbalance has drifted past
// repackImbalance — the steady state does no re-planning work at all.
func (e *Engine) maybeRepack() {
	e.sinceRepack++
	if e.workers < 2 || len(e.segs) <= e.workers || e.sinceRepack < repackCooldown {
		return
	}
	var sum, max float64
	for _, s := range e.workerSecs {
		sum += s
		if s > max {
			max = s
		}
	}
	mean := sum / float64(e.workers)
	if mean <= 0 || max/mean <= repackImbalance {
		return
	}
	loads := make([]float64, len(e.segs))
	for i, s := range e.segs {
		loads[i] = s.meas
	}
	e.pack(loads)
	e.repacks++
	e.sinceRepack = 0
}

// workerLoop is one resident pool worker: it owns a scratch and a write
// overlay for its whole lifetime, runs whatever segments each sweep assigns
// it, and reports its wall time at the barrier.
func (e *Engine) workerLoop(w int, ov *overlay) {
	sc := newScratch(e.cfg, nil)
	sc.ov = ov
	for segIDs := range e.jobs[w] {
		t0 := time.Now()
		for _, s := range segIDs {
			ts := time.Now()
			sc.r = e.segs[s].r
			e.runSegment(e.segs[s], sc)
			ov.flush()
			e.segSecs[s] = time.Since(ts).Seconds()
		}
		e.results <- workerResult{w: w, secs: time.Since(t0).Seconds()}
	}
}

// runSegment executes Alg. 1's E-step over one segment: per-document topic
// and community moves (or detection-only block moves when content is off),
// attribute moves under the attribute extension, then the segment's own
// Pólya-Gamma link variables.
func (e *Engine) runSegment(seg *segment, sc *scratch) {
	st, dirty := e.st, e.dirty
	for _, u := range seg.users {
		if dirty != nil && !dirty[u] {
			continue
		}
		if !st.contentOn {
			st.sampleUserCommunityBlock(u, sc)
			continue
		}
		for _, d := range st.g.UserDocs(int(u)) {
			if st.als != nil {
				st.sampleDocTopicAlias(d, sc)
				if !st.cFrozen {
					st.sampleDocCommunityAlias(d, sc)
				}
				continue
			}
			st.sampleDocTopic(d, sc)
			if !st.cFrozen {
				st.sampleDocCommunity(d, sc)
			}
		}
		if st.attrOn {
			for k := range st.g.Attrs[u] {
				st.sampleUserAttr(u, k, sc)
			}
		}
	}
	// Link augmentation variables are refreshed when either endpoint's
	// membership may have moved; a link between two clean users keeps its
	// value (its posterior is unchanged to within the sweep's staleness).
	if !st.cfg.NoFriendship {
		for _, li := range seg.friends {
			if dirty != nil {
				f := st.g.Friends[li]
				if !dirty[f.U] && !dirty[f.V] {
					continue
				}
			}
			st.sampleLambda(int(li), sc)
		}
		for _, li := range seg.negs {
			if dirty != nil {
				f := st.negFriends[li]
				if !dirty[f.U] && !dirty[f.V] {
					continue
				}
			}
			st.sampleLambdaNeg(int(li), sc)
		}
	}
	if st.contentOn {
		for _, de := range seg.diffs {
			if dirty != nil {
				l := st.g.Diffs[de]
				if !dirty[st.g.Docs[l.I].User] && !dirty[st.g.Docs[l.J].User] {
					continue
				}
			}
			st.sampleDelta(int(de), sc)
		}
	}
}

// Diagnostics reports the engine's accumulated timing and balancing
// information in the shape the Fig. 10/11 experiments consume.
func (e *Engine) Diagnostics() *Diagnostics {
	est := e.lastWorkerEst
	if len(est) == 0 { // no recorded sweep yet
		est = e.workerEst
	}
	d := &Diagnostics{
		SweepSeconds:    append([]float64(nil), e.sweepSecs...),
		WorkerEstimated: append([]float64(nil), est...),
		WorkerActual:    append([]float64(nil), e.lastWorkerSecs...),
		Segments:        len(e.segs),
		Repacks:         e.repacks,
	}
	for _, s := range e.sweepSecs {
		d.EStepSeconds += s
	}
	return d
}

// Workers returns the pool size (a logical goroutine count, not a physical
// core count).
func (e *Engine) Workers() int { return e.workers }

// Close shuts the worker pool down. The engine must not be swept again.
func (e *Engine) Close() {
	if e.closed {
		return
	}
	e.closed = true
	for _, ch := range e.jobs {
		close(ch)
	}
}

// --- sweep snapshots and write overlays ---------------------------------

// sweepSnapshot is the sweep-start copy of every piece of state a sampler
// may read across segment boundaries. Reads through it are what make a
// sweep's outcome independent of segment-to-worker packing and scheduling:
// a segment sees its own writes (through its overlay) and the previous
// sweep's view of everything else — the same staleness trade-off the
// paper's multi-thread design accepts, made deterministic.
type sweepSnapshot struct {
	cz, ct, zw, zt, tz, tt []int64
	ca, caTot              []int64
	lam, lamNeg, del       []float64
	z                      []int32
}

func (s *sweepSnapshot) init(st *state) {
	s.cz = make([]int64, len(st.nCZ.data))
	s.ct = make([]int64, len(st.nCT.data))
	s.zw = make([]int64, len(st.nZW.data))
	s.zt = make([]int64, len(st.nZT.data))
	s.tz = make([]int64, len(st.nTZ.data))
	s.tt = make([]int64, len(st.nTT.data))
	if st.attrOn {
		s.ca = make([]int64, len(st.nCA.data))
		s.caTot = make([]int64, len(st.nCATot.data))
	}
	s.lam = make([]float64, len(st.lambda.bits))
	s.lamNeg = make([]float64, len(st.lambdaNeg.bits))
	s.del = make([]float64, len(st.delta.bits))
	s.z = make([]int32, len(st.docZ))
}

// capture copies the live state into the snapshot buffers. Called between
// sweeps, when no worker is running.
func (s *sweepSnapshot) capture(st *state) {
	copy(s.cz, st.nCZ.data)
	copy(s.ct, st.nCT.data)
	copy(s.zw, st.nZW.data)
	copy(s.zt, st.nZT.data)
	copy(s.tz, st.nTZ.data)
	copy(s.tt, st.nTT.data)
	if st.attrOn {
		copy(s.ca, st.nCA.data)
		copy(s.caTot, st.nCATot.data)
	}
	for i := range s.lam {
		s.lam[i] = st.lambda.get(i)
	}
	for i := range s.lamNeg {
		s.lamNeg[i] = st.lambdaNeg.get(i)
	}
	for i := range s.del {
		s.del[i] = st.delta.get(i)
	}
	copy(s.z, st.docZ)
}

// ovBuf buffers one counter array's segment-local updates: reads see the
// sweep-start snapshot plus this segment's own deltas, and flush folds the
// deltas into the live array at segment end (atomic adds commute, so the
// merged result is identical for every packing and schedule).
type ovBuf struct {
	snap    []int64 // shared sweep-start copy (read-only during a sweep)
	live    []int64 // shared live storage (flush target)
	delta   []int64 // this worker's buffered updates
	touched []int32
}

func makeOvBuf(snap, live []int64) ovBuf {
	return ovBuf{snap: snap, live: live, delta: make([]int64, len(live))}
}

func (b *ovBuf) get(i int) int64 { return b.snap[i] + b.delta[i] }

func (b *ovBuf) add(i int, d int64) {
	if b.delta[i] == 0 {
		b.touched = append(b.touched, int32(i))
	}
	b.delta[i] += d
}

func (b *ovBuf) flush() {
	for _, i := range b.touched {
		if d := b.delta[i]; d != 0 {
			atomic.AddInt64(&b.live[i], d)
			b.delta[i] = 0
		}
	}
	b.touched = b.touched[:0]
}

// overlay is one worker's full write buffer plus the read-side snapshot
// context the samplers consult through the scratch (scratch.ov). A nil
// scratch.ov selects the direct, in-place access mode used by the serial
// reference sweep, the sequential detection sweeps, and the M-step.
type overlay struct {
	snap *sweepSnapshot

	cz, ct, zw, zt, tz, tt ovBuf
	ca, caTot              ovBuf
}

func newOverlay(st *state, snap *sweepSnapshot) *overlay {
	ov := &overlay{snap: snap}
	ov.cz = makeOvBuf(snap.cz, st.nCZ.data)
	ov.ct = makeOvBuf(snap.ct, st.nCT.data)
	ov.zw = makeOvBuf(snap.zw, st.nZW.data)
	ov.zt = makeOvBuf(snap.zt, st.nZT.data)
	ov.tz = makeOvBuf(snap.tz, st.nTZ.data)
	ov.tt = makeOvBuf(snap.tt, st.nTT.data)
	if st.attrOn {
		ov.ca = makeOvBuf(snap.ca, st.nCA.data)
		ov.caTot = makeOvBuf(snap.caTot, st.nCATot.data)
	}
	return ov
}

// flush merges every buffered delta into the live counters (segment end).
func (ov *overlay) flush() {
	ov.cz.flush()
	ov.ct.flush()
	ov.zw.flush()
	ov.zt.flush()
	ov.tz.flush()
	ov.tt.flush()
	if ov.ca.live != nil {
		ov.ca.flush()
		ov.caTot.flush()
	}
}

// --- sampler-facing counter accessors ------------------------------------
//
// Every counter read or write inside the E-step samplers goes through one
// of these helpers: in direct mode (sc.ov == nil) they hit the live atomic
// tables exactly as the serial reference sweep always has; in engine mode
// they read snapshot-plus-own-delta and write the overlay.

func (st *state) cntCZ(sc *scratch, c, z int) int64 {
	if sc.ov == nil {
		return st.nCZ.at(c, z)
	}
	return sc.ov.cz.get(c*st.nCZ.cols + z)
}

func (st *state) addCZ(sc *scratch, c, z int, d int64) {
	if sc.ov == nil {
		st.nCZ.add(c, z, d)
		return
	}
	sc.ov.cz.add(c*st.nCZ.cols+z, d)
}

func (st *state) cntCT(sc *scratch, c int) int64 {
	if sc.ov == nil {
		return st.nCT.at(c)
	}
	return sc.ov.ct.get(c)
}

func (st *state) addCT(sc *scratch, c int, d int64) {
	if sc.ov == nil {
		st.nCT.add(c, d)
		return
	}
	sc.ov.ct.add(c, d)
}

func (st *state) cntZW(sc *scratch, z, w int) int64 {
	if sc.ov == nil {
		return st.nZW.at(z, w)
	}
	return sc.ov.zw.get(z*st.nZW.cols + w)
}

func (st *state) addZW(sc *scratch, z, w int, d int64) {
	if sc.ov == nil {
		st.nZW.add(z, w, d)
		return
	}
	sc.ov.zw.add(z*st.nZW.cols+w, d)
}

func (st *state) cntZT(sc *scratch, z int) int64 {
	if sc.ov == nil {
		return st.nZT.at(z)
	}
	return sc.ov.zt.get(z)
}

func (st *state) addZT(sc *scratch, z int, d int64) {
	if sc.ov == nil {
		st.nZT.add(z, d)
		return
	}
	sc.ov.zt.add(z, d)
}

func (st *state) cntTZ(sc *scratch, b, z int) int64 {
	if sc.ov == nil {
		return st.nTZ.at(b, z)
	}
	return sc.ov.tz.get(b*st.nTZ.cols + z)
}

func (st *state) addTZ(sc *scratch, b, z int, d int64) {
	if sc.ov == nil {
		st.nTZ.add(b, z, d)
		return
	}
	sc.ov.tz.add(b*st.nTZ.cols+z, d)
}

func (st *state) cntTT(sc *scratch, b int) int64 {
	if sc.ov == nil {
		return st.nTT.at(b)
	}
	return sc.ov.tt.get(b)
}

func (st *state) addTT(sc *scratch, b int, d int64) {
	if sc.ov == nil {
		st.nTT.add(b, d)
		return
	}
	sc.ov.tt.add(b, d)
}

func (st *state) cntCA(sc *scratch, c, a int) int64 {
	if sc.ov == nil {
		return st.nCA.at(c, a)
	}
	return sc.ov.ca.get(c*st.nCA.cols + a)
}

func (st *state) addCA(sc *scratch, c, a int, d int64) {
	if sc.ov == nil {
		st.nCA.add(c, a, d)
		return
	}
	sc.ov.ca.add(c*st.nCA.cols+a, d)
}

func (st *state) cntCATot(sc *scratch, c int) int64 {
	if sc.ov == nil {
		return st.nCATot.at(c)
	}
	return sc.ov.caTot.get(c)
}

func (st *state) addCATot(sc *scratch, c int, d int64) {
	if sc.ov == nil {
		st.nCATot.add(c, d)
		return
	}
	sc.ov.caTot.add(c, d)
}

// lamAt / lamNegAt / delAt read a Pólya-Gamma variable during the document
// phase: the sweep-start snapshot in engine mode (link variables owned by
// other segments may be mid-resample), the live value in direct mode.
func (st *state) lamAt(sc *scratch, li int) float64 {
	if sc.ov == nil {
		return st.lambda.get(li)
	}
	return sc.ov.snap.lam[li]
}

func (st *state) lamNegAt(sc *scratch, li int) float64 {
	if sc.ov == nil {
		return st.lambdaNeg.get(li)
	}
	return sc.ov.snap.lamNeg[li]
}

func (st *state) delAt(sc *scratch, e int) float64 {
	if sc.ov == nil {
		return st.delta.get(e)
	}
	return sc.ov.snap.del[e]
}

// zAt reads a document's topic assignment during community sampling: live
// for the document being sampled (cur — its topic was just resampled), the
// sweep-start snapshot for any other document in engine mode.
func (st *state) zAt(sc *scratch, d, cur int32) int32 {
	if sc.ov == nil || d == cur {
		return st.zload(d)
	}
	return sc.ov.snap.z[d]
}
