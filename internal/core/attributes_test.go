package core

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/sparse"
	"repro/internal/synth"
)

func TestAttributeExtensionTrains(t *testing.T) {
	cfg := synth.TwitterLike(250, 61)
	cfg.AttrVocab = 60
	cfg.AttrsPerUserMean = 4
	g, gt := synth.Generate(cfg)
	// Matching the planted community count keeps learned communities from
	// merging attribute blocks, which is what the coherence check relies
	// on.
	m, _, err := Train(g, Config{
		NumCommunities: 20, NumTopics: 25, EMIters: 15, Workers: 1,
		Seed: 6, Rho: 0.05, ModelAttributes: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Xi == nil || m.NumAttrs != 60 {
		t.Fatal("attribute profiles missing")
	}
	// Rows are distributions.
	for c := 0; c < 20; c++ {
		var s float64
		for _, v := range m.Xi.Row(c) {
			if v <= 0 {
				t.Fatalf("xi[%d] has non-positive entry", c)
			}
			s += v
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("xi[%d] sums to %v", c, s)
		}
	}
	// Attribute coherence: planted attributes are block-anchored per
	// ground-truth community, so a learned community's top attributes
	// should cluster in one planted block far more often than chance.
	// Small (Zipf-tail) communities carry too few attribute tokens to
	// judge, so check the ten largest learned communities.
	sizes := make([]float64, 20)
	for u := 0; u < m.NumUsers; u++ {
		sizes[m.TopCommunity(u)]++
	}
	big := make(map[int]bool)
	for _, c := range topIdx(sizes, 10) {
		big[c] = true
	}
	block := cfg.AttrVocab / cfg.Communities
	coherent, judged := 0, 0
	for c := 0; c < 20; c++ {
		if !big[c] {
			continue
		}
		judged++
		tops := m.TopAttributes(c, 4)
		blocks := map[int]int{}
		for _, a := range tops {
			blocks[a/block]++
		}
		best := 0
		for _, n := range blocks {
			if n > best {
				best = n
			}
		}
		if best >= 3 {
			coherent++
		}
	}
	// Chance level for 3-of-4 same block is ~1.5%; majority coherence is a
	// strong recovery signal.
	if coherent*2 < judged+1 {
		t.Fatalf("only %d/%d large communities have coherent attribute profiles", coherent, judged)
	}
	_ = gt

	// Save/Load keeps Xi.
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Xi == nil || m2.Xi.At(0, 0) != m.Xi.At(0, 0) {
		t.Fatal("Xi lost in round trip")
	}
}

func TestAttributeCountersConsistent(t *testing.T) {
	cfg := synth.TwitterLike(80, 62)
	cfg.AttrVocab = 40
	cfg.AttrsPerUserMean = 2
	g, _ := synth.Generate(cfg)
	tc := testConfig()
	tc.ModelAttributes = true
	conf := tc.withDefaults()
	st := newState(g, conf)
	if !st.attrOn {
		t.Fatal("attribute state not enabled")
	}
	sc := newScratch(conf, rng.New(3))
	for i := 0; i < 3; i++ {
		st.refreshCaches()
		st.sweepSerial(sc)
	}
	// Recount nCA from assignments.
	recount := make(map[[2]int]int64)
	var total int64
	for u := 0; u < g.NumUsers; u++ {
		for k, a := range g.Attrs[u] {
			recount[[2]int{int(st.attrC[u][k]), int(a)}]++
			total++
		}
	}
	for c := 0; c < conf.NumCommunities; c++ {
		var rowSum int64
		for a := 0; a < g.NumAttrs; a++ {
			want := recount[[2]int{c, a}]
			if got := st.nCA.at(c, a); got != want {
				t.Fatalf("nCA[%d][%d] = %d, recount %d", c, a, got, want)
			}
			rowSum += want
		}
		if got := st.nCATot.at(c); got != rowSum {
			t.Fatalf("nCATot[%d] = %d, recount %d", c, got, rowSum)
		}
	}
	if total == 0 {
		t.Fatal("no attribute tokens in test graph")
	}
	// Doc counters stay consistent too with attributes enabled.
	checkCounters(t, st)
}

func TestAttributesInformPiHat(t *testing.T) {
	cfg := synth.TwitterLike(60, 63)
	cfg.AttrVocab = 40
	cfg.AttrsPerUserMean = 3
	g, _ := synth.Generate(cfg)
	tc := testConfig()
	tc.ModelAttributes = true
	conf := tc.withDefaults()
	st := newState(g, conf)
	// Denominator counts docs + attrs.
	u := int32(0)
	wantDen := float64(st.nDoc[0]+st.nAttr[0]) + float64(conf.NumCommunities)*conf.Rho
	if got := st.piHatDen(u); got != wantDen {
		t.Fatalf("piHatDen = %v, want %v", got, wantDen)
	}
	// piHat total mass is 1.
	sc := newScratch(conf, rng.New(4))
	var sv sparse.SmoothedVec
	var idx []int32
	var val []float64
	st.piHat(u, -1, &sv, &idx, &val, sc)
	sum := sv.Base*float64(conf.NumCommunities) + sv.ResidualSum()
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("attributed piHat sums to %v", sum)
	}
}

func TestAttributesRejectedWithNoJoint(t *testing.T) {
	cfg := synth.TwitterLike(60, 64)
	cfg.AttrVocab = 20
	g, _ := synth.Generate(cfg)
	_, _, err := Train(g, Config{
		NumCommunities: 5, NumTopics: 5, EMIters: 2,
		ModelAttributes: true, NoJointModeling: true,
	})
	if err == nil {
		t.Fatal("ModelAttributes + NoJointModeling accepted")
	}
}

func TestAttributesIgnoredWithoutFlag(t *testing.T) {
	cfg := synth.TwitterLike(60, 65)
	cfg.AttrVocab = 20
	g, _ := synth.Generate(cfg)
	m, _, err := Train(g, Config{
		NumCommunities: 5, NumTopics: 5, EMIters: 3, Workers: 1, Seed: 1, Rho: 0.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Xi != nil {
		t.Fatal("Xi built without ModelAttributes")
	}
}

func TestAttributeParallelMatchesSerial(t *testing.T) {
	cfg := synth.TwitterLike(120, 66)
	cfg.AttrVocab = 40
	cfg.AttrsPerUserMean = 3
	g, _ := synth.Generate(cfg)
	base := Config{
		NumCommunities: 8, NumTopics: 10, EMIters: 6, Seed: 2, Rho: 0.125,
		ModelAttributes: true,
	}
	base.Workers = 1
	mS, _, err := Train(g, base)
	if err != nil {
		t.Fatal(err)
	}
	base.Workers = 2
	mP, _, err := Train(g, base)
	if err != nil {
		t.Fatal(err)
	}
	if mS.Xi == nil || mP.Xi == nil {
		t.Fatal("Xi missing")
	}
}

// topIdx returns the indices of the k largest values.
func topIdx(xs []float64, k int) []int {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < k && i < len(idx); i++ {
		best := i
		for j := i + 1; j < len(idx); j++ {
			if xs[idx[j]] > xs[idx[best]] {
				best = j
			}
		}
		idx[i], idx[best] = idx[best], idx[i]
	}
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}
