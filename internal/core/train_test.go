package core

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/eval"
	"repro/internal/socialgraph"
	"repro/internal/synth"
)

// trainSmall trains a small model for model-level tests.
func trainSmall(t *testing.T, mod func(*Config)) (*socialgraph.Graph, *Model) {
	t.Helper()
	g := testGraph(150, 11)
	cfg := Config{
		NumCommunities: 10, NumTopics: 12, EMIters: 10, Workers: 1,
		Seed: 5, Rho: 0.1,
	}
	if mod != nil {
		mod(&cfg)
	}
	m, _, err := Train(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g, m
}

func modelAUCs(g *socialgraph.Graph, m *Model) (fAUC, dAUC float64) {
	var pos, neg []float64
	for k, f := range g.Friends {
		if k%3 == 0 {
			pos = append(pos, m.FriendshipProb(int(f.U), int(f.V)))
		}
	}
	for _, p := range eval.SampleNegativePairs(g, len(pos), 99) {
		neg = append(neg, m.FriendshipProb(p[0], p[1]))
	}
	fAUC = eval.AUC(pos, neg)
	pos, neg = nil, nil
	for k, e := range g.Diffs {
		if k%3 == 0 {
			pos = append(pos, m.DiffusionProb(g, int(g.Docs[e.I].User), int(e.J), m.DocBucket[e.I]))
		}
	}
	for _, p := range eval.SampleNegativeDocPairs(g, len(pos), 77) {
		neg = append(neg, m.DiffusionProb(g, int(g.Docs[p[0]].User), p[1], m.DocBucket[p[0]]))
	}
	dAUC = eval.AUC(pos, neg)
	return
}

func TestTrainLearnsPlantedStructure(t *testing.T) {
	g, m := trainSmall(t, nil)
	fAUC, dAUC := modelAUCs(g, m)
	if fAUC < 0.6 {
		t.Errorf("friendship AUC = %v, want >= 0.6", fAUC)
	}
	if dAUC < 0.7 {
		t.Errorf("diffusion AUC = %v, want >= 0.7", dAUC)
	}
}

func TestModelDistributionsNormalized(t *testing.T) {
	_, m := trainSmall(t, nil)
	for u := 0; u < m.NumUsers; u += 17 {
		var s float64
		for _, v := range m.Pi.Row(u) {
			if v <= 0 {
				t.Fatalf("pi[%d] has non-positive entry", u)
			}
			s += v
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("pi[%d] sums to %v", u, s)
		}
	}
	for c := 0; c < m.Cfg.NumCommunities; c++ {
		var s float64
		for _, v := range m.Theta.Row(c) {
			s += v
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("theta[%d] sums to %v", c, s)
		}
	}
	for z := 0; z < m.Cfg.NumTopics; z++ {
		var s float64
		for _, v := range m.Phi.Row(z) {
			s += v
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("phi[%d] sums to %v", z, s)
		}
	}
	// WordProb is a distribution over words for any user.
	var s float64
	for w := 0; w < m.NumWords; w++ {
		s += m.WordProb(0, w)
	}
	if math.Abs(s-1) > 1e-6 {
		t.Fatalf("WordProb sums to %v", s)
	}
}

func TestDeterministicTraining(t *testing.T) {
	g := testGraph(80, 13)
	cfg := Config{NumCommunities: 6, NumTopics: 8, EMIters: 5, Workers: 1, Seed: 42, Rho: 0.2}
	m1, _, err := Train(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Fresh copy of the same graph (indexes rebuilt) and same seed.
	g2 := testGraph(80, 13)
	m2, _, err := Train(g2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range m1.DocCommunity {
		if m1.DocCommunity[i] != m2.DocCommunity[i] || m1.DocTopic[i] != m2.DocTopic[i] {
			t.Fatalf("serial training not deterministic at doc %d", i)
		}
	}
	for i := range m1.Nu {
		if m1.Nu[i] != m2.Nu[i] {
			t.Fatalf("nu differs: %v vs %v", m1.Nu, m2.Nu)
		}
	}
}

func TestParallelMatchesSerialQuality(t *testing.T) {
	g := testGraph(150, 14)
	cfg := Config{NumCommunities: 8, NumTopics: 10, EMIters: 8, Seed: 6, Rho: 0.125}
	cfg.Workers = 1
	mS, _, err := Train(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 2
	mP, diag, err := Train(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if diag.Segments == 0 {
		t.Fatal("parallel run reported no segments")
	}
	if len(diag.WorkerActual) != 2 || len(diag.WorkerEstimated) != 2 {
		t.Fatalf("worker diagnostics missing: %+v", diag)
	}
	fS, dS := modelAUCs(g, mS)
	fP, dP := modelAUCs(g, mP)
	if math.Abs(fS-fP) > 0.12 || math.Abs(dS-dP) > 0.12 {
		t.Fatalf("parallel quality diverges: serial (%.3f, %.3f) vs parallel (%.3f, %.3f)", fS, dS, fP, dP)
	}
}

func TestHeterogeneityAblationHurtsDiffusion(t *testing.T) {
	g, full := trainSmall(t, nil)
	_, noHet := trainSmall(t, func(c *Config) { c.NoHeterogeneity = true })
	_, dFull := modelAUCs(g, full)
	_, dNoHet := modelAUCs(g, noHet)
	if dNoHet >= dFull {
		t.Fatalf("no-heterogeneity dAUC %v >= full %v (planted data has heterogeneous diffusion)", dNoHet, dFull)
	}
}

func TestNoJointModelingRuns(t *testing.T) {
	g, m := trainSmall(t, func(c *Config) { c.NoJointModeling = true; c.EMIters = 6 })
	// Phase 2 freezes communities per user: all of a user's docs share one.
	for u := 0; u < g.NumUsers; u++ {
		docs := g.UserDocs(u)
		for _, d := range docs[1:] {
			if m.DocCommunity[d] != m.DocCommunity[docs[0]] {
				t.Fatalf("no-joint user %d docs in different communities", u)
			}
		}
	}
	fAUC, dAUC := modelAUCs(g, m)
	if fAUC < 0.55 || dAUC < 0.6 {
		t.Fatalf("no-joint model too weak: fAUC=%v dAUC=%v", fAUC, dAUC)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	g, m := trainSmall(t, nil)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Predictions must be identical after the round trip.
	for u := 0; u < 20; u++ {
		if got, want := m2.FriendshipProb(u, u+1), m.FriendshipProb(u, u+1); math.Abs(got-want) > 1e-9 {
			t.Fatalf("FriendshipProb differs after load: %v vs %v", got, want)
		}
	}
	for j := 0; j < 10; j++ {
		got := m2.DiffusionProb(g, 0, j+1, 0)
		want := m.DiffusionProb(g, 0, j+1, 0)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("DiffusionProb differs after load: %v vs %v", got, want)
		}
	}
	s1 := m.RankCommunities([]int32{0, 1})
	s2 := m2.RankCommunities([]int32{0, 1})
	for c := range s1 {
		if math.Abs(s1[c]-s2[c]) > 1e-9 {
			t.Fatalf("RankCommunities differs after load")
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewBufferString("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Load(bytes.NewBufferString("{}")); err == nil {
		t.Fatal("empty model accepted")
	}
}

func TestPredictionRanges(t *testing.T) {
	g, m := trainSmall(t, nil)
	for i := 0; i < 20; i++ {
		p := m.DiffusionProb(g, i, i+1, 0)
		if p < 0 || p > 1 || math.IsNaN(p) {
			t.Fatalf("DiffusionProb = %v", p)
		}
		q := m.FriendshipProb(i, i+1)
		if q < 0 || q > 1 || math.IsNaN(q) {
			t.Fatalf("FriendshipProb = %v", q)
		}
	}
	// DocTopicDist is a distribution.
	pz := m.DocTopicDist(g.Docs[0].Words, int(g.Docs[0].User))
	var s float64
	for _, p := range pz {
		if p < 0 {
			t.Fatalf("negative topic prob")
		}
		s += p
	}
	if math.Abs(s-1) > 1e-9 {
		t.Fatalf("DocTopicDist sums to %v", s)
	}
}

func TestTopCommunitiesAndMembers(t *testing.T) {
	_, m := trainSmall(t, nil)
	top := m.TopCommunities(0, 3)
	if len(top) != 3 {
		t.Fatalf("TopCommunities returned %d", len(top))
	}
	row := m.Pi.Row(0)
	if row[top[0]] < row[top[1]] || row[top[1]] < row[top[2]] {
		t.Fatalf("TopCommunities not descending: %v", top)
	}
	members := m.CommunityMembers(5)
	if len(members) != m.Cfg.NumCommunities {
		t.Fatalf("CommunityMembers length %d", len(members))
	}
	var total int
	for _, ms := range members {
		total += len(ms)
	}
	if total != m.NumUsers*5 {
		t.Fatalf("top-5 membership total %d, want %d", total, m.NumUsers*5)
	}
}

func TestUserTopicMixture(t *testing.T) {
	_, m := trainSmall(t, nil)
	mix := m.UserTopicMixture(1)
	var s float64
	for _, v := range mix {
		s += v
	}
	if math.Abs(s-1) > 1e-9 {
		t.Fatalf("UserTopicMixture sums to %v", s)
	}
}

func TestCOLDStyleNoFriendship(t *testing.T) {
	g, m := trainSmall(t, func(c *Config) { c.NoFriendship = true; c.NoIndividual = true; c.NoTopicPopularity = true })
	_, dAUC := modelAUCs(g, m)
	if dAUC < 0.6 {
		t.Fatalf("COLD-style model dAUC = %v", dAUC)
	}
}

func TestTrainOnDBLPPreset(t *testing.T) {
	g, _ := synth.Generate(synth.DBLPLike(200, 21))
	m, _, err := Train(g, Config{NumCommunities: 10, NumTopics: 12, EMIters: 10, Workers: 1, Seed: 2, Rho: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	fAUC, dAUC := modelAUCs(g, m)
	if fAUC < 0.6 || dAUC < 0.65 {
		t.Fatalf("DBLP-like quality too low: fAUC=%v dAUC=%v", fAUC, dAUC)
	}
}
