package core

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// bruteForcePiHat computes pi-hat_u densely from the raw assignments, with
// document excl excluded and, when cand >= 0, a hypothetical assignment of
// excl to community cand added back.
func bruteForcePiHat(st *state, u int32, excl int32, cand int) []float64 {
	C := st.cfg.NumCommunities
	den := st.piHatDen(u)
	out := make([]float64, C)
	for c := range out {
		out[c] = st.cfg.Rho / den
	}
	for _, d := range st.g.UserDocs(int(u)) {
		if d == excl {
			continue
		}
		out[st.docC[d]] += 1 / den
	}
	if cand >= 0 {
		out[cand] += 1 / den
	}
	return out
}

// bruteFriendshipArg computes fs * pi-hat_u^T pi-hat_v densely.
func bruteFriendshipArg(st *state, u, v int32, excl int32, excludeFor int32, cand int) float64 {
	var pu, pv []float64
	if u == excludeFor {
		pu = bruteForcePiHat(st, u, excl, cand)
	} else {
		pu = bruteForcePiHat(st, u, -1, -1)
	}
	if v == excludeFor {
		pv = bruteForcePiHat(st, v, excl, cand)
	} else {
		pv = bruteForcePiHat(st, v, -1, -1)
	}
	var s float64
	for c := range pu {
		s += pu[c] * pv[c]
	}
	return st.cfg.FriendScale * s
}

// bruteDiffusionArg computes the Eq. 5 community term densely for link e
// with the diffusing user's pi-hat possibly perturbed.
func bruteDiffusionArg(st *state, e int, excl int32, excludeFor int32, cand int) float64 {
	l := st.g.Diffs[e]
	uI := st.g.Docs[l.I].User
	uJ := st.g.Docs[l.J].User
	var pi, pj []float64
	if uI == excludeFor {
		pi = bruteForcePiHat(st, uI, excl, cand)
	} else {
		pi = bruteForcePiHat(st, uI, -1, -1)
	}
	if uJ == excludeFor {
		pj = bruteForcePiHat(st, uJ, excl, cand)
	} else {
		pj = bruteForcePiHat(st, uJ, -1, -1)
	}
	z := int(st.docZ[l.I])
	w := st.thetaColM.Row(z)
	m := st.etaSlice[z]
	var s float64
	for a := range pi {
		for b := range pj {
			s += pi[a] * w[a] * m.At(a, b) * w[b] * pj[b]
		}
	}
	return s
}

// TestFriendshipKernelIncrementalMatchesBrute verifies the central
// candidate-shift identity of sampleDocCommunity's friendship kernels:
// the O(nnz) incremental evaluation x(c) = fs*(base + pi-hat_v[c]/den_u)
// must equal a dense recomputation with the candidate assignment applied,
// for every candidate community.
func TestFriendshipKernelIncrementalMatchesBrute(t *testing.T) {
	g := testGraph(60, 41)
	cfg := testConfig().withDefaults()
	st := newState(g, cfg)
	sc := newScratch(cfg, rng.New(8))
	// Mix the state a little first.
	st.refreshCaches()
	st.sweepSerial(sc)
	st.refreshCaches()

	C := cfg.NumCommunities
	checked := 0
	for d := int32(0); d < int32(len(g.Docs)) && checked < 12; d += 37 {
		u := g.Docs[d].User
		if len(st.userFriendLinks[u]) == 0 {
			continue
		}
		checked++
		st.piHat(u, d, &sc.piU, &sc.idxBufU, &sc.valBufU, sc)
		invDenU := 1 / st.piHatDen(u)
		li := st.userFriendLinks[u][0]
		f := g.Friends[li]
		other := f.U
		if other == u {
			other = f.V
		}
		st.piHat(other, pickExcl(other == u, d), &sc.piV, &sc.idxBufV, &sc.valBufV, sc)
		base := sc.piU.Dot(&sc.piV)
		fs := cfg.FriendScale
		for cand := 0; cand < C; cand += 3 {
			// Incremental: x(c) = fs*(base + pi-hat_v[c]/denU).
			pvC := sc.piV.Base
			for k, cc := range sc.piV.Idx {
				if int(cc) == cand {
					pvC += sc.piV.Val[k]
				}
			}
			got := fs * (base + pvC*invDenU)
			want := bruteFriendshipArg(st, u, other, d, u, cand)
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("doc %d cand %d: incremental %v != brute %v", d, cand, got, want)
			}
		}
	}
	if checked == 0 {
		t.Fatal("no documents with friendship links checked")
	}
}

// TestDiffusionKernelIncrementalMatchesBrute verifies the diffusion-side
// candidate shift: x(c) = sBase + w[c] * y[c] / den_u must equal the dense
// bilinear form with the candidate assignment applied, in both the
// diffusing-side and source-side branches.
func TestDiffusionKernelIncrementalMatchesBrute(t *testing.T) {
	g := testGraph(60, 42)
	cfg := testConfig().withDefaults()
	st := newState(g, cfg)
	sc := newScratch(cfg, rng.New(9))
	st.refreshCaches()
	st.sweepSerial(sc)
	st.refreshCaches()

	C := cfg.NumCommunities
	checked := 0
	for e := 0; e < len(g.Diffs) && checked < 10; e += 11 {
		l := g.Diffs[e]
		for _, side := range []int32{l.I, l.J} {
			d := side
			u := g.Docs[d].User
			z := int(st.docZ[l.I])
			w := st.thetaColM.Row(z)
			m := st.etaSlice[z]
			agg := st.aggs[z]
			st.piHat(u, d, &sc.piU, &sc.idxBufU, &sc.valBufU, sc)
			invDenU := 1 / st.piHatDen(u)

			var sBase float64
			y := make([]float64, C)
			if d == l.I {
				vUser := g.Docs[l.J].User
				st.piHat(vUser, pickExcl(vUser == u, d), &sc.piV, &sc.idxBufV, &sc.valBufV, sc)
				sBase = agg.Eval(m, w, &sc.piU, &sc.piV)
				for cc := 0; cc < C; cc++ {
					y[cc] = sc.piV.Base * agg.G[cc]
				}
				for k, cp := range sc.piV.Idx {
					coef := sc.piV.Val[k] * w[cp]
					for cc := 0; cc < C; cc++ {
						y[cc] += m.At(cc, int(cp)) * coef
					}
				}
			} else {
				iUser := g.Docs[l.I].User
				st.piHat(iUser, pickExcl(iUser == u, d), &sc.piV, &sc.idxBufV, &sc.valBufV, sc)
				sBase = agg.Eval(m, w, &sc.piV, &sc.piU)
				for cc := 0; cc < C; cc++ {
					y[cc] = sc.piV.Base * agg.H[cc]
				}
				for k, cr := range sc.piV.Idx {
					coef := sc.piV.Val[k] * w[cr]
					row := m.Row(int(cr))
					for cc := 0; cc < C; cc++ {
						y[cc] += row[cc] * coef
					}
				}
			}
			for cand := 0; cand < C; cand += 4 {
				got := sBase + w[cand]*y[cand]*invDenU
				want := bruteDiffusionArg(st, e, d, u, cand)
				if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
					t.Fatalf("link %d side %d cand %d: incremental %v != brute %v", e, d, cand, got, want)
				}
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no diffusion links checked")
	}
}

// TestDiffusionArgMatchesBrute cross-checks the full Eq. 5 argument used
// for delta sampling against the dense computation.
func TestDiffusionArgMatchesBrute(t *testing.T) {
	g := testGraph(60, 43)
	cfg := testConfig().withDefaults()
	st := newState(g, cfg)
	sc := newScratch(cfg, rng.New(10))
	st.refreshCaches()
	st.sweepSerial(sc)
	st.refreshCaches()
	st.refreshNuOffsets()
	for e := 0; e < len(g.Diffs); e += 13 {
		got := st.diffusionArg(e, sc)
		l := g.Diffs[e]
		z := int(st.docZ[l.I])
		want := bruteDiffusionArg(st, e, -1, -1, -1) +
			st.popTerm(sc, st.docBucket[l.I], z) + st.indivTerm(e)
		if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
			t.Fatalf("link %d: diffusionArg %v != brute %v", e, got, want)
		}
	}
}

// TestPopTermProperties pins the popularity factor's behaviour.
func TestPopTermProperties(t *testing.T) {
	g := testGraph(60, 44)
	cfg := testConfig().withDefaults()
	st := newState(g, cfg)
	sc := newScratch(cfg, rng.New(7))
	// Sum over topics of n_tz/n_t is 1, so popTerm sums to PopScale.
	var s float64
	for z := 0; z < cfg.NumTopics; z++ {
		s += st.popTerm(sc, 0, z)
	}
	if math.Abs(s-cfg.PopScale) > 1e-9 {
		t.Fatalf("popTerm sums to %v, want %v", s, cfg.PopScale)
	}
	// Ablated: always zero.
	st.cfg.NoTopicPopularity = true
	if st.popTerm(sc, 0, 0) != 0 {
		t.Fatal("popTerm nonzero under ablation")
	}
}

// TestLogPsiIdentities pins the Pólya-Gamma kernel algebra: the positive
// and negative kernels must reconstruct the Bernoulli likelihood ratio
// sigma(x)/sigma(-x) = e^x after integrating out omega — at the kernel
// level, logPsi(x,w) - logPsiNeg(x,w) = x for every omega.
func TestLogPsiIdentities(t *testing.T) {
	r := rng.New(11)
	for i := 0; i < 100; i++ {
		x := r.Norm() * 3
		w := r.Gamma(1)
		if diff := logPsi(x, w) - logPsiNeg(x, w); math.Abs(diff-x) > 1e-12 {
			t.Fatalf("kernel ratio = %v, want %v", diff, x)
		}
	}
}
