package core

import (
	"math"
	"sync/atomic"

	"repro/internal/polyagamma"
	"repro/internal/socialgraph"
	"repro/internal/sparse"
)

// logPsi returns log ψ(x, ω) = x/2 − ω x²/2, the log of the Pólya-Gamma
// mixture kernel of Eq. 7 that replaces each sigmoid likelihood factor in
// the collapsed posterior (Eqs. 10–11).
func logPsi(x, omega float64) float64 {
	return 0.5*x - 0.5*omega*x*x
}

// logPsiNeg is the kernel of a zero-labelled link: the PG identity for
// 1−σ(x) swaps the sign of the linear term (κ = y − 1/2 = −1/2).
func logPsiNeg(x, omega float64) float64 {
	return -0.5*x - 0.5*omega*x*x
}

// groupWords fills sc.wordIDs / sc.wordCnt with the document's distinct
// words and their within-document counts (documents are short, so a linear
// scan with a small inner loop beats sorting).
func (sc *scratch) groupWords(words []int32) {
	sc.wordIDs = sc.wordIDs[:0]
	sc.wordCnt = sc.wordCnt[:0]
outer:
	for _, w := range words {
		for k, seen := range sc.wordIDs {
			if seen == w {
				sc.wordCnt[k]++
				continue outer
			}
		}
		sc.wordIDs = append(sc.wordIDs, w)
		sc.wordCnt = append(sc.wordCnt, 1)
	}
}

// sampleDocTopic resamples z_ui per Eq. 13: the community-topic prior term,
// the word likelihood term and — through the Pólya-Gamma kernels — the
// diffusion links for which this document is the diffusing side. Friendship
// factors do not depend on Z and cancel.
func (st *state) sampleDocTopic(d int32, sc *scratch) {
	doc := &st.g.Docs[d]
	zOld := int(st.zload(d))
	c := int(st.cload(d))
	b := st.docBucket[d]

	// Remove the document from all z-dependent counters (the ¬{ui}
	// convention).
	st.addCZ(sc, c, zOld, -1)
	st.addCT(sc, c, -1)
	for _, w := range doc.Words {
		st.addZW(sc, zOld, int(w), -1)
	}
	st.addZT(sc, zOld, -int64(len(doc.Words)))
	st.addTZ(sc, b, zOld, -1)
	st.addTT(sc, b, -1)

	Z := st.cfg.NumTopics
	beta := st.cfg.Beta
	wBeta := float64(st.g.NumWords) * beta
	alpha := st.cfg.Alpha
	sc.groupWords(doc.Words)
	logw := sc.logw[:Z]
	for z := 0; z < Z; z++ {
		lw := math.Log(float64(st.cntCZ(sc, c, z)) + alpha)
		for k, w := range sc.wordIDs {
			base := float64(st.cntZW(sc, z, int(w))) + beta
			for m := 0; m < sc.wordCnt[k]; m++ {
				lw += math.Log(base + float64(m))
			}
		}
		den := float64(st.cntZT(sc, z)) + wBeta
		for j := 0; j < len(doc.Words); j++ {
			lw -= math.Log(den + float64(j))
		}
		logw[z] = lw
	}

	// Diffusion kernels: only links where d is the diffusing document
	// depend on the candidate topic (the link topic is the diffusing
	// document's topic). Skipped entirely under the heterogeneity ablation
	// (diffusion is then topic-free) and in the no-joint detection phase.
	if !st.cfg.NoHeterogeneity {
		builtPiU := false
		for _, e := range st.g.DocDiffLinks(int(d)) {
			l := st.g.Diffs[e]
			if l.I != d {
				continue
			}
			if !builtPiU {
				st.piHat(doc.User, d, &sc.piU, &sc.idxBufU, &sc.valBufU, sc)
				builtPiU = true
			}
			vUser := st.g.Docs[l.J].User
			st.neighborPi(vUser, doc.User, d, &sc.piV, &sc.idxBufV, &sc.valBufV, sc)
			indiv := st.indivTerm(int(e))
			delta := st.delAt(sc, int(e))
			lb := st.docBucket[l.I]
			for z := 0; z < Z; z++ {
				x := st.aggs[z].Eval(st.etaSlice[z], st.thetaColM.Row(z), &sc.piU, &sc.piV) +
					st.popTerm(sc, lb, z) + indiv
				logw[z] += logPsi(x, delta)
			}
		}
	}

	zNew := sc.r.CategoricalLog(logw)
	st.zstore(d, int32(zNew))
	st.addCZ(sc, c, zNew, 1)
	st.addCT(sc, c, 1)
	for _, w := range doc.Words {
		st.addZW(sc, zNew, int(w), 1)
	}
	st.addZT(sc, zNew, int64(len(doc.Words)))
	st.addTZ(sc, b, zNew, 1)
	st.addTT(sc, b, 1)
}

// pickExcl returns d when cond (same user on both link endpoints) so the
// exclusion applies to every pi-hat built for the sampled document's user.
func pickExcl(cond bool, d int32) int32 {
	if cond {
		return d
	}
	return -1
}

// neighborPi materialises pi-hat for a link counterparty: the exact
// (exclusion-aware) vector when the counterparty is the sampled user
// herself, the sweep-start snapshot otherwise (see refreshPiSnapshots).
func (st *state) neighborPi(user, cur int32, exclDoc int32, out *sparse.SmoothedVec, idxBuf *[]int32, valBuf *[]float64, sc *scratch) {
	if user == cur {
		st.piHat(user, exclDoc, out, idxBuf, valBuf, sc)
		return
	}
	st.piSnap(user, out)
}

// sampleDocCommunity resamples c_ui per Eq. 14: the user-community prior,
// the community-topic term, the friendship kernels over Λ_u and the
// diffusion kernels over Λ_i.
func (st *state) sampleDocCommunity(d int32, sc *scratch) {
	doc := &st.g.Docs[d]
	u := doc.User
	cOld := int(st.cload(d))
	z := int(st.zload(d))

	st.addCZ(sc, cOld, z, -1)
	st.addCT(sc, cOld, -1)

	C := st.cfg.NumCommunities
	rho := st.cfg.Rho
	alpha := st.cfg.Alpha
	zAlpha := float64(st.cfg.NumTopics) * alpha
	logw := sc.logw[:C]

	// Prior term log(n_u^c,¬ + rho): base log(rho) everywhere, corrected on
	// the support of the user's remaining assignments.
	st.piHat(u, d, &sc.piU, &sc.idxBufU, &sc.valBufU, sc)
	denU := st.piHatDen(u)
	invDenU := 1 / denU
	logRho := math.Log(rho)
	for cc := 0; cc < C; cc++ {
		logw[cc] = logRho
	}
	for k, cc := range sc.piU.Idx {
		logw[cc] = math.Log(rho + sc.piU.Val[k]*denU)
	}

	// Community-topic term (skipped in the no-joint detection phase, where
	// content does not inform detection).
	if st.contentOn {
		for cc := 0; cc < C; cc++ {
			logw[cc] += math.Log(float64(st.cntCZ(sc, cc, z))+alpha) -
				math.Log(float64(st.cntCT(sc, cc))+zAlpha)
		}
	}

	// Friendship kernels: for each incident friendship link, the candidate
	// community shifts pi-hat_u by e_c/den_u, so
	// x(c) = x0 + pi-hat_v[c]/den_u differs from the support-free value
	// x0 = base + base_v/den_u only on support(v); the x0 kernel is an
	// all-candidates constant, applied once, with per-support corrections.
	if !st.cfg.NoFriendship {
		for _, li := range st.userFriendLinks[u] {
			f := st.g.Friends[li]
			st.addFriendKernel(u, d, f, st.lamAt(sc, int(li)), true, invDenU, sc, logw)
		}
		for _, li := range st.userNegFriendLinks[u] {
			f := st.negFriends[li]
			st.addFriendKernel(u, d, f, st.lamNegAt(sc, int(li)), false, invDenU, sc, logw)
		}
	}

	// Diffusion kernels over Λ_i.
	if st.contentOn {
		for _, e := range st.g.DocDiffLinks(int(d)) {
			st.addDiffusionCommunityTerms(d, int(e), invDenU, sc, logw)
		}
	}

	cNew := sc.r.CategoricalLog(logw)
	st.cstore(d, int32(cNew))
	st.addCZ(sc, cNew, z, 1)
	st.addCT(sc, cNew, 1)
}

// addFriendKernel adds one friendship link's Pólya-Gamma kernel to the
// per-candidate community log-weights for document d of user u: the
// candidate community shifts pi-hat_u by e_c/den_u, so
// x(c) = fs*(base + (baseV + residV[c])/denU) differs from the
// support-free value x0 only on support(v); the x0 kernel is applied to
// all candidates once, then corrected on the support. positive selects the
// observed-link kernel (logPsi) vs the sampled-negative kernel (logPsiNeg).
func (st *state) addFriendKernel(u, d int32, f socialgraph.FriendLink, lam float64, positive bool, invDenU float64, sc *scratch, logw []float64) {
	other := f.U
	if other == u {
		other = f.V
	}
	st.piSnap(other, &sc.piV)
	base := sc.piU.Dot(&sc.piV)
	fs := st.cfg.FriendScale
	x0 := fs * (base + sc.piV.Base*invDenU)
	kernel := logPsi
	if !positive {
		kernel = logPsiNeg
	}
	const0 := kernel(x0, lam)
	for cc := range logw {
		logw[cc] += const0
	}
	for k, cc := range sc.piV.Idx {
		x := x0 + fs*sc.piV.Val[k]*invDenU
		logw[cc] += kernel(x, lam) - const0
	}
}

// addDiffusionCommunityTerms adds the Pólya-Gamma diffusion kernel of link
// e to the per-candidate community log-weights for document d (which is one
// of the link's endpoints).
func (st *state) addDiffusionCommunityTerms(d int32, e int, invDenU float64, sc *scratch, logw []float64) {
	l := st.g.Diffs[e]
	delta := st.delAt(sc, e)
	uI := st.g.Docs[l.I].User
	uJ := st.g.Docs[l.J].User
	C := st.cfg.NumCommunities

	if st.cfg.NoHeterogeneity {
		// Diffusion modeled exactly like friendship: community-similarity
		// sigmoid between the two documents' users.
		var selfIsI bool
		if l.I == d {
			selfIsI = true
		}
		other := uJ
		if !selfIsI {
			other = uI
		}
		st.neighborPi(other, st.g.Docs[d].User, d, &sc.piV, &sc.idxBufV, &sc.valBufV, sc)
		base := sc.piU.Dot(&sc.piV)
		fs := st.cfg.FriendScale
		x0 := fs * (base + sc.piV.Base*invDenU)
		const0 := logPsi(x0, delta)
		for cc := range logw {
			logw[cc] += const0
		}
		for k, cc := range sc.piV.Idx {
			x := x0 + fs*sc.piV.Val[k]*invDenU
			logw[cc] += logPsi(x, delta) - const0
		}
		return
	}

	z := int(st.zAt(sc, l.I, d)) // link topic = diffusing document's topic
	w := st.thetaColM.Row(z)
	m := st.etaSlice[z]
	agg := st.aggs[z]
	pop := st.popTerm(sc, st.docBucket[l.I], z)
	indiv := st.indivTerm(e)

	if l.I == d {
		// d is the diffusing side: candidate community perturbs the row
		// argument. y[c] = sum_c' M[c,c'] pi-hat_v[c'] w[c'].
		st.neighborPi(uJ, st.g.Docs[d].User, d, &sc.piV, &sc.idxBufV, &sc.valBufV, sc)
		sBase := agg.Eval(m, w, &sc.piU, &sc.piV) + pop + indiv
		y := sc.yBuf[:C]
		for cc := 0; cc < C; cc++ {
			y[cc] = sc.piV.Base * agg.G[cc]
		}
		for k, cp := range sc.piV.Idx {
			coef := sc.piV.Val[k] * w[cp]
			if coef == 0 {
				continue
			}
			for cc := 0; cc < C; cc++ {
				y[cc] += m.At(cc, int(cp)) * coef
			}
		}
		for cc := 0; cc < C; cc++ {
			x := sBase + w[cc]*y[cc]*invDenU
			logw[cc] += logPsi(x, delta)
		}
		return
	}

	// d is the source side: candidate community perturbs the column
	// argument. yT[c'] = sum_c pi-hat_I[c] w[c] M[c,c'].
	st.neighborPi(uI, st.g.Docs[d].User, d, &sc.piV, &sc.idxBufV, &sc.valBufV, sc)
	sBase := agg.Eval(m, w, &sc.piV, &sc.piU) + pop + indiv
	y := sc.yBuf[:C]
	for cc := 0; cc < C; cc++ {
		y[cc] = sc.piV.Base * agg.H[cc]
	}
	for k, cr := range sc.piV.Idx {
		coef := sc.piV.Val[k] * w[cr]
		if coef == 0 {
			continue
		}
		row := m.Row(int(cr))
		for cc := 0; cc < C; cc++ {
			y[cc] += row[cc] * coef
		}
	}
	for cc := 0; cc < C; cc++ {
		x := sBase + w[cc]*y[cc]*invDenU
		logw[cc] += logPsi(x, delta)
	}
}

// sampleUserAttr resamples the community assignment of user u's k-th
// attribute token (the attribute-profile extension): the membership prior,
// the collapsed community-attribute likelihood (n_c^a,¬ + mu) /
// (n_c + |A| mu), and the friendship kernels — an attribute token shifts
// pi-hat_u exactly like a document, so the same candidate-shift identities
// apply. Diffusion kernels are tied to documents and are not incident to
// attribute tokens.
func (st *state) sampleUserAttr(u int32, k int, sc *scratch) {
	a := int(st.g.Attrs[u][k])
	cOld := int(atomic.LoadInt32(&st.attrC[u][k]))
	st.addCA(sc, cOld, a, -1)
	st.addCATot(sc, cOld, -1)

	C := st.cfg.NumCommunities
	rho := st.cfg.Rho
	mu := st.cfg.Mu
	aMu := float64(st.g.NumAttrs) * mu
	logw := sc.logw[:C]

	st.piHatExcl(u, -1, k, &sc.piU, &sc.idxBufU, &sc.valBufU, sc)
	denU := st.piHatDen(u)
	invDenU := 1 / denU
	logRho := math.Log(rho)
	for cc := 0; cc < C; cc++ {
		logw[cc] = logRho
	}
	for kk, cc := range sc.piU.Idx {
		logw[cc] = math.Log(rho + sc.piU.Val[kk]*denU)
	}
	for cc := 0; cc < C; cc++ {
		logw[cc] += math.Log(float64(st.cntCA(sc, cc, a))+mu) -
			math.Log(float64(st.cntCATot(sc, cc))+aMu)
	}
	if !st.cfg.NoFriendship {
		for _, li := range st.userFriendLinks[u] {
			f := st.g.Friends[li]
			st.addFriendKernel(u, -1, f, st.lamAt(sc, int(li)), true, invDenU, sc, logw)
		}
		for _, li := range st.userNegFriendLinks[u] {
			f := st.negFriends[li]
			st.addFriendKernel(u, -1, f, st.lamNegAt(sc, int(li)), false, invDenU, sc, logw)
		}
	}

	cNew := int32(sc.r.CategoricalLog(logw))
	atomic.StoreInt32(&st.attrC[u][k], cNew)
	st.addCA(sc, int(cNew), a, 1)
	st.addCATot(sc, int(cNew), 1)
}

// sampleUserCommunityBlock block-samples one community for ALL of user u's
// documents at once, using only the friendship kernels and the membership
// prior. This is the detection-only phase of the "no joint modeling"
// ablation: with content off, a user's documents are exchangeable, and
// per-document moves mix too slowly to align users across the graph —
// block moves are the standard remedy (and Eq. 3's detection is user-level
// anyway).
func (st *state) sampleUserCommunityBlock(u int32, sc *scratch) {
	docs := st.g.UserDocs(int(u))
	if len(docs) == 0 {
		return
	}
	// Remove all of u's docs from the community-topic counters (and, with
	// the attribute extension, the attribute tokens from theirs — the
	// block move carries every token of the user).
	for _, d := range docs {
		c := int(st.cload(d))
		z := int(st.zload(d))
		st.addCZ(sc, c, z, -1)
		st.addCT(sc, c, -1)
	}
	if st.attrOn {
		for k, a := range st.g.Attrs[u] {
			c := int(atomic.LoadInt32(&st.attrC[u][k]))
			st.addCA(sc, c, int(a), -1)
			st.addCATot(sc, c, -1)
		}
	}
	C := st.cfg.NumCommunities
	nd := float64(len(docs) + st.nAttr[u])
	denU := st.piHatDen(u)
	fs := st.cfg.FriendScale
	logw := sc.logw[:C]
	for cc := range logw {
		logw[cc] = 0
	}
	// With every doc on candidate c: pi-hat_u = rho/den + nd/den * e_c, so
	// x(c) = fs * (rho/den + nd/den * pi-hat_v[c]).
	baseU := st.cfg.Rho / denU
	massU := nd / denU
	addLinks := func(links []int32, friends []socialgraph.FriendLink, lamAt func(int) float64, positive bool) {
		kernel := logPsi
		if !positive {
			kernel = logPsiNeg
		}
		for _, li := range links {
			f := friends[li]
			other := f.U
			if other == u {
				other = f.V
			}
			// Exact (fresh) neighbour reads: the detection-only phase has
			// no content signal, and snapshot reads stall its label-
			// propagation-style mixing — which is why the engine runs
			// detection sweeps sequentially in direct mode (see
			// Engine.sweepDetect) instead of on the snapshot-read pool;
			// the rebuild is cheap because these sweeps move one label
			// per user.
			st.piHat(other, -1, &sc.piV, &sc.idxBufV, &sc.valBufV, sc)
			lam := lamAt(int(li))
			x0 := fs * (baseU + massU*sc.piV.Base)
			const0 := kernel(x0, lam)
			for cc := range logw {
				logw[cc] += const0
			}
			for k, cc := range sc.piV.Idx {
				x := x0 + fs*massU*sc.piV.Val[k]
				logw[cc] += kernel(x, lam) - const0
			}
		}
	}
	addLinks(st.userFriendLinks[u], st.g.Friends, func(li int) float64 { return st.lamAt(sc, li) }, true)
	addLinks(st.userNegFriendLinks[u], st.negFriends, func(li int) float64 { return st.lamNegAt(sc, li) }, false)

	cNew := int32(sc.r.CategoricalLog(logw))
	for _, d := range docs {
		z := int(st.zload(d))
		st.cstore(d, cNew)
		st.addCZ(sc, int(cNew), z, 1)
		st.addCT(sc, int(cNew), 1)
	}
	if st.attrOn {
		for k, a := range st.g.Attrs[u] {
			atomic.StoreInt32(&st.attrC[u][k], cNew)
			st.addCA(sc, int(cNew), int(a), 1)
			st.addCATot(sc, int(cNew), 1)
		}
	}
}

// sampleLambda resamples the friendship augmentation variable
// λ_uv ~ PG(1, pi-hat_u^T pi-hat_v) (Eq. 15).
func (st *state) sampleLambda(li int, sc *scratch) {
	f := st.g.Friends[li]
	st.piSnap(f.U, &sc.piU)
	st.piSnap(f.V, &sc.piV)
	x := st.cfg.FriendScale * sc.piU.Dot(&sc.piV)
	st.lambda.set(li, polyagamma.Sample(sc.r, x))
}

// sampleLambdaNeg resamples a sampled-negative pair's augmentation
// variable; the PG conditional is PG(1, x) regardless of the link label.
func (st *state) sampleLambdaNeg(li int, sc *scratch) {
	f := st.negFriends[li]
	st.piSnap(f.U, &sc.piU)
	st.piSnap(f.V, &sc.piV)
	x := st.cfg.FriendScale * sc.piU.Dot(&sc.piV)
	st.lambdaNeg.set(li, polyagamma.Sample(sc.r, x))
}

// sampleDelta resamples the diffusion augmentation variable
// δ_ij ~ PG(1, c̄^T η̄ + n_tz + ν^T f_uv) (Eq. 16).
func (st *state) sampleDelta(e int, sc *scratch) {
	x := st.diffusionArg(e, sc)
	st.delta.set(e, polyagamma.Sample(sc.r, x))
}

// diffusionArg evaluates the sigmoid argument of Eq. 5 for diffusion link e
// under the current state.
func (st *state) diffusionArg(e int, sc *scratch) float64 {
	l := st.g.Diffs[e]
	uI := st.g.Docs[l.I].User
	uJ := st.g.Docs[l.J].User
	st.piSnap(uI, &sc.piU)
	st.piSnap(uJ, &sc.piV)
	if st.cfg.NoHeterogeneity {
		return st.cfg.FriendScale * sc.piU.Dot(&sc.piV)
	}
	// l.I is always owned by the sampling segment (diffusion links belong to
	// the diffusing document's user), so the live read is deterministic.
	z := int(st.zload(l.I))
	s := st.aggs[z].Eval(st.etaSlice[z], st.thetaColM.Row(z), &sc.piU, &sc.piV)
	return s + st.popTerm(sc, st.docBucket[l.I], z) + st.indivTerm(e)
}
