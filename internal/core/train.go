package core

import (
	"time"

	"repro/internal/socialgraph"
)

// Train runs the full Sect. 4 inference — Alg. 1's variational EM with a
// collapsed, Pólya-Gamma-augmented Gibbs E-step — and returns the trained
// model plus timing diagnostics. The graph is validated and its indexes
// built; cfg zero values take the paper's defaults.
//
// Every E-step sweep runs on the persistent worker-pool Engine, so training
// with any Workers value — including 1 — produces bit-identical results
// from the same seed; Workers only changes how the fixed set of data
// segments is executed.
func Train(g *socialgraph.Graph, cfg Config) (*Model, *Diagnostics, error) {
	e, err := NewEngine(g, cfg)
	if err != nil {
		return nil, nil, err
	}
	defer e.Close()
	return e.train()
}

func (e *Engine) train() (*Model, *Diagnostics, error) {
	st, cfg := e.st, e.cfg
	sc := newScratch(cfg, st.root.Split(0xE11))

	// Warm start: detection-only block sweeps seed the joint sampler with
	// an assortative configuration (see Config.WarmStartSweeps). Not
	// recorded in the sweep diagnostics — Fig. 10 times joint sweeps.
	if !cfg.NoJointModeling && !cfg.NoFriendship && cfg.WarmStartSweeps > 0 {
		st.contentOn = false
		for i := 0; i < cfg.WarmStartSweeps; i++ {
			e.sweep(false)
		}
		st.contentOn = true
	}

	// The "no joint modeling" ablation runs two full phases: detection from
	// friendship links alone (cheap sweeps — no content, no diffusion),
	// then profile learning with communities frozen. Detection-only block
	// Gibbs needs its own full budget to mix (it lacks the content signal
	// that accelerates the joint sampler), with a floor for small EMIters.
	phase1 := 0
	totalIters := cfg.EMIters
	if cfg.NoJointModeling {
		phase1 = cfg.EMIters
		if phase1 < 30 {
			phase1 = 30
		}
		totalIters = phase1 + cfg.EMIters
		st.contentOn = false
	}

	var mstepSecs float64
	for iter := 0; iter < totalIters; iter++ {
		if cfg.NoJointModeling && iter == phase1 {
			// Phase 2 of "no joint modeling": freeze the detected
			// communities and learn profiles on top.
			st.contentOn = true
			st.cFrozen = true
		}
		e.sweep(true)

		t1 := time.Now()
		if st.contentOn {
			st.mStepEta()
			if !cfg.NoIndividual && !cfg.NoHeterogeneity {
				st.mStepNu(sc)
			}
		}
		mstepSecs += time.Since(t1).Seconds()
	}
	st.refreshCaches()
	diag := e.Diagnostics()
	diag.MStepSeconds = mstepSecs
	return st.buildModel(), diag, nil
}

// sweepSerial is Alg. 1's E-step on a single goroutine with direct
// in-place counter access: for each user's each document sample the topic
// (step 5) then the community (step 6), then refresh the friendship
// (steps 7–8) and diffusion (steps 9–10) augmentation variables. It is the
// reference implementation the unit tests exercise and the engine's
// segment runner mirrors.
func (st *state) sweepSerial(sc *scratch) {
	if st.als != nil && st.contentOn {
		// Serial alias sweeps read live counters for the lazily built word
		// proposal tables (no engine snapshot exists here); MH corrects the
		// staleness either way.
		st.als.refresh(st, nil)
	}
	for u := 0; u < st.g.NumUsers; u++ {
		if !st.contentOn {
			// Detection-only phase (no-joint ablation): block moves.
			st.sampleUserCommunityBlock(int32(u), sc)
			continue
		}
		for _, d := range st.g.UserDocs(u) {
			if st.als != nil {
				st.sampleDocTopicAlias(d, sc)
				if !st.cFrozen {
					st.sampleDocCommunityAlias(d, sc)
				}
				continue
			}
			st.sampleDocTopic(d, sc)
			if !st.cFrozen {
				st.sampleDocCommunity(d, sc)
			}
		}
		if st.attrOn {
			for k := range st.g.Attrs[u] {
				st.sampleUserAttr(int32(u), k, sc)
			}
		}
	}
	if !st.cfg.NoFriendship {
		for li := range st.g.Friends {
			st.sampleLambda(li, sc)
		}
		for li := range st.negFriends {
			st.sampleLambdaNeg(li, sc)
		}
	}
	if st.contentOn {
		for e := range st.g.Diffs {
			st.sampleDelta(e, sc)
		}
	}
}
