package eval

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/socialgraph"
)

func TestAUCKnownCases(t *testing.T) {
	if got := AUC([]float64{2, 3}, []float64{0, 1}); got != 1 {
		t.Fatalf("perfect separation AUC = %v", got)
	}
	if got := AUC([]float64{0, 1}, []float64{2, 3}); got != 0 {
		t.Fatalf("reversed AUC = %v", got)
	}
	if got := AUC([]float64{1, 1}, []float64{1, 1}); got != 0.5 {
		t.Fatalf("all-ties AUC = %v", got)
	}
	// Hand-computed: pos {3,1}, neg {2,0}: pairs (3>2),(3>0),(1<2),(1>0)
	// => 3/4.
	if got := AUC([]float64{3, 1}, []float64{2, 0}); got != 0.75 {
		t.Fatalf("AUC = %v, want 0.75", got)
	}
	if got := AUC(nil, []float64{1}); !math.IsNaN(got) {
		t.Fatalf("empty pos AUC = %v, want NaN", got)
	}
}

func TestAUCInvariantToMonotoneTransform(t *testing.T) {
	f := func(seedPos, seedNeg []float64) bool {
		if len(seedPos) == 0 || len(seedNeg) == 0 {
			return true
		}
		clean := func(xs []float64) []float64 {
			out := make([]float64, 0, len(xs))
			for _, x := range xs {
				if !math.IsNaN(x) && !math.IsInf(x, 0) {
					out = append(out, math.Mod(x, 100))
				}
			}
			return out
		}
		pos, neg := clean(seedPos), clean(seedNeg)
		if len(pos) == 0 || len(neg) == 0 {
			return true
		}
		apply := func(xs []float64) []float64 {
			out := make([]float64, len(xs))
			for i, x := range xs {
				out[i] = math.Atan(x) * 3 // strictly monotone
			}
			return out
		}
		a := AUC(pos, neg)
		b := AUC(apply(pos), apply(neg))
		return math.Abs(a-b) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// twoCliqueGraph: users 0-3 form a clique, 4-7 form a clique, one bridge.
func twoCliqueGraph() *socialgraph.Graph {
	g := &socialgraph.Graph{NumUsers: 8, NumWords: 1}
	for u := 0; u < 8; u++ {
		g.Docs = append(g.Docs, socialgraph.Doc{User: int32(u), Words: []int32{0}})
	}
	for a := 0; a < 4; a++ {
		for b := a + 1; b < 4; b++ {
			g.Friends = append(g.Friends, socialgraph.FriendLink{U: int32(a), V: int32(b)})
			g.Friends = append(g.Friends, socialgraph.FriendLink{U: int32(a + 4), V: int32(b + 4)})
		}
	}
	g.Friends = append(g.Friends, socialgraph.FriendLink{U: 0, V: 4})
	return g
}

func TestConductanceTwoCliques(t *testing.T) {
	g := twoCliqueGraph()
	good := [][]int{{0, 1, 2, 3}, {4, 5, 6, 7}}
	bad := [][]int{{0, 1, 4, 5}, {2, 3, 6, 7}}
	cg := Conductance(g, good)
	cb := Conductance(g, bad)
	if !(cg < cb) {
		t.Fatalf("clique split %v not below random split %v", cg, cb)
	}
	// Clique split cuts only the bridge: cut=1, vol=13 per side.
	if math.Abs(cg-1.0/13) > 1e-9 {
		t.Fatalf("clique conductance = %v, want %v", cg, 1.0/13)
	}
	// Empty and full sets are skipped.
	if got := Conductance(g, [][]int{{}}); !math.IsNaN(got) {
		t.Fatalf("empty-only conductance = %v", got)
	}
}

func TestKFold(t *testing.T) {
	folds := KFold(10, 3, 1)
	if len(folds) != 3 {
		t.Fatalf("folds = %d", len(folds))
	}
	seen := map[int]int{}
	for _, f := range folds {
		for _, i := range f {
			seen[i]++
		}
	}
	if len(seen) != 10 {
		t.Fatalf("folds cover %d items", len(seen))
	}
	for i, n := range seen {
		if n != 1 {
			t.Fatalf("item %d appears %d times", i, n)
		}
	}
	train, test := SplitByFold(folds, 1)
	if len(train)+len(test) != 10 || len(test) != len(folds[1]) {
		t.Fatalf("SplitByFold sizes: %d train %d test", len(train), len(test))
	}
	// k > n clamps.
	if got := KFold(2, 5, 1); len(got) != 2 {
		t.Fatalf("clamped folds = %d", len(got))
	}
}

func TestPrecisionRecallAtK(t *testing.T) {
	ranked := [][]int{{1, 2}, {3}, {4, 5}}
	relevant := map[int]bool{1: true, 3: true, 9: true}
	prec, rec := PrecisionRecallAtK(ranked, relevant, 3)
	// K=1: union {1,2}, hits 1: P=0.5, R=1/3.
	if prec[0] != 0.5 || math.Abs(rec[0]-1.0/3) > 1e-12 {
		t.Fatalf("K=1: P=%v R=%v", prec[0], rec[0])
	}
	// K=2: union {1,2,3}, hits 2: P=2/3, R=2/3.
	if math.Abs(prec[1]-2.0/3) > 1e-12 || math.Abs(rec[1]-2.0/3) > 1e-12 {
		t.Fatalf("K=2: P=%v R=%v", prec[1], rec[1])
	}
	// K=3: union 5 users, hits 2: P=0.4.
	if math.Abs(prec[2]-0.4) > 1e-12 {
		t.Fatalf("K=3: P=%v", prec[2])
	}
	// Duplicate members across communities counted once.
	prec2, _ := PrecisionRecallAtK([][]int{{1}, {1}}, map[int]bool{1: true}, 2)
	if prec2[1] != 1 {
		t.Fatalf("duplicate member P@2 = %v", prec2[1])
	}
}

func TestMAFCurve(t *testing.T) {
	// One query, P(i)=1 and R(i)=0.5 for all i => MAP=1, MAR=0.5,
	// MAF=2*1*0.5/1.5.
	maps, mars, mafs := MAFCurve([][]float64{{1, 1}}, [][]float64{{0.5, 0.5}}, 2)
	if maps[1] != 1 || mars[1] != 0.5 {
		t.Fatalf("MAP=%v MAR=%v", maps[1], mars[1])
	}
	want := 2 * 1 * 0.5 / 1.5
	if math.Abs(mafs[1]-want) > 1e-12 {
		t.Fatalf("MAF=%v want %v", mafs[1], want)
	}
	// Empty input.
	m0, _, _ := MAFCurve(nil, nil, 3)
	if m0[0] != 0 {
		t.Fatalf("empty MAP = %v", m0)
	}
}

func TestPerplexityUniform(t *testing.T) {
	docs := []socialgraph.Doc{{User: 0, Words: []int32{0, 1, 2}}}
	const vocab = 50
	uniform := func(u int, w int32) float64 { return 1.0 / vocab }
	if got := Perplexity(uniform, docs); math.Abs(got-vocab) > 1e-9 {
		t.Fatalf("uniform perplexity = %v, want %v", got, float64(vocab))
	}
	// Better model, lower perplexity.
	better := func(u int, w int32) float64 { return 0.5 }
	if got := Perplexity(better, docs); math.Abs(got-2) > 1e-9 {
		t.Fatalf("perplexity = %v, want 2", got)
	}
	// Zero probabilities are floored, not NaN/Inf.
	zero := func(u int, w int32) float64 { return 0 }
	if got := Perplexity(zero, docs); math.IsNaN(got) || math.IsInf(got, 0) {
		t.Fatalf("zero-prob perplexity = %v", got)
	}
	if got := Perplexity(uniform, nil); !math.IsNaN(got) {
		t.Fatalf("no-docs perplexity = %v", got)
	}
}

func TestSampleNegativePairsExcludesPositives(t *testing.T) {
	g := twoCliqueGraph()
	existing := map[[2]int]bool{}
	for _, f := range g.Friends {
		existing[[2]int{int(f.U), int(f.V)}] = true
	}
	for _, p := range SampleNegativePairs(g, 20, 3) {
		if p[0] == p[1] {
			t.Fatal("self pair sampled")
		}
		if existing[p] {
			t.Fatalf("observed link sampled as negative: %v", p)
		}
	}
}

func TestSampleNegativeDocPairs(t *testing.T) {
	g := twoCliqueGraph()
	g.Diffs = append(g.Diffs, socialgraph.DiffLink{I: 0, J: 4})
	for _, p := range SampleNegativeDocPairs(g, 20, 4) {
		if p[0] == p[1] {
			t.Fatal("self doc pair")
		}
		if g.Docs[p[0]].User == g.Docs[p[1]].User {
			t.Fatal("same-user doc pair")
		}
		if p[0] == 0 && p[1] == 4 {
			t.Fatal("observed diffusion link sampled")
		}
	}
}

func BenchmarkAUC(b *testing.B) {
	pos := make([]float64, 1000)
	neg := make([]float64, 1000)
	for i := range pos {
		pos[i] = float64(i%97) * 0.01
		neg[i] = float64(i%89) * 0.009
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AUC(pos, neg)
	}
}

func TestNMI(t *testing.T) {
	perm := func(xs []int32, shift int32) []int32 {
		out := make([]int32, len(xs))
		for i, x := range xs {
			out[i] = (x + shift) % 3
		}
		return out
	}
	a := []int32{0, 0, 0, 1, 1, 1, 2, 2, 2}
	cases := []struct {
		name string
		a, b []int32
		want float64
		tol  float64
	}{
		{"identical", a, a, 1, 1e-12},
		{"label-renamed", a, perm(a, 1), 1, 1e-12},
		{"both single cluster", []int32{4, 4, 4}, []int32{9, 9, 9}, 1, 0},
		{"one side single cluster", a, []int32{7, 7, 7, 7, 7, 7, 7, 7, 7}, 0, 0},
		{"independent halves", []int32{0, 0, 1, 1}, []int32{0, 1, 0, 1}, 0, 1e-12},
	}
	for _, tc := range cases {
		if got := NMI(tc.a, tc.b); math.Abs(got-tc.want) > tc.tol {
			t.Errorf("%s: NMI = %v, want %v", tc.name, got, tc.want)
		}
	}
	if !math.IsNaN(NMI(nil, nil)) {
		t.Error("empty labelings must give NaN")
	}
	if !math.IsNaN(NMI([]int32{1}, []int32{1, 2})) {
		t.Error("mismatched lengths must give NaN")
	}
	// Partial agreement sits strictly between the extremes and is symmetric.
	b := []int32{0, 0, 1, 1, 1, 1, 2, 2, 0}
	ab, ba := NMI(a, b), NMI(b, a)
	if ab <= 0 || ab >= 1 {
		t.Errorf("partial agreement NMI = %v, want in (0,1)", ab)
	}
	if math.Abs(ab-ba) > 1e-12 {
		t.Errorf("NMI not symmetric: %v vs %v", ab, ba)
	}
}
