// Package eval implements the paper's evaluation protocol (Sect. 6.1):
// AUC for link prediction, conductance for detection quality, mean average
// precision/recall/F1 at K for community ranking, perplexity for content
// profiles, k-fold link cross-validation and the paired one-tailed t-test
// used for significance claims.
package eval

import (
	"math"
	"sort"

	"repro/internal/mathx"
	"repro/internal/rng"
	"repro/internal/socialgraph"
)

// AUC returns the probability that a randomly chosen positive score ranks
// above a randomly chosen negative score (Mann–Whitney statistic), with
// ties counted half. It returns NaN if either side is empty.
func AUC(pos, neg []float64) float64 {
	if len(pos) == 0 || len(neg) == 0 {
		return math.NaN()
	}
	type scored struct {
		v     float64
		isPos bool
	}
	all := make([]scored, 0, len(pos)+len(neg))
	for _, v := range pos {
		all = append(all, scored{v, true})
	}
	for _, v := range neg {
		all = append(all, scored{v, false})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })
	// Average ranks with tie handling.
	var rankSumPos float64
	i := 0
	for i < len(all) {
		j := i
		for j < len(all) && all[j].v == all[i].v {
			j++
		}
		avgRank := float64(i+j+1) / 2 // 1-based average rank of the tie group
		for k := i; k < j; k++ {
			if all[k].isPos {
				rankSumPos += avgRank
			}
		}
		i = j
	}
	nPos, nNeg := float64(len(pos)), float64(len(neg))
	u := rankSumPos - nPos*(nPos+1)/2
	return u / (nPos * nNeg)
}

// Conductance returns the average conductance of the given community
// member sets over the friendship graph (undirected view):
// cut(S) / min(vol(S), vol(V∖S)). Communities that are empty or span the
// whole volume are skipped. Lower is better.
func Conductance(g *socialgraph.Graph, members [][]int) float64 {
	deg := make([]float64, g.NumUsers)
	var totalVol float64
	for _, f := range g.Friends {
		deg[f.U]++
		deg[f.V]++
		totalVol += 2
	}
	inSet := make([]bool, g.NumUsers)
	var sum float64
	var counted int
	for _, ms := range members {
		if len(ms) == 0 {
			continue
		}
		for _, u := range ms {
			inSet[u] = true
		}
		var vol, cut float64
		for _, u := range ms {
			vol += deg[u]
		}
		for _, f := range g.Friends {
			if inSet[f.U] != inSet[f.V] {
				cut += 1
			}
		}
		for _, u := range ms {
			inSet[u] = false
		}
		denom := math.Min(vol, totalVol-vol)
		if denom <= 0 {
			continue
		}
		sum += cut / denom
		counted++
	}
	if counted == 0 {
		return math.NaN()
	}
	return sum / float64(counted)
}

// KFold partitions [0, n) into k disjoint test folds after a seeded
// shuffle. Fold f's test set is folds[f]; its training set is everything
// else.
func KFold(n, k int, seed uint64) [][]int {
	if k < 2 {
		k = 2
	}
	if k > n {
		k = n
	}
	perm := rng.New(seed).Perm(n)
	folds := make([][]int, k)
	for i, idx := range perm {
		folds[i%k] = append(folds[i%k], idx)
	}
	return folds
}

// SplitByFold returns the train/test index sets for fold f.
func SplitByFold(folds [][]int, f int) (train, test []int) {
	for i, fold := range folds {
		if i == f {
			test = append(test, fold...)
		} else {
			train = append(train, fold...)
		}
	}
	return train, test
}

// PrecisionRecallAtK evaluates a ranked list of communities against a
// relevant-user set, per Sect. 6.1: P(K,q) = |U*_q ∩ U_K| / |U_K| and
// R(K,q) = |U*_q ∩ U_K| / |U*_q| where U_K is the union of users in the
// top-K communities. It returns P(i,q) and R(i,q) for i = 1..K.
func PrecisionRecallAtK(rankedMembers [][]int, relevant map[int]bool, K int) (prec, rec []float64) {
	if K > len(rankedMembers) {
		K = len(rankedMembers)
	}
	prec = make([]float64, K)
	rec = make([]float64, K)
	union := make(map[int]bool)
	hits := 0
	for i := 0; i < K; i++ {
		for _, u := range rankedMembers[i] {
			if !union[u] {
				union[u] = true
				if relevant[u] {
					hits++
				}
			}
		}
		if len(union) > 0 {
			prec[i] = float64(hits) / float64(len(union))
		}
		if len(relevant) > 0 {
			rec[i] = float64(hits) / float64(len(relevant))
		}
	}
	return prec, rec
}

// MAFCurve aggregates per-query precision/recall curves into MAP@K,
// MAR@K and MAF@K for K = 1..maxK (Sect. 6.1's definitions: averages of
// P(i,q) over i <= K, then over queries).
func MAFCurve(perQueryPrec, perQueryRec [][]float64, maxK int) (maps, mars, mafs []float64) {
	maps = make([]float64, maxK)
	mars = make([]float64, maxK)
	mafs = make([]float64, maxK)
	nq := len(perQueryPrec)
	if nq == 0 {
		return
	}
	for K := 1; K <= maxK; K++ {
		var mp, mr float64
		for q := 0; q < nq; q++ {
			var sp, sr float64
			for i := 0; i < K && i < len(perQueryPrec[q]); i++ {
				sp += perQueryPrec[q][i]
				sr += perQueryRec[q][i]
			}
			mp += sp / float64(K)
			mr += sr / float64(K)
		}
		mp /= float64(nq)
		mr /= float64(nq)
		maps[K-1] = mp
		mars[K-1] = mr
		if mp+mr > 0 {
			mafs[K-1] = 2 * mp * mr / (mp + mr)
		}
	}
	return
}

// Perplexity computes exp(-Σ log p(w|u) / N) over the documents, given a
// per-user-word probability function (the content-profile quality metric
// of Fig. 8).
func Perplexity(wordProb func(u int, w int32) float64, docs []socialgraph.Doc) float64 {
	var logLik float64
	var n int
	for _, d := range docs {
		for _, w := range d.Words {
			p := wordProb(int(d.User), w)
			if p <= 0 || math.IsNaN(p) {
				p = 1e-300
			}
			logLik += math.Log(p)
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return math.Exp(-logLik / float64(n))
}

// SampleNegativePairs draws n (u, v) user pairs that do not appear in the
// friendship link set (for friendship AUC) using rejection sampling.
func SampleNegativePairs(g *socialgraph.Graph, n int, seed uint64) [][2]int {
	r := rng.New(seed)
	existing := make(map[int64]bool, len(g.Friends))
	for _, f := range g.Friends {
		existing[int64(f.U)*int64(g.NumUsers)+int64(f.V)] = true
	}
	out := make([][2]int, 0, n)
	for len(out) < n {
		u := r.Intn(g.NumUsers)
		v := r.Intn(g.NumUsers)
		if u == v || existing[int64(u)*int64(g.NumUsers)+int64(v)] {
			continue
		}
		out = append(out, [2]int{u, v})
	}
	return out
}

// SampleNegativeDocPairs draws n (i, j) document pairs with distinct users
// that are not observed diffusion links (for diffusion AUC).
func SampleNegativeDocPairs(g *socialgraph.Graph, n int, seed uint64) [][2]int {
	r := rng.New(seed)
	nd := len(g.Docs)
	existing := make(map[int64]bool, len(g.Diffs))
	for _, e := range g.Diffs {
		existing[int64(e.I)*int64(nd)+int64(e.J)] = true
	}
	out := make([][2]int, 0, n)
	for len(out) < n {
		i := r.Intn(nd)
		j := r.Intn(nd)
		if i == j || g.Docs[i].User == g.Docs[j].User || existing[int64(i)*int64(nd)+int64(j)] {
			continue
		}
		out = append(out, [2]int{i, j})
	}
	return out
}

// NMI returns the normalized mutual information I(A;B)/sqrt(H(A)·H(B))
// between two hard labelings of the same items — the standard
// detection-vs-ground-truth agreement score the scenario regression suite
// applies to planted communities. It is symmetric, 1 for identical
// partitions (up to label renaming) and near 0 for independent ones.
// Degenerate cases follow the usual convention: two single-cluster
// labelings agree perfectly (1); if only one side is single-cluster the
// score is 0. An empty or mismatched pair returns NaN.
func NMI(a, b []int32) float64 {
	if len(a) == 0 || len(a) != len(b) {
		return math.NaN()
	}
	n := float64(len(a))
	countA := make(map[int32]float64)
	countB := make(map[int32]float64)
	joint := make(map[[2]int32]float64)
	for i := range a {
		countA[a[i]]++
		countB[b[i]]++
		joint[[2]int32{a[i], b[i]}]++
	}
	entropy := func(counts map[int32]float64) float64 {
		var h float64
		for _, c := range counts {
			p := c / n
			h -= p * math.Log(p)
		}
		return h
	}
	ha, hb := entropy(countA), entropy(countB)
	if ha == 0 && hb == 0 {
		return 1
	}
	if ha == 0 || hb == 0 {
		return 0
	}
	var mi float64
	for k, c := range joint {
		pxy := c / n
		px := countA[k[0]] / n
		py := countB[k[1]] / n
		mi += pxy * math.Log(pxy/(px*py))
	}
	return mi / math.Sqrt(ha*hb)
}

// PairedTTest re-exports the mathx paired one-tailed t-test for
// convenience in the experiment harness.
func PairedTTest(a, b []float64) (float64, error) {
	return mathx.PairedTTestOneTailed(a, b)
}
