package polyagamma

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// pgVariance is the closed-form Var[PG(1,z)] =
// (sinh(z) - z) / (4 z^3 cosh^2(z/2)), with the z→0 limit 1/24.
func pgVariance(z float64) float64 {
	z = math.Abs(z)
	if z < 1e-4 {
		return 1.0 / 24
	}
	c := math.Cosh(z / 2)
	return (math.Sinh(z) - z) / (4 * z * z * z * c * c)
}

func TestMeanFormula(t *testing.T) {
	// Mean must equal b/(2z) tanh(z/2) and be continuous at 0.
	for _, z := range []float64{0, 1e-9, 1e-6, 0.1, 1, 5, -3} {
		want := 0.25
		az := math.Abs(z)
		if az > 1e-12 {
			want = math.Tanh(az/2) / (2 * az)
		}
		if got := Mean(1, z); math.Abs(got-want) > 1e-9 {
			t.Errorf("Mean(1, %v) = %v, want %v", z, got, want)
		}
	}
	if got := Mean(3, 2); math.Abs(got-3*Mean(1, 2)) > 1e-12 {
		t.Fatalf("Mean not linear in b: %v", got)
	}
	// Continuity across the small-z switch.
	if d := math.Abs(Mean(1, 1e-8) - Mean(1, 2e-8)); d > 1e-12 {
		t.Fatalf("Mean discontinuous near 0: %v", d)
	}
}

func TestSampleMomentsMatchClosedForm(t *testing.T) {
	r := rng.New(99)
	const n = 60000
	for _, z := range []float64{0, 0.5, 1, 2, 5, -2} {
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			x := Sample(r, z)
			if x <= 0 {
				t.Fatalf("PG sample non-positive: %v (z=%v)", x, z)
			}
			sum += x
			sumSq += x * x
		}
		mean := sum / n
		variance := sumSq/n - mean*mean
		wantMean := Mean(1, z)
		wantVar := pgVariance(z)
		if math.Abs(mean-wantMean) > 4*math.Sqrt(wantVar/n)+1e-4 {
			t.Errorf("z=%v: sample mean %v, want %v", z, mean, wantMean)
		}
		if math.Abs(variance-wantVar) > 0.08*wantVar+1e-5 {
			t.Errorf("z=%v: sample variance %v, want %v", z, variance, wantVar)
		}
	}
}

func TestSampleMatchesReferenceSum(t *testing.T) {
	// The exact Devroye sampler and the truncated infinite-sum reference
	// must agree in distribution; compare means and a quantile.
	r := rng.New(7)
	const n = 20000
	for _, z := range []float64{0.5, 2} {
		exact := make([]float64, n)
		ref := make([]float64, n)
		var meanE, meanR float64
		for i := 0; i < n; i++ {
			exact[i] = Sample(r, z)
			ref[i] = SampleSum(r, z, 200)
			meanE += exact[i]
			meanR += ref[i]
		}
		meanE /= n
		meanR /= n
		if math.Abs(meanE-meanR) > 0.02*meanR+1e-4 {
			t.Errorf("z=%v: exact mean %v vs reference %v", z, meanE, meanR)
		}
		// Median comparison (loose).
		medE := quickMedian(exact)
		medR := quickMedian(ref)
		if math.Abs(medE-medR) > 0.05*medR+1e-3 {
			t.Errorf("z=%v: exact median %v vs reference %v", z, medE, medR)
		}
	}
}

func quickMedian(xs []float64) float64 {
	cp := append([]float64(nil), xs...)
	// Simple nth-element by sorting a copy; n is small in tests.
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	return cp[len(cp)/2]
}

func TestSampleB(t *testing.T) {
	r := rng.New(5)
	const n = 20000
	var sum float64
	for i := 0; i < n; i++ {
		sum += SampleB(r, 3, 1)
	}
	want := Mean(3, 1)
	if got := sum / n; math.Abs(got-want) > 0.02*want {
		t.Fatalf("SampleB mean = %v, want %v", got, want)
	}
}

func TestSampleLargeZ(t *testing.T) {
	// Large tilting must not hang or produce garbage.
	r := rng.New(3)
	for _, z := range []float64{10, 25, 50} {
		var sum float64
		const n = 5000
		for i := 0; i < n; i++ {
			x := Sample(r, z)
			if x <= 0 || math.IsNaN(x) || math.IsInf(x, 0) {
				t.Fatalf("bad sample %v at z=%v", x, z)
			}
			sum += x
		}
		want := Mean(1, z)
		if got := sum / n; math.Abs(got-want) > 0.05*want {
			t.Fatalf("z=%v mean %v, want %v", z, got, want)
		}
	}
}

func BenchmarkSample(b *testing.B) {
	r := rng.New(1)
	for _, z := range []float64{0.5, 2, 10} {
		b.Run(formatZ(z), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Sample(r, z)
			}
		})
	}
}

func BenchmarkSampleSumReference(b *testing.B) {
	r := rng.New(1)
	for i := 0; i < b.N; i++ {
		SampleSum(r, 2, 200)
	}
}

func formatZ(z float64) string {
	switch z {
	case 0.5:
		return "z=0.5"
	case 2:
		return "z=2"
	default:
		return "z=10"
	}
}
