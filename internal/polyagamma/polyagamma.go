// Package polyagamma samples Pólya-Gamma random variables PG(1, z), the
// data-augmentation device the paper uses to make its sigmoid link
// functions Gibbs-tractable (Sect. 4.1, Eqs. 7–11 and 15–16, following
// Polson, Scott & Windle 2013).
//
// The exact sampler is Devroye's alternating-series method applied to the
// exponentially tilted Jacobi distribution J*(1, z/2); PG(1, z) = J*/4.
// A truncated infinite-sum-of-Gammas sampler is provided as a slower
// reference implementation for cross-validation in tests.
package polyagamma

import (
	"math"

	"repro/internal/rng"
)

// trunc is the left/right split point of the Jacobi density's two series
// representations (Devroye's t = 0.64).
const trunc = 0.64

// Mean returns E[PG(b, z)] = b/(2z) * tanh(z/2), with the z→0 limit b/4.
func Mean(b, z float64) float64 {
	z = math.Abs(z)
	if z < 1e-8 {
		// tanh(z/2)/(2z) → 1/4 as z → 0; second-order expansion keeps the
		// function smooth across the switch.
		return b * (0.25 - z*z/48)
	}
	return b / (2 * z) * math.Tanh(z/2)
}

// Sample draws one PG(1, z) variate using r as the randomness source.
func Sample(r *rng.RNG, z float64) float64 {
	zz := math.Abs(z) / 2
	return sampleJacobiStar(r, zz) / 4
}

// SampleB draws PG(b, z) for integer b >= 1 as a sum of b independent
// PG(1, z) draws (the Pólya-Gamma family is closed under convolution in b).
func SampleB(r *rng.RNG, b int, z float64) float64 {
	var s float64
	for i := 0; i < b; i++ {
		s += Sample(r, z)
	}
	return s
}

// sampleJacobiStar draws from the exponentially tilted Jacobi distribution
// J*(1, zz) with zz >= 0, by Devroye's method: propose from a mixture of a
// truncated inverse Gaussian (left of trunc) and a shifted exponential
// (right of trunc), then accept via the alternating partial sums of the
// Jacobi series coefficients.
func sampleJacobiStar(r *rng.RNG, zz float64) float64 {
	fz := math.Pi*math.Pi/8 + zz*zz/2
	pRight := rightMass(zz, fz)
	for {
		var x float64
		if r.Float64() < pRight {
			x = trunc + r.Exp()/fz
		} else {
			x = truncatedInvGauss(r, zz)
		}
		// Alternating series acceptance (squeeze): S_1 > S_3 > ... > f(x)
		// and S_2 < S_4 < ... < f(x).
		s := aCoef(0, x)
		y := r.Float64() * s
		for n := 1; ; n++ {
			if n%2 == 1 {
				s -= aCoef(n, x)
				if y <= s {
					return x
				}
			} else {
				s += aCoef(n, x)
				if y > s {
					break // reject, draw a new proposal
				}
			}
		}
	}
}

// rightMass returns p/(p+q): the probability that the proposal comes from
// the exponential right tail rather than the truncated inverse Gaussian.
func rightMass(zz, fz float64) float64 {
	t := trunc
	sqrtInvT := math.Sqrt(1 / t)
	b := sqrtInvT * (t*zz - 1)
	a := -sqrtInvT * (t*zz + 1)
	x0 := math.Log(fz) + fz*t
	xb := x0 - zz + logNormCDF(b)
	xa := x0 + zz + logNormCDF(a)
	qdivp := 4 / math.Pi * (math.Exp(xb) + math.Exp(xa))
	return 1 / (1 + qdivp)
}

// logNormCDF returns log(Phi(x)) using erfc for a numerically safe left
// tail.
func logNormCDF(x float64) float64 {
	v := 0.5 * math.Erfc(-x/math.Sqrt2)
	if v > 0 {
		return math.Log(v)
	}
	// Asymptotic expansion for the far left tail: Phi(x) ~ phi(x)/|x|.
	return -0.5*x*x - math.Log(-x) - 0.5*math.Log(2*math.Pi)
}

// aCoef returns the n-th coefficient a_n(x) of the Jacobi density's series,
// using the left expansion for x <= trunc and the right expansion above.
func aCoef(n int, x float64) float64 {
	k := float64(n) + 0.5
	if x > trunc {
		return math.Pi * k * math.Exp(-k*k*math.Pi*math.Pi*x/2)
	}
	return math.Pi * k * math.Pow(2/(math.Pi*x), 1.5) * math.Exp(-2*k*k/x)
}

// truncatedInvGauss draws from an inverse Gaussian IG(mu=1/zz, lambda=1)
// truncated to (0, trunc]. For zz < 1/trunc (mu beyond the truncation
// point) it uses rejection from a scaled chi-like proposal with the
// exponential tilt applied in the acceptance step; otherwise it draws
// untruncated IG variates until one lands inside.
func truncatedInvGauss(r *rng.RNG, zz float64) float64 {
	t := trunc
	if zz < 1/t { // mu = 1/zz > t
		for {
			var e1, e2 float64
			for {
				e1, e2 = r.Exp(), r.Exp()
				if e1*e1 <= 2*e2/t {
					break
				}
			}
			x := t / ((1 + t*e1) * (1 + t*e1))
			if r.Float64() <= math.Exp(-zz*zz*x/2) {
				return x
			}
		}
	}
	mu := 1 / zz
	for {
		y := r.Norm()
		y = y * y
		muY := mu * y
		x := mu + 0.5*mu*muY - 0.5*mu*math.Sqrt(4*muY+muY*muY)
		if r.Float64() > mu/(mu+x) {
			x = mu * mu / x
		}
		if x <= t && x > 0 {
			return x
		}
	}
}

// SampleSum draws PG(1, z) by the defining infinite sum
//
//	PG(1, z) = 1/(2 pi^2) * sum_k Gamma_k / ((k-1/2)^2 + z^2/(4 pi^2))
//
// truncated at terms terms with the truncation's expectation added back.
// It is O(terms) per draw and exists as a reference for validating the
// exact sampler in tests; inference code should use Sample.
func SampleSum(r *rng.RNG, z float64, terms int) float64 {
	z = math.Abs(z)
	c := z * z / (4 * math.Pi * math.Pi)
	var s float64
	for k := 1; k <= terms; k++ {
		d := float64(k) - 0.5
		s += r.Gamma(1) / (d*d + c)
	}
	// Tail correction: E[sum_{k>terms}] with E[Gamma(1,1)] = 1.
	for k := terms + 1; k <= terms+4096; k++ {
		d := float64(k) - 0.5
		s += 1 / (d*d + c)
	}
	return s / (2 * math.Pi * math.Pi)
}
