package store

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/socialgraph"
	"repro/internal/sparse"
)

// testModel assembles a deterministic model directly from random parameter
// blocks — no training run — shaped like a small trained CPD model.
func testModel(users, C, Z, V int, seed uint64) *core.Model {
	r := rng.New(seed)
	m := &core.Model{
		Cfg: core.Config{
			NumCommunities: C, NumTopics: Z, Seed: seed,
		}.WithDefaults(),
		NumUsers:   users,
		NumWords:   V,
		NumBuckets: 4,
		Pi:         sparse.NewDense(users, C),
		Theta:      sparse.NewDense(C, Z),
		Phi:        sparse.NewDense(Z, V),
		Eta:        sparse.NewTensor3(C, C, Z),
		Nu:         make([]float64, socialgraph.FeatureDim),
		PopFreq:    sparse.NewDense(4, Z),
	}
	fill := func(xs []float64) {
		for i := range xs {
			xs[i] = r.Float64()
		}
	}
	fill(m.Pi.Data)
	fill(m.Theta.Data)
	fill(m.Phi.Data)
	fill(m.Eta.Data)
	fill(m.Nu)
	fill(m.PopFreq.Data)
	m.Pi.NormalizeRows()
	m.Theta.NormalizeRows()
	m.Phi.NormalizeRows()
	m.PopFreq.NormalizeRows()
	docs := 3 * users
	m.DocCommunity = make([]int32, docs)
	m.DocTopic = make([]int32, docs)
	m.DocBucket = make([]int, docs)
	for i := 0; i < docs; i++ {
		m.DocCommunity[i] = int32(r.Intn(C))
		m.DocTopic[i] = int32(r.Intn(Z))
		m.DocBucket[i] = r.Intn(4)
	}
	m.Rehydrate()
	return m
}

func attachAttrs(m *core.Model, attrs int, seed uint64) {
	r := rng.New(seed)
	m.NumAttrs = attrs
	m.Xi = sparse.NewDense(m.Cfg.NumCommunities, attrs)
	for i := range m.Xi.Data {
		m.Xi.Data[i] = r.Float64()
	}
	m.Xi.NormalizeRows()
}

func denseEqual(t *testing.T, name string, a, b *sparse.Dense) {
	t.Helper()
	if (a == nil) != (b == nil) {
		t.Fatalf("%s: nil mismatch", name)
	}
	if a == nil {
		return
	}
	if a.Rows != b.Rows || a.Cols != b.Cols || !reflect.DeepEqual(a.Data, b.Data) {
		t.Fatalf("%s differs after round trip", name)
	}
}

func modelsEquivalent(t *testing.T, a, b *core.Model) {
	t.Helper()
	if !reflect.DeepEqual(a.Cfg, b.Cfg) {
		t.Fatalf("config differs: %+v vs %+v", a.Cfg, b.Cfg)
	}
	if a.NumUsers != b.NumUsers || a.NumWords != b.NumWords ||
		a.NumBuckets != b.NumBuckets || a.NumAttrs != b.NumAttrs {
		t.Fatalf("dimensions differ")
	}
	denseEqual(t, "pi", a.Pi, b.Pi)
	denseEqual(t, "theta", a.Theta, b.Theta)
	denseEqual(t, "phi", a.Phi, b.Phi)
	denseEqual(t, "popfreq", a.PopFreq, b.PopFreq)
	denseEqual(t, "xi", a.Xi, b.Xi)
	if !reflect.DeepEqual(a.Eta.Data, b.Eta.Data) {
		t.Fatalf("eta differs")
	}
	if !reflect.DeepEqual(a.Nu, b.Nu) {
		t.Fatalf("nu differs")
	}
	if !reflect.DeepEqual(a.DocCommunity, b.DocCommunity) ||
		!reflect.DeepEqual(a.DocTopic, b.DocTopic) ||
		!reflect.DeepEqual(a.DocBucket, b.DocBucket) {
		t.Fatalf("document assignments differ")
	}
}

func encodeToBytes(t *testing.T, m *core.Model) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Encode(&buf, m); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestBinaryRoundTrip(t *testing.T) {
	m := testModel(40, 6, 5, 120, 1)
	got, err := Decode(bytes.NewReader(encodeToBytes(t, m)))
	if err != nil {
		t.Fatal(err)
	}
	modelsEquivalent(t, m, got)
	// The decoded model must have working caches: the Eq. 19 ranking and a
	// link probability must match the original bit-for-bit.
	q := []int32{3, 7}
	want, have := m.RankCommunities(q), got.RankCommunities(q)
	if !reflect.DeepEqual(want, have) {
		t.Fatalf("rank scores differ after round trip: %v vs %v", want, have)
	}
	if a, b := m.FriendshipProb(0, 1), got.FriendshipProb(0, 1); a != b {
		t.Fatalf("friendship prob differs: %v vs %v", a, b)
	}
}

func TestBinaryRoundTripWithAttributes(t *testing.T) {
	m := testModel(25, 5, 4, 80, 2)
	attachAttrs(m, 9, 3)
	got, err := Decode(bytes.NewReader(encodeToBytes(t, m)))
	if err != nil {
		t.Fatal(err)
	}
	modelsEquivalent(t, m, got)
}

// TestJSONBinaryEquivalence feeds both encodings of the same model through
// the sniffing Load and requires identical models back.
func TestJSONBinaryEquivalence(t *testing.T) {
	m := testModel(30, 5, 4, 100, 4)
	var jsonBuf bytes.Buffer
	if err := m.Save(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	fromJSON, err := Load(bytes.NewReader(jsonBuf.Bytes()))
	if err != nil {
		t.Fatalf("loading JSON: %v", err)
	}
	fromBinary, err := Load(bytes.NewReader(encodeToBytes(t, m)))
	if err != nil {
		t.Fatalf("loading binary: %v", err)
	}
	modelsEquivalent(t, m, fromJSON)
	modelsEquivalent(t, fromJSON, fromBinary)
}

func TestEmptyModelRoundTrip(t *testing.T) {
	m := &core.Model{
		Cfg:     core.Config{NumCommunities: 2, NumTopics: 2}.WithDefaults(),
		Pi:      sparse.NewDense(0, 2),
		Theta:   sparse.NewDense(2, 2),
		Phi:     sparse.NewDense(2, 0),
		Eta:     sparse.NewTensor3(2, 2, 2),
		PopFreq: sparse.NewDense(0, 2),
	}
	m.Rehydrate()
	got, err := Decode(bytes.NewReader(encodeToBytes(t, m)))
	if err != nil {
		t.Fatal(err)
	}
	modelsEquivalent(t, m, got)
}

func TestCorruptSnapshotRejected(t *testing.T) {
	raw := encodeToBytes(t, testModel(20, 4, 3, 60, 5))
	// Flip one byte in every region of the file: header, early section,
	// deep payload, trailing checksum.
	for _, pos := range []int{2, 20, len(raw) / 2, len(raw) - 3} {
		bad := append([]byte(nil), raw...)
		bad[pos] ^= 0x41
		if _, err := Decode(bytes.NewReader(bad)); err == nil {
			t.Fatalf("corruption at byte %d accepted", pos)
		}
	}
}

func TestTruncatedSnapshotRejected(t *testing.T) {
	raw := encodeToBytes(t, testModel(20, 4, 3, 60, 6))
	for _, n := range []int{0, 4, len(magic), 30, len(raw) / 3, len(raw) - 1} {
		if _, err := Decode(bytes.NewReader(raw[:n])); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
}

func TestUnsupportedVersionRejected(t *testing.T) {
	raw := encodeToBytes(t, testModel(10, 3, 3, 40, 7))
	raw[6] = 0x7f // version byte
	_, err := Decode(bytes.NewReader(raw))
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("want version error, got %v", err)
	}
}

// TestUnknownSectionSkipped verifies forward compatibility: a reader must
// skip (but checksum) sections it does not know.
func TestUnknownSectionSkipped(t *testing.T) {
	m := testModel(15, 4, 3, 50, 8)
	raw := encodeToBytes(t, m)
	// Splice an unknown section right after the magic.
	extra := buildSection("ZZZZ", []byte("future payload"))
	spliced := append(append(append([]byte(nil), raw[:len(magic)]...), extra...), raw[len(magic):]...)
	got, err := Decode(bytes.NewReader(spliced))
	if err != nil {
		t.Fatal(err)
	}
	modelsEquivalent(t, m, got)
}

func buildSection(tag string, payload []byte) []byte {
	var buf bytes.Buffer
	e := &encoder{w: bufio.NewWriter(&buf), crc: crc32.NewIEEE(), scratch: make([]byte, 64)}
	e.section(tag, uint64(len(payload)), func() { e.raw(payload) })
	e.w.Flush()
	return buf.Bytes()
}

// TestOverflowingHeaderRejected: crafted dimension headers whose element
// counts overflow the uint64 section-length cross-check must be rejected
// with an error, not panic in make().
func TestOverflowingHeaderRejected(t *testing.T) {
	u64 := func(vs ...uint64) []byte {
		var out []byte
		for _, v := range vs {
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], v)
			out = append(out, b[:]...)
		}
		return out
	}
	cases := map[string][]byte{
		// 8*rows*cols wraps to 0, so the 16-byte payload "matches".
		"dense-overflow": buildSection(tagPi, u64(3<<61, 2)),
		// Pairwise product exceeds the section budget.
		"tensor-overflow": buildSection(tagEta, u64(1<<28, 1<<28, 1)),
		// Slice count wraps 8*n around to 8, matching the 16-byte payload.
		"slice-overflow": buildSection(tagNu, u64(1<<61+1, 0)),
	}
	for name, sec := range cases {
		raw := append([]byte(magic), sec...)
		raw = append(raw, buildSection(tagEnd, nil)...)
		if _, err := Decode(bytes.NewReader(raw)); err == nil {
			t.Fatalf("%s accepted", name)
		}
	}
}

func TestSaveIsAtomicAndLoadFileSniffs(t *testing.T) {
	dir := t.TempDir()
	m := testModel(12, 3, 3, 30, 9)

	binPath := filepath.Join(dir, "model.snap")
	if err := Save(binPath, m); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(binPath)
	if err != nil {
		t.Fatal(err)
	}
	modelsEquivalent(t, m, got)

	// No temporary file may survive a successful Save.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("leftover temporary file %s", e.Name())
		}
	}

	// LoadFile must also read the JSON format.
	jsonPath := filepath.Join(dir, "model.json")
	f, err := os.Create(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err = LoadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	modelsEquivalent(t, m, got)
}

// TestBinarySmallerThanJSON pins the size advantage: 8 bytes per float
// beats JSON's decimal expansion.
func TestBinarySmallerThanJSON(t *testing.T) {
	m := testModel(50, 8, 6, 200, 10)
	var jsonBuf bytes.Buffer
	if err := m.Save(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	bin := encodeToBytes(t, m)
	if len(bin) >= jsonBuf.Len() {
		t.Fatalf("binary snapshot (%d bytes) not smaller than JSON (%d bytes)", len(bin), jsonBuf.Len())
	}
}

func TestEncodeRejectsIncompleteModel(t *testing.T) {
	if err := Encode(&bytes.Buffer{}, &core.Model{}); err == nil {
		t.Fatal("model without parameter blocks accepted")
	}
}
