package store

import (
	"bytes"
	"testing"
)

// FuzzLoad throws arbitrary bytes at the snapshot loader. The invariants:
// never panic, never allocate beyond what the input length can back
// (LoadBytes bounds section claims by len(data)), and any input accepted
// as a model must be internally consistent enough to re-encode.
//
// The corpus seeds the interesting neighbourhoods by construction: a
// valid binary snapshot, truncations at section boundaries, single-bit
// corruptions (caught by the CRCs), a forged section length, and a valid
// JSON model for the sniffing path.
func FuzzLoad(f *testing.F) {
	m := testModel(12, 4, 5, 40, 3)
	var snap bytes.Buffer
	if err := Encode(&snap, m); err != nil {
		f.Fatal(err)
	}
	valid := snap.Bytes()
	f.Add(valid)
	f.Add(valid[:8])              // magic only
	f.Add(valid[:len(valid)/2])   // mid-section truncation
	f.Add(valid[:len(valid)-2])   // missing terminator CRC tail
	f.Add([]byte("CPDSNP\x03\n")) // future format version
	bitflip := append([]byte(nil), valid...)
	bitflip[len(bitflip)/3] ^= 0x10
	f.Add(bitflip)
	// Forged length field on the first section header (offset 8 is the
	// tag, 12..20 the little-endian length).
	forged := append([]byte(nil), valid...)
	forged[12] = 0xff
	forged[13] = 0xff
	f.Add(forged)
	// The v2 neighbourhoods: a valid section-table snapshot, its header
	// and table truncations, a corrupted table entry, and a forged
	// section count.
	var v2 bytes.Buffer
	if err := EncodeV2(&v2, m); err != nil {
		f.Fatal(err)
	}
	validV2 := v2.Bytes()
	f.Add(validV2)
	f.Add(validV2[:v2HeaderLen])     // header only
	f.Add(validV2[:v2HeaderLen+40])  // mid-table truncation
	f.Add(validV2[:len(validV2)/2])  // mid-payload truncation
	f.Add(validV2[:len(validV2)-1])  // last payload byte missing
	v2flip := append([]byte(nil), validV2...)
	v2flip[v2HeaderLen+10] ^= 0x20 // table entry offset byte
	f.Add(v2flip)
	v2count := append([]byte(nil), validV2...)
	v2count[8] = 0xff // forged section count
	f.Add(v2count)
	var js bytes.Buffer
	if err := m.Save(&js); err != nil {
		f.Fatal(err)
	}
	f.Add(js.Bytes())
	f.Add([]byte("{}"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		loaded, err := LoadBytes(data)
		if err != nil {
			return
		}
		// Whatever decoded must re-encode: an accepted model with
		// missing or inconsistent blocks is a validation hole.
		if loaded == nil {
			t.Fatal("nil model with nil error")
		}
		var buf bytes.Buffer
		if err := Encode(&buf, loaded); err != nil {
			t.Fatalf("accepted model does not re-encode: %v", err)
		}
	})
}
