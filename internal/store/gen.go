package store

// Generation-numbered snapshot files: the on-disk contract between the
// streaming publisher (internal/stream writes gen-%08d.v2.snap into its
// snapshot dir), the replica fetcher (internal/serve polls that dir — or
// its HTTP mirror — and promotes new generations), and retention
// (pruning keeps the newest K generation files). The naming and the
// directory-scan live here so every tier parses the same convention.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
)

// genFormat names one published generation. The zero-padded width keeps
// lexical and numeric order identical, so directory listings read in
// publish order.
const genFormat = "gen-%08d.v2.snap"

// GenPath returns the snapshot path for one generation under dir.
func GenPath(dir string, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf(genFormat, gen))
}

// ParseGenName extracts the generation from a snapshot file name
// (base name, not a path). It reports false for anything that is not a
// generation file.
func ParseGenName(name string) (uint64, bool) {
	var gen uint64
	var tail string
	n, err := fmt.Sscanf(name, "gen-%d.v2.snap%s", &gen, &tail)
	if err == nil && n != 1 || tail != "" {
		return 0, false
	}
	if n != 1 || gen == 0 {
		return 0, false
	}
	// Round-trip: rejects unpadded or over-long digit runs so one file
	// never aliases two generations.
	if fmt.Sprintf(genFormat, gen) != name {
		return 0, false
	}
	return gen, true
}

// GenFile is one generation snapshot present in a directory — the unit
// of the publisher's manifest and the fetcher's poll.
type GenFile struct {
	Generation uint64 `json:"generation"`
	Name       string `json:"name"`
	Size       int64  `json:"size"`
}

// ScanGenerations lists the generation snapshots in dir, ascending by
// generation. Non-generation files are ignored; a missing directory is
// an empty listing, not an error (the publisher creates it lazily).
func ScanGenerations(dir string) ([]GenFile, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: scanning %s: %w", dir, err)
	}
	var out []GenFile
	for _, ent := range entries {
		if ent.IsDir() {
			continue
		}
		gen, ok := ParseGenName(ent.Name())
		if !ok {
			continue
		}
		info, err := ent.Info()
		if err != nil {
			continue // raced with a prune; the file is gone
		}
		out = append(out, GenFile{Generation: gen, Name: ent.Name(), Size: info.Size()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Generation < out[j].Generation })
	return out, nil
}

// VerifyV2File checks the full integrity of a v2 snapshot: the section
// table CRC (as every reader does) and then every payload CRC — the
// O(model) pass Open deliberately skips. This is the check a replica
// runs after fetching a generation file and before mapping it, so a
// torn download or bit-rotted byte is caught once at distribution time
// rather than surfacing as a wrong answer in some query later.
func VerifyV2File(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(data) < v2HeaderLen {
		return fmt.Errorf("store: %s: file shorter than a v2 header", path)
	}
	if string(data[:len(magicV2)]) != magicV2 {
		return fmt.Errorf("store: %s: not a v2 CPD snapshot", path)
	}
	count := binary.LittleEndian.Uint64(data[8:])
	if count == 0 || count > maxV2Entries {
		return fmt.Errorf("store: %s: v2 snapshot claims %d sections", path, count)
	}
	tableEnd := uint64(v2HeaderLen) + count*v2EntryLen
	if tableEnd > uint64(len(data)) {
		return fmt.Errorf("store: %s: v2 section table truncated", path)
	}
	entries, err := parseV2Table(data[:v2HeaderLen], data[v2HeaderLen:tableEnd], uint64(len(data)))
	if err != nil {
		return fmt.Errorf("store: %s: %w", path, err)
	}
	for _, ent := range entries {
		payload := data[ent.off : ent.off+ent.size]
		if got := crc32.ChecksumIEEE(payload); got != ent.crc {
			return fmt.Errorf("store: %s: section %q payload checksum mismatch (%08x, stored %08x)",
				path, ent.tag, got, ent.crc)
		}
	}
	return nil
}
