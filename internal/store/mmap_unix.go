//go:build unix

package store

import (
	"fmt"
	"os"
	"syscall"
)

// mapFile maps path read-only and reports mapped=true. Empty files cannot
// be mapped (and could not hold a v2 header anyway); they fall back to the
// aligned read so the caller produces a proper format error.
func mapFile(path string) ([]byte, bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, false, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, false, err
	}
	size := fi.Size()
	if size <= 0 {
		data, err := readAligned(path)
		return data, false, err
	}
	if size > int64(maxSectionBytes)*2 {
		return nil, false, fmt.Errorf("snapshot size %d out of range", size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, false, fmt.Errorf("mmap: %w", err)
	}
	return data, true, nil
}

func unmapFile(data []byte) error { return syscall.Munmap(data) }
