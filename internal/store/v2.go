package store

// Snapshot format v2: the zero-copy serving layout.
//
// v1 (store.go) streams length-prefixed sections through a fixed buffer —
// robust and simple, but loading is inherently O(model): every float64 is
// copied from the file into freshly allocated matrices. v2 instead lays
// the file out so the big numeric blocks can be used *in place* from a
// read-only memory mapping (Open / MappedModel):
//
//	offset 0   magic "CPDSNP\x02\n"                       (8 bytes)
//	offset 8   sectionCount  uint64 LE
//	offset 16  tableCRC      uint64 LE (IEEE CRC32 of the table, low 32 bits)
//	offset 24  section table: sectionCount × 32-byte entries
//	             tag      [4]byte   (same tags as v1)
//	             reserved [4]byte   (zero)
//	             offset   uint64 LE (absolute payload offset, 64-byte aligned)
//	             length   uint64 LE (payload bytes)
//	             crc32    uint32 LE (IEEE, over the payload)
//	             reserved [4]byte   (zero)
//	then       payloads in table order, ascending offsets, zero-padded gaps
//
// Alignment rules: every payload starts on a 64-byte boundary, and every
// numeric payload begins with a 64-byte shape header (dimension words,
// zero-padded), so the raw element data also starts on a 64-byte boundary
// — cache-line aligned and therefore safely reinterpretable as []float64 /
// []int32 without copying. Numeric data is little-endian; on a big-endian
// host Open transparently falls back to the copying decoder.
//
// Payload layouts:
//
//	CFG          raw JSON (core.Config)
//	DIM          4 × uint64 (NumUsers, NumWords, NumBuckets, NumAttrs)
//	dense blocks 64-byte header {rows u64, cols u64}, then rows·cols float64
//	ETA          64-byte header {d1 u64, d2 u64, d3 u64}, then d1·d2·d3 float64
//	NU           64-byte header {n u64}, then n float64
//	DOCC/DOCZ    64-byte header {n u64}, then n int32
//	DOCB         64-byte header {n u64}, then n int64
//
// Integrity: the table CRC is always verified (a torn or corrupt table can
// never be walked), and per-payload CRCs are verified by the copying
// decoder (Decode/Load/LoadFile). Open skips payload CRCs by design — an
// O(model) checksum pass would defeat the O(1) map — so a mapped open
// trusts the payload bytes the way any mmap-consuming system does; run the
// copying loader when end-to-end verification matters more than load time.
//
// Unknown tags are skipped by both readers (forward compatibility), and
// the v1 and JSON formats keep loading byte-identically through the same
// sniffing entry points.

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/core"
	"repro/internal/sparse"
)

// magicV2 identifies a v2 snapshot; same 6-byte prefix as v1, version byte 2.
const magicV2 = "CPDSNP\x02\n"

const (
	v2Align      = 64
	v2HeaderLen  = 24 // magic + sectionCount + tableCRC
	v2EntryLen   = 32
	v2ShapeLen   = 64 // the zero-padded shape header of numeric payloads
	maxV2Entries = 1024
)

func alignUp(off uint64) uint64 { return (off + v2Align - 1) &^ uint64(v2Align-1) }

// v2section is one planned section: its tag, exact payload length, and an
// emitter that produces the payload bytes through a v2sink. The same
// emitter runs twice — once against a CRC-only sink to fill the table,
// once against the file writer — so the payload bytes have a single
// source of truth.
type v2section struct {
	tag  string
	size uint64
	emit func(*v2sink)
	off  uint64
	crc  uint32

	// ident is the backing slice the payload is encoded from ([]float64,
	// []int32 or []int; nil for synthesized payloads like CFG/DIM) and
	// dims its shape words. Together they let SaveV2Reusing recognize
	// sections whose bytes are guaranteed identical to the previous save
	// (same backing array, same length, same shape) and splice them from
	// the previous file instead of re-encoding. See SectionManifest.
	ident any
	dims  []uint64
}

// v2sink is the payload byte sink: it always feeds the CRC, and writes
// through to w when non-nil.
type v2sink struct {
	w       io.Writer
	crc     hash.Hash32
	scratch []byte
	err     error
}

func (s *v2sink) raw(p []byte) {
	if s.err != nil {
		return
	}
	s.crc.Write(p)
	if s.w != nil {
		if _, err := s.w.Write(p); err != nil {
			s.err = err
		}
	}
}

func (s *v2sink) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	s.raw(b[:])
}

// shape writes a numeric payload's 64-byte header: the dimension words,
// zero-padded to v2ShapeLen.
func (s *v2sink) shape(dims ...uint64) {
	var b [v2ShapeLen]byte
	for i, d := range dims {
		binary.LittleEndian.PutUint64(b[8*i:], d)
	}
	s.raw(b[:])
}

func (s *v2sink) floats(xs []float64) {
	k := 0
	for _, x := range xs {
		binary.LittleEndian.PutUint64(s.scratch[k:], math.Float64bits(x))
		k += 8
		if k == len(s.scratch) {
			s.raw(s.scratch)
			k = 0
		}
	}
	if k > 0 {
		s.raw(s.scratch[:k])
	}
}

func (s *v2sink) int32s(xs []int32) {
	k := 0
	for _, x := range xs {
		binary.LittleEndian.PutUint32(s.scratch[k:], uint32(x))
		k += 4
		if k == len(s.scratch) {
			s.raw(s.scratch)
			k = 0
		}
	}
	if k > 0 {
		s.raw(s.scratch[:k])
	}
}

func (s *v2sink) int64s(xs []int) {
	k := 0
	for _, x := range xs {
		binary.LittleEndian.PutUint64(s.scratch[k:], uint64(int64(x)))
		k += 8
		if k == len(s.scratch) {
			s.raw(s.scratch)
			k = 0
		}
	}
	if k > 0 {
		s.raw(s.scratch[:k])
	}
}

// v2Plan lists the sections of m in file order with exact sizes.
func v2Plan(m *core.Model) ([]*v2section, error) { return v2PlanSubset(m, nil) }

// v2PlanSubset lists the sections of m restricted to the tags in want
// (nil = every section), in the canonical file order CFG, DIM, PI, THET,
// PHI, ETA, NU, POPF, XI, DOCC, DOCZ, DOCB. POPF/XI are skipped when the
// block is nil even if requested (matching the full plan); any other
// requested matrix block that is nil is an error rather than a nil
// dereference, so partial models (shard files, global files) plan
// safely.
func v2PlanSubset(m *core.Model, want map[string]bool) ([]*v2section, error) {
	take := func(tag string) bool { return want == nil || want[tag] }
	var plan []*v2section
	add := func(tag string, size uint64, ident any, dims []uint64, emit func(*v2sink)) {
		plan = append(plan, &v2section{tag: tag, size: size, emit: emit, ident: ident, dims: dims})
	}
	dense := func(tag string, d *sparse.Dense) error {
		if d == nil {
			return fmt.Errorf("store: section %q requested but the model block is nil", tag)
		}
		add(tag, v2ShapeLen+8*uint64(len(d.Data)), d.Data, []uint64{uint64(d.Rows), uint64(d.Cols)}, func(s *v2sink) {
			s.shape(uint64(d.Rows), uint64(d.Cols))
			s.floats(d.Data)
		})
		return nil
	}
	if take(tagConfig) {
		cfgJSON, err := json.Marshal(m.Cfg)
		if err != nil {
			return nil, fmt.Errorf("store: encoding config: %w", err)
		}
		add(tagConfig, uint64(len(cfgJSON)), nil, nil, func(s *v2sink) { s.raw(cfgJSON) })
	}
	if take(tagDims) {
		add(tagDims, 4*8, nil, nil, func(s *v2sink) {
			s.u64(uint64(m.NumUsers))
			s.u64(uint64(m.NumWords))
			s.u64(uint64(m.NumBuckets))
			s.u64(uint64(m.NumAttrs))
		})
	}
	if take(tagPi) {
		if err := dense(tagPi, m.Pi); err != nil {
			return nil, err
		}
	}
	if take(tagTheta) {
		if err := dense(tagTheta, m.Theta); err != nil {
			return nil, err
		}
	}
	if take(tagPhi) {
		if err := dense(tagPhi, m.Phi); err != nil {
			return nil, err
		}
	}
	if take(tagEta) {
		if m.Eta == nil {
			return nil, fmt.Errorf("store: section %q requested but the model block is nil", tagEta)
		}
		add(tagEta, v2ShapeLen+8*uint64(len(m.Eta.Data)), m.Eta.Data,
			[]uint64{uint64(m.Eta.D1), uint64(m.Eta.D2), uint64(m.Eta.D3)}, func(s *v2sink) {
				s.shape(uint64(m.Eta.D1), uint64(m.Eta.D2), uint64(m.Eta.D3))
				s.floats(m.Eta.Data)
			})
	}
	if take(tagNu) {
		nu := m.Nu
		add(tagNu, v2ShapeLen+8*uint64(len(nu)), nu, []uint64{uint64(len(nu))}, func(s *v2sink) {
			s.shape(uint64(len(nu)))
			s.floats(nu)
		})
	}
	if take(tagPop) && m.PopFreq != nil {
		if err := dense(tagPop, m.PopFreq); err != nil {
			return nil, err
		}
	}
	if take(tagXi) && m.Xi != nil {
		if err := dense(tagXi, m.Xi); err != nil {
			return nil, err
		}
	}
	ints32 := func(tag string, xs []int32) {
		add(tag, v2ShapeLen+4*uint64(len(xs)), xs, []uint64{uint64(len(xs))}, func(s *v2sink) {
			s.shape(uint64(len(xs)))
			s.int32s(xs)
		})
	}
	if take(tagDocC) {
		ints32(tagDocC, m.DocCommunity)
	}
	if take(tagDocZ) {
		ints32(tagDocZ, m.DocTopic)
	}
	if take(tagDocB) {
		add(tagDocB, v2ShapeLen+8*uint64(len(m.DocBucket)), m.DocBucket,
			[]uint64{uint64(len(m.DocBucket))}, func(s *v2sink) {
				s.shape(uint64(len(m.DocBucket)))
				s.int64s(m.DocBucket)
			})
	}
	if len(plan) == 0 {
		return nil, fmt.Errorf("store: no sections selected")
	}
	for _, sec := range plan {
		if sec.size > maxSectionBytes {
			return nil, fmt.Errorf("store: section %q needs %d payload bytes, above the format's %d-byte section limit",
				sec.tag, sec.size, uint64(maxSectionBytes))
		}
	}
	return plan, nil
}

// v2Table serializes the section table.
func v2Table(plan []*v2section) []byte {
	table := make([]byte, v2EntryLen*len(plan))
	for i, sec := range plan {
		e := table[v2EntryLen*i:]
		copy(e, sec.tag)
		binary.LittleEndian.PutUint64(e[8:], sec.off)
		binary.LittleEndian.PutUint64(e[16:], sec.size)
		binary.LittleEndian.PutUint32(e[24:], sec.crc)
	}
	return table
}

// EncodeV2 writes m as a v2 snapshot: section table first, then 64-byte
// aligned payloads. The encoder runs each payload twice — a CRC pass to
// fill the table, then the write pass — so encoding costs two streaming
// passes over the parameter blocks. (SaveV2Reusing skips both passes for
// sections unchanged since a previous save.)
func EncodeV2(w io.Writer, m *core.Model) error {
	if m.Pi == nil || m.Theta == nil || m.Phi == nil || m.Eta == nil {
		return fmt.Errorf("store: model is missing parameter blocks")
	}
	plan, err := v2Plan(m)
	if err != nil {
		return err
	}
	return encodeV2Plan(w, plan, nil, nil)
}

// encodeV2Plan lays out and writes a planned v2 snapshot. Sections with
// an entry in reuse skip both emit passes: their CRC is taken from the
// previous save's table and their payload bytes are spliced verbatim
// from prevFile (re-verified against that CRC while copying). reuse may
// be nil for a plain full encode.
func encodeV2Plan(w io.Writer, plan []*v2section, reuse map[string]manifestEntry, prevFile io.ReaderAt) error {
	off := alignUp(uint64(v2HeaderLen + v2EntryLen*len(plan)))
	for _, sec := range plan {
		sec.off = off
		off = alignUp(off + sec.size)
	}
	scratch := make([]byte, 1<<15)
	for _, sec := range plan {
		if ent, ok := reuse[sec.tag]; ok {
			sec.crc = ent.crc
			continue
		}
		sink := &v2sink{crc: crc32.NewIEEE(), scratch: scratch}
		sec.emit(sink)
		if sink.err != nil {
			return fmt.Errorf("store: encoding section %q: %w", sec.tag, sink.err)
		}
		sec.crc = sink.crc.Sum32()
	}
	table := v2Table(plan)

	bw := bufio.NewWriterSize(w, 1<<16)
	hdr := make([]byte, v2HeaderLen)
	copy(hdr, magicV2)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(len(plan)))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(crc32.ChecksumIEEE(table)))
	if _, err := bw.Write(hdr); err != nil {
		return fmt.Errorf("store: writing v2 header: %w", err)
	}
	if _, err := bw.Write(table); err != nil {
		return fmt.Errorf("store: writing v2 section table: %w", err)
	}
	var pad [v2Align]byte
	pos := uint64(v2HeaderLen + len(table))
	for _, sec := range plan {
		if sec.off < pos {
			return fmt.Errorf("store: internal error: v2 layout overlaps at %q", sec.tag)
		}
		if _, err := bw.Write(pad[:sec.off-pos]); err != nil {
			return fmt.Errorf("store: padding before %q: %w", sec.tag, err)
		}
		if ent, ok := reuse[sec.tag]; ok {
			if err := spliceSection(bw, prevFile, ent, scratch); err != nil {
				return fmt.Errorf("store: splicing section %q from previous snapshot: %w", sec.tag, err)
			}
			pos = sec.off + sec.size
			continue
		}
		sink := &v2sink{w: bw, crc: crc32.NewIEEE(), scratch: scratch}
		sec.emit(sink)
		if sink.err != nil {
			return fmt.Errorf("store: writing section %q: %w", sec.tag, sink.err)
		}
		if sink.crc.Sum32() != sec.crc {
			return fmt.Errorf("store: internal error: section %q bytes changed between passes", sec.tag)
		}
		pos = sec.off + sec.size
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("store: flushing snapshot: %w", err)
	}
	return nil
}

// v2Entry is one parsed section-table entry.
type v2Entry struct {
	tag  string
	off  uint64
	size uint64
	crc  uint32
}

// parseV2Table validates the v2 header+table bytes (table CRC, entry
// bounds, 64-byte alignment, ascending non-overlapping offsets) and
// returns the entries. size is the total input size when known (> 0).
func parseV2Table(hdr, table []byte, size uint64) ([]v2Entry, error) {
	count := binary.LittleEndian.Uint64(hdr[8:])
	wantCRC := binary.LittleEndian.Uint64(hdr[16:])
	if count == 0 || count > maxV2Entries {
		return nil, fmt.Errorf("store: v2 snapshot claims %d sections", count)
	}
	if uint64(len(table)) != count*v2EntryLen {
		return nil, fmt.Errorf("store: v2 section table truncated")
	}
	if got := uint64(crc32.ChecksumIEEE(table)); got != wantCRC {
		return nil, fmt.Errorf("store: v2 section table checksum mismatch (%08x, stored %08x)", got, wantCRC)
	}
	entries := make([]v2Entry, count)
	end := alignUp(uint64(v2HeaderLen) + count*v2EntryLen)
	for i := range entries {
		e := table[v2EntryLen*i:]
		entries[i] = v2Entry{
			tag:  string(e[:4]),
			off:  binary.LittleEndian.Uint64(e[8:]),
			size: binary.LittleEndian.Uint64(e[16:]),
			crc:  binary.LittleEndian.Uint32(e[24:]),
		}
		ent := &entries[i]
		if ent.size > maxSectionBytes || (size > 0 && ent.size > size) {
			return nil, fmt.Errorf("store: section %q claims %d payload bytes", ent.tag, ent.size)
		}
		if ent.off%v2Align != 0 {
			return nil, fmt.Errorf("store: section %q offset %d is not %d-byte aligned", ent.tag, ent.off, v2Align)
		}
		if ent.off < end {
			return nil, fmt.Errorf("store: section %q overlaps the preceding section", ent.tag)
		}
		end = alignUp(ent.off + ent.size)
		if end < ent.off { // overflow
			return nil, fmt.Errorf("store: section %q extends past the addressable range", ent.tag)
		}
		if size > 0 && ent.off+ent.size > size {
			return nil, fmt.Errorf("store: section %q extends past the snapshot end", ent.tag)
		}
	}
	return entries, nil
}

// decodeV2 is the copying v2 reader: it streams the file in table order,
// verifies every payload CRC, and builds a fully heap-owned model — the
// path Load/LoadFile use so non-mmap callers (and big-endian hosts) read
// v2 snapshots with the same guarantees as v1.
func decodeV2(br *bufio.Reader, limit uint64) (*core.Model, error) {
	head := make([]byte, v2HeaderLen)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("store: reading v2 header: %w", err)
	}
	if string(head[:len(magicV2)]) != magicV2 {
		return nil, fmt.Errorf("store: not a v2 CPD snapshot")
	}
	count := binary.LittleEndian.Uint64(head[8:])
	if count == 0 || count > maxV2Entries {
		return nil, fmt.Errorf("store: v2 snapshot claims %d sections", count)
	}
	table := make([]byte, count*v2EntryLen)
	if _, err := io.ReadFull(br, table); err != nil {
		return nil, fmt.Errorf("store: reading v2 section table: %w", err)
	}
	entries, err := parseV2Table(head, table, limit)
	if err != nil {
		return nil, err
	}
	m := &core.Model{}
	var seenDims bool
	pos := uint64(v2HeaderLen) + count*v2EntryLen
	d := &decoder{r: br, crc: crc32.NewIEEE(), scratch: make([]byte, 1<<15)}
	for _, ent := range entries {
		if ent.off < pos {
			return nil, fmt.Errorf("store: section %q out of order", ent.tag)
		}
		if _, err := io.CopyN(io.Discard, br, int64(ent.off-pos)); err != nil {
			return nil, fmt.Errorf("store: snapshot truncated before section %q", ent.tag)
		}
		d.crc.Reset()
		if err := applyV2Section(m, d, ent, &seenDims); err != nil {
			return nil, err
		}
		if d.err != nil {
			return nil, fmt.Errorf("store: section %q: %w", ent.tag, d.err)
		}
		if got := d.crc.Sum32(); got != ent.crc {
			return nil, fmt.Errorf("store: section %q: checksum mismatch (payload %08x, stored %08x)", ent.tag, got, ent.crc)
		}
		pos = ent.off + ent.size
	}
	if !seenDims {
		return nil, fmt.Errorf("store: snapshot is missing the dimension section")
	}
	if m.Pi == nil || m.Theta == nil || m.Phi == nil || m.Eta == nil {
		return nil, fmt.Errorf("store: snapshot is missing parameter blocks")
	}
	if err := validateShapes(m); err != nil {
		return nil, err
	}
	m.Rehydrate()
	return m, nil
}

// applyV2Section streams one section payload into the model through the
// shared decoder (fixed scratch buffer, running CRC) — the copy path
// never materializes a whole section in memory, matching v1's streaming
// profile.
func applyV2Section(m *core.Model, d *decoder, ent v2Entry, seenDims *bool) error {
	tag := ent.tag
	fail := func(format string, args ...any) error {
		return fmt.Errorf("store: section %q: "+format, append([]any{tag}, args...)...)
	}
	// shape reads the 64-byte shape header and returns n dimension words.
	shape := func(n int) ([]uint64, error) {
		if ent.size < v2ShapeLen {
			return nil, fail("payload shorter than the shape header")
		}
		var hdr [v2ShapeLen]byte
		d.read(hdr[:])
		if d.err != nil {
			return nil, nil
		}
		dims := make([]uint64, n)
		for i := range dims {
			dims[i] = binary.LittleEndian.Uint64(hdr[8*i:])
		}
		return dims, nil
	}
	dense := func(dst **sparse.Dense) error {
		dims, err := shape(2)
		if err != nil || d.err != nil {
			return err
		}
		rows, cols := int(int64(dims[0])), int(int64(dims[1]))
		if rows < 0 || cols < 0 || rows > maxDim || cols > maxDim ||
			ent.size != v2ShapeLen+8*dims[0]*dims[1] {
			return fail("matrix header %dx%d disagrees with section length %d", rows, cols, ent.size)
		}
		mat := sparse.NewDense(rows, cols)
		d.floats(mat.Data)
		*dst = mat
		return nil
	}
	switch tag {
	case tagConfig:
		buf, err := d.take(ent.size)
		if err == nil {
			err = json.Unmarshal(buf, &m.Cfg)
		}
		if err != nil {
			return fail("%v", err)
		}
	case tagDims:
		if ent.size != 4*8 {
			return fail("has length %d, want 32", ent.size)
		}
		m.NumUsers = int(int64(d.u64()))
		m.NumWords = int(int64(d.u64()))
		m.NumBuckets = int(int64(d.u64()))
		m.NumAttrs = int(int64(d.u64()))
		*seenDims = true
	case tagPi:
		return dense(&m.Pi)
	case tagTheta:
		return dense(&m.Theta)
	case tagPhi:
		return dense(&m.Phi)
	case tagPop:
		return dense(&m.PopFreq)
	case tagXi:
		return dense(&m.Xi)
	case tagEta:
		dims, err := shape(3)
		if err != nil || d.err != nil {
			return err
		}
		d1, d2, d3 := int(int64(dims[0])), int(int64(dims[1])), int(int64(dims[2]))
		if d1 < 0 || d2 < 0 || d3 < 0 || d1 > maxDim || d2 > maxDim || d3 > maxDim ||
			dims[0]*dims[1] > maxSectionBytes/8 ||
			ent.size != v2ShapeLen+8*dims[0]*dims[1]*dims[2] {
			return fail("tensor header %dx%dx%d disagrees with section length %d", d1, d2, d3, ent.size)
		}
		t := sparse.NewTensor3(d1, d2, d3)
		d.floats(t.Data)
		m.Eta = t
	case tagNu:
		dims, err := shape(1)
		if err != nil || d.err != nil {
			return err
		}
		if dims[0] > maxSectionBytes/8 || ent.size != v2ShapeLen+8*dims[0] {
			return fail("slice header %d disagrees with section length %d", dims[0], ent.size)
		}
		if dims[0] > 0 {
			m.Nu = make([]float64, dims[0])
			d.floats(m.Nu)
		}
	case tagDocC, tagDocZ:
		dims, err := shape(1)
		if err != nil || d.err != nil {
			return err
		}
		n := dims[0]
		if n > maxSectionBytes/4 || ent.size != v2ShapeLen+4*n {
			return fail("slice header %d disagrees with section length %d", n, ent.size)
		}
		var xs []int32
		if n > 0 {
			xs = make([]int32, n)
			d.int32sInto(xs)
		}
		if tag == tagDocC {
			m.DocCommunity = xs
		} else {
			m.DocTopic = xs
		}
	case tagDocB:
		dims, err := shape(1)
		if err != nil || d.err != nil {
			return err
		}
		n := dims[0]
		if n > maxSectionBytes/8 || ent.size != v2ShapeLen+8*n {
			return fail("slice header %d disagrees with section length %d", n, ent.size)
		}
		if n > 0 {
			m.DocBucket = make([]int, n)
			d.int64sIntoInts(m.DocBucket)
		}
	default:
		// Forward compatibility: unknown sections are skipped, their CRC
		// still verified by the caller.
		d.discard(ent.size)
	}
	return nil
}

// SaveV2 writes m to path as a v2 (mmap-ready) snapshot, with the same
// atomic, crash-safe rename discipline as Save.
func SaveV2(path string, m *core.Model) error {
	return saveAtomic(path, func(w io.Writer) error { return EncodeV2(w, m) })
}
