//go:build !unix

package store

// Non-unix fallback: no kernel mapping — the file is read into 8-byte
// aligned heap memory, which supports the same in-place aliasing (Open
// still works, MappedModel.Mapped reports false).
func mapFile(path string) ([]byte, bool, error) {
	data, err := readAligned(path)
	return data, false, err
}

func unmapFile(data []byte) error { return nil }
