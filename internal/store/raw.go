package store

// Raw v2 section access: the layer the snapshot sharder is built on.
//
// A v2 file is a section table plus independently CRC'd payloads, so a
// tool that rearranges sections between files (internal/shard's
// splitter/joiner) never needs to understand payload semantics — it
// slices and concatenates payload bytes and re-emits them through the
// same deterministic layout SaveV2 uses. This file exposes that level:
// open a v2 file as tagged payload byte slices (zero-copy, mmap-backed),
// write tagged payloads back out byte-identically to what the model
// encoder would produce, and assemble a core.Model from an arbitrary
// set of sections (the shard-group open path merges global and shard
// file sections before assembly).

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"

	"repro/internal/core"
)

// Exported v2 section tags, for callers (internal/shard, tooling) that
// select, save or splice section subsets. Values match the on-disk tags.
const (
	TagConfig = tagConfig
	TagDims   = tagDims
	TagPi     = tagPi
	TagTheta  = tagTheta
	TagPhi    = tagPhi
	TagEta    = tagEta
	TagNu     = tagNu
	TagPop    = tagPop
	TagXi     = tagXi
	TagDocC   = tagDocC
	TagDocZ   = tagDocZ
	TagDocB   = tagDocB
)

// RawSection is one tagged v2 payload, semantics-free. For sections read
// from an open RawFile the payload aliases the file mapping and must not
// be used after the RawFile is closed.
type RawSection struct {
	Tag     string
	Payload []byte
}

// RawFile is a v2 snapshot opened at the section level: the table is
// checksum-verified and each payload is exposed as a byte slice aliasing
// the read-only mapping (payload CRCs are NOT verified here, matching
// Open; run VerifyV2File first when integrity matters).
type RawFile struct {
	path      string
	data      []byte
	mapped    bool
	sections  []RawSection
	closeOnce sync.Once
	closeErr  error
}

// OpenRawFile maps the v2 snapshot at path and parses its section table.
func OpenRawFile(path string) (*RawFile, error) {
	data, mapped, err := mapFile(path)
	if err != nil {
		return nil, fmt.Errorf("store: mapping %s: %w", path, err)
	}
	rf := &RawFile{path: path, data: data, mapped: mapped}
	if err := rf.parse(); err != nil {
		rf.Close()
		return nil, fmt.Errorf("store: opening %s: %w", path, err)
	}
	return rf, nil
}

func (rf *RawFile) parse() error {
	data := rf.data
	if len(data) < v2HeaderLen {
		return fmt.Errorf("file shorter than a v2 header")
	}
	if string(data[:len(magicV2)]) != magicV2 {
		return fmt.Errorf("not a v2 CPD snapshot")
	}
	count := binary.LittleEndian.Uint64(data[8:])
	if count == 0 || count > maxV2Entries {
		return fmt.Errorf("v2 snapshot claims %d sections", count)
	}
	tableEnd := uint64(v2HeaderLen) + count*v2EntryLen
	if tableEnd > uint64(len(data)) {
		return fmt.Errorf("v2 section table truncated")
	}
	entries, err := parseV2Table(data[:v2HeaderLen], data[v2HeaderLen:tableEnd], uint64(len(data)))
	if err != nil {
		return err
	}
	rf.sections = make([]RawSection, len(entries))
	for i, ent := range entries {
		rf.sections[i] = RawSection{Tag: ent.tag, Payload: data[ent.off : ent.off+ent.size]}
	}
	return nil
}

// Sections returns the file's sections in table order. The payloads alias
// the mapping.
func (rf *RawFile) Sections() []RawSection { return rf.sections }

// Section returns the payload of the named section, or false.
func (rf *RawFile) Section(tag string) ([]byte, bool) {
	for _, s := range rf.sections {
		if s.Tag == tag {
			return s.Payload, true
		}
	}
	return nil, false
}

// Path returns the file the sections were opened from.
func (rf *RawFile) Path() string { return rf.path }

// SizeBytes returns the size of the mapping backing the sections.
func (rf *RawFile) SizeBytes() int64 { return int64(len(rf.data)) }

// Mapped reports whether the sections alias a real kernel mapping
// (false on the aligned-copy fallback platforms).
func (rf *RawFile) Mapped() bool { return rf.mapped }

// Close releases the mapping; no payload slice may be touched afterwards.
func (rf *RawFile) Close() error {
	rf.closeOnce.Do(func() {
		data := rf.data
		rf.data, rf.sections = nil, nil
		if rf.mapped && data != nil {
			rf.closeErr = unmapFile(data)
		}
	})
	return rf.closeErr
}

// EncodeRawSections writes secs as a v2 snapshot in the given order,
// using the exact layout the model encoder produces (aligned offsets,
// table CRC, per-payload CRCs). Re-encoding the sections of an opened v2
// file reproduces that file byte for byte — the shard joiner's
// byte-identity guarantee rests on this.
func EncodeRawSections(w io.Writer, secs []RawSection) error {
	if len(secs) == 0 {
		return fmt.Errorf("store: no sections to encode")
	}
	if len(secs) > maxV2Entries {
		return fmt.Errorf("store: %d sections exceed the format's %d-section limit", len(secs), maxV2Entries)
	}
	plan := make([]*v2section, len(secs))
	for i := range secs {
		sec := secs[i]
		if len(sec.Tag) != 4 {
			return fmt.Errorf("store: section tag %q is not 4 bytes", sec.Tag)
		}
		if uint64(len(sec.Payload)) > maxSectionBytes {
			return fmt.Errorf("store: section %q needs %d payload bytes, above the format's %d-byte section limit",
				sec.Tag, len(sec.Payload), uint64(maxSectionBytes))
		}
		plan[i] = &v2section{
			tag:  sec.Tag,
			size: uint64(len(sec.Payload)),
			emit: func(s *v2sink) { s.raw(sec.Payload) },
		}
	}
	return encodeV2Plan(w, plan, nil, nil)
}

// WriteRawFile writes secs to path as a v2 snapshot with the usual
// atomic rename discipline.
func WriteRawFile(path string, secs []RawSection) error {
	return saveAtomic(path, func(w io.Writer) error { return EncodeRawSections(w, secs) })
}

// AssembleRawModel builds a model from an arbitrary section set (e.g.
// the merged sections of a shard group's global and user-shard files).
// On little-endian hosts numeric payloads are aliased in place, exactly
// as Open does; the payload slices must stay valid for the model's
// lifetime. Shape checks and cache rehydration run as for any load.
func AssembleRawModel(secs []RawSection) (*core.Model, error) {
	if !nativeLittleEndian() {
		// Big-endian host: round-trip through the copying decoder, which
		// converts byte order while verifying the re-emitted CRCs.
		var buf bytes.Buffer
		if err := EncodeRawSections(&buf, secs); err != nil {
			return nil, err
		}
		return decodeV2(bufio.NewReader(bytes.NewReader(buf.Bytes())), uint64(buf.Len()))
	}
	m := &core.Model{}
	var seenDims bool
	for _, sec := range secs {
		if err := aliasV2Section(m, sec.Tag, sec.Payload, &seenDims); err != nil {
			return nil, err
		}
	}
	if !seenDims {
		return nil, fmt.Errorf("store: section set is missing the dimension section")
	}
	if m.Pi == nil || m.Theta == nil || m.Phi == nil || m.Eta == nil {
		return nil, fmt.Errorf("store: section set is missing parameter blocks")
	}
	if err := m.CheckShapes(); err != nil {
		return nil, err
	}
	m.Rehydrate()
	return m, nil
}

// SectionSum is one section's identity in a file: tag, payload size and
// payload CRC — what a shard manifest records per file so a fetcher can
// cross-check a download against the manifest without re-reading the
// publisher's copy.
type SectionSum struct {
	Tag  string `json:"tag"`
	Size uint64 `json:"size"`
	CRC  uint32 `json:"crc"`
}

// FileSections reads only the header and section table of the v2 file at
// path and returns each section's identity plus the total file size —
// O(1) in the model size.
func FileSections(path string) ([]SectionSum, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, 0, err
	}
	hdr := make([]byte, v2HeaderLen)
	if _, err := io.ReadFull(f, hdr); err != nil {
		return nil, 0, fmt.Errorf("store: %s: reading v2 header: %w", path, err)
	}
	if string(hdr[:len(magicV2)]) != magicV2 {
		return nil, 0, fmt.Errorf("store: %s: not a v2 CPD snapshot", path)
	}
	count := binary.LittleEndian.Uint64(hdr[8:])
	if count == 0 || count > maxV2Entries {
		return nil, 0, fmt.Errorf("store: %s: v2 snapshot claims %d sections", path, count)
	}
	table := make([]byte, count*v2EntryLen)
	if _, err := io.ReadFull(f, table); err != nil {
		return nil, 0, fmt.Errorf("store: %s: reading v2 section table: %w", path, err)
	}
	entries, err := parseV2Table(hdr, table, uint64(fi.Size()))
	if err != nil {
		return nil, 0, fmt.Errorf("store: %s: %w", path, err)
	}
	sums := make([]SectionSum, len(entries))
	for i, ent := range entries {
		sums[i] = SectionSum{Tag: ent.tag, Size: ent.size, CRC: ent.crc}
	}
	return sums, fi.Size(), nil
}

// verifiedSidecar is the cached verification receipt VerifyV2FileCached
// writes next to a snapshot: if the file's size, mtime and table CRC
// still match, the O(model) payload-CRC walk is skipped on the next
// startup.
type verifiedSidecar struct {
	Size          int64  `json:"size"`
	MtimeUnixNano int64  `json:"mtime_unix_nano"`
	TableCRC      uint64 `json:"table_crc"`
}

// VerifiedSidecarSuffix is appended to a snapshot path to name its
// verification receipt.
const VerifiedSidecarSuffix = ".verified"

// readTableCRC returns the stored table CRC from a v2 file's header.
func readTableCRC(path string) (uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	hdr := make([]byte, v2HeaderLen)
	if _, err := io.ReadFull(f, hdr); err != nil {
		return 0, err
	}
	if string(hdr[:len(magicV2)]) != magicV2 {
		return 0, fmt.Errorf("store: %s: not a v2 CPD snapshot", path)
	}
	return binary.LittleEndian.Uint64(hdr[16:]), nil
}

// VerifyV2FileCached is VerifyV2File with a persistent receipt: a
// successful full verification writes a ".verified" sidecar recording
// the file's size, mtime and table CRC, and a later call whose stat and
// header still match returns without re-walking the payloads. Any
// mismatch (or unreadable sidecar) falls back to the full walk and
// refreshes the receipt. Sidecar write failures are ignored — the
// receipt is an optimization, never a correctness dependency.
func VerifyV2FileCached(path string) error {
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	side := path + VerifiedSidecarSuffix
	crc, crcErr := readTableCRC(path)
	if crcErr == nil {
		if raw, err := os.ReadFile(side); err == nil {
			var sc verifiedSidecar
			if json.Unmarshal(raw, &sc) == nil &&
				sc.Size == fi.Size() && sc.MtimeUnixNano == fi.ModTime().UnixNano() && sc.TableCRC == crc {
				return nil
			}
		}
	}
	if err := VerifyV2File(path); err != nil {
		os.Remove(side)
		return err
	}
	if crcErr != nil {
		return nil // verified, but no receipt to record
	}
	if raw, err := json.Marshal(verifiedSidecar{
		Size:          fi.Size(),
		MtimeUnixNano: fi.ModTime().UnixNano(),
		TableCRC:      crc,
	}); err == nil {
		_ = os.WriteFile(side, raw, 0o644)
	}
	return nil
}

// tagSet builds the subset-plan filter from a tag list.
func tagSet(tags []string) map[string]bool {
	want := make(map[string]bool, len(tags))
	for _, t := range tags {
		want[t] = true
	}
	return want
}

// SaveV2Subset writes only the named sections of m to path as a v2
// snapshot (canonical section order, independent of the order of tags).
// Requested matrix blocks must be non-nil, except POPF/XI which are
// skipped when absent, matching SaveV2.
func SaveV2Subset(path string, m *core.Model, tags []string) error {
	plan, err := v2PlanSubset(m, tagSet(tags))
	if err != nil {
		return err
	}
	return saveAtomic(path, func(w io.Writer) error { return encodeV2Plan(w, plan, nil, nil) })
}

// SaveV2SubsetReusing is SaveV2Subset with SaveV2Reusing's section-splice
// optimization: sections whose backing arrays are identical to the
// previous save described by prev are byte-copied from that file instead
// of re-encoded. It returns the manifest for the new file. The output is
// byte-identical to SaveV2Subset with the same arguments.
func SaveV2SubsetReusing(path string, m *core.Model, tags []string, prev *SectionManifest) (*SectionManifest, error) {
	plan, err := v2PlanSubset(m, tagSet(tags))
	if err != nil {
		return nil, err
	}
	reuse := matchReusable(plan, prev)
	if len(reuse) > 0 {
		prevFile, err := os.Open(prev.path)
		if err == nil {
			err = saveAtomic(path, func(w io.Writer) error {
				return encodeV2Plan(w, plan, reuse, prevFile)
			})
			prevFile.Close()
			if err == nil {
				return manifestFor(path, plan, len(reuse)), nil
			}
		}
		// Reuse failed (missing/corrupt previous file): full encode below.
	}
	if err := saveAtomic(path, func(w io.Writer) error {
		return encodeV2Plan(w, plan, nil, nil)
	}); err != nil {
		return nil, err
	}
	return manifestFor(path, plan, 0), nil
}
