package store

import (
	"os"
	"path/filepath"
	"testing"
)

func TestParseGenName(t *testing.T) {
	cases := []struct {
		name string
		gen  uint64
		ok   bool
	}{
		{"gen-00000001.v2.snap", 1, true},
		{"gen-00012345.v2.snap", 12345, true},
		{"gen-99999999.v2.snap", 99999999, true},
		{"gen-1.v2.snap", 0, false},         // unpadded
		{"gen-00000000.v2.snap", 0, false},  // generation zero never exists
		{"gen-00000001.v2.snap~", 0, false}, // trailing junk
		{"gen-00000001.v2.snap.tmp", 0, false},
		{"checkpoint.bin", 0, false},
		{"events.wal", 0, false},
		{"", 0, false},
	}
	for _, c := range cases {
		gen, ok := ParseGenName(c.name)
		if ok != c.ok || gen != c.gen {
			t.Errorf("ParseGenName(%q) = %d, %v; want %d, %v", c.name, gen, ok, c.gen, c.ok)
		}
	}
	if got := GenPath("d", 7); got != filepath.Join("d", "gen-00000007.v2.snap") {
		t.Errorf("GenPath = %q", got)
	}
}

func TestScanGenerations(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{
		"gen-00000003.v2.snap", "gen-00000001.v2.snap", "gen-00000010.v2.snap",
		"events.wal", "gen-bogus.v2.snap",
	} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	files, err := ScanGenerations(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{1, 3, 10}
	if len(files) != len(want) {
		t.Fatalf("scanned %d generation files, want %d: %+v", len(files), len(want), files)
	}
	for i, f := range files {
		if f.Generation != want[i] || f.Size != 1 {
			t.Errorf("files[%d] = %+v, want generation %d size 1", i, f, want[i])
		}
	}
	// A missing directory is an empty listing, not an error.
	if files, err := ScanGenerations(filepath.Join(dir, "no-such")); err != nil || files != nil {
		t.Errorf("missing dir: files=%v err=%v", files, err)
	}
}

// TestVerifyV2File pins the distribution-time integrity check: a valid
// snapshot passes, and a single flipped payload byte — which the mapped
// opener would accept by design — is caught.
func TestVerifyV2File(t *testing.T) {
	m := testModel(12, 4, 3, 30, 99)
	path := filepath.Join(t.TempDir(), "m.v2.snap")
	if err := SaveV2(path, m); err != nil {
		t.Fatal(err)
	}
	if err := VerifyV2File(path); err != nil {
		t.Fatalf("freshly saved snapshot fails verification: %v", err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte in the last payload region (well past the table).
	corrupt := append([]byte(nil), data...)
	corrupt[len(corrupt)-8] ^= 0xFF
	bad := filepath.Join(t.TempDir(), "bad.v2.snap")
	if err := os.WriteFile(bad, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := VerifyV2File(bad); err == nil {
		t.Fatal("corrupted payload passed full verification")
	}
	// The mapped opener accepts the same bytes (payload CRCs skipped by
	// design) — the contrast VerifyV2File exists for.
	if mm, err := Open(bad); err == nil {
		mm.Close()
	}

	// Truncated file: rejected, not panicking.
	if err := os.WriteFile(bad, data[:10], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := VerifyV2File(bad); err == nil {
		t.Fatal("truncated snapshot passed verification")
	}
}
