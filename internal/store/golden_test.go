package store

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
)

// updateGolden regenerates the committed snapshot fixtures. Run after a
// DELIBERATE format change only — the whole point of the fixtures is that
// old files keep loading byte-identically through new code:
//
//	go test ./internal/store -run TestGoldenFixtures -update-golden
var updateGolden = flag.Bool("update-golden", false, "rewrite the committed snapshot fixtures")

// goldenModel is the fixed model the committed fixtures encode. Its seed
// and shape must never change (that would amount to rewriting history).
func goldenModel() *core.Model {
	m := testModel(14, 4, 5, 48, 424242)
	attachAttrs(m, 6, 434343)
	return m
}

func goldenPath(name string) string { return filepath.Join("testdata", name) }

// TestGoldenFixtures pins on-disk format compatibility: the committed v1,
// v2 and JSON encodings of a fixed model must keep decoding to
// bit-identical parameter blocks through every future change to the
// loading code. A failure here means a break of the storage contract, not
// a test to "fix" by re-pinning.
func TestGoldenFixtures(t *testing.T) {
	m := goldenModel()
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := Save(goldenPath("golden-v1.snap"), m); err != nil {
			t.Fatal(err)
		}
		if err := SaveV2(goldenPath("golden-v2.snap"), m); err != nil {
			t.Fatal(err)
		}
		f, err := os.Create(goldenPath("golden.json"))
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Save(f); err != nil {
			f.Close()
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		t.Log("golden snapshot fixtures rewritten")
		return
	}
	for _, name := range []string{"golden-v1.snap", "golden-v2.snap", "golden.json"} {
		t.Run(name, func(t *testing.T) {
			got, err := LoadFile(goldenPath(name))
			if err != nil {
				t.Fatalf("committed %s fixture no longer loads: %v", name, err)
			}
			modelsEquivalent(t, m, got)
		})
	}
	t.Run("golden-v2.snap/mapped", func(t *testing.T) {
		mm, err := Open(goldenPath("golden-v2.snap"))
		if err != nil {
			t.Fatalf("committed v2 fixture no longer opens mapped: %v", err)
		}
		defer mm.Close()
		modelsEquivalent(t, m, mm.Model)
	})
}
