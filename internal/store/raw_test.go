package store

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestRawFileRoundTrip(t *testing.T) {
	src := filepath.Join("testdata", "golden-v2.snap")
	rf, err := OpenRawFile(src)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	if rf.SizeBytes() <= 0 {
		t.Fatal("raw file reports no bytes")
	}
	// Re-encoding the sections verbatim reproduces the file bit-for-bit.
	var buf bytes.Buffer
	if err := EncodeRawSections(&buf, rf.Sections()); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("re-encoded sections differ from the source file (%d vs %d bytes)", buf.Len(), len(want))
	}
	// AssembleRawModel over every section reproduces the decoded model.
	m, err := AssembleRawModel(rf.Sections())
	if err != nil {
		t.Fatal(err)
	}
	full, err := Open(src)
	if err != nil {
		t.Fatal(err)
	}
	modelsEquivalent(t, full.Model, m)
	full.Close()
}

func TestSaveV2SubsetAndFileSections(t *testing.T) {
	m := testModel(30, 5, 3, 60, 7)
	dir := t.TempDir()
	path := filepath.Join(dir, "subset.v2.snap")
	tags := []string{TagConfig, TagDims, TagTheta, TagPhi, TagEta, TagNu, TagPop, TagXi}
	if err := SaveV2Subset(path, m, tags); err != nil {
		t.Fatal(err)
	}
	rf, err := OpenRawFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	// POPF present (model has buckets), XI absent (nil): subset saves skip
	// nil optional sections rather than failing.
	if _, ok := rf.Section(TagPop); !ok {
		t.Fatal("subset file is missing the popularity section")
	}
	if _, ok := rf.Section(TagXi); ok {
		t.Fatal("subset file must not contain the nil attribute section")
	}
	if _, ok := rf.Section(TagPi); ok {
		t.Fatal("subset file must not contain unrequested sections")
	}
	// FileSections reads the table without walking payloads and agrees
	// with the mapped view.
	sums, size, err := FileSections(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi, _ := os.Stat(path); fi.Size() != size {
		t.Fatalf("FileSections size %d, stat %d", size, fi.Size())
	}
	if len(sums) != len(rf.Sections()) {
		t.Fatalf("FileSections found %d sections, mapped view has %d", len(sums), len(rf.Sections()))
	}
	for i, s := range rf.Sections() {
		if sums[i].Tag != s.Tag || sums[i].Size != uint64(len(s.Payload)) {
			t.Fatalf("section %d mismatch: %+v vs tag %q len %d", i, sums[i], s.Tag, len(s.Payload))
		}
	}
	// Requesting a section whose block is nil is an error.
	if err := SaveV2Subset(filepath.Join(dir, "bad.snap"), m, []string{TagXi}); err == nil {
		t.Fatal("requesting a nil block must fail")
	}
}

func TestSaveV2SubsetReusingMatchesSubset(t *testing.T) {
	m := testModel(30, 5, 3, 60, 7)
	dir := t.TempDir()
	tags := []string{TagConfig, TagDims, TagTheta, TagPhi, TagEta, TagNu, TagPop}
	plain := filepath.Join(dir, "plain.snap")
	if err := SaveV2Subset(plain, m, tags); err != nil {
		t.Fatal(err)
	}
	first := filepath.Join(dir, "first.snap")
	man, err := SaveV2SubsetReusing(first, m, tags, nil)
	if err != nil {
		t.Fatal(err)
	}
	second := filepath.Join(dir, "second.snap")
	if _, err := SaveV2SubsetReusing(second, m, tags, man); err != nil {
		t.Fatal(err)
	}
	want, _ := os.ReadFile(plain)
	for _, p := range []string{first, second} {
		got, _ := os.ReadFile(p)
		if !bytes.Equal(got, want) {
			t.Fatalf("%s differs from the plain subset save", p)
		}
	}
}

func TestVerifyV2FileCached(t *testing.T) {
	m := testModel(20, 4, 3, 40, 11)
	path := filepath.Join(t.TempDir(), "gen.snap")
	if err := SaveV2(path, m); err != nil {
		t.Fatal(err)
	}
	sidecar := path + VerifiedSidecarSuffix
	if err := VerifyV2FileCached(path); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(sidecar); err != nil {
		t.Fatalf("first verify must write the sidecar: %v", err)
	}
	// A matching sidecar short-circuits the payload walk — corrupting a
	// payload byte while keeping size+mtime is NOT caught (that is the
	// point of the cache)...
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := os.ReadFile(path)
	raw[len(raw)-1] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(path, fi.ModTime(), fi.ModTime()); err != nil {
		t.Fatal(err)
	}
	if err := VerifyV2FileCached(path); err != nil {
		t.Fatalf("matching sidecar should skip the walk: %v", err)
	}
	// ...but any size or mtime change forces a real walk, which fails and
	// removes the sidecar.
	if err := os.Chtimes(path, fi.ModTime().Add(1), fi.ModTime().Add(1)); err != nil {
		t.Fatal(err)
	}
	if err := VerifyV2FileCached(path); err == nil {
		t.Fatal("stale sidecar must force a walk that catches the corruption")
	}
	if _, err := os.Stat(sidecar); !os.IsNotExist(err) {
		t.Fatal("failed verify must remove the sidecar")
	}
}
