package store

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/sparse"
)

// reuseModel is the shared small model for the reuse tests.
func reuseModel() *core.Model { return testModel(40, 6, 4, 120, 17) }

// reuseSuccessor builds the streaming publisher's model shape: a fresh
// model value whose per-publish blocks (Pi, doc assignments) are newly
// allocated while the base-model blocks alias the predecessor's arrays —
// the pointer-identity pattern SaveV2Reusing keys on.
func reuseSuccessor(t *testing.T, m *core.Model) *core.Model {
	t.Helper()
	next := *m
	pi := sparse.NewDense(m.Pi.Rows+2, m.Pi.Cols)
	copy(pi.Data, m.Pi.Data)
	for i := m.Pi.Rows * m.Pi.Cols; i < len(pi.Data); i++ {
		pi.Data[i] = 1.0 / float64(m.Pi.Cols)
	}
	next.Pi = pi
	next.NumUsers += 2
	next.DocCommunity = append(append([]int32(nil), m.DocCommunity...), 1)
	next.DocTopic = append(append([]int32(nil), m.DocTopic...), 0)
	next.DocBucket = append(append([]int(nil), m.DocBucket...), 3)
	next.Rehydrate()
	return &next
}

// TestSaveV2ReusingByteIdentical is the core guarantee: a reusing save
// must produce exactly the bytes a full SaveV2 would, while actually
// splicing the aliased base-model sections.
func TestSaveV2ReusingByteIdentical(t *testing.T) {
	m := reuseModel()
	dir := t.TempDir()

	p0 := filepath.Join(dir, "gen0.v2.snap")
	man, err := SaveV2Reusing(p0, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if man.ReusedSections() != 0 {
		t.Fatalf("first save reused %d sections", man.ReusedSections())
	}
	full0, err := os.ReadFile(p0)
	if err != nil {
		t.Fatal(err)
	}
	var enc bytes.Buffer
	if err := EncodeV2(&enc, m); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(full0, enc.Bytes()) {
		t.Fatal("SaveV2Reusing(nil) differs from EncodeV2")
	}

	next := reuseSuccessor(t, m)
	p1 := filepath.Join(dir, "gen1.v2.snap")
	man1, err := SaveV2Reusing(p1, next, man)
	if err != nil {
		t.Fatal(err)
	}
	if man1.ReusedSections() == 0 {
		t.Fatal("second save reused no sections despite aliased base blocks")
	}
	got, err := os.ReadFile(p1)
	if err != nil {
		t.Fatal(err)
	}
	enc.Reset()
	if err := EncodeV2(&enc, next); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, enc.Bytes()) {
		t.Fatalf("reusing save is not byte-identical to a full encode (%d vs %d bytes)", len(got), enc.Len())
	}

	// The reused file must round-trip through both readers.
	lm, err := LoadFile(p1)
	if err != nil {
		t.Fatal(err)
	}
	if lm.NumUsers != next.NumUsers || len(lm.DocCommunity) != len(next.DocCommunity) {
		t.Fatalf("loaded model shape mismatch")
	}
	mm, err := Open(p1)
	if err != nil {
		t.Fatal(err)
	}
	mm.Close()
}

// TestSaveV2ReusingChained: reuse must keep working across a chain of
// generations, each manifest describing the previous file.
func TestSaveV2ReusingChained(t *testing.T) {
	m := reuseModel()
	dir := t.TempDir()
	man, err := SaveV2Reusing(filepath.Join(dir, "gen0.v2.snap"), m, nil)
	if err != nil {
		t.Fatal(err)
	}
	cur := m
	for gen := 1; gen <= 4; gen++ {
		cur = reuseSuccessor(t, cur)
		path := filepath.Join(dir, "gen.v2.snap")
		man, err = SaveV2Reusing(path, cur, man)
		if err != nil {
			t.Fatal(err)
		}
		if man.ReusedSections() == 0 {
			t.Fatalf("gen %d reused nothing", gen)
		}
		var enc bytes.Buffer
		if err := EncodeV2(&enc, cur); err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, enc.Bytes()) {
			t.Fatalf("gen %d not byte-identical", gen)
		}
	}
}

// TestSaveV2ReusingFallback: a missing or corrupted previous file must
// degrade to a correct full encode, never a failed or wrong save.
func TestSaveV2ReusingFallback(t *testing.T) {
	m := reuseModel()
	dir := t.TempDir()
	p0 := filepath.Join(dir, "gen0.v2.snap")
	man, err := SaveV2Reusing(p0, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	next := reuseSuccessor(t, m)

	t.Run("missing-prev", func(t *testing.T) {
		if err := os.Remove(p0); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, "gen1-missing.v2.snap")
		man1, err := SaveV2Reusing(path, next, man)
		if err != nil {
			t.Fatal(err)
		}
		if man1.ReusedSections() != 0 {
			t.Fatalf("claimed %d reused sections with the previous file gone", man1.ReusedSections())
		}
		var enc bytes.Buffer
		if err := EncodeV2(&enc, next); err != nil {
			t.Fatal(err)
		}
		got, _ := os.ReadFile(path)
		if !bytes.Equal(got, enc.Bytes()) {
			t.Fatal("fallback save not byte-identical to a full encode")
		}
	})

	t.Run("corrupt-prev", func(t *testing.T) {
		// Rewrite gen0, then flip a byte inside a payload that would be
		// spliced (the previous file's CRC check must catch it).
		man, err = SaveV2Reusing(p0, m, nil)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := os.ReadFile(p0)
		if err != nil {
			t.Fatal(err)
		}
		raw[len(raw)/2] ^= 0xFF
		if err := os.WriteFile(p0, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, "gen1-corrupt.v2.snap")
		man1, err := SaveV2Reusing(path, next, man)
		if err != nil {
			t.Fatal(err)
		}
		if man1.ReusedSections() != 0 {
			t.Fatalf("claimed %d reused sections from a corrupt predecessor", man1.ReusedSections())
		}
		var enc bytes.Buffer
		if err := EncodeV2(&enc, next); err != nil {
			t.Fatal(err)
		}
		got, _ := os.ReadFile(path)
		if !bytes.Equal(got, enc.Bytes()) {
			t.Fatal("fallback save not byte-identical to a full encode")
		}
	})
}
