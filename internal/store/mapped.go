package store

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"unsafe"

	"repro/internal/core"
	"repro/internal/sparse"
)

// MappedModel is a core.Model whose big numeric blocks alias a read-only
// memory mapping of a v2 snapshot file. Opening one is O(1) in the model
// size — no float is copied — and the resident cost of the parameter
// matrices is whatever pages queries actually touch.
//
// Lifetime: the model's matrices are views into the mapping, so the model
// MUST NOT be used after Close — a dereference into an unmapped page is a
// fault, not an error. Serving layers therefore tie Close to a reference
// count (serve.Snapshot): the mapping is released only when the last
// in-flight query drops its reference. The model is read-only; mutating a
// parameter block through it faults on a true mapping.
//
// The prediction caches (Rehydrate) still live on the heap — they are
// derived data, sized O(|U| + |Z||C|²), independent of the dominant
// Pi/Phi payloads. HeapBytes reports them; MappedBytes the mapping.
type MappedModel struct {
	Model *core.Model

	path      string
	data      []byte
	mapped    bool // true: data is a real mapping; false: aligned heap copy
	closeOnce sync.Once
	closed    atomic.Bool
	closeErr  error
}

// Open maps the v2 snapshot at path and returns a model whose matrices
// alias the mapping. The section table is checksum-verified; payload bytes
// are used in place and NOT checksummed (see the v2 format doc). On hosts
// without a usable mmap the file is read into aligned memory instead
// (Mapped reports false); on big-endian hosts Open falls back to the
// copying decoder. v1 or JSON files are rejected: callers that want
// format-agnostic loading use LoadFile, which always copies.
func Open(path string) (*MappedModel, error) {
	data, mapped, err := mapFile(path)
	if err != nil {
		return nil, fmt.Errorf("store: mapping %s: %w", path, err)
	}
	mm := &MappedModel{path: path, data: data, mapped: mapped}
	m, err := assembleMapped(data)
	if err != nil {
		mm.Close()
		return nil, fmt.Errorf("store: opening %s: %w", path, err)
	}
	mm.Model = m
	return mm, nil
}

// Close releases the mapping. The model (and every view derived from it)
// must not be touched afterwards. Close is idempotent.
func (mm *MappedModel) Close() error {
	mm.closeOnce.Do(func() {
		data := mm.data
		mm.data = nil
		if mm.mapped && data != nil {
			mm.closeErr = unmapFile(data)
		}
		mm.closed.Store(true)
	})
	return mm.closeErr
}

// Closed reports whether Close has completed (the refcount tests' probe).
func (mm *MappedModel) Closed() bool { return mm.closed.Load() }

// Path returns the snapshot file the model was opened from.
func (mm *MappedModel) Path() string { return mm.path }

// Mapped reports whether the model really aliases a kernel mapping
// (false on the aligned-copy fallback platforms).
func (mm *MappedModel) Mapped() bool { return mm.mapped }

// MappedBytes returns the size of the mapping backing the matrices.
func (mm *MappedModel) MappedBytes() int64 { return int64(len(mm.data)) }

// HeapBytes returns the approximate heap footprint of the model's rebuilt
// prediction caches — the part of a mapped model that is NOT backed by
// the file.
func (mm *MappedModel) HeapBytes() int64 { return mm.Model.CacheBytes() }

// assembleMapped builds a model over the mapping without copying numeric
// payloads. On big-endian hosts it routes through the copying decoder
// (the bytes are little-endian on disk).
func assembleMapped(data []byte) (*core.Model, error) {
	if len(data) < v2HeaderLen {
		return nil, fmt.Errorf("file shorter than a v2 header")
	}
	if string(data[:len(magicV2)]) != magicV2 {
		if bytes.Equal(data[:6], []byte(magicV2[:6])) {
			return nil, fmt.Errorf("snapshot is format version %d; Open requires v2 (retrain or re-save with -format v2, or load with LoadFile)", data[6])
		}
		return nil, fmt.Errorf("not a v2 CPD snapshot")
	}
	if !nativeLittleEndian() {
		return decodeV2(bufio.NewReader(bytes.NewReader(data)), uint64(len(data)))
	}
	count := binary.LittleEndian.Uint64(data[8:])
	if count == 0 || count > maxV2Entries {
		return nil, fmt.Errorf("v2 snapshot claims %d sections", count)
	}
	tableEnd := uint64(v2HeaderLen) + count*v2EntryLen
	if tableEnd > uint64(len(data)) {
		return nil, fmt.Errorf("v2 section table truncated")
	}
	entries, err := parseV2Table(data[:v2HeaderLen], data[v2HeaderLen:tableEnd], uint64(len(data)))
	if err != nil {
		return nil, err
	}
	m := &core.Model{}
	var seenDims bool
	for _, ent := range entries {
		payload := data[ent.off : ent.off+ent.size]
		if err := aliasV2Section(m, ent.tag, payload, &seenDims); err != nil {
			return nil, err
		}
	}
	if !seenDims {
		return nil, fmt.Errorf("snapshot is missing the dimension section")
	}
	if m.Pi == nil || m.Theta == nil || m.Phi == nil || m.Eta == nil {
		return nil, fmt.Errorf("snapshot is missing parameter blocks")
	}
	if err := m.CheckShapes(); err != nil {
		return nil, err
	}
	m.Rehydrate()
	return m, nil
}

// aliasV2Section wires one section into the model, aliasing numeric data
// in place. Only DOCB (int-width on disk vs. platform int) and the two
// small metadata sections are materialized on the heap.
func aliasV2Section(m *core.Model, tag string, payload []byte, seenDims *bool) error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("section %q: "+format, append([]any{tag}, args...)...)
	}
	shape := func(n int) ([]uint64, []byte, error) {
		if len(payload) < v2ShapeLen {
			return nil, nil, fail("payload shorter than the shape header")
		}
		dims := make([]uint64, n)
		for i := range dims {
			dims[i] = binary.LittleEndian.Uint64(payload[8*i:])
		}
		return dims, payload[v2ShapeLen:], nil
	}
	dense := func(dst **sparse.Dense) error {
		dims, data, err := shape(2)
		if err != nil {
			return err
		}
		rows, cols := int(int64(dims[0])), int(int64(dims[1]))
		if rows < 0 || cols < 0 || rows > maxDim || cols > maxDim || uint64(len(data)) != 8*dims[0]*dims[1] {
			return fail("matrix header %dx%d disagrees with %d payload bytes", rows, cols, len(payload))
		}
		*dst = sparse.NewDenseView(rows, cols, aliasFloat64(data))
		return nil
	}
	switch tag {
	case tagConfig:
		if err := json.Unmarshal(payload, &m.Cfg); err != nil {
			return fail("%v", err)
		}
	case tagDims:
		if len(payload) != 4*8 {
			return fail("has length %d, want 32", len(payload))
		}
		m.NumUsers = int(int64(binary.LittleEndian.Uint64(payload)))
		m.NumWords = int(int64(binary.LittleEndian.Uint64(payload[8:])))
		m.NumBuckets = int(int64(binary.LittleEndian.Uint64(payload[16:])))
		m.NumAttrs = int(int64(binary.LittleEndian.Uint64(payload[24:])))
		*seenDims = true
	case tagPi:
		return dense(&m.Pi)
	case tagTheta:
		return dense(&m.Theta)
	case tagPhi:
		return dense(&m.Phi)
	case tagPop:
		return dense(&m.PopFreq)
	case tagXi:
		return dense(&m.Xi)
	case tagEta:
		dims, data, err := shape(3)
		if err != nil {
			return err
		}
		d1, d2, d3 := int(int64(dims[0])), int(int64(dims[1])), int(int64(dims[2]))
		if d1 < 0 || d2 < 0 || d3 < 0 || d1 > maxDim || d2 > maxDim || d3 > maxDim ||
			dims[0]*dims[1] > maxSectionBytes/8 || uint64(len(data)) != 8*dims[0]*dims[1]*dims[2] {
			return fail("tensor header %dx%dx%d disagrees with %d payload bytes", d1, d2, d3, len(payload))
		}
		m.Eta = sparse.NewTensor3View(d1, d2, d3, aliasFloat64(data))
	case tagNu:
		dims, data, err := shape(1)
		if err != nil {
			return err
		}
		if uint64(len(data)) != 8*dims[0] {
			return fail("element data is %d bytes, want %d", len(data), 8*dims[0])
		}
		m.Nu = aliasFloat64(data)
	case tagDocC, tagDocZ:
		dims, data, err := shape(1)
		if err != nil {
			return err
		}
		if uint64(len(data)) != 4*dims[0] {
			return fail("element data is %d bytes, want %d", len(data), 4*dims[0])
		}
		if tag == tagDocC {
			m.DocCommunity = aliasInt32(data)
		} else {
			m.DocTopic = aliasInt32(data)
		}
	case tagDocB:
		// DocBucket is []int in the model; on-disk it is int64. Copy (it
		// is metadata-sized next to the matrices, and aliasing []int would
		// tie the format to the platform's int width).
		dims, data, err := shape(1)
		if err != nil {
			return err
		}
		n := dims[0]
		if n > maxSectionBytes/8 || uint64(len(data)) != 8*n {
			return fail("element data is %d bytes, want %d", len(data), 8*n)
		}
		if n > 0 {
			m.DocBucket = make([]int, n)
			for i := range m.DocBucket {
				m.DocBucket[i] = int(int64(binary.LittleEndian.Uint64(data[8*i:])))
			}
		}
	}
	return nil
}

// nativeLittleEndian reports whether the host stores multi-byte integers
// little-endian — the precondition for aliasing v2 payload bytes as
// []float64/[]int32 without conversion.
func nativeLittleEndian() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}

// aliasFloat64 reinterprets b (length a multiple of 8, 8-byte aligned —
// guaranteed by the v2 alignment rules) as a []float64 without copying.
func aliasFloat64(b []byte) []float64 {
	if len(b) == 0 {
		return nil
	}
	if uintptr(unsafe.Pointer(&b[0]))%8 != 0 {
		panic("store: misaligned float64 section")
	}
	return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), len(b)/8)
}

// aliasInt32 reinterprets b (length a multiple of 4, 4-byte aligned) as a
// []int32 without copying.
func aliasInt32(b []byte) []int32 {
	if len(b) == 0 {
		return nil
	}
	if uintptr(unsafe.Pointer(&b[0]))%4 != 0 {
		panic("store: misaligned int32 section")
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), len(b)/4)
}

// readAligned reads a whole file into 8-byte-aligned heap memory — the
// portable mapFile fallback (and the small-file path some platforms
// prefer). The result supports the same aliasing as a real mapping.
func readAligned(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := fi.Size()
	if size < 0 || size > int64(maxSectionBytes)*2 {
		return nil, fmt.Errorf("snapshot size %d out of range", size)
	}
	words := make([]uint64, (size+7)/8)
	var buf []byte
	if len(words) > 0 {
		buf = unsafe.Slice((*byte)(unsafe.Pointer(&words[0])), size)
	}
	if _, err := io.ReadFull(f, buf); err != nil {
		return nil, err
	}
	return buf, nil
}
