// Package store implements the serving subsystem's model snapshot
// formats: a versioned binary encoding of core.Model in two layouts —
// the v1 streaming codec below, and the mmap-ready v2 layout (see v2.go)
// whose 64-byte-aligned sections store.Open serves zero-copy through a
// MappedModel. Loading a large model from a v1 binary snapshot is
// roughly an order of magnitude faster than the encoding/json path
// core.Model.Save uses, and a v2 mapped open is O(1) in model size on
// top of that (BenchmarkSnapshotLoad), which is what makes zero-downtime
// hot-swapping of big models practical in serve.Engine. The JSON format
// remains readable through Load, which sniffs the file's leading bytes.
// SaveV2Reusing (v2reuse.go) writes a v2 snapshot while splicing
// unchanged sections byte-for-byte out of a previous snapshot file — the
// store half of the streaming publisher's O(changed) publish path.
//
// v1 layout:
//
//	magic "CPDSNP" + format version byte + '\n'        (8 bytes)
//	repeated sections:
//	    tag     [4]byte
//	    length  uint64 little-endian (payload bytes)
//	    payload [length]byte
//	    crc32   uint32 little-endian (IEEE, over payload)
//	terminator section "END\x00" with empty payload
//
// Unknown tags are skipped (their CRC still verified), so later versions
// can append sections without breaking older readers.
package store

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"syscall"

	"repro/internal/core"
	"repro/internal/sparse"
)

// magic identifies a binary CPD snapshot; the 7th byte is the format
// version.
const magic = "CPDSNP\x01\n"

// Section tags. Every parameter block of core.Model has one.
const (
	tagConfig = "CFG\x00" // JSON-encoded core.Config
	tagDims   = "DIM\x00" // NumUsers, NumWords, NumBuckets, NumAttrs
	tagPi     = "PI\x00\x00"
	tagTheta  = "THET"
	tagPhi    = "PHI\x00"
	tagEta    = "ETA\x00"
	tagNu     = "NU\x00\x00"
	tagPop    = "POPF"
	tagXi     = "XI\x00\x00" // optional (attribute extension)
	tagDocC   = "DOCC"
	tagDocZ   = "DOCZ"
	tagDocB   = "DOCB"
	tagEnd    = "END\x00"
)

// maxSectionBytes bounds a single section's claimed payload so a corrupt
// length field cannot trigger an arbitrarily large allocation; maxDim
// bounds each matrix/tensor dimension header so the element-count
// cross-checks below cannot overflow uint64 (dims up to 2^28 give
// products of at most 2^56 after the staged checks).
const (
	maxSectionBytes = 1 << 32
	maxDim          = 1 << 28
)

// Encode writes m as a binary snapshot.
func Encode(w io.Writer, m *core.Model) error {
	if m.Pi == nil || m.Theta == nil || m.Phi == nil || m.Eta == nil {
		return fmt.Errorf("store: model is missing parameter blocks")
	}
	e := &encoder{
		w:       bufio.NewWriterSize(w, 1<<16),
		crc:     crc32.NewIEEE(),
		scratch: make([]byte, 1<<15),
	}
	if _, err := e.w.WriteString(magic); err != nil {
		return fmt.Errorf("store: writing magic: %w", err)
	}

	cfgJSON, err := json.Marshal(m.Cfg)
	if err != nil {
		return fmt.Errorf("store: encoding config: %w", err)
	}
	e.section(tagConfig, uint64(len(cfgJSON)), func() { e.raw(cfgJSON) })
	e.section(tagDims, 4*8, func() {
		e.u64(uint64(m.NumUsers))
		e.u64(uint64(m.NumWords))
		e.u64(uint64(m.NumBuckets))
		e.u64(uint64(m.NumAttrs))
	})
	e.dense(tagPi, m.Pi)
	e.dense(tagTheta, m.Theta)
	e.dense(tagPhi, m.Phi)
	e.tensor(tagEta, m.Eta)
	e.section(tagNu, 8+8*uint64(len(m.Nu)), func() {
		e.u64(uint64(len(m.Nu)))
		e.floats(m.Nu)
	})
	if m.PopFreq != nil {
		e.dense(tagPop, m.PopFreq)
	}
	if m.Xi != nil {
		e.dense(tagXi, m.Xi)
	}
	e.ints32(tagDocC, m.DocCommunity)
	e.ints32(tagDocZ, m.DocTopic)
	e.section(tagDocB, 8+8*uint64(len(m.DocBucket)), func() {
		e.u64(uint64(len(m.DocBucket)))
		k := 0
		for _, v := range m.DocBucket {
			binary.LittleEndian.PutUint64(e.scratch[k:], uint64(int64(v)))
			k += 8
			if k == len(e.scratch) {
				e.raw(e.scratch)
				k = 0
			}
		}
		if k > 0 {
			e.raw(e.scratch[:k])
		}
	})
	e.section(tagEnd, 0, func() {})
	if e.err != nil {
		return fmt.Errorf("store: encoding snapshot: %w", e.err)
	}
	if err := e.w.Flush(); err != nil {
		return fmt.Errorf("store: flushing snapshot: %w", err)
	}
	return nil
}

type encoder struct {
	w       *bufio.Writer
	crc     hash.Hash32
	scratch []byte
	err     error
}

// section writes one section: header, the payload produced by body (which
// must write exactly payloadLen bytes through the e.raw/e.u64/e.floats
// helpers), and the payload CRC. Sections beyond the format's size limit
// are rejected at encode time — writing a snapshot Decode would refuse to
// read helps nobody.
func (e *encoder) section(tag string, payloadLen uint64, body func()) {
	if e.err != nil {
		return
	}
	if len(tag) != 4 {
		panic("store: section tag must be 4 bytes")
	}
	if payloadLen > maxSectionBytes {
		e.err = fmt.Errorf("section %q needs %d payload bytes, above the format's %d-byte section limit", tag, payloadLen, uint64(maxSectionBytes))
		return
	}
	e.crc.Reset()
	if _, err := e.w.WriteString(tag); err != nil {
		e.err = err
		return
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], payloadLen)
	if _, err := e.w.Write(hdr[:]); err != nil {
		e.err = err
		return
	}
	body()
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], e.crc.Sum32())
	if _, err := e.w.Write(tail[:]); err != nil {
		e.err = err
	}
}

// raw writes payload bytes, feeding the running CRC.
func (e *encoder) raw(p []byte) {
	if e.err != nil {
		return
	}
	if _, err := e.w.Write(p); err != nil {
		e.err = err
		return
	}
	e.crc.Write(p)
}

func (e *encoder) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	e.raw(b[:])
}

// floats streams a float64 slice through the scratch buffer.
func (e *encoder) floats(xs []float64) {
	k := 0
	for _, x := range xs {
		binary.LittleEndian.PutUint64(e.scratch[k:], math.Float64bits(x))
		k += 8
		if k == len(e.scratch) {
			e.raw(e.scratch)
			k = 0
		}
	}
	if k > 0 {
		e.raw(e.scratch[:k])
	}
}

func (e *encoder) dense(tag string, m *sparse.Dense) {
	e.section(tag, 2*8+8*uint64(len(m.Data)), func() {
		e.u64(uint64(m.Rows))
		e.u64(uint64(m.Cols))
		e.floats(m.Data)
	})
}

func (e *encoder) tensor(tag string, t *sparse.Tensor3) {
	e.section(tag, 3*8+8*uint64(len(t.Data)), func() {
		e.u64(uint64(t.D1))
		e.u64(uint64(t.D2))
		e.u64(uint64(t.D3))
		e.floats(t.Data)
	})
}

func (e *encoder) ints32(tag string, xs []int32) {
	e.section(tag, 8+4*uint64(len(xs)), func() {
		k := 0
		var hdr [8]byte
		binary.LittleEndian.PutUint64(hdr[:], uint64(len(xs)))
		e.raw(hdr[:])
		for _, x := range xs {
			binary.LittleEndian.PutUint32(e.scratch[k:], uint32(x))
			k += 4
			if k == len(e.scratch) {
				e.raw(e.scratch)
				k = 0
			}
		}
		if k > 0 {
			e.raw(e.scratch[:k])
		}
	})
}

// Decode reads a binary snapshot in either binary version (v1 stream or
// v2 section table — sniffed from the version byte), verifies every
// section's length and CRC, and returns the model with its prediction
// caches rebuilt. The v2 path here always copies; use Open for the
// zero-copy mapped path.
func Decode(r io.Reader) (*core.Model, error) {
	return decode(r, 0)
}

// decode implements Decode; limit > 0 additionally bounds every section's
// claimed payload length, so readers that know the input size (LoadFile,
// LoadBytes) never allocate more than the input could possibly back — the
// defence the FuzzLoad target leans on against corrupt length fields.
func decode(r io.Reader, limit uint64) (*core.Model, error) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(r, 1<<16)
	}
	if head, err := br.Peek(len(magic)); err == nil && string(head) == magicV2 {
		return decodeV2(br, limit)
	}
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("store: reading magic: %w", err)
	}
	if string(head) != magic {
		if bytes.Equal(head[:6], []byte(magic[:6])) {
			return nil, fmt.Errorf("store: unsupported snapshot format version %d", head[6])
		}
		return nil, fmt.Errorf("store: not a CPD binary snapshot")
	}
	d := &decoder{r: br, crc: crc32.NewIEEE(), scratch: make([]byte, 1<<15), limit: limit}
	m := &core.Model{}
	var seenDims, seenEnd bool
	for !seenEnd {
		tag, payloadLen, err := d.sectionHeader()
		if err != nil {
			return nil, err
		}
		switch tag {
		case tagConfig:
			buf, err := d.take(payloadLen)
			if err == nil {
				err = json.Unmarshal(buf, &m.Cfg)
			}
			if err != nil {
				return nil, fmt.Errorf("store: section %q: %w", tag, err)
			}
		case tagDims:
			if payloadLen != 4*8 {
				return nil, fmt.Errorf("store: section %q has length %d, want 32", tag, payloadLen)
			}
			m.NumUsers = int(int64(d.u64()))
			m.NumWords = int(int64(d.u64()))
			m.NumBuckets = int(int64(d.u64()))
			m.NumAttrs = int(int64(d.u64()))
			seenDims = true
		case tagPi:
			m.Pi = d.dense(payloadLen)
		case tagTheta:
			m.Theta = d.dense(payloadLen)
		case tagPhi:
			m.Phi = d.dense(payloadLen)
		case tagPop:
			m.PopFreq = d.dense(payloadLen)
		case tagXi:
			m.Xi = d.dense(payloadLen)
		case tagEta:
			m.Eta = d.tensor(payloadLen)
		case tagNu:
			m.Nu = d.floatSlice(payloadLen)
		case tagDocC:
			m.DocCommunity = d.int32Slice(payloadLen)
		case tagDocZ:
			m.DocTopic = d.int32Slice(payloadLen)
		case tagDocB:
			m.DocBucket = d.intSlice(payloadLen)
		case tagEnd:
			if payloadLen != 0 {
				return nil, fmt.Errorf("store: terminator section has non-empty payload")
			}
			seenEnd = true
		default:
			// Forward compatibility: skip unknown sections, still
			// verifying their checksum.
			d.discard(payloadLen)
		}
		if d.err != nil {
			return nil, fmt.Errorf("store: section %q: %w", tag, d.err)
		}
		if err := d.sectionTrailer(); err != nil {
			return nil, fmt.Errorf("store: section %q: %w", tag, err)
		}
	}
	if !seenDims {
		return nil, fmt.Errorf("store: snapshot is missing the dimension section")
	}
	if m.Pi == nil || m.Theta == nil || m.Phi == nil || m.Eta == nil {
		return nil, fmt.Errorf("store: snapshot is missing parameter blocks")
	}
	if err := validateShapes(m); err != nil {
		return nil, err
	}
	m.Rehydrate()
	return m, nil
}

// validateShapes cross-checks the decoded blocks against the config and
// dimension section — a snapshot that passes its CRCs but was assembled
// inconsistently is still rejected before it can serve queries. The
// actual rules live on the model (core.Model.CheckShapes), shared with
// the JSON loader.
func validateShapes(m *core.Model) error {
	if err := m.CheckShapes(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

type decoder struct {
	r       *bufio.Reader
	crc     hash.Hash32
	scratch []byte
	err     error
	// limit > 0 caps each section's claimed payload at the known input
	// size (see decode).
	limit uint64
}

// sectionHeader reads the next tag and payload length and resets the CRC.
func (d *decoder) sectionHeader() (string, uint64, error) {
	var hdr [12]byte
	if _, err := io.ReadFull(d.r, hdr[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return "", 0, fmt.Errorf("store: snapshot truncated before terminator section")
		}
		return "", 0, fmt.Errorf("store: reading section header: %w", err)
	}
	n := binary.LittleEndian.Uint64(hdr[4:])
	if n > maxSectionBytes || (d.limit > 0 && n > d.limit) {
		return "", 0, fmt.Errorf("store: section %q claims %d payload bytes", hdr[:4], n)
	}
	d.crc.Reset()
	return string(hdr[:4]), n, nil
}

// sectionTrailer verifies the payload CRC once the payload was consumed.
func (d *decoder) sectionTrailer() error {
	var tail [4]byte
	if _, err := io.ReadFull(d.r, tail[:]); err != nil {
		return fmt.Errorf("reading checksum: %w", err)
	}
	if got, want := d.crc.Sum32(), binary.LittleEndian.Uint32(tail[:]); got != want {
		return fmt.Errorf("checksum mismatch (payload %08x, stored %08x)", got, want)
	}
	return nil
}

// read fills p from the payload, feeding the CRC.
func (d *decoder) read(p []byte) {
	if d.err != nil {
		return
	}
	if _, err := io.ReadFull(d.r, p); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			err = fmt.Errorf("payload truncated")
		}
		d.err = err
		return
	}
	d.crc.Write(p)
}

func (d *decoder) take(n uint64) ([]byte, error) {
	buf := make([]byte, n)
	d.read(buf)
	return buf, d.err
}

func (d *decoder) discard(n uint64) {
	for n > 0 && d.err == nil {
		chunk := uint64(len(d.scratch))
		if n < chunk {
			chunk = n
		}
		d.read(d.scratch[:chunk])
		n -= chunk
	}
}

func (d *decoder) u64() uint64 {
	var b [8]byte
	d.read(b[:])
	return binary.LittleEndian.Uint64(b[:])
}

// floats streams count float64 values into dst through the scratch buffer.
func (d *decoder) floats(dst []float64) {
	for len(dst) > 0 && d.err == nil {
		n := len(d.scratch) / 8
		if len(dst) < n {
			n = len(dst)
		}
		buf := d.scratch[:8*n]
		d.read(buf)
		if d.err != nil {
			return
		}
		for i := 0; i < n; i++ {
			dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
		}
		dst = dst[n:]
	}
}

func (d *decoder) dense(payloadLen uint64) *sparse.Dense {
	if d.err != nil {
		return nil
	}
	rows := int(int64(d.u64()))
	cols := int(int64(d.u64()))
	if d.err != nil {
		return nil
	}
	if rows < 0 || cols < 0 || rows > maxDim || cols > maxDim ||
		payloadLen != 2*8+8*uint64(rows)*uint64(cols) {
		d.err = fmt.Errorf("matrix header %dx%d disagrees with section length %d", rows, cols, payloadLen)
		return nil
	}
	m := sparse.NewDense(rows, cols)
	d.floats(m.Data)
	return m
}

func (d *decoder) tensor(payloadLen uint64) *sparse.Tensor3 {
	if d.err != nil {
		return nil
	}
	d1 := int(int64(d.u64()))
	d2 := int(int64(d.u64()))
	d3 := int(int64(d.u64()))
	if d.err != nil {
		return nil
	}
	bad := d1 < 0 || d2 < 0 || d3 < 0 || d1 > maxDim || d2 > maxDim || d3 > maxDim
	if !bad {
		// Staged product so 8*d1*d2*d3 cannot wrap: after the first check
		// the pairwise product is at most maxSectionBytes/8 < 2^29.
		p := uint64(d1) * uint64(d2)
		bad = p > maxSectionBytes/8
		if !bad {
			bad = payloadLen != 3*8+8*p*uint64(d3)
		}
	}
	if bad {
		d.err = fmt.Errorf("tensor header %dx%dx%d disagrees with section length %d", d1, d2, d3, payloadLen)
		return nil
	}
	t := sparse.NewTensor3(d1, d2, d3)
	d.floats(t.Data)
	return t
}

func (d *decoder) floatSlice(payloadLen uint64) []float64 {
	if d.err != nil {
		return nil
	}
	n := d.u64()
	if d.err != nil {
		return nil
	}
	if n > maxSectionBytes/8 || payloadLen != 8+8*n {
		d.err = fmt.Errorf("slice header %d disagrees with section length %d", n, payloadLen)
		return nil
	}
	if n == 0 {
		return nil
	}
	xs := make([]float64, n)
	d.floats(xs)
	return xs
}

func (d *decoder) int32Slice(payloadLen uint64) []int32 {
	if d.err != nil {
		return nil
	}
	n := d.u64()
	if d.err != nil {
		return nil
	}
	if n > maxSectionBytes/4 || payloadLen != 8+4*n {
		d.err = fmt.Errorf("slice header %d disagrees with section length %d", n, payloadLen)
		return nil
	}
	if n == 0 {
		return nil
	}
	xs := make([]int32, n)
	d.int32sInto(xs)
	return xs
}

// int32sInto streams len(dst) little-endian int32 values into dst.
func (d *decoder) int32sInto(xs []int32) {
	i := 0
	for i < len(xs) && d.err == nil {
		c := len(d.scratch) / 4
		if len(xs)-i < c {
			c = len(xs) - i
		}
		buf := d.scratch[:4*c]
		d.read(buf)
		if d.err != nil {
			return
		}
		for k := 0; k < c; k++ {
			xs[i+k] = int32(binary.LittleEndian.Uint32(buf[4*k:]))
		}
		i += c
	}
}

func (d *decoder) intSlice(payloadLen uint64) []int {
	if d.err != nil {
		return nil
	}
	n := d.u64()
	if d.err != nil {
		return nil
	}
	if n > maxSectionBytes/8 || payloadLen != 8+8*n {
		d.err = fmt.Errorf("slice header %d disagrees with section length %d", n, payloadLen)
		return nil
	}
	if n == 0 {
		return nil
	}
	xs := make([]int, n)
	d.int64sIntoInts(xs)
	return xs
}

// int64sIntoInts streams len(dst) little-endian int64 values into dst.
func (d *decoder) int64sIntoInts(xs []int) {
	i := 0
	for i < len(xs) && d.err == nil {
		c := len(d.scratch) / 8
		if len(xs)-i < c {
			c = len(xs) - i
		}
		buf := d.scratch[:8*c]
		d.read(buf)
		if d.err != nil {
			return
		}
		for k := 0; k < c; k++ {
			xs[i+k] = int(int64(binary.LittleEndian.Uint64(buf[8*k:])))
		}
		i += c
	}
}

// Load reads a model from r in either format, sniffing the leading bytes:
// binary snapshots start with the magic, anything else is handed to the
// JSON compatibility reader (core.Load).
func Load(r io.Reader) (*core.Model, error) {
	return loadSniffed(r, 0)
}

// LoadBytes loads a model from an in-memory encoding in either format.
// Unlike Load it knows the input size, so a corrupt section header can
// never make it allocate beyond len(data).
func LoadBytes(data []byte) (*core.Model, error) {
	return loadSniffed(bytes.NewReader(data), uint64(len(data)))
}

func loadSniffed(r io.Reader, limit uint64) (*core.Model, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	head, err := br.Peek(len(magic))
	if err == nil && bytes.Equal(head[:6], []byte(magic[:6])) {
		return decode(br, limit)
	}
	return core.Load(br)
}

// LoadFile loads a model from path in either format. The file's size
// bounds every section allocation.
func LoadFile(path string) (*core.Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	var limit uint64
	if fi, err := f.Stat(); err == nil && fi.Size() > 0 {
		limit = uint64(fi.Size())
	}
	m, err := loadSniffed(f, limit)
	if err != nil {
		return nil, fmt.Errorf("store: loading %s: %w", path, err)
	}
	return m, nil
}

// Save writes m to path as a v1 binary snapshot, atomically and crash-
// safely (see saveAtomic). SaveV2 writes the mmap-ready v2 layout with the
// same discipline.
func Save(path string, m *core.Model) error {
	return saveAtomic(path, func(w io.Writer) error { return Encode(w, m) })
}

// saveAtomic writes a snapshot produced by encode to path through a
// temporary file in the same directory, fsyncs the file, renames it into
// place, and fsyncs the directory. The rename makes the swap atomic
// against concurrent readers (a serve.Engine reloading the path can never
// observe a partial model); the two syncs make it atomic against crashes —
// without the file sync a power loss can leave a zero-length file behind
// the new name, and without the directory sync the rename itself may not
// have reached stable storage, resurrecting the old (or no) snapshot.
func saveAtomic(path string, encode func(io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := encode(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: syncing %s: %w", tmp.Name(), err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: closing %s: %w", tmp.Name(), err)
	}
	// CreateTemp opens 0600; give the snapshot the usual artifact mode.
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-completed rename survives a crash.
// Filesystems that do not support fsync on directories make it a no-op.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, syscall.EINVAL) && !errors.Is(err, syscall.ENOTSUP) {
		return fmt.Errorf("store: syncing %s: %w", dir, err)
	}
	return nil
}
