package store

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sparse"
)

func encodeV2ToBytes(t *testing.T, m *core.Model) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := EncodeV2(&buf, m); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestV2RoundTrip(t *testing.T) {
	m := testModel(40, 6, 5, 120, 21)
	raw := encodeV2ToBytes(t, m)
	got, err := Decode(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	modelsEquivalent(t, m, got)
	q := []int32{3, 7}
	if want, have := m.RankCommunities(q), got.RankCommunities(q); !reflect.DeepEqual(want, have) {
		t.Fatalf("rank scores differ after v2 round trip: %v vs %v", want, have)
	}
	// The sniffing loaders must route v2 too.
	if _, err := Load(bytes.NewReader(raw)); err != nil {
		t.Fatalf("Load does not sniff v2: %v", err)
	}
	if _, err := LoadBytes(raw); err != nil {
		t.Fatalf("LoadBytes does not sniff v2: %v", err)
	}
}

func TestV2RoundTripWithAttributes(t *testing.T) {
	m := testModel(25, 5, 4, 80, 22)
	attachAttrs(m, 9, 23)
	got, err := Decode(bytes.NewReader(encodeV2ToBytes(t, m)))
	if err != nil {
		t.Fatal(err)
	}
	modelsEquivalent(t, m, got)
}

func TestV2EmptyModelRoundTrip(t *testing.T) {
	m := &core.Model{
		Cfg:     core.Config{NumCommunities: 2, NumTopics: 2}.WithDefaults(),
		Pi:      sparse.NewDense(0, 2),
		Theta:   sparse.NewDense(2, 2),
		Phi:     sparse.NewDense(2, 0),
		Eta:     sparse.NewTensor3(2, 2, 2),
		PopFreq: sparse.NewDense(0, 2),
	}
	m.Rehydrate()
	got, err := Decode(bytes.NewReader(encodeV2ToBytes(t, m)))
	if err != nil {
		t.Fatal(err)
	}
	modelsEquivalent(t, m, got)
}

// TestV2Alignment pins the format's layout promises: every payload offset
// is 64-byte aligned (so numeric data, which begins after the 64-byte
// shape header, is cache-line aligned too), and the table walks the file
// in ascending offset order.
func TestV2Alignment(t *testing.T) {
	raw := encodeV2ToBytes(t, testModel(17, 5, 4, 70, 24))
	count := binary.LittleEndian.Uint64(raw[8:])
	entries, err := parseV2Table(raw[:v2HeaderLen], raw[v2HeaderLen:v2HeaderLen+count*v2EntryLen], uint64(len(raw)))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 10 {
		t.Fatalf("only %d sections in a full model", len(entries))
	}
	var prevEnd uint64
	for _, e := range entries {
		if e.off%v2Align != 0 {
			t.Errorf("section %q at offset %d is not %d-byte aligned", e.tag, e.off, v2Align)
		}
		if e.off < prevEnd {
			t.Errorf("section %q overlaps its predecessor", e.tag)
		}
		prevEnd = e.off + e.size
		if prevEnd > uint64(len(raw)) {
			t.Errorf("section %q extends past the file", e.tag)
		}
	}
}

func TestV2MappedOpen(t *testing.T) {
	dir := t.TempDir()
	m := testModel(30, 6, 5, 150, 25)
	attachAttrs(m, 7, 26)
	path := filepath.Join(dir, "model.v2.snap")
	if err := SaveV2(path, m); err != nil {
		t.Fatal(err)
	}
	mm, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mm.Close()
	modelsEquivalent(t, m, mm.Model)
	q := []int32{5, 11, 40}
	if want, have := m.RankCommunities(q), mm.Model.RankCommunities(q); !reflect.DeepEqual(want, have) {
		t.Fatalf("rank scores differ on the mapped model")
	}
	if a, b := m.FriendshipProb(0, 1), mm.Model.FriendshipProb(0, 1); a != b {
		t.Fatalf("friendship prob differs on the mapped model: %v vs %v", a, b)
	}
	if runtime.GOOS == "linux" && !mm.Mapped() {
		t.Error("Open did not produce a real mapping on linux")
	}
	if mm.MappedBytes() == 0 {
		t.Error("MappedBytes reports 0 for a mapped snapshot")
	}
	if mm.HeapBytes() <= 0 {
		t.Error("HeapBytes reports nothing for the caches")
	}
	if err := mm.Close(); err != nil {
		t.Fatal(err)
	}
	if err := mm.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}

// TestV2MappedOpenIsZeroCopy is the acceptance check for the zero-copy
// claim: opening a v2 snapshot must allocate heap for the caches only,
// not for the matrix payloads. The model is shaped so the matrices
// (~dominated by Phi) dwarf the caches by >10x; the heap growth across
// Open must stay well under the matrix footprint.
func TestV2MappedOpenIsZeroCopy(t *testing.T) {
	dir := t.TempDir()
	m := testModel(50, 4, 3, 60000, 27) // Phi alone: 3*60000*8 ≈ 1.4 MB
	path := filepath.Join(dir, "model.v2.snap")
	if err := SaveV2(path, m); err != nil {
		t.Fatal(err)
	}
	matrixBytes := m.MatrixBytes()

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	mm, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&after)
	defer mm.Close()

	allocated := int64(after.TotalAlloc - before.TotalAlloc)
	if !mm.Mapped() {
		t.Skip("no real mapping on this platform; zero-copy bound does not apply")
	}
	if allocated > matrixBytes/4 {
		t.Errorf("Open allocated %d heap bytes for a %d-byte matrix payload; mapped open must not copy matrices",
			allocated, matrixBytes)
	}
}

func TestV2CorruptTableRejected(t *testing.T) {
	raw := encodeV2ToBytes(t, testModel(20, 4, 3, 60, 28))
	for _, pos := range []int{2, 9, 20, 40} { // magic, count, table bytes
		bad := append([]byte(nil), raw...)
		bad[pos] ^= 0x41
		if _, err := Decode(bytes.NewReader(bad)); err == nil {
			t.Errorf("table corruption at byte %d accepted by Decode", pos)
		}
		if mm, err := openBytesForTest(t, bad); err == nil {
			mm.Close()
			t.Errorf("table corruption at byte %d accepted by Open", pos)
		}
	}
}

func TestV2CorruptPayloadRejectedByCopyDecoder(t *testing.T) {
	raw := encodeV2ToBytes(t, testModel(20, 4, 3, 60, 29))
	// Flip bytes deep in payload territory: the copying decoder verifies
	// every payload CRC. (Open intentionally does not — see the format
	// doc — so only Decode is asserted here.)
	for _, pos := range []int{len(raw) / 2, len(raw) - 3} {
		bad := append([]byte(nil), raw...)
		bad[pos] ^= 0x41
		if _, err := Decode(bytes.NewReader(bad)); err == nil {
			t.Errorf("payload corruption at byte %d accepted by Decode", pos)
		}
	}
}

func TestV2TruncatedRejected(t *testing.T) {
	raw := encodeV2ToBytes(t, testModel(20, 4, 3, 60, 30))
	for _, n := range []int{0, 4, 8, v2HeaderLen, v2HeaderLen + 16, len(raw) / 3, len(raw) - 1} {
		if _, err := Decode(bytes.NewReader(raw[:n])); err == nil {
			t.Errorf("truncation to %d bytes accepted by Decode", n)
		}
		if mm, err := openBytesForTest(t, raw[:n]); err == nil {
			mm.Close()
			t.Errorf("truncation to %d bytes accepted by Open", n)
		}
	}
}

// TestV2UnknownSectionSkipped: both v2 readers must skip sections with
// unknown tags (forward compatibility), like the v1 reader does.
func TestV2UnknownSectionSkipped(t *testing.T) {
	m := testModel(15, 4, 3, 50, 31)
	plan, err := v2Plan(m)
	if err != nil {
		t.Fatal(err)
	}
	future := []byte("payload from the future")
	plan = append(plan, &v2section{
		tag:  "ZZZZ",
		size: uint64(len(future)),
		emit: func(s *v2sink) { s.raw(future) },
	})
	raw := encodePlanForTest(t, plan)
	got, err := Decode(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	modelsEquivalent(t, m, got)
	mm, err := openBytesForTest(t, raw)
	if err != nil {
		t.Fatal(err)
	}
	defer mm.Close()
	modelsEquivalent(t, m, mm.Model)
}

// TestV2MisalignedOffsetRejected guards the aliasing precondition: a table
// whose offsets break the 64-byte rule must be rejected, not mapped.
func TestV2MisalignedOffsetRejected(t *testing.T) {
	raw := encodeV2ToBytes(t, testModel(10, 3, 3, 40, 32))
	bad := append([]byte(nil), raw...)
	// Nudge the first section's offset by 8 and re-checksum the table so
	// only the alignment rule is violated.
	count := binary.LittleEndian.Uint64(bad[8:])
	off := binary.LittleEndian.Uint64(bad[v2HeaderLen+8:])
	binary.LittleEndian.PutUint64(bad[v2HeaderLen+8:], off+8)
	table := bad[v2HeaderLen : v2HeaderLen+count*v2EntryLen]
	binary.LittleEndian.PutUint64(bad[16:], uint64(crc32.ChecksumIEEE(table)))
	if _, err := Decode(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "aligned") {
		t.Errorf("misaligned section accepted by Decode (err=%v)", err)
	}
	if mm, err := openBytesForTest(t, bad); err == nil {
		mm.Close()
		t.Error("misaligned section accepted by Open")
	}
}

func TestSaveV2IsAtomic(t *testing.T) {
	dir := t.TempDir()
	m := testModel(12, 3, 3, 30, 33)
	path := filepath.Join(dir, "model.v2.snap")
	if err := SaveV2(path, m); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	modelsEquivalent(t, m, got)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("leftover temporary file %s", e.Name())
		}
	}
}

// encodePlanForTest runs the EncodeV2 layout+write steps over an explicit
// plan (mirrors EncodeV2; kept in the test so the production encoder does
// not grow a test-only injection seam).
func encodePlanForTest(t *testing.T, plan []*v2section) []byte {
	t.Helper()
	off := alignUp(uint64(v2HeaderLen + v2EntryLen*len(plan)))
	for _, sec := range plan {
		sec.off = off
		off = alignUp(off + sec.size)
	}
	scratch := make([]byte, 1<<15)
	for _, sec := range plan {
		sink := &v2sink{crc: crc32.NewIEEE(), scratch: scratch}
		sec.emit(sink)
		sec.crc = sink.crc.Sum32()
	}
	table := v2Table(plan)
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	hdr := make([]byte, v2HeaderLen)
	copy(hdr, magicV2)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(len(plan)))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(crc32.ChecksumIEEE(table)))
	bw.Write(hdr)
	bw.Write(table)
	var pad [v2Align]byte
	pos := uint64(v2HeaderLen + len(table))
	for _, sec := range plan {
		bw.Write(pad[:sec.off-pos])
		sink := &v2sink{w: bw, crc: crc32.NewIEEE(), scratch: scratch}
		sec.emit(sink)
		pos = sec.off + sec.size
	}
	bw.Flush()
	return buf.Bytes()
}

// openBytesForTest round-trips raw bytes through a temp file into Open.
func openBytesForTest(t *testing.T, raw []byte) (*MappedModel, error) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "bytes.snap")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return Open(path)
}
