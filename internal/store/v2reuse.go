package store

// v2 section reuse: the O(changed-bytes) save path of the streaming
// publisher.
//
// A v2 snapshot is a section table plus independently CRC'd, 64-byte
// aligned payloads (v2.go) — a layout chosen so a writer can splice
// whole sections from a previous file. Between two fold-in publishes the
// base-model blocks (Θ, Φ, η, ν, POPF, XI) are the very same heap arrays
// — the extended-model builder aliases, never copies, them — so their
// encoded bytes cannot have changed. SaveV2Reusing detects that by slice
// identity (same backing array pointer, same length, same shape) against
// a SectionManifest recorded at the previous save, takes the section's
// CRC from the manifest, and byte-copies the payload from the previous
// file (re-verifying the CRC in flight) instead of re-encoding it.
//
// Soundness contract: identity-based reuse assumes the backing arrays
// are immutable between saves. That is the streaming publisher's
// discipline (a delta-Gibbs pass allocates a fresh refined model rather
// than mutating in place); code that mutates matrices in place must save
// with SaveV2, or drop the manifest first.
//
// Any reuse failure — the previous file missing, truncated, or failing
// its CRC — falls back to a full re-encode of every section, so a
// reusing save can never produce worse output than SaveV2, only a
// faster byte-identical one.

import (
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"repro/internal/core"
)

// manifestEntry records where one section landed in the previous
// snapshot file and which in-memory block produced it.
type manifestEntry struct {
	off  uint64
	size uint64
	crc  uint32
	dims []uint64
	// ident is the backing slice the payload was encoded from; reuse
	// requires the next save to present the identical slice (same
	// pointer, same length).
	ident any
}

// SectionManifest remembers a written v2 snapshot's section layout plus
// the identity of the in-memory block behind each numeric section, so
// the next SaveV2Reusing can copy byte-identical sections instead of
// re-encoding them. Manifests are produced by SaveV2Reusing and are only
// meaningful for the exact file they describe.
type SectionManifest struct {
	path    string
	entries map[string]manifestEntry

	reused, encoded int
}

// Path returns the snapshot file the manifest describes.
func (sm *SectionManifest) Path() string { return sm.path }

// ReusedSections reports how many sections the save that produced this
// manifest spliced from its predecessor (0 for a full encode).
func (sm *SectionManifest) ReusedSections() int { return sm.reused }

// EncodedSections reports how many sections that save re-encoded.
func (sm *SectionManifest) EncodedSections() int { return sm.encoded }

// sameIdent reports whether two recorded backing slices are the same
// array: equal length and equal first-element address. Only slice kinds
// the v2 planner records are comparable; anything else never matches.
func sameIdent(a, b any) bool {
	switch x := a.(type) {
	case []float64:
		y, ok := b.([]float64)
		return ok && len(x) == len(y) && (len(x) == 0 || &x[0] == &y[0])
	case []int32:
		y, ok := b.([]int32)
		return ok && len(x) == len(y) && (len(x) == 0 || &x[0] == &y[0])
	case []int:
		y, ok := b.([]int)
		return ok && len(x) == len(y) && (len(x) == 0 || &x[0] == &y[0])
	}
	return false
}

func sameDims(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// matchReusable returns the sections of plan whose bytes are guaranteed
// identical to the previous save: same tag, same backing array, same
// shape, same payload size.
func matchReusable(plan []*v2section, prev *SectionManifest) map[string]manifestEntry {
	if prev == nil || len(prev.entries) == 0 {
		return nil
	}
	reuse := make(map[string]manifestEntry)
	for _, sec := range plan {
		if sec.ident == nil {
			continue
		}
		ent, ok := prev.entries[sec.tag]
		if !ok || ent.size != sec.size || !sameDims(ent.dims, sec.dims) || !sameIdent(ent.ident, sec.ident) {
			continue
		}
		reuse[sec.tag] = ent
	}
	return reuse
}

// spliceSection copies one section payload from the previous snapshot
// file, verifying the manifest CRC in flight.
func spliceSection(w io.Writer, prevFile io.ReaderAt, ent manifestEntry, scratch []byte) error {
	if prevFile == nil {
		return fmt.Errorf("no previous snapshot file")
	}
	crc := crc32.NewIEEE()
	sr := io.NewSectionReader(prevFile, int64(ent.off), int64(ent.size))
	n, err := io.CopyBuffer(io.MultiWriter(w, crc), sr, scratch)
	if err != nil {
		return err
	}
	if uint64(n) != ent.size {
		return fmt.Errorf("previous snapshot truncated (%d of %d bytes)", n, ent.size)
	}
	if got := crc.Sum32(); got != ent.crc {
		return fmt.Errorf("checksum mismatch (payload %08x, manifest %08x)", got, ent.crc)
	}
	return nil
}

// manifestFor records the layout just written for path.
func manifestFor(path string, plan []*v2section, reused int) *SectionManifest {
	sm := &SectionManifest{
		path:    path,
		entries: make(map[string]manifestEntry, len(plan)),
		reused:  reused,
		encoded: len(plan) - reused,
	}
	for _, sec := range plan {
		sm.entries[sec.tag] = manifestEntry{
			off:   sec.off,
			size:  sec.size,
			crc:   sec.crc,
			dims:  sec.dims,
			ident: sec.ident,
		}
	}
	return sm
}

// SaveV2Reusing writes m to path as a v2 snapshot with SaveV2's atomic
// rename discipline, splicing byte-identical sections from the previous
// save described by prev instead of re-encoding them, and returns the
// manifest describing the new file (pass it to the next SaveV2Reusing).
// prev may be nil for a full encode. The output file is byte-identical
// to what SaveV2(path, m) would have written — reuse changes the cost,
// never the bytes. On any splice failure the save silently retries as a
// full encode.
func SaveV2Reusing(path string, m *core.Model, prev *SectionManifest) (*SectionManifest, error) {
	if m.Pi == nil || m.Theta == nil || m.Phi == nil || m.Eta == nil {
		return nil, fmt.Errorf("store: model is missing parameter blocks")
	}
	plan, err := v2Plan(m)
	if err != nil {
		return nil, err
	}
	reuse := matchReusable(plan, prev)
	if len(reuse) > 0 {
		prevFile, err := os.Open(prev.path)
		if err == nil {
			err = saveAtomic(path, func(w io.Writer) error {
				return encodeV2Plan(w, plan, reuse, prevFile)
			})
			prevFile.Close()
			if err == nil {
				return manifestFor(path, plan, len(reuse)), nil
			}
		}
		// Reuse failed (missing/corrupt previous file): fall back to a
		// full encode below.
	}
	if err := saveAtomic(path, func(w io.Writer) error {
		return encodeV2Plan(w, plan, nil, nil)
	}); err != nil {
		return nil, err
	}
	return manifestFor(path, plan, 0), nil
}
