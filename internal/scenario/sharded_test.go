package scenario

import (
	"testing"
	"time"
)

func TestShardPresetRegistry(t *testing.T) {
	ps := ShardPresets()
	if len(ps) == 0 {
		t.Fatal("no sharded presets")
	}
	seen := map[string]bool{}
	for _, p := range ps {
		if p.Name == "" || p.Description == "" || p.Base.Name == "" || p.Shards < 2 {
			t.Fatalf("preset %+v incomplete", p)
		}
		if seen[p.Name] {
			t.Fatalf("duplicate sharded preset %q", p.Name)
		}
		seen[p.Name] = true
		got, err := LookupSharded(p.Name)
		if err != nil || got.Name != p.Name {
			t.Fatalf("LookupSharded(%q) = %+v, %v", p.Name, got, err)
		}
	}
	if _, err := LookupSharded("nope"); err == nil {
		t.Fatal("LookupSharded accepted an unknown name")
	}
}

// TestShardedScenario drives every sharded preset end to end: train →
// sharded publish → per-shard fetch → shard-aware routing, with
// bit-equality against a single FULL node on both sides of a live
// generation rollout, zero routed read errors during it, and the
// per-replica mapped-bytes budget (~full/N + global) held.
func TestShardedScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("sharded scenarios train models; skipped in -short")
	}
	for _, p := range ShardPresets() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			start := time.Now()
			m, err := RunSharded(p, RunOptions{Dir: t.TempDir()})
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("%s: %d shards, %d generations, %d equality checks, %d routed reads (%d errors), "+
				"%d misroutes, mapped ≤ %d of %d full bytes in %v",
				p.Name, m.Shards, m.Generations, m.EqualityChecks, m.ReadQueries, m.ReadErrors,
				m.Misroutes, m.MaxReplicaMappedBytes, m.FullBytes,
				time.Since(start).Round(time.Millisecond))
			if m.EqualityChecks == 0 {
				t.Fatal("no bit-equality checks ran")
			}
			if m.ReadQueries == 0 {
				t.Fatal("the rollout read hammer never ran")
			}
			if m.Generations != 2 {
				t.Fatalf("fleet ended on generation %d, want 2", m.Generations)
			}
			if m.MaxReplicaMappedBytes == 0 || m.FullBytes == 0 {
				t.Fatal("mapped-bytes accounting never ran")
			}
		})
	}
}
