package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"repro/internal/hist"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/serve"
	"repro/internal/stream"
)

// OpKind enumerates the query kinds a load mix is composed of.
type OpKind int

const (
	OpRank OpKind = iota
	OpMembership
	OpDiffusion
	OpFoldIn
	OpIngest
	OpQuality
	OpMetrics
	numOps
)

var opNames = [numOps]string{"rank", "membership", "diffusion", "foldin", "ingest", "quality", "metrics"}

func (k OpKind) String() string { return opNames[k] }

// Mix weights the query kinds; weights are relative, not normalized.
type Mix [numOps]float64

// DefaultMix is a read-heavy service profile: mostly ranking and
// membership lookups, some diffusion probes, a trickle of fold-ins, no
// writes (add "ingest=N" to the mix for read-under-write runs; ingest
// targets need a stream updater or a cpd-serve started with -ingest).
// The observability endpoints join on request ("quality=N,metrics=N"):
// they model a dashboard or Prometheus scraper riding the same server,
// latency-counted like every other op.
func DefaultMix() Mix { return Mix{OpRank: 4, OpMembership: 3, OpDiffusion: 2, OpFoldIn: 1} }

// ParseMix parses "rank=4,membership=3,diffusion=2,foldin=1". Omitted ops
// get weight 0; at least one weight must be positive.
func ParseMix(s string) (Mix, error) {
	var m Mix
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return m, fmt.Errorf("scenario: mix entry %q is not name=weight", part)
		}
		w, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil || w < 0 {
			return m, fmt.Errorf("scenario: mix entry %q has a bad weight", part)
		}
		found := false
		for k := OpKind(0); k < numOps; k++ {
			if opNames[k] == strings.TrimSpace(name) {
				m[k] = w
				found = true
				break
			}
		}
		if !found {
			return m, fmt.Errorf("scenario: unknown op %q (have %v)", name, opNames)
		}
	}
	total := 0.0
	for _, w := range m {
		total += w
	}
	if total <= 0 {
		return m, fmt.Errorf("scenario: mix %q has no positive weight", s)
	}
	return m, nil
}

// QuerySpace is the id space random queries draw from.
type QuerySpace struct {
	Users, Words, Communities, Topics, Buckets int
}

// SpaceFromModel derives the query space of a model.
func SpaceFromModel(m *core.Model) QuerySpace {
	return QuerySpace{
		Users: m.NumUsers, Words: m.NumWords,
		Communities: m.Cfg.NumCommunities, Topics: m.Cfg.NumTopics,
		Buckets: m.NumBuckets,
	}
}

// Request is one generated query, ready for any Target.
type Request struct {
	Op     OpKind
	Words  []int32 // rank
	K      int     // rank
	U, V   int     // membership / diffusion
	Z, B   int     // diffusion
	FoldIn *serve.FoldInRequest
	Events []stream.Event // ingest
}

// Target executes requests — either in-process against a serve.Engine or
// over HTTP against a live cpd-serve endpoint.
type Target interface {
	Do(req *Request) error
}

// IngestStatusser is the optional Target extension for write mixes: a
// target that can report the stream updater's status lets the load
// report include publish-lag percentiles (event append → servable
// generation), not just ingest op counts. Both built-in targets
// implement it; EngineTarget needs its Updater set.
type IngestStatusser interface {
	IngestStatus() (*stream.Status, error)
}

// EngineTarget drives a serve.Engine directly (no network, no JSON):
// the ceiling the HTTP path is compared against. Snapshot selects one of
// the engine's named snapshots (empty = the default). Updater, when set,
// receives the mix's ingest ops (without one, ingest requests error).
type EngineTarget struct {
	Engine   *serve.Engine
	Snapshot string
	Updater  *stream.Updater
}

// Do implements Target.
func (t EngineTarget) Do(req *Request) error {
	name := t.Snapshot
	if name == "" {
		name = serve.DefaultSnapshot
	}
	var err error
	switch req.Op {
	case OpRank:
		_, err = t.Engine.RankIn(name, req.Words, req.K)
	case OpMembership:
		_, err = t.Engine.MembershipIn(name, req.U, req.K)
	case OpDiffusion:
		_, err = t.Engine.DiffusionIn(name, req.U, req.V, req.Z, req.B)
	case OpFoldIn:
		_, err = t.Engine.FoldInNamed(name, req.FoldIn)
	case OpIngest:
		if t.Updater == nil {
			return fmt.Errorf("scenario: ingest op without an Updater on the EngineTarget")
		}
		_, err = t.Updater.Ingest(req.Events)
	case OpQuality:
		_, err = t.Engine.QualityIn(name)
	case OpMetrics:
		// The serialization work is the cost being measured; the bytes
		// themselves are a scrape's business, not the load generator's.
		t.Engine.WriteMetrics(io.Discard)
	}
	return err
}

// IngestStatus implements IngestStatusser from the updater's status
// cache.
func (t EngineTarget) IngestStatus() (*stream.Status, error) {
	if t.Updater == nil {
		return nil, fmt.Errorf("scenario: no Updater on the EngineTarget")
	}
	st := t.Updater.Status()
	return &st, nil
}

// HTTPTarget drives a live serving endpoint (cpd-serve or cpd-lens)
// through the same JSON API real clients use.
type HTTPTarget struct {
	// Base is the endpoint root, e.g. "http://localhost:8080".
	Base string
	// Snapshot, when non-empty, routes every query to that named snapshot
	// (appended as the ?snapshot= parameter).
	Snapshot string
	// Client defaults to loadClient, a dedicated client with enough idle
	// connections per host for any sane -concurrency (so percentiles
	// measure the server, not TCP handshake churn) and a request timeout
	// (so one hung endpoint cannot stall a bounded run forever).
	// Override for custom timeouts/transports.
	Client *http.Client
}

// loadClient is HTTPTarget's default client; see the Client field doc.
var loadClient = &http.Client{
	Timeout: 30 * time.Second,
	Transport: &http.Transport{
		MaxIdleConns:        512,
		MaxIdleConnsPerHost: 512,
		IdleConnTimeout:     90 * time.Second,
	},
}

// Do implements Target.
func (t HTTPTarget) Do(req *Request) error {
	client := t.Client
	if client == nil {
		client = loadClient
	}
	snap := ""
	if t.Snapshot != "" {
		snap = "&snapshot=" + url.QueryEscape(t.Snapshot)
	}
	var resp *http.Response
	var err error
	switch req.Op {
	case OpRank:
		ids := make([]string, len(req.Words))
		for i, w := range req.Words {
			ids[i] = strconv.Itoa(int(w))
		}
		resp, err = client.Get(fmt.Sprintf("%s/api/rank?w=%s&k=%d%s", t.Base, strings.Join(ids, ","), req.K, snap))
	case OpMembership:
		resp, err = client.Get(fmt.Sprintf("%s/api/user?id=%d&k=%d%s", t.Base, req.U, req.K, snap))
	case OpDiffusion:
		resp, err = client.Get(fmt.Sprintf("%s/api/diffusion?u=%d&v=%d&topic=%d&bucket=%d%s", t.Base, req.U, req.V, req.Z, req.B, snap))
	case OpFoldIn:
		var body bytes.Buffer
		if err := json.NewEncoder(&body).Encode(req.FoldIn); err != nil {
			return err
		}
		foldURL := t.Base + "/api/foldin"
		if snap != "" {
			foldURL += "?" + snap[1:]
		}
		resp, err = client.Post(foldURL, "application/json", &body)
	case OpIngest:
		var body bytes.Buffer
		if err := json.NewEncoder(&body).Encode(req.Events); err != nil {
			return err
		}
		resp, err = client.Post(t.Base+"/api/ingest", "application/json", &body)
	case OpQuality:
		qualityURL := t.Base + "/api/quality"
		if snap != "" {
			qualityURL += "?" + snap[1:]
		}
		resp, err = client.Get(qualityURL)
	case OpMetrics:
		resp, err = client.Get(t.Base + "/metrics")
	}
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	// Drain for connection reuse, but report the status first: an error
	// response often carries a short (or truncated) body, and surfacing
	// the drain hiccup instead of the 503 behind it buries the signal.
	_, derr := io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("scenario: %s answered status %d", req.Op, resp.StatusCode)
	}
	if derr != nil {
		return derr
	}
	return nil
}

// IngestStatus implements IngestStatusser over GET /api/ingest/status.
func (t HTTPTarget) IngestStatus() (*stream.Status, error) {
	client := t.Client
	if client == nil {
		client = loadClient
	}
	resp, err := client.Get(t.Base + "/api/ingest/status")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("scenario: ingest status answered %d", resp.StatusCode)
	}
	var st stream.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// LoadOptions configures one load-generation run.
type LoadOptions struct {
	Mix   Mix
	Space QuerySpace

	// Concurrency is the closed-loop worker count, and in open-loop mode
	// the maximum in-flight requests (default 8).
	Concurrency int
	// Requests bounds the run by count; 0 means run until Duration.
	Requests int
	// Duration bounds the run by time when Requests is 0.
	Duration time.Duration
	// Rate > 0 switches to open-loop mode: requests arrive on a fixed
	// schedule of Rate per second and latency is measured from the
	// *scheduled* arrival (queue wait included), so a saturated server
	// cannot hide behind coordinated omission. Rate == 0 is closed-loop:
	// Concurrency workers each issue their next request as soon as the
	// previous one completes.
	Rate float64
	Seed uint64

	// Query shaping (zero values select the defaults in parentheses).
	RankWords    int // words per rank query (2)
	RankK        int // top-k communities requested (10)
	FoldInDocs   int // documents per fold-in request (2)
	FoldInDocLen int // words per fold-in document (8)
	FoldInSweeps int // Gibbs sweeps per fold-in (10)
}

func (o LoadOptions) withDefaults() (LoadOptions, error) {
	zero := Mix{}
	if o.Mix == zero {
		o.Mix = DefaultMix()
	}
	if o.Space.Users <= 0 || o.Space.Words <= 0 || o.Space.Communities <= 0 || o.Space.Topics <= 0 {
		return o, fmt.Errorf("scenario: load generation needs a positive QuerySpace, got %+v", o.Space)
	}
	if o.Concurrency <= 0 {
		o.Concurrency = 8
	}
	if o.Requests <= 0 && o.Duration <= 0 {
		return o, fmt.Errorf("scenario: load generation needs Requests or Duration")
	}
	if o.RankWords <= 0 {
		o.RankWords = 2
	}
	if o.RankK <= 0 {
		o.RankK = 10
	}
	if o.FoldInDocs <= 0 {
		o.FoldInDocs = 2
	}
	if o.FoldInDocLen <= 0 {
		o.FoldInDocLen = 8
	}
	if o.FoldInSweeps <= 0 {
		o.FoldInSweeps = 10
	}
	return o, nil
}

// genRequest draws one request from the mix and the query space.
func genRequest(r *rng.RNG, o *LoadOptions) *Request {
	req := &Request{Op: OpKind(r.Categorical(o.Mix[:]))}
	s := o.Space
	switch req.Op {
	case OpRank:
		req.Words = make([]int32, o.RankWords)
		for i := range req.Words {
			req.Words[i] = int32(r.Intn(s.Words))
		}
		req.K = o.RankK
	case OpMembership:
		req.U = r.Intn(s.Users)
		req.K = 5
	case OpDiffusion:
		req.U = r.Intn(s.Users)
		req.V = r.Intn(s.Users)
		if req.V == req.U {
			req.V = (req.V + 1) % s.Users
		}
		req.Z = r.Intn(s.Topics)
		req.B = -1
		if s.Buckets > 0 {
			req.B = r.Intn(s.Buckets)
		}
	case OpFoldIn:
		docs := make([][]int32, o.FoldInDocs)
		for i := range docs {
			doc := make([]int32, o.FoldInDocLen)
			for j := range doc {
				doc[j] = int32(r.Intn(s.Words))
			}
			docs[i] = doc
		}
		req.FoldIn = &serve.FoldInRequest{Docs: docs, Seed: r.Uint64(), Sweeps: o.FoldInSweeps}
	case OpIngest:
		// A write-mix op is mostly fresh documents on existing users, with
		// a sprinkle of edges and brand-new users — the churn shape a live
		// service sees. Only base-population ids are drawn, so the batch
		// validates whatever else is in flight.
		switch r.Intn(8) {
		case 0:
			req.Events = []stream.Event{{Type: stream.EvAddUser}}
		case 1:
			u := r.Intn(s.Users)
			v := r.Intn(s.Users)
			if v == u {
				v = (v + 1) % s.Users
			}
			req.Events = []stream.Event{{Type: stream.EvAddEdge, User: int32(u), Target: int32(v)}}
		default:
			doc := make([]int32, o.FoldInDocLen)
			for j := range doc {
				doc[j] = int32(r.Intn(s.Words))
			}
			req.Events = []stream.Event{{Type: stream.EvAddDoc, User: int32(r.Intn(s.Users)), Time: int64(r.Intn(1 << 20)), Words: doc}}
		}
	}
	return req
}

// --- latency accounting -------------------------------------------------

// Latencies accumulate in internal/hist's log-bucketed histogram — the
// same geometry the serving engine's endpoint counters and the streaming
// publisher use, so a load run's percentiles are directly comparable to
// what /api/stats and /metrics report from the server side.

// OpStats is one op kind's latency summary.
type OpStats struct {
	Count  uint64        `json:"count"`
	Errors uint64        `json:"errors"`
	Mean   time.Duration `json:"mean"`
	P50    time.Duration `json:"p50"`
	P95    time.Duration `json:"p95"`
	P99    time.Duration `json:"p99"`
	Max    time.Duration `json:"max"`
}

// Report is a load run's result: throughput plus per-op latency
// percentiles, and — for write mixes against a status-capable target —
// the server-side publish-lag distribution.
type Report struct {
	Elapsed  time.Duration      `json:"elapsed"`
	Requests uint64             `json:"requests"`
	Errors   uint64             `json:"errors"`
	QPS      float64            `json:"qps"`
	Ops      map[string]OpStats `json:"ops"`

	// PublishLag summarizes event append → servable generation time as
	// measured by the updater itself (set when the mix ingests and the
	// target reports ingest status). Unlike the ingest op latency above —
	// which only times the append — this is the freshness an ingested
	// event actually experiences.
	PublishLag           *stream.LatencySummary `json:"publishLag,omitempty"`
	Publishes            uint64                 `json:"publishes,omitempty"`
	IncrementalPublishes uint64                 `json:"incrementalPublishes,omitempty"`
}

// String renders the report as the table cpd-loadgen prints.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "elapsed %v   requests %d (%d errors)   throughput %.1f qps\n",
		r.Elapsed.Round(time.Millisecond), r.Requests, r.Errors, r.QPS)
	fmt.Fprintf(&sb, "%-12s %9s %7s %10s %10s %10s %10s %10s\n",
		"op", "count", "errors", "mean", "p50", "p95", "p99", "max")
	names := make([]string, 0, len(r.Ops))
	for name := range r.Ops {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s := r.Ops[name]
		fmt.Fprintf(&sb, "%-12s %9d %7d %10v %10v %10v %10v %10v\n",
			name, s.Count, s.Errors,
			s.Mean.Round(time.Microsecond), s.P50.Round(time.Microsecond),
			s.P95.Round(time.Microsecond), s.P99.Round(time.Microsecond),
			s.Max.Round(time.Microsecond))
	}
	if lag := r.PublishLag; lag != nil {
		fmt.Fprintf(&sb, "publish lag (append→servable): p50 %.1fms  p95 %.1fms  p99 %.1fms  max %.1fms  (%d batches, %d publishes, %d incremental)\n",
			lag.P50Ms, lag.P95Ms, lag.P99Ms, lag.MaxMs, lag.Count, r.Publishes, r.IncrementalPublishes)
	}
	return sb.String()
}

// RunLoad replays a query mix against a target and reports throughput and
// latency. Request sequences are deterministic per (Seed, Concurrency);
// timings of course are not.
func RunLoad(target Target, opts LoadOptions) (*Report, error) {
	o, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	var rep *Report
	if o.Rate > 0 {
		rep, err = runOpenLoop(target, &o)
	} else {
		rep, err = runClosedLoop(target, &o)
	}
	if err != nil {
		return nil, err
	}
	// Write mixes also report server-side publish lag when the target can
	// surface it — a failed status fetch just leaves the field unset (the
	// load numbers themselves are complete without it).
	if o.Mix[OpIngest] > 0 {
		if ts, ok := target.(IngestStatusser); ok {
			if st, serr := ts.IngestStatus(); serr == nil && st != nil {
				rep.PublishLag = st.PublishLag
				rep.Publishes = st.Publishes
				rep.IncrementalPublishes = st.IncrementalPublishes
			}
		}
	}
	return rep, nil
}

type workerStats struct {
	hists [numOps]hist.Hist
}

func assemble(workers []workerStats, elapsed time.Duration) *Report {
	var merged [numOps]hist.Hist
	for w := range workers {
		for k := range merged {
			merged[k].Merge(&workers[w].hists[k])
		}
	}
	rep := &Report{Elapsed: elapsed, Ops: make(map[string]OpStats, numOps)}
	for k := OpKind(0); k < numOps; k++ {
		h := &merged[k]
		if h.Count == 0 {
			continue
		}
		rep.Requests += h.Count
		rep.Errors += h.Errs
		rep.Ops[k.String()] = OpStats{
			Count:  h.Count,
			Errors: h.Errs,
			Mean:   h.Mean(),
			P50:    h.Quantile(0.50),
			P95:    h.Quantile(0.95),
			P99:    h.Quantile(0.99),
			Max:    time.Duration(h.MaxNS),
		}
	}
	if elapsed > 0 {
		rep.QPS = float64(rep.Requests) / elapsed.Seconds()
	}
	return rep
}

// runClosedLoop: Concurrency workers, each issuing its next request the
// moment the previous one returns.
func runClosedLoop(target Target, o *LoadOptions) (*Report, error) {
	var issued atomic.Int64
	quota := int64(o.Requests)
	var deadline time.Time
	if o.Requests <= 0 {
		deadline = time.Now().Add(o.Duration)
	}
	workers := make([]workerStats, o.Concurrency)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < o.Concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rng.New(o.Seed).Split(uint64(w) + 1)
			ws := &workers[w]
			for {
				if quota > 0 {
					if issued.Add(1) > quota {
						return
					}
				} else if !time.Now().Before(deadline) {
					return
				}
				req := genRequest(r, o)
				t0 := time.Now()
				err := target.Do(req)
				ws.hists[req.Op].Observe(time.Since(t0), err)
			}
		}(w)
	}
	wg.Wait()
	return assemble(workers, time.Since(start)), nil
}

// runOpenLoop: a dispatcher emits arrivals on a fixed schedule of Rate
// per second; Concurrency workers drain them. Latency runs from the
// scheduled arrival instant, so backlog wait counts against the server.
func runOpenLoop(target Target, o *LoadOptions) (*Report, error) {
	type job struct {
		req       *Request
		scheduled time.Time
	}
	total := o.Requests
	if total <= 0 {
		total = int(o.Rate * o.Duration.Seconds())
		if total < 1 {
			total = 1
		}
	}
	jobs := make(chan job, 4*o.Concurrency)
	workers := make([]workerStats, o.Concurrency)
	var wg sync.WaitGroup
	for w := 0; w < o.Concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ws := &workers[w]
			for j := range jobs {
				err := target.Do(j.req)
				ws.hists[j.req.Op].Observe(time.Since(j.scheduled), err)
			}
		}(w)
	}
	r := rng.New(o.Seed)
	interval := time.Duration(float64(time.Second) / o.Rate)
	start := time.Now()
	for i := 0; i < total; i++ {
		scheduled := start.Add(time.Duration(i) * interval)
		if d := time.Until(scheduled); d > 0 {
			time.Sleep(d)
		}
		jobs <- job{req: genRequest(r, o), scheduled: scheduled}
	}
	close(jobs)
	wg.Wait()
	return assemble(workers, time.Since(start)), nil
}
