package scenario

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/stream"
)

// trainBundle trains a bundle's graph with the given config.
func trainBundle(b *Bundle, cfg core.Config) (*core.Model, *core.Diagnostics, error) {
	return core.Train(b.Graph, cfg)
}

// newStreamTarget stands up an engine + journal + updater over a model.
func newStreamTarget(t *testing.T, model *core.Model) (*serve.Engine, *stream.Journal, *stream.Updater) {
	t.Helper()
	engine := serve.New(model, nil, serve.Options{})
	j, err := stream.OpenJournal(filepath.Join(t.TempDir(), "events.wal"), stream.JournalOptions{})
	if err != nil {
		engine.Close()
		t.Fatal(err)
	}
	u, err := stream.NewUpdater(j, stream.Options{Engine: engine, Base: model, FoldSweeps: 5})
	if err != nil {
		j.Close()
		engine.Close()
		t.Fatal(err)
	}
	return engine, j, u
}

func TestStreamPresetRegistry(t *testing.T) {
	ps := StreamPresets()
	if len(ps) != 3 {
		t.Fatalf("expected 3 streaming presets, have %d", len(ps))
	}
	seen := map[string]bool{}
	var hasGibbs, hasFoldOnly bool
	for _, p := range ps {
		if p.Name == "" || p.Description == "" || p.Base.Name == "" {
			t.Fatalf("preset %+v incomplete", p)
		}
		if seen[p.Name] {
			t.Fatalf("duplicate streaming preset %q", p.Name)
		}
		seen[p.Name] = true
		if p.GibbsEvery > 0 {
			hasGibbs = true
		} else {
			hasFoldOnly = true
		}
		got, err := LookupStream(p.Name)
		if err != nil || got.Name != p.Name {
			t.Fatalf("LookupStream(%q) = %+v, %v", p.Name, got, err)
		}
	}
	if !hasGibbs || !hasFoldOnly {
		t.Fatal("the registry must cover both the fold-in-only and the delta-Gibbs regime")
	}
	if _, err := LookupStream("nope"); err == nil {
		t.Fatal("LookupStream accepted an unknown name")
	}
}

// TestStreamScenario drives every streaming preset end to end: journal →
// updater → publish cycles under a concurrent read hammer, checking
// freshness, replay-equals-batch (fold-in presets), the delta-Gibbs
// cadence and the full-population NMI floor.
func TestStreamScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("streaming scenarios train models; skipped in -short")
	}
	for _, p := range StreamPresets() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			start := time.Now()
			m, err := RunStream(p, RunOptions{Dir: t.TempDir()})
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("%s: %d events over %d publishes (%d gibbs) in %v; NMI %.3f; %d reads (%d errors)",
				p.Name, m.Events, m.Publishes, m.GibbsPasses, time.Since(start).Round(time.Millisecond),
				m.NMI, m.ReadQueries, m.ReadErrors)
			if m.Events == 0 || m.Publishes == 0 {
				t.Fatalf("degenerate run: %+v", m)
			}
			if m.ReadQueries == 0 {
				t.Fatal("the concurrent read hammer never ran")
			}
		})
	}
}

// TestLoadGenIngestMix exercises the write mix end to end: a loadgen run
// with ingest ops against an engine+updater target must complete without
// errors and leave the updater with applied events.
func TestLoadGenIngestMix(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a base model; skipped in -short")
	}
	p, err := LookupStream("steady-drip")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(p.Base)
	if err != nil {
		t.Fatal(err)
	}
	// Reuse the scenario's own trained base via RunStream's pieces is
	// overkill here: a small direct training run suffices.
	base := p.Base
	base.Train.EMIters = 4
	model, _, err := trainBundle(b, base.Train)
	if err != nil {
		t.Fatal(err)
	}
	engine, j, u := newStreamTarget(t, model)
	defer engine.Close()
	defer j.Close()
	defer u.Close()

	mix, err := ParseMix("rank=3,membership=3,ingest=2,foldin=1")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunLoad(EngineTarget{Engine: engine, Updater: u}, LoadOptions{
		Mix:      mix,
		Space:    SpaceFromModel(model),
		Requests: 400,
		Seed:     11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("load run had %d errors:\n%s", rep.Errors, rep)
	}
	ing, ok := rep.Ops[OpIngest.String()]
	if !ok || ing.Count == 0 {
		t.Fatalf("no ingest ops ran: %+v", rep.Ops)
	}
	if u.Status().AppliedEvents == 0 {
		t.Fatal("updater saw no events")
	}
	// Publishing after the run folds the written docs in cleanly.
	if _, err := u.Publish(); err != nil {
		t.Fatal(err)
	}
	// A publish has now drained lag samples: a follow-up write run's
	// report must carry the publish-lag percentiles, not just counts.
	rep2, err := RunLoad(EngineTarget{Engine: engine, Updater: u}, LoadOptions{
		Mix:      mix,
		Space:    SpaceFromModel(model),
		Requests: 40,
		Seed:     12,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.PublishLag == nil || rep2.PublishLag.Count == 0 {
		t.Fatalf("write-mix report lacks publish-lag percentiles: %+v", rep2)
	}
	if !strings.Contains(rep2.String(), "publish lag") {
		t.Fatalf("report table does not render publish lag:\n%s", rep2)
	}
	if rep2.Publishes == 0 {
		t.Fatalf("report missed the publish count: %+v", rep2)
	}
}
