package scenario

import (
	"testing"
	"time"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/eval"
)

// TestModelBeatsPLPOnContent pins the quality/speed trade the PLP baseline
// exists to expose: on a structure-blind graph (the noisy-graph preset,
// whose friendship links carry almost no community signal) the joint
// content+structure model must recover communities better than pure label
// propagation — while PLP, which reads only the edge list, must win on
// wall-clock by a wide margin.
func TestModelBeatsPLPOnContent(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model; skipped in -short")
	}
	p, err := Lookup("noisy-graph")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}

	trainStart := time.Now()
	model, _, err := core.Train(b.Graph, p.Train)
	if err != nil {
		t.Fatal(err)
	}
	trainWall := time.Since(trainStart)

	plpStart := time.Now()
	res := baselines.PLP(model.NumUsers, b.Graph.Friends, baselines.PLPOptions{Seed: p.Synth.Seed})
	plpWall := time.Since(plpStart)

	modelNMI := nmiAgainstTruth(b, model)
	plpNMI := eval.NMI(res.Labels, b.Truth.HomeCommunity[:model.NumUsers])
	t.Logf("model NMI %.4f in %v vs PLP NMI %.4f in %v (%d communities, %d sweeps)",
		modelNMI, trainWall.Round(time.Millisecond), plpNMI, plpWall.Round(time.Microsecond),
		res.Communities, res.Sweeps)

	if modelNMI <= plpNMI {
		t.Errorf("joint model NMI %.4f does not beat PLP's %.4f on the structure-blind preset", modelNMI, plpNMI)
	}
	if plpWall >= trainWall {
		t.Errorf("PLP took %v, not faster than the %v training run", plpWall, trainWall)
	}
}

// TestPLPWarmStartClearsNMIFloor gates the cpd-train -init plp path
// behind a scenario floor: training resumed from a PLP-seeded model must
// recover the planted communities at least as well as the preset's MinNMI
// demands of a random initialization.
func TestPLPWarmStartClearsNMIFloor(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model; skipped in -short")
	}
	p, err := Lookup("uniform")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	res := baselines.PLPGraph(b.Graph, baselines.PLPOptions{Seed: p.Train.Seed})
	m0 := baselines.WarmStartModel(b.Graph, p.Train, res.Labels)
	m, _, err := core.TrainResumed(b.Graph, m0, p.Train.EMIters, core.ResumeOptions{
		Workers: p.Train.Workers,
		Seed:    p.Train.Seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	if nmi := nmiAgainstTruth(b, m); nmi < p.MinNMI {
		t.Errorf("PLP-warm-started NMI %.4f below the %s floor %.2f", nmi, p.Name, p.MinNMI)
	}
}
