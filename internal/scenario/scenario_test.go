package scenario

import (
	"flag"
	"reflect"
	"testing"
)

// update re-pins the golden metric files. Use after a deliberate change:
//
//	go test ./internal/scenario -run TestScenarioRegression -update
var update = flag.Bool("update", false, "rewrite golden scenario metric files")

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) < 8 {
		t.Fatalf("only %d presets registered, the harness promises >= 8", len(all))
	}
	seenName := map[string]bool{}
	seenSeed := map[uint64]bool{}
	for _, p := range all {
		if p.Name == "" || p.Description == "" {
			t.Fatalf("preset %+v is missing a name or description", p)
		}
		if seenName[p.Name] {
			t.Fatalf("duplicate preset name %q", p.Name)
		}
		seenName[p.Name] = true
		if seenSeed[p.Synth.Seed] {
			t.Fatalf("preset %q reuses seed %d", p.Name, p.Synth.Seed)
		}
		seenSeed[p.Synth.Seed] = true
		if p.Synth.Name != p.Name {
			t.Fatalf("preset %q names its synth config %q", p.Name, p.Synth.Name)
		}
		got, err := Lookup(p.Name)
		if err != nil || got.Name != p.Name {
			t.Fatalf("Lookup(%q) = %+v, %v", p.Name, got, err)
		}
	}
	if _, err := Lookup("no-such-preset"); err == nil {
		t.Fatal("Lookup accepted an unknown preset")
	}
}

func TestBuildDeterministic(t *testing.T) {
	p, err := Lookup("power-law")
	if err != nil {
		t.Fatal(err)
	}
	a, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.Graph.Stats() != b.Graph.Stats() {
		t.Fatalf("two builds disagree: %+v vs %+v", a.Graph.Stats(), b.Graph.Stats())
	}
	if !reflect.DeepEqual(a.Graph.Docs, b.Graph.Docs) {
		t.Fatal("two builds produce different documents")
	}
	if !reflect.DeepEqual(a.Truth.HomeCommunity, b.Truth.HomeCommunity) {
		t.Fatal("two builds produce different ground truth")
	}
}

// TestPresetRegimes spot-checks that the regime knobs actually plant the
// regimes the presets advertise — the harness is only as good as its
// scenarios are distinct.
func TestPresetRegimes(t *testing.T) {
	bundle := func(name string) *Bundle {
		t.Helper()
		p, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Build(p)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	maxDegree := func(b *Bundle) int {
		deg := make([]int, b.Graph.NumUsers)
		for _, f := range b.Graph.Friends {
			deg[f.U]++
		}
		m := 0
		for _, d := range deg {
			if d > m {
				m = d
			}
		}
		return m
	}

	// Power-law degrees have a far heavier tail than uniform ones.
	if pl, un := maxDegree(bundle("power-law")), maxDegree(bundle("uniform")); pl < 2*un {
		t.Errorf("power-law max degree %d is not clearly heavier than uniform's %d", pl, un)
	}

	// Isolated users: a third of users hold no friendship links.
	iso := bundle("isolated-users")
	linked := map[int32]bool{}
	for _, f := range iso.Graph.Friends {
		linked[f.U], linked[f.V] = true, true
	}
	isolatedCount := iso.Graph.NumUsers - len(linked)
	if frac := float64(isolatedCount) / float64(iso.Graph.NumUsers); frac < 0.2 || frac > 0.5 {
		t.Errorf("isolated-users planted %.0f%% isolated users, want ~35%%", 100*frac)
	}

	// Giant community: the largest planted community dominates.
	giant := bundle("giant-community")
	counts := map[int32]int{}
	for _, c := range giant.Truth.HomeCommunity {
		counts[c]++
	}
	biggest := 0
	for _, n := range counts {
		if n > biggest {
			biggest = n
		}
	}
	if frac := float64(biggest) / float64(giant.Graph.NumUsers); frac < 0.7 {
		t.Errorf("giant-community's largest community holds only %.0f%% of users", 100*frac)
	}

	// Spam vocabulary: the spam block dominates the word marginal.
	spam := bundle("spam-vocab")
	var spamTokens, tokens int
	for _, d := range spam.Graph.Docs {
		for _, w := range d.Words {
			tokens++
			if int(w) < spam.Preset.Synth.SpamWords {
				spamTokens++
			}
		}
	}
	if frac := float64(spamTokens) / float64(tokens); frac < 0.35 {
		t.Errorf("spam-vocab corpus is only %.0f%% spam tokens, want ~50%%", 100*frac)
	}

	// Sparse docs: single-word documents exist (the degenerate case the
	// preset is for), and docs-per-user stays minimal.
	sparse := bundle("sparse-docs")
	oneWord := 0
	for _, d := range sparse.Graph.Docs {
		if len(d.Words) == 1 {
			oneWord++
		}
	}
	if oneWord == 0 {
		t.Error("sparse-docs planted no single-word documents")
	}

	// Overlapping memberships: planted secondary mass is near the home's.
	over := bundle("overlapping")
	u0 := over.Truth.Pi.Row(0)
	first, second := 0.0, 0.0
	for _, v := range u0 {
		if v > first {
			first, second = v, first
		} else if v > second {
			second = v
		}
	}
	if second < 0.3*first {
		t.Errorf("overlapping membership is not overlapping: top=%.2f second=%.2f", first, second)
	}
}

// TestScenarioRegression is the end-to-end suite: every preset trains,
// snapshots, serves and answers queries with all invariants intact, and
// its metrics match the committed golden file. Presets run in parallel;
// CI additionally runs three fast presets under the race detector.
func TestScenarioRegression(t *testing.T) {
	for _, p := range All() {
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			m, err := Run(p, RunOptions{Dir: t.TempDir()})
			if err != nil {
				t.Fatal(err)
			}
			path := GoldenPath(p.Name)
			if *update {
				if err := WriteGolden(path, m); err != nil {
					t.Fatal(err)
				}
				t.Logf("golden re-pinned: %+v", *m)
				return
			}
			want, err := ReadGolden(path)
			if err != nil {
				t.Fatalf("no golden metrics for %s (generate with -update): %v", p.Name, err)
			}
			if err := CompareGolden(m, want); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestGoldenCompare(t *testing.T) {
	base := &Metrics{Preset: "x", Users: 10, Docs: 20, NMI: 0.5, DiffusionAUC: 0.7, RankAgreement: 1}
	same := *base
	if err := CompareGolden(&same, base); err != nil {
		t.Fatalf("identical metrics flagged: %v", err)
	}
	within := *base
	within.NMI += floatTol / 2
	if err := CompareGolden(&within, base); err != nil {
		t.Fatalf("within-tolerance drift flagged: %v", err)
	}
	drifted := *base
	drifted.NMI += 2 * floatTol
	if err := CompareGolden(&drifted, base); err == nil {
		t.Fatal("NMI drift not flagged")
	}
	counts := *base
	counts.Docs++
	if err := CompareGolden(&counts, base); err == nil {
		t.Fatal("count drift not flagged")
	}
}

func TestGoldenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m := &Metrics{Preset: "rt", Users: 3, Docs: 4, FriendLinks: 5, DiffLinks: 6, Vocab: 7,
		NMI: 0.25, DiffusionAUC: 0.5, RankAgreement: 1}
	path := dir + "/rt.json"
	if err := WriteGolden(path, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadGolden(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("golden round trip: %+v != %+v", got, m)
	}
}
