// Package scenario is the workload harness: named, seeded presets that
// stress the trainer and the serving engine across the regimes the paper's
// evaluation spans — power-law vs. uniform degree, overlapping vs. disjoint
// communities, Zipfian vs. flat vocabularies, bursty vs. steady diffusion —
// plus the degenerate cases a production service meets (isolated users,
// single-word documents, spam-dominated vocabularies, one giant community).
//
// Each preset expands to a graph + vocabulary + ground-truth bundle through
// internal/synth, a matching training configuration, and per-scenario
// regression floors. On top of the presets sit two consumers:
//
//   - Run (runner.go): the deterministic end-to-end regression check —
//     train → binary snapshot → serve.Engine → query (library and HTTP
//     surface) — verifying ground-truth recovery (NMI), fold-in
//     determinism, rank-index/full-scan agreement and snapshot round-trip
//     equality, with golden metric files (golden.go) for drift detection;
//   - LoadGen (loadgen.go): the query traffic generator behind
//     cmd/cpd-loadgen, replaying configurable rank/membership/diffusion/
//     fold-in mixes against an engine or a live HTTP endpoint.
//
// cmd/cpd-synth resolves -scenario names through this registry, so the CLI
// and the test suite share one generator path.
package scenario

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/socialgraph"
	"repro/internal/synth"
)

// Preset names one workload regime: the planted generative configuration,
// the training configuration the regression suite uses against it, and the
// per-scenario quality floors the end-to-end check enforces.
type Preset struct {
	Name        string
	Description string

	// Synth is the planted generative process (seed included).
	Synth synth.Config
	// Train is the regression suite's training configuration. Workers is
	// fixed at 2 — training is bit-identical for every worker count, so
	// the value only shapes wall-clock.
	Train core.Config

	// MinNMI is the floor on normalized mutual information between
	// detected top communities and the planted home communities.
	// Adversarial presets keep intentionally low floors: the invariant
	// there is that the pipeline survives, not that it wins.
	MinNMI float64
	// MinDiffusionAUC is the floor on held-in diffusion-link AUC
	// (0 skips the check — e.g. presets with too few diffusion links).
	MinDiffusionAUC float64
}

// regressionScale is the shared small scale of the regression presets:
// big enough for planted structure to be recoverable, small enough that
// the full suite trains every preset in seconds.
func regressionScale(name string, seed uint64) synth.Config {
	return synth.Config{
		Name: name, Seed: seed,
		Users: 140, Communities: 6, Topics: 8,
		VocabSize:       240,
		DocsPerUserMean: 5, WordsPerDocMean: 6,
		FriendIntraDeg: 9, FriendInterDeg: 2,
		DiffLinks: 420, CitesPerDoc: 1, CopyWords: true, NoiseDiff: 0.1,
		TimeBuckets: 24, PopularityBurst: true,
		SelfDiffBias: 3,
	}
}

func regressionTrain(seed uint64) core.Config {
	return core.Config{
		NumCommunities: 6, NumTopics: 8,
		EMIters: 14, Workers: 2, Seed: seed, Rho: 1.0 / 6,
	}
}

func preset(name, desc string, minNMI, minAUC float64, seed uint64, tweak func(*synth.Config)) Preset {
	cfg := regressionScale(name, seed)
	if tweak != nil {
		tweak(&cfg)
	}
	return Preset{
		Name: name, Description: desc,
		Synth: cfg, Train: regressionTrain(seed + 1),
		MinNMI: minNMI, MinDiffusionAUC: minAUC,
	}
}

// presets is the registry, in display order. Seeds are fixed and distinct
// so every preset is reproducible in isolation.
var presets = []Preset{
	preset("uniform",
		"flat Poisson degrees, near-equal community sizes, steady time, flat vocabulary",
		0.45, 0.60, 101, func(c *synth.Config) {
			c.SizeExponent = 0.05
			c.PopularityBurst = false
		}),
	preset("power-law",
		"Pareto degree multipliers and Zipf community sizes — the Twitter-shaped regime",
		0.45, 0.60, 102, func(c *synth.Config) {
			c.DegreeExponent = 1.2
			c.SizeExponent = 1.0
		}),
	preset("overlapping",
		"memberships split nearly evenly across two communities per user",
		0.35, 0.60, 103, func(c *synth.Config) {
			c.HomeWeight = 0.50
		}),
	preset("disjoint",
		"near-hard memberships: 93% of each user's mass on one community",
		0.45, 0.60, 104, func(c *synth.Config) {
			c.HomeWeight = 0.93
		}),
	preset("zipf-vocab",
		"word frequencies skewed by (w+1)^-1: a natural-language-shaped vocabulary",
		0.50, 0.60, 105, func(c *synth.Config) {
			c.VocabZipf = 1.0
		}),
	preset("bursty",
		"topic-popularity bursts concentrated in 12 buckets, dense retweet cascades",
		0.55, 0.60, 106, func(c *synth.Config) {
			c.TimeBuckets = 12
			c.DiffLinks = 700
			c.NoiseDiff = 0.05
		}),
	preset("steady",
		"no popularity bursts: timestamps uniform, diffusion driven by profiles alone",
		0.40, 0.55, 107, func(c *synth.Config) {
			c.PopularityBurst = false
		}),
	preset("citation-web",
		"symmetric co-authorship links and multi-source citing documents (DBLP-shaped)",
		0.40, 0.55, 108, func(c *synth.Config) {
			c.Symmetric = true
			c.CitesPerDoc = 4
			c.CopyWords = false
			c.FriendIntraDeg = 4
			c.FriendInterDeg = 1
			c.DiffLinks = 300
		}),
	preset("isolated-users",
		"adversarial: 35% of users publish but hold no friendship links at all",
		0.30, 0.60, 109, func(c *synth.Config) {
			c.IsolatedFraction = 0.35
		}),
	preset("sparse-docs",
		"adversarial: one document per user, down to a single word each",
		0.30, 0.55, 110, func(c *synth.Config) {
			c.DocsPerUserMean = 1
			c.WordsPerDocMean = 2
			c.MinWordsPerDoc = 1
		}),
	preset("spam-vocab",
		"adversarial: half of every topic's probability mass on 12 shared spam words",
		0.40, 0.55, 111, func(c *synth.Config) {
			c.SpamWords = 12
			c.SpamMass = 0.5
		}),
	preset("giant-community",
		"adversarial: Zipf exponent 3 collapses almost everyone into one community",
		0.05, 0.55, 112, func(c *synth.Config) {
			c.SizeExponent = 3.0
		}),
	preset("noisy-graph",
		"structure-blind: friendship links near community-agnostic, only content separates communities — where the joint model beats pure label propagation",
		0.15, 0.55, 114, func(c *synth.Config) {
			c.FriendIntraDeg = 3
			c.FriendInterDeg = 8
		}),
	largeScale(),
}

// largeScale is the scale-out preset: 5x the users and ~8x the vocabulary
// of the regression scale, with heavy-tailed degrees — big enough that
// the v2 mapped serving path (which every scenario run exercises) covers
// multi-megabyte matrix sections, while EM iterations are trimmed so the
// full suite stays fast.
func largeScale() Preset {
	p := preset("large-scale",
		"production-shaped: 700 users, 2000-word vocabulary, Pareto degrees; exercises the mapped v2 serving path at scale",
		0.30, 0.55, 113, func(c *synth.Config) {
			c.Users = 700
			c.VocabSize = 2000
			c.DocsPerUserMean = 4
			c.FriendIntraDeg = 7
			c.DiffLinks = 1500
			c.DegreeExponent = 1.1
			c.SizeExponent = 0.8
		})
	p.Train.EMIters = 8
	return p
}

// All returns the preset registry in display order (a copy).
func All() []Preset {
	out := make([]Preset, len(presets))
	copy(out, presets)
	return out
}

// Names returns the sorted preset names.
func Names() []string {
	names := make([]string, len(presets))
	for i, p := range presets {
		names[i] = p.Name
	}
	sort.Strings(names)
	return names
}

// Lookup resolves a preset by name.
func Lookup(name string) (Preset, error) {
	for _, p := range presets {
		if p.Name == name {
			return p, nil
		}
	}
	return Preset{}, fmt.Errorf("scenario: unknown preset %q (have %v)", name, Names())
}

// Bundle is one expanded scenario: the graph, its themed vocabulary, and
// the planted ground truth.
type Bundle struct {
	Preset Preset
	Graph  *socialgraph.Graph
	Vocab  *corpus.Vocabulary
	Truth  *synth.GroundTruth
}

// Build expands a preset into its graph + vocabulary + ground-truth
// bundle. The result is deterministic per preset; the graph is validated
// before it is returned, and the generator must not have dropped users
// (ground-truth alignment depends on stable user ids).
func Build(p Preset) (*Bundle, error) {
	g, gt := synth.Generate(p.Synth)
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("scenario %s: generator produced an invalid graph: %w", p.Name, err)
	}
	if g.NumUsers != p.Synth.Users {
		return nil, fmt.Errorf("scenario %s: generator dropped users (%d of %d left), ground truth misaligned",
			p.Name, g.NumUsers, p.Synth.Users)
	}
	return &Bundle{Preset: p, Graph: g, Vocab: synth.BuildVocabulary(p.Synth), Truth: gt}, nil
}
