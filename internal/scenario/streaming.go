package scenario

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/serve"
	"repro/internal/socialgraph"
	"repro/internal/stream"
)

// StreamPreset names one streaming-ingest regime: how much of a base
// preset's population is trained into the frozen base model, in what
// pattern the rest arrives as live events, and which invariants the run
// must uphold.
type StreamPreset struct {
	Name        string
	Description string

	// Base is the underlying population preset (graph, truth, training
	// config); BaseFraction of its users form the trained base model, the
	// rest arrive through the journal.
	Base         Preset
	BaseFraction float64

	// BatchEvents is the ingest batch size (1 = strict event-by-event
	// drip); WindowEvents the updater's publish window.
	BatchEvents  int
	WindowEvents int

	// HoldoutDocs streams this fraction of each base user's documents as
	// live add-doc events instead of training on them — the "changed
	// trained user" churn regime.
	HoldoutDocs float64

	// GibbsEvery > 0 runs the resumable delta-Gibbs refinement every
	// N publishes (disables the replay-equals-batch check, which only
	// holds for pure fold-in).
	GibbsEvery int

	// QualityEvery > 0 scores every N-th published generation with the
	// structural quality metrics (internal/quality), PLP baseline
	// included; the run asserts reports accumulated with drift tracked
	// between consecutive scored generations.
	QualityEvery int

	// MinNMI floors the full-population NMI (base + streamed users'
	// top communities vs. the planted truth) after all events land.
	MinNMI float64
}

// StreamPresets returns the streaming regimes the regression suite runs.
func StreamPresets() []StreamPreset {
	mk := func(name, desc, from string, f func(*StreamPreset)) StreamPreset {
		bp, err := Lookup(from)
		if err != nil {
			panic(err)
		}
		sp := StreamPreset{
			Name: name, Description: desc, Base: bp,
			BaseFraction: 0.75, BatchEvents: 1, WindowEvents: 8,
			MinNMI: 0.30,
		}
		if f != nil {
			f(&sp)
		}
		return sp
	}
	return []StreamPreset{
		mk("steady-drip",
			"one event at a time, publish every 8: the always-on trickle; pins replay-equals-batch and quality scoring",
			"uniform", func(sp *StreamPreset) {
				sp.QualityEvery = 4
			}),
		mk("burst",
			"whole-population burst in big batches, one publish window: the backfill shape",
			"power-law", func(sp *StreamPreset) {
				sp.BatchEvents = 64
				sp.WindowEvents = 256
			}),
		mk("user-churn",
			"new users plus fresh documents on trained users, delta-Gibbs every 2 publishes",
			"disjoint", func(sp *StreamPreset) {
				sp.HoldoutDocs = 0.3
				sp.BatchEvents = 16
				sp.WindowEvents = 32
				sp.GibbsEvery = 2
				sp.MinNMI = 0.35
			}),
	}
}

// LookupStream resolves a streaming preset by name.
func LookupStream(name string) (StreamPreset, error) {
	for _, p := range StreamPresets() {
		if p.Name == name {
			return p, nil
		}
	}
	var names []string
	for _, p := range StreamPresets() {
		names = append(names, p.Name)
	}
	return StreamPreset{}, fmt.Errorf("scenario: unknown streaming preset %q (have %v)", name, names)
}

// StreamMetrics is one streaming run's end-to-end measurement.
type StreamMetrics struct {
	Preset       string `json:"preset"`
	BaseUsers    int    `json:"baseUsers"`
	TotalUsers   int    `json:"totalUsers"`
	Events       int    `json:"events"`
	SkippedDiffs int    `json:"skippedDiffs"`

	Publishes   uint64 `json:"publishes"`
	GibbsPasses uint64 `json:"gibbsPasses"`
	QualityRuns uint64 `json:"qualityRuns"`
	// IncrementalPublishes counts the publishes that took the O(changed)
	// path (patched model and indexes) rather than a full rebuild; the
	// run verifies these serve bit-identically to a shadow updater forced
	// to rebuild everything.
	IncrementalPublishes uint64 `json:"incrementalPublishes"`

	// NMI is detected-vs-planted agreement over the FULL population —
	// trained base users and streamed users together.
	NMI float64 `json:"nmi"`
	// ReadQueries/ReadErrors account the concurrent read hammer that runs
	// during ingest (the under-load half of the freshness invariant).
	ReadQueries uint64 `json:"readQueries"`
	ReadErrors  uint64 `json:"readErrors"`
}

// prefixGraph cuts the full bundle graph down to its first baseUsers
// users, minus held-out documents, returning the subgraph, the
// full-graph→prefix doc id map (-1 = not in the prefix) and the held-out
// doc ids in full-graph order.
func prefixGraph(g *socialgraph.Graph, baseUsers int, holdout map[int32]bool) (*socialgraph.Graph, []int32, []int32) {
	sub := &socialgraph.Graph{NumUsers: baseUsers, NumWords: g.NumWords}
	docMap := make([]int32, len(g.Docs))
	var held []int32
	for i, d := range g.Docs {
		docMap[i] = -1
		if int(d.User) >= baseUsers {
			continue
		}
		if holdout[int32(i)] {
			held = append(held, int32(i))
			continue
		}
		docMap[i] = int32(len(sub.Docs))
		sub.Docs = append(sub.Docs, d)
	}
	for _, f := range g.Friends {
		if int(f.U) < baseUsers && int(f.V) < baseUsers {
			sub.Friends = append(sub.Friends, f)
		}
	}
	for _, e := range g.Diffs {
		if docMap[e.I] >= 0 && docMap[e.J] >= 0 {
			sub.Diffs = append(sub.Diffs, socialgraph.DiffLink{I: docMap[e.I], J: docMap[e.J], T: e.T})
		}
	}
	return sub, docMap, held
}

// buildStreamEvents turns everything the prefix graph lacks into an
// ordered event sequence: held-out base-user documents first-come, then
// the remaining users arriving one by one with their edges, documents and
// diffusions. Diffusion links whose target document never materialized,
// or whose source document already diffused once, are skipped (counted).
func buildStreamEvents(g *socialgraph.Graph, baseUsers int, docMap []int32, held []int32) (evs []stream.Event, skippedDiffs int) {
	// globalID[fullDoc] = the doc's id in the stream numbering (prefix
	// docs keep their prefix id; streamed docs get base+k as they are
	// emitted); -1 = not (yet) present.
	baseDocs := 0
	for _, id := range docMap {
		if id >= 0 {
			baseDocs++
		}
	}
	globalID := make([]int32, len(g.Docs))
	copy(globalID, docMap)
	nextDoc := int32(baseDocs)

	// diffBySource[i] lists the diff links with source doc i.
	diffBySource := make(map[int32][]socialgraph.DiffLink)
	for _, e := range g.Diffs {
		diffBySource[e.I] = append(diffBySource[e.I], e)
	}
	userDocs := make([][]int32, g.NumUsers)
	for i, d := range g.Docs {
		userDocs[d.User] = append(userDocs[d.User], int32(i))
	}

	emitDoc := func(doc int32) {
		d := g.Docs[doc]
		// A document that diffuses an already-present document becomes one
		// diffusion event; everything else is a plain add-doc. Only the
		// first qualifying link is expressible (the event creates the doc).
		links := diffBySource[doc]
		emitted := false
		for _, l := range links {
			if !emitted && globalID[l.J] >= 0 {
				evs = append(evs, stream.Event{Type: stream.EvDiffusion, User: d.User, Target: globalID[l.J], Time: l.T, Words: d.Words})
				emitted = true
			} else {
				skippedDiffs++
			}
		}
		if !emitted {
			evs = append(evs, stream.Event{Type: stream.EvAddDoc, User: d.User, Time: d.Time, Words: d.Words})
		}
		globalID[doc] = nextDoc
		nextDoc++
	}

	// Held-out base-user documents drip in first (the churn half).
	for _, doc := range held {
		emitDoc(doc)
	}
	// Then the streamed users, ascending, each followed by their edges to
	// already-present users and their documents.
	for u := baseUsers; u < g.NumUsers; u++ {
		evs = append(evs, stream.Event{Type: stream.EvAddUser, User: int32(u)})
		// An edge is emitted once its later endpoint materializes.
		for _, f := range g.Friends {
			if int(f.U) == u && int(f.V) < u {
				evs = append(evs, stream.Event{Type: stream.EvAddEdge, User: f.U, Target: f.V})
			} else if int(f.V) == u && int(f.U) < u && int(f.U) >= baseUsers {
				evs = append(evs, stream.Event{Type: stream.EvAddEdge, User: f.V, Target: f.U})
			} else if int(f.V) == u && int(f.U) < baseUsers {
				// Base-user edge to a just-arrived user.
				evs = append(evs, stream.Event{Type: stream.EvAddEdge, User: f.V, Target: f.U})
			}
		}
		for _, doc := range userDocs[u] {
			emitDoc(doc)
		}
	}
	return evs, skippedDiffs
}

// RunStream executes one streaming preset end to end and verifies its
// invariants:
//
//   - freshness: a probe event ingested mid-run is query-visible after
//     exactly one publish cycle, while a concurrent read hammer runs;
//   - replay-equals-batch (pure fold-in presets): the incrementally
//     ingested corpus serves bit-identical memberships and document
//     assignments to batch-folding the same final corpus in one window;
//   - quality: full-population NMI (base + streamed users) stays above
//     the preset floor;
//   - the delta-Gibbs cadence fires when configured.
func RunStream(p StreamPreset, opts RunOptions) (*StreamMetrics, error) {
	b, err := Build(p.Base)
	if err != nil {
		return nil, err
	}
	g := b.Graph
	baseUsers := int(float64(g.NumUsers) * p.BaseFraction)
	if baseUsers < 2 || baseUsers >= g.NumUsers {
		return nil, fmt.Errorf("scenario %s: base fraction %.2f leaves no streamed users", p.Name, p.BaseFraction)
	}
	// Hold out a deterministic tail slice of each base user's documents
	// under churn: the first ceil((1-f)·n) docs train, the rest stream.
	holdout := map[int32]bool{}
	if p.HoldoutDocs > 0 {
		total := map[int32]int{}
		for _, d := range g.Docs {
			if int(d.User) < baseUsers {
				total[d.User]++
			}
		}
		seen := map[int32]int{}
		for i, d := range g.Docs {
			if int(d.User) >= baseUsers {
				continue
			}
			seen[d.User]++
			keep := total[d.User] - int(p.HoldoutDocs*float64(total[d.User]))
			if keep < 1 {
				keep = 1
			}
			if seen[d.User] > keep {
				holdout[int32(i)] = true
			}
		}
	}
	baseG, docMap, held := prefixGraph(g, baseUsers, holdout)
	if err := baseG.Validate(); err != nil {
		return nil, fmt.Errorf("scenario %s: base subgraph invalid: %w", p.Name, err)
	}
	baseModel, _, err := core.Train(baseG, p.Base.Train)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: base training failed: %w", p.Name, err)
	}
	evs, skipped := buildStreamEvents(g, baseUsers, docMap, held)

	var cleanups []func()
	defer func() {
		for _, fn := range cleanups {
			fn()
		}
	}()
	newUpdater := func(tag string, fullRebuild bool) (*serve.Engine, *stream.Journal, *stream.Updater, error) {
		engine := serve.New(baseModel, b.Vocab, serve.Options{})
		tmp, err := os.MkdirTemp(opts.Dir, "cpd-stream-"+tag+"-*")
		if err != nil {
			engine.Close()
			return nil, nil, nil, err
		}
		cleanups = append(cleanups, func() { os.RemoveAll(tmp) })
		j, err := stream.OpenJournal(filepath.Join(tmp, "events.wal"), stream.JournalOptions{})
		if err != nil {
			engine.Close()
			return nil, nil, nil, err
		}
		u, err := stream.NewUpdater(j, stream.Options{
			Engine:       engine,
			Base:         baseModel,
			Vocab:        b.Vocab,
			WindowEvents: p.WindowEvents,
			FoldSweeps:   10,
			FoldSeed:     p.Base.Synth.Seed,
			GibbsEvery:   p.GibbsEvery,
			GibbsSweeps:  2,
			BaseGraph:    baseG,
			Workers:      2,
			FullRebuild:  fullRebuild,
			Quality:      p.QualityEvery,
			QualityPLP:   p.QualityEvery > 0,
		})
		if err != nil {
			j.Close()
			engine.Close()
			return nil, nil, nil, err
		}
		return engine, j, u, nil
	}

	engine, j, u, err := newUpdater("incr", false)
	if err != nil {
		return nil, err
	}
	defer engine.Close()
	defer j.Close()
	defer u.Close()

	// Shadow updater: same events, same publish cadence, but every publish
	// forced down the full-rebuild path — the baseline the incremental
	// publisher must serve bit-identically to.
	fbEngine, fbJournal, fb, err := newUpdater("fullrb", true)
	if err != nil {
		return nil, err
	}
	defer fbEngine.Close()
	defer fbJournal.Close()
	defer fb.Close()

	m := &StreamMetrics{
		Preset: p.Name, BaseUsers: baseUsers, TotalUsers: g.NumUsers,
		Events: len(evs), SkippedDiffs: skipped,
	}
	var problems []string
	fail := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}

	// Concurrent read hammer: queries flow against the engine for the
	// whole ingest, and none may error (hot-swaps must be invisible).
	stopReads := make(chan struct{})
	var wg sync.WaitGroup
	var reads, readErrs atomic.Uint64
	wg.Add(1)
	go func() {
		defer wg.Done()
		w := 0
		for {
			select {
			case <-stopReads:
				return
			default:
			}
			reads.Add(1)
			if _, err := engine.Rank([]int32{int32(w % baseModel.NumWords)}, 3); err != nil {
				readErrs.Add(1)
			}
			reads.Add(1)
			if _, err := engine.Membership(w%baseUsers, 3); err != nil {
				readErrs.Add(1)
			}
			w++
		}
	}()

	// Ingest in the preset's batch pattern, publishing per window.
	for i := 0; i < len(evs); i += p.BatchEvents {
		end := i + p.BatchEvents
		if end > len(evs) {
			end = len(evs)
		}
		if _, err := u.Ingest(evs[i:end]); err != nil {
			close(stopReads)
			wg.Wait()
			return m, fmt.Errorf("scenario %s: ingest failed at event %d: %w", p.Name, i, err)
		}
		if _, _, err := u.MaybePublish(); err != nil {
			close(stopReads)
			wg.Wait()
			return m, fmt.Errorf("scenario %s: publish failed: %w", p.Name, err)
		}
		if _, err := fb.Ingest(evs[i:end]); err != nil {
			close(stopReads)
			wg.Wait()
			return m, fmt.Errorf("scenario %s: shadow ingest failed at event %d: %w", p.Name, i, err)
		}
		if _, _, err := fb.MaybePublish(); err != nil {
			close(stopReads)
			wg.Wait()
			return m, fmt.Errorf("scenario %s: shadow publish failed: %w", p.Name, err)
		}
	}
	if _, err := u.Publish(); err != nil {
		close(stopReads)
		wg.Wait()
		return m, fmt.Errorf("scenario %s: final publish failed: %w", p.Name, err)
	}
	if _, err := fb.Publish(); err != nil {
		close(stopReads)
		wg.Wait()
		return m, fmt.Errorf("scenario %s: shadow final publish failed: %w", p.Name, err)
	}

	// Freshness probe: one more user+doc, one publish cycle, visible —
	// all while the read hammer is still running.
	probeUser := int32(g.NumUsers)
	probeEvents := []stream.Event{
		{Type: stream.EvAddUser, User: probeUser},
		{Type: stream.EvAddDoc, User: probeUser, Time: 1 << 20, Words: g.Docs[0].Words},
	}
	genBefore := u.Generation()
	if _, err := u.Ingest(probeEvents); err != nil {
		close(stopReads)
		wg.Wait()
		return m, fmt.Errorf("scenario %s: probe ingest failed: %w", p.Name, err)
	}
	if _, err := engine.Membership(int(probeUser), 3); err == nil {
		fail("probe user visible before any publish cycle")
	}
	if _, err := u.Publish(); err != nil {
		close(stopReads)
		wg.Wait()
		return m, fmt.Errorf("scenario %s: probe publish failed: %w", p.Name, err)
	}
	if u.Generation() != genBefore+1 {
		fail("probe publish did not advance exactly one generation (%d -> %d)", genBefore, u.Generation())
	}
	if res, err := engine.Membership(int(probeUser), 3); err != nil || len(res.Communities) == 0 {
		fail("probe event not query-visible within one publish cycle (%v)", err)
	}
	if _, err := fb.Ingest(probeEvents); err != nil {
		close(stopReads)
		wg.Wait()
		return m, fmt.Errorf("scenario %s: shadow probe ingest failed: %w", p.Name, err)
	}
	if _, err := fb.Publish(); err != nil {
		close(stopReads)
		wg.Wait()
		return m, fmt.Errorf("scenario %s: shadow probe publish failed: %w", p.Name, err)
	}
	close(stopReads)
	wg.Wait()
	m.ReadQueries, m.ReadErrors = reads.Load(), readErrs.Load()
	if m.ReadErrors > 0 {
		fail("%d of %d concurrent reads failed during ingest", m.ReadErrors, m.ReadQueries)
	}

	st := u.Status()
	m.Publishes, m.GibbsPasses = st.Publishes, st.GibbsPasses
	m.IncrementalPublishes = st.IncrementalPublishes
	m.QualityRuns = st.QualityRuns
	if p.GibbsEvery > 0 && st.GibbsPasses == 0 {
		fail("delta-Gibbs never ran despite GibbsEvery=%d over %d publishes", p.GibbsEvery, st.Publishes)
	}
	if p.QualityEvery > 0 {
		if st.QualityRuns == 0 {
			fail("quality scoring never ran despite QualityEvery=%d over %d publishes", p.QualityEvery, st.Publishes)
		}
		history, baseline := engine.QualityHistory(serve.DefaultSnapshot)
		if len(history) == 0 {
			fail("quality ran %d times but the engine recorded no history", st.QualityRuns)
		}
		for i, r := range history {
			if i > 0 && !r.HasPrev {
				fail("quality report for generation %d lost drift tracking against its predecessor", r.Generation)
			}
			if r.GraphEdges == 0 {
				fail("quality report for generation %d scored zero friendship edges", r.Generation)
			}
		}
		if baseline == nil || baseline.Algo != "plp" {
			fail("quality PLP baseline row missing from the engine history")
		}
	}
	if st.PendingEvents != 0 {
		fail("%d events still pending after the final publish", st.PendingEvents)
	}
	if st.Publishes >= 2 && st.IncrementalPublishes == 0 && p.GibbsEvery != 1 {
		fail("no publish took the incremental path over %d publishes", st.Publishes)
	}

	// Incremental-equals-full-rebuild, as served: after identical events
	// through identical publish cadences, the chain of patched snapshots
	// must answer every query bit-identically to the shadow's from-scratch
	// rebuilds.
	if diff := servedDiff(engine, fbEngine, g.NumUsers+1, baseModel.NumWords); diff != "" {
		fail("incremental and full-rebuild publishes serve differently: %s", diff)
	}

	// Replay-equals-batch (pure fold-in only): batch-ingest the identical
	// event sequence (probe included) and compare the extended models.
	if p.GibbsEvery == 0 {
		bEngine, bJournal, batch, err := newUpdater("batch", false)
		if err != nil {
			return m, err
		}
		defer bEngine.Close()
		defer bJournal.Close()
		defer batch.Close()
		all := append(append([]stream.Event{}, evs...),
			stream.Event{Type: stream.EvAddUser, User: probeUser},
			stream.Event{Type: stream.EvAddDoc, User: probeUser, Time: 1 << 20, Words: g.Docs[0].Words})
		if _, err := batch.Ingest(all); err != nil {
			return m, fmt.Errorf("scenario %s: batch ingest failed: %w", p.Name, err)
		}
		if _, err := batch.Publish(); err != nil {
			return m, fmt.Errorf("scenario %s: batch publish failed: %w", p.Name, err)
		}
		am, bm := u.Model(), batch.Model()
		if !floatsEqual(am.Pi.Data, bm.Pi.Data) {
			fail("incremental replay and batch fold-in serve different memberships")
		}
		if !int32Equal(am.DocCommunity, bm.DocCommunity) || !int32Equal(am.DocTopic, bm.DocTopic) {
			fail("incremental replay and batch fold-in disagree on document assignments")
		}
	}

	// Quality floor over the full population.
	final := u.Model()
	detected := make([]int32, final.NumUsers)
	for id := range detected {
		detected[id] = int32(final.TopCommunity(id))
	}
	truth := b.Truth.HomeCommunity
	if len(truth) > final.NumUsers {
		truth = truth[:final.NumUsers]
	} else if len(truth) < final.NumUsers {
		detected = detected[:len(truth)]
	}
	m.NMI = eval.NMI(detected[:len(truth)], truth)
	if m.NMI < p.MinNMI {
		fail("full-population NMI %.4f below the streaming floor %.2f", m.NMI, p.MinNMI)
	}

	if len(problems) > 0 {
		return m, fmt.Errorf("scenario %s: %s", p.Name, strings.Join(problems, "; "))
	}
	return m, nil
}

// servedDiff compares everything two engines serve on their default
// slots — per-user memberships, word-query rankings and community
// summaries — with the process-local Version counters normalized away.
// It returns "" when they are bit-identical, else a description of the
// first divergence.
func servedDiff(a, b *serve.Engine, users, words int) string {
	for id := 0; id < users; id++ {
		ra, ea := a.Membership(id, 5)
		rb, eb := b.Membership(id, 5)
		if (ea != nil) != (eb != nil) {
			return fmt.Sprintf("membership(%d) errors diverge: %v vs %v", id, ea, eb)
		}
		if ea != nil {
			continue
		}
		ra.Version, rb.Version = 0, 0
		if !reflect.DeepEqual(ra, rb) {
			return fmt.Sprintf("membership(%d): %+v vs %+v", id, ra, rb)
		}
	}
	step := words / 16
	if step < 1 {
		step = 1
	}
	for w := 0; w < words; w += step {
		ra, ea := a.Rank([]int32{int32(w)}, 5)
		rb, eb := b.Rank([]int32{int32(w)}, 5)
		if (ea != nil) != (eb != nil) {
			return fmt.Sprintf("rank(%d) errors diverge: %v vs %v", w, ea, eb)
		}
		if ea != nil {
			continue
		}
		ra.Version, rb.Version = 0, 0
		if !reflect.DeepEqual(ra, rb) {
			return fmt.Sprintf("rank(%d): %+v vs %+v", w, ra, rb)
		}
	}
	if ca, cb := a.Communities(), b.Communities(); !reflect.DeepEqual(ca, cb) {
		return fmt.Sprintf("community summaries: %+v vs %+v", ca, cb)
	}
	return ""
}

func floatsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func int32Equal(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
