package scenario

import (
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/quality"
	"repro/internal/serve"
	"repro/internal/store"
)

// Metrics is one scenario's end-to-end measurement: dataset shape plus the
// quality and agreement scores the regression suite pins with golden
// files. Everything here is deterministic per preset.
type Metrics struct {
	Preset string `json:"preset"`

	Users       int `json:"users"`
	Docs        int `json:"docs"`
	FriendLinks int `json:"friendLinks"`
	DiffLinks   int `json:"diffLinks"`
	Vocab       int `json:"vocab"`

	// NMI is detected-vs-planted community agreement (eval.NMI).
	NMI float64 `json:"nmi"`
	// DiffusionAUC scores the trained model on observed diffusion links
	// vs. sampled non-links.
	DiffusionAUC float64 `json:"diffusionAUC"`
	// RankAgreement is the fraction of probe single-word queries whose
	// full ranking through the serving engine's inverted index matches
	// the model's exact K×|Z| scan. With full posting lists this must
	// be 1.0 — any deficit is an index regression.
	RankAgreement float64 `json:"rankAgreement"`

	// Structural quality of the trained partition over the friendship
	// graph (internal/quality): golden-pinned so a sampler change that
	// degrades community structure fails the suite even when NMI drifts
	// inside its tolerance.
	Modularity     float64 `json:"modularity"`
	Coverage       float64 `json:"coverage"`
	AvgConductance float64 `json:"avgConductance"`
	SizeP50        int     `json:"sizeP50"`

	// PLPNMI scores the parallel label-propagation baseline's partition
	// against the same planted truth — the comparison row. The trained
	// model is expected to beat it on content-driven presets.
	PLPNMI float64 `json:"plpNMI"`
}

// RunOptions tunes one regression run.
type RunOptions struct {
	// Dir is the scratch directory for snapshot files; empty uses a
	// fresh temporary directory that is removed afterwards.
	Dir string
	// SkipHTTP disables the JSON-API pass (the runner's default is to
	// drive one query of every kind through serve.APIHandler, making the
	// check end-to-end through the same surface cpd-serve exposes).
	SkipHTTP bool
}

// Run executes one preset's full regression: build the bundle, train,
// round-trip the model through a binary snapshot, stand up a serving
// engine, and verify every invariant. It returns the scenario metrics;
// the error aggregates every violated invariant (the metrics are still
// returned alongside, for reporting).
func Run(p Preset, opts RunOptions) (*Metrics, error) {
	b, err := Build(p)
	if err != nil {
		return nil, err
	}
	dir := opts.Dir
	if dir == "" {
		dir, err = os.MkdirTemp("", "cpd-scenario-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
	}

	model, _, err := core.Train(b.Graph, p.Train)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: training failed: %w", p.Name, err)
	}

	// Snapshot round-trip: the serving layer must load bit-identical
	// parameters from the binary format.
	snapPath := filepath.Join(dir, p.Name+".snap")
	if err := store.Save(snapPath, model); err != nil {
		return nil, fmt.Errorf("scenario %s: snapshot save failed: %w", p.Name, err)
	}
	loaded, err := store.LoadFile(snapPath)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: snapshot load failed: %w", p.Name, err)
	}

	var problems []string
	fail := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}
	if err := equalModels(model, loaded); err != nil {
		fail("snapshot round-trip: %v", err)
	}

	// Serve from the loaded snapshot with full posting lists, so
	// single-word ranking is exact by construction and any disagreement
	// with the full scan is a real index bug.
	engine := serve.New(loaded, b.Vocab, serve.Options{
		PostingsPerWord: loaded.Cfg.NumCommunities,
	})
	defer engine.Close()

	st := b.Graph.Stats()
	m := &Metrics{
		Preset: p.Name,
		Users:  st.Users, Docs: st.Docs,
		FriendLinks: st.FriendLinks, DiffLinks: st.DiffLinks,
		Vocab: st.Words,
	}

	m.NMI = nmiAgainstTruth(b, loaded)
	if m.NMI < p.MinNMI {
		fail("NMI %.4f below the scenario floor %.2f", m.NMI, p.MinNMI)
	}
	m.DiffusionAUC = diffusionAUC(b, loaded)
	if p.MinDiffusionAUC > 0 && m.DiffusionAUC < p.MinDiffusionAUC {
		fail("diffusion AUC %.4f below the scenario floor %.2f", m.DiffusionAUC, p.MinDiffusionAUC)
	}
	m.RankAgreement = rankAgreement(engine, loaded)
	if m.RankAgreement < 1 {
		fail("rank index agrees with the full scan on only %.0f%% of probe queries", 100*m.RankAgreement)
	}

	// Structural quality over the friendship graph, recorded on the engine
	// so the HTTP pass below exercises /api/quality against real history —
	// plus the PLP baseline as the comparison row, scored against the same
	// planted truth the model is.
	qr := quality.FromModel(loaded, b.Graph.Friends, nil)
	qr.Generation = 1
	m.Modularity = qr.Modularity
	m.Coverage = qr.Coverage
	m.AvgConductance = qr.AvgConductance
	m.SizeP50 = qr.SizeP50
	engine.RecordQuality(serve.DefaultSnapshot, qr)
	if len(b.Graph.Friends) > 0 {
		res := baselines.PLP(loaded.NumUsers, b.Graph.Friends, baselines.PLPOptions{Seed: p.Synth.Seed})
		m.PLPNMI = eval.NMI(res.Labels, b.Truth.HomeCommunity[:loaded.NumUsers])
		br := quality.Compute(res.Labels, res.Communities, b.Graph.Friends, nil)
		br.Algo = "plp"
		engine.RecordQualityBaseline(serve.DefaultSnapshot, br)
	}
	if err := checkFoldInDeterminism(engine, b); err != nil {
		fail("%v", err)
	}
	if err := checkMembershipAgreement(engine, loaded); err != nil {
		fail("%v", err)
	}
	if err := checkMappedPath(dir, p, model, engine, b); err != nil {
		fail("%v", err)
	}
	if !opts.SkipHTTP {
		if err := checkHTTPSurface(engine, b); err != nil {
			fail("%v", err)
		}
	}

	if len(problems) > 0 {
		return m, fmt.Errorf("scenario %s: %s", p.Name, strings.Join(problems, "; "))
	}
	return m, nil
}

// equalModels verifies that every parameter block survived serialization
// bit-identically.
func equalModels(a, b *core.Model) error {
	checks := []struct {
		name     string
		got, exp any
	}{
		{"config", b.Cfg, a.Cfg},
		{"dims", [4]int{b.NumUsers, b.NumWords, b.NumBuckets, b.NumAttrs},
			[4]int{a.NumUsers, a.NumWords, a.NumBuckets, a.NumAttrs}},
		{"pi", b.Pi.Data, a.Pi.Data},
		{"theta", b.Theta.Data, a.Theta.Data},
		{"phi", b.Phi.Data, a.Phi.Data},
		{"eta", b.Eta.Data, a.Eta.Data},
		{"nu", b.Nu, a.Nu},
		{"doc communities", b.DocCommunity, a.DocCommunity},
		{"doc topics", b.DocTopic, a.DocTopic},
		{"doc buckets", b.DocBucket, a.DocBucket},
	}
	for _, c := range checks {
		if !reflect.DeepEqual(c.got, c.exp) {
			return fmt.Errorf("%s not bit-identical after snapshot round-trip", c.name)
		}
	}
	return nil
}

// nmiAgainstTruth scores hard detected communities against the planted
// home communities.
func nmiAgainstTruth(b *Bundle, m *core.Model) float64 {
	detected := make([]int32, m.NumUsers)
	for u := range detected {
		detected[u] = int32(m.TopCommunity(u))
	}
	return eval.NMI(detected, b.Truth.HomeCommunity[:m.NumUsers])
}

// diffusionAUC scores observed diffusion links against sampled non-links,
// the integration suite's held-in discrimination check.
func diffusionAUC(b *Bundle, m *core.Model) float64 {
	g := b.Graph
	var pos []float64
	for k, e := range g.Diffs {
		if k%4 == 0 {
			pos = append(pos, m.DiffusionProb(g, int(g.Docs[e.I].User), int(e.J), m.DocBucket[e.I]))
		}
	}
	if len(pos) == 0 {
		return math.NaN()
	}
	var neg []float64
	for _, p := range eval.SampleNegativeDocPairs(g, len(pos), 5) {
		neg = append(neg, m.DiffusionProb(g, int(g.Docs[p[0]].User), p[1], m.DocBucket[p[0]]))
	}
	return eval.AUC(pos, neg)
}

// rankAgreement probes single-word queries across the vocabulary and
// reports the fraction whose full engine ranking matches the model's
// exact Eq. 19 scan (scores within 1e-9 relative, same ordering of
// distinct scores).
func rankAgreement(e *serve.Engine, m *core.Model) float64 {
	V, C := m.NumWords, m.Cfg.NumCommunities
	stride := V / 12
	if stride < 1 {
		stride = 1
	}
	probes, agree := 0, 0
	for w := 0; w < V; w += stride {
		probes++
		want := m.RankCommunities([]int32{int32(w)})
		res, err := e.Rank([]int32{int32(w)}, C)
		if err != nil {
			continue
		}
		got := make([]float64, C)
		for _, entry := range res.Entries {
			got[entry.Community] = entry.Score
		}
		ok := true
		for c := range want {
			if diff := math.Abs(want[c] - got[c]); diff > 1e-9*(math.Abs(want[c])+1e-12) {
				ok = false
				break
			}
		}
		if ok {
			agree++
		}
	}
	if probes == 0 {
		return math.NaN()
	}
	return float64(agree) / float64(probes)
}

// checkFoldInDeterminism folds the same unseen user in twice directly and
// twice more through the batch pool, requiring bit-identical results.
func checkFoldInDeterminism(e *serve.Engine, b *Bundle) error {
	g := b.Graph
	req := &serve.FoldInRequest{
		Docs: [][]int32{g.Docs[0].Words, g.Docs[len(g.Docs)/2].Words},
		Seed: 77,
	}
	if len(g.Friends) > 0 {
		req.Friends = []int32{g.Friends[0].U}
	}
	first, err := e.FoldIn(req)
	if err != nil {
		return fmt.Errorf("fold-in failed: %w", err)
	}
	second, err := e.FoldIn(req)
	if err != nil {
		return fmt.Errorf("fold-in failed on repeat: %w", err)
	}
	if !reflect.DeepEqual(first, second) {
		return errors.New("fold-in is not deterministic for a fixed seed")
	}
	batch, errs := e.FoldInBatch([]*serve.FoldInRequest{req, req})
	for _, err := range errs {
		if err != nil {
			return fmt.Errorf("fold-in batch failed: %w", err)
		}
	}
	if !reflect.DeepEqual(batch[0], first) || !reflect.DeepEqual(batch[1], first) {
		return errors.New("batched fold-in disagrees with the direct path")
	}
	return nil
}

// checkMappedPath verifies the zero-copy serving path end to end: the
// model round-trips bit-identically through a v2 snapshot opened via
// store.Open, a multi-snapshot engine serving the mapped model answers
// rank/membership/fold-in queries identically to the heap engine, and a
// mapped hot-reload mid-flight leaves answers unchanged.
func checkMappedPath(dir string, p Preset, model *core.Model, heap *serve.Engine, b *Bundle) error {
	v2Path := filepath.Join(dir, p.Name+".v2.snap")
	if err := store.SaveV2(v2Path, model); err != nil {
		return fmt.Errorf("v2 snapshot save failed: %w", err)
	}
	mm, err := store.Open(v2Path)
	if err != nil {
		return fmt.Errorf("v2 snapshot open failed: %w", err)
	}
	if err := equalModels(model, mm.Model); err != nil {
		return fmt.Errorf("mapped model: %v", err)
	}

	engine := serve.NewMulti(serve.Options{
		PostingsPerWord: model.Cfg.NumCommunities,
		Mmap:            true,
	})
	defer engine.Close()
	engine.SwapMapped("mapped", mm, b.Vocab)

	// Probe queries must answer identically through heap and mapped
	// engines (same model bits, same index construction).
	V := model.NumWords
	for _, w := range []int{0, V / 3, V - 1} {
		want, err1 := heap.Rank([]int32{int32(w)}, 5)
		got, err2 := engine.RankIn("mapped", []int32{int32(w)}, 5)
		if err1 != nil || err2 != nil {
			return fmt.Errorf("mapped rank probe failed: %v / %v", err1, err2)
		}
		if !rankEntriesEqual(want, got) {
			return fmt.Errorf("mapped engine ranks word %d differently from the heap engine", w)
		}
	}
	for _, u := range []int{0, model.NumUsers - 1} {
		want, err1 := heap.Membership(u, 3)
		got, err2 := engine.MembershipIn("mapped", u, 3)
		if err1 != nil || err2 != nil {
			return fmt.Errorf("mapped membership probe failed: %v / %v", err1, err2)
		}
		if !reflect.DeepEqual(want.Communities, got.Communities) {
			return fmt.Errorf("mapped engine serves user %d a different membership", u)
		}
	}
	req := &serve.FoldInRequest{Docs: [][]int32{b.Graph.Docs[0].Words}, Seed: 99}
	want, err := heap.FoldIn(req)
	if err != nil {
		return fmt.Errorf("heap fold-in failed: %w", err)
	}
	got, err := engine.FoldInNamed("mapped", req)
	if err != nil {
		return fmt.Errorf("mapped fold-in failed: %w", err)
	}
	want.Version, got.Version = 0, 0
	if !reflect.DeepEqual(want, got) {
		return fmt.Errorf("mapped fold-in disagrees with the heap engine")
	}

	// A mapped hot-reload must leave answers unchanged (same file).
	if _, err := engine.ReloadNamed("mapped", v2Path, ""); err != nil {
		return fmt.Errorf("mapped reload failed: %w", err)
	}
	want2, err1 := heap.Rank([]int32{1}, 5)
	got2, err2 := engine.RankIn("mapped", []int32{1}, 5)
	if err1 != nil || err2 != nil || !rankEntriesEqual(want2, got2) {
		return fmt.Errorf("answers drifted across a mapped hot-reload (%v / %v)", err1, err2)
	}
	return nil
}

// rankEntriesEqual compares rank results ignoring the snapshot version.
func rankEntriesEqual(a, b *serve.RankResult) bool {
	if len(a.Entries) != len(b.Entries) {
		return false
	}
	for i := range a.Entries {
		if a.Entries[i] != b.Entries[i] {
			return false
		}
	}
	return true
}

// checkMembershipAgreement compares served memberships against the model.
func checkMembershipAgreement(e *serve.Engine, m *core.Model) error {
	for _, u := range []int{0, m.NumUsers / 2, m.NumUsers - 1} {
		res, err := e.Membership(u, 3)
		if err != nil {
			return fmt.Errorf("membership query for user %d failed: %w", u, err)
		}
		if len(res.Communities) == 0 || res.Communities[0].Community != m.TopCommunity(u) {
			return fmt.Errorf("served membership for user %d disagrees with the model", u)
		}
	}
	return nil
}

// checkHTTPSurface drives one query of every kind through the JSON API
// handler — the exact surface cmd/cpd-serve exposes — so a scenario run
// exercises the service end to end, not just the library seam.
func checkHTTPSurface(e *serve.Engine, b *Bundle) error {
	h := serve.APIHandler(e, nil)
	get := func(path string) error {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		if rec.Code != http.StatusOK {
			return fmt.Errorf("HTTP GET %s: status %d: %s", path, rec.Code, strings.TrimSpace(rec.Body.String()))
		}
		return nil
	}
	paths := []string{
		"/api/communities",
		"/api/community?id=0",
		"/api/user?id=0&k=3",
		"/api/rank?w=1&k=3",
		fmt.Sprintf("/api/rank?q=%s&k=3", b.Vocab.Word(1)),
		"/api/diffusion?u=0&v=1&topic=0",
		"/api/stats",
		"/api/quality",
		"/metrics",
		"/healthz",
	}
	for _, p := range paths {
		if err := get(p); err != nil {
			return err
		}
	}
	body := fmt.Sprintf(`{"docs":[%s],"seed":3}`, int32JSON(b.Graph.Docs[0].Words))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/api/foldin", strings.NewReader(body)))
	if rec.Code != http.StatusOK {
		return fmt.Errorf("HTTP POST /api/foldin: status %d: %s", rec.Code, strings.TrimSpace(rec.Body.String()))
	}
	return nil
}

func int32JSON(xs []int32) string {
	var sb strings.Builder
	sb.WriteByte('[')
	for i, x := range xs {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%d", x)
	}
	sb.WriteByte(']')
	return sb.String()
}
