package scenario

import (
	"testing"
	"time"
)

func TestDistPresetRegistry(t *testing.T) {
	ps := DistPresets()
	if len(ps) == 0 {
		t.Fatal("no distributed presets")
	}
	seen := map[string]bool{}
	for _, p := range ps {
		if p.Name == "" || p.Description == "" || p.Base.Name == "" || p.Replicas < 2 {
			t.Fatalf("preset %+v incomplete", p)
		}
		if seen[p.Name] {
			t.Fatalf("duplicate distributed preset %q", p.Name)
		}
		seen[p.Name] = true
		got, err := LookupDist(p.Name)
		if err != nil || got.Name != p.Name {
			t.Fatalf("LookupDist(%q) = %+v, %v", p.Name, got, err)
		}
	}
	if _, err := LookupDist("nope"); err == nil {
		t.Fatal("LookupDist accepted an unknown name")
	}
}

// TestDistributedScenario drives every distributed preset end to end:
// train → publish → fetcher distribution → router → queries, with
// bit-equality against a single-node engine on both sides of a live
// generation rollout and zero routed read errors during it.
func TestDistributedScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed scenarios train models; skipped in -short")
	}
	for _, p := range DistPresets() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			start := time.Now()
			m, err := RunDistributed(p, RunOptions{Dir: t.TempDir()})
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("%s: %d replicas, %d generations, %d equality checks, %d routed reads (%d errors) in %v",
				p.Name, m.Replicas, m.Generations, m.EqualityChecks, m.ReadQueries, m.ReadErrors,
				time.Since(start).Round(time.Millisecond))
			if m.EqualityChecks == 0 {
				t.Fatal("no bit-equality checks ran")
			}
			if m.ReadQueries == 0 {
				t.Fatal("the rollout read hammer never ran")
			}
			if m.Generations != 2 {
				t.Fatalf("fleet ended on generation %d, want 2", m.Generations)
			}
		})
	}
}
