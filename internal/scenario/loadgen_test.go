package scenario

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/hist"
	"repro/internal/rng"
	"repro/internal/serve"
)

func loadSpace() QuerySpace {
	return QuerySpace{Users: 50, Words: 200, Communities: 6, Topics: 8, Buckets: 24}
}

// countingTarget records every request it executes.
type countingTarget struct {
	mu     sync.Mutex
	perOp  [numOps]int
	failOn OpKind
	fail   bool
}

func (c *countingTarget) Do(req *Request) error {
	c.mu.Lock()
	c.perOp[req.Op]++
	c.mu.Unlock()
	if c.fail && req.Op == c.failOn {
		return errors.New("injected failure")
	}
	return nil
}

func TestParseMix(t *testing.T) {
	m, err := ParseMix("rank=4, membership=2,foldin=1")
	if err != nil {
		t.Fatal(err)
	}
	if m[OpRank] != 4 || m[OpMembership] != 2 || m[OpDiffusion] != 0 || m[OpFoldIn] != 1 {
		t.Fatalf("parsed mix %v", m)
	}
	for _, bad := range []string{"", "rank", "rank=x", "frobnicate=1", "rank=-1", "rank=0"} {
		if _, err := ParseMix(bad); err == nil {
			t.Errorf("ParseMix(%q) accepted", bad)
		}
	}
}

func TestClosedLoopCountsAndMix(t *testing.T) {
	target := &countingTarget{}
	rep, err := RunLoad(target, LoadOptions{
		Space: loadSpace(), Requests: 2000, Concurrency: 4, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 2000 {
		t.Fatalf("report counts %d requests, want 2000", rep.Requests)
	}
	if rep.Errors != 0 {
		t.Fatalf("unexpected errors: %d", rep.Errors)
	}
	total := 0
	for _, n := range target.perOp {
		total += n
	}
	if total != 2000 {
		t.Fatalf("target executed %d requests, want 2000", total)
	}
	// The default mix is 4:3:2:1 reads with no writes — every weighted op
	// must appear (rank most often), ingest not at all.
	def := DefaultMix()
	for k := OpKind(0); k < numOps; k++ {
		if def[k] > 0 && target.perOp[k] == 0 {
			t.Errorf("op %v never generated", k)
		}
		if def[k] == 0 && target.perOp[k] != 0 {
			t.Errorf("op %v generated %d times despite zero weight", k, target.perOp[k])
		}
	}
	if target.perOp[OpRank] <= target.perOp[OpFoldIn] {
		t.Errorf("mix not respected: rank %d <= foldin %d", target.perOp[OpRank], target.perOp[OpFoldIn])
	}
	if rep.QPS <= 0 {
		t.Fatalf("QPS = %v", rep.QPS)
	}
	for name, s := range rep.Ops {
		if s.P50 > s.P95 || s.P95 > s.P99 || s.P99 > s.Max {
			t.Errorf("%s percentiles not monotone: %+v", name, s)
		}
	}
}

func TestErrorsCounted(t *testing.T) {
	target := &countingTarget{fail: true, failOn: OpMembership}
	rep, err := RunLoad(target, LoadOptions{
		Space: loadSpace(), Requests: 500, Concurrency: 2, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors == 0 || rep.Errors != rep.Ops["membership"].Errors {
		t.Fatalf("errors not attributed: total %d, membership %d", rep.Errors, rep.Ops["membership"].Errors)
	}
	if rep.Ops["rank"].Errors != 0 {
		t.Fatalf("rank charged with %d foreign errors", rep.Ops["rank"].Errors)
	}
}

func TestOpenLoopSchedulesAllArrivals(t *testing.T) {
	target := &countingTarget{}
	rep, err := RunLoad(target, LoadOptions{
		Space: loadSpace(), Requests: 300, Concurrency: 4, Rate: 20000, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 300 {
		t.Fatalf("open loop completed %d requests, want 300", rep.Requests)
	}
}

func TestGenRequestDeterministicAndInRange(t *testing.T) {
	o, err := LoadOptions{Space: loadSpace(), Requests: 1}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	a, b := rng.New(42), rng.New(42)
	for i := 0; i < 500; i++ {
		ra, rb := genRequest(a, &o), genRequest(b, &o)
		if !reflect.DeepEqual(ra, rb) {
			t.Fatalf("request %d not deterministic", i)
		}
		s := o.Space
		switch ra.Op {
		case OpRank:
			for _, w := range ra.Words {
				if w < 0 || int(w) >= s.Words {
					t.Fatalf("rank word %d out of range", w)
				}
			}
		case OpMembership:
			if ra.U < 0 || ra.U >= s.Users {
				t.Fatalf("membership user %d out of range", ra.U)
			}
		case OpDiffusion:
			if ra.U == ra.V || ra.V < 0 || ra.V >= s.Users || ra.Z < 0 || ra.Z >= s.Topics {
				t.Fatalf("diffusion request out of range: %+v", ra)
			}
		case OpFoldIn:
			if len(ra.FoldIn.Docs) != o.FoldInDocs {
				t.Fatalf("foldin has %d docs", len(ra.FoldIn.Docs))
			}
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h hist.Hist
	// 100 observations: 1ms ... 100ms.
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i)*time.Millisecond, nil)
	}
	check := func(q float64, want time.Duration) {
		got := h.Quantile(q)
		// Log-bucketed: accept the histogram's ~9% resolution.
		lo, hi := time.Duration(float64(want)*0.85), time.Duration(float64(want)*1.15)
		if got < lo || got > hi {
			t.Errorf("Quantile(%.2f) = %v, want within 15%% of %v", q, got, want)
		}
	}
	check(0.50, 50*time.Millisecond)
	check(0.95, 95*time.Millisecond)
	check(0.99, 99*time.Millisecond)
	if h.Quantile(1) > time.Duration(h.MaxNS) {
		t.Error("quantile exceeds tracked maximum")
	}
	var empty hist.Hist
	if empty.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile must be 0")
	}
}

func TestBadLoadOptions(t *testing.T) {
	if _, err := RunLoad(&countingTarget{}, LoadOptions{Space: loadSpace()}); err == nil {
		t.Fatal("unbounded run accepted (no Requests, no Duration)")
	}
	if _, err := RunLoad(&countingTarget{}, LoadOptions{Requests: 10}); err == nil {
		t.Fatal("empty query space accepted")
	}
}

// TestLoadAgainstEngineAndHTTP drives the same small mixed workload
// through both targets — the in-process engine and a live HTTP server on
// the same engine — asserting zero errors on each.
func TestLoadAgainstEngineAndHTTP(t *testing.T) {
	m := serve.SyntheticModel(60, 6, 8, 300, 17)
	e := serve.New(m, nil, serve.Options{})
	defer e.Close()
	mix := DefaultMix()
	mix[OpQuality] = 1
	mix[OpMetrics] = 1
	opts := LoadOptions{
		Mix:   mix,
		Space: SpaceFromModel(m), Requests: 400, Concurrency: 4, Seed: 21,
		FoldInSweeps: 5,
	}

	rep, err := RunLoad(EngineTarget{Engine: e}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("engine target saw %d errors: %+v", rep.Errors, rep.Ops)
	}

	srv := httptest.NewServer(serve.APIHandler(e, nil))
	defer srv.Close()
	rep, err = RunLoad(HTTPTarget{Base: srv.URL, Client: srv.Client()}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("HTTP target saw %d errors: %+v", rep.Errors, rep.Ops)
	}
	if rep.Requests != 400 {
		t.Fatalf("HTTP target completed %d requests", rep.Requests)
	}
}

// A failing endpoint often truncates its error body; the target must
// report the HTTP status, not the body-drain hiccup that the truncation
// causes on the client side.
func TestHTTPTargetReportsStatusBeforeDrainError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Promise a long body, deliver a stub: the client's drain hits an
		// unexpected EOF after reading the 503 status.
		w.Header().Set("Content-Length", "4096")
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte("overloaded"))
	}))
	defer srv.Close()
	err := HTTPTarget{Base: srv.URL, Client: srv.Client()}.Do(&Request{Op: OpMembership, U: 1, K: 3})
	if err == nil {
		t.Fatal("truncated 503 reported as success")
	}
	if !strings.Contains(err.Error(), "503") {
		t.Fatalf("error %q does not name the 503 status", err)
	}
}
