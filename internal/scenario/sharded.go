package scenario

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/router"
	"repro/internal/serve"
	"repro/internal/shard"
	"repro/internal/store"
	"repro/internal/stream"
)

// ShardPreset names one sharded-serving regime: a base population and a
// shard count. Unlike DistPreset — where every replica holds the full
// snapshot and sharding is a cache-locality policy — here each replica
// maps only the global sections plus ITS user shard's file, so the
// per-replica memory footprint drops roughly shard-count-fold. The run
// pins the same invariant as the distributed suite: every query routed
// through the shard-aware router is bit-identical to a single full node
// on the same generation, on both sides of a live rollout.
type ShardPreset struct {
	Name        string
	Description string

	// Base is the underlying population preset; BaseFraction of its users
	// train the frozen base model, the rest arrive as stream events split
	// across the run's generations.
	Base         Preset
	BaseFraction float64

	// Shards is both the sharded-generation shard count and the fleet
	// size: replica i owns shard i.
	Shards int
}

// ShardPresets returns the sharded-serving regimes the suite runs.
func ShardPresets() []ShardPreset {
	bp, err := Lookup("uniform")
	if err != nil {
		panic(err)
	}
	return []ShardPreset{
		{
			Name: "sharded-fleet",
			Description: "three shard-owning replicas behind a shard-aware router, " +
				"bit-equality vs a single full node across a live generation rollout",
			Base:         bp,
			BaseFraction: 0.75,
			Shards:       3,
		},
	}
}

// LookupSharded resolves a sharded preset by name.
func LookupSharded(name string) (ShardPreset, error) {
	for _, p := range ShardPresets() {
		if p.Name == name {
			return p, nil
		}
	}
	var names []string
	for _, p := range ShardPresets() {
		names = append(names, p.Name)
	}
	return ShardPreset{}, fmt.Errorf("scenario: unknown sharded preset %q (have %v)", name, names)
}

// ShardMetrics is one sharded run's measurement.
type ShardMetrics struct {
	Preset string `json:"preset"`
	Shards int    `json:"shards"`
	// Generations is the final fleet generation (the rollout count).
	Generations uint64 `json:"generations"`
	// EqualityChecks counts routed-vs-single-node comparisons that ran.
	EqualityChecks int `json:"equalityChecks"`
	// ReadQueries/ReadErrors account the read hammer that runs through the
	// router DURING the generation rollout; the invariant is zero errors.
	ReadQueries uint64 `json:"readQueries"`
	ReadErrors  uint64 `json:"readErrors"`
	// Misroutes is the fleet-wide 421 count the router observed.
	Misroutes uint64 `json:"misroutes"`
	// FullBytes/GlobalBytes are the final generation's full snapshot and
	// global shard-file sizes; MaxReplicaMappedBytes the largest mapped
	// footprint any replica carried — the ~N-fold memory win the format
	// exists for (≤ full/N + global, plus imbalance slack).
	FullBytes             int64 `json:"fullBytes"`
	GlobalBytes           int64 `json:"globalBytes"`
	MaxReplicaMappedBytes int64 `json:"maxReplicaMappedBytes"`
}

// shardReplica bundles one fleet member's moving parts.
type shardReplica struct {
	engine  *serve.Engine
	fetcher *serve.Fetcher
	srv     *httptest.Server
}

// RunSharded executes one sharded preset end to end:
//
//  1. train the base model and publish generation 1 — full file AND
//     sharded group — through a stream.Updater with Options.Shards;
//  2. start one serve engine per shard, each pulling ONLY the manifest,
//     the global file and its own shard file (serve.Fetcher in sharded
//     mode: CRC-verified against the manifest, warmed, swapped as a
//     unit);
//  3. front them with the shard-aware router and verify membership (every
//     user), rank (Members summed across shards), diffusion (same-shard
//     and cross-shard pairs) and fold-in (friends spanning shards) are
//     bit-identical to a single full node on the same generation file;
//  4. roll the fleet to generation 2 under a routed read hammer — zero
//     read errors tolerated;
//  5. re-verify bit-equality on generation 2, check the drain latch takes
//     a replica out of preferred rotation, and record the per-replica
//     mapped-bytes win.
func RunSharded(p ShardPreset, opts RunOptions) (*ShardMetrics, error) {
	if p.Shards < 2 {
		return nil, fmt.Errorf("scenario %s: a sharded run needs at least 2 shards", p.Name)
	}
	b, err := Build(p.Base)
	if err != nil {
		return nil, err
	}
	g := b.Graph
	baseUsers := int(float64(g.NumUsers) * p.BaseFraction)
	if baseUsers < 2 || baseUsers >= g.NumUsers {
		return nil, fmt.Errorf("scenario %s: base fraction %.2f leaves no streamed users", p.Name, p.BaseFraction)
	}
	baseG, docMap, held := prefixGraph(g, baseUsers, nil)
	baseModel, _, err := core.Train(baseG, p.Base.Train)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: base training failed: %w", p.Name, err)
	}
	evs, _ := buildStreamEvents(g, baseUsers, docMap, held)
	half := len(evs) / 2

	scratch, err := os.MkdirTemp(opts.Dir, "cpd-sharded-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(scratch)
	snapDir := filepath.Join(scratch, "snapshots")
	if err := os.MkdirAll(snapDir, 0o755); err != nil {
		return nil, err
	}

	// The publisher: a real updater journaling into snapDir with sharded
	// emission on — exactly what cpd-serve -ingest -ingest-shards runs.
	pubEngine := serve.New(baseModel, b.Vocab, serve.Options{})
	defer pubEngine.Close()
	j, err := stream.OpenJournal(filepath.Join(scratch, "events.wal"), stream.JournalOptions{})
	if err != nil {
		return nil, err
	}
	defer j.Close()
	u, err := stream.NewUpdater(j, stream.Options{
		Engine:       pubEngine,
		Base:         baseModel,
		Vocab:        b.Vocab,
		WindowEvents: len(evs) + 16, // publish manually, per generation
		FoldSweeps:   10,
		FoldSeed:     p.Base.Synth.Seed,
		BaseGraph:    baseG,
		Workers:      2,
		Dir:          snapDir,
		Shards:       p.Shards,
	})
	if err != nil {
		return nil, err
	}
	defer u.Close()

	if _, err := u.Ingest(evs[:half]); err != nil {
		return nil, fmt.Errorf("scenario %s: generation-1 ingest failed: %w", p.Name, err)
	}
	if _, err := u.Publish(); err != nil {
		return nil, fmt.Errorf("scenario %s: generation-1 publish failed: %w", p.Name, err)
	}

	// The fleet: replica i fetches only shard i (plus the global file).
	var reps []*shardReplica
	var routerReps []router.Replica
	defer func() {
		for _, r := range reps {
			r.srv.Close()
			r.engine.Close()
		}
	}()
	for i := 0; i < p.Shards; i++ {
		e := serve.NewMulti(serve.Options{Mmap: true})
		f, err := serve.NewFetcher(e, serve.FetchOptions{
			Source: snapDir, Vocab: b.Vocab, Interval: 2 * time.Millisecond,
			Sharded: true, Shard: i,
		})
		if err != nil {
			e.Close()
			return nil, err
		}
		e.SetReplicaStats(func() any { return f.Status() })
		if _, err := f.Poll(); err != nil {
			e.Close()
			return nil, fmt.Errorf("scenario %s: replica %d initial fetch failed: %w", p.Name, i, err)
		}
		srv := httptest.NewServer(serve.APIHandler(e, nil))
		reps = append(reps, &shardReplica{engine: e, fetcher: f, srv: srv})
		routerReps = append(routerReps, router.Replica{Name: fmt.Sprintf("shard-%d", i), Base: srv.URL})
	}

	rt, err := router.New(routerReps, router.Options{MaxLag: 1})
	if err != nil {
		return nil, err
	}
	rt.PollReplicas()
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	m := &ShardMetrics{Preset: p.Name, Shards: p.Shards}
	var problems []string
	fail := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}

	if st := rt.Stats(); !st.Sharded || st.Shards != p.Shards {
		fail("router sees sharded=%v shards=%d, want a %d-shard fleet", st.Sharded, st.Shards, p.Shards)
	}

	// Single-FULL-node reference for a generation: a fresh engine loading
	// the full (unsharded) file the same publish wrote — the bit-equality
	// baseline the sharded fleet must reproduce.
	reference := func(gen uint64) (*serve.Engine, error) {
		ref := serve.NewMulti(serve.Options{Mmap: true})
		if _, err := ref.LoadGeneration(serve.DefaultSnapshot, store.GenPath(snapDir, gen), b.Vocab, gen); err != nil {
			ref.Close()
			return nil, err
		}
		return ref, nil
	}

	checkGeneration := func(gen uint64, users int) {
		ref, err := reference(gen)
		if err != nil {
			fail("generation %d: reference engine failed to load: %v", gen, err)
			return
		}
		defer ref.Close()
		get := func(path string, into any) bool {
			resp, err := http.Get(front.URL + path)
			if err != nil {
				fail("generation %d: GET %s: %v", gen, path, err)
				return false
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				fail("generation %d: GET %s answered %d", gen, path, resp.StatusCode)
				return false
			}
			if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
				fail("generation %d: GET %s decode: %v", gen, path, err)
				return false
			}
			return true
		}
		// Memberships: every user, shard-owner-routed. This sweeps every
		// shard boundary, so an off-by-one in range ownership fails here.
		for id := 0; id < users; id++ {
			var got serve.MembershipResult
			if !get(fmt.Sprintf("/api/user?id=%d&k=5", id), &got) {
				return
			}
			want, err := ref.Membership(id, 5)
			if err != nil {
				fail("generation %d: reference membership(%d): %v", gen, id, err)
				return
			}
			got.Version, want.Version = 0, 0
			if !reflect.DeepEqual(&got, want) {
				fail("generation %d: membership(%d) diverges: routed %+v vs full node %+v", gen, id, got, want)
				return
			}
			m.EqualityChecks++
		}
		// Rankings: scattered over the shards; per-shard partial Members
		// sums must land exactly on the full node's counts.
		step := baseModel.NumWords / 16
		if step < 1 {
			step = 1
		}
		for w := 0; w < baseModel.NumWords; w += step {
			var got serve.RankResult
			if !get(fmt.Sprintf("/api/rank?w=%d&k=5", w), &got) {
				return
			}
			want, err := ref.Rank([]int32{int32(w)}, 5)
			if err != nil {
				fail("generation %d: reference rank(%d): %v", gen, w, err)
				return
			}
			got.Version, want.Version = 0, 0
			if !reflect.DeepEqual(&got, want) {
				fail("generation %d: rank(%d) diverges: routed %+v vs full node %+v", gen, w, got, want)
				return
			}
			m.EqualityChecks++
		}
		// Diffusion: one same-shard pair and one maximally cross-shard
		// pair (first and last user live on different shards by
		// construction), the latter exercising the pirow + row-carrying
		// POST path.
		for _, pair := range [][2]int{{0, 1}, {0, users - 1}, {users - 1, 0}} {
			var gd serve.DiffusionResult
			if !get(fmt.Sprintf("/api/diffusion?u=%d&v=%d&topic=0&bucket=-1", pair[0], pair[1]), &gd) {
				return
			}
			wd, err := ref.Diffusion(pair[0], pair[1], 0, -1)
			if err != nil {
				fail("generation %d: reference diffusion(%v): %v", gen, pair, err)
				return
			}
			gd.Version, wd.Version = 0, 0
			if !reflect.DeepEqual(gd, *wd) {
				fail("generation %d: diffusion(%v) diverges: routed %+v vs full node %+v", gen, pair, gd, *wd)
				return
			}
			m.EqualityChecks++
		}
		// Fold-in with friends spanning shards: the router must hydrate
		// the rows no single replica owns.
		fi := &serve.FoldInRequest{
			Docs:    [][]int32{{0, 1, 2}, {3, 4}},
			Friends: []int32{0, int32(users - 1)},
			Seed:    99,
			Sweeps:  8,
		}
		body, _ := json.Marshal(fi)
		resp, err := http.Post(front.URL+"/api/foldin", "application/json", strings.NewReader(string(body)))
		if err != nil {
			fail("generation %d: routed fold-in: %v", gen, err)
			return
		}
		var gf serve.FoldInResult
		derr := json.NewDecoder(resp.Body).Decode(&gf)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || derr != nil {
			fail("generation %d: routed fold-in status %d decode %v", gen, resp.StatusCode, derr)
			return
		}
		wf, err := ref.FoldIn(fi)
		if err != nil {
			fail("generation %d: reference fold-in: %v", gen, err)
			return
		}
		gf.Version, wf.Version = 0, 0
		if !reflect.DeepEqual(gf, *wf) {
			fail("generation %d: fold-in with cross-shard friends diverges", gen)
			return
		}
		m.EqualityChecks++
	}

	// Generation 1, fleet at rest.
	checkGeneration(1, baseModel.NumUsers)

	// The rollout: fetchers polling live, a read hammer flowing through
	// the router, generation 2 published under it.
	ctx, cancel := context.WithCancel(context.Background())
	var fwg sync.WaitGroup
	for _, r := range reps {
		fwg.Add(1)
		go func(f *serve.Fetcher) {
			defer fwg.Done()
			f.Run(ctx)
		}(r.fetcher)
	}
	stopReads := make(chan struct{})
	var rwg sync.WaitGroup
	var reads, readErrs atomic.Uint64
	target := HTTPTarget{Base: front.URL, Client: front.Client()}
	for w := 0; w < 2; w++ {
		rwg.Add(1)
		go func(w int) {
			defer rwg.Done()
			i := 0
			for {
				select {
				case <-stopReads:
					return
				default:
				}
				reads.Add(2)
				if err := target.Do(&Request{Op: OpMembership, U: (i + w) % baseUsers, K: 5}); err != nil {
					readErrs.Add(1)
				}
				if err := target.Do(&Request{Op: OpRank, Words: []int32{int32(i % baseModel.NumWords)}, K: 5}); err != nil {
					readErrs.Add(1)
				}
				i++
			}
		}(w)
	}

	rolloutErr := func() error {
		if _, err := u.Ingest(evs[half:]); err != nil {
			return fmt.Errorf("scenario %s: generation-2 ingest failed: %w", p.Name, err)
		}
		if _, err := u.Publish(); err != nil {
			return fmt.Errorf("scenario %s: generation-2 publish failed: %w", p.Name, err)
		}
		// Wait for every replica to pull the new generation.
		deadline := time.Now().Add(10 * time.Second)
		for _, r := range reps {
			for r.fetcher.Generation() < 2 {
				if time.Now().After(deadline) {
					return fmt.Errorf("scenario %s: fleet did not reach generation 2 in time", p.Name)
				}
				time.Sleep(time.Millisecond)
			}
		}
		return nil
	}()
	close(stopReads)
	rwg.Wait()
	cancel()
	fwg.Wait()
	m.ReadQueries, m.ReadErrors = reads.Load(), readErrs.Load()
	if rolloutErr != nil {
		return m, rolloutErr
	}
	if m.ReadErrors > 0 {
		fail("%d of %d routed reads failed during the generation rollout", m.ReadErrors, m.ReadQueries)
	}

	// Generation 2: fleet healthy, still bit-identical, topology intact.
	rt.PollReplicas()
	st := rt.Stats()
	m.Generations = st.Generation
	m.Misroutes = st.Misroutes
	if st.Generation != 2 {
		fail("fleet generation %d after rollout, want 2", st.Generation)
	}
	if st.Healthy != p.Shards {
		fail("%d of %d replicas healthy after rollout", st.Healthy, p.Shards)
	}
	if !st.Sharded || st.Shards != p.Shards {
		fail("router lost the shard topology after rollout: %+v", st)
	}
	checkGeneration(2, u.Model().NumUsers)

	// The memory win the format exists for: each replica maps the global
	// file plus ~1/N of the user payload, not the whole snapshot. The
	// slack term absorbs weight-balancing imbalance and 64-byte section
	// alignment.
	if fi, err := os.Stat(store.GenPath(snapDir, 2)); err == nil {
		m.FullBytes = fi.Size()
	} else {
		fail("stat full generation-2 file: %v", err)
	}
	if fi, err := os.Stat(shard.GlobalPath(snapDir, 2)); err == nil {
		m.GlobalBytes = fi.Size()
	} else {
		fail("stat global generation-2 file: %v", err)
	}
	budget := m.FullBytes/int64(p.Shards) + m.GlobalBytes + m.FullBytes/8
	for i, r := range reps {
		var mapped int64
		for _, ss := range r.engine.SnapshotsInfo() {
			if ss.Name == serve.DefaultSnapshot {
				mapped = ss.MappedBytes
				if !ss.Mapped {
					fail("replica %d serves an unmapped snapshot", i)
				}
				if ss.Shard == nil {
					fail("replica %d snapshot carries no shard info", i)
				}
			}
		}
		if mapped == 0 {
			fail("replica %d reports zero mapped bytes", i)
		}
		if m.FullBytes > 0 && mapped > budget {
			fail("replica %d maps %d bytes, budget %d (full %d, global %d, %d shards)",
				i, mapped, budget, m.FullBytes, m.GlobalBytes, p.Shards)
		}
		if mapped > m.MaxReplicaMappedBytes {
			m.MaxReplicaMappedBytes = mapped
		}
	}

	// Drain: the latch flips the replica's advertisement, the router sees
	// it, and — because the drained replica is still its shard's only
	// owner — owned-user queries keep working through the fallback tier.
	if resp, err := http.Post(reps[0].srv.URL+"/api/drain", "application/json", nil); err != nil {
		fail("drain request failed: %v", err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			fail("drain answered status %d", resp.StatusCode)
		}
	}
	rt.PollReplicas()
	st = rt.Stats()
	draining := 0
	for _, r := range st.Replicas {
		if r.Draining {
			draining++
		}
	}
	if draining != 1 {
		fail("%d replicas draining after one drain request", draining)
	}
	if resp, err := http.Get(front.URL + "/api/user?id=0&k=5"); err != nil {
		fail("membership after drain failed: %v", err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			fail("membership for a drained shard's user answered %d, want 200 via the fallback tier", resp.StatusCode)
		}
	}

	if len(problems) > 0 {
		return m, fmt.Errorf("scenario %s: %s", p.Name, strings.Join(problems, "; "))
	}
	return m, nil
}
