package scenario

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/router"
	"repro/internal/serve"
	"repro/internal/store"
	"repro/internal/stream"
)

// DistPreset names one distributed-serving regime: a base population, a
// replica count, and how the event stream is split into the generations
// the fleet rolls through. The run drives the full pipeline — train →
// publish → distribute → route → query — and pins the distribution
// invariant: results served THROUGH the router over N replicas are
// bit-identical to a single-node engine answering from the same
// generation snapshot.
type DistPreset struct {
	Name        string
	Description string

	// Base is the underlying population preset; BaseFraction of its users
	// train the frozen base model, the rest arrive as stream events split
	// across the run's generations.
	Base         Preset
	BaseFraction float64

	// Replicas is the serving fleet size behind the router.
	Replicas int
}

// DistPresets returns the distributed-serving regimes the suite runs.
func DistPresets() []DistPreset {
	bp, err := Lookup("uniform")
	if err != nil {
		panic(err)
	}
	return []DistPreset{
		{
			Name: "tri-replica",
			Description: "three user-sharded replicas behind a scatter-gather router, " +
				"bit-equality vs a single node across a live generation rollout",
			Base:         bp,
			BaseFraction: 0.75,
			Replicas:     3,
		},
	}
}

// LookupDist resolves a distributed preset by name.
func LookupDist(name string) (DistPreset, error) {
	for _, p := range DistPresets() {
		if p.Name == name {
			return p, nil
		}
	}
	var names []string
	for _, p := range DistPresets() {
		names = append(names, p.Name)
	}
	return DistPreset{}, fmt.Errorf("scenario: unknown distributed preset %q (have %v)", name, names)
}

// DistMetrics is one distributed run's measurement.
type DistMetrics struct {
	Preset   string `json:"preset"`
	Replicas int    `json:"replicas"`
	// Generations is the final fleet generation (the rollout count).
	Generations uint64 `json:"generations"`
	// EqualityChecks counts routed-vs-single-node comparisons that ran
	// (memberships, rankings, diffusions and fold-ins, per generation).
	EqualityChecks int `json:"equalityChecks"`
	// ReadQueries/ReadErrors account the read hammer that runs through the
	// router DURING the generation rollout; the invariant is zero errors.
	ReadQueries uint64 `json:"readQueries"`
	ReadErrors  uint64 `json:"readErrors"`
}

// distReplica bundles one fleet member's moving parts.
type distReplica struct {
	engine  *serve.Engine
	fetcher *serve.Fetcher
	srv     *httptest.Server
}

// RunDistributed executes one distributed preset end to end:
//
//  1. train the base model and publish generation 1 through a real
//     stream.Updater into a snapshot directory;
//  2. start Replicas serve engines, each pulling that directory through
//     serve.Fetcher (CRC-verified, warmed, atomically swapped);
//  3. front them with internal/router and verify every routed endpoint
//     answers bit-identically to a single-node engine that loaded the
//     same generation file;
//  4. roll the fleet to generation 2 while a read hammer runs through
//     the router — zero read errors tolerated across the rollout;
//  5. re-verify bit-equality on the new generation and that the router
//     marks the whole fleet healthy and unlagged.
func RunDistributed(p DistPreset, opts RunOptions) (*DistMetrics, error) {
	if p.Replicas < 2 {
		return nil, fmt.Errorf("scenario %s: a distributed run needs at least 2 replicas", p.Name)
	}
	b, err := Build(p.Base)
	if err != nil {
		return nil, err
	}
	g := b.Graph
	baseUsers := int(float64(g.NumUsers) * p.BaseFraction)
	if baseUsers < 2 || baseUsers >= g.NumUsers {
		return nil, fmt.Errorf("scenario %s: base fraction %.2f leaves no streamed users", p.Name, p.BaseFraction)
	}
	baseG, docMap, held := prefixGraph(g, baseUsers, nil)
	baseModel, _, err := core.Train(baseG, p.Base.Train)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: base training failed: %w", p.Name, err)
	}
	evs, _ := buildStreamEvents(g, baseUsers, docMap, held)
	half := len(evs) / 2

	scratch, err := os.MkdirTemp(opts.Dir, "cpd-dist-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(scratch)
	snapDir := filepath.Join(scratch, "snapshots")
	if err := os.MkdirAll(snapDir, 0o755); err != nil {
		return nil, err
	}

	// The publisher: a real updater journaling into snapDir, exactly what
	// a cpd-serve -ingest process runs.
	pubEngine := serve.New(baseModel, b.Vocab, serve.Options{})
	defer pubEngine.Close()
	j, err := stream.OpenJournal(filepath.Join(scratch, "events.wal"), stream.JournalOptions{})
	if err != nil {
		return nil, err
	}
	defer j.Close()
	u, err := stream.NewUpdater(j, stream.Options{
		Engine:       pubEngine,
		Base:         baseModel,
		Vocab:        b.Vocab,
		WindowEvents: len(evs) + 16, // publish manually, per generation
		FoldSweeps:   10,
		FoldSeed:     p.Base.Synth.Seed,
		BaseGraph:    baseG,
		Workers:      2,
		Dir:          snapDir,
	})
	if err != nil {
		return nil, err
	}
	defer u.Close()

	if _, err := u.Ingest(evs[:half]); err != nil {
		return nil, fmt.Errorf("scenario %s: generation-1 ingest failed: %w", p.Name, err)
	}
	if _, err := u.Publish(); err != nil {
		return nil, fmt.Errorf("scenario %s: generation-1 publish failed: %w", p.Name, err)
	}

	// The fleet: every replica pulls the snapshot dir through its own
	// fetcher and serves the standard JSON API.
	var reps []*distReplica
	var routerReps []router.Replica
	defer func() {
		for _, r := range reps {
			r.srv.Close()
			r.engine.Close()
		}
	}()
	for i := 0; i < p.Replicas; i++ {
		e := serve.NewMulti(serve.Options{Mmap: true})
		f, err := serve.NewFetcher(e, serve.FetchOptions{
			Source: snapDir, Vocab: b.Vocab, Interval: 2 * time.Millisecond,
		})
		if err != nil {
			e.Close()
			return nil, err
		}
		e.SetReplicaStats(func() any { return f.Status() })
		if _, err := f.Poll(); err != nil {
			e.Close()
			return nil, fmt.Errorf("scenario %s: replica %d initial fetch failed: %w", p.Name, i, err)
		}
		srv := httptest.NewServer(serve.APIHandler(e, nil))
		reps = append(reps, &distReplica{engine: e, fetcher: f, srv: srv})
		routerReps = append(routerReps, router.Replica{Name: fmt.Sprintf("replica-%d", i), Base: srv.URL})
	}

	rt, err := router.New(routerReps, router.Options{MaxLag: 1})
	if err != nil {
		return nil, err
	}
	rt.PollReplicas()
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	m := &DistMetrics{Preset: p.Name, Replicas: p.Replicas}
	var problems []string
	fail := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}

	// Single-node reference for a generation: a fresh engine loading the
	// very same file the replicas fetched.
	reference := func(gen uint64) (*serve.Engine, error) {
		ref := serve.NewMulti(serve.Options{Mmap: true})
		if _, err := ref.LoadGeneration(serve.DefaultSnapshot, store.GenPath(snapDir, gen), b.Vocab, gen); err != nil {
			ref.Close()
			return nil, err
		}
		return ref, nil
	}

	checkGeneration := func(gen uint64, users int) {
		ref, err := reference(gen)
		if err != nil {
			fail("generation %d: reference engine failed to load: %v", gen, err)
			return
		}
		defer ref.Close()
		get := func(path string, into any) bool {
			resp, err := http.Get(front.URL + path)
			if err != nil {
				fail("generation %d: GET %s: %v", gen, path, err)
				return false
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				fail("generation %d: GET %s answered %d", gen, path, resp.StatusCode)
				return false
			}
			if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
				fail("generation %d: GET %s decode: %v", gen, path, err)
				return false
			}
			return true
		}
		// Memberships: every user, owner-routed.
		for id := 0; id < users; id++ {
			var got serve.MembershipResult
			if !get(fmt.Sprintf("/api/user?id=%d&k=5", id), &got) {
				return
			}
			want, err := ref.Membership(id, 5)
			if err != nil {
				fail("generation %d: reference membership(%d): %v", gen, id, err)
				return
			}
			got.Version, want.Version = 0, 0
			if !reflect.DeepEqual(&got, want) {
				fail("generation %d: membership(%d) diverges: routed %+v vs single-node %+v", gen, id, got, want)
				return
			}
			m.EqualityChecks++
		}
		// Rankings: scattered, merged — the merge must reproduce the
		// single node bit-for-bit.
		step := baseModel.NumWords / 16
		if step < 1 {
			step = 1
		}
		for w := 0; w < baseModel.NumWords; w += step {
			var got serve.RankResult
			if !get(fmt.Sprintf("/api/rank?w=%d&k=5", w), &got) {
				return
			}
			want, err := ref.Rank([]int32{int32(w)}, 5)
			if err != nil {
				fail("generation %d: reference rank(%d): %v", gen, w, err)
				return
			}
			got.Version, want.Version = 0, 0
			if !reflect.DeepEqual(&got, want) {
				fail("generation %d: rank(%d) diverges: routed %+v vs single-node %+v", gen, w, got, want)
				return
			}
			m.EqualityChecks++
		}
		// Diffusion and fold-in spot checks.
		var gd serve.DiffusionResult
		if !get("/api/diffusion?u=0&v=1&topic=0&bucket=-1", &gd) {
			return
		}
		wd, err := ref.Diffusion(0, 1, 0, -1)
		if err != nil {
			fail("generation %d: reference diffusion: %v", gen, err)
			return
		}
		gd.Version, wd.Version = 0, 0
		if !reflect.DeepEqual(gd, *wd) {
			fail("generation %d: diffusion diverges: routed %+v vs single-node %+v", gen, gd, *wd)
			return
		}
		m.EqualityChecks++
		fi := &serve.FoldInRequest{Docs: [][]int32{{0, 1, 2}, {3, 4}}, Seed: 99, Sweeps: 8}
		body, _ := json.Marshal(fi)
		resp, err := http.Post(front.URL+"/api/foldin", "application/json", strings.NewReader(string(body)))
		if err != nil {
			fail("generation %d: routed fold-in: %v", gen, err)
			return
		}
		var gf serve.FoldInResult
		derr := json.NewDecoder(resp.Body).Decode(&gf)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || derr != nil {
			fail("generation %d: routed fold-in status %d decode %v", gen, resp.StatusCode, derr)
			return
		}
		wf, err := ref.FoldIn(fi)
		if err != nil {
			fail("generation %d: reference fold-in: %v", gen, err)
			return
		}
		gf.Version, wf.Version = 0, 0
		if !reflect.DeepEqual(gf, *wf) {
			fail("generation %d: fold-in diverges across the fleet", gen)
			return
		}
		m.EqualityChecks++
	}

	// Generation 1, fleet at rest.
	checkGeneration(1, baseModel.NumUsers)

	// The rollout: fetchers polling live, a read hammer flowing through
	// the router, generation 2 published under it.
	ctx, cancel := context.WithCancel(context.Background())
	var fwg sync.WaitGroup
	for _, r := range reps {
		fwg.Add(1)
		go func(f *serve.Fetcher) {
			defer fwg.Done()
			f.Run(ctx)
		}(r.fetcher)
	}
	stopReads := make(chan struct{})
	var rwg sync.WaitGroup
	var reads, readErrs atomic.Uint64
	target := HTTPTarget{Base: front.URL, Client: front.Client()}
	for w := 0; w < 2; w++ {
		rwg.Add(1)
		go func(w int) {
			defer rwg.Done()
			i := 0
			for {
				select {
				case <-stopReads:
					return
				default:
				}
				reads.Add(2)
				if err := target.Do(&Request{Op: OpMembership, U: (i + w) % baseUsers, K: 5}); err != nil {
					readErrs.Add(1)
				}
				if err := target.Do(&Request{Op: OpRank, Words: []int32{int32(i % baseModel.NumWords)}, K: 5}); err != nil {
					readErrs.Add(1)
				}
				i++
			}
		}(w)
	}

	rolloutErr := func() error {
		if _, err := u.Ingest(evs[half:]); err != nil {
			return fmt.Errorf("scenario %s: generation-2 ingest failed: %w", p.Name, err)
		}
		if _, err := u.Publish(); err != nil {
			return fmt.Errorf("scenario %s: generation-2 publish failed: %w", p.Name, err)
		}
		// Wait for every replica to pull the new generation.
		deadline := time.Now().Add(10 * time.Second)
		for _, r := range reps {
			for r.fetcher.Generation() < 2 {
				if time.Now().After(deadline) {
					return fmt.Errorf("scenario %s: fleet did not reach generation 2 in time", p.Name)
				}
				time.Sleep(time.Millisecond)
			}
		}
		return nil
	}()
	close(stopReads)
	rwg.Wait()
	cancel()
	fwg.Wait()
	m.ReadQueries, m.ReadErrors = reads.Load(), readErrs.Load()
	if rolloutErr != nil {
		return m, rolloutErr
	}
	if m.ReadErrors > 0 {
		fail("%d of %d routed reads failed during the generation rollout", m.ReadErrors, m.ReadQueries)
	}

	// Generation 2: fleet healthy, unlagged, and still bit-identical.
	rt.PollReplicas()
	st := rt.Stats()
	m.Generations = st.Generation
	if st.Generation != 2 {
		fail("fleet generation %d after rollout, want 2", st.Generation)
	}
	if st.Healthy != p.Replicas {
		fail("%d of %d replicas healthy after rollout", st.Healthy, p.Replicas)
	}
	for _, r := range st.Replicas {
		if r.Lag != 0 || r.Lagging {
			fail("replica %s lags the fleet after rollout: %+v", r.Name, r)
		}
	}
	checkGeneration(2, u.Model().NumUsers)

	if len(problems) > 0 {
		return m, fmt.Errorf("scenario %s: %s", p.Name, strings.Join(problems, "; "))
	}
	return m, nil
}
