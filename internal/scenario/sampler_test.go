package scenario

import (
	"testing"

	"repro/internal/core"
)

// TestAliasSamplerClearsNMIFloors is the quality gate for core's
// approximate E-step (Config.Sampler = "alias"): on every preset in the
// registry — assortative and adversarial alike — training with the alias
// + Metropolis–Hastings samplers must still recover the planted
// communities above the same NMI floor the exact sampler is held to. The
// exact sampler's full end-to-end goldens stay pinned by the main suite;
// this gate is what licenses the alias path as a drop-in for training at
// scale.
func TestAliasSamplerClearsNMIFloors(t *testing.T) {
	for _, p := range All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			b, err := Build(p)
			if err != nil {
				t.Fatal(err)
			}
			cfg := p.Train
			cfg.Sampler = core.SamplerAlias
			m, _, err := core.Train(b.Graph, cfg)
			if err != nil {
				t.Fatal(err)
			}
			nmi := nmiAgainstTruth(b, m)
			if nmi < p.MinNMI {
				t.Errorf("alias sampler NMI %.3f below floor %.3f", nmi, p.MinNMI)
			} else {
				t.Logf("alias sampler NMI %.3f (floor %.3f)", nmi, p.MinNMI)
			}
		})
	}
}
