package scenario

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
)

// Golden metric files pin each scenario's deterministic end-to-end
// measurement so silent drift — a sampler change shifting recovery
// quality, a generator change reshaping a dataset — fails the regression
// suite even while every hard floor still passes.
//
// Integer dataset counts must match exactly: the generator is seeded and
// any change is a real behavioural change. Quality scores compare within
// a small tolerance (floatTol) to absorb last-ulp libm differences across
// architectures without masking real drift.
//
// To intentionally re-pin after a deliberate change:
//
//	go test ./internal/scenario -run TestScenarioRegression -update
const floatTol = 0.02

// GoldenPath returns the committed golden file for a preset, relative to
// the scenario package directory.
func GoldenPath(preset string) string {
	return filepath.Join("testdata", "golden", preset+".json")
}

// WriteGolden writes m as path's golden metrics (indented, trailing
// newline, parents created).
func WriteGolden(path string, m *Metrics) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	buf, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// ReadGolden loads a golden metrics file.
func ReadGolden(path string) (*Metrics, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Metrics
	if err := json.Unmarshal(buf, &m); err != nil {
		return nil, fmt.Errorf("scenario: parsing golden file %s: %w", path, err)
	}
	return &m, nil
}

// CompareGolden diffs a fresh measurement against the pinned one and
// returns an error naming every drifted metric.
func CompareGolden(got, want *Metrics) error {
	var drifts []string
	intCheck := func(name string, g, w int) {
		if g != w {
			drifts = append(drifts, fmt.Sprintf("%s = %d, golden %d", name, g, w))
		}
	}
	floatCheck := func(name string, g, w float64) {
		if math.IsNaN(g) != math.IsNaN(w) || math.Abs(g-w) > floatTol {
			drifts = append(drifts, fmt.Sprintf("%s = %.4f, golden %.4f (tol %.2f)", name, g, w, floatTol))
		}
	}
	intCheck("users", got.Users, want.Users)
	intCheck("docs", got.Docs, want.Docs)
	intCheck("friendLinks", got.FriendLinks, want.FriendLinks)
	intCheck("diffLinks", got.DiffLinks, want.DiffLinks)
	intCheck("vocab", got.Vocab, want.Vocab)
	intCheck("sizeP50", got.SizeP50, want.SizeP50)
	floatCheck("nmi", got.NMI, want.NMI)
	floatCheck("diffusionAUC", got.DiffusionAUC, want.DiffusionAUC)
	floatCheck("rankAgreement", got.RankAgreement, want.RankAgreement)
	floatCheck("modularity", got.Modularity, want.Modularity)
	floatCheck("coverage", got.Coverage, want.Coverage)
	floatCheck("avgConductance", got.AvgConductance, want.AvgConductance)
	floatCheck("plpNMI", got.PLPNMI, want.PLPNMI)
	if len(drifts) > 0 {
		return fmt.Errorf("scenario %s drifted from golden metrics (re-pin with -update after a deliberate change): %s",
			got.Preset, strings.Join(drifts, "; "))
	}
	return nil
}
