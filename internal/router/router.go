// Package router is the distributed serving tier: a stateless front over
// N cpd-serve replicas that all pull the same publisher's generation
// snapshots (serve.Fetcher). It lifts the in-process user-shard boundary
// (serve's sharded user index) across processes — the step the paper's
// profiling queries need at the network scales the source corpora have,
// where one process cannot hold the whole fleet's page-cache working set.
//
// Routing policy per endpoint class:
//
//   - Membership (/api/user, /api/pirow) and fold-in (/api/foldin)
//     route to the OWNING replica by weighted rendezvous user-hash, with
//     failover down the preference list. On a full-snapshot fleet every
//     replica answers identically; ownership concentrates each user's Pi
//     rows (and fold-in locality) on one replica's page cache. On a
//     SHARDED fleet (replicas advertise a shard.Info user range on
//     /api/generation) only the replicas whose range contains the user
//     are candidates, a 421 answer counts as a misroute and fails over,
//     and fold-in friend rows are hydrated from the owning replicas
//     before the request is forwarded.
//   - Rank (/api/rank) and diffusion (/api/diffusion) SCATTER to all
//     replicas and gather: responses are grouped by the publisher
//     generation they answered from, the freshest group wins, and rank
//     entries go through a partial top-K merge that reproduces the
//     single-node ordering bit-for-bit (score descending, community
//     ascending on ties — exactly mathx.TopKIndices' tie rule).
//   - Community browsing and quality (/api/communities, /api/community,
//     /api/quality) proxy to the freshest healthy replica, failing over.
//
// Rendezvous (highest-random-weight) hashing keeps routing stable across
// replica-count changes: removing a replica remaps only the users it
// owned; adding one steals ~1/N of each survivor — no global reshuffle.
//
// The router tracks per-replica health and generation (a background poll
// of /api/generation plus inline observation of every scatter response)
// and degrades gracefully: replicas that lag the fleet maximum are
// marked lagging but keep serving — a scatter that loses its freshest
// replica mid-flight falls back to the stale group rather than failing.
// Per-replica health/generation/lag surface on /api/stats and /metrics.
package router

import (
	"context"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/hist"
	"repro/internal/serve"
	"repro/internal/shard"
)

// Replica names one backend cpd-serve process.
type Replica struct {
	// Name is the stable identity rendezvous hashing keys on — keep it
	// constant across restarts and address changes or the user mapping
	// reshuffles.
	Name string
	// Base is the replica's HTTP base URL (e.g. http://10.0.0.3:8080).
	Base string
	// Weight scales this replica's share of owner-routed keys (weighted
	// rendezvous hashing; default 1). A replica at weight 2 owns twice
	// the keys of one at weight 1; weight changes remap only the keys
	// that move, like adding or removing a replica does.
	Weight float64
}

// Options configures a Router.
type Options struct {
	// Client performs all backend requests (default: 10s timeout).
	Client *http.Client
	// PollInterval is the health/generation poll period (default 1s).
	PollInterval time.Duration
	// MaxLag is how many generations a replica may trail the fleet
	// maximum before it is marked lagging on stats/metrics (default 1;
	// lagging replicas keep serving — stale answers beat no answers).
	MaxLag uint64
}

// endpoint classes the router accounts latency for.
const (
	opRoute   = iota // owner-routed: membership, fold-in
	opScatter        // scatter-gather: rank, diffusion
	opProxy          // freshest-replica proxy: communities, quality
	opCount
)

var opNames = [opCount]string{"route", "scatter", "proxy"}

// replica is the router's per-backend state.
type replica struct {
	name   string
	base   string
	weight float64

	healthy    atomic.Bool
	generation atomic.Uint64
	requests   atomic.Uint64
	errors     atomic.Uint64
	// draining mirrors the replica's own drain latch (it advertised
	// draining on /api/generation): the router stops sending it new
	// owner-routed work while any non-draining candidate remains, so an
	// operator can empty a replica before taking it down.
	draining atomic.Bool
	// shard is the user range the replica advertises owning (nil on
	// full-snapshot replicas). Owner routing only considers replicas
	// whose range contains the user once any replica advertises one.
	shard atomic.Pointer[shard.Info]
	// misroutes counts 421 (Misdirected Request) answers — the replica
	// disowned a user the router sent it, usually a topology change
	// racing the poll; the router retries down the chain.
	misroutes atomic.Uint64

	mu      sync.Mutex
	lastErr string
}

func (r *replica) fail(err error) {
	r.errors.Add(1)
	r.healthy.Store(false)
	r.mu.Lock()
	r.lastErr = err.Error()
	r.mu.Unlock()
}

func (r *replica) ok() {
	r.healthy.Store(true)
}

// Router scatter-gathers over a fixed replica set.
type Router struct {
	opts     Options
	replicas []*replica
	lat      [opCount]hist.Atomic

	// Scatter singleflight: identical concurrent rank/diffusion queries
	// collapse onto one in-flight fleet fan-out (see scatterShared).
	sfMu           sync.Mutex
	sfCalls        map[string]*scatterCall
	sharedScatters atomic.Uint64
}

// New builds a router over the given replicas. Replica names must be
// unique and non-empty (they are the rendezvous identities).
func New(replicas []Replica, opts Options) (*Router, error) {
	if len(replicas) == 0 {
		return nil, fmt.Errorf("router: no replicas")
	}
	if opts.Client == nil {
		opts.Client = &http.Client{Timeout: 10 * time.Second}
	}
	if opts.PollInterval <= 0 {
		opts.PollInterval = time.Second
	}
	if opts.MaxLag == 0 {
		opts.MaxLag = 1
	}
	rt := &Router{opts: opts, sfCalls: map[string]*scatterCall{}}
	seen := map[string]bool{}
	for _, r := range replicas {
		if r.Name == "" || r.Base == "" {
			return nil, fmt.Errorf("router: replica needs a name and a base URL: %+v", r)
		}
		if seen[r.Name] {
			return nil, fmt.Errorf("router: duplicate replica name %q", r.Name)
		}
		seen[r.Name] = true
		w := r.Weight
		if w == 0 {
			w = 1
		}
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("router: replica %q has invalid weight %v", r.Name, r.Weight)
		}
		rep := &replica{name: r.Name, base: strings.TrimRight(r.Base, "/"), weight: w}
		rep.healthy.Store(true) // optimistic until a request says otherwise
		rt.replicas = append(rt.replicas, rep)
	}
	sort.Slice(rt.replicas, func(i, j int) bool { return rt.replicas[i].name < rt.replicas[j].name })
	return rt, nil
}

// Run polls replica health and generation until the context is
// cancelled. The router serves without it (inline observations keep the
// state fresh under traffic), but the poll detects recovered replicas
// and generation rollouts on an idle fleet.
func (rt *Router) Run(ctx context.Context) {
	t := time.NewTicker(rt.opts.PollInterval)
	defer t.Stop()
	for {
		rt.PollReplicas()
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
	}
}

// PollReplicas refreshes every replica's health and generation once,
// concurrently. Exported so harnesses can force a refresh instead of
// waiting out the poll interval.
func (rt *Router) PollReplicas() {
	var wg sync.WaitGroup
	for _, r := range rt.replicas {
		wg.Add(1)
		go func(r *replica) {
			defer wg.Done()
			var rep serve.GenerationReport
			if err := rt.getJSON(r, "/api/generation", &rep); err != nil {
				r.fail(err)
				return
			}
			r.ok()
			r.generation.Store(rep.Generation)
			r.draining.Store(rep.Draining)
			r.shard.Store(rep.Shard) // nil on full-snapshot replicas
		}(r)
	}
	wg.Wait()
}

// maxGeneration is the fleet-wide newest generation observed.
func (rt *Router) maxGeneration() uint64 {
	var max uint64
	for _, r := range rt.replicas {
		if g := r.generation.Load(); g > max {
			max = g
		}
	}
	return max
}

// rendezvousScore is FNV-1a over the replica name and the key's eight
// little-endian bytes — deterministic across processes and releases,
// which is what makes the ownership mapping stable fleet-wide.
func rendezvousScore(name string, key uint64) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	for i := 0; i < 8; i++ {
		h ^= key & 0xFF
		h *= prime64
		key >>= 8
	}
	return h
}

// owners returns the replicas in preference order for key: descending
// weighted rendezvous score, name-ascending on the (astronomically
// unlikely) score tie. The first entry is the owner; the rest are the
// failover chain — which is exactly the owner order of the fleet without
// the preceding entries, so failover agrees with what a smaller fleet
// would have chosen (the property the stability test pins).
//
// The weighted score is the standard logarithmic form −w/ln(u) with
// u = (h+0.5)/2^64 ∈ (0,1): a replica at weight 2w wins twice as many
// keys as one at weight w. At uniform weights −w/ln(u) is monotone in h,
// so the ordering — and every existing ownership mapping — is identical
// to the unweighted raw-hash comparison.
func (rt *Router) owners(key uint64) []*replica {
	type scored struct {
		r *replica
		s float64
	}
	xs := make([]scored, len(rt.replicas))
	for i, r := range rt.replicas {
		h := rendezvousScore(r.name, key)
		u := (float64(h) + 0.5) / float64(1<<63) / 2
		xs[i] = scored{r, -r.weight / math.Log(u)}
	}
	sort.Slice(xs, func(i, j int) bool {
		if xs[i].s != xs[j].s {
			return xs[i].s > xs[j].s
		}
		return xs[i].r.name < xs[j].r.name
	})
	out := make([]*replica, len(xs))
	for i, x := range xs {
		out[i] = x.r
	}
	return out
}

// fleetSharded reports whether any replica advertises a shard range —
// the signal that owner routing must respect user → shard containment.
func (rt *Router) fleetSharded() bool {
	for _, r := range rt.replicas {
		if r.shard.Load() != nil {
			return true
		}
	}
	return false
}

// userChain is the failover chain for user-addressed work: the owners
// chain for the user's key, filtered to the replicas whose advertised
// shard range contains the user once the fleet is sharded. A fleet where
// no advertised shard contains the user falls back to the whole chain —
// the backends then answer 421/400 and the client sees the truth rather
// than a routing dead-end.
func (rt *Router) userChain(user int64) []*replica {
	chain := rt.owners(uint64(user))
	if !rt.fleetSharded() {
		return chain
	}
	owning := make([]*replica, 0, len(chain))
	for _, r := range chain {
		if in := r.shard.Load(); in != nil && in.Owns(int(user)) {
			owning = append(owning, r)
		}
	}
	if len(owning) == 0 {
		return chain
	}
	return owning
}

// Owner returns the name of the replica owning key — the unit the
// hash-stability test (and operators debugging placement) talk about.
func (rt *Router) Owner(key uint64) string {
	return rt.owners(key)[0].name
}
