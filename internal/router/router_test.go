package router

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/serve"
)

// fakeReplica is a scripted backend: it answers /api/generation with its
// current generation and /api/rank, /api/user, /api/foldin with canned
// payloads, recording which paths it saw.
type fakeReplica struct {
	name string
	gen  uint64
	rank serve.RankResult
	srv  *httptest.Server
	hits []string
}

func newFakeReplica(t *testing.T, name string, gen uint64, entries []serve.RankEntry) *fakeReplica {
	t.Helper()
	f := &fakeReplica{name: name, gen: gen}
	f.rank = serve.RankResult{Version: 7, Generation: gen, Entries: entries}
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		f.hits = append(f.hits, r.URL.Path)
		w.Header().Set("Content-Type", "application/json")
		switch r.URL.Path {
		case "/api/generation":
			fmt.Fprintf(w, `{"generation": %d}`, f.gen)
		case "/api/rank":
			json.NewEncoder(w).Encode(f.rank)
		case "/api/diffusion":
			json.NewEncoder(w).Encode(serve.DiffusionResult{Version: 3, Generation: f.gen, Logit: float64(f.gen), Prob: 0.5})
		case "/api/user", "/api/foldin":
			fmt.Fprintf(w, `{"replica": %q}`, f.name)
		default:
			http.NotFound(w, r)
		}
	})
	f.srv = httptest.NewServer(mux)
	t.Cleanup(f.srv.Close)
	return f
}

func newTestRouter(t *testing.T, fakes ...*fakeReplica) *Router {
	t.Helper()
	var reps []Replica
	for _, f := range fakes {
		reps = append(reps, Replica{Name: f.name, Base: f.srv.URL})
	}
	rt, err := New(reps, Options{Client: &http.Client{Timeout: 2 * time.Second}})
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func getRank(t *testing.T, base string, q string) (serve.RankResult, int) {
	t.Helper()
	resp, err := http.Get(base + "/api/rank" + q)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var res serve.RankResult
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			t.Fatal(err)
		}
	}
	return res, resp.StatusCode
}

// A replica dying mid-scatter must degrade the gather, not the answer:
// the surviving replicas' merge still serves, and the dead replica is
// marked unhealthy (and skipped) until it comes back.
func TestScatterReplicaDown(t *testing.T) {
	entries := []serve.RankEntry{{Community: 1, Score: 9}, {Community: 2, Score: 5}}
	a := newFakeReplica(t, "a", 3, entries)
	b := newFakeReplica(t, "b", 3, entries)
	c := newFakeReplica(t, "c", 3, entries)
	rt := newTestRouter(t, a, b, c)
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	res, status := getRank(t, front.URL, "?w=1&k=2")
	if status != http.StatusOK || len(res.Entries) != 2 || res.Generation != 3 {
		t.Fatalf("healthy scatter: status %d result %+v", status, res)
	}
	if res.Version != 0 {
		t.Fatalf("merged result leaked a process-local version: %+v", res)
	}

	b.srv.Close() // replica drops between scatters
	res, status = getRank(t, front.URL, "?w=1&k=2")
	if status != http.StatusOK || len(res.Entries) != 2 {
		t.Fatalf("scatter with a dead replica: status %d result %+v", status, res)
	}
	st := rt.Stats()
	for _, r := range st.Replicas {
		if r.Name == "b" && (r.Healthy || r.Errors == 0 || r.LastError == "") {
			t.Fatalf("dead replica not marked: %+v", r)
		}
		if r.Name != "b" && !r.Healthy {
			t.Fatalf("live replica %s marked unhealthy", r.Name)
		}
	}
	if st.Healthy != 2 {
		t.Fatalf("healthy count = %d, want 2", st.Healthy)
	}

	// Subsequent scatters skip the unhealthy replica entirely.
	before := len(b.hits)
	if _, status := getRank(t, front.URL, "?w=1"); status != http.StatusOK {
		t.Fatalf("scatter after mark: status %d", status)
	}
	if len(b.hits) != before {
		t.Fatalf("unhealthy replica still scattered to")
	}
}

// Replicas answering from different generations must never be merged
// together: only the freshest group contributes, and the poll marks the
// trailing replica's lag on stats.
func TestScatterMixedGenerations(t *testing.T) {
	fresh := []serve.RankEntry{{Community: 4, Score: 8}, {Community: 9, Score: 6}}
	stale := []serve.RankEntry{{Community: 1, Score: 99}} // would win a torn merge
	a := newFakeReplica(t, "a", 5, fresh)
	b := newFakeReplica(t, "b", 5, fresh)
	lag := newFakeReplica(t, "lag", 2, stale)
	rt := newTestRouter(t, a, b, lag)
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	res, status := getRank(t, front.URL, "?w=1&k=5")
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if res.Generation != 5 || len(res.Entries) != 2 || res.Entries[0].Community != 4 {
		t.Fatalf("merge crossed generations: %+v", res)
	}

	rt.PollReplicas()
	st := rt.Stats()
	if st.Generation != 5 {
		t.Fatalf("fleet generation = %d, want 5", st.Generation)
	}
	for _, r := range st.Replicas {
		switch r.Name {
		case "lag":
			if r.Generation != 2 || r.Lag != 3 || !r.Lagging || !r.Healthy {
				t.Fatalf("lagging replica status: %+v", r)
			}
		default:
			if r.Lag != 0 || r.Lagging {
				t.Fatalf("fresh replica marked lagging: %+v", r)
			}
		}
	}

	// The lag also surfaces on /metrics.
	resp, err := http.Get(front.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	body := string(raw)
	for _, want := range []string{
		`cpd_router_replica_lag{replica="lag"} 3`,
		`cpd_router_replica_up{replica="a"} 1`,
		`cpd_router_generation 5`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// The partial top-K merge must reproduce the single-node order exactly:
// score descending, community ascending on score ties (TopKIndices'
// tie-to-first-index rule), duplicates deduplicated to the best score,
// and older generations dropped rather than mixed.
func TestMergeRankTies(t *testing.T) {
	merged := mergeRank([]*serve.RankResult{
		{Generation: 7, Entries: []serve.RankEntry{
			{Community: 5, Score: 3.0},
			{Community: 2, Score: 3.0}, // ties 5; lower id must sort first
			{Community: 8, Score: 1.0},
		}},
		{Generation: 7, Entries: []serve.RankEntry{
			{Community: 5, Score: 3.0}, // duplicate of the tie
			{Community: 3, Score: 9.0},
			{Community: 8, Score: 2.0}, // same community, better score
		}},
		{Generation: 6, Entries: []serve.RankEntry{
			{Community: 1, Score: 100}, // stale: must not appear
		}},
	}, 4)
	if merged.Generation != 7 {
		t.Fatalf("generation = %d, want 7", merged.Generation)
	}
	want := []serve.RankEntry{
		{Community: 3, Score: 9.0},
		{Community: 2, Score: 3.0},
		{Community: 5, Score: 3.0},
		{Community: 8, Score: 2.0},
	}
	if len(merged.Entries) != len(want) {
		t.Fatalf("entries = %+v, want %+v", merged.Entries, want)
	}
	for i := range want {
		if merged.Entries[i] != want[i] {
			t.Fatalf("entry %d = %+v, want %+v", i, merged.Entries[i], want[i])
		}
	}
	// Truncation keeps the top of the same order.
	if top := mergeRank([]*serve.RankResult{{Generation: 7, Entries: want}}, 2); len(top.Entries) != 2 || top.Entries[1].Community != 2 {
		t.Fatalf("truncated merge = %+v", top.Entries)
	}
}

// gatedReplica answers /api/rank with a canned payload only after the
// release gate opens, counting hits atomically — the instrument for
// observing how many fan-outs a thundering herd actually causes.
type gatedReplica struct {
	name    string
	hits    atomic.Int64
	release chan struct{}
	srv     *httptest.Server
}

func newGatedReplica(t *testing.T, name string, entries []serve.RankEntry) *gatedReplica {
	t.Helper()
	s := &gatedReplica{name: name, release: make(chan struct{})}
	mux := http.NewServeMux()
	mux.HandleFunc("/api/rank", func(w http.ResponseWriter, r *http.Request) {
		s.hits.Add(1)
		<-s.release
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(serve.RankResult{Generation: 4, Entries: entries})
	})
	s.srv = httptest.NewServer(mux)
	t.Cleanup(s.srv.Close)
	return s
}

// A thundering herd of identical rank queries must share ONE fleet
// fan-out: each replica sees a single backend request, every client gets
// the same complete answer, and the stats count the joined followers. A
// different query afterwards gets its own fan-out.
func TestScatterSingleflight(t *testing.T) {
	entries := []serve.RankEntry{{Community: 2, Score: 7}, {Community: 5, Score: 3}}
	a := newGatedReplica(t, "a", entries)
	b := newGatedReplica(t, "b", entries)
	rt, err := New(
		[]Replica{{Name: "a", Base: a.srv.URL}, {Name: "b", Base: b.srv.URL}},
		Options{Client: &http.Client{Timeout: 10 * time.Second}},
	)
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	const herd = 8
	type answer struct {
		res    serve.RankResult
		status int
		err    error
	}
	answers := make(chan answer, herd)
	ask := func() {
		resp, err := http.Get(front.URL + "/api/rank?w=1&k=2")
		if err != nil {
			answers <- answer{err: err}
			return
		}
		defer resp.Body.Close()
		var res serve.RankResult
		err = json.NewDecoder(resp.Body).Decode(&res)
		answers <- answer{res: res, status: resp.StatusCode, err: err}
	}

	// Leader first: once both backends hold its fan-out at the gate, every
	// follower deterministically finds the in-flight call and joins it.
	go ask()
	waitFor := func(cond func() bool, what string) {
		t.Helper()
		for deadline := time.Now().Add(5 * time.Second); !cond(); {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", what)
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitFor(func() bool { return a.hits.Load() == 1 && b.hits.Load() == 1 }, "leader fan-out")
	for i := 1; i < herd; i++ {
		go ask()
	}
	waitFor(func() bool { return rt.sharedScatters.Load() == herd-1 }, "followers to join the flight")
	close(a.release)
	close(b.release)

	for i := 0; i < herd; i++ {
		got := <-answers
		if got.err != nil || got.status != http.StatusOK {
			t.Fatalf("herd request failed: status %d err %v", got.status, got.err)
		}
		if got.res.Generation != 4 || len(got.res.Entries) != 2 || got.res.Entries[0].Community != 2 {
			t.Fatalf("shared answer wrong: %+v", got.res)
		}
	}
	if a.hits.Load() != 1 || b.hits.Load() != 1 {
		t.Fatalf("herd caused %d/%d backend requests, want 1/1", a.hits.Load(), b.hits.Load())
	}
	if st := rt.Stats(); st.SharedScatters != herd-1 {
		t.Fatalf("SharedScatters = %d, want %d", st.SharedScatters, herd-1)
	}

	// A different query (new k) is a new key: it must scatter for itself.
	if _, status := getRank(t, front.URL, "?w=1&k=1"); status != http.StatusOK {
		t.Fatalf("post-herd query: status %d", status)
	}
	if a.hits.Load() != 2 || b.hits.Load() != 2 {
		t.Fatalf("distinct query shared a finished flight: hits %d/%d", a.hits.Load(), b.hits.Load())
	}
}

// Rendezvous routing must be stable across replica-count changes: the
// two-replica fleet's assignments agree with the three-replica fleet's
// everywhere except the removed replica's users, and those land exactly
// on their failover (second-preference) replica.
func TestOwnerStabilityAcrossFleetChanges(t *testing.T) {
	mk := func(names ...string) *Router {
		var reps []Replica
		for _, n := range names {
			reps = append(reps, Replica{Name: n, Base: "http://" + n})
		}
		rt, err := New(reps, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return rt
	}
	full := mk("a", "b", "c")
	reduced := mk("a", "b")
	grown := mk("a", "b", "c")

	counts := map[string]int{}
	for key := uint64(0); key < 2000; key++ {
		owner := full.Owner(key)
		counts[owner]++
		if owner == "c" {
			// c's users fall to their second preference, which is what the
			// reduced fleet picks as owner.
			chain := full.owners(key)
			if got := reduced.Owner(key); got != chain[1].name {
				t.Fatalf("key %d: reduced owner %s, want failover %s", key, got, chain[1].name)
			}
		} else if got := reduced.Owner(key); got != owner {
			t.Fatalf("key %d remapped %s -> %s though its replica survived", key, owner, got)
		}
		// Re-adding the replica restores the original assignment.
		if grown.Owner(key) != owner {
			t.Fatalf("key %d not restored after re-add", key)
		}
	}
	// Sanity: the hash actually spreads users over all three replicas.
	for _, n := range []string{"a", "b", "c"} {
		if counts[n] < 400 {
			t.Fatalf("owner distribution skewed: %+v", counts)
		}
	}
}

// Owner-routed endpoints fail over down the preference chain when the
// owner is unreachable, and fold-in honours the ?user= routing hint.
func TestOwnerRoutingFailover(t *testing.T) {
	a := newFakeReplica(t, "a", 1, nil)
	b := newFakeReplica(t, "b", 1, nil)
	c := newFakeReplica(t, "c", 1, nil)
	byName := map[string]*fakeReplica{"a": a, "b": b, "c": c}
	rt := newTestRouter(t, a, b, c)
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	getReplica := func(path string) string {
		var resp *http.Response
		var err error
		if strings.Contains(path, "foldin") {
			resp, err = http.Post(front.URL+path, "application/json", strings.NewReader(`{"docs":[[1]],"seed":42}`))
		} else {
			resp, err = http.Get(front.URL + path)
		}
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
		var body struct {
			Replica string `json:"replica"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return body.Replica
	}

	// Membership lands on the rendezvous owner.
	owner := rt.Owner(11)
	if got := getReplica("/api/user?id=11&k=3"); got != owner {
		t.Fatalf("user 11 served by %s, want owner %s", got, owner)
	}
	// Fold-in with a user hint routes like that user; without one, by seed.
	if got := getReplica("/api/foldin?user=11"); got != owner {
		t.Fatalf("foldin hint routed to %s, want %s", got, owner)
	}
	if got := getReplica("/api/foldin"); got != rt.Owner(42) {
		t.Fatalf("foldin by seed routed to %s, want %s", got, rt.Owner(42))
	}

	// Kill the owner: requests fail over to the next chain entry.
	chain := rt.owners(11)
	byName[chain[0].name].srv.Close()
	if got := getReplica("/api/user?id=11"); got != chain[1].name {
		t.Fatalf("failover served by %s, want %s", got, chain[1].name)
	}
	// Bad inputs are rejected at the router, no backend involved.
	resp, err := http.Get(front.URL + "/api/user?id=notanumber")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad id: status %d", resp.StatusCode)
	}
}
