package router

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/serve"
	"repro/internal/shard"
)

// Handler exposes the routed query surface. Paths and parameters mirror
// serve.APIHandler exactly, so any cpd-serve client — cpd-loadgen
// included — can point at a router base URL unchanged:
//
//	GET  /api/user?id=42&k=5      owner-routed membership (shard-aware)
//	GET  /api/pirow?id=42         owner-routed membership row (shard-aware)
//	POST /api/foldin              owner-routed fold-in (?user=K overrides the seed-derived key;
//	                              friend rows hydrated from owners on sharded fleets)
//	GET  /api/rank?w=17,204&k=10  scatter-gather, partial top-K merge (Members summed across shards)
//	GET  /api/diffusion?...       scatter-gather, freshest answer (row-hydrated on sharded fleets)
//	GET  /api/communities         freshest-replica proxy
//	GET  /api/community?id=3      freshest-replica proxy
//	GET  /api/quality             freshest-replica proxy
//	GET  /api/generation          fleet generation view
//	GET  /api/stats               per-replica health/generation/lag + endpoint latency
//	GET  /metrics                 Prometheus text exposition
//	GET  /healthz                 liveness + fleet summary
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/api/user", func(w http.ResponseWriter, r *http.Request) {
		id, err := strconv.ParseInt(r.URL.Query().Get("id"), 10, 64)
		if err != nil {
			http.Error(w, "bad or missing user id", http.StatusBadRequest)
			return
		}
		rt.routeToOwner(w, r, rt.userChain(id), nil)
	})
	mux.HandleFunc("/api/pirow", func(w http.ResponseWriter, r *http.Request) {
		id, err := strconv.ParseInt(r.URL.Query().Get("id"), 10, 64)
		if err != nil {
			http.Error(w, "bad or missing user id", http.StatusBadRequest)
			return
		}
		rt.routeToOwner(w, r, rt.userChain(id), nil)
	})
	mux.HandleFunc("/api/foldin", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST a FoldInRequest", http.StatusMethodNotAllowed)
			return
		}
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 16<<20))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		// Fold-in requests carry no user id (the user is by definition
		// unseen), so the routing key is the caller's ?user= hint when
		// given, else the request seed — deterministic either way, so
		// retries of the same request land on the same replica's warm
		// cache.
		var key uint64
		if u := r.URL.Query().Get("user"); u != "" {
			id, err := strconv.ParseInt(u, 10, 64)
			if err != nil {
				http.Error(w, "bad user routing hint", http.StatusBadRequest)
				return
			}
			key = uint64(id)
		} else {
			var req struct {
				Seed uint64 `json:"seed"`
			}
			if err := json.Unmarshal(body, &req); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			key = req.Seed
		}
		// On a sharded fleet no single replica owns every friend's Pi
		// row, so the router hydrates the rows from the owning replicas
		// and ships them with the request. The backend ignores hydrated
		// rows for friends it owns, so the answer stays bit-identical to
		// a full node regardless of which replica serves it.
		if rt.fleetSharded() {
			hydrated, err := rt.hydrateFriendRows(r, body)
			if err != nil {
				http.Error(w, "router: "+err.Error(), http.StatusBadGateway)
				return
			}
			body = hydrated
		}
		rt.routeToOwner(w, r, rt.owners(key), body)
	})
	mux.HandleFunc("/api/rank", rt.rankHandler)
	mux.HandleFunc("/api/diffusion", rt.diffusionHandler)
	for _, path := range []string{"/api/communities", "/api/community", "/api/quality"} {
		mux.HandleFunc(path, rt.proxyFreshest)
	}
	mux.HandleFunc("/api/generation", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, serve.GenerationReport{Generation: rt.maxGeneration()})
	})
	mux.HandleFunc("/api/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, rt.Stats())
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		rt.WriteMetrics(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		st := rt.Stats()
		writeJSON(w, map[string]any{
			"status":     "ok",
			"replicas":   len(st.Replicas),
			"healthy":    st.Healthy,
			"generation": st.Generation,
		})
	})
	return mux
}

// attempt sends one backend request; body non-nil replays a buffered
// POST body. It returns the backend response with its body UNREAD.
func (rt *Router) attempt(r *replica, req *http.Request, body []byte) (*http.Response, error) {
	url := r.base + req.URL.Path
	if req.URL.RawQuery != "" {
		url += "?" + req.URL.RawQuery
	}
	var rdr io.Reader
	if body != nil {
		rdr = bytes.NewReader(body)
	}
	out, err := http.NewRequestWithContext(req.Context(), req.Method, url, rdr)
	if err != nil {
		return nil, err
	}
	if ct := req.Header.Get("Content-Type"); ct != "" {
		out.Header.Set("Content-Type", ct)
	}
	r.requests.Add(1)
	resp, err := rt.opts.Client.Do(out)
	if err != nil {
		r.fail(err)
		return nil, err
	}
	r.ok()
	return resp, nil
}

// routeToOwner forwards the request down the given preference chain in
// three tiers: healthy non-draining replicas first in owner order, then
// healthy draining ones (a fully-draining fleet must still answer), and
// only if every healthy attempt failed at transport level do the
// unhealthy ones get a recovery try. The first replica that answers HTTP
// wins and its response is relayed verbatim — except 421 (Misdirected
// Request: the replica disowns the user, its shard moved under the
// router's topology view), which counts as a misroute and falls through
// to the next candidate.
func (rt *Router) routeToOwner(w http.ResponseWriter, req *http.Request, chain []*replica, body []byte) {
	start := time.Now()
	var reqErr error
	defer func() { rt.lat[opRoute].Observe(time.Since(start), reqErr) }()
	var misBody []byte
	for pass := 0; pass < 3; pass++ {
		for _, r := range chain {
			healthy, draining := r.healthy.Load(), r.draining.Load()
			var want bool
			switch pass {
			case 0:
				want = healthy && !draining
			case 1:
				want = healthy && draining
			default:
				want = !healthy
			}
			if !want {
				continue
			}
			resp, err := rt.attempt(r, req, body)
			if err != nil {
				continue
			}
			if resp.StatusCode == http.StatusMisdirectedRequest {
				r.misroutes.Add(1)
				misBody, _ = io.ReadAll(io.LimitReader(resp.Body, 1<<16))
				resp.Body.Close()
				continue
			}
			relay(w, resp)
			return
		}
	}
	if misBody != nil {
		// Every candidate disowned the user: relay the misroute so the
		// client sees why instead of a generic 502.
		reqErr = fmt.Errorf("all candidates misrouted")
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusMisdirectedRequest)
		w.Write(misBody)
		return
	}
	reqErr = fmt.Errorf("no replica reachable")
	http.Error(w, "router: no replica reachable for key", http.StatusBadGateway)
}

// relay copies a backend response to the client.
func relay(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

// proxyFreshest relays to the replica serving the newest generation,
// preferring healthy ones and failing over down the freshness order.
func (rt *Router) proxyFreshest(w http.ResponseWriter, req *http.Request) {
	start := time.Now()
	var reqErr error
	defer func() { rt.lat[opProxy].Observe(time.Since(start), reqErr) }()
	order := append([]*replica(nil), rt.replicas...)
	sort.SliceStable(order, func(i, j int) bool {
		hi, hj := order[i].healthy.Load(), order[j].healthy.Load()
		if hi != hj {
			return hi
		}
		return order[i].generation.Load() > order[j].generation.Load()
	})
	for _, r := range order {
		resp, err := rt.attempt(r, req, nil)
		if err != nil {
			continue
		}
		relay(w, resp)
		return
	}
	reqErr = fmt.Errorf("no replica reachable")
	http.Error(w, "router: no replica reachable", http.StatusBadGateway)
}

// gathered is one replica's scatter response.
type gathered struct {
	r      *replica
	status int
	body   []byte
}

// scatter fans the request out to the healthy replicas (all of them when
// none are marked healthy — a cold or fully-degraded fleet must still
// try) and gathers whatever answers. Transport failures mark the replica
// unhealthy and drop out; the gather proceeds with the rest — losing a
// replica mid-scatter degrades redundancy, not availability.
func (rt *Router) scatter(req *http.Request) []gathered {
	targets := make([]*replica, 0, len(rt.replicas))
	for _, r := range rt.replicas {
		if r.healthy.Load() {
			targets = append(targets, r)
		}
	}
	if len(targets) == 0 {
		targets = rt.replicas
	}
	results := make([]gathered, len(targets))
	var wg sync.WaitGroup
	for i, r := range targets {
		wg.Add(1)
		go func(i int, r *replica) {
			defer wg.Done()
			resp, err := rt.attempt(r, req, nil)
			if err != nil {
				return
			}
			defer resp.Body.Close()
			body, err := io.ReadAll(resp.Body)
			if err != nil {
				r.fail(err)
				return
			}
			results[i] = gathered{r: r, status: resp.StatusCode, body: body}
		}(i, r)
	}
	wg.Wait()
	out := results[:0]
	for _, g := range results {
		if g.r != nil {
			out = append(out, g)
		}
	}
	return out
}

// scatterCall is one in-flight shared scatter: followers block on done
// and read results (which they must treat as read-only — the bodies are
// shared across every request on the flight).
type scatterCall struct {
	done    chan struct{}
	results []gathered
}

// scatterShared is scatter behind a singleflight: concurrent requests
// for the same method, path and (canonicalised) query share one fleet
// fan-out instead of multiplying backend load — under a thundering herd
// of identical rank/diffusion queries the fleet sees one request per
// replica, not one per client. Scatter answers depend only on the query
// and the replicas' published generation, so every caller on the flight
// would have received the same gather anyway; the leader detaches from
// its own request's cancellation, so a leader whose client hangs up
// still completes the flight for its followers. A follower whose own
// context dies stops waiting and returns nil (degraded response).
func (rt *Router) scatterShared(req *http.Request) []gathered {
	key := req.Method + " " + req.URL.Path + "?" + req.URL.Query().Encode()
	rt.sfMu.Lock()
	if c, ok := rt.sfCalls[key]; ok {
		rt.sfMu.Unlock()
		rt.sharedScatters.Add(1)
		select {
		case <-c.done:
			return c.results
		case <-req.Context().Done():
			return nil
		}
	}
	c := &scatterCall{done: make(chan struct{})}
	rt.sfCalls[key] = c
	rt.sfMu.Unlock()
	c.results = rt.scatter(req.WithContext(context.WithoutCancel(req.Context())))
	rt.sfMu.Lock()
	delete(rt.sfCalls, key)
	rt.sfMu.Unlock()
	close(c.done)
	return c.results
}

// respondDegraded relays the most useful non-success the gather
// produced: the first HTTP error any replica returned (they agree on
// semantic errors like a bad word id), else 502.
func respondDegraded(w http.ResponseWriter, results []gathered, reqErr *error) {
	for _, g := range results {
		if g.status != 0 {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			w.WriteHeader(g.status)
			w.Write(g.body)
			return
		}
	}
	*reqErr = fmt.Errorf("no replica answered")
	http.Error(w, "router: no replica answered the scatter", http.StatusBadGateway)
}

func (rt *Router) rankHandler(w http.ResponseWriter, req *http.Request) {
	start := time.Now()
	var reqErr error
	defer func() { rt.lat[opScatter].Observe(time.Since(start), reqErr) }()
	results := rt.scatterShared(req)
	var answers []*serve.RankResult
	var infos []*shard.Info
	for _, g := range results {
		if g.status != http.StatusOK {
			continue
		}
		var res serve.RankResult
		if err := json.Unmarshal(g.body, &res); err != nil {
			continue
		}
		g.r.generation.Store(res.Generation)
		answers = append(answers, &res)
		infos = append(infos, g.r.shard.Load())
	}
	if len(answers) == 0 {
		respondDegraded(w, results, &reqErr)
		return
	}
	k := intParam(req, "k", 10)
	if merged, ok := mergeRankSharded(answers, infos, k); ok {
		writeJSON(w, merged)
		return
	}
	writeJSON(w, mergeRank(answers, k))
}

// mergeRankSharded merges rank answers from shard-owning replicas: the
// entry lists and scores are identical across shards (ranking reads only
// global sections), but each shard's Members counts only its own user
// range — the fleet-wide count is their sum. The merge takes the newest
// generation with FULL shard coverage (one answer per shard index; a
// partial sum would silently under-count members) and sums Members per
// community across one representative answer per shard. Returns ok=false
// when no answer carries shard info or no generation has full coverage —
// the caller then falls back to the unsharded merge.
func mergeRankSharded(answers []*serve.RankResult, infos []*shard.Info, k int) (*serve.RankResult, bool) {
	// gen → shard index → representative answer for that shard.
	byGen := map[uint64]map[int]*serve.RankResult{}
	count := 0
	for i, a := range answers {
		in := infos[i]
		if in == nil || in.Count <= 0 {
			continue
		}
		count = in.Count
		m := byGen[a.Generation]
		if m == nil {
			m = map[int]*serve.RankResult{}
			byGen[a.Generation] = m
		}
		if _, dup := m[in.Index]; !dup {
			m[in.Index] = a
		}
	}
	if count == 0 {
		return nil, false
	}
	var gens []uint64
	for g, m := range byGen {
		if len(m) == count {
			gens = append(gens, g)
		}
	}
	if len(gens) == 0 {
		return nil, false
	}
	best := gens[0]
	for _, g := range gens[1:] {
		if g > best {
			best = g
		}
	}
	shards := byGen[best]
	rep := shards[0]
	if rep == nil { // coverage is full but index 0 missing ⇒ inconsistent infos
		return nil, false
	}
	merged := &serve.RankResult{Generation: best}
	for _, e := range rep.Entries {
		sum := 0
		for _, a := range shards {
			for _, ae := range a.Entries {
				if ae.Community == e.Community {
					sum += ae.Members
					break
				}
			}
		}
		e.Members = sum
		merged.Entries = append(merged.Entries, e)
	}
	if k > 0 && len(merged.Entries) > k {
		merged.Entries = merged.Entries[:k]
	}
	return merged, true
}

func (rt *Router) diffusionHandler(w http.ResponseWriter, req *http.Request) {
	if req.Method == http.MethodGet && rt.fleetSharded() {
		rt.diffusionSharded(w, req)
		return
	}
	start := time.Now()
	var reqErr error
	defer func() { rt.lat[opScatter].Observe(time.Since(start), reqErr) }()
	results := rt.scatterShared(req)
	var best *serve.DiffusionResult
	for _, g := range results {
		if g.status != http.StatusOK {
			continue
		}
		var res serve.DiffusionResult
		if err := json.Unmarshal(g.body, &res); err != nil {
			continue
		}
		g.r.generation.Store(res.Generation)
		// Freshest generation wins; within one generation every replica's
		// answer is bit-identical, so any representative will do.
		if best == nil || res.Generation > best.Generation {
			r := res
			best = &r
		}
	}
	if best == nil {
		respondDegraded(w, results, &reqErr)
		return
	}
	best.Version = 0 // process-local backend counter; meaningless here
	writeJSON(w, best)
}

// mergeRank is the partial top-K merge: entries from the freshest
// generation represented among the answers, deduplicated per community
// keeping the best score, ordered score-descending with community id
// ascending on ties — exactly the order mathx.TopKIndices produces on a
// single node, so a merge over replicas serving the same generation is
// bit-identical to that single node's answer. Answers from older
// generations are dropped, never mixed: a torn merge across generations
// could rank communities by incomparable scores.
func mergeRank(answers []*serve.RankResult, k int) *serve.RankResult {
	var maxGen uint64
	for _, a := range answers {
		if a.Generation > maxGen {
			maxGen = a.Generation
		}
	}
	best := map[int]serve.RankEntry{}
	for _, a := range answers {
		if a.Generation != maxGen {
			continue
		}
		for _, e := range a.Entries {
			if cur, ok := best[e.Community]; !ok || e.Score > cur.Score {
				best[e.Community] = e
			}
		}
	}
	merged := &serve.RankResult{Generation: maxGen}
	for _, e := range best {
		merged.Entries = append(merged.Entries, e)
	}
	sort.Slice(merged.Entries, func(i, j int) bool {
		a, b := merged.Entries[i], merged.Entries[j]
		if a.Score != b.Score {
			return a.Score > b.Score
		}
		return a.Community < b.Community
	})
	if k > 0 && len(merged.Entries) > k {
		merged.Entries = merged.Entries[:k]
	}
	return merged
}

// diffusionSharded scores a diffusion query on a sharded fleet. When one
// shard owns both endpoints the query forwards to that shard's owner
// chain unchanged (both rows local — the exact single-node computation).
// A cross-shard pair fetches v's membership row from its owning replica
// (/api/pirow) and POSTs the row-carrying variant to u's owner; a
// generation mismatch between the row and the scoring replica — a
// rollout racing the query — retries up to three times rather than mix
// rows from two generations.
func (rt *Router) diffusionSharded(w http.ResponseWriter, req *http.Request) {
	start := time.Now()
	var reqErr error
	defer func() { rt.lat[opScatter].Observe(time.Since(start), reqErr) }()
	q := req.URL.Query()
	u, err1 := strconv.Atoi(q.Get("u"))
	v, err2 := strconv.Atoi(q.Get("v"))
	z, err3 := strconv.Atoi(q.Get("topic"))
	if err1 != nil || err2 != nil || err3 != nil {
		http.Error(w, "u, v and topic are required integers", http.StatusBadRequest)
		return
	}
	bucket := intParam(req, "bucket", -1)
	chain := rt.userChain(int64(u))
	if in := chain[0].shard.Load(); in != nil && in.Owns(u) && in.Owns(v) {
		status, body, err := rt.ownerFetch(req.Context(), chain, http.MethodGet, req.URL.Path+"?"+req.URL.RawQuery, nil)
		if err != nil {
			reqErr = err
			http.Error(w, "router: "+err.Error(), http.StatusBadGateway)
			return
		}
		relayBytes(w, status, body)
		return
	}
	for try := 0; try < 3; try++ {
		vres, err := rt.fetchPiRow(req.Context(), int64(v))
		if err != nil {
			reqErr = err
			http.Error(w, "router: "+err.Error(), http.StatusBadGateway)
			return
		}
		body, err := json.Marshal(serve.DiffusionRowsRequest{U: u, V: v, Topic: z, Bucket: bucket, VRow: vres.Row})
		if err != nil {
			reqErr = err
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		status, respBody, err := rt.ownerFetch(req.Context(), chain, http.MethodPost, "/api/diffusion", body)
		if err != nil {
			reqErr = err
			http.Error(w, "router: "+err.Error(), http.StatusBadGateway)
			return
		}
		if status != http.StatusOK {
			relayBytes(w, status, respBody)
			return
		}
		var res serve.DiffusionResult
		if err := json.Unmarshal(respBody, &res); err != nil {
			reqErr = err
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		if res.Generation == vres.Generation {
			res.Version = 0 // process-local backend counter; meaningless here
			writeJSON(w, &res)
			return
		}
		// Generations diverged between the row fetch and the scoring
		// replica; refetch against the (presumably settled) fleet.
	}
	reqErr = fmt.Errorf("generation mismatch persisted")
	http.Error(w, "router: generation mismatch across shards persisted after retries", http.StatusBadGateway)
}

// hydrateFriendRows parses a fold-in body, fetches a membership row for
// every listed friend from the friend's owning replica, and returns the
// body with FriendRows filled in. Rows are refetched until they all come
// from one generation (three attempts) — a fold-in must not see two
// friends from different model generations.
func (rt *Router) hydrateFriendRows(req *http.Request, body []byte) ([]byte, error) {
	var fr serve.FoldInRequest
	if err := json.Unmarshal(body, &fr); err != nil {
		return nil, fmt.Errorf("parsing fold-in request: %w", err)
	}
	if len(fr.Friends) == 0 {
		return body, nil
	}
	for try := 0; try < 3; try++ {
		rows := make([]serve.FriendRow, len(fr.Friends))
		var gen uint64
		consistent := true
		for i, friend := range fr.Friends {
			res, err := rt.fetchPiRow(req.Context(), int64(friend))
			if err != nil {
				return nil, fmt.Errorf("hydrating friend %d: %w", friend, err)
			}
			if i == 0 {
				gen = res.Generation
			} else if res.Generation != gen {
				consistent = false
				break
			}
			rows[i] = serve.FriendRow{User: friend, Row: res.Row}
		}
		if !consistent {
			continue
		}
		fr.FriendRows = rows
		return json.Marshal(&fr)
	}
	return nil, fmt.Errorf("friend rows kept straddling generations")
}

// fetchPiRow fetches one user's membership row from the user's owning
// replica chain.
func (rt *Router) fetchPiRow(ctx context.Context, user int64) (*serve.PiRowResult, error) {
	status, body, err := rt.ownerFetch(ctx, rt.userChain(user), http.MethodGet, "/api/pirow?id="+strconv.FormatInt(user, 10), nil)
	if err != nil {
		return nil, err
	}
	if status != http.StatusOK {
		return nil, fmt.Errorf("pirow for user %d answered status %d: %s", user, status, bytes.TrimSpace(body))
	}
	var res serve.PiRowResult
	if err := json.Unmarshal(body, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// ownerFetch sends one synthesized request down a preference chain with
// routeToOwner's tiering (healthy non-draining, healthy draining,
// unhealthy) and returns the first HTTP answer, read fully. 421 answers
// count as misroutes and fall through to the next candidate; if every
// candidate misroutes, the last 421 is returned so the caller sees why.
func (rt *Router) ownerFetch(ctx context.Context, chain []*replica, method, pathAndQuery string, body []byte) (int, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, method, "http://router.invalid"+pathAndQuery, nil)
	if err != nil {
		return 0, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	var misBody []byte
	for pass := 0; pass < 3; pass++ {
		for _, r := range chain {
			healthy, draining := r.healthy.Load(), r.draining.Load()
			var want bool
			switch pass {
			case 0:
				want = healthy && !draining
			case 1:
				want = healthy && draining
			default:
				want = !healthy
			}
			if !want {
				continue
			}
			resp, err := rt.attempt(r, req, body)
			if err != nil {
				continue
			}
			b, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				r.fail(err)
				continue
			}
			if resp.StatusCode == http.StatusMisdirectedRequest {
				r.misroutes.Add(1)
				misBody = b
				continue
			}
			return resp.StatusCode, b, nil
		}
	}
	if misBody != nil {
		return http.StatusMisdirectedRequest, misBody, nil
	}
	return 0, nil, fmt.Errorf("no replica reachable")
}

// relayBytes writes an already-read backend response to the client.
func relayBytes(w http.ResponseWriter, status int, body []byte) {
	if status == http.StatusOK {
		w.Header().Set("Content-Type", "application/json")
	} else {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	}
	w.WriteHeader(status)
	w.Write(body)
}

func (rt *Router) getJSON(r *replica, path string, v any) error {
	resp, err := rt.opts.Client.Get(r.base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return fmt.Errorf("%s%s answered status %d", r.base, path, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

func intParam(r *http.Request, name string, def int) int {
	if s := r.URL.Query().Get(name); s != "" {
		if v, err := strconv.Atoi(s); err == nil {
			return v
		}
	}
	return def
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
