package router

import (
	"fmt"
	"io"
	"strconv"

	"repro/internal/serve"
	"repro/internal/shard"
)

// ReplicaStatus is one backend's health as the router sees it.
type ReplicaStatus struct {
	Name       string `json:"name"`
	Base       string `json:"base"`
	Healthy    bool   `json:"healthy"`
	Generation uint64 `json:"generation"`
	// Lag is how many generations this replica trails the fleet maximum;
	// Lagging marks lag beyond Options.MaxLag. A lagging replica keeps
	// serving (stale answers beat no answers) but operators should look.
	Lag     uint64 `json:"lag"`
	Lagging bool   `json:"lagging"`
	// Weight is the replica's static rendezvous weight (default 1).
	Weight   float64 `json:"weight"`
	Requests uint64  `json:"requests"`
	Errors   uint64  `json:"errors"`
	// Misroutes counts 421 answers: the replica disowned a routed user.
	Misroutes uint64 `json:"misroutes,omitempty"`
	// Draining mirrors the replica's advertised drain latch; the router
	// sends it new owner-routed work only when no non-draining candidate
	// remains.
	Draining bool `json:"draining,omitempty"`
	// Shard is the user range the replica advertises owning (absent on
	// full-snapshot replicas).
	Shard     *shard.Info `json:"shard,omitempty"`
	LastError string      `json:"lastError,omitempty"`
}

// Stats is the router's /api/stats payload.
type Stats struct {
	// Generation is the fleet-wide newest generation observed.
	Generation uint64 `json:"generation"`
	// Healthy counts replicas currently marked healthy.
	Healthy int `json:"healthy"`
	// Sharded reports whether any replica advertises a shard range;
	// Shards is the advertised shard count (0 when unsharded).
	Sharded bool `json:"sharded,omitempty"`
	Shards  int  `json:"shards,omitempty"`
	// Misroutes totals 421 answers across the fleet.
	Misroutes uint64          `json:"misroutes,omitempty"`
	Replicas  []ReplicaStatus `json:"replicas"`
	// Endpoints digests latency per routing class (route/scatter/proxy),
	// in the same shape as a single replica's per-endpoint stats.
	Endpoints map[string]serve.EndpointStats `json:"endpoints"`
	// SharedScatters counts scatter requests that joined an identical
	// in-flight query's fan-out instead of launching their own.
	SharedScatters uint64 `json:"sharedScatters"`
}

// Stats snapshots the router's view of the fleet.
func (rt *Router) Stats() Stats {
	max := rt.maxGeneration()
	st := Stats{
		Generation:     max,
		Endpoints:      make(map[string]serve.EndpointStats, opCount),
		SharedScatters: rt.sharedScatters.Load(),
	}
	for _, r := range rt.replicas {
		gen := r.generation.Load()
		r.mu.Lock()
		lastErr := r.lastErr
		r.mu.Unlock()
		rs := ReplicaStatus{
			Name:       r.name,
			Base:       r.base,
			Healthy:    r.healthy.Load(),
			Generation: gen,
			Lag:        max - gen,
			Weight:     r.weight,
			Requests:   r.requests.Load(),
			Errors:     r.errors.Load(),
			Misroutes:  r.misroutes.Load(),
			Draining:   r.draining.Load(),
			Shard:      r.shard.Load(),
			LastError:  lastErr,
		}
		rs.Lagging = rs.Lag > rt.opts.MaxLag
		if rs.Healthy {
			st.Healthy++
		}
		if rs.Shard != nil {
			st.Sharded = true
			st.Shards = rs.Shard.Count
		}
		st.Misroutes += rs.Misroutes
		st.Replicas = append(st.Replicas, rs)
	}
	for i := 0; i < opCount; i++ {
		h := rt.lat[i].Snapshot()
		st.Endpoints[opNames[i]] = serve.EndpointStats{
			Count:       h.Count,
			Errors:      h.Errs,
			TotalMicros: h.TotalNS / 1e3,
			MaxMicros:   h.MaxNS / 1e3,
			P50Micros:   uint64(h.Quantile(0.50).Microseconds()),
			P95Micros:   uint64(h.Quantile(0.95).Microseconds()),
			P99Micros:   uint64(h.Quantile(0.99).Microseconds()),
		}
	}
	return st
}

// WriteMetrics emits the router's Prometheus exposition: per-replica
// up/generation/lag/request/error gauges plus per-class latency
// histograms in the shared internal/hist geometry.
func (rt *Router) WriteMetrics(w io.Writer) {
	st := rt.Stats()
	gauges := []struct {
		name, help string
		get        func(ReplicaStatus) float64
	}{
		{"cpd_router_replica_up", "Replica health as the router sees it (1 healthy).", func(r ReplicaStatus) float64 {
			if r.Healthy {
				return 1
			}
			return 0
		}},
		{"cpd_router_replica_generation", "Publisher generation the replica serves.", func(r ReplicaStatus) float64 {
			return float64(r.Generation)
		}},
		{"cpd_router_replica_lag", "Generations the replica trails the fleet maximum.", func(r ReplicaStatus) float64 {
			return float64(r.Lag)
		}},
		{"cpd_router_replica_requests_total", "Backend requests the router sent this replica.", func(r ReplicaStatus) float64 {
			return float64(r.Requests)
		}},
		{"cpd_router_replica_errors_total", "Backend transport failures for this replica.", func(r ReplicaStatus) float64 {
			return float64(r.Errors)
		}},
		{"cpd_router_replica_misroutes_total", "421 answers: the replica disowned a routed user.", func(r ReplicaStatus) float64 {
			return float64(r.Misroutes)
		}},
		{"cpd_router_replica_draining", "Replica advertised draining (1 draining).", func(r ReplicaStatus) float64 {
			if r.Draining {
				return 1
			}
			return 0
		}},
		{"cpd_router_replica_weight", "Static rendezvous weight.", func(r ReplicaStatus) float64 {
			return r.Weight
		}},
		{"cpd_router_replica_shard_index", "Owned shard index (-1 on full-snapshot replicas).", func(r ReplicaStatus) float64 {
			if r.Shard == nil {
				return -1
			}
			return float64(r.Shard.Index)
		}},
	}
	for _, g := range gauges {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", g.name, g.help, g.name)
		for _, r := range st.Replicas {
			fmt.Fprintf(w, "%s{replica=%q} %s\n", g.name, r.Name, strconv.FormatFloat(g.get(r), 'g', -1, 64))
		}
	}
	fmt.Fprintf(w, "# HELP cpd_router_generation Fleet-wide newest generation observed.\n# TYPE cpd_router_generation gauge\ncpd_router_generation %d\n", st.Generation)
	fmt.Fprintf(w, "# HELP cpd_router_shards Advertised shard count (0 unsharded).\n# TYPE cpd_router_shards gauge\ncpd_router_shards %d\n", st.Shards)
	fmt.Fprintf(w, "# HELP cpd_router_shared_scatters_total Scatter requests that joined an identical in-flight fan-out.\n# TYPE cpd_router_shared_scatters_total counter\ncpd_router_shared_scatters_total %d\n", st.SharedScatters)
	for i := 0; i < opCount; i++ {
		h := rt.lat[i].Snapshot()
		h.WriteProm(w, "cpd_router_latency_seconds", "class="+strconv.Quote(opNames[i]))
	}
}
