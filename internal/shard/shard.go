// Package shard splits v2 model snapshots into per-user-range shard
// groups so a serving replica maps only the users it owns.
//
// A sharded generation is three kinds of files in one directory,
// described by a CRC'd manifest:
//
//	gen-%08d.shards.json        manifest: shard count, user/doc range
//	                            boundaries, per-file section checksums
//	gen-%08d.global.v2.snap     one v2 file with everything that is NOT
//	                            user-indexed: CFG, the original DIM,
//	                            Θ/Φ/η/ν (+ POPF/XI when present) — all
//	                            rank and diffusion scoring needs
//	gen-%08d.shard-%03d.v2.snap N v2 files, each holding the user-indexed
//	                            sections for one contiguous user range:
//	                            the Π row slice (+ a DIM patched to the
//	                            local user count) and the shard's window
//	                            of the DocC/DocZ/DocB arrays
//
// Every file is an ordinary v2 container (store.VerifyV2File applies
// unchanged), and the three file names are invisible to
// store.ScanGenerations, so sharded and full generations coexist in one
// publish directory.
//
// Split turns any v2 snapshot written by this repo's encoder into a
// sharded generation; Join reassembles one back byte-identically.
// Boundaries come from a weight-balancing pass over per-user row+doc
// bytes (PlanRanges) — power-law corpora put most document mass on few
// users, so equal-width ranges would load shards unevenly. OpenGroup
// mmaps a global+shard pair into a servable partial model whose
// mapped-byte cost is ~(1/N of Π + the global sections). Publisher is
// the streaming integration: it emits a sharded generation next to each
// full one, hard-linking shard files whose user range did not change —
// the O(changed) property at the file level.
package shard

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/store"
)

// Naming: the zero-padded generation keeps lexical and publish order
// identical, mirroring store's gen-%08d.v2.snap convention.
const (
	manifestFormat = "gen-%08d.shards.json"
	globalFormat   = "gen-%08d.global.v2.snap"
	shardFormat    = "gen-%08d.shard-%03d.v2.snap"
)

// ManifestPath names generation gen's shard manifest under dir.
func ManifestPath(dir string, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf(manifestFormat, gen))
}

// GlobalPath names generation gen's global-section file under dir.
func GlobalPath(dir string, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf(globalFormat, gen))
}

// ShardPath names shard k of generation gen under dir.
func ShardPath(dir string, gen uint64, k int) string {
	return filepath.Join(dir, fmt.Sprintf(shardFormat, gen, k))
}

// ParseManifestName extracts the generation from a shard-manifest file
// name (base name, not a path), reporting false for anything else.
func ParseManifestName(name string) (uint64, bool) {
	var gen uint64
	if _, err := fmt.Sscanf(name, "gen-%d.shards.json", &gen); err != nil || gen == 0 {
		return 0, false
	}
	if fmt.Sprintf(manifestFormat, gen) != name {
		return 0, false
	}
	return gen, true
}

// ScanManifests lists the sharded generations present in dir, ascending.
// A missing directory is an empty listing.
func ScanManifests(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("shard: scanning %s: %w", dir, err)
	}
	var gens []uint64
	for _, ent := range entries {
		if ent.IsDir() {
			continue
		}
		if gen, ok := ParseManifestName(ent.Name()); ok {
			gens = append(gens, gen)
		}
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
	return gens, nil
}

// FileEntry identifies one file of a shard group: its base name, size,
// and every section's tag/size/CRC — enough for a fetcher to verify a
// downloaded copy end-to-end against the manifest alone.
type FileEntry struct {
	Name     string             `json:"name"`
	Size     int64              `json:"size"`
	Sections []store.SectionSum `json:"sections"`
}

// Range is one shard's slice of the model: users [UserLo,UserHi) own the
// Π rows, docs [DocLo,DocHi) the assignment-array window, File the v2
// container holding both.
type Range struct {
	Index  int       `json:"index"`
	UserLo int       `json:"user_lo"`
	UserHi int       `json:"user_hi"`
	DocLo  int       `json:"doc_lo"`
	DocHi  int       `json:"doc_hi"`
	File   FileEntry `json:"file"`
}

// Manifest describes one sharded generation. It is the commit point of a
// sharded publish: the global and shard files are written first, the
// manifest last, so a manifest that parses always names complete files.
type Manifest struct {
	Version    int    `json:"version"`
	Generation uint64 `json:"generation"`
	Shards     int    `json:"shards"`
	Users      int    `json:"users"`
	Docs       int    `json:"docs"`
	// SectionOrder is the source file's section order, which Join
	// reproduces for byte-identity.
	SectionOrder []string  `json:"section_order"`
	Global       FileEntry `json:"global"`
	Ranges       []Range   `json:"ranges"`
}

// Owner returns the shard index owning user u, or -1 when u is outside
// every range.
func (man *Manifest) Owner(u int) int {
	for _, r := range man.Ranges {
		if u >= r.UserLo && u < r.UserHi {
			return r.Index
		}
	}
	return -1
}

// Info is the shard identity a serving snapshot carries and a replica
// advertises on /healthz: which contiguous user range of how many total
// users this process owns.
type Info struct {
	Index      int `json:"index"`
	Count      int `json:"count"`
	UserLo     int `json:"userLo"`
	UserHi     int `json:"userHi"`
	TotalUsers int `json:"totalUsers"`
}

// Owns reports whether user u falls inside the owned range.
func (in *Info) Owns(u int) bool { return u >= in.UserLo && u < in.UserHi }

// manifestMagic is the first line of a manifest file; the hex field is
// the IEEE CRC32 of the JSON payload that follows, so a torn write can
// never be adopted.
const manifestMagic = "CPDSHARDS1"

// EncodeManifest writes man as a CRC'd manifest document.
func EncodeManifest(w io.Writer, man *Manifest) error {
	payload, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return fmt.Errorf("shard: encoding manifest: %w", err)
	}
	if _, err := fmt.Fprintf(w, "%s %08x\n", manifestMagic, crc32.ChecksumIEEE(payload)); err != nil {
		return err
	}
	_, err = w.Write(payload)
	return err
}

// DecodeManifest parses and CRC-verifies a manifest document.
func DecodeManifest(r io.Reader) (*Manifest, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	nl := bytes.IndexByte(raw, '\n')
	if nl < 0 {
		return nil, fmt.Errorf("shard: manifest missing header line")
	}
	var crc uint32
	if _, err := fmt.Sscanf(string(raw[:nl]), manifestMagic+" %08x", &crc); err != nil {
		return nil, fmt.Errorf("shard: not a shard manifest")
	}
	payload := raw[nl+1:]
	if got := crc32.ChecksumIEEE(payload); got != crc {
		return nil, fmt.Errorf("shard: manifest checksum mismatch (%08x, stored %08x)", got, crc)
	}
	var man Manifest
	if err := json.Unmarshal(payload, &man); err != nil {
		return nil, fmt.Errorf("shard: decoding manifest: %w", err)
	}
	if err := man.validate(); err != nil {
		return nil, err
	}
	return &man, nil
}

// validate rejects manifests whose ranges do not tile [0,Users) and
// [0,Docs) contiguously — the invariant every consumer leans on.
func (man *Manifest) validate() error {
	if man.Shards <= 0 || len(man.Ranges) != man.Shards {
		return fmt.Errorf("shard: manifest claims %d shards with %d ranges", man.Shards, len(man.Ranges))
	}
	if man.Users < 0 || man.Docs < 0 {
		return fmt.Errorf("shard: manifest has negative dimensions")
	}
	wantU, wantD := 0, 0
	for i, r := range man.Ranges {
		if r.Index != i {
			return fmt.Errorf("shard: range %d carries index %d", i, r.Index)
		}
		if r.UserLo != wantU || r.UserHi < r.UserLo || r.DocLo != wantD || r.DocHi < r.DocLo {
			return fmt.Errorf("shard: range %d [%d,%d)/[%d,%d) does not tile the model", i, r.UserLo, r.UserHi, r.DocLo, r.DocHi)
		}
		wantU, wantD = r.UserHi, r.DocHi
	}
	if wantU != man.Users || wantD != man.Docs {
		return fmt.Errorf("shard: ranges cover %d users / %d docs of %d / %d", wantU, wantD, man.Users, man.Docs)
	}
	return nil
}

// WriteManifest atomically writes man to path (temp file + rename).
func WriteManifest(path string, man *Manifest) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".shards-*.json")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := EncodeManifest(tmp, man); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// ReadManifest reads and verifies the manifest at path.
func ReadManifest(path string) (*Manifest, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	man, err := DecodeManifest(f)
	if err != nil {
		return nil, fmt.Errorf("shard: %s: %w", path, err)
	}
	return man, nil
}

// fileEntry builds the manifest entry for a written group file from its
// section table alone (O(1) in the model size).
func fileEntry(path string) (FileEntry, error) {
	sums, size, err := store.FileSections(path)
	if err != nil {
		return FileEntry{}, err
	}
	return FileEntry{Name: filepath.Base(path), Size: size, Sections: sums}, nil
}

// VerifyAgainstManifest checks a local file against its manifest entry:
// size, section tags/sizes/CRCs as recorded, plus the full payload CRC
// walk (cached via the .verified sidecar). This is the fetcher's
// end-to-end check on every downloaded group file.
func VerifyAgainstManifest(path string, want FileEntry) error {
	sums, size, err := store.FileSections(path)
	if err != nil {
		return err
	}
	if size != want.Size {
		return fmt.Errorf("shard: %s is %d bytes, manifest says %d", path, size, want.Size)
	}
	if len(sums) != len(want.Sections) {
		return fmt.Errorf("shard: %s has %d sections, manifest says %d", path, len(sums), len(want.Sections))
	}
	for i, s := range sums {
		w := want.Sections[i]
		if s.Tag != w.Tag || s.Size != w.Size || s.CRC != w.CRC {
			return fmt.Errorf("shard: %s section %d is %q/%d/%08x, manifest says %q/%d/%08x",
				path, i, s.Tag, s.Size, s.CRC, w.Tag, w.Size, w.CRC)
		}
	}
	return store.VerifyV2FileCached(path)
}
