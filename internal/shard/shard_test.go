package shard

import (
	"bytes"
	"encoding/binary"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/socialgraph"
	"repro/internal/sparse"
	"repro/internal/store"
)

// testModel assembles a deterministic model directly from random parameter
// blocks, shaped like a small trained CPD model.
func testModel(users, C, Z, V int, seed uint64) *core.Model {
	r := rng.New(seed)
	m := &core.Model{
		Cfg: core.Config{
			NumCommunities: C, NumTopics: Z, Seed: seed,
		}.WithDefaults(),
		NumUsers:   users,
		NumWords:   V,
		NumBuckets: 4,
		Pi:         sparse.NewDense(users, C),
		Theta:      sparse.NewDense(C, Z),
		Phi:        sparse.NewDense(Z, V),
		Eta:        sparse.NewTensor3(C, C, Z),
		Nu:         make([]float64, socialgraph.FeatureDim),
		PopFreq:    sparse.NewDense(4, Z),
	}
	fill := func(xs []float64) {
		for i := range xs {
			xs[i] = r.Float64()
		}
	}
	fill(m.Pi.Data)
	fill(m.Theta.Data)
	fill(m.Phi.Data)
	fill(m.Eta.Data)
	fill(m.Nu)
	fill(m.PopFreq.Data)
	m.Pi.NormalizeRows()
	m.Theta.NormalizeRows()
	m.Phi.NormalizeRows()
	m.PopFreq.NormalizeRows()
	docs := 3 * users
	m.DocCommunity = make([]int32, docs)
	m.DocTopic = make([]int32, docs)
	m.DocBucket = make([]int, docs)
	for i := 0; i < docs; i++ {
		m.DocCommunity[i] = int32(r.Intn(C))
		m.DocTopic[i] = int32(r.Intn(Z))
		m.DocBucket[i] = r.Intn(4)
	}
	m.Rehydrate()
	return m
}

// splitJoinIdentical asserts that splitting src into shards and joining it
// back reproduces the source file byte-for-byte.
func splitJoinIdentical(t *testing.T, src string, shards int, docCounts []int) *Manifest {
	t.Helper()
	dir := t.TempDir()
	man, err := Split(src, dir, 7, SplitOptions{Shards: shards, DocCounts: docCounts})
	if err != nil {
		t.Fatalf("Split(%d shards): %v", shards, err)
	}
	if man.Shards != shards {
		t.Fatalf("manifest has %d shards, want %d", man.Shards, shards)
	}
	joined := filepath.Join(dir, "joined.v2.snap")
	if err := Join(dir, 7, joined); err != nil {
		t.Fatalf("Join: %v", err)
	}
	want, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(joined)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatalf("join of %d-shard split is not byte-identical (%d vs %d bytes)", shards, len(got), len(want))
	}
	return man
}

func TestSplitJoinGoldenFixture(t *testing.T) {
	src := filepath.Join("..", "store", "testdata", "golden-v2.snap")
	for _, shards := range []int{1, 2, 3, 5} {
		splitJoinIdentical(t, src, shards, nil)
	}
}

func TestSplitJoinGeneratedModels(t *testing.T) {
	cases := []struct {
		name   string
		users  int
		shards int
		attrs  int
	}{
		{"one-user", 1, 3, 0},
		{"users-eq-shards", 4, 4, 0},
		{"fewer-users-than-shards", 2, 5, 0},
		{"typical", 60, 3, 0},
		{"with-attrs", 37, 4, 5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := testModel(tc.users, 6, 4, 90, uint64(tc.users)*31+uint64(tc.shards))
			if tc.attrs > 0 {
				m.NumAttrs = tc.attrs
				m.Xi = sparse.NewDense(m.Cfg.NumCommunities, tc.attrs)
				for i := range m.Xi.Data {
					m.Xi.Data[i] = float64(i) / float64(len(m.Xi.Data))
				}
			}
			src := filepath.Join(t.TempDir(), "full.v2.snap")
			if err := store.SaveV2(src, m); err != nil {
				t.Fatal(err)
			}
			splitJoinIdentical(t, src, tc.shards, nil)
		})
	}
}

func TestSplitJoinSkewedDocCounts(t *testing.T) {
	m := testModel(24, 5, 3, 64, 99)
	// Power-law-ish skew: user 0 owns most of the documents.
	docCounts := make([]int, m.NumUsers)
	docs := len(m.DocCommunity)
	docCounts[0] = docs - (m.NumUsers - 1)
	for u := 1; u < m.NumUsers; u++ {
		docCounts[u] = 1
	}
	src := filepath.Join(t.TempDir(), "full.v2.snap")
	if err := store.SaveV2(src, m); err != nil {
		t.Fatal(err)
	}
	man := splitJoinIdentical(t, src, 3, docCounts)
	// The heavy user forces nearly everything into shard 0; later shards
	// still tile the ranges exactly.
	if man.Ranges[0].UserHi < 1 {
		t.Fatalf("heavy user not in shard 0: %+v", man.Ranges[0])
	}
}

func TestPlanRangesProperties(t *testing.T) {
	check := func(t *testing.T, users, docs, shards int, opts PlanOptions) []Range {
		t.Helper()
		ranges, err := PlanRanges(users, docs, shards, opts)
		if err != nil {
			t.Fatalf("PlanRanges(%d,%d,%d): %v", users, docs, shards, err)
		}
		if len(ranges) != shards {
			t.Fatalf("got %d ranges, want %d", len(ranges), shards)
		}
		wantU, wantD := 0, 0
		for i, r := range ranges {
			if r.Index != i || r.UserLo != wantU || r.DocLo != wantD || r.UserHi < r.UserLo || r.DocHi < r.DocLo {
				t.Fatalf("range %d does not tile: %+v", i, r)
			}
			wantU, wantD = r.UserHi, r.DocHi
		}
		if wantU != users || wantD != docs {
			t.Fatalf("ranges cover %d/%d users, %d/%d docs", wantU, users, wantD, docs)
		}
		return ranges
	}

	t.Run("one-user", func(t *testing.T) {
		ranges := check(t, 1, 3, 4, PlanOptions{Cols: 8})
		if ranges[0].UserHi != 1 {
			t.Fatalf("single user should land in shard 0: %+v", ranges)
		}
	})
	t.Run("users-eq-shards", func(t *testing.T) {
		ranges := check(t, 5, 15, 5, PlanOptions{Cols: 8})
		for i, r := range ranges {
			if r.UserHi-r.UserLo != 1 {
				t.Fatalf("shard %d holds %d users, want exactly 1", i, r.UserHi-r.UserLo)
			}
		}
	})
	t.Run("skewed-weights", func(t *testing.T) {
		users := 100
		counts := make([]int, users)
		counts[0] = 1000
		docs := 1000 + users - 1
		for u := 1; u < users; u++ {
			counts[u] = 1
		}
		ranges := check(t, users, docs, 4, PlanOptions{Cols: 8, DocCounts: counts})
		if ranges[0].UserHi != 1 {
			t.Fatalf("heavy user should fill shard 0 alone: %+v", ranges[0])
		}
		if ranges[0].DocHi != 1000 {
			t.Fatalf("shard 0 doc window should hold the heavy user's documents: %+v", ranges[0])
		}
	})
	t.Run("boundary-ownership", func(t *testing.T) {
		ranges := check(t, 97, 3*97, 7, PlanOptions{Cols: 16})
		man := &Manifest{Shards: 7, Users: 97, Docs: 3 * 97, Ranges: ranges}
		for u := 0; u < 97; u++ {
			owners := 0
			for _, r := range ranges {
				if u >= r.UserLo && u < r.UserHi {
					owners++
				}
			}
			if owners != 1 {
				t.Fatalf("user %d owned by %d ranges", u, owners)
			}
			if k := man.Owner(u); u < ranges[k].UserLo || u >= ranges[k].UserHi {
				t.Fatalf("Owner(%d)=%d disagrees with the ranges", u, k)
			}
		}
		if man.Owner(-1) != -1 || man.Owner(97) != -1 {
			t.Fatalf("out-of-range users must have no owner")
		}
	})
	t.Run("zero-shards", func(t *testing.T) {
		if _, err := PlanRanges(10, 30, 0, PlanOptions{}); err == nil {
			t.Fatal("want error for zero shards")
		}
	})
}

func TestManifestCorruptionDetected(t *testing.T) {
	m := testModel(20, 4, 3, 50, 5)
	src := filepath.Join(t.TempDir(), "full.v2.snap")
	if err := store.SaveV2(src, m); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	man, err := Split(src, dir, 3, SplitOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}

	manPath := ManifestPath(dir, 3)
	raw, err := os.ReadFile(manPath)
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), raw...)
	bad[len(bad)/2] ^= 0x40
	if err := os.WriteFile(manPath, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifest(manPath); err == nil {
		t.Fatal("corrupted manifest must not decode")
	}
	if err := os.WriteFile(manPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	// A flipped byte in a shard payload fails manifest verification.
	shardPath := ShardPath(dir, 3, 1)
	sraw, err := os.ReadFile(shardPath)
	if err != nil {
		t.Fatal(err)
	}
	sraw[len(sraw)-1] ^= 0x01
	if err := os.WriteFile(shardPath, sraw, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := VerifyAgainstManifest(shardPath, man.Ranges[1].File); err == nil {
		t.Fatal("corrupted shard file must fail verification")
	}
}

func TestOpenGroup(t *testing.T) {
	m := testModel(50, 6, 4, 80, 23)
	src := filepath.Join(t.TempDir(), "full.v2.snap")
	if err := store.SaveV2(src, m); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	man, err := Split(src, dir, 11, SplitOptions{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < man.Shards; k++ {
		g, err := OpenGroup(dir, man, k)
		if err != nil {
			t.Fatalf("OpenGroup(%d): %v", k, err)
		}
		r := man.Ranges[k]
		if g.Info.UserLo != r.UserLo || g.Info.UserHi != r.UserHi || g.Info.TotalUsers != 50 || g.Info.Count != 3 {
			t.Fatalf("shard %d info %+v disagrees with range %+v", k, g.Info, r)
		}
		if g.MappedBytes <= 0 {
			t.Fatalf("shard %d reports no mapped bytes", k)
		}
		lm := g.Model
		if lm.NumUsers != r.UserHi-r.UserLo {
			t.Fatalf("shard %d model holds %d users, want %d", k, lm.NumUsers, r.UserHi-r.UserLo)
		}
		// Local Π rows must be the full model's rows for the owned range.
		for u := r.UserLo; u < r.UserHi; u++ {
			want := m.Pi.Row(u)
			got := lm.Pi.Row(u - r.UserLo)
			for c := range want {
				if want[c] != got[c] {
					t.Fatalf("shard %d user %d Π differs at column %d", k, u, c)
				}
			}
		}
		// Global sections must be the full model's, bit-for-bit.
		if !bytes.Equal(float64Bytes(lm.Theta.Data), float64Bytes(m.Theta.Data)) ||
			!bytes.Equal(float64Bytes(lm.Phi.Data), float64Bytes(m.Phi.Data)) ||
			!bytes.Equal(float64Bytes(lm.Eta.Data), float64Bytes(m.Eta.Data)) {
			t.Fatalf("shard %d global sections differ from the full model", k)
		}
		for u := r.UserLo; u < r.UserHi; u++ {
			if !g.Info.Owns(u) {
				t.Fatalf("shard %d should own user %d", k, u)
			}
		}
		if k > 0 && g.Info.Owns(0) {
			t.Fatalf("shard %d must not own user 0", k)
		}
		if err := g.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
	}
	if _, err := OpenGroup(dir, man, 3); err == nil {
		t.Fatal("out-of-range shard index must fail")
	}
}

func float64Bytes(xs []float64) []byte {
	buf := make([]byte, 8*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(x))
	}
	return buf
}

func TestPublisherMatchesFullSnapshot(t *testing.T) {
	dir := t.TempDir()
	pub, err := NewPublisher(dir, 3)
	if err != nil {
		t.Fatal(err)
	}

	m1 := testModel(45, 6, 4, 70, 41)
	man1, err := pub.Publish(1, m1, Delta{Full: true})
	if err != nil {
		t.Fatalf("publish gen 1: %v", err)
	}
	assertJoinMatches(t, dir, 1, m1)

	// Incremental publish: fresh Π array (the stream updater's invariant),
	// two changed rows, aliased document arrays.
	m2 := clonePi(m1)
	m2.Pi.Row(3)[0] += 0.5
	m2.Pi.Row(44)[1] += 0.25
	man2, err := pub.Publish(2, m2, Delta{ChangedUsers: []int32{3, 44}})
	if err != nil {
		t.Fatalf("publish gen 2: %v", err)
	}
	assertJoinMatches(t, dir, 2, m2)
	// User 3 lives in shard 0 and user 44 in the last shard; the middle
	// shard and the global file must be hard links to generation 1.
	if owner := man2.Owner(3); owner != 0 {
		t.Fatalf("user 3 owned by shard %d, want 0", owner)
	}
	if owner := man2.Owner(44); owner != man2.Shards-1 {
		t.Fatalf("user 44 owned by shard %d, want last", owner)
	}
	assertSameFile(t, ShardPath(dir, 1, 1), ShardPath(dir, 2, 1))
	assertSameFile(t, GlobalPath(dir, 1), GlobalPath(dir, 2))
	if man2.Ranges[1].File.Sections[0].CRC != man1.Ranges[1].File.Sections[0].CRC {
		t.Fatalf("linked shard must reuse the previous file entry")
	}

	// Growth publish: appended users and documents (fresh doc arrays).
	m3 := growModel(m2, 8, 20, 77)
	if _, err := pub.Publish(3, m3, Delta{ChangedUsers: []int32{10}}); err != nil {
		t.Fatalf("publish gen 3: %v", err)
	}
	assertJoinMatches(t, dir, 3, m3)

	// Every generation's files verify against their manifests.
	for gen := uint64(1); gen <= 3; gen++ {
		man, err := ReadManifest(ManifestPath(dir, gen))
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifyAgainstManifest(GlobalPath(dir, gen), man.Global); err != nil {
			t.Fatalf("gen %d global: %v", gen, err)
		}
		for i := range man.Ranges {
			if err := VerifyAgainstManifest(ShardPath(dir, gen, i), man.Ranges[i].File); err != nil {
				t.Fatalf("gen %d shard %d: %v", gen, i, err)
			}
		}
	}

	// Prune removes generations at or below the cut, leaving newer ones.
	pub.Prune(2)
	if _, err := ReadManifest(ManifestPath(dir, 1)); err == nil {
		t.Fatal("generation 1 should be pruned")
	}
	if _, err := os.Stat(GlobalPath(dir, 2)); !os.IsNotExist(err) {
		t.Fatal("generation 2 files should be pruned")
	}
	if _, err := ReadManifest(ManifestPath(dir, 3)); err != nil {
		t.Fatalf("generation 3 should survive the prune: %v", err)
	}
}

// clonePi mirrors the stream updater's incremental publish: a brand-new Π
// backing array, every other block aliased.
func clonePi(m *core.Model) *core.Model {
	out := *m
	out.Pi = sparse.NewDense(m.Pi.Rows, m.Pi.Cols)
	copy(out.Pi.Data, m.Pi.Data)
	out.Rehydrate()
	return &out
}

// growModel appends users and documents the way fold-in does: fresh Π and
// document arrays with the old prefix copied in.
func growModel(m *core.Model, moreUsers, moreDocs int, seed uint64) *core.Model {
	r := rng.New(seed)
	out := *m
	out.NumUsers = m.NumUsers + moreUsers
	out.Pi = sparse.NewDense(out.NumUsers, m.Pi.Cols)
	copy(out.Pi.Data, m.Pi.Data)
	for i := len(m.Pi.Data); i < len(out.Pi.Data); i++ {
		out.Pi.Data[i] = r.Float64()
	}
	docs := len(m.DocCommunity) + moreDocs
	out.DocCommunity = make([]int32, docs)
	out.DocTopic = make([]int32, docs)
	out.DocBucket = make([]int, docs)
	copy(out.DocCommunity, m.DocCommunity)
	copy(out.DocTopic, m.DocTopic)
	copy(out.DocBucket, m.DocBucket)
	for i := len(m.DocCommunity); i < docs; i++ {
		out.DocCommunity[i] = int32(r.Intn(m.Cfg.NumCommunities))
		out.DocTopic[i] = int32(r.Intn(m.Cfg.NumTopics))
		out.DocBucket[i] = r.Intn(m.NumBuckets)
	}
	out.Rehydrate()
	return &out
}

// assertJoinMatches joins the published generation and compares it against
// a fresh full SaveV2 of the model.
func assertJoinMatches(t *testing.T, dir string, gen uint64, m *core.Model) {
	t.Helper()
	joined := filepath.Join(t.TempDir(), "joined.v2.snap")
	if err := Join(dir, gen, joined); err != nil {
		t.Fatalf("join gen %d: %v", gen, err)
	}
	full := filepath.Join(t.TempDir(), "full.v2.snap")
	if err := store.SaveV2(full, m); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(joined)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatalf("generation %d join differs from the full snapshot (%d vs %d bytes)", gen, len(got), len(want))
	}
}

func assertSameFile(t *testing.T, a, b string) {
	t.Helper()
	fa, err := os.Stat(a)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := os.Stat(b)
	if err != nil {
		t.Fatal(err)
	}
	if !os.SameFile(fa, fb) {
		t.Fatalf("%s and %s should be hard links of the same file", a, b)
	}
}

func TestScanManifests(t *testing.T) {
	dir := t.TempDir()
	m := testModel(12, 4, 3, 40, 3)
	src := filepath.Join(t.TempDir(), "full.v2.snap")
	if err := store.SaveV2(src, m); err != nil {
		t.Fatal(err)
	}
	for _, gen := range []uint64{5, 2, 9} {
		if _, err := Split(src, dir, gen, SplitOptions{Shards: 2}); err != nil {
			t.Fatal(err)
		}
	}
	gens, err := ScanManifests(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != 3 || gens[0] != 2 || gens[1] != 5 || gens[2] != 9 {
		t.Fatalf("ScanManifests = %v, want [2 5 9]", gens)
	}
}

// FuzzSplitJoin drives split→join byte-identity over fuzz-chosen shapes.
func FuzzSplitJoin(f *testing.F) {
	f.Add(uint16(10), uint8(2), uint64(1))
	f.Add(uint16(1), uint8(4), uint64(2))
	f.Add(uint16(33), uint8(7), uint64(3))
	f.Fuzz(func(t *testing.T, users uint16, shards uint8, seed uint64) {
		u := int(users%200) + 1
		s := int(shards%8) + 1
		m := testModel(u, 4, 3, 30, seed)
		src := filepath.Join(t.TempDir(), "full.v2.snap")
		if err := store.SaveV2(src, m); err != nil {
			t.Fatal(err)
		}
		splitJoinIdentical(t, src, s, nil)
	})
}
