package shard

// OpenGroup: the serving-side open path. A replica that owns shard k of
// a sharded generation maps exactly two files — the global sections and
// its own shard — and assembles a partial model over them: local Π rows
// and doc windows, full Θ/Φ/η/ν/POPF/XI. Membership and fold-in work for
// owned users; rank and diffusion scoring are exact because they only
// read the global sections (plus membership rows the caller supplies).

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/store"
)

// Group is an opened shard group: a servable partial model plus the two
// mappings backing it. The model must not be used after Close.
type Group struct {
	Model *core.Model
	Info  Info

	// MappedBytes is the total mapping size (global + shard file) — the
	// per-replica memory win the format exists for.
	MappedBytes int64
	// Mapped reports whether both files are real kernel mappings (false
	// on the aligned-copy fallback platforms).
	Mapped bool

	global, shard *store.RawFile
}

// OpenGroup maps generation files for shard index of the manifest under
// dir and assembles the partial model. The caller owns the group and
// must Close it when the last query drains.
func OpenGroup(dir string, man *Manifest, index int) (*Group, error) {
	if index < 0 || index >= man.Shards {
		return nil, fmt.Errorf("shard: index %d out of range (manifest has %d shards)", index, man.Shards)
	}
	r := man.Ranges[index]
	global, err := store.OpenRawFile(GlobalPath(dir, man.Generation))
	if err != nil {
		return nil, err
	}
	sf, err := store.OpenRawFile(ShardPath(dir, man.Generation, index))
	if err != nil {
		global.Close()
		return nil, err
	}
	g := &Group{
		Info: Info{
			Index:      index,
			Count:      man.Shards,
			UserLo:     r.UserLo,
			UserHi:     r.UserHi,
			TotalUsers: man.Users,
		},
		MappedBytes: global.SizeBytes() + sf.SizeBytes(),
		Mapped:      global.Mapped() && sf.Mapped(),
		global:      global,
		shard:       sf,
	}
	// Merge: user-indexed sections (and the patched DIM + CFG) from the
	// shard file, everything else from the global file.
	shardTags := map[string]bool{
		store.TagConfig: true, store.TagDims: true,
		store.TagPi: true, store.TagDocC: true, store.TagDocZ: true, store.TagDocB: true,
	}
	var secs []store.RawSection
	for _, s := range sf.Sections() {
		if shardTags[s.Tag] {
			secs = append(secs, s)
		}
	}
	for _, s := range global.Sections() {
		if !shardTags[s.Tag] {
			secs = append(secs, s)
		}
	}
	m, err := store.AssembleRawModel(secs)
	if err != nil {
		g.Close()
		return nil, fmt.Errorf("shard: assembling shard %d of generation %d: %w", index, man.Generation, err)
	}
	if m.NumUsers != r.UserHi-r.UserLo {
		g.Close()
		return nil, fmt.Errorf("shard: shard %d holds %d users, manifest says %d", index, m.NumUsers, r.UserHi-r.UserLo)
	}
	g.Model = m
	return g, nil
}

// Close releases both mappings. Idempotent.
func (g *Group) Close() error {
	err := g.global.Close()
	if err2 := g.shard.Close(); err == nil {
		err = err2
	}
	return err
}
