package shard

// Split and Join: the offline (and test-harness) halves of the format.
// Both operate at the raw-section level (store.RawFile) — payload bytes
// are sliced and concatenated, never decoded — so Join(Split(f)) is
// byte-identical to f for any v2 file written by this repo's encoder.

import (
	"encoding/binary"
	"fmt"
	"os"

	"repro/internal/store"
)

// userTags are the user-indexed sections that move to shard files;
// everything else is global.
var userTags = map[string]bool{
	store.TagPi:   true,
	store.TagDocC: true,
	store.TagDocZ: true,
	store.TagDocB: true,
}

const shapeLen = 64 // the v2 numeric payload shape header

// sectionDims reads the leading shape words of a numeric payload.
func sectionDims(payload []byte, n int) ([]uint64, error) {
	if len(payload) < shapeLen {
		return nil, fmt.Errorf("shard: payload shorter than the shape header")
	}
	dims := make([]uint64, n)
	for i := range dims {
		dims[i] = binary.LittleEndian.Uint64(payload[8*i:])
	}
	return dims, nil
}

// shapedSlice builds a numeric payload: a fresh 64-byte shape header over
// a copied body window.
func shapedSlice(dims []uint64, body []byte) []byte {
	out := make([]byte, shapeLen+len(body))
	for i, d := range dims {
		binary.LittleEndian.PutUint64(out[8*i:], d)
	}
	copy(out[shapeLen:], body)
	return out
}

// SplitOptions configures Split.
type SplitOptions struct {
	// Shards is the shard count (required, ≥ 1).
	Shards int
	// DocCounts optionally weights the boundary pass (see PlanOptions).
	DocCounts []int
	// Ranges pins the boundaries instead of planning them (the
	// publisher's stable-boundary path). UserLo/UserHi/DocLo/DocHi are
	// honored; File entries are ignored.
	Ranges []Range
}

// Split writes the v2 snapshot at srcPath into dir as sharded generation
// gen — the global file, Shards shard files, then the manifest as the
// commit point — and returns the manifest.
func Split(srcPath, dir string, gen uint64, opts SplitOptions) (*Manifest, error) {
	if opts.Ranges == nil && opts.Shards <= 0 {
		return nil, fmt.Errorf("shard: Split needs a shard count or pinned ranges")
	}
	rf, err := store.OpenRawFile(srcPath)
	if err != nil {
		return nil, err
	}
	defer rf.Close()

	secs := rf.Sections()
	order := make([]string, len(secs))
	for i, s := range secs {
		order[i] = s.Tag
	}
	piPayload, ok := rf.Section(store.TagPi)
	if !ok {
		return nil, fmt.Errorf("shard: %s has no Π section", srcPath)
	}
	piDims, err := sectionDims(piPayload, 2)
	if err != nil {
		return nil, err
	}
	users, cols := int(piDims[0]), int(piDims[1])
	docPayloads := map[string][]byte{}
	docs := -1
	for _, tag := range []string{store.TagDocC, store.TagDocZ, store.TagDocB} {
		p, ok := rf.Section(tag)
		if !ok {
			return nil, fmt.Errorf("shard: %s has no %q section", srcPath, tag)
		}
		dims, err := sectionDims(p, 1)
		if err != nil {
			return nil, err
		}
		if docs >= 0 && int(dims[0]) != docs {
			return nil, fmt.Errorf("shard: document arrays disagree on length (%d vs %d)", dims[0], docs)
		}
		docs = int(dims[0])
		docPayloads[tag] = p
	}
	dimPayload, ok := rf.Section(store.TagDims)
	if !ok {
		return nil, fmt.Errorf("shard: %s has no dimension section", srcPath)
	}
	if len(dimPayload) != 32 {
		return nil, fmt.Errorf("shard: dimension section has length %d, want 32", len(dimPayload))
	}
	if dimUsers := int(binary.LittleEndian.Uint64(dimPayload)); dimUsers != users {
		return nil, fmt.Errorf("shard: DIM claims %d users but Π has %d rows", dimUsers, users)
	}

	ranges := opts.Ranges
	if ranges == nil {
		ranges, err = PlanRanges(users, docs, opts.Shards, PlanOptions{Cols: cols, DocCounts: opts.DocCounts})
		if err != nil {
			return nil, err
		}
	} else if err := checkRanges(ranges, users, docs); err != nil {
		return nil, err
	}

	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	man := &Manifest{
		Version:      1,
		Generation:   gen,
		Shards:       len(ranges),
		Users:        users,
		Docs:         docs,
		SectionOrder: order,
		Ranges:       make([]Range, len(ranges)),
	}

	// Global file: every non-user section verbatim, in source order.
	var globalSecs []store.RawSection
	for _, s := range secs {
		if !userTags[s.Tag] {
			globalSecs = append(globalSecs, s)
		}
	}
	globalPath := GlobalPath(dir, gen)
	if err := store.WriteRawFile(globalPath, globalSecs); err != nil {
		return nil, err
	}
	if man.Global, err = fileEntry(globalPath); err != nil {
		return nil, err
	}

	cfgPayload, _ := rf.Section(store.TagConfig)
	piBody := piPayload[shapeLen:]
	for i, r := range ranges {
		lo, hi, dlo, dhi := r.UserLo, r.UserHi, r.DocLo, r.DocHi
		localDim := make([]byte, 32)
		copy(localDim, dimPayload)
		binary.LittleEndian.PutUint64(localDim, uint64(hi-lo))
		shardSecs := make([]store.RawSection, 0, 6)
		if cfgPayload != nil {
			shardSecs = append(shardSecs, store.RawSection{Tag: store.TagConfig, Payload: cfgPayload})
		}
		shardSecs = append(shardSecs,
			store.RawSection{Tag: store.TagDims, Payload: localDim},
			store.RawSection{Tag: store.TagPi, Payload: shapedSlice(
				[]uint64{uint64(hi - lo), uint64(cols)}, piBody[8*lo*cols:8*hi*cols])},
			store.RawSection{Tag: store.TagDocC, Payload: shapedSlice(
				[]uint64{uint64(dhi - dlo)}, docPayloads[store.TagDocC][shapeLen:][4*dlo:4*dhi])},
			store.RawSection{Tag: store.TagDocZ, Payload: shapedSlice(
				[]uint64{uint64(dhi - dlo)}, docPayloads[store.TagDocZ][shapeLen:][4*dlo:4*dhi])},
			store.RawSection{Tag: store.TagDocB, Payload: shapedSlice(
				[]uint64{uint64(dhi - dlo)}, docPayloads[store.TagDocB][shapeLen:][8*dlo:8*dhi])},
		)
		path := ShardPath(dir, gen, i)
		if err := store.WriteRawFile(path, shardSecs); err != nil {
			return nil, err
		}
		ent, err := fileEntry(path)
		if err != nil {
			return nil, err
		}
		man.Ranges[i] = Range{Index: i, UserLo: lo, UserHi: hi, DocLo: dlo, DocHi: dhi, File: ent}
	}
	if err := WriteManifest(ManifestPath(dir, gen), man); err != nil {
		return nil, err
	}
	return man, nil
}

// checkRanges validates pinned ranges against the model's dimensions.
func checkRanges(ranges []Range, users, docs int) error {
	wantU, wantD := 0, 0
	for i, r := range ranges {
		if r.UserLo != wantU || r.UserHi < r.UserLo || r.DocLo != wantD || r.DocHi < r.DocLo {
			return fmt.Errorf("shard: pinned range %d [%d,%d)/[%d,%d) does not tile the model", i, r.UserLo, r.UserHi, r.DocLo, r.DocHi)
		}
		wantU, wantD = r.UserHi, r.DocHi
	}
	if wantU != users || wantD != docs {
		return fmt.Errorf("shard: pinned ranges cover %d users / %d docs of %d / %d", wantU, wantD, users, docs)
	}
	return nil
}

// Join reassembles sharded generation gen from dir into a single v2
// snapshot at dstPath, byte-identical to the file the group was split
// from (or, for a published group, to the full snapshot published
// alongside it).
func Join(dir string, gen uint64, dstPath string) error {
	man, err := ReadManifest(ManifestPath(dir, gen))
	if err != nil {
		return err
	}
	global, err := store.OpenRawFile(GlobalPath(dir, gen))
	if err != nil {
		return err
	}
	defer global.Close()
	shards := make([]*store.RawFile, man.Shards)
	defer func() {
		for _, sf := range shards {
			if sf != nil {
				sf.Close()
			}
		}
	}()
	for i := range shards {
		if shards[i], err = store.OpenRawFile(ShardPath(dir, gen, i)); err != nil {
			return err
		}
	}

	// concat rebuilds one user-indexed payload: total-length shape header
	// plus every shard's body window in range order.
	concat := func(tag string, dims []uint64, elem int) (store.RawSection, error) {
		var total int
		bodies := make([][]byte, man.Shards)
		for i, sf := range shards {
			p, ok := sf.Section(tag)
			if !ok {
				return store.RawSection{}, fmt.Errorf("shard: shard %d of generation %d has no %q section", i, gen, tag)
			}
			if len(p) < shapeLen {
				return store.RawSection{}, fmt.Errorf("shard: shard %d section %q shorter than the shape header", i, tag)
			}
			bodies[i] = p[shapeLen:]
			total += len(bodies[i])
		}
		out := make([]byte, shapeLen+total)
		for i, d := range dims {
			binary.LittleEndian.PutUint64(out[8*i:], d)
		}
		off := shapeLen
		for _, b := range bodies {
			off += copy(out[off:], b)
		}
		want := shapeLen + elem*elemCount(dims)
		if len(out) != want {
			return store.RawSection{}, fmt.Errorf("shard: section %q reassembles to %d bytes, want %d", tag, len(out), want)
		}
		return store.RawSection{Tag: tag, Payload: out}, nil
	}

	var cols uint64
	if p, ok := shards[0].Section(store.TagPi); ok && len(p) >= shapeLen {
		d, err := sectionDims(p, 2)
		if err != nil {
			return err
		}
		cols = d[1]
	} else {
		return fmt.Errorf("shard: shard 0 of generation %d has no Π section", gen)
	}

	out := make([]store.RawSection, 0, len(man.SectionOrder))
	for _, tag := range man.SectionOrder {
		var sec store.RawSection
		switch tag {
		case store.TagPi:
			s, err := concat(tag, []uint64{uint64(man.Users), cols}, 8)
			if err != nil {
				return err
			}
			sec = s
		case store.TagDocC, store.TagDocZ:
			s, err := concat(tag, []uint64{uint64(man.Docs)}, 4)
			if err != nil {
				return err
			}
			sec = s
		case store.TagDocB:
			s, err := concat(tag, []uint64{uint64(man.Docs)}, 8)
			if err != nil {
				return err
			}
			sec = s
		default:
			p, ok := global.Section(tag)
			if !ok {
				return fmt.Errorf("shard: global file of generation %d has no %q section", gen, tag)
			}
			sec = store.RawSection{Tag: tag, Payload: p}
		}
		out = append(out, sec)
	}
	return store.WriteRawFile(dstPath, out)
}

// elemCount multiplies shape words into an element count.
func elemCount(dims []uint64) int {
	n := 1
	for _, d := range dims {
		n *= int(d)
	}
	return n
}
