package shard

// Range planning: choosing the user boundaries of a shard group.
//
// Per-user shard weight is the bytes a user pins in their shard file:
// one Π row (8·C) plus 16 bytes per document (DocC+DocZ int32, DocB
// int64). Real corpora follow power laws — a few users own most of the
// document mass — so boundaries come from a prefix-sum walk over the
// weights rather than equal-width division: boundary k is the first user
// at which the cumulative weight reaches k/N of the total.

import "fmt"

// PlanOptions tunes PlanRanges.
type PlanOptions struct {
	// Cols is the Π row width (communities); it weights each user's row
	// bytes. 0 means rows are weightless and only DocCounts matter (or
	// ranges degenerate to equal width).
	Cols int
	// DocCounts[u] is the number of documents owned by user u; when set
	// (length must equal users, sum must equal docs), it both weights
	// the boundary walk and pins each shard's doc window to exactly its
	// users' documents. When nil, users weigh their row only and doc
	// windows are apportioned pro rata to the user split.
	DocCounts []int
}

// PlanRanges partitions users [0,users) and docs [0,docs) into shards
// contiguous ranges, weight-balanced per the options. Shards may be
// empty when users < shards; every user and doc lands in exactly one
// range.
func PlanRanges(users, docs, shards int, opts PlanOptions) ([]Range, error) {
	if shards <= 0 {
		return nil, fmt.Errorf("shard: shard count %d must be positive", shards)
	}
	if users < 0 || docs < 0 {
		return nil, fmt.Errorf("shard: negative dimensions (%d users, %d docs)", users, docs)
	}
	if opts.DocCounts != nil {
		if len(opts.DocCounts) != users {
			return nil, fmt.Errorf("shard: %d doc counts for %d users", len(opts.DocCounts), users)
		}
		sum := 0
		for u, n := range opts.DocCounts {
			if n < 0 {
				return nil, fmt.Errorf("shard: user %d has negative doc count %d", u, n)
			}
			sum += n
		}
		if sum != docs {
			return nil, fmt.Errorf("shard: doc counts sum to %d, want %d", sum, docs)
		}
	}
	rowW := uint64(8 * opts.Cols)
	weight := func(u int) uint64 {
		w := rowW
		if opts.DocCounts != nil {
			w += 16 * uint64(opts.DocCounts[u])
		}
		if w == 0 {
			w = 1 // degenerate options: fall back to equal-width
		}
		return w
	}
	var total uint64
	for u := 0; u < users; u++ {
		total += weight(u)
	}
	// Boundary k is the first user index at which the cumulative weight
	// reaches k·total/shards.
	userBound := make([]int, shards+1)
	userBound[shards] = users
	var prefix uint64
	k := 1
	for u := 0; u < users && k < shards; u++ {
		prefix += weight(u)
		for k < shards && prefix*uint64(shards) >= total*uint64(k) {
			userBound[k] = u + 1
			k++
		}
	}
	for ; k < shards; k++ {
		userBound[k] = users
	}
	// Doc boundaries follow the user split: exact per-user document
	// prefix sums when counts are known, pro-rata otherwise.
	docBound := make([]int, shards+1)
	docBound[shards] = docs
	if opts.DocCounts != nil {
		prefix := 0
		u := 0
		for k := 1; k < shards; k++ {
			for ; u < userBound[k]; u++ {
				prefix += opts.DocCounts[u]
			}
			docBound[k] = prefix
		}
	} else {
		for k := 1; k < shards; k++ {
			if users > 0 {
				docBound[k] = int(uint64(docs) * uint64(userBound[k]) / uint64(users))
			}
		}
	}
	ranges := make([]Range, shards)
	for i := range ranges {
		ranges[i] = Range{
			Index:  i,
			UserLo: userBound[i],
			UserHi: userBound[i+1],
			DocLo:  docBound[i],
			DocHi:  docBound[i+1],
		}
	}
	return ranges, nil
}
