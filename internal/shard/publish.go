package shard

// Publisher: the streaming write path's sharded emitter. Each publish of
// the stream updater can additionally emit a sharded generation; the
// publisher keeps the work O(changed) at the file level:
//
//   - boundaries are planned once and then pinned, with only the LAST
//     shard's user/doc upper bound growing as the stream appends users
//     and documents — so shards 0..N−2 keep byte-stable ranges across
//     generations and routing stays valid through a rollout;
//   - a shard whose range holds no re-folded user (and whose doc window
//     is unchanged) is HARD-LINKED to the previous generation's file —
//     zero encode, zero extra disk;
//   - dirty shards and the global file are written through
//     store.SaveV2SubsetReusing, so sections whose backing arrays did
//     not move (doc windows on friends-only publishes, Θ/Φ/η/ν always
//     outside Gibbs passes) splice byte-for-byte.
//
// The emitted group is exactly what Split would produce from the full
// snapshot of the same model with the same pinned ranges — Join on a
// published group reproduces the full file bit-for-bit.

import (
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/sparse"
	"repro/internal/store"
)

var (
	shardTagsList  = []string{store.TagConfig, store.TagDims, store.TagPi, store.TagDocC, store.TagDocZ, store.TagDocB}
	globalTagsList = []string{store.TagConfig, store.TagDims, store.TagTheta, store.TagPhi, store.TagEta, store.TagNu, store.TagPop, store.TagXi}
)

// Delta tells Publish what moved since the previous published model.
type Delta struct {
	// Full marks a from-scratch publish (first publish, delta-Gibbs,
	// operator-forced rebuild): nothing may be reused.
	Full bool
	// ChangedUsers lists the user rows (global ids) whose Π bytes may
	// differ from the previous published model; appended users are
	// implied by the model's larger NumUsers and need not be listed.
	ChangedUsers []int32
}

// Publisher emits sharded generations for a stream of published models.
// Not safe for concurrent use; the stream updater calls it under its
// publish lock.
type Publisher struct {
	dir    string
	shards int

	ranges  []Range // pinned boundaries (File entries unused)
	prevGen uint64
	prevMan *Manifest

	// Identity of the previous published model's arrays, for doc-window
	// and boundary-stability reasoning.
	prevUsers int
	prevDocC  []int32
	prevDocZ  []int32
	prevDocB  []int

	// Per-file section manifests for SaveV2SubsetReusing.
	shardMans []*store.SectionManifest
	globalMan *store.SectionManifest

	// LinkedFiles / WrittenFiles count shard files hard-linked vs
	// re-encoded across the publisher's lifetime (observability).
	LinkedFiles, WrittenFiles uint64
}

// NewPublisher builds a sharded-generation emitter writing into dir.
func NewPublisher(dir string, shards int) (*Publisher, error) {
	if shards <= 0 {
		return nil, fmt.Errorf("shard: shard count %d must be positive", shards)
	}
	return &Publisher{dir: dir, shards: shards, shardMans: make([]*store.SectionManifest, shards)}, nil
}

// sameInt32s / sameInts report slice identity (same backing array, same
// length) — the doc-window reuse precondition.
func sameInt32s(a, b []int32) bool {
	return len(a) == len(b) && (len(a) == 0 || &a[0] == &b[0])
}
func sameInts(a, b []int) bool {
	return len(a) == len(b) && (len(a) == 0 || &a[0] == &b[0])
}

// Publish emits generation gen of model m as a shard group and returns
// its manifest.
func (p *Publisher) Publish(gen uint64, m *core.Model, d Delta) (*Manifest, error) {
	users, docs := m.NumUsers, len(m.DocCommunity)
	C := m.Cfg.NumCommunities

	full := d.Full
	if p.ranges == nil || users < p.prevUsers || users < p.ranges[p.shards-1].UserLo || docs < p.ranges[p.shards-1].DocLo {
		// First publish, or the model shrank out from under the pinned
		// boundaries (an external reset): replan and rebuild everything.
		ranges, err := PlanRanges(users, docs, p.shards, PlanOptions{Cols: C})
		if err != nil {
			return nil, err
		}
		p.ranges = ranges
		full = true
	} else {
		// Pinned boundaries: only the last shard absorbs appended users
		// and documents, so every other shard's byte range is stable.
		p.ranges[p.shards-1].UserHi = users
		p.ranges[p.shards-1].DocHi = docs
	}

	// Doc windows are reusable only when the doc arrays are the previous
	// model's very own backing arrays (the friends-only publish regime).
	docsSame := !full &&
		sameInt32s(m.DocCommunity, p.prevDocC) &&
		sameInt32s(m.DocTopic, p.prevDocZ) &&
		sameInts(m.DocBucket, p.prevDocB)

	changed := make(map[int]bool, p.shards) // shard index -> Π rows moved
	if !full {
		for _, u := range d.ChangedUsers {
			for i, r := range p.ranges {
				if int(u) >= r.UserLo && int(u) < r.UserHi {
					changed[i] = true
					break
				}
			}
		}
		if users > p.prevUsers {
			changed[p.shards-1] = true // appended rows land in the last range
		}
	}

	if err := os.MkdirAll(p.dir, 0o755); err != nil {
		return nil, err
	}
	man := &Manifest{
		Version:      1,
		Generation:   gen,
		Shards:       p.shards,
		Users:        users,
		Docs:         docs,
		SectionOrder: canonicalOrder(m),
		Ranges:       make([]Range, p.shards),
	}

	// Global file. Outside full rebuilds the global blocks alias the
	// previous model's arrays and DIM/CFG are value-stable, so when the
	// user count did not change the previous file is re-linked; otherwise
	// SaveV2SubsetReusing re-encodes only CFG+DIM and splices the rest.
	globalPath := GlobalPath(p.dir, gen)
	if !full && users == p.prevUsers && p.prevMan != nil && p.globalMan != nil &&
		linkOrCopy(GlobalPath(p.dir, p.prevGen), globalPath) == nil {
		man.Global = p.prevMan.Global
		man.Global.Name = fmt.Sprintf(globalFormat, gen)
		p.LinkedFiles++
	} else {
		gm, err := store.SaveV2SubsetReusing(globalPath, m, globalTagsList, p.globalMan)
		if err != nil {
			return nil, fmt.Errorf("shard: writing global file: %w", err)
		}
		p.globalMan = gm
		if man.Global, err = fileEntry(globalPath); err != nil {
			return nil, err
		}
		p.WrittenFiles++
	}

	for i := range p.ranges {
		r := p.ranges[i]
		path := ShardPath(p.dir, gen, i)
		clean := !full && !changed[i] && docsSame && p.prevMan != nil && i < len(p.prevMan.Ranges) &&
			p.prevMan.Ranges[i].UserLo == r.UserLo && p.prevMan.Ranges[i].UserHi == r.UserHi &&
			p.prevMan.Ranges[i].DocLo == r.DocLo && p.prevMan.Ranges[i].DocHi == r.DocHi
		if clean && linkOrCopy(ShardPath(p.dir, p.prevGen, i), path) == nil {
			ent := p.prevMan.Ranges[i].File
			ent.Name = fmt.Sprintf(shardFormat, gen, i)
			man.Ranges[i] = Range{Index: i, UserLo: r.UserLo, UserHi: r.UserHi, DocLo: r.DocLo, DocHi: r.DocHi, File: ent}
			p.LinkedFiles++
			continue
		}
		sub := &core.Model{
			Cfg:          m.Cfg,
			NumUsers:     r.UserHi - r.UserLo,
			NumWords:     m.NumWords,
			NumBuckets:   m.NumBuckets,
			NumAttrs:     m.NumAttrs,
			Pi:           sparse.NewDenseView(r.UserHi-r.UserLo, C, m.Pi.Data[r.UserLo*C:r.UserHi*C]),
			DocCommunity: m.DocCommunity[r.DocLo:r.DocHi],
			DocTopic:     m.DocTopic[r.DocLo:r.DocHi],
			DocBucket:    m.DocBucket[r.DocLo:r.DocHi],
		}
		sman, err := store.SaveV2SubsetReusing(path, sub, shardTagsList, p.shardMans[i])
		if err != nil {
			return nil, fmt.Errorf("shard: writing shard %d: %w", i, err)
		}
		p.shardMans[i] = sman
		ent, err := fileEntry(path)
		if err != nil {
			return nil, err
		}
		man.Ranges[i] = Range{Index: i, UserLo: r.UserLo, UserHi: r.UserHi, DocLo: r.DocLo, DocHi: r.DocHi, File: ent}
		p.WrittenFiles++
	}

	if err := WriteManifest(ManifestPath(p.dir, gen), man); err != nil {
		return nil, err
	}
	p.prevGen = gen
	p.prevMan = man
	p.prevUsers = users
	p.prevDocC = m.DocCommunity
	p.prevDocZ = m.DocTopic
	p.prevDocB = m.DocBucket
	return man, nil
}

// Prune removes shard-group files (and their .verified sidecars) of
// generations at or below cut.
func (p *Publisher) Prune(cut uint64) {
	gens, err := ScanManifests(p.dir)
	if err != nil {
		return
	}
	for _, gen := range gens {
		if gen > cut {
			continue
		}
		man, err := ReadManifest(ManifestPath(p.dir, gen))
		os.Remove(ManifestPath(p.dir, gen))
		paths := []string{GlobalPath(p.dir, gen)}
		if err == nil {
			for i := range man.Ranges {
				paths = append(paths, ShardPath(p.dir, gen, i))
			}
		} else {
			for i := 0; i < p.shards; i++ {
				paths = append(paths, ShardPath(p.dir, gen, i))
			}
		}
		for _, path := range paths {
			os.Remove(path)
			os.Remove(path + store.VerifiedSidecarSuffix)
		}
	}
}

// canonicalOrder is the section order SaveV2 would emit for m — what
// Join reproduces.
func canonicalOrder(m *core.Model) []string {
	order := []string{store.TagConfig, store.TagDims, store.TagPi, store.TagTheta, store.TagPhi, store.TagEta, store.TagNu}
	if m.PopFreq != nil {
		order = append(order, store.TagPop)
	}
	if m.Xi != nil {
		order = append(order, store.TagXi)
	}
	return append(order, store.TagDocC, store.TagDocZ, store.TagDocB)
}

// linkOrCopy hard-links src to dst (replacing dst), falling back to a
// byte copy on filesystems without hard links. Correct because published
// group files are immutable: writers always create fresh files and
// rename them into place, never mutate in place.
func linkOrCopy(src, dst string) error {
	os.Remove(dst)
	if err := os.Link(src, dst); err == nil {
		return nil
	}
	in, err := os.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	out, err := os.CreateTemp(dirOf(dst), ".shard-copy-*")
	if err != nil {
		return err
	}
	defer os.Remove(out.Name())
	if _, err := io.Copy(out, in); err != nil {
		out.Close()
		return err
	}
	if err := out.Sync(); err != nil {
		out.Close()
		return err
	}
	if err := out.Close(); err != nil {
		return err
	}
	if err := os.Chmod(out.Name(), 0o644); err != nil {
		return err
	}
	return os.Rename(out.Name(), dst)
}

func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' || path[i] == os.PathSeparator {
			return path[:i]
		}
	}
	return "."
}
