package corpus

import (
	"strings"
	"unicode"
)

// Tokenize lower-cases text and splits it into tokens. Hashtags keep their
// leading '#' (the paper treats hashtags as first-class content words and
// uses them as ranking queries); everything else is split on
// non-alphanumeric runes, with internal apostrophes preserved so the
// stop-word list can match contractions.
func Tokenize(text string) []string {
	var tokens []string
	var b strings.Builder
	flush := func() {
		if b.Len() > 0 {
			tokens = append(tokens, b.String())
			b.Reset()
		}
	}
	prevSpaceOrStart := true
	for _, r := range strings.ToLower(text) {
		switch {
		case r == '#' && prevSpaceOrStart:
			flush()
			b.WriteRune(r)
		case unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_':
			b.WriteRune(r)
		case r == '\'' && b.Len() > 0:
			b.WriteRune(r)
		default:
			flush()
		}
		prevSpaceOrStart = unicode.IsSpace(r)
	}
	flush()
	// Trim trailing apostrophes left by possessives ("users'").
	for i, t := range tokens {
		tokens[i] = strings.TrimRight(t, "'")
	}
	out := tokens[:0]
	for _, t := range tokens {
		if t != "" && t != "#" {
			out = append(out, t)
		}
	}
	return out
}

// adverbSuffixes drive the heuristic POS filter: the paper keeps nouns,
// verbs and hashtags after running the Stanford tagger; our lexical
// substitute drops function words (the stop list), pure numbers and
// -ly adverbs. See README.md (design notes) for why this substitution is behaviour-
// preserving for the pipeline.
var adverbSuffixes = []string{"ly"}

// KeepAsContent reports whether the heuristic POS filter keeps token t.
func KeepAsContent(t string) bool {
	if strings.HasPrefix(t, "#") {
		return true
	}
	if isNumeric(t) {
		return false
	}
	for _, suf := range adverbSuffixes {
		if len(t) > len(suf)+2 && strings.HasSuffix(t, suf) {
			return false
		}
	}
	return true
}

func isNumeric(t string) bool {
	if t == "" {
		return false
	}
	for _, r := range t {
		if !unicode.IsDigit(r) {
			return false
		}
	}
	return true
}

// Pipeline bundles the Sect. 6.1 preprocessing options.
type Pipeline struct {
	// RemoveStopwords drops tokens in the built-in stop list.
	RemoveStopwords bool
	// Stem applies the Porter stemmer (hashtags are never stemmed).
	Stem bool
	// POSFilter applies the heuristic noun/verb/hashtag filter.
	POSFilter bool
	// MinDocTokens drops documents with fewer tokens after filtering
	// (the paper removes documents with fewer than two words).
	MinDocTokens int
}

// DefaultPipeline mirrors the paper's preprocessing: stop-word removal,
// stemming, POS filtering and the two-word minimum.
func DefaultPipeline() Pipeline {
	return Pipeline{RemoveStopwords: true, Stem: true, POSFilter: true, MinDocTokens: 2}
}

// Process runs the pipeline over raw text and returns the kept tokens, or
// nil if the document falls below MinDocTokens.
func (p Pipeline) Process(text string) []string {
	raw := Tokenize(text)
	kept := raw[:0]
	for _, t := range raw {
		if p.RemoveStopwords && IsStopword(t) {
			continue
		}
		if p.POSFilter && !KeepAsContent(t) {
			continue
		}
		if p.Stem && !strings.HasPrefix(t, "#") {
			t = PorterStem(t)
		}
		if t == "" {
			continue
		}
		kept = append(kept, t)
	}
	if len(kept) < p.MinDocTokens {
		return nil
	}
	return kept
}

// ProcessToIDs runs Process and interns the surviving tokens into vocab.
// It returns nil when the document is dropped.
func (p Pipeline) ProcessToIDs(vocab *Vocabulary, text string) []int32 {
	tokens := p.Process(text)
	if tokens == nil {
		return nil
	}
	ids := make([]int32, len(tokens))
	for i, t := range tokens {
		ids[i] = int32(vocab.Add(t))
	}
	return ids
}
