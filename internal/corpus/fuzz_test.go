package corpus

import (
	"strings"
	"testing"
	"unicode"
)

// FuzzTokenize throws arbitrary text — including malformed UTF-8, which
// real crawled corpora are full of — at the tokenizer and the full
// preprocessing pipeline. Invariants: no panic, and every produced token
// is non-empty, lower-case, free of separators, and not a bare '#'.
func FuzzTokenize(f *testing.F) {
	seeds := []string{
		"",
		"Hello, World!",
		"#CPD rocks: community profiling & detection!!!",
		"users' don't we'll #hash_tag #123 42 3.14",
		"___ ## # '''' \t\n\r",
		"naïve café über 東京 #日本語 emoji 🎉🎊",
		strings.Repeat("a", 1000),
		"word'with'many'apostrophes'",
		"\xff\xfe broken \x80 utf8 \xc3",
		"MiXeD CaSe HASHTAG #TagGed",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	pipeline := DefaultPipeline()
	f.Fuzz(func(t *testing.T, text string) {
		for _, tok := range Tokenize(text) {
			if tok == "" || tok == "#" {
				t.Fatalf("Tokenize(%q) produced degenerate token %q", text, tok)
			}
			for _, r := range tok {
				if unicode.IsSpace(r) {
					t.Fatalf("Tokenize(%q) produced token %q containing whitespace", text, tok)
				}
			}
			// Lower-casing is a fixed point (some uppercase runes, e.g.
			// U+03D4, have no lowercase form — found by this fuzzer).
			if tok != strings.ToLower(tok) {
				t.Fatalf("Tokenize(%q) produced non-lowercased token %q", text, tok)
			}
			// The POS filter and stemmer must hold up on whatever the
			// tokenizer emits.
			KeepAsContent(tok)
			if !strings.HasPrefix(tok, "#") {
				PorterStem(tok)
			}
		}
		// The full paper pipeline must never panic, and must respect its
		// own minimum-token contract.
		if kept := pipeline.Process(text); kept != nil && len(kept) < pipeline.MinDocTokens {
			t.Fatalf("Process(%q) returned %d tokens, below its own floor %d",
				text, len(kept), pipeline.MinDocTokens)
		}
	})
}
