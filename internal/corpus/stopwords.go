package corpus

// defaultStopwords is a standard English stop-word list (SMART-derived,
// trimmed to function words). The paper removes stop words before POS
// filtering and stemming.
var defaultStopwords = map[string]bool{}

func init() {
	for _, w := range stopwordList {
		defaultStopwords[w] = true
	}
}

// IsStopword reports whether w (lower-case) is in the built-in stop list.
func IsStopword(w string) bool { return defaultStopwords[w] }

var stopwordList = []string{
	"a", "about", "above", "after", "again", "against", "all", "also", "am",
	"an", "and", "any", "are", "aren't", "as", "at", "be", "because", "been",
	"before", "being", "below", "between", "both", "but", "by", "can",
	"can't", "cannot", "could", "couldn't", "did", "didn't", "do", "does",
	"doesn't", "doing", "don't", "down", "during", "each", "else", "ever",
	"few", "for", "from", "further", "get", "got", "had", "hadn't", "has",
	"hasn't", "have", "haven't", "having", "he", "he'd", "he'll", "he's",
	"her", "here", "here's", "hers", "herself", "him", "himself", "his",
	"how", "how's", "i", "i'd", "i'll", "i'm", "i've", "if", "in", "into",
	"is", "isn't", "it", "it's", "its", "itself", "just", "let's", "like",
	"me", "more", "most", "mustn't", "my", "myself", "no", "nor", "not",
	"of", "off", "on", "once", "only", "or", "other", "ought", "our",
	"ours", "ourselves", "out", "over", "own", "per", "same", "shan't",
	"she", "she'd", "she'll", "she's", "should", "shouldn't", "so", "some",
	"such", "than", "that", "that's", "the", "their", "theirs", "them",
	"themselves", "then", "there", "there's", "these", "they", "they'd",
	"they'll", "they're", "they've", "this", "those", "through", "to",
	"too", "under", "until", "up", "upon", "us", "very", "via", "was",
	"wasn't", "we", "we'd", "we'll", "we're", "we've", "were", "weren't",
	"what", "what's", "when", "when's", "where", "where's", "which",
	"while", "who", "who's", "whom", "why", "why's", "will", "with",
	"won't", "would", "wouldn't", "you", "you'd", "you'll", "you're",
	"you've", "your", "yours", "yourself", "yourselves",
}
