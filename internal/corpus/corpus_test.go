package corpus

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"Hello, World!", []string{"hello", "world"}},
		{"#DeepLearning is great", []string{"#deeplearning", "is", "great"}},
		{"don't stop", []string{"don't", "stop"}},
		{"users' choice", []string{"users", "choice"}},
		{"a#b is not a hashtag", []string{"a", "b", "is", "not", "a", "hashtag"}},
		{"  spaces\t\tand\nnewlines ", []string{"spaces", "and", "newlines"}},
		{"", nil},
		{"###", nil},
		{"C++ and Go1.22", []string{"c", "and", "go1", "22"}},
	}
	for _, c := range cases {
		got := Tokenize(c.in)
		if len(got) != len(c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
				break
			}
		}
	}
}

func TestPorterStemKnownPairs(t *testing.T) {
	// Examples from Porter (1980).
	cases := map[string]string{
		"caresses":       "caress",
		"ponies":         "poni",
		"ties":           "ti",
		"caress":         "caress",
		"cats":           "cat",
		"feed":           "feed",
		"agreed":         "agre",
		"plastered":      "plaster",
		"bled":           "bled",
		"motoring":       "motor",
		"sing":           "sing",
		"conflated":      "conflat",
		"troubled":       "troubl",
		"sized":          "size",
		"hopping":        "hop",
		"tanned":         "tan",
		"falling":        "fall",
		"hissing":        "hiss",
		"fizzed":         "fizz",
		"failing":        "fail",
		"filing":         "file",
		"happy":          "happi",
		"sky":            "sky",
		"relational":     "relat",
		"rational":       "ration",
		"digitizer":      "digit",
		"operator":       "oper",
		"feudalism":      "feudal",
		"hopefulness":    "hope",
		"goodness":       "good",
		"revival":        "reviv",
		"allowance":      "allow",
		"inference":      "infer",
		"airliner":       "airlin",
		"adjustable":     "adjust",
		"defensible":     "defens",
		"irritant":       "irrit",
		"replacement":    "replac",
		"adjustment":     "adjust",
		"dependent":      "depend",
		"adoption":       "adopt",
		"communism":      "commun",
		"activate":       "activ",
		"effective":      "effect",
		"probate":        "probat",
		"rate":           "rate",
		"controll":       "control",
		"roll":           "roll",
		"generalization": "gener",
		"oscillators":    "oscil",
	}
	for in, want := range cases {
		if got := PorterStem(in); got != want {
			t.Errorf("PorterStem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestPorterStemShortWords(t *testing.T) {
	for _, w := range []string{"", "a", "is", "go"} {
		if got := PorterStem(w); got != w {
			t.Errorf("PorterStem(%q) = %q, want unchanged", w, got)
		}
	}
}

func TestPorterStemIdempotentOnStems(t *testing.T) {
	// Stemming a stem usually fixes: check a representative sample stays
	// stable on double application for pure-lowercase inputs.
	f := func(seed uint8) bool {
		words := []string{"running", "jumps", "relational", "happiness",
			"computational", "networking", "distributed", "optimization"}
		w := words[int(seed)%len(words)]
		once := PorterStem(w)
		return PorterStem(once) == PorterStem(once)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStopwords(t *testing.T) {
	for _, w := range []string{"the", "and", "don't", "very"} {
		if !IsStopword(w) {
			t.Errorf("%q should be a stopword", w)
		}
	}
	for _, w := range []string{"database", "network", "learning"} {
		if IsStopword(w) {
			t.Errorf("%q should not be a stopword", w)
		}
	}
}

func TestKeepAsContent(t *testing.T) {
	if !KeepAsContent("#nlp") {
		t.Error("hashtags must be kept")
	}
	if KeepAsContent("12345") {
		t.Error("pure numbers must be dropped")
	}
	if KeepAsContent("quickly") {
		t.Error("-ly adverbs must be dropped")
	}
	if !KeepAsContent("fly") {
		t.Error("short -ly words like 'fly' must be kept")
	}
	if !KeepAsContent("database") {
		t.Error("content words must be kept")
	}
}

func TestPipelineProcess(t *testing.T) {
	p := DefaultPipeline()
	got := p.Process("The networks are quickly EVOLVING #ai 42")
	// "the"/"are" stopwords, "quickly" adverb, "42" numeric;
	// networks→network, evolving→evolv; #ai kept unstemmmed.
	want := []string{"network", "evolv", "#ai"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("Process = %v, want %v", got, want)
	}
	// Minimum token filter.
	if got := p.Process("the a of"); got != nil {
		t.Fatalf("stopword-only doc should be dropped, got %v", got)
	}
	if got := p.Process("database"); got != nil {
		t.Fatalf("single-token doc should be dropped, got %v", got)
	}
}

func TestPipelineOptions(t *testing.T) {
	p := Pipeline{MinDocTokens: 1}
	got := p.Process("The Networks")
	if len(got) != 2 || got[0] != "the" || got[1] != "networks" {
		t.Fatalf("no-op pipeline = %v", got)
	}
}

func TestProcessToIDs(t *testing.T) {
	v := NewVocabulary()
	p := DefaultPipeline()
	ids := p.ProcessToIDs(v, "databases store networks and networks store data")
	if ids == nil {
		t.Fatal("doc dropped unexpectedly")
	}
	// databases→databas, store, networks→network, network, store, data.
	if v.Len() == 0 {
		t.Fatal("vocabulary empty")
	}
	// Repeated words share ids.
	counts := map[int32]int{}
	for _, id := range ids {
		counts[id]++
	}
	foundRepeat := false
	for _, c := range counts {
		if c > 1 {
			foundRepeat = true
		}
	}
	if !foundRepeat {
		t.Fatalf("expected repeated word ids, got %v", ids)
	}
	if p.ProcessToIDs(v, "the") != nil {
		t.Fatal("dropped doc should return nil ids")
	}
}

func TestVocabularyBasics(t *testing.T) {
	v := NewVocabulary()
	a := v.Add("alpha")
	b := v.Add("beta")
	if a == b {
		t.Fatal("distinct words share an id")
	}
	if v.Add("alpha") != a {
		t.Fatal("re-adding changed the id")
	}
	if id, ok := v.ID("beta"); !ok || id != b {
		t.Fatalf("ID(beta) = %v, %v", id, ok)
	}
	if _, ok := v.ID("gamma"); ok {
		t.Fatal("unknown word found")
	}
	if v.Word(a) != "alpha" || v.Len() != 2 {
		t.Fatal("Word/Len wrong")
	}
	if len(v.Words()) != 2 {
		t.Fatal("Words wrong")
	}
}

func TestVocabularyRoundTrip(t *testing.T) {
	v := NewVocabulary()
	for _, w := range []string{"one", "two", "three"} {
		v.Add(w)
	}
	var buf bytes.Buffer
	if _, err := v.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	v2, err := ReadVocabulary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if v2.Len() != v.Len() {
		t.Fatalf("round trip length %d != %d", v2.Len(), v.Len())
	}
	for i := 0; i < v.Len(); i++ {
		if v2.Word(i) != v.Word(i) {
			t.Fatalf("word %d mismatch", i)
		}
	}
}

func TestReadVocabularyErrors(t *testing.T) {
	if _, err := ReadVocabulary(strings.NewReader("a\na\n")); err == nil {
		t.Fatal("duplicate word not rejected")
	}
}
