package corpus

// PorterStem applies the classic Porter (1980) stemming algorithm to a
// lower-case ASCII word and returns the stem. Words shorter than three
// letters are returned unchanged, per the original paper's guidance.
func PorterStem(word string) string {
	if len(word) <= 2 {
		return word
	}
	s := &porter{b: []byte(word)}
	s.step1a()
	s.step1b()
	s.step1c()
	s.step2()
	s.step3()
	s.step4()
	s.step5a()
	s.step5b()
	return string(s.b)
}

type porter struct {
	b []byte
}

// isConsonant reports whether b[i] is a consonant in Porter's sense: a
// letter other than a/e/i/o/u, with y counting as a consonant only when
// preceded by a vowel-position letter.
func (p *porter) isConsonant(i int) bool {
	switch p.b[i] {
	case 'a', 'e', 'i', 'o', 'u':
		return false
	case 'y':
		if i == 0 {
			return true
		}
		return !p.isConsonant(i - 1)
	default:
		return true
	}
}

// measure returns m, the number of VC sequences in the prefix b[:end].
func (p *porter) measure(end int) int {
	m := 0
	i := 0
	// Skip the initial consonant run.
	for i < end && p.isConsonant(i) {
		i++
	}
	for i < end {
		// Vowel run.
		for i < end && !p.isConsonant(i) {
			i++
		}
		if i >= end {
			break
		}
		// Consonant run: one full VC.
		for i < end && p.isConsonant(i) {
			i++
		}
		m++
	}
	return m
}

// hasVowel reports whether b[:end] contains a vowel.
func (p *porter) hasVowel(end int) bool {
	for i := 0; i < end; i++ {
		if !p.isConsonant(i) {
			return true
		}
	}
	return false
}

// endsDoubleConsonant reports whether b[:end] ends with a doubled
// consonant.
func (p *porter) endsDoubleConsonant(end int) bool {
	if end < 2 {
		return false
	}
	return p.b[end-1] == p.b[end-2] && p.isConsonant(end-1)
}

// endsCVC reports whether b[:end] ends consonant-vowel-consonant with the
// final consonant not w, x or y (Porter's *o condition).
func (p *porter) endsCVC(end int) bool {
	if end < 3 {
		return false
	}
	if !p.isConsonant(end-3) || p.isConsonant(end-2) || !p.isConsonant(end-1) {
		return false
	}
	switch p.b[end-1] {
	case 'w', 'x', 'y':
		return false
	}
	return true
}

// hasSuffix reports whether the current word ends with suf and, if so,
// returns the stem length.
func (p *porter) hasSuffix(suf string) (int, bool) {
	n := len(p.b) - len(suf)
	if n < 0 {
		return 0, false
	}
	if string(p.b[n:]) != suf {
		return 0, false
	}
	return n, true
}

// replace replaces the suffix of length len(suf) with rep, assuming the
// caller checked the suffix.
func (p *porter) replace(suf, rep string) {
	n := len(p.b) - len(suf)
	p.b = append(p.b[:n], rep...)
}

func (p *porter) step1a() {
	switch {
	case endsWith(p.b, "sses"):
		p.replace("sses", "ss")
	case endsWith(p.b, "ies"):
		p.replace("ies", "i")
	case endsWith(p.b, "ss"):
		// keep
	case endsWith(p.b, "s"):
		p.replace("s", "")
	}
}

func (p *porter) step1b() {
	if n, ok := p.hasSuffix("eed"); ok {
		if p.measure(n) > 0 {
			p.replace("eed", "ee")
		}
		return
	}
	applied := false
	if n, ok := p.hasSuffix("ed"); ok && p.hasVowel(n) {
		p.replace("ed", "")
		applied = true
	} else if n, ok := p.hasSuffix("ing"); ok && p.hasVowel(n) {
		p.replace("ing", "")
		applied = true
	}
	if !applied {
		return
	}
	switch {
	case endsWith(p.b, "at"):
		p.replace("at", "ate")
	case endsWith(p.b, "bl"):
		p.replace("bl", "ble")
	case endsWith(p.b, "iz"):
		p.replace("iz", "ize")
	case p.endsDoubleConsonant(len(p.b)):
		last := p.b[len(p.b)-1]
		if last != 'l' && last != 's' && last != 'z' {
			p.b = p.b[:len(p.b)-1]
		}
	case p.measure(len(p.b)) == 1 && p.endsCVC(len(p.b)):
		p.b = append(p.b, 'e')
	}
}

func (p *porter) step1c() {
	if n, ok := p.hasSuffix("y"); ok && p.hasVowel(n) {
		p.b[len(p.b)-1] = 'i'
	}
}

// step2Rules maps suffixes to replacements, applied when measure(stem) > 0.
var step2Rules = []struct{ suf, rep string }{
	{"ational", "ate"}, {"tional", "tion"}, {"enci", "ence"}, {"anci", "ance"},
	{"izer", "ize"}, {"abli", "able"}, {"alli", "al"}, {"entli", "ent"},
	{"eli", "e"}, {"ousli", "ous"}, {"ization", "ize"}, {"ation", "ate"},
	{"ator", "ate"}, {"alism", "al"}, {"iveness", "ive"}, {"fulness", "ful"},
	{"ousness", "ous"}, {"aliti", "al"}, {"iviti", "ive"}, {"biliti", "ble"},
	{"logi", "log"},
}

func (p *porter) step2() {
	for _, r := range step2Rules {
		if n, ok := p.hasSuffix(r.suf); ok {
			if p.measure(n) > 0 {
				p.replace(r.suf, r.rep)
			}
			return
		}
	}
}

var step3Rules = []struct{ suf, rep string }{
	{"icate", "ic"}, {"ative", ""}, {"alize", "al"}, {"iciti", "ic"},
	{"ical", "ic"}, {"ful", ""}, {"ness", ""},
}

func (p *porter) step3() {
	for _, r := range step3Rules {
		if n, ok := p.hasSuffix(r.suf); ok {
			if p.measure(n) > 0 {
				p.replace(r.suf, r.rep)
			}
			return
		}
	}
}

var step4Suffixes = []string{
	"al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
	"ment", "ent", "ion", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
}

func (p *porter) step4() {
	for _, suf := range step4Suffixes {
		n, ok := p.hasSuffix(suf)
		if !ok {
			continue
		}
		if p.measure(n) <= 1 {
			return
		}
		if suf == "ion" && n > 0 && p.b[n-1] != 's' && p.b[n-1] != 't' {
			return
		}
		p.replace(suf, "")
		return
	}
}

func (p *porter) step5a() {
	if n, ok := p.hasSuffix("e"); ok {
		m := p.measure(n)
		if m > 1 || (m == 1 && !p.endsCVC(n)) {
			p.replace("e", "")
		}
	}
}

func (p *porter) step5b() {
	n := len(p.b)
	if n >= 2 && p.b[n-1] == 'l' && p.endsDoubleConsonant(n) && p.measure(n) > 1 {
		p.b = p.b[:n-1]
	}
}

func endsWith(b []byte, suf string) bool {
	if len(b) < len(suf) {
		return false
	}
	return string(b[len(b)-len(suf):]) == suf
}
