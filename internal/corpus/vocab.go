// Package corpus implements the text-processing substrate of Sect. 6.1:
// vocabulary interning, tokenization, stop-word removal, Porter stemming,
// a part-of-speech-style lexical filter (the paper keeps nouns, verbs and
// hashtags), and the short-document filters (drop documents with fewer than
// two words, drop users with no documents — the latter is applied by the
// socialgraph package).
package corpus

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"
)

// Vocabulary interns words to dense integer ids.
type Vocabulary struct {
	byWord map[string]int
	byID   []string
}

// NewVocabulary returns an empty vocabulary.
func NewVocabulary() *Vocabulary {
	return &Vocabulary{byWord: make(map[string]int)}
}

// Add interns w and returns its id, allocating a new id for unseen words.
func (v *Vocabulary) Add(w string) int {
	if id, ok := v.byWord[w]; ok {
		return id
	}
	id := len(v.byID)
	v.byWord[w] = id
	v.byID = append(v.byID, w)
	return id
}

// ID returns the id of w and whether it is known.
func (v *Vocabulary) ID(w string) (int, bool) {
	id, ok := v.byWord[w]
	return id, ok
}

// Word returns the word for id. It panics on out-of-range ids.
func (v *Vocabulary) Word(id int) string {
	return v.byID[id]
}

// Len returns the number of interned words.
func (v *Vocabulary) Len() int { return len(v.byID) }

// Words returns the id-ordered word list (aliasing internal storage; do not
// mutate).
func (v *Vocabulary) Words() []string { return v.byID }

// WriteTo serializes the vocabulary, one word per line in id order.
func (v *Vocabulary) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	for _, word := range v.byID {
		k, err := fmt.Fprintln(bw, word)
		n += int64(k)
		if err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// ReadVocabularyFile reads a vocabulary file in the WriteTo format.
func ReadVocabularyFile(path string) (*Vocabulary, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("corpus: %w", err)
	}
	defer f.Close()
	v, err := ReadVocabulary(f)
	if err != nil {
		return nil, fmt.Errorf("corpus: %s: %w", path, err)
	}
	return v, nil
}

// ReadVocabulary parses the WriteTo format.
func ReadVocabulary(r io.Reader) (*Vocabulary, error) {
	v := NewVocabulary()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		w := strings.TrimSpace(sc.Text())
		if w == "" {
			return nil, fmt.Errorf("corpus: empty word at line %d", line)
		}
		if _, ok := v.byWord[w]; ok {
			return nil, fmt.Errorf("corpus: duplicate word %q at line %d", w, line)
		}
		v.Add(w)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("corpus: reading vocabulary: %w", err)
	}
	return v, nil
}
